package kremlin_test

// Builds the real CLI binaries and drives the documented workflow through
// them: kremlin-cc → kremlin-run → kremlin → kremlin-sim.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir,
		"./cmd/kremlin-cc", "./cmd/kremlin-run", "./cmd/kremlin", "./cmd/kremlin-sim")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	bin := buildCLIs(t)
	src := filepath.Join(t.TempDir(), "demo.kr")
	prof := filepath.Join(t.TempDir(), "demo.krpf")
	program := `
float a[500];
float b[500];
void work() {
	for (int i = 0; i < 500; i++) {
		b[i] = a[i] * 3.0 + 1.0;
	}
}
int main() {
	for (int i = 0; i < 500; i++) { a[i] = float(i % 9); }
	work();
	print("done", b[499]);
	return 0;
}
`
	if err := os.WriteFile(src, []byte(program), 0o644); err != nil {
		t.Fatal(err)
	}

	cc := runCLI(t, filepath.Join(bin, "kremlin-cc"), "-dump-regions", src)
	if !strings.Contains(cc, "loop regions") || !strings.Contains(cc, "func work") {
		t.Errorf("kremlin-cc output:\n%s", cc)
	}

	run := runCLI(t, filepath.Join(bin, "kremlin-run"), "-o", prof, src)
	if !strings.Contains(run, "done 13") { // 499%9=4 → 4*3+1
		t.Errorf("kremlin-run output:\n%s", run)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Fatalf("profile not written: %v", err)
	}

	plan := runCLI(t, filepath.Join(bin, "kremlin"), "-profile", prof, src)
	if !strings.Contains(plan, "loop work") || !strings.Contains(plan, "Self-P") {
		t.Errorf("kremlin plan output:\n%s", plan)
	}

	gp := runCLI(t, filepath.Join(bin, "kremlin-run"), "-mode=gprof", src)
	if !strings.Contains(gp, "self%") {
		t.Errorf("gprof mode output:\n%s", gp)
	}

	sim := runCLI(t, filepath.Join(bin, "kremlin-sim"), "-profile", prof, src)
	if !strings.Contains(sim, "best configuration") {
		t.Errorf("kremlin-sim output:\n%s", sim)
	}

	labels := runCLI(t, filepath.Join(bin, "kremlin"), "-labels", "-profile", prof, src)
	var label string
	for _, l := range strings.Split(labels, "\n") {
		if i := strings.Index(l, "loop work"); i > 0 {
			label = strings.TrimSpace(l[:i]) + " loop work"
		}
	}
	if label == "" {
		t.Fatalf("no loop label found in:\n%s", labels)
	}
	// Excluding the dominant region removes it from the replanned output.
	excluded := runCLI(t, filepath.Join(bin, "kremlin"), "-profile", prof, "-exclude", label, src)
	if strings.Contains(excluded, "loop work ") {
		t.Errorf("excluded region still planned:\n%s", excluded)
	}
}
