package kremlin_test

// Builds the real CLI binaries and drives the documented workflow through
// them: kremlin-cc → kremlin-run → kremlin → kremlin-sim.

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir,
		"./cmd/kremlin-cc", "./cmd/kremlin-run", "./cmd/kremlin", "./cmd/kremlin-sim", "./cmd/kremlin-serve")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	bin := buildCLIs(t)
	src := filepath.Join(t.TempDir(), "demo.kr")
	prof := filepath.Join(t.TempDir(), "demo.krpf")
	program := `
float a[500];
float b[500];
void work() {
	for (int i = 0; i < 500; i++) {
		b[i] = a[i] * 3.0 + 1.0;
	}
}
int main() {
	for (int i = 0; i < 500; i++) { a[i] = float(i % 9); }
	work();
	print("done", b[499]);
	return 0;
}
`
	if err := os.WriteFile(src, []byte(program), 0o644); err != nil {
		t.Fatal(err)
	}

	cc := runCLI(t, filepath.Join(bin, "kremlin-cc"), "-dump-regions", src)
	if !strings.Contains(cc, "loop regions") || !strings.Contains(cc, "func work") {
		t.Errorf("kremlin-cc output:\n%s", cc)
	}

	run := runCLI(t, filepath.Join(bin, "kremlin-run"), "-o", prof, src)
	if !strings.Contains(run, "done 13") { // 499%9=4 → 4*3+1
		t.Errorf("kremlin-run output:\n%s", run)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Fatalf("profile not written: %v", err)
	}

	plan := runCLI(t, filepath.Join(bin, "kremlin"), "-profile", prof, src)
	if !strings.Contains(plan, "loop work") || !strings.Contains(plan, "Self-P") {
		t.Errorf("kremlin plan output:\n%s", plan)
	}

	gp := runCLI(t, filepath.Join(bin, "kremlin-run"), "-mode=gprof", src)
	if !strings.Contains(gp, "self%") {
		t.Errorf("gprof mode output:\n%s", gp)
	}

	sim := runCLI(t, filepath.Join(bin, "kremlin-sim"), "-profile", prof, src)
	if !strings.Contains(sim, "best configuration") {
		t.Errorf("kremlin-sim output:\n%s", sim)
	}

	labels := runCLI(t, filepath.Join(bin, "kremlin"), "-labels", "-profile", prof, src)
	var label string
	for _, l := range strings.Split(labels, "\n") {
		if i := strings.Index(l, "loop work"); i > 0 {
			label = strings.TrimSpace(l[:i]) + " loop work"
		}
	}
	if label == "" {
		t.Fatalf("no loop label found in:\n%s", labels)
	}
	// Excluding the dominant region removes it from the replanned output.
	excluded := runCLI(t, filepath.Join(bin, "kremlin"), "-profile", prof, "-exclude", label, src)
	if strings.Contains(excluded, "loop work ") {
		t.Errorf("excluded region still planned:\n%s", excluded)
	}
}

// runCLIExit runs a CLI expected to fail and returns its exit code and
// combined output.
func runCLIExit(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestCLIExitCodes pins the exit-code taxonomy shared by kremlin and
// kremlin-run: 3 parse, 4 analysis, 5 runtime, 6 limit.
func TestCLIExitCodes(t *testing.T) {
	bin := buildCLIs(t)
	dir := t.TempDir()
	write := func(name, src string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	parseBad := write("parse.kr", "int main( {")
	analysisBad := write("analysis.kr", "int main() { return nope; }")
	runtimeBad := write("runtime.kr", "int main() { int z = 0; return 1 / z; }")
	long := write("long.kr", `
int main() {
	int acc = 0;
	for (int i = 0; i < 100000000; i++) {
		acc = acc + i;
	}
	return acc;
}
`)

	krun := filepath.Join(bin, "kremlin-run")
	kpl := filepath.Join(bin, "kremlin")
	cases := []struct {
		name string
		bin  string
		args []string
		want int
	}{
		{"run-parse", krun, []string{parseBad}, 3},
		{"run-analysis", krun, []string{analysisBad}, 4},
		{"run-runtime", krun, []string{runtimeBad}, 5},
		{"run-budget", krun, []string{"-max-insns", "10000", long}, 6},
		{"run-timeout", krun, []string{"-timeout", "50ms", long}, 6},
		{"run-budget-sharded", krun, []string{"-shards", "4", "-max-insns", "10000", long}, 6},
		{"run-budget-gprof", krun, []string{"-mode=gprof", "-max-insns", "10000", long}, 6},
		{"plan-parse", kpl, []string{parseBad}, 3},
		{"plan-analysis", kpl, []string{analysisBad}, 4},
		{"plan-budget", kpl, []string{"-max-insns", "10000", long}, 6},
		{"plan-timeout", kpl, []string{"-timeout", "50ms", long}, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runCLIExit(t, tc.bin, tc.args...)
			if code != tc.want {
				t.Errorf("%v: exit code = %d, want %d\n%s", tc.args, code, tc.want, out)
			}
		})
	}

	// A clean run still exits 0 with the new flags set generously.
	ok := write("ok.kr", "int main() { return 0; }")
	if code, out := runCLIExit(t, krun, "-timeout", "30s", "-o", filepath.Join(dir, "ok.krpf"), ok); code != 0 {
		t.Errorf("clean run: exit code = %d\n%s", code, out)
	}
}

// TestServeDaemonSmoke drives the real kremlin-serve binary end to end:
// start, wait healthy, POST a program, force a 429 burst, then SIGTERM
// and require a graceful drain.
func TestServeDaemonSmoke(t *testing.T) {
	bin := buildCLIs(t)
	addr := "127.0.0.1:18923"
	cmd := exec.Command(filepath.Join(bin, "kremlin-serve"),
		"-addr", addr, "-workers", "1", "-queue", "1", "-job-timeout", "2s")
	var logs bytes.Buffer
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}
	// Wait for the listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v\n%s", err, logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	prog, err := os.ReadFile("examples/quickstart/quickstart.kr")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/profile?name=quickstart.kr", "text/plain", bytes.NewReader(prog))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /profile: status %d\n%s", resp.StatusCode, body)
	}
	for _, ev := range []string{`"event":"profile"`, `"event":"plan"`, `"event":"vet"`, `"event":"done"`} {
		if !strings.Contains(string(body), ev) {
			t.Errorf("response stream missing %s:\n%s", ev, body)
		}
	}

	// Burst: with one worker and a one-slot queue, concurrent slow jobs
	// must shed at least one 429.
	slow := []byte(`
int main() {
	int acc = 0;
	for (int i = 0; i < 100000000; i++) { acc = acc + i; }
	return acc;
}
`)
	var mu sync.Mutex
	codes := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(base+"/profile", "text/plain", bytes.NewReader(slow))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			codes[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if codes[http.StatusTooManyRequests] == 0 {
		t.Errorf("burst produced no 429s: %v\n%s", codes, logs.String())
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v\n%s", err, logs.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Errorf("daemon log missing drain confirmation:\n%s", logs.String())
	}
}
