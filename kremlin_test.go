package kremlin_test

import (
	"bytes"
	"strings"
	"testing"

	"kremlin"

	"kremlin/internal/planner"
	"kremlin/internal/regions"
)

const smokeSrc = `
float a[1000];
float b[1000];
float acc;

void initArrays() {
	for (int i = 0; i < 1000; i++) {
		a[i] = float(i) * 0.5;
	}
}

// DOALL: every iteration is independent.
void doall() {
	for (int i = 0; i < 1000; i++) {
		b[i] = a[i] * 2.0 + 1.0;
	}
}

// Serial: loop-carried dependence through b.
void serialChain() {
	for (int i = 1; i < 1000; i++) {
		b[i] = b[i-1] * 0.999 + a[i];
	}
}

// Reduction over a.
void reduce() {
	for (int i = 0; i < 1000; i++) {
		acc = acc + a[i];
	}
}

int main() {
	initArrays();
	doall();
	serialChain();
	reduce();
	print("acc", acc);
	return 0;
}
`

func compileSmoke(t *testing.T) *kremlin.Program {
	t.Helper()
	prog, err := kremlin.Compile("smoke.kr", smokeSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestSmokeRunOutput(t *testing.T) {
	prog := compileSmoke(t)
	var out bytes.Buffer
	res, err := prog.Run(&kremlin.RunConfig{Out: &out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out.String(), "acc ") {
		t.Fatalf("unexpected output %q", out.String())
	}
	if res.Work == 0 || res.Steps == 0 {
		t.Fatalf("expected nonzero work/steps, got %+v", res)
	}
}

func TestSmokeProfileSelfParallelism(t *testing.T) {
	prog := compileSmoke(t)
	prof, res, err := prog.Profile(nil)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if res.Work == 0 {
		t.Fatal("no work recorded")
	}
	sum := prog.Summarize(prof)

	find := func(fn string) map[regions.Kind]float64 {
		out := map[regions.Kind]float64{}
		for _, st := range sum.Executed {
			if st.Region.Func.Name == fn && st.Region.Kind == regions.LoopRegion {
				out[st.Region.Kind] = st.SelfP
			}
		}
		return out
	}

	if sp := find("doall")[regions.LoopRegion]; sp < 500 {
		t.Errorf("doall loop self-parallelism = %.1f, want ~1000", sp)
	}
	if sp := find("serialChain")[regions.LoopRegion]; sp > 5 {
		t.Errorf("serial loop self-parallelism = %.1f, want ~1", sp)
	}
	if sp := find("reduce")[regions.LoopRegion]; sp < 100 {
		t.Errorf("reduction loop self-parallelism = %.1f, want high (dependence broken)", sp)
	}
	if sp := find("initArrays")[regions.LoopRegion]; sp < 500 {
		t.Errorf("init loop self-parallelism = %.1f, want ~1000", sp)
	}
}

func TestSmokePlan(t *testing.T) {
	prog := compileSmoke(t)
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	plan := prog.Plan(prof, planner.OpenMP())
	if len(plan.Recs) == 0 {
		t.Fatal("empty plan")
	}
	for _, r := range plan.Recs {
		if r.Stats.Region.Func.Name == "serialChain" {
			t.Errorf("plan recommends the serial loop: %s", r.Label())
		}
	}
	// Plans are ordered by decreasing benefit.
	for i := 1; i < len(plan.Recs); i++ {
		if plan.Recs[i].SavedFrac > plan.Recs[i-1].SavedFrac+1e-12 {
			t.Errorf("plan not sorted at %d", i)
		}
	}
}
