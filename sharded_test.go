package kremlin_test

// Equivalence property: profiling K complementary depth windows
// concurrently and stitching the windowed profiles must reproduce the
// full-depth profile exactly — same region ranking, same speedup
// estimates, same aggregate metrics. This is the correctness contract that
// makes -shards safe to use by default.

import (
	"math"
	"testing"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/planner"
)

func TestShardedEquivalence(t *testing.T) {
	benches := bench.All()
	if testing.Short() {
		benches = benches[:3]
	}
	for _, bm := range benches {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := kremlin.Compile(bm.Name+".kr", bm.Source)
			if err != nil {
				t.Fatal(err)
			}
			full, fullRes, err := prog.Profile(nil)
			if err != nil {
				t.Fatal(err)
			}
			fullPlan := prog.Plan(full, planner.OpenMP()).Render()
			fullSum := prog.Summarize(full)

			for _, k := range []int{2, 3} {
				prof, res, err := prog.ProfileSharded(nil, k)
				if err != nil {
					t.Fatalf("K=%d: %v", k, err)
				}
				if len(res.Windows) < 2 {
					t.Fatalf("K=%d: expected ≥2 windows, got %v", k, res.Windows)
				}
				if got := res.Work(); got != fullRes.Work {
					t.Errorf("K=%d: sharded work %d, full %d", k, got, fullRes.Work)
				}
				if prof.TotalWork() != full.TotalWork() {
					t.Errorf("K=%d: stitched TotalWork %d, full %d", k, prof.TotalWork(), full.TotalWork())
				}
				if prof.Dict.RawCount != full.Dict.RawCount {
					t.Errorf("K=%d: stitched RawCount %d, full %d", k, prof.Dict.RawCount, full.Dict.RawCount)
				}
				if plan := prog.Plan(prof, planner.OpenMP()).Render(); plan != fullPlan {
					t.Errorf("K=%d: plan diverged from full-depth run\n--- full ---\n%s\n--- sharded ---\n%s", k, fullPlan, plan)
				}
				sum := prog.Summarize(prof)
				for id, st := range sum.Stats {
					fst := fullSum.Stats[id]
					if (st == nil) != (fst == nil) {
						t.Errorf("K=%d: region %d executed in one profile only", k, id)
						continue
					}
					if st == nil {
						continue
					}
					if st.TotalWork != fst.TotalWork || st.TotalCP != fst.TotalCP || st.Instances != fst.Instances {
						t.Errorf("K=%d: region %d aggregates diverged: work %d/%d cp %d/%d n %d/%d",
							k, id, st.TotalWork, fst.TotalWork, st.TotalCP, fst.TotalCP, st.Instances, fst.Instances)
					}
					if math.Abs(st.SelfP-fst.SelfP) > 1e-9*math.Max(1, fst.SelfP) {
						t.Errorf("K=%d: region %d self-parallelism diverged: %g vs %g", k, id, st.SelfP, fst.SelfP)
					}
				}
			}
		})
	}
}
