package kremlin_test

// Verified examples of the public API (run by `go test` and rendered by
// godoc).

import (
	"fmt"
	"log"

	"kremlin"
	"kremlin/internal/planner"
)

// ExampleCompile compiles and runs a Kr program.
func ExampleCompile() {
	prog, err := kremlin.Compile("hello.kr", `
int main() {
	int sum = 0;
	for (int i = 1; i <= 10; i++) {
		sum += i;
	}
	print("sum", sum);
	return 0;
}`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(&kremlin.RunConfig{Out: printer{}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("terminated:", res.Steps > 0)
	// Output:
	// sum 55
	// terminated: true
}

// printer adapts fmt printing for the example.
type printer struct{}

func (printer) Write(b []byte) (int, error) {
	fmt.Print(string(b))
	return len(b), nil
}

// ExampleProgram_Profile profiles a program and inspects self-parallelism.
func ExampleProgram_Profile() {
	prog, err := kremlin.Compile("doall.kr", `
float a[100];
float b[100];
int main() {
	for (int i = 0; i < 100; i++) {
		b[i] = a[i] * 2.0;
	}
	return 0;
}`)
	if err != nil {
		log.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		log.Fatal(err)
	}
	sum := prog.Summarize(prof)
	for _, st := range sum.Executed {
		if st.Region.Kind.String() == "loop" {
			fmt.Printf("loop self-parallelism ≈ iteration count: %t\n", st.SelfP > 90)
			fmt.Printf("DOALL: %t\n", st.DOALL)
		}
	}
	// Output:
	// loop self-parallelism ≈ iteration count: true
	// DOALL: true
}

// ExampleProgram_Plan produces the ranked parallelism plan.
func ExampleProgram_Plan() {
	prog, err := kremlin.Compile("mix.kr", `
float a[800];
float b[800];
void parallel() {
	for (int i = 0; i < 800; i++) { b[i] = a[i] + 1.0; }
}
void serial() {
	for (int i = 1; i < 800; i++) { b[i] = b[i-1] * 0.5; }
}
int main() {
	parallel();
	serial();
	return 0;
}`)
	if err != nil {
		log.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		log.Fatal(err)
	}
	plan := prog.Plan(prof, planner.OpenMP())
	// The serial loop is correctly absent from the output.
	for _, rec := range plan.Recs {
		fmt.Println(rec.Stats.Region.Func.Name, rec.Hint())
	}
	// Output:
	// parallel DOALL
}
