package kremlin_test

import (
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/depcheck"
	"kremlin/internal/regions"
)

// traceDeps profiles src with the loop-carried dependence tracer on and
// returns the flagged region IDs plus the compiled program.
func traceDeps(t *testing.T, src string) (*kremlin.Program, map[int]bool) {
	t.Helper()
	prog, err := kremlin.Compile("trace.kr", src)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := prog.Profile(&kremlin.RunConfig{Out: &strings.Builder{}, TraceDeps: true})
	if err != nil {
		t.Fatal(err)
	}
	carried := make(map[int]bool)
	for _, id := range res.CarriedDeps {
		carried[id] = true
	}
	return prog, carried
}

// loopID returns the ID of the loop region starting at the given source line.
func loopID(t *testing.T, prog *kremlin.Program, line int) int {
	t.Helper()
	for _, r := range prog.Regions.Regions {
		if r.Kind == regions.LoopRegion && r.StartLine == line {
			return r.ID
		}
	}
	t.Fatalf("no loop region at line %d", line)
	return -1
}

func TestDepTraceFlagsCarriedLoop(t *testing.T) {
	prog, carried := traceDeps(t, `
int a[64];
void main() {
    a[0] = 1;
    for (int i = 1; i < 64; i++) {
        a[i] = a[i-1] + 1;
    }
    print(a[63]);
}
`)
	if id := loopID(t, prog, 5); !carried[id] {
		t.Errorf("loop with a[i] = a[i-1] not flagged by the dependence tracer (carried=%v)", carried)
	}
}

func TestDepTraceQuietOnDOALL(t *testing.T) {
	prog, carried := traceDeps(t, `
int a[64];
int b[64];
void main() {
    for (int i = 0; i < 64; i++) { b[i] = i; }
    for (int i = 0; i < 64; i++) {
        a[i] = b[i] * 2;
    }
    print(a[63]);
}
`)
	if len(carried) != 0 {
		t.Errorf("DOALL loops flagged: %v", carried)
	}
	// Both loops must also be statically proven, so the fuzz oracle's
	// soundness check exercises the interesting direction on this shape.
	for _, line := range []int{5, 6} {
		id := loopID(t, prog, line)
		if rep := prog.Vet.ByRegion[id]; rep.Verdict != depcheck.Parallel {
			t.Errorf("loop at line %d: verdict %v, want parallel", line, rep.Verdict)
		}
	}
}

func TestDepTraceQuietOnReduction(t *testing.T) {
	_, carried := traceDeps(t, `
int a[64];
void main() {
    int s = 0;
    for (int i = 0; i < 64; i++) {
        s = s + a[i];
    }
    print(s);
}
`)
	if len(carried) != 0 {
		t.Errorf("reduction loop flagged: %v", carried)
	}
}

func TestDepTraceFlagsMemoryRecurrenceThroughCall(t *testing.T) {
	// The dependence crosses iterations through a callee's store, so the
	// tracer must see it from inside the call frame.
	prog, carried := traceDeps(t, `
int g;
void bump(int x) {
    g = g + x * x;
}
void main() {
    g = 0;
    for (int i = 0; i < 16; i++) {
        bump(i);
    }
    print(g);
}
`)
	if id := loopID(t, prog, 8); !carried[id] {
		t.Errorf("loop with carried dependence through call not flagged (carried=%v)", carried)
	}
}
