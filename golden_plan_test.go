package kremlin_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/planner"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden plan snapshots under testdata/golden/")

// goldenPrograms maps each example program to its Kr source. The
// quickstart and gprofcompare sources are loaded from the .kr files the
// example binaries embed; tracking, whatif, and npb use the same bench
// sources their main.go files load.
func goldenPrograms(t *testing.T) map[string]string {
	t.Helper()
	load := func(path string) string {
		src, err := os.ReadFile(filepath.FromSlash(path))
		if err != nil {
			t.Fatal(err)
		}
		return string(src)
	}
	return map[string]string{
		"quickstart":   load("examples/quickstart/quickstart.kr"),
		"gprofcompare": load("examples/gprofcompare/compare.kr"),
		"tracking":     bench.Tracking().Source,
		"whatif":       bench.ByName("cg").Source, // examples/whatif profiles cg
		"npb":          bench.ByName("sp").Source, // examples/npb defaults to sp
	}
}

// TestGoldenPlans snapshots the rendered OpenMP plan for every example
// program. The plan is the tool's user-facing answer; any change to the
// pipeline that moves a recommendation, reorders the ranking, or shifts an
// estimate shows up as a readable diff here. Refresh intentionally with
//
//	go test -run TestGoldenPlans -update .
func TestGoldenPlans(t *testing.T) {
	for name, src := range goldenPrograms(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			prog, err := kremlin.Compile(name+".kr", src)
			if err != nil {
				t.Fatal(err)
			}
			prof, _, err := prog.Profile(nil)
			if err != nil {
				t.Fatal(err)
			}
			got := prog.Plan(prof, planner.OpenMP()).Render()

			path := filepath.Join("testdata", "golden", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan diverged from golden snapshot %s\n--- got ---\n%s--- want ---\n%s\n(rerun with -update if the change is intentional)",
					path, got, want)
			}
		})
	}
}

// TestGoldenPlansStable guards the snapshot mechanism itself: two
// independent profile+plan runs of the same program must render
// identically, otherwise the golden files would flake.
func TestGoldenPlansStable(t *testing.T) {
	src := goldenPrograms(t)["quickstart"]
	render := func() string {
		prog, err := kremlin.Compile("quickstart.kr", src)
		if err != nil {
			t.Fatal(err)
		}
		prof, _, err := prog.Profile(nil)
		if err != nil {
			t.Fatal(err)
		}
		return prog.Plan(prof, planner.OpenMP()).Render()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("plan rendering is not deterministic:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "scale") {
		t.Fatalf("quickstart plan misses the DOALL loop in scale():\n%s", a)
	}
}
