module kremlin

go 1.22
