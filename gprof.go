package kremlin

// The gprof-style serial hotspot report of the paper's §2.1: the flat
// profile programmers traditionally start parallelization from — regions
// ranked by self work, with no indication of whether any of it is
// parallelizable. Kremlin's plan (Program.Plan) is the replacement; this
// report exists as the baseline workflow and for the overhead comparison.

import (
	"fmt"
	"sort"
	"strings"

	"kremlin/internal/interp"
	"kremlin/internal/regions"
)

// HotspotEntry is one row of the gprof-style flat profile.
type HotspotEntry struct {
	Region  *regions.Region
	SelfPct float64 // % of total work exclusive to the region
	CumPct  float64 // running total, gprof-style
	Self    uint64
	Total   uint64 // inclusive work
	Calls   int64  // dynamic instances
}

// Hotspots turns a gprof-mode run result into the ranked flat profile.
// Loop-body regions fold into their loops, as a time profiler would
// present them.
func (p *Program) Hotspots(res *interp.Result) []HotspotEntry {
	if res.Gprof == nil || res.Work == 0 {
		return nil
	}
	var rows []HotspotEntry
	for _, e := range res.Gprof {
		r := p.Regions.Regions[e.RegionID]
		if r.Kind == regions.BodyRegion {
			continue // folded into the loop
		}
		self := e.Self
		// A loop's self work includes its body instances' self work.
		for _, c := range r.Children {
			if c.Kind != regions.BodyRegion {
				continue
			}
			for _, be := range res.Gprof {
				if be.RegionID == c.ID {
					self += be.Self
				}
			}
		}
		rows = append(rows, HotspotEntry{
			Region:  r,
			Self:    self,
			Total:   e.Total,
			Calls:   e.Count,
			SelfPct: 100 * float64(self) / float64(res.Work),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Self > rows[j].Self })
	cum := 0.0
	for i := range rows {
		cum += rows[i].SelfPct
		rows[i].CumPct = cum
	}
	return rows
}

// RenderHotspots formats the flat profile the way gprof would.
func RenderHotspots(rows []HotspotEntry) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%7s %7s %12s %12s %9s  %s\n", "self%", "cum%", "self", "total", "calls", "region")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6.2f%% %6.2f%% %12d %12d %9d  %s\n",
			r.SelfPct, r.CumPct, r.Self, r.Total, r.Calls, r.Region.Label())
	}
	return sb.String()
}
