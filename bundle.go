package kremlin

import (
	"bytes"
	"fmt"

	"kremlin/internal/absint"
	"kremlin/internal/bytecode"
	"kremlin/internal/depcheck"
	"kremlin/internal/instrument"
	"kremlin/internal/irbundle"
	"kremlin/internal/regions"
	"kremlin/internal/source"
)

// EncodeBundle serializes the compiled program to a portable KRIB1 IR
// bundle: the post-front-end module (with analysis annotations and the
// exact value/block numbering) plus the source line structure, so
// CompileBundle reconstructs a Program whose regions, instrumentation,
// bytecode, profiles, and incremental-cache keys are identical to this
// one's. This is what `kremlin-cc -emit-ir` writes and what the daemon
// accepts as a precompiled submission.
func (p *Program) EncodeBundle() []byte {
	return irbundle.Encode(p.File, p.Module)
}

// IsBundle reports whether data starts with the KRIB1 bundle magic —
// how the daemon distinguishes a precompiled submission from Kr source.
func IsBundle(data []byte) bool {
	return bytes.HasPrefix(data, []byte(irbundle.Magic))
}

// CompileBundle reconstructs a Program from a KRIB1 bundle, skipping the
// whole front end (lex/parse/typecheck/irbuild/analysis). The bundle is
// untrusted input: the decoder bounds-checks every read, a structural/
// type/SSA validator rejects any module the compiler could not have
// produced, and the lowered bytecode must pass the bytecode verifier
// before the Program is returned. Failures come back as *CompileError —
// StageParse for a malformed or invalid bundle, StageAnalysis for one
// that decodes but does not lower to verifiable bytecode — so callers
// (the CLIs' exit codes, the daemon's HTTP taxonomy) treat bundles
// exactly like source.
func CompileBundle(data []byte) (p *Program, err error) {
	defer func() {
		// The back-half passes assume compiler-produced IR; the validator
		// is meant to guarantee that, but a residual panic on a hostile
		// bundle must degrade to a diagnostic, not take down the caller.
		if r := recover(); r != nil {
			p, err = nil, bundleError(StageAnalysis, fmt.Errorf("bundle lowering panicked: %v", r))
		}
	}()
	dec, derr := irbundle.Decode(data)
	if derr != nil {
		return nil, bundleError(StageParse, derr)
	}
	facts := absint.Analyze(dec.Module)
	regs := regions.Analyze(dec.Module, dec.File)
	vet := depcheck.Analyze(regs, facts)
	p = &Program{
		File:    dec.File,
		Module:  dec.Module,
		Regions: regs,
		Instr:   instrument.Build(regs),
		Vet:     vet,
		Absint:  facts,
	}
	if verr := bytecode.Verify(p.Bytecode()); verr != nil {
		return nil, bundleError(StageAnalysis, fmt.Errorf("bytecode verification: %w", verr))
	}
	return p, nil
}

func bundleError(stage Stage, err error) *CompileError {
	errs := &source.ErrorList{}
	errs.Add("bundle", source.Pos{Offset: 0, Line: 1, Col: 1}, "%s", err.Error())
	return &CompileError{Stage: stage, Errs: errs}
}
