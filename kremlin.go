// Package kremlin is a from-scratch Go implementation of Kremlin, the
// parallelism-discovery and parallelism-planning tool of Garcia, Jeon,
// Louie & Taylor, "Kremlin: Rethinking and Rebooting gprof for the
// Multicore Age" (PLDI 2011).
//
// Given the serial source of a program written in Kr (a small C-like
// language compiled by this package), Kremlin answers the question "which
// parts of this program should I parallelize first?":
//
//	prog, err := kremlin.Compile("blur.kr", src)        // kremlin-cc
//	prof, _, err := prog.Profile(nil)                   // run instrumented binary
//	plan := prog.Plan(prof, planner.OpenMP())           // kremlin --personality=openmp
//	for _, rec := range plan.Recommendations { ... }
//
// The pipeline is the paper's: static instrumentation over a compiler IR in
// SSA form, hierarchical critical path analysis (HCPA) through a
// multi-level shadow memory at run time, on-line dictionary compression of
// the dynamic region trace, self-parallelism computation directly on the
// compressed profile, and a personality-driven planner (OpenMP, Cilk++)
// that turns the profile into a ranked list of regions with estimated
// whole-program speedups.
package kremlin

import (
	"context"
	"fmt"
	"io"
	"sync"

	"kremlin/internal/absint"
	"kremlin/internal/analysis"
	"kremlin/internal/ast"
	"kremlin/internal/bytecode"
	"kremlin/internal/depcheck"
	"kremlin/internal/hcpa"
	"kremlin/internal/inccache"
	"kremlin/internal/instrument"
	"kremlin/internal/interp"
	"kremlin/internal/ir"
	"kremlin/internal/irbuild"
	"kremlin/internal/kremlib"
	"kremlin/internal/opt"
	"kremlin/internal/parallel"
	"kremlin/internal/parser"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

// Program is a compiled, analyzed, instrumentation-ready Kr program.
type Program struct {
	File    *source.File
	AST     *ast.File
	Info    *types.Info
	Module  *ir.Module
	Regions *regions.Program
	Instr   *instrument.Module
	// Vet holds the static loop-dependence verdicts (provably parallel /
	// provably serial / unknown per loop region); the same verdicts are
	// stamped on Regions as each region's Safety.
	Vet *depcheck.Result
	// Absint holds the interval/congruence abstract interpretation facts:
	// proven-in-bounds views, proven-nonzero divisors, must-iterate loops,
	// and the lint diagnostics (definite faults, unreachable code, dead
	// stores). Always computed — depcheck and `kremlin lint` consume it
	// unconditionally; only bytecode consumption is gated (-absint=off,
	// CompileOptions.DisableAbsint).
	Absint *absint.Facts
	// Analysis reports how many induction/reduction dependencies the static
	// analysis broke.
	Analysis analysis.Stats
	// Opt reports what the optimizer did (zero unless Optimize was set).
	Opt opt.Stats

	absintOff bool
	bcOnce    sync.Once
	bc        *bytecode.Program
}

// Engine selects the execution engine backing Run/RunGprof/Profile/
// ProfileSharded. Both engines are observably identical — same output,
// counters, profiles, plans, errors, and limit-stop prefixes (the krfuzz
// differential oracle enforces this); they differ only in speed.
type Engine int

// Engines. The bytecode VM is the default; the tree-walking interpreter
// remains as the reference oracle (-engine=tree).
const (
	EngineVM   Engine = iota // block-batched bytecode VM (default)
	EngineTree               // per-IR-instruction reference interpreter
)

func (e Engine) String() string {
	if e == EngineTree {
		return "tree"
	}
	return "vm"
}

// ParseEngine parses a CLI -engine value. The empty string means the
// default engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "vm":
		return EngineVM, nil
	case "tree":
		return EngineTree, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want vm or tree)", s)
}

// Bytecode returns the program's compiled bytecode, lowering the module on
// first use (cached; safe for concurrent callers).
func (p *Program) Bytecode() *bytecode.Program {
	p.bcOnce.Do(func() {
		facts := p.Absint
		if p.absintOff {
			facts = nil // compile fully checked code; observables are identical
		}
		p.bc = bytecode.Compile(p.Module, p.Regions, p.Instr, facts)
	})
	return p.bc
}

// CompileOptions tunes the compilation pipeline.
type CompileOptions struct {
	// Optimize runs the SSA optimizer (constant folding, dead-value
	// elimination, branch folding) before region analysis, mirroring the
	// paper's post-instrumentation optimization of the instrumented binary.
	Optimize bool
	// DisableDependenceBreaking skips induction/reduction detection — the
	// §2.4 ablation showing how easy-to-break dependencies masquerade as
	// seriality under plain CPA.
	DisableDependenceBreaking bool
	// DisableAbsint (-absint=off) stops the bytecode compiler from
	// consuming abstract-interpretation facts: no unchecked opcodes, no
	// widened fusion windows. The facts themselves are still computed (vet
	// and lint always use them); profiles, plans, and program output are
	// byte-identical either way.
	DisableAbsint bool
}

// Compile parses, type-checks, lowers, and statically instruments src with
// default options. This is the library form of `make CC=kremlin-cc`.
func Compile(name, src string) (*Program, error) {
	return CompileWith(name, src, CompileOptions{})
}

// CompileWith is Compile with explicit pipeline options.
//
// Compilation failures come back as a *CompileError tagging which stage
// rejected the program (parsing vs semantic analysis), so callers — the
// CLIs' exit codes, the serve daemon's HTTP taxonomy — can distinguish a
// syntactically broken program from a semantically broken one.
func CompileWith(name, src string, o CompileOptions) (*Program, error) {
	file := source.NewFile(name, src)
	errs := &source.ErrorList{}
	tree := parser.Parse(file, errs)
	if err := errs.Err(); err != nil {
		return nil, &CompileError{Stage: StageParse, Errs: errs}
	}
	info := types.Check(tree, file, errs)
	if err := errs.Err(); err != nil {
		return nil, &CompileError{Stage: StageAnalysis, Errs: errs}
	}
	mod := irbuild.Build(tree, info, file, errs)
	if err := errs.Err(); err != nil {
		return nil, &CompileError{Stage: StageAnalysis, Errs: errs}
	}
	var ostats opt.Stats
	if o.Optimize {
		ostats = opt.Run(mod)
	}
	var stats analysis.Stats
	if o.DisableDependenceBreaking {
		analysis.Init(mod)
	} else {
		stats = analysis.Run(mod)
	}
	facts := absint.Analyze(mod)
	regs := regions.Analyze(mod, file)
	vet := depcheck.Analyze(regs, facts)
	return &Program{
		File:      file,
		AST:       tree,
		Info:      info,
		Module:    mod,
		Regions:   regs,
		Instr:     instrument.Build(regs),
		Vet:       vet,
		Absint:    facts,
		Analysis:  stats,
		Opt:       ostats,
		absintOff: o.DisableAbsint,
	}, nil
}

// RunConfig tunes an execution.
type RunConfig struct {
	Out      io.Writer // program output; nil discards
	MaxSteps uint64    // instruction budget; 0 = default
	// Ctx, when non-nil, lets the run be cancelled or deadlined mid-flight
	// (limits.ErrCancelled). Nil means the run cannot be stopped.
	Ctx context.Context
	// MaxShadowPages caps the live shadow-memory pages of an HCPA run;
	// MaxHeapWords caps the simulated heap in 8-byte words (both 0 =
	// unlimited; both fail with limits.ErrMemCap).
	MaxShadowPages int
	MaxHeapWords   uint64
	// MinDepth/MaxDepth bound the HCPA depth collection window.
	MinDepth, MaxDepth int
	// TraceDeps turns on the runtime loop-carried dependence tracer (HCPA
	// profiling only); the loops caught with a cross-iteration flow
	// dependence come back in Result.CarriedDeps. Used to cross-check the
	// static analyzer's verdicts against observed executions.
	TraceDeps bool
	// Engine selects the execution engine (default: the bytecode VM).
	Engine Engine
	// Cache, when non-nil, enables incremental re-profiling for Profile():
	// unchanged sealed functions replay their cached HCPA extents instead of
	// executing, and fresh extents are recorded for future runs. The
	// resulting profile is byte-identical to an uncached run. Ignored (the
	// run is simply uncached) when the configuration is incompatible with
	// replay: TraceDeps, a non-default depth window, or sharded profiling.
	Cache *inccache.Store
	// CacheScope, when non-empty, isolates this run's cache keyspace: records
	// read and written under one scope are invisible to every other scope of
	// the same store. The serve daemon sets it to the tenant name so tenants
	// share one bounded store without being able to replay each other's
	// records.
	CacheScope string
	// CacheStats, when non-nil and a cache session ran, receives the
	// session's hit/miss counters.
	CacheStats *inccache.Stats
}

func (p *Program) interpConfig(cfg *RunConfig, mode interp.Mode) interp.Config {
	ic := interp.Config{Mode: mode, Prog: p.Regions, Instr: p.Instr}
	if cfg != nil {
		ic.Out = cfg.Out
		ic.MaxSteps = cfg.MaxSteps
		ic.Ctx = cfg.Ctx
		ic.MaxHeapWords = cfg.MaxHeapWords
		ic.Opts = kremlib.Options{
			MinDepth: cfg.MinDepth, MaxDepth: cfg.MaxDepth,
			TraceDeps: cfg.TraceDeps, MaxShadowPages: cfg.MaxShadowPages,
		}
	}
	return ic
}

// execute dispatches one run to the configured engine.
func (p *Program) execute(cfg *RunConfig, mode interp.Mode) (*interp.Result, error) {
	ic := p.interpConfig(cfg, mode)
	if cfg != nil && cfg.Engine == EngineTree {
		return interp.Run(p.Module, ic)
	}
	return bytecode.Run(p.Bytecode(), ic)
}

// Run executes the program uninstrumented.
func (p *Program) Run(cfg *RunConfig) (*interp.Result, error) {
	return p.execute(cfg, interp.Plain)
}

// RunGprof executes with gprof-style (work-only) region profiling, the
// baseline of the paper's overhead comparison.
func (p *Program) RunGprof(cfg *RunConfig) (*interp.Result, error) {
	return p.execute(cfg, interp.Gprof)
}

// Profile executes the instrumented program, producing the compressed
// parallelism profile of one run. This is the library form of running the
// kremlin-cc-built binary.
func (p *Program) Profile(cfg *RunConfig) (*profile.Profile, *interp.Result, error) {
	ic := p.interpConfig(cfg, interp.HCPA)
	sess := p.cacheSession(cfg)
	ic.Cache = sess
	var res *interp.Result
	var err error
	if cfg != nil && cfg.Engine == EngineTree {
		res, err = interp.Run(p.Module, ic)
	} else {
		res, err = bytecode.Run(p.Bytecode(), ic)
	}
	if sess != nil && cfg.CacheStats != nil {
		*cfg.CacheStats = sess.Stats()
	}
	if err != nil {
		return nil, nil, err
	}
	if sess != nil {
		// Persist fresh records; cache write failures degrade the cache,
		// never the run.
		_ = cfg.Cache.Save()
	}
	res.Profile.Safety = p.safetyVector()
	return res.Profile, res, nil
}

// cacheSession returns the incremental-cache session for a run, or nil when
// the run configuration is incompatible with sound extent replay (dependence
// tracing changes what the runtime observes; a non-default depth window
// changes what a recorded extent means).
func (p *Program) cacheSession(cfg *RunConfig) *inccache.Session {
	if cfg == nil || cfg.Cache == nil || cfg.TraceDeps || cfg.MinDepth != 0 {
		return nil
	}
	if cfg.MaxDepth != 0 && cfg.MaxDepth != kremlib.DefaultMaxDepth {
		return nil
	}
	return cfg.Cache.SessionScoped(p.Regions, cfg.CacheScope)
}

// safetyVector flattens the per-region static dependence verdicts into the
// profile's region-ID-indexed safety section.
func (p *Program) safetyVector() []uint8 {
	out := make([]uint8, len(p.Regions.Regions))
	for i, r := range p.Regions.Regions {
		out[i] = uint8(r.Safety)
	}
	return out
}

// ProfileSharded splits HCPA collection across shards complementary
// region-depth windows executed concurrently (each with its own runtime and
// shadow memory) and stitches the windowed profiles into one full-depth
// profile. A probe pre-pass sizes the windows so the tracking cost is
// balanced. shards ≤ 1 degenerates to one sequential full-window run.
func (p *Program) ProfileSharded(cfg *RunConfig, shards int) (*profile.Profile, *parallel.Result, error) {
	pc := parallel.Config{Shards: shards}
	if cfg != nil {
		pc.Out = cfg.Out
		pc.MaxSteps = cfg.MaxSteps
		pc.MaxDepth = cfg.MaxDepth
		pc.Ctx = cfg.Ctx
		pc.MaxShadowPages = cfg.MaxShadowPages
		pc.MaxHeapWords = cfg.MaxHeapWords
	}
	if cfg == nil || cfg.Engine != EngineTree {
		pc.Code = p.Bytecode()
	}
	res, err := parallel.Run(p.Module, p.Regions, p.Instr, pc)
	if err != nil {
		return nil, nil, err
	}
	res.Profile.Safety = p.safetyVector()
	return res.Profile, res, nil
}

// Summarize aggregates a profile into per-static-region HCPA metrics
// (work, coverage, self-parallelism, total-parallelism, DOALL detection).
func (p *Program) Summarize(prof *profile.Profile) *hcpa.Summary {
	return hcpa.Summarize(prof, p.Regions)
}

// Plan produces the ordered parallelism plan for a profile under the given
// planner personality. This is the library form of
// `kremlin prog --personality=...`.
func (p *Program) Plan(prof *profile.Profile, pers planner.Personality) *planner.Plan {
	return planner.Make(p.Summarize(prof), pers)
}

// Func returns the named IR function, or nil (test/debug convenience).
func (p *Program) Func(name string) *ir.Func { return p.Module.ByName[name] }
