package kremlin_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (run `go test -bench=. -benchmem`). Each benchmark regenerates
// its experiment through internal/eval and reports the headline numbers as
// custom metrics, so `go test -bench` output doubles as the reproduction
// record; EXPERIMENTS.md is produced from the same data via
// cmd/kremlin-bench.

import (
	"fmt"
	"testing"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/eval"
	"kremlin/internal/exec"
	"kremlin/internal/interp"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
)

// BenchmarkFig3TrackingPlan regenerates Figure 3: the ranked plan for the
// feature-tracking benchmark.
func BenchmarkFig3TrackingPlan(b *testing.B) {
	c, err := bench.Load(bench.Tracking())
	if err != nil {
		b.Fatal(err)
	}
	var planLen int
	for i := 0; i < b.N; i++ {
		plan := c.Program.Plan(c.Profile, planner.OpenMP())
		planLen = len(plan.Recs)
	}
	b.ReportMetric(float64(planLen), "plan-regions")
}

// BenchmarkFig5SelfParallelism measures the self-parallelism computation
// over a full benchmark profile (the per-character SP of §4.3/Figure 5).
func BenchmarkFig5SelfParallelism(b *testing.B) {
	c, err := bench.Load(bench.ByName("cg"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Program.Summarize(c.Profile)
	}
}

// BenchmarkFig6aPlanSize regenerates Figure 6(a): plan sizes, MANUAL vs
// Kremlin, across the whole suite.
func BenchmarkFig6aPlanSize(b *testing.B) {
	var manual, kremlin int
	var reduction float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		manual, kremlin, _, reduction, _ = totals(rows)
	}
	b.ReportMetric(float64(manual), "manual-regions")
	b.ReportMetric(float64(kremlin), "kremlin-regions")
	b.ReportMetric(reduction, "size-reduction-x")
}

func totals(rows []eval.Fig6Row) (int, int, int, float64, float64) {
	return eval.Fig6Totals(rows)
}

// BenchmarkFig6bSpeedup regenerates Figure 6(b): simulated speedup of the
// Kremlin plan relative to MANUAL.
func BenchmarkFig6bSpeedup(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		_, _, _, _, geo = eval.Fig6Totals(rows)
	}
	b.ReportMetric(geo, "geomean-relative-x")
}

// BenchmarkFig7MarginalBenefit regenerates Figure 7's marginal-benefit
// curves.
func BenchmarkFig7MarginalBenefit(b *testing.B) {
	var series int
	for i := 0; i < b.N; i++ {
		s, err := eval.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		series = len(s)
	}
	b.ReportMetric(float64(series), "benchmarks")
}

// BenchmarkFig8PlanFractions regenerates Figure 8: benefit per plan
// quarter.
func BenchmarkFig8PlanFractions(b *testing.B) {
	var first float64
	for i := 0; i < b.N; i++ {
		_, avg, _, err := eval.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		first = avg[0]
	}
	b.ReportMetric(first, "first-quarter-benefit-%")
}

// BenchmarkFig9PlanSizeReduction regenerates Figure 9: plan size under
// work-only / +self-parallelism / full-planner configurations.
func BenchmarkFig9PlanSizeReduction(b *testing.B) {
	var avg [3]float64
	for i := 0; i < b.N; i++ {
		var err error
		_, avg, err = eval.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avg[0], "work-only-%")
	b.ReportMetric(avg[1], "work+sp-%")
	b.ReportMetric(avg[2], "full-planner-%")
}

// BenchmarkCompressionRatio regenerates the §4.4 trace-compression table.
func BenchmarkCompressionRatio(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, avg, err := eval.Compression()
		if err != nil {
			b.Fatal(err)
		}
		ratio = avg
	}
	b.ReportMetric(ratio, "avg-compression-x")
}

// BenchmarkInstrumentationOverhead regenerates the §4.4 overhead
// comparison (plain vs gprof-style vs HCPA execution).
func BenchmarkInstrumentationOverhead(b *testing.B) {
	var vsGprof float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Overhead()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.VsGprof
		}
		vsGprof = sum / float64(len(rows))
	}
	b.ReportMetric(vsGprof, "hcpa-vs-gprof-x")
}

// BenchmarkSPClassification regenerates the §6.2 low-parallelism
// classification comparison (self-P vs total-P at threshold 5.0).
func BenchmarkSPClassification(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		selfLow, totalLow, _, err := eval.SPClassification(5.0)
		if err != nil {
			b.Fatal(err)
		}
		factor = selfLow / totalLow
	}
	b.ReportMetric(factor, "false-positive-reduction-x")
}

// BenchmarkInputSensitivity regenerates §6.1's train-plan-on-ref-input
// check for the SPEC benchmarks.
func BenchmarkInputSensitivity(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.InputSensitivity()
		if err != nil {
			b.Fatal(err)
		}
		worst = 10
		for _, r := range rows {
			if v := r.RefSpeedup / r.TrainSpeedup; v < worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-ref/train-x")
}

// BenchmarkAblationDependenceBreaking regenerates the §2.4 ablation.
func BenchmarkAblationDependenceBreaking(b *testing.B) {
	var collapsed int
	for i := 0; i < b.N; i++ {
		rows, err := eval.DependenceBreakingAblation()
		if err != nil {
			b.Fatal(err)
		}
		collapsed = 0
		for _, r := range rows {
			collapsed += r.LoopsCollapsed
		}
	}
	b.ReportMetric(float64(collapsed), "sp-collapses")
}

// BenchmarkAblationCompressedPlanning regenerates the §4.4
// plan-on-compressed-data ablation.
func BenchmarkAblationCompressedPlanning(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.CompressedPlanningAblation()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Speedup
		}
		speedup = sum / float64(len(rows))
	}
	b.ReportMetric(speedup, "planning-speedup-x")
}

// --- microbenchmarks of the core machinery ---

// BenchmarkHCPAProfiling measures instrumented execution throughput on one
// benchmark (the cost every experiment pays).
func BenchmarkHCPAProfiling(b *testing.B) {
	bm := bench.ByName("cg")
	prog, err := kremlin.Compile("cg.kr", bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := prog.Profile(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlainInterpretation measures uninstrumented execution.
func BenchmarkPlainInterpretation(b *testing.B) {
	bm := bench.ByName("cg")
	prog, err := kremlin.Compile("cg.kr", bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilePipeline measures the full front end (parse, check,
// lower, SSA, analyses, region extraction) on the largest source.
func BenchmarkCompilePipeline(b *testing.B) {
	bm := bench.ByName("bt")
	for i := 0; i < b.N; i++ {
		if _, err := kremlin.Compile("bt.kr", bm.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDictIntern measures the on-line compression hot path.
func BenchmarkDictIntern(b *testing.B) {
	d := profile.NewDict()
	kids := map[int32]int64{}
	for i := 0; i < b.N; i++ {
		c := d.Intern(int32(i%64), uint64(i%1000), uint64(i%100)+1, kids)
		if i%7 == 0 {
			kids = map[int32]int64{c: int64(i%3) + 1}
		}
	}
}

// BenchmarkSimulate measures one plan simulation over a full profile.
func BenchmarkSimulate(b *testing.B) {
	c, err := bench.Load(bench.ByName("sp"))
	if err != nil {
		b.Fatal(err)
	}
	plan := c.Program.Plan(c.Profile, planner.OpenMP())
	ids := map[int]bool{}
	for _, r := range plan.Recs {
		ids[r.Stats.Region.ID] = true
	}
	m := exec.Default32()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Simulate(c.Summary, ids, m)
	}
}

// BenchmarkProfileSerialization measures profile write+read round trips.
func BenchmarkProfileSerialization(b *testing.B) {
	c, err := bench.Load(bench.ByName("mg"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Profile.MarshalSize()
	}
}

// --- engine dispatch microbenchmarks (tree-walker vs bytecode VM) ---

// dispatchProg is a tight arithmetic/array kernel: ~1.5M interpreter
// steps dominated by the per-instruction dispatch cost being measured.
const dispatchProg = `
int a[256];
void main() {
	for (int i = 0; i < 256; i++) { a[i] = i; }
	int s = 0;
	for (int r = 0; r < 2000; r++) {
		for (int i = 1; i < 256; i++) {
			s = s + a[i] * 3 - a[i-1] % 7;
		}
	}
	print(s);
}`

func benchDispatch(b *testing.B, eng kremlin.Engine, hcpa bool) {
	prog, err := kremlin.Compile("dispatch.kr", dispatchProg)
	if err != nil {
		b.Fatal(err)
	}
	cfg := &kremlin.RunConfig{Engine: eng}
	var steps uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *interp.Result
		if hcpa {
			_, res, err = prog.Profile(cfg)
		} else {
			res, err = prog.Run(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(steps), "ns/step")
}

// BenchmarkDispatchPlain compares raw per-instruction dispatch cost:
// the tree-walker's IR pointer-chasing vs the VM's flat bytecode loop.
func BenchmarkDispatchPlain(b *testing.B) {
	b.Run("vm", func(b *testing.B) { benchDispatch(b, kremlin.EngineVM, false) })
	b.Run("tree", func(b *testing.B) { benchDispatch(b, kremlin.EngineTree, false) })
}

// BenchmarkDispatchHCPA compares instrumented dispatch: the tree-walker's
// per-instruction kremlib.Step calls vs the VM's block-batched StepBlock.
func BenchmarkDispatchHCPA(b *testing.B) {
	b.Run("vm", func(b *testing.B) { benchDispatch(b, kremlin.EngineVM, true) })
	b.Run("tree", func(b *testing.B) { benchDispatch(b, kremlin.EngineTree, true) })
}

// TestVMHotPathAllocs proves the VM dispatch loop allocates nothing per
// step: total allocations for a run must not grow with the step count
// (fixed setup allocations — machine, globals, register file — are the
// same for both programs; only the loop trip count differs).
func TestVMHotPathAllocs(t *testing.T) {
	mk := func(iters int) *kremlin.Program {
		src := fmt.Sprintf(`
int a[256];
void main() {
	for (int i = 0; i < 256; i++) { a[i] = i; }
	int s = 0;
	for (int r = 0; r < %d; r++) {
		for (int i = 1; i < 256; i++) {
			s = s + a[i] * 3 - a[i-1] %% 7;
		}
	}
	print(s);
}`, iters)
		prog, err := kremlin.Compile("allocs.kr", src)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	measure := func(p *kremlin.Program) float64 {
		if _, err := p.Run(nil); err != nil { // warm the bytecode cache
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := p.Run(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(mk(10))
	big := measure(mk(2000)) // ~200× the steps
	if big > small+0.5 {
		t.Errorf("VM allocations scale with steps: %v allocs at 10 iters, %v at 2000", small, big)
	}
}

// BenchmarkScalingSweep regenerates the Figure-6(b) absolute-speedup
// scaling data (1-32 cores under the Kremlin plan).
func BenchmarkScalingSweep(b *testing.B) {
	var worst, best float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Scaling()
		if err != nil {
			b.Fatal(err)
		}
		worst, best = 1e9, 0
		for _, r := range rows {
			if r.Best < worst {
				worst = r.Best
			}
			if r.Best > best {
				best = r.Best
			}
		}
	}
	b.ReportMetric(worst, "min-best-speedup-x")
	b.ReportMetric(best, "max-best-speedup-x")
}
