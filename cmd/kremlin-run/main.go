// Command kremlin-run executes an instrumented Kr program — the
// equivalent of running the kremlin-cc-built binary. The program runs
// normally (its output goes to stdout) while hierarchical critical path
// analysis records the parallelism profile, which is compressed on line
// and written to a .krpf file for the planner.
//
// Multiple runs can append into the same profile (-merge), the paper's
// multi-run aggregation that reduces input sensitivity.
//
// Usage:
//
//	kremlin-run [-mode=hcpa|gprof] [-o prog.krpf] [-merge] [-mindepth N] [-maxdepth N] prog.kr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kremlin"
	"kremlin/internal/profile"
)

func main() {
	out := flag.String("o", "", "profile output path (default: source with .krpf extension)")
	merge := flag.Bool("merge", false, "merge into an existing profile instead of replacing it")
	maxDepth := flag.Int("maxdepth", 0, "region-depth collection window upper bound (0 = default)")
	minDepth := flag.Int("mindepth", 0, "region-depth collection window lower bound")
	mode := flag.String("mode", "hcpa", "instrumentation mode: hcpa (parallelism profile) or gprof (serial hotspot list)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kremlin-run [-o prog.krpf] [-merge] [-maxdepth N] prog.kr")
		os.Exit(2)
	}
	path := flag.Arg(0)
	if *out == "" {
		*out = strings.TrimSuffix(path, ".kr") + ".krpf"
	}
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}
	prog, err := kremlin.Compile(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *mode == "gprof" {
		// The paper's §2.1 baseline workflow: a serial hotspot list with no
		// parallelism information.
		res, err := prog.RunGprof(&kremlin.RunConfig{Out: os.Stdout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-run:", err)
			os.Exit(1)
		}
		fmt.Print(kremlin.RenderHotspots(prog.Hotspots(res)))
		return
	}
	prof, res, err := prog.Profile(&kremlin.RunConfig{Out: os.Stdout, MinDepth: *minDepth, MaxDepth: *maxDepth})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}

	if *merge {
		if f, err := os.Open(*out); err == nil {
			old, rerr := profile.ReadFrom(f)
			f.Close()
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "kremlin-run: existing profile %s: %v\n", *out, rerr)
				os.Exit(1)
			}
			old.Merge(prof)
			prof = old
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}
	if _, err := prof.WriteTo(f); err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kremlin-run: %d work units; %d dynamic regions compressed to %d dictionary entries (%d bytes, raw %d bytes); profile written to %s\n",
		res.Work, prof.Dict.RawCount, len(prof.Dict.Entries), prof.MarshalSize(), prof.RawBytes(), *out)
}
