// Command kremlin-run executes an instrumented Kr program — the
// equivalent of running the kremlin-cc-built binary. The program runs
// normally (its output goes to stdout) while hierarchical critical path
// analysis records the parallelism profile, which is compressed on line
// and written to a .krpf file for the planner.
//
// Multiple runs can append into the same profile (-merge), the paper's
// multi-run aggregation that reduces input sensitivity.
//
// With -shards K > 1, HCPA collection is split across K complementary
// region-depth windows profiled concurrently and stitched back into one
// full-depth profile — the paper's scheme for making the profiler itself
// exploit multicore.
//
// Usage:
//
//	kremlin-run [-mode=hcpa|gprof] [-o prog.krpf] [-merge] [-mindepth N] [-maxdepth N]
//	            [-shards K] [-timeout d] [-max-insns N] [-cpuprofile f] [-memprofile f] prog.kr
//
// Exit codes follow the shared taxonomy (kremlin.ExitCodeFor): 0 success,
// 1 I/O or other error, 2 usage, 3 parse error, 4 analysis error, 5
// runtime error, 6 resource limit (budget, -timeout deadline, memory cap).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"kremlin"
	"kremlin/internal/inccache"
	"kremlin/internal/profile"
)

// fail reports err and exits with its taxonomy code.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "kremlin-run:", err)
	os.Exit(kremlin.ExitCodeFor(err))
}

func main() {
	out := flag.String("o", "", "profile output path (default: source with .krpf extension)")
	merge := flag.Bool("merge", false, "merge into an existing profile instead of replacing it")
	maxDepth := flag.Int("maxdepth", 0, "region-depth collection window upper bound (0 = default)")
	minDepth := flag.Int("mindepth", 0, "region-depth collection window lower bound")
	shards := flag.Int("shards", 1, "split HCPA collection across K concurrent depth-window shard runs")
	mode := flag.String("mode", "hcpa", "instrumentation mode: hcpa (parallelism profile) or gprof (serial hotspot list)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the run (0 = none); overrun exits 6")
	maxInsns := flag.Uint64("max-insns", 0, "instruction budget for the run (0 = default); overrun exits 6")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProf := flag.String("memprofile", "", "write a heap profile to this path")
	engine := flag.String("engine", "vm", "execution engine: vm (block-batched bytecode) or tree (reference interpreter)")
	cacheDir := flag.String("cache-dir", "", "incremental profile cache directory (hcpa mode, unsharded, full depth window only)")
	cacheStats := flag.Bool("cache-stats", false, "print incremental-cache statistics to stderr after the run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kremlin-run [-o prog.krpf] [-merge] [-maxdepth N] [-shards K] prog.kr")
		os.Exit(2)
	}
	eng, err := kremlin.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kremlin-run: %v\n", err)
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-run:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-run:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kremlin-run:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "kremlin-run:", err)
			}
			f.Close()
		}()
	}
	path := flag.Arg(0)
	if *out == "" {
		*out = strings.TrimSuffix(path, ".kr") + ".krpf"
	}
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}
	prog, err := kremlin.Compile(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(kremlin.ExitCodeFor(err))
	}
	// -timeout and -max-insns ride the same context/budget plumbing the
	// serve daemon uses, so the CLI and the daemon stop runaway programs
	// identically.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *mode == "gprof" {
		// The paper's §2.1 baseline workflow: a serial hotspot list with no
		// parallelism information.
		res, err := prog.RunGprof(&kremlin.RunConfig{Out: os.Stdout, Ctx: ctx, MaxSteps: *maxInsns, Engine: eng})
		if err != nil {
			fail(err)
		}
		fmt.Print(kremlin.RenderHotspots(prog.Hotspots(res)))
		return
	}
	cfg := &kremlin.RunConfig{
		Out: os.Stdout, MinDepth: *minDepth, MaxDepth: *maxDepth,
		Ctx: ctx, MaxSteps: *maxInsns, Engine: eng,
	}
	// The incremental cache only applies to full-depth, unsharded HCPA
	// collection (the cache records full sub-profiles; a depth window or
	// shard run would record partial ones).
	var stats inccache.Stats
	if *cacheDir != "" {
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "kremlin-run: -cache-dir is ignored with -shards > 1")
		} else {
			st, err := inccache.Open(*cacheDir)
			if err != nil {
				fail(err)
			}
			cfg.Cache = st
			cfg.CacheStats = &stats
		}
	}
	var prof *profile.Profile
	var work uint64
	if *shards > 1 {
		sprof, sres, err := prog.ProfileSharded(cfg, *shards)
		if err != nil {
			fail(err)
		}
		prof, work = sprof, sres.Work()
		fmt.Fprintf(os.Stderr, "kremlin-run: %d depth-window shards:", len(sres.Windows))
		for _, w := range sres.Windows {
			fmt.Fprintf(os.Stderr, " [%d,%d)", w.Lo, w.Hi)
		}
		fmt.Fprintln(os.Stderr)
	} else {
		fprof, res, err := prog.Profile(cfg)
		if err != nil {
			fail(err)
		}
		prof, work = fprof, res.Work
	}
	if cfg.Cache != nil && *cacheStats {
		fmt.Fprintf(os.Stderr, "kremlin-run: cache %s: %d/%d hits (%.1f%%), %d recorded, %d steps skipped, %d corrupt repaired\n",
			*cacheDir, stats.Hits, stats.Lookups, 100*stats.HitRate(),
			stats.Recorded, stats.SkippedSteps, stats.Corrupt)
	}

	if *merge {
		if f, err := os.Open(*out); err == nil {
			old, rerr := profile.ReadFrom(f)
			f.Close()
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "kremlin-run: existing profile %s: %v\n", *out, rerr)
				os.Exit(1)
			}
			old.Merge(prof)
			prof = old
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}
	if _, err := prof.WriteTo(f); err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-run:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kremlin-run: %d work units; %d dynamic regions compressed to %d dictionary entries (%d bytes, raw %d bytes); profile written to %s\n",
		work, prof.Dict.RawCount, len(prof.Dict.Entries), prof.MarshalSize(), prof.RawBytes(), *out)
}
