// Command kremlin is the planner front end of Figure 3: given a program
// and its parallelism profile, it prints the ordered parallelism plan for
// the chosen planner personality.
//
// Usage:
//
//	kremlin [-personality=openmp|cilk|work-only|work+sp] [-profile prog.krpf]
//	        [-exclude label,label,...] [-require-safe] prog.kr
//	kremlin vet [-json] prog.kr
//	kremlin lint [-json] prog.kr
//
// Without -profile, the program is profiled on the fly. -exclude removes
// regions the user is unable or unwilling to parallelize and replans (the
// paper's exclusion-list workflow). Labels are as printed by -labels.
// -require-safe drops regions whose parallelization the static
// loop-dependence analysis refuted.
//
// The vet subcommand skips profiling entirely and prints the static
// loop-dependence verdict for every loop: provably parallel, provably
// serial (with the offending dependences), or unknown (with what blocked
// the proof).
//
// The lint subcommand prints the abstract interpreter's findings —
// definite faults (out-of-bounds index, division by zero, non-positive
// allocation extent), possible index-arithmetic overflow, unreachable
// code, and dead stores — one file:line:col diagnostic per finding, and
// exits 7 when anything was reported (0 when clean). With -json, vet and
// lint emit one JSON object per line instead of the rendered text.
//
// -absint=off disables consumption of the interval analysis by the
// bytecode compiler (all bounds checks stay explicit); profiles, plans,
// and program output are byte-identical either way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"kremlin"
	"kremlin/internal/depcheck"
	"kremlin/internal/inccache"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
)

// fail reports err and exits with its taxonomy code (3 parse, 4 analysis,
// 5 runtime, 6 limit, 7 lint, 1 other — see kremlin.ExitCodeFor).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "kremlin:", err)
	os.Exit(kremlin.ExitCodeFor(err))
}

func main() {
	pers := flag.String("personality", "openmp", "planner personality: openmp, cilk, work-only, work+sp")
	profPath := flag.String("profile", "", "profile file from kremlin-run (default: profile on the fly)")
	exclude := flag.String("exclude", "", "comma-separated region labels to exclude")
	labels := flag.Bool("labels", false, "print region labels usable with -exclude")
	requireSafe := flag.Bool("require-safe", false, "drop regions whose parallelization the static dependence analysis refuted")
	shards := flag.Int("shards", 1, "profile with K concurrent depth-window shard runs (on-the-fly profiling only)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for on-the-fly profiling (0 = none); overrun exits 6")
	maxInsns := flag.Uint64("max-insns", 0, "instruction budget for on-the-fly profiling (0 = default); overrun exits 6")
	engine := flag.String("engine", "vm", "execution engine: vm (block-batched bytecode) or tree (reference interpreter)")
	cacheDir := flag.String("cache-dir", "", "incremental profile cache directory (on-the-fly unsharded profiling only)")
	cacheStats := flag.Bool("cache-stats", false, "print incremental-cache statistics to stderr after profiling")
	jsonOut := flag.Bool("json", false, "vet/lint: emit one JSON object per loop/finding instead of text")
	absintMode := flag.String("absint", "on", "interval analysis feeding the bytecode compiler: on or off")
	flag.IntVar(shards, "j", 1, "shorthand for -shards")
	// Subcommands come first (`kremlin vet -json prog.kr`), so lift them
	// out before flag parsing; the historical flags-first spelling
	// (`kremlin -json vet prog.kr`) keeps working through Arg(0) below.
	mode := ""
	argv := os.Args[1:]
	if len(argv) > 0 && (argv[0] == "vet" || argv[0] == "lint") {
		mode = argv[0]
		argv = argv[1:]
	}
	_ = flag.CommandLine.Parse(argv)
	eng, err := kremlin.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kremlin: %v\n", err)
		os.Exit(2)
	}
	if *absintMode != "on" && *absintMode != "off" {
		fmt.Fprintf(os.Stderr, "kremlin: -absint must be on or off (got %q)\n", *absintMode)
		os.Exit(2)
	}
	if mode == "" && flag.NArg() == 2 {
		if a := flag.Arg(0); a == "vet" || a == "lint" {
			mode = a
		}
	}
	vet := mode == "vet"
	lint := mode == "lint"
	okArgs := flag.NArg() == 1 || (flag.NArg() == 2 && flag.Arg(0) == mode)
	if !okArgs {
		fmt.Fprintln(os.Stderr, "usage: kremlin [-personality=p] [-profile f.krpf] [-exclude a,b] [-require-safe] prog.kr")
		fmt.Fprintln(os.Stderr, "       kremlin vet [-json] prog.kr")
		fmt.Fprintln(os.Stderr, "       kremlin lint [-json] prog.kr")
		os.Exit(2)
	}
	path := flag.Arg(flag.NArg() - 1)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kremlin:", err)
		os.Exit(1)
	}
	prog, err := kremlin.CompileWith(path, string(src), kremlin.CompileOptions{
		DisableAbsint: *absintMode == "off",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(kremlin.ExitCodeFor(err))
	}

	if vet {
		printVet(prog.Vet, *jsonOut)
		return
	}
	if lint {
		os.Exit(printLint(prog, *jsonOut))
	}

	var prof *profile.Profile
	if *profPath != "" {
		f, err := os.Open(*profPath)
		if err != nil {
			fail(err)
		}
		prof, err = profile.ReadFrom(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		// On-the-fly profiling honors the same deadline/budget plumbing
		// as kremlin-run and the serve daemon.
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		cfg := &kremlin.RunConfig{Ctx: ctx, MaxSteps: *maxInsns, Engine: eng}
		var stats inccache.Stats
		if *cacheDir != "" && *shards == 1 {
			st, err := inccache.Open(*cacheDir)
			if err != nil {
				fail(err)
			}
			cfg.Cache = st
			cfg.CacheStats = &stats
		} else if *cacheDir != "" {
			fmt.Fprintln(os.Stderr, "kremlin: -cache-dir is ignored with -shards > 1")
		}
		if *shards > 1 {
			prof, _, err = prog.ProfileSharded(cfg, *shards)
		} else {
			prof, _, err = prog.Profile(cfg)
		}
		if err != nil {
			fail(err)
		}
		if cfg.Cache != nil && *cacheStats {
			fmt.Fprintf(os.Stderr, "kremlin: cache %s: %d/%d hits (%.1f%%), %d recorded, %d steps skipped, %d corrupt repaired\n",
				*cacheDir, stats.Hits, stats.Lookups, 100*stats.HitRate(),
				stats.Recorded, stats.SkippedSteps, stats.Corrupt)
		}
	}

	if *labels {
		sum := prog.Summarize(prof)
		for _, st := range sum.Executed {
			fmt.Printf("%-40s SP=%8.1f cov=%6.2f%%\n", st.Region.Label(), st.SelfP, 100*st.Coverage)
		}
		return
	}

	var p planner.Personality
	switch *pers {
	case "openmp":
		p = planner.OpenMP()
	case "cilk":
		p = planner.Cilk()
	case "work-only":
		p = planner.WorkOnly()
	case "work+sp":
		p = planner.WorkSP()
	default:
		fmt.Fprintf(os.Stderr, "kremlin: unknown personality %q\n", *pers)
		os.Exit(2)
	}

	var opts []planner.Option
	if *exclude != "" {
		opts = append(opts, planner.Exclude(strings.Split(*exclude, ",")...))
	}
	if *requireSafe {
		opts = append(opts, planner.RequireSafe())
	}
	plan := planner.Make(prog.Summarize(prof), p, opts...)
	fmt.Print(plan.Render())
}

// printVet renders the static loop-dependence report in region-ID order.
// With asJSON it emits one object per loop followed by a summary object,
// so CI and serve can consume verdicts without scraping the table.
func printVet(res *depcheck.Result, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		type loopJSON struct {
			Label    string   `json:"label"`
			Verdict  string   `json:"verdict"`
			Causes   []string `json:"causes,omitempty"`
			Blockers []string `json:"blockers,omitempty"`
		}
		for _, rep := range res.Loops {
			lj := loopJSON{Label: rep.Region.Label(), Verdict: rep.Verdict.String()}
			for _, c := range rep.Causes {
				lj.Causes = append(lj.Causes, c.String())
			}
			for _, c := range rep.Blockers {
				lj.Blockers = append(lj.Blockers, c.String())
			}
			_ = enc.Encode(lj)
		}
		par, ser, unk := res.Counts()
		_ = enc.Encode(struct {
			Loops    int `json:"loops"`
			Parallel int `json:"parallel"`
			Serial   int `json:"serial"`
			Unknown  int `json:"unknown"`
		}{len(res.Loops), par, ser, unk})
		return
	}
	for _, rep := range res.Loops {
		fmt.Printf("%-44s %s\n", rep.Region.Label(), rep.Verdict)
		for _, c := range rep.Causes {
			fmt.Printf("    dependence  %s\n", c)
		}
		for _, c := range rep.Blockers {
			fmt.Printf("    blocker     %s\n", c)
		}
	}
	par, ser, unk := res.Counts()
	fmt.Printf("%d loops: %d provably parallel, %d provably serial, %d unknown\n",
		len(res.Loops), par, ser, unk)
}

// printLint renders the abstract-interpretation findings and returns the
// process exit code: ExitLint when anything was reported, 0 when clean.
func printLint(prog *kremlin.Program, asJSON bool) int {
	findings := prog.Lint()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			_ = enc.Encode(f)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		return kremlin.ExitLint
	}
	return kremlin.ExitOK
}
