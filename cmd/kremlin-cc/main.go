// Command kremlin-cc is the compiler front half of the toolchain (the
// paper's `make CC=kremlin-cc`): it compiles a Kr source file, runs the
// static analyses (SSA promotion, induction/reduction detection, region
// extraction, instrumentation planning), and reports what it found. With
// -run it also executes the program uninstrumented.
//
// Usage:
//
//	kremlin-cc [-dump-ast] [-dump-ir] [-dump-regions] [-emit-ir out.krib] [-run] prog.kr
//
// -emit-ir writes the compiled program as a KRIB1 IR bundle, the
// precompiled form kremlin-serve accepts at POST /v1/jobs with
// Content-Type application/x-kremlin-ir.
package main

import (
	"flag"
	"fmt"
	"os"

	"kremlin"
	"kremlin/internal/ast"
	"kremlin/internal/regions"
)

func main() {
	dumpAST := flag.Bool("dump-ast", false, "print the canonicalized source (AST printer)")
	dumpIR := flag.Bool("dump-ir", false, "print the SSA IR of every function")
	dumpRegions := flag.Bool("dump-regions", false, "print the static region tree")
	run := flag.Bool("run", false, "execute the program (uninstrumented) after compiling")
	emitIR := flag.String("emit-ir", "", "write the compiled program as a KRIB1 IR bundle to this path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kremlin-cc [-dump-ir] [-dump-regions] [-run] prog.kr")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-cc:", err)
		os.Exit(1)
	}
	prog, err := kremlin.Compile(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var loops, funcs int
	for _, r := range prog.Regions.Regions {
		switch r.Kind {
		case regions.LoopRegion:
			loops++
		case regions.FuncRegion:
			funcs++
		}
	}
	fmt.Printf("%s: %d functions, %d loop regions, %d regions total\n",
		path, funcs, loops, len(prog.Regions.Regions))
	fmt.Printf("broken dependencies: %d induction, %d reduction (SSA), %d reduction (memory)\n",
		prog.Analysis.InductionPhis, prog.Analysis.ReductionPhis, prog.Analysis.MemoryReductions)

	if *dumpAST {
		fmt.Print(ast.Print(prog.AST))
	}
	if *dumpIR {
		fmt.Print(prog.Module.String())
	}
	if *dumpRegions {
		for _, r := range prog.Regions.Regions {
			indent := 0
			for p := r.Parent; p != nil; p = p.Parent {
				indent++
			}
			for i := 0; i < indent; i++ {
				fmt.Print("  ")
			}
			fmt.Printf("[%d] %s\n", r.ID, r)
		}
	}
	if *emitIR != "" {
		data := prog.EncodeBundle()
		if err := os.WriteFile(*emitIR, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-cc:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d bytes (KRIB1)\n", *emitIR, len(data))
	}
	if *run {
		res, err := prog.Run(&kremlin.RunConfig{Out: os.Stdout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-cc: run:", err)
			os.Exit(1)
		}
		fmt.Printf("executed: %d instructions, %d work units\n", res.Steps, res.Work)
	}
}
