// Command kremlin-serve runs the Kremlin profiling daemon: POST a Kr
// program to /profile and receive its parallelism profile, ranked plan,
// and static vet report as an NDJSON stream.
//
// Usage:
//
//	kremlin-serve [-addr :8080] [-workers N] [-queue N] [-job-timeout d]
//	              [-max-insns N] [-max-pages N] [-max-heap-words N]
//	              [-rate R] [-burst N] [-shards K] [-job-cache N]
//	              [-compile-cache N] [-inccache-dir path] [-inccache-max N]
//
// The daemon sheds load with 429 when the queue is full, rate-limits
// per tenant (X-Kremlin-Tenant header) when -rate is set, and drains
// gracefully on SIGINT/SIGTERM: in-flight and queued jobs finish, new
// submissions get 503, then the process exits. See docs/serve.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kremlin"
	"kremlin/internal/inccache"
	"kremlin/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", serve.DefaultWorkers, "worker pool size (concurrent jobs)")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth (beyond it: 429)")
	jobTimeout := flag.Duration("job-timeout", serve.DefaultJobTimeout, "per-job wall-clock deadline")
	maxInsns := flag.Uint64("max-insns", serve.DefaultMaxInsns, "per-job instruction budget")
	maxPages := flag.Int("max-pages", serve.DefaultMaxPages, "per-job shadow-memory page cap")
	maxHeap := flag.Uint64("max-heap-words", serve.DefaultMaxHeap, "per-job simulated-heap cap (8-byte words)")
	rate := flag.Float64("rate", 0, "per-tenant jobs/sec (0 = no rate limiting)")
	burst := flag.Int("burst", 0, "per-tenant burst (default 2x rate)")
	shards := flag.Int("shards", 1, "depth-window shards per job")
	jobCache := flag.Int("job-cache", 256, "memoize up to N successful jobs by content hash (0 = off)")
	compileCache := flag.Int("compile-cache", 256, "memoize up to N compiled programs by content hash (0 = off)")
	incDir := flag.String("inccache-dir", "", "shared incremental re-profiling cache directory (empty = off; tenants get isolated keyspaces)")
	incMax := flag.Int("inccache-max", 1<<16, "record bound for the shared inccache (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to finish in-flight jobs on shutdown")
	engine := flag.String("engine", "vm", "per-job execution engine: vm (block-batched bytecode) or tree (reference interpreter)")
	noLint := flag.Bool("no-lint", false, "disable the lint admission gate (provably-faulting programs execute instead of being rejected)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: kremlin-serve [flags]")
		os.Exit(2)
	}
	eng, err := kremlin.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kremlin-serve: %v\n", err)
		os.Exit(2)
	}
	var incStore *inccache.Store
	if *incDir != "" {
		incStore, err = inccache.Open(*incDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kremlin-serve: inccache: %v\n", err)
			os.Exit(1)
		}
		incStore.SetMaxRecords(*incMax)
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *jobTimeout,
		MaxInsns:       *maxInsns,
		MaxShadowPages: *maxPages,
		MaxHeapWords:   *maxHeap,
		RatePerSec:     *rate,
		RateBurst:      *burst,
		Shards:         *shards,
		Engine:         eng,
		JobCache:       *jobCache,
		CompileCache:   *compileCache,
		IncCache:       incStore,
		DisableLint:    *noLint,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "kremlin-serve: listening on %s (%d workers, queue %d)\n",
		*addr, *workers, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "kremlin-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "kremlin-serve: %s, draining\n", sig)
	}

	// Graceful drain: stop admission, finish queued + in-flight jobs,
	// then stop the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-serve: drain:", err)
		_ = httpSrv.Close()
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "kremlin-serve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "kremlin-serve: drained cleanly")
}
