// Command dumpplans regenerates the golden OpenMP plans pinned by
// internal/bench's TestGoldenPlans. Run it after an intentional behavior
// change and paste its output into golden_test.go.
package main

import (
	"fmt"
	"log"

	"kremlin/internal/bench"
	"kremlin/internal/planner"
)

func main() {
	all := append(bench.All(), bench.Tracking())
	for _, b := range all {
		c, err := bench.Load(b)
		if err != nil {
			log.Fatal(err)
		}
		plan := c.Program.Plan(c.Profile, planner.OpenMP())
		fmt.Printf("\t%q: {\n", b.Name)
		for _, r := range plan.Recs {
			fmt.Printf("\t\t%q,\n", r.Label())
		}
		fmt.Printf("\t},\n")
	}
}
