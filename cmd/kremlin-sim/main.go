// Command kremlin-sim answers "what would this plan buy me?": it profiles
// a program (or loads a saved profile), takes a plan — the OpenMP
// planner's by default, or an explicit region list — and simulates its
// parallel execution across core counts on the bundled machine model.
//
// Usage:
//
//	kremlin-sim [-profile prog.krpf] [-plan label,label,...]
//	            [-cores N] [-personality openmp|cilk] prog.kr
//
// Labels are as printed by `kremlin -labels`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kremlin"
	"kremlin/internal/exec"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
)

func main() {
	profPath := flag.String("profile", "", "profile file from kremlin-run (default: profile on the fly)")
	planArg := flag.String("plan", "", "comma-separated region labels to parallelize (default: planner output)")
	cores := flag.Int("cores", 32, "maximum simulated core count")
	pers := flag.String("personality", "openmp", "planner personality when -plan is not given")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kremlin-sim [-profile f.krpf] [-plan a,b] [-cores N] prog.kr")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := kremlin.Compile(path, string(src))
	if err != nil {
		fatal(err)
	}
	var prof *profile.Profile
	if *profPath != "" {
		f, err := os.Open(*profPath)
		if err != nil {
			fatal(err)
		}
		prof, err = profile.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		if prof, _, err = prog.Profile(nil); err != nil {
			fatal(err)
		}
	}
	sum := prog.Summarize(prof)

	ids := map[int]bool{}
	var planDesc string
	if *planArg != "" {
		for _, label := range strings.Split(*planArg, ",") {
			label = strings.TrimSpace(label)
			r := prog.Regions.ByLabel(label)
			if r == nil {
				fatal(fmt.Errorf("unknown region label %q (try `kremlin -labels %s`)", label, path))
			}
			ids[r.ID] = true
		}
		planDesc = fmt.Sprintf("explicit plan (%d regions)", len(ids))
	} else {
		var p planner.Personality
		switch *pers {
		case "openmp":
			p = planner.OpenMP()
		case "cilk":
			p = planner.Cilk()
		default:
			fatal(fmt.Errorf("unknown personality %q", *pers))
		}
		plan := planner.Make(sum, p)
		for _, r := range plan.Recs {
			ids[r.Stats.Region.ID] = true
		}
		planDesc = fmt.Sprintf("%s plan (%d regions)", p.Name, len(plan.Recs))
	}

	machine := exec.Default32()
	fmt.Printf("%s: %s\n", path, planDesc)
	fmt.Printf("%6s %14s %10s %10s\n", "cores", "time (units)", "speedup", "coverage")
	best := exec.Simulate(sum, ids, machine.WithCores(1))
	for p := 1; p <= *cores; p *= 2 {
		r := exec.Simulate(sum, ids, machine.WithCores(p))
		fmt.Printf("%6d %14.0f %9.2fx %9.1f%%\n", p, r.ParTime, r.Speedup, 100*r.ParCoverage)
		if r.ParTime < best.ParTime {
			best = r
		}
	}
	fmt.Printf("best configuration: %d cores, %.2fx\n", best.Cores, best.Speedup)
	fmt.Printf("ideal bound (whole-program CPA, unlimited cores): %.2fx\n", exec.IdealSpeedup(sum))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kremlin-sim:", err)
	os.Exit(1)
}
