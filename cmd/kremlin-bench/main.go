// Command kremlin-bench regenerates every table and figure of the paper's
// evaluation (§4.4, §6) on the bundled benchmark suite and prints them in
// a form mirroring the paper's layout.
//
// Usage:
//
//	kremlin-bench [-experiment all|fig3|fig6|fig7|fig8|fig9|compression|overhead|spclass|sensitivity|scaling|shards|vet|ablation|personality|fuzz|serve|scale|incfuzz]
//	              [-benches a,b,...] [-shard-counts 1,2,4,8] [-json out.json]
//	              [-fuzz-n 200] [-seed 1] [-fuzz-out dir]
//	              [-serve-conc 100,1000] [-serve-warm-conc 100,1000,10000]
//	              [-serve-jobs N] [-min-warm-speedup X]
//	              [-scale-lines 10000,50000,100000] [-scale-iters 60] [-min-scale-speedup X]
//	              [-cpuprofile f] [-memprofile f]
//
// The shards experiment measures the parallel depth-window sharded
// profiler (wall-clock, allocations, plan equivalence vs the sequential
// run); -json writes its rows as a machine-readable artifact.
//
// The serve experiment load-tests the kremlin-serve daemon in-process
// over real HTTP: sustained QPS and p50/p99 latency at each -serve-conc
// concurrency level cold (caches off), plus warm repeat-traffic rows at
// each -serve-warm-conc level with the job, compile, and incremental
// caches on; high-concurrency rows ride an in-memory transport.
// -min-warm-speedup gates warm-vs-cold QPS at shared concurrencies;
// -json writes BENCH_serve.json. Like fuzz it only runs when named (it
// measures the service layer, not a paper table).
//
// The fuzz experiment runs a differential/metamorphic fuzzing campaign:
// -fuzz-n generated programs (seeds -seed .. -seed+n-1) through every
// pipeline configuration, reporting generator construct coverage and
// writing shrunk reproducers for any oracle failure to -fuzz-out. The
// fuzz experiment is excluded from -experiment all (it is a correctness
// campaign, not an evaluation table); exit status 1 if any check fails.
//
// The scale experiment measures incremental re-profiling: generated
// programs of -scale-lines source lines are profiled cold into a
// content-hash cache, one function is edited, and the warm re-profile is
// timed against a from-scratch run; -json writes BENCH_scale.json and
// -min-scale-speedup turns the geomean into a regression gate. The
// incfuzz experiment runs the incremental-vs-full oracle over -fuzz-n
// seeded (program, single-function-edit) pairs, writing reproducer pairs
// to -fuzz-out. Both run only when named.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"kremlin/internal/eval"
	"kremlin/internal/krfuzz"
)

var (
	benches        = flag.String("benches", "", "comma-separated benchmark subset for the shards experiment (default: all)")
	shardCounts    = flag.String("shard-counts", "1,2,4,8", "comma-separated shard counts for the shards experiment")
	jsonOut        = flag.String("json", "", "write the shards or fuzz experiment results as JSON to this path")
	fuzzN          = flag.Int("fuzz-n", 200, "number of generated programs for the fuzz experiment")
	fuzzSeed       = flag.Int64("seed", 1, "base generator seed for the fuzz experiment")
	fuzzOut        = flag.String("fuzz-out", ".", "directory for shrunk fuzz reproducers")
	serveConc      = flag.String("serve-conc", "100,1000", "comma-separated cold concurrency levels for the serve experiment")
	serveWarmConc  = flag.String("serve-warm-conc", "100,1000,10000", "comma-separated warm (cached, repeat-traffic) concurrency levels (empty = none)")
	serveJobs      = flag.Int("serve-jobs", 0, "jobs per serve concurrency level (0 = 3x concurrency)")
	minWarmSpeedup = flag.Float64("min-warm-speedup", 0, "fail the serve experiment unless warm QPS >= this factor over cold at each shared concurrency (0 = no gate)")
	vmRepeats      = flag.Int("vm-repeats", 3, "best-of-N repeats per engine/mode for the vmspeed experiment")
	minVMSpeed     = flag.Float64("min-vm-speedup", 0, "fail the vmspeed experiment if the plain geomean VM speedup is below this (0 = no guard)")
	minAbsint      = flag.Float64("min-absint-speedup", 0, "fail the vmspeed experiment if the geomean speedup of the default build over -absint=off is below this (0 = no guard)")
	scaleLines     = flag.String("scale-lines", "10000,50000,100000", "comma-separated program sizes (source lines) for the scale experiment")
	scaleIters     = flag.Int("scale-iters", 60, "loop trip count per generated helper in the scale experiment")
	minScale       = flag.Float64("min-scale-speedup", 0, "fail the scale experiment if the geomean warm speedup is below this (0 = no guard)")
)

func main() {
	which := flag.String("experiment", "all", "experiment to run")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProf := flag.String("memprofile", "", "write a heap profile to this path")
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "kremlin-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("fig3", fig3)
	run("fig6", fig6)
	run("fig7", fig7)
	run("fig8", fig8)
	run("fig9", fig9)
	run("compression", compression)
	run("overhead", overhead)
	run("spclass", spclass)
	run("sensitivity", sensitivity)
	run("scaling", scaling)
	run("shards", shards)
	run("vmspeed", vmspeed)
	run("vet", vet)
	run("ablation", ablation)
	run("personality", personality)
	// The fuzz campaign and the serve load test only run when asked for
	// by name: one is a correctness check, the other a service-layer
	// measurement — neither is a paper evaluation table.
	if *which == "fuzz" {
		if err := fuzz(); err != nil {
			fmt.Fprintf(os.Stderr, "kremlin-bench: fuzz: %v\n", err)
			os.Exit(1)
		}
	}
	if *which == "serve" {
		if err := serveBench(); err != nil {
			fmt.Fprintf(os.Stderr, "kremlin-bench: serve: %v\n", err)
			os.Exit(1)
		}
	}
	// Like fuzz and serve, the incremental-profiling experiments run only
	// when named: scale measures the cache subsystem, incfuzz is a
	// correctness campaign.
	if *which == "scale" {
		if err := scale(); err != nil {
			fmt.Fprintf(os.Stderr, "kremlin-bench: scale: %v\n", err)
			os.Exit(1)
		}
	}
	if *which == "incfuzz" {
		if err := incfuzz(); err != nil {
			fmt.Fprintf(os.Stderr, "kremlin-bench: incfuzz: %v\n", err)
			os.Exit(1)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-bench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "kremlin-bench:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

func header(s string) {
	fmt.Printf("\n==== %s ====\n", s)
}

func fig3() error {
	header("Figure 3: Kremlin's user interface (feature tracking)")
	s, err := eval.Fig3()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func fig6() error {
	header("Figure 6(a): plan size comparison (MANUAL vs Kremlin)")
	rows, err := eval.Fig6()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %8s %8s %10s\n", "bench", "MANUAL", "Kremlin", "Overlap", "Reduction")
	for _, r := range rows {
		fmt.Printf("%-8s %8d %8d %8d %9.2fx\n", r.Name, r.ManualSize, r.KremlinSize, r.Overlap, r.SizeReduction)
	}
	m, k, o, red, rel := eval.Fig6Totals(rows)
	fmt.Printf("%-8s %8d %8d %8d %9.2fx\n", "Overall", m, k, o, red)

	header("Figure 6(b): speedup of Kremlin plan relative to MANUAL")
	fmt.Printf("%-8s %10s %10s %10s\n", "bench", "MANUAL", "Kremlin", "Relative")
	for _, r := range rows {
		fmt.Printf("%-8s %9.2fx %9.2fx %9.2fx\n", r.Name, r.ManualSpeedup, r.KremlinSpeedup, r.Relative)
	}
	fmt.Printf("geomean relative speedup: %.2fx\n", rel)
	return nil
}

func fig7() error {
	header("Figure 7: marginal benefit of applying plan entries in order")
	series, err := eval.Fig7()
	if err != nil {
		return err
	}
	for _, s := range series {
		fmt.Printf("%-8s", s.Name)
		for i, v := range s.Reduction {
			if i == s.CutIndex {
				fmt.Printf(" |") // the paper's dotted line: MANUAL-only regions follow
			}
			fmt.Printf(" %5.1f", v)
		}
		fmt.Println()
	}
	fmt.Println("(cumulative % execution-time reduction; entries right of '|' are MANUAL-only)")
	return nil
}

func fig8() error {
	header("Figure 8: benefit by plan fraction (25% increments)")
	rows, avg, marginal, err := eval.Fig8()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %8s %8s %8s\n", "bench", "25%", "50%", "75%", "100%")
	for _, r := range rows {
		fmt.Printf("%-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", r.Name,
			r.Fraction[0], r.Fraction[1], r.Fraction[2], r.Fraction[3])
	}
	fmt.Printf("%-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "average", avg[0], avg[1], avg[2], avg[3])
	fmt.Printf("%-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "marginal", marginal[0], marginal[1], marginal[2], marginal[3])
	return nil
}

func fig9() error {
	header("Figure 9: plan size reduction due to each planning component")
	rows, avg, err := eval.Fig9()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %10s %10s %10s\n", "bench", "regions", "work", "work+SP", "full")
	for _, r := range rows {
		fmt.Printf("%-8s %8d %9.1f%% %9.1f%% %9.1f%%\n", r.Name, r.Total, r.WorkPct, r.WorkSPPct, r.FullPct)
	}
	fmt.Printf("%-8s %8s %9.1f%% %9.1f%% %9.1f%%\n", "average", "", avg[0], avg[1], avg[2])
	return nil
}

func compression() error {
	header("§4.4: dictionary compression of the parallelism profile")
	rows, avgRatio, err := eval.Compression()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %12s %12s %12s %10s\n", "bench", "dyn.regions", "raw bytes", "compressed", "ratio")
	for _, r := range rows {
		fmt.Printf("%-8s %12d %12d %12d %9.0fx\n", r.Name, r.RawRecords, r.RawBytes, r.Compressed, r.Ratio)
	}
	fmt.Printf("average compression ratio: %.0fx (grows with run length; the paper's W inputs gave ~119,000x)\n", avgRatio)
	return nil
}

func overhead() error {
	header("§4.4: instrumentation overhead (plain vs gprof-style vs HCPA)")
	rows, err := eval.Overhead()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %12s %12s %12s %10s %10s\n", "bench", "plain", "gprof", "hcpa", "hcpa/plain", "hcpa/gprof")
	for _, r := range rows {
		fmt.Printf("%-8s %12v %12v %12v %9.1fx %9.1fx\n", r.Name, r.Plain, r.Gprof, r.HCPA, r.HCPASlowdown, r.VsGprof)
	}
	return nil
}

func spclass() error {
	header("§6.2: low-parallelism classification, self-P vs total-P (threshold 5.0)")
	selfLow, totalLow, n, err := eval.SPClassification(5.0)
	if err != nil {
		return err
	}
	ratio := 0.0
	if totalLow > 0 {
		ratio = selfLow / totalLow
	}
	fmt.Printf("regions: %d\n", n)
	fmt.Printf("low parallelism by total-parallelism: %5.1f%%\n", 100*totalLow)
	fmt.Printf("low parallelism by self-parallelism:  %5.1f%%\n", 100*selfLow)
	fmt.Printf("false-positive reduction: %.2fx (paper: 2.28x)\n", ratio)
	return nil
}

func sensitivity() error {
	header("§6.1: input sensitivity (train plan reused on ref input)")
	rows, err := eval.InputSensitivity()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %12s %12s\n", "bench", "plan", "train spd", "ref spd")
	for _, r := range rows {
		fmt.Printf("%-8s %8d %11.2fx %11.2fx\n", r.Name, r.PlanSize, r.TrainSpeedup, r.RefSpeedup)
	}
	return nil
}

func ablation() error {
	header("Ablation: induction/reduction dependence breaking (§2.4, §4.1)")
	rows, err := eval.DependenceBreakingAblation()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %12s %10s %12s %12s\n", "bench", "SP collapses", "maxSPdrop", "plan(with)", "plan(w/o)")
	for _, r := range rows {
		fmt.Printf("%-8s %12d %9.1fx %12d %12d\n", r.Name, r.LoopsCollapsed, r.MaxSPDrop, r.PlanWith, r.PlanWithout)
	}

	header("Ablation: post-instrumentation optimization (§3)")
	orows, err := eval.OptimizationAblation()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %12s %12s %10s %8s %8s %10s\n", "bench", "work", "opt work", "reduction", "folded", "dce", "plan kept")
	for _, r := range orows {
		fmt.Printf("%-8s %12d %12d %9.2fx %8d %8d %10t\n",
			r.Name, r.PlainWork, r.OptWork, r.WorkReduction, r.Folded, r.RemovedDead, r.PlanAgrees)
	}

	header("Ablation: planning on compressed vs expanded traces (§4.4)")
	crows, err := eval.CompressedPlanningAblation()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %12s %14s %14s %10s\n", "bench", "alphabet", "dyn.regions", "compressed", "expanded", "speedup")
	for _, r := range crows {
		fmt.Printf("%-8s %10d %12d %14v %14v %9.1fx\n",
			r.Name, r.DictEntries, r.DynamicRegions, r.CompressedTime, r.ExpandedTime, r.Speedup)
	}
	return nil
}

func personality() error {
	header("§5.2: OpenMP vs Cilk++ planner personalities")
	rows, err := eval.PersonalityComparison()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %10s %12s %12s\n", "bench", "omp plan", "cilk plan", "omp speedup", "cilk speedup")
	for _, r := range rows {
		fmt.Printf("%-8s %10d %10d %11.2fx %11.2fx\n", r.Name, r.OpenMPSize, r.CilkSize, r.OpenMPSpeed, r.CilkSpeed)
	}

	header("§5.3: portability-accuracy matrix (plan personality x machine)")
	cells, err := eval.PortabilityMatrix()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %14s %14s\n", "plan", "numa32", "finegrained")
	for _, plan := range []string{"openmp", "cilk"} {
		fmt.Printf("%-8s", plan)
		for _, m := range []string{"numa32", "finegrained"} {
			for _, c := range cells {
				if c.Plan == plan && c.Machine == m {
					fmt.Printf(" %13.2fx", c.Geomean)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("(geomean best-config speedup across the suite)")
	return nil
}

func shards() error {
	header("Parallel sharded profiling: depth-window shards vs sequential")
	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	var counts []int
	for _, s := range strings.Split(*shardCounts, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad -shard-counts entry %q: %v", s, err)
		}
		counts = append(counts, k)
	}
	rows, err := eval.ShardScaling(names, counts)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s", "bench")
	for _, k := range counts {
		fmt.Printf(" %9s %11s", fmt.Sprintf("K=%d", k), "allocs")
	}
	fmt.Printf(" %8s %6s\n", "best-spd", "equal")
	for _, r := range rows {
		fmt.Printf("%-8s", r.Name)
		for _, p := range r.Points {
			fmt.Printf(" %9v %11d", p.Time.Round(10_000), p.Allocs)
		}
		fmt.Printf(" %7.2fx %6t\n", r.BestSpeedup, r.PlanEqual)
	}
	fmt.Printf("(GOMAXPROCS=%d; shard counts beyond the core count cannot win wall-clock)\n", runtime.GOMAXPROCS(0))
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

func vmspeed() error {
	header("Bytecode VM vs tree-walking interpreter: wall-clock per engine")
	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	sum, err := eval.VMSpeed(names, *vmRepeats)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %10s %9s %10s %10s %9s %10s %9s %6s\n",
		"bench", "plain-vm", "plain-tree", "speedup", "hcpa-vm", "hcpa-tree", "speedup", "checked", "absint", "equal")
	for _, r := range sum.Rows {
		eq := r.OutputEqual && r.CountersEqual && r.ProfileEqual && r.PlanEqual
		fmt.Printf("%-8s %10v %10v %8.2fx %10v %10v %8.2fx %10v %8.2fx %6t\n",
			r.Name, r.PlainVM.Round(10_000), r.PlainTree.Round(10_000), r.PlainSpeedup,
			r.HCPAVM.Round(10_000), r.HCPATree.Round(10_000), r.HCPASpeedup,
			r.PlainChecked.Round(10_000), r.AbsintSpeedup, eq)
	}
	fmt.Printf("geomean: plain %.2fx, hcpa %.2fx, absint (unchecked vs checked) %.2fx; engines equivalent on every row: %t\n",
		sum.PlainGeomean, sum.HCPAGeomean, sum.AbsintGeomean, sum.AllEqual)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if !sum.AllEqual {
		return fmt.Errorf("engine equivalence violated (see table)")
	}
	if *minVMSpeed > 0 && sum.PlainGeomean < *minVMSpeed {
		return fmt.Errorf("plain geomean speedup %.2fx below the %.2fx guard", sum.PlainGeomean, *minVMSpeed)
	}
	if *minAbsint > 0 && sum.AbsintGeomean < *minAbsint {
		return fmt.Errorf("absint geomean speedup %.2fx below the %.2fx guard — the unchecked build lost to its own checked baseline", sum.AbsintGeomean, *minAbsint)
	}
	return nil
}

func vet() error {
	header("Static loop-dependence analysis: verdict per loop (kremlin vet)")
	// The standalone example programs (the others reuse bench sources).
	extra := make(map[string]string)
	for name, path := range map[string]string{
		"quickstart":   "examples/quickstart/quickstart.kr",
		"gprofcompare": "examples/gprofcompare/compare.kr",
	} {
		if src, err := os.ReadFile(path); err == nil {
			extra[name] = string(src)
		}
	}
	rows, err := eval.Vet(extra)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %9s %7s %8s\n", "program", "loops", "parallel", "serial", "unknown")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %9d %7d %8d\n", r.Name, r.Loops, r.Parallel, r.Serial, r.Unknown)
	}
	sum := eval.Summarize(rows)
	fmt.Printf("%-12s %6d %9d %7d %8d\n", "total", sum.Loops, sum.Parallel, sum.Serial, sum.Unknown)
	fmt.Println("\nnon-parallel loops and why:")
	for _, r := range rows {
		for _, l := range r.Reports {
			if l.Verdict == "parallel" {
				continue
			}
			fmt.Printf("  %-44s %-8s %s\n", l.Label, l.Verdict, l.Detail)
		}
	}
	fmt.Printf("\ntracked metric: unknown_verdicts = %d (budget < %d)\n", sum.Unknown, sum.UnknownBudget)
	if !sum.WithinBudget {
		return fmt.Errorf("vet: %d unknown verdicts, budget is < %d — the analyzer regressed", sum.Unknown, sum.UnknownBudget)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(struct {
			Summary eval.VetSummary `json:"summary"`
			Rows    []eval.VetRow   `json:"rows"`
		}{sum, rows}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

func fuzz() error {
	header(fmt.Sprintf("Fuzzing campaign: %d programs, seeds %d..%d, differential & metamorphic oracle",
		*fuzzN, *fuzzSeed, *fuzzSeed+int64(*fuzzN)-1))
	if err := os.MkdirAll(*fuzzOut, 0o755); err != nil {
		return err
	}
	lastTick := 0
	res, err := krfuzz.RunCampaign(krfuzz.CampaignConfig{
		N:      *fuzzN,
		Seed:   *fuzzSeed,
		OutDir: *fuzzOut,
		Progress: func(done, failed int) {
			// One status line per ~10% so long campaigns show life.
			if step := *fuzzN / 10; step > 0 && done/step > lastTick {
				lastTick = done / step
				fmt.Printf("  checked %d/%d (%d failing)\n", done, *fuzzN, failed)
			}
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("\npassed %d / %d programs\n", res.Passed, res.N)
	fmt.Println("\ngenerator construct coverage (occurrences across the campaign):")
	// Deterministic order: sort the construct names.
	names := make([]string, 0, len(res.Coverage))
	for name := range res.Coverage {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-14s %6d\n", name, res.Coverage[name])
	}
	if len(res.Missing) > 0 {
		fmt.Printf("constructs never generated: %s\n", strings.Join(res.Missing, ", "))
	} else {
		fmt.Println("all constructs covered.")
	}

	for _, f := range res.Failures {
		fmt.Printf("\nFAIL seed %d: check %q: %s\n", f.Seed, f.Check, f.Detail)
		fmt.Printf("  reproducer (%d bytes, shrunk from %d): %s\n", f.ReproLen, f.OrigLen, f.Path)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d programs failed the oracle", res.Failed, res.N)
	}
	return nil
}

func serveBench() error {
	header("kremlin-serve under load: sustained QPS and latency percentiles")
	parseConcs := func(flagName, spec string) ([]int, error) {
		var concs []int
		if strings.TrimSpace(spec) == "" {
			return nil, nil
		}
		for _, s := range strings.Split(spec, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || c < 1 {
				return nil, fmt.Errorf("bad %s entry %q", flagName, s)
			}
			concs = append(concs, c)
		}
		return concs, nil
	}
	concs, err := parseConcs("-serve-conc", *serveConc)
	if err != nil {
		return err
	}
	warmConcs, err := parseConcs("-serve-warm-conc", *serveWarmConc)
	if err != nil {
		return err
	}
	rows, err := eval.ServeBench(concs, *serveJobs)
	if err != nil {
		return err
	}
	warmRows, err := eval.ServeBenchWarm(warmConcs, *serveJobs)
	if err != nil {
		return err
	}
	rows = append(rows, warmRows...)
	fmt.Printf("%-6s %-7s %-6s %8s %8s %10s %10s %10s %10s %6s %7s\n",
		"scen", "transp", "conc", "jobs", "workers", "QPS", "p50(ms)", "p99(ms)", "max(ms)", "ok", "errors")
	for _, r := range rows {
		fmt.Printf("%-6s %-7s %-6d %8d %8d %10.1f %10.2f %10.2f %10.2f %6d %7d\n",
			r.Scenario, r.Transport, r.Concurrency, r.Jobs, r.Workers, r.QPS, r.P50Ms, r.P99Ms, r.MaxMs, r.OK, r.Errors)
	}
	fmt.Printf("(GOMAXPROCS=%d; in-process daemon; cold = caches off over TCP loopback,\n", runtime.GOMAXPROCS(0))
	fmt.Println(" warm = job+compile+inccache on, primed, repeat traffic; high-concurrency")
	fmt.Println(" rows use an in-memory net.Pipe transport to dodge fd limits)")
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	// Regression gate: warm repeat traffic must beat cold by the given
	// factor at every concurrency measured both ways.
	if *minWarmSpeedup > 0 {
		coldQPS := map[int]float64{}
		for _, r := range rows {
			if r.Scenario == "cold" {
				coldQPS[r.Concurrency] = r.QPS
			}
		}
		compared := 0
		for _, r := range rows {
			if r.Scenario != "warm" {
				continue
			}
			cold, okc := coldQPS[r.Concurrency]
			if !okc || cold <= 0 {
				continue
			}
			compared++
			speedup := r.QPS / cold
			fmt.Printf("warm speedup at conc %d: %.1fx (gate %.1fx)\n",
				r.Concurrency, speedup, *minWarmSpeedup)
			if speedup < *minWarmSpeedup {
				return fmt.Errorf("warm QPS at conc %d is %.1f, only %.2fx cold (%.1f); gate is %.1fx",
					r.Concurrency, r.QPS, speedup, cold, *minWarmSpeedup)
			}
		}
		if compared == 0 {
			return fmt.Errorf("-min-warm-speedup set but no concurrency was measured both cold and warm")
		}
	}
	return nil
}

func scale() error {
	header("Incremental re-profiling at scale: cold vs warm after a one-function edit")
	var sizes []int
	for _, s := range strings.Split(*scaleLines, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -scale-lines entry %q", s)
		}
		sizes = append(sizes, n)
	}
	sum, err := eval.Scale(sizes, *fuzzSeed, *scaleIters)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %7s %10s %10s %9s %9s %11s %9s %9s %6s\n",
		"lines", "funcs", "cold", "warm", "speedup", "hit-rate", "step-spd", "coldMB", "warmMB", "equal")
	for _, r := range sum.Rows {
		fmt.Printf("%-8d %7d %10v %10v %8.2fx %8.2f%% %10.1fx %9.1f %9.1f %6t\n",
			r.Lines, r.Funcs, r.ColdNS.Round(time.Millisecond), r.WarmNS.Round(time.Millisecond),
			r.Speedup, 100*r.HitRate, r.StepSpeedup, r.ColdHeapMB, r.WarmHeapMB, r.ProfileEqual)
	}
	fmt.Printf("geomean warm speedup: %.2fx; warm profile byte-identical on every row: %t\n",
		sum.GeomeanSpeedup, sum.AllEqual)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if !sum.AllEqual {
		return fmt.Errorf("warm profile diverged from the from-scratch one (see table)")
	}
	if *minScale > 0 && sum.GeomeanSpeedup < *minScale {
		return fmt.Errorf("geomean warm speedup %.2fx below the %.2fx guard", sum.GeomeanSpeedup, *minScale)
	}
	return nil
}

func incfuzz() error {
	header(fmt.Sprintf("Incremental-oracle campaign: %d (program, one-function-edit) pairs, seeds %d..%d",
		*fuzzN, *fuzzSeed, *fuzzSeed+int64(*fuzzN)-1))
	if err := os.MkdirAll(*fuzzOut, 0o755); err != nil {
		return err
	}
	lastTick := 0
	res, err := krfuzz.RunIncrementalCampaign(krfuzz.CampaignConfig{
		N:      *fuzzN,
		Seed:   *fuzzSeed,
		OutDir: *fuzzOut,
		Progress: func(done, failed int) {
			if step := *fuzzN / 10; step > 0 && done/step > lastTick {
				lastTick = done / step
				fmt.Printf("  checked %d/%d (%d failing)\n", done, *fuzzN, failed)
			}
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\npassed %d / %d edit pairs\n", res.Passed, res.N)
	fmt.Println("edit-pattern coverage:")
	names := make([]string, 0, len(res.Kinds))
	for name := range res.Kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-14s %6d\n", name, res.Kinds[name])
	}
	for _, f := range res.Failures {
		fmt.Printf("\nFAIL seed %d: %s of %s, check %q: %s\n  reproducer: %s\n",
			f.Seed, f.Kind, f.Target, f.Check, f.Detail, f.Path)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d edit pairs failed the incremental oracle", res.Failed, res.N)
	}
	return nil
}

func scaling() error {
	header("Figure 6(b) annotation: absolute speedup scaling (Kremlin plan, 1-32 cores)")
	rows, err := eval.Scaling()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %7s %7s %7s %7s %7s %7s %9s\n", "bench", "1", "2", "4", "8", "16", "32", "best")
	for _, r := range rows {
		fmt.Printf("%-8s", r.Name)
		for _, v := range r.Speedups {
			fmt.Printf(" %6.2fx", v)
		}
		fmt.Printf(" %8.2fx\n", r.Best)
	}
	return nil
}
