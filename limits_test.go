package kremlin_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"kremlin"
	"kremlin/internal/limits"
	"kremlin/internal/parallel"
)

// longProg runs a few hundred thousand interpreter steps — far past the
// periodic liveness poll interval (2^14 instructions), so cancellation
// and cap checks always get a chance to fire.
const longProg = `
int main() {
	int acc = 0;
	for (int i = 0; i < 100000; i++) {
		acc = acc + i % 7;
	}
	return acc;
}
`

// hungryProg allocates a large local array, hitting a heap cap at the
// allocation site rather than at a liveness poll.
const hungryProg = `
int main() {
	int a[100000];
	for (int i = 0; i < 100000; i++) {
		a[i] = i;
	}
	return a[9];
}
`

func compileT(t *testing.T, src string) *kremlin.Program {
	t.Helper()
	prog, err := kremlin.Compile("limits_test.kr", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRunCancellation(t *testing.T) {
	prog := compileT(t, longProg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first poll must stop the run
	_, _, err := prog.Profile(&kremlin.RunConfig{Ctx: ctx})
	if !errors.Is(err, limits.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if kremlin.Classify(err) != kremlin.KindLimit {
		t.Errorf("Classify(%v) = %v, want KindLimit", err, kremlin.Classify(err))
	}
	if kremlin.ExitCodeFor(err) != kremlin.ExitLimit {
		t.Errorf("ExitCodeFor(%v) = %d, want %d", err, kremlin.ExitCodeFor(err), kremlin.ExitLimit)
	}
}

func TestRunDeadline(t *testing.T) {
	prog := compileT(t, `
int main() {
	int acc = 0;
	for (int i = 0; i < 100000000; i++) {
		acc = acc + i;
	}
	return acc;
}
`)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := prog.Profile(&kremlin.RunConfig{Ctx: ctx})
	if !errors.Is(err, limits.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// The run must stop shortly after the deadline, not drift to the end
	// of the 10^8-iteration loop.
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("deadline overrun: run took %v", e)
	}
}

func TestRunBudget(t *testing.T) {
	prog := compileT(t, longProg)
	_, _, err := prog.Profile(&kremlin.RunConfig{MaxSteps: 50_000})
	if !errors.Is(err, limits.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestRunHeapCap(t *testing.T) {
	prog := compileT(t, hungryProg)
	_, _, err := prog.Profile(&kremlin.RunConfig{MaxHeapWords: 1000})
	if !errors.Is(err, limits.ErrMemCap) {
		t.Fatalf("err = %v, want ErrMemCap", err)
	}
}

func TestRunShadowPageCap(t *testing.T) {
	prog := compileT(t, hungryProg)
	_, _, err := prog.Profile(&kremlin.RunConfig{MaxShadowPages: 4})
	if !errors.Is(err, limits.ErrMemCap) {
		t.Fatalf("err = %v, want ErrMemCap", err)
	}
}

// TestGprofPrefixInvariants pins cancellation correctness: a run stopped
// at instruction N must be a prefix of the full run — identical across
// repeats (determinism), never counting more work or more region
// instances than the uncancelled execution.
func TestGprofPrefixInvariants(t *testing.T) {
	prog := compileT(t, longProg)
	full, err := prog.RunGprof(nil)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 50_000
	partial, err := prog.RunGprof(&kremlin.RunConfig{MaxSteps: budget})
	if !errors.Is(err, limits.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if partial == nil {
		t.Fatal("budget-limited run returned no partial result")
	}
	if partial.Steps <= budget {
		t.Errorf("partial.Steps = %d, want just past the %d budget", partial.Steps, budget)
	}
	if partial.Work >= full.Work {
		t.Errorf("partial work %d not below full work %d", partial.Work, full.Work)
	}
	if len(partial.Gprof) > len(full.Gprof) {
		t.Fatalf("partial run saw %d regions, full run %d", len(partial.Gprof), len(full.Gprof))
	}
	for i, pe := range partial.Gprof {
		fe := full.Gprof[i]
		if pe.RegionID != fe.RegionID {
			t.Fatalf("region order diverged at %d: %d vs %d", i, pe.RegionID, fe.RegionID)
		}
		if pe.Count > fe.Count {
			t.Errorf("region %d: partial count %d exceeds full count %d", pe.RegionID, pe.Count, fe.Count)
		}
		if pe.Total > fe.Total {
			t.Errorf("region %d: partial total %d exceeds full total %d", pe.RegionID, pe.Total, fe.Total)
		}
	}

	// Same budget, same prefix: the cut is positional, not timing-based.
	again, err := prog.RunGprof(&kremlin.RunConfig{MaxSteps: budget})
	if !errors.Is(err, limits.ErrBudgetExceeded) {
		t.Fatal(err)
	}
	if again.Steps != partial.Steps || again.Work != partial.Work {
		t.Fatalf("re-run diverged: steps %d/%d work %d/%d",
			again.Steps, partial.Steps, again.Work, partial.Work)
	}
	for i := range partial.Gprof {
		if partial.Gprof[i] != again.Gprof[i] {
			t.Fatalf("re-run region %d diverged: %+v vs %+v", i, partial.Gprof[i], again.Gprof[i])
		}
	}
}

// TestEnginePrefixParity pins the engine contract for limit stops: a run
// stopped by the budget or the heap cap must cut at the *same position*
// under the bytecode VM as under the tree-walking interpreter — same
// error, same step counter, same work — including budgets that land on
// either side of the shared 2^14 liveness-poll interval
// (limits.LiveCheckInterval, used identically by both engines).
func TestEnginePrefixParity(t *testing.T) {
	prog := compileT(t, longProg)
	budgets := []uint64{
		50_000,
		limits.LiveCheckInterval - 1,
		limits.LiveCheckInterval,
		limits.LiveCheckInterval + 1,
		3 * limits.LiveCheckInterval,
	}
	for _, b := range budgets {
		vres, verr := prog.RunGprof(&kremlin.RunConfig{MaxSteps: b})
		tres, terr := prog.RunGprof(&kremlin.RunConfig{MaxSteps: b, Engine: kremlin.EngineTree})
		if !errors.Is(verr, limits.ErrBudgetExceeded) || !errors.Is(terr, limits.ErrBudgetExceeded) {
			t.Fatalf("budget %d: vm err %v, tree err %v", b, verr, terr)
		}
		if verr.Error() != terr.Error() {
			t.Errorf("budget %d: error text diverged:\nvm:   %v\ntree: %v", b, verr, terr)
		}
		if vres.Steps != tres.Steps || vres.Work != tres.Work {
			t.Errorf("budget %d: partial counters diverged: vm steps/work %d/%d, tree %d/%d",
				b, vres.Steps, vres.Work, tres.Steps, tres.Work)
		}
	}

	hungry := compileT(t, hungryProg)
	vres, verr := hungry.Run(&kremlin.RunConfig{MaxHeapWords: 1000})
	tres, terr := hungry.Run(&kremlin.RunConfig{MaxHeapWords: 1000, Engine: kremlin.EngineTree})
	if !errors.Is(verr, limits.ErrMemCap) || !errors.Is(terr, limits.ErrMemCap) {
		t.Fatalf("heap cap: vm err %v, tree err %v", verr, terr)
	}
	if verr.Error() != terr.Error() {
		t.Errorf("heap cap: error text diverged:\nvm:   %v\ntree: %v", verr, terr)
	}
	if vres.Steps != tres.Steps {
		t.Errorf("heap cap: partial steps diverged: vm %d, tree %d", vres.Steps, tres.Steps)
	}
}

// arrayProg spends nearly all of its steps in array accesses whose
// bounds the abstract interpreter proves, so the default build executes
// unchecked opcodes on the hot path while -absint=off keeps every check.
const arrayProg = `
int a[1000];
int main() {
	int acc = 0;
	for (int r = 0; r < 100; r++) {
		for (int i = 0; i < 1000; i++) {
			a[i] = a[i] + i;
		}
		acc = acc + a[r];
		print("round", r, acc);
	}
	return acc;
}
`

// TestAbsintOffPrefixParity: under an instruction budget the -absint=off
// build must stop at exactly the same instruction as the default build —
// same partial counters, same error text, same output prefix — including
// at the awkward liveness-poll boundaries. Bounds-check elimination may
// only change speed, never the observable step stream.
func TestAbsintOffPrefixParity(t *testing.T) {
	on := compileT(t, arrayProg)
	off, err := kremlin.CompileWith("limits_test.kr", arrayProg, kremlin.CompileOptions{DisableAbsint: true})
	if err != nil {
		t.Fatal(err)
	}
	budgets := []uint64{
		10_000,
		limits.LiveCheckInterval - 1,
		limits.LiveCheckInterval,
		limits.LiveCheckInterval + 1,
		5 * limits.LiveCheckInterval,
	}
	for _, b := range budgets {
		var onOut, offOut strings.Builder
		vres, verr := on.Run(&kremlin.RunConfig{MaxSteps: b, Out: &onOut})
		ores, oerr := off.Run(&kremlin.RunConfig{MaxSteps: b, Out: &offOut})
		if !errors.Is(verr, limits.ErrBudgetExceeded) || !errors.Is(oerr, limits.ErrBudgetExceeded) {
			t.Fatalf("budget %d: absint-on err %v, absint-off err %v", b, verr, oerr)
		}
		if verr.Error() != oerr.Error() {
			t.Errorf("budget %d: error text diverged:\non:  %v\noff: %v", b, verr, oerr)
		}
		if vres.Steps != ores.Steps || vres.Work != ores.Work {
			t.Errorf("budget %d: partial counters diverged: on steps/work %d/%d, off %d/%d",
				b, vres.Steps, vres.Work, ores.Steps, ores.Work)
		}
		if onOut.String() != offOut.String() {
			t.Errorf("budget %d: output prefix diverged:\n--- on ---\n%s--- off ---\n%s",
				b, onOut.String(), offOut.String())
		}
	}
}

// TestShardPanicFailsJob injects a panic into one shard goroutine via the
// fault hook and requires the job to fail with a PanicError — promptly,
// without deadlocking the stitcher or killing the process.
func TestShardPanicFailsJob(t *testing.T) {
	prog := compileT(t, longProg)
	done := make(chan error, 1)
	go func() {
		_, err := parallel.Run(prog.Module, prog.Regions, prog.Instr, parallel.Config{
			Shards: 4,
			ShardHook: func(shard int) {
				if shard == 2 {
					panic("chaos: injected shard panic")
				}
			},
		})
		done <- err
	}()
	select {
	case err := <-done:
		var pe *parallel.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *parallel.PanicError", err)
		}
		if pe.Shard != 2 {
			t.Errorf("PanicError.Shard = %d, want 2", pe.Shard)
		}
		if len(pe.Stack) == 0 {
			t.Error("PanicError carries no stack trace")
		}
		if kremlin.Classify(err) != kremlin.KindRuntime {
			t.Errorf("Classify = %v, want KindRuntime", kremlin.Classify(err))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sharded run deadlocked after shard panic")
	}
}

// TestShardStallCancelled proves a stalled shard cannot wedge the job:
// the caller's deadline cancels every sibling and the stall's own run.
func TestShardCancellation(t *testing.T) {
	prog := compileT(t, longProg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := prog.ProfileSharded(&kremlin.RunConfig{Ctx: ctx}, 4)
	if !errors.Is(err, limits.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// TestShardBudget: a budget violation inside one shard fails the whole
// job with the budget error, not the sibling-cancellation cascade.
func TestShardBudget(t *testing.T) {
	prog := compileT(t, longProg)
	_, _, err := prog.ProfileSharded(&kremlin.RunConfig{MaxSteps: 50_000}, 4)
	if !errors.Is(err, limits.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
