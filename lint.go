package kremlin

import (
	"fmt"
)

// LintFinding is one abstract-interpretation lint diagnostic with its
// source position resolved to line:col. Severity "error" means the fault
// sits on main's must-execute path — every terminating run hits it;
// "warn" covers definite faults in conditionally-executed code plus
// unreachable-code and dead-store findings.
type LintFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Fn       string `json:"fn"`
	Severity string `json:"severity"`
	Kind     string `json:"kind"`
	Msg      string `json:"msg"`
}

// String renders the finding in the conventional compiler-diagnostic
// shape: file:line:col: severity: message [kind].
func (f LintFinding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", f.File, f.Line, f.Col, f.Severity, f.Msg, f.Kind)
}

// Lint returns the program's abstract-interpretation findings (definite
// faults, unreachable code, dead stores), ordered by function then
// position. Empty for a clean program; also empty when the module
// exceeded the analysis size budget.
func (p *Program) Lint() []LintFinding {
	diags := p.Absint.Diagnostics()
	if len(diags) == 0 {
		return nil
	}
	out := make([]LintFinding, len(diags))
	for i, d := range diags {
		pos := p.File.Pos(d.Pos)
		out[i] = LintFinding{
			File:     p.File.Name,
			Line:     pos.Line,
			Col:      pos.Col,
			Fn:       d.Fn,
			Severity: d.Severity.String(),
			Kind:     d.Kind,
			Msg:      d.Msg,
		}
	}
	return out
}

// LintReject returns a *LintError when the program provably faults on
// every terminating run (an error-severity finding exists), nil
// otherwise. The serve daemon calls this at admission to refuse such
// jobs before they burn worker-pool budget.
func (p *Program) LintReject() error {
	errs := p.Absint.Errors()
	if len(errs) == 0 {
		return nil
	}
	findings := make([]LintFinding, len(errs))
	for i, d := range errs {
		pos := p.File.Pos(d.Pos)
		findings[i] = LintFinding{
			File:     p.File.Name,
			Line:     pos.Line,
			Col:      pos.Col,
			Fn:       d.Fn,
			Severity: d.Severity.String(),
			Kind:     d.Kind,
			Msg:      d.Msg,
		}
	}
	return &LintError{Findings: findings}
}

// LintError reports that static analysis proved the program faults on
// every terminating run. It carries its own error kind (KindLint) and
// exit code (ExitLint); the serve daemon maps it to a typed
// "lint_error" rejection.
type LintError struct {
	Findings []LintFinding
}

func (e *LintError) Error() string {
	if len(e.Findings) == 0 {
		return "lint: program provably faults"
	}
	msg := fmt.Sprintf("lint: program provably faults: %s", e.Findings[0])
	if n := len(e.Findings) - 1; n > 0 {
		msg += fmt.Sprintf(" (and %d more)", n)
	}
	return msg
}
