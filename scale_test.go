package kremlin_test

// Scale-stress tier: profile a ~100k-line generated program end to end
// under a fixed memory budget, edit one function, and re-profile through
// the incremental cache. Locks in the headline incremental-reprofiling
// contract: completion under caps, ≥ 99% hit rate after a single-function
// edit, a ≥ 5x reduction in executed (non-replayed) instructions, and a
// byte-identical profile. Skipped under -short; CI runs it in the
// scale-smoke job.

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"kremlin"
	"kremlin/internal/inccache"
	"kremlin/internal/krgen"
)

const (
	scaleStressLines = 100000
	scaleStressIters = 60
	scaleStressSeed  = 42
)

func scaleRun(t *testing.T, src string, st *inccache.Store) ([]byte, uint64, inccache.Stats, time.Duration) {
	t.Helper()
	p, err := kremlin.Compile("scale.kr", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var stats inccache.Stats
	var out bytes.Buffer
	start := time.Now()
	prof, res, err := p.Profile(&kremlin.RunConfig{
		Out:            &out,
		Cache:          st,
		CacheStats:     &stats,
		MaxShadowPages: 1 << 14,
		MaxHeapWords:   1 << 22,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	var b bytes.Buffer
	if _, err := prof.WriteTo(&b); err != nil {
		t.Fatalf("profile write: %v", err)
	}
	return b.Bytes(), res.Steps, stats, elapsed
}

func TestScaleStressIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("scale stress skipped in -short mode")
	}
	cfg := krgen.ScaleForLines(scaleStressLines, scaleStressIters)
	base := krgen.GenerateScale(scaleStressSeed, cfg, nil)
	edited := krgen.ScaleEdit(scaleStressSeed, cfg, cfg.Funcs/2)

	dir := t.TempDir()
	st, err := inccache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Cold run under the memory budget populates the cache.
	_, _, coldStats, coldWall := scaleRun(t, base, st)
	if coldStats.Recorded < uint64(cfg.Funcs)*9/10 {
		t.Fatalf("cold run recorded %d extents, want ~%d", coldStats.Recorded, cfg.Funcs)
	}
	t.Logf("cold: %v, recorded %d", coldWall, coldStats.Recorded)

	// Ground truth for the edited program, computed without any cache.
	p, err := kremlin.Compile("scale.kr", edited)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	prof, res, err := p.Profile(&kremlin.RunConfig{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	var truth bytes.Buffer
	if _, err := prof.WriteTo(&truth); err != nil {
		t.Fatal(err)
	}

	// Warm incremental run of the edited program over a fresh store.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	st2, err := inccache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmProf, warmSteps, warmStats, warmWall := scaleRun(t, edited, st2)
	runtime.ReadMemStats(&after)
	t.Logf("warm: %v, lookups %d hits %d skippedSteps %d / steps %d",
		warmWall, warmStats.Lookups, warmStats.Hits, warmStats.SkippedSteps, warmSteps)

	if !bytes.Equal(warmProf, truth.Bytes()) {
		t.Fatalf("incremental profile differs from from-scratch profile")
	}
	if warmSteps != res.Steps {
		t.Fatalf("incremental steps %d != from-scratch steps %d", warmSteps, res.Steps)
	}
	if hr := warmStats.HitRate(); hr < 0.99 {
		t.Fatalf("hit rate %.4f after single-function edit, want >= 0.99", hr)
	}
	// Executed-instruction speedup: the warm run replays SkippedSteps of
	// the cold run's work from the cache.
	executed := warmSteps - warmStats.SkippedSteps
	if executed == 0 || warmSteps/executed < 5 {
		t.Fatalf("executed-step speedup %.1fx, want >= 5x (steps %d, executed %d)",
			float64(warmSteps)/float64(executed), warmSteps, executed)
	}
	if coldWall < 5*warmWall {
		t.Fatalf("wall-clock speedup %.1fx, want >= 5x (cold %v, warm %v)",
			float64(coldWall)/float64(warmWall), coldWall, warmWall)
	}
	// The warm run must not balloon the Go heap: the replay path splices
	// compressed extents instead of re-simulating shadow state.
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 2<<30 {
		t.Fatalf("warm run grew heap by %d bytes", grew)
	}
}
