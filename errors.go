package kremlin

import (
	"errors"

	"kremlin/internal/interp"
	"kremlin/internal/limits"
	"kremlin/internal/parallel"
	"kremlin/internal/source"
)

// Stage names the compilation stage that rejected a program.
type Stage int

// Compilation stages, in pipeline order.
const (
	// StageParse covers lexing and parsing: the program is not
	// syntactically well-formed Kr.
	StageParse Stage = iota
	// StageAnalysis covers everything after a successful parse: symbol
	// resolution, type checking, and IR lowering.
	StageAnalysis
)

func (s Stage) String() string {
	if s == StageParse {
		return "parse"
	}
	return "analysis"
}

// CompileError is a compilation failure tagged with the stage that
// produced it. Its message is the underlying diagnostic list verbatim.
type CompileError struct {
	Stage Stage
	Errs  *source.ErrorList
}

func (e *CompileError) Error() string { return e.Errs.Error() }
func (e *CompileError) Unwrap() error { return e.Errs }

// ErrorKind classifies any error out of the compile/run pipeline into the
// taxonomy shared by the CLIs (exit codes) and the serve daemon (HTTP
// status and response kind).
type ErrorKind int

// Error kinds, ordered by pipeline position.
const (
	// KindOther is an error outside the taxonomy (I/O, bad profile file).
	KindOther ErrorKind = iota
	// KindParse is a syntax error from the lexer or parser.
	KindParse
	// KindAnalysis is a semantic error: type checking or IR lowering.
	KindAnalysis
	// KindRuntime is a program execution error (division by zero, index
	// out of range) or a shard panic converted to an error.
	KindRuntime
	// KindLimit is a resource-limit failure: cancellation, deadline,
	// instruction budget, or memory cap (see the limits package).
	KindLimit
	// KindLint is a static-analysis rejection: the program compiles but
	// provably faults on every terminating run (see LintError).
	KindLint
)

func (k ErrorKind) String() string {
	switch k {
	case KindParse:
		return "parse"
	case KindAnalysis:
		return "analysis"
	case KindRuntime:
		return "runtime"
	case KindLimit:
		return "limit"
	case KindLint:
		return "lint"
	}
	return "other"
}

// Classify maps an error from Compile/Run/Profile/ProfileSharded onto the
// shared taxonomy.
func Classify(err error) ErrorKind {
	if err == nil {
		return KindOther
	}
	var ce *CompileError
	if errors.As(err, &ce) {
		if ce.Stage == StageParse {
			return KindParse
		}
		return KindAnalysis
	}
	var le *LintError
	if errors.As(err, &le) {
		return KindLint
	}
	if limits.IsLimit(err) {
		return KindLimit
	}
	var re *interp.RuntimeError
	if errors.As(err, &re) {
		return KindRuntime
	}
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		return KindRuntime
	}
	return KindOther
}

// Exit codes shared by the kremlin and kremlin-run CLIs: one code per
// error kind, so scripts and CI can tell a malformed program from a
// runaway one without parsing stderr. Code 2 is reserved for usage errors
// (the flag package's convention).
const (
	ExitOK       = 0
	ExitOther    = 1
	ExitUsage    = 2
	ExitParse    = 3
	ExitAnalysis = 4
	ExitRuntime  = 5
	ExitLimit    = 6
	// ExitLint is the `kremlin lint` contract: findings were reported (or,
	// for the other commands, the program was rejected as provably faulting).
	ExitLint = 7
)

// ExitCodeFor maps an error onto the CLI exit-code contract.
func ExitCodeFor(err error) int {
	if err == nil {
		return ExitOK
	}
	switch Classify(err) {
	case KindParse:
		return ExitParse
	case KindAnalysis:
		return ExitAnalysis
	case KindRuntime:
		return ExitRuntime
	case KindLimit:
		return ExitLimit
	case KindLint:
		return ExitLint
	}
	return ExitOther
}
