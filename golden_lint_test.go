package kremlin_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/bench"
)

// lintPrograms is the lint snapshot corpus: every golden example program
// (all expected clean — lint must stay silent on working code) plus a
// small set of deliberately faulting programs that pin the rendered
// diagnostic format, positions, and severities.
func lintPrograms(t *testing.T) map[string]string {
	t.Helper()
	progs := goldenPrograms(t)
	for _, b := range bench.All() {
		progs["bench-"+b.Name] = b.Source
	}
	progs["fault-oob-after-loop"] = `
int a[10];
int main() {
	for (int i = 0; i < 10; i++) {
		a[i] = i;
	}
	return a[10];
}
`
	progs["fault-div-zero"] = `
int main() {
	int n = 4;
	int z = n - 4;
	return n / z;
}
`
	progs["warn-branch-dependent"] = `
int a[8];
int main() {
	int k = 0;
	if (a[0] > 0) {
		k = a[12];
	}
	return k;
}
`
	return progs
}

// renderLint serializes lint findings the way the CLI prints them, with a
// stable "clean" sentinel so empty snapshots are visibly intentional.
func renderLint(findings []kremlin.LintFinding) string {
	if len(findings) == 0 {
		return "clean\n"
	}
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestGoldenLint snapshots kremlin lint output over the example corpus and
// the bench suite. Working programs must snapshot as "clean"; the fault
// corpus pins diagnostic text and source positions. Refresh intentionally
// with
//
//	go test -run TestGoldenLint -update .
func TestGoldenLint(t *testing.T) {
	for name, src := range lintPrograms(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			prog, err := kremlin.Compile(name+".kr", src)
			if err != nil {
				t.Fatal(err)
			}
			got := renderLint(prog.Lint())
			if !strings.HasPrefix(name, "fault-") && strings.Contains(got, ": error:") {
				t.Errorf("lint claims working program %s provably faults:\n%s", name, got)
			}
			if strings.HasPrefix(name, "fault-") && got == "clean\n" {
				t.Errorf("lint missed the definite fault in %s", name)
			}

			path := filepath.Join("testdata", "golden", "lint", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden lint snapshot (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("lint output diverged from %s\n--- got ---\n%s--- want ---\n%s\n(rerun with -update if the change is intentional)",
					path, got, want)
			}
		})
	}
}
