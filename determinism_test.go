package kremlin_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"os"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/depcheck"
	"kremlin/internal/inccache"
	"kremlin/internal/krgen"
	"kremlin/internal/planner"
)

// TestRepeatedRunDeterminism locks in byte-for-byte deterministic output:
// two independent compile+profile+plan pipelines over the same source must
// produce identical serialized profiles, identical plan renderings under
// every personality, and identical vet reports. Any map-iteration order
// leaking into an output path shows up here as a flaky diff.
func TestRepeatedRunDeterminism(t *testing.T) {
	srcs := map[string]string{
		"tracking": bench.Tracking().Source,
		"cg":       bench.ByName("cg").Source,
	}
	personalities := map[string]planner.Personality{
		"openmp":    planner.OpenMP(),
		"cilk":      planner.Cilk(),
		"work-only": planner.WorkOnly(),
		"work+sp":   planner.WorkSP(),
	}
	for name, src := range srcs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			type snapshot struct {
				profile []byte
				plans   map[string]string
				vet     string
			}
			take := func() snapshot {
				prog, err := kremlin.Compile(name+".kr", src)
				if err != nil {
					t.Fatal(err)
				}
				prof, _, err := prog.Profile(nil)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := prof.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				plans := make(map[string]string)
				for pname, p := range personalities {
					plans[pname] = prog.Plan(prof, p).Render()
				}
				var vet strings.Builder
				for _, rep := range prog.Vet.Loops {
					fmt.Fprintf(&vet, "%s %s", rep.Region.Label(), rep.Verdict)
					for _, c := range rep.Causes {
						fmt.Fprintf(&vet, " cause(%s)", c)
					}
					for _, c := range rep.Blockers {
						fmt.Fprintf(&vet, " blocker(%s)", c)
					}
					vet.WriteByte('\n')
				}
				return snapshot{profile: buf.Bytes(), plans: plans, vet: vet.String()}
			}

			first := take()
			for i := 1; i < 3; i++ {
				again := take()
				if !bytes.Equal(again.profile, first.profile) {
					t.Fatalf("run %d: serialized profile differs (%d vs %d bytes)", i, len(again.profile), len(first.profile))
				}
				for pname := range personalities {
					if again.plans[pname] != first.plans[pname] {
						t.Fatalf("run %d: %s plan differs:\n--- first ---\n%s--- again ---\n%s",
							i, pname, first.plans[pname], again.plans[pname])
					}
				}
				if again.vet != first.vet {
					t.Fatalf("run %d: vet report differs:\n--- first ---\n%s--- again ---\n%s", i, first.vet, again.vet)
				}
			}
		})
	}
}

// TestVetReportDeterminism re-analyzes one module repeatedly: the static
// analyzer itself (summaries, cause ordering, dedup) must be stable even
// without a profile run in between.
func TestVetReportDeterminism(t *testing.T) {
	src := bench.ByName("lu").Source
	render := func() string {
		prog, err := kremlin.Compile("lu.kr", src)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, rep := range prog.Vet.Loops {
			fmt.Fprintf(&b, "%d %s %v %v\n", rep.Region.ID, rep.Verdict, rep.Causes, rep.Blockers)
		}
		par, ser, unk := prog.Vet.Counts()
		fmt.Fprintf(&b, "counts %d %d %d\n", par, ser, unk)
		return b.String()
	}
	first := render()
	for i := 1; i < 4; i++ {
		if got := render(); got != first {
			t.Fatalf("analysis run %d produced a different report:\n--- first ---\n%s--- run %d ---\n%s", i, first, i, got)
		}
	}
	// The verdict counts must also survive the depcheck → regions.Safety →
	// profile round trip.
	prog, err := kremlin.Compile("lu.kr", src)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range prog.Vet.Loops {
		if got := prof.Safety[rep.Region.ID]; got != uint8(rep.Verdict.Safety()) {
			t.Errorf("region %d: profile safety %d, verdict %v", rep.Region.ID, got, rep.Verdict)
		}
		if rep.Verdict == depcheck.Parallel && prog.Regions.Regions[rep.Region.ID].Safety.String() != "proven" {
			t.Errorf("region %d: parallel verdict not stamped as proven", rep.Region.ID)
		}
	}
}

// TestIncrementalCacheDeterminism locks in the warm-path determinism
// contract of the incremental profile cache: repeated warm runs over the
// same cache serialize byte-identical profiles and render byte-identical
// plans, and wiping the cache directory entirely (forcing a cold re-record)
// converges back to those same bytes.
func TestIncrementalCacheDeterminism(t *testing.T) {
	srcs := map[string]string{
		"sealed-scale": krgen.GenerateScale(5, krgen.ScaleForLines(600, 20), nil),
		"tracking":     bench.Tracking().Source,
	}
	for name, src := range srcs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			take := func() (profBytes []byte, plan string) {
				st, err := inccache.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := kremlin.Compile(name+".kr", src)
				if err != nil {
					t.Fatal(err)
				}
				prof, _, err := prog.Profile(&kremlin.RunConfig{Cache: st})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := prof.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), prog.Plan(prof, planner.OpenMP()).Render()
			}

			firstProf, firstPlan := take() // cold: populates the cache
			for i := 1; i < 4; i++ {
				prof, plan := take() // warm
				if !bytes.Equal(prof, firstProf) {
					t.Fatalf("warm run %d: profile differs from cold run", i)
				}
				if plan != firstPlan {
					t.Fatalf("warm run %d: plan differs from cold run", i)
				}
			}
			// Wipe the cache: the forced cold re-record must converge to the
			// same bytes the warm path produced.
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
			prof, plan := take()
			if !bytes.Equal(prof, firstProf) {
				t.Fatalf("cold run after cache wipe differs from warm profile")
			}
			if plan != firstPlan {
				t.Fatalf("cold run after cache wipe renders a different plan")
			}
		})
	}
}
