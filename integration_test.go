package kremlin_test

// End-to-end integration tests of the workflow the CLI tools wrap:
// compile → profile → serialize to disk → reload → plan, plus the
// pipeline options.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
)

const toolSrc = `
float img[64][64];
float out[64][64];

void blur() {
	for (int i = 1; i < 63; i++) {
		for (int j = 1; j < 63; j++) {
			out[i][j] = 0.2 * (img[i][j] + img[i-1][j] + img[i+1][j] + img[i][j-1] + img[i][j+1]);
		}
	}
}

int main() {
	for (int i = 0; i < 64; i++) {
		for (int j = 0; j < 64; j++) {
			img[i][j] = float((i * 7 + j * 3) % 13);
		}
	}
	blur();
	print("done", out[32][32]);
	return 0;
}
`

// TestProfileFileRoundTripPlan mirrors kremlin-run + kremlin: the profile
// written to disk yields the identical plan after reloading.
func TestProfileFileRoundTripPlan(t *testing.T) {
	prog, err := kremlin.Compile("tool.kr", toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tool.krpf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prof.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	loaded, err := profile.ReadFrom(g)
	if err != nil {
		t.Fatal(err)
	}

	p1 := prog.Plan(prof, planner.OpenMP())
	p2 := prog.Plan(loaded, planner.OpenMP())
	if len(p1.Recs) != len(p2.Recs) {
		t.Fatalf("plan sizes differ after reload: %d vs %d", len(p1.Recs), len(p2.Recs))
	}
	for i := range p1.Recs {
		if p1.Recs[i].Label() != p2.Recs[i].Label() {
			t.Errorf("rec %d: %s vs %s", i, p1.Recs[i].Label(), p2.Recs[i].Label())
		}
	}
}

// TestMergedProfilePlans mirrors kremlin-run -merge.
func TestMergedProfilePlans(t *testing.T) {
	prog, err := kremlin.Compile("tool.kr", toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	single := prog.Plan(p1, planner.OpenMP())
	p1.Merge(p2)
	merged := prog.Plan(p1, planner.OpenMP())
	if len(single.Recs) != len(merged.Recs) {
		t.Errorf("merging identical runs changed the plan: %d vs %d", len(single.Recs), len(merged.Recs))
	}
}

// TestCompileOptionsMatrix: every option combination compiles and runs with
// identical output.
func TestCompileOptionsMatrix(t *testing.T) {
	var want string
	for _, o := range []kremlin.CompileOptions{
		{},
		{Optimize: true},
		{DisableDependenceBreaking: true},
		{Optimize: true, DisableDependenceBreaking: true},
	} {
		prog, err := kremlin.CompileWith("tool.kr", toolSrc, o)
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		var buf bytes.Buffer
		if _, err := prog.Run(&kremlin.RunConfig{Out: &buf}); err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		if want == "" {
			want = buf.String()
		} else if buf.String() != want {
			t.Errorf("%+v: output %q differs from %q", o, buf.String(), want)
		}
	}
}

// TestCompileErrorsSurface: the API returns diagnostics, not panics.
func TestCompileErrorsSurface(t *testing.T) {
	cases := []string{
		"int main() { return undeclared; }",
		"int main() { if (1) {} return 0; }",
		"not a program",
		"",
	}
	for _, src := range cases {
		if _, err := kremlin.Compile("bad.kr", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// TestFuncAccessor covers the small public helpers.
func TestFuncAccessor(t *testing.T) {
	prog, err := kremlin.Compile("tool.kr", toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Func("blur") == nil || prog.Func("main") == nil {
		t.Error("Func lookup failed")
	}
	if prog.Func("nope") != nil {
		t.Error("Func of unknown name should be nil")
	}
}

// TestHotspotsReport: the gprof-style flat profile (the paper's §2.1
// baseline workflow) ranks by self work, accumulates to ~100%, and keeps
// self <= total.
func TestHotspotsReport(t *testing.T) {
	prog, err := kremlin.Compile("tool.kr", toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.RunGprof(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := prog.Hotspots(res)
	if len(rows) == 0 {
		t.Fatal("empty hotspot list")
	}
	var selfSum uint64
	for i, r := range rows {
		if i > 0 && r.Self > rows[i-1].Self {
			t.Errorf("not sorted at %d", i)
		}
		if r.Self > r.Total {
			t.Errorf("%s: self %d > total %d", r.Region.Label(), r.Self, r.Total)
		}
		selfSum += r.Self
	}
	// Self work partitions total work (bodies folded into loops).
	if selfSum != res.Work {
		t.Errorf("self sum %d != work %d", selfSum, res.Work)
	}
	last := rows[len(rows)-1].CumPct
	if last < 99.9 || last > 100.1 {
		t.Errorf("cumulative ends at %.2f%%", last)
	}
	// The blur loop dominates and leads.
	if rows[0].Region.Func.Name != "blur" {
		t.Errorf("top hotspot is %s, want blur's loop", rows[0].Region.Label())
	}
	out := kremlin.RenderHotspots(rows)
	if !strings.Contains(out, "self%") || !strings.Contains(out, "blur") {
		t.Errorf("render missing columns:\n%s", out)
	}
}
