// NPB runs one NAS Parallel Benchmark (or SPEC OMP program) end to end:
// profile the serial version, plan with the OpenMP personality, compare
// the plan against the MANUAL parallelization on the simulated 32-core
// machine, and show the marginal benefit of each recommendation — a
// single-benchmark slice of the paper's §6 evaluation.
//
// Usage: go run ./examples/npb [benchmark]   (default: sp)
package main

import (
	"fmt"
	"log"
	"os"

	"kremlin/internal/bench"
	"kremlin/internal/eval"
	"kremlin/internal/exec"
	"kremlin/internal/planner"
)

func main() {
	name := "sp"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b := bench.ByName(name)
	if b == nil {
		log.Fatalf("unknown benchmark %q (one of: ammp art equake bt cg ep ft is lu mg sp)", name)
	}
	c, err := bench.Load(b)
	if err != nil {
		log.Fatal(err)
	}

	plan := c.Program.Plan(c.Profile, planner.OpenMP())
	fmt.Printf("-- %s (%s, input %s): Kremlin plan --\n", b.Name, b.Suite, b.Input)
	fmt.Print(plan.Render())

	kIDs := eval.PlanIDs(plan)
	mIDs := bench.ManualPlan(b, c.Summary)
	machine := exec.Default32()

	kSet := map[int]bool{}
	for _, id := range kIDs {
		kSet[id] = true
	}
	mSet := map[int]bool{}
	for _, id := range mIDs {
		mSet[id] = true
	}
	kRes := exec.BestConfig(c.Summary, kSet, machine)
	mRes := exec.BestConfig(c.Summary, mSet, machine)

	fmt.Printf("\n-- simulated on a %d-core machine (best configuration) --\n", machine.Cores)
	fmt.Printf("MANUAL plan:  %2d regions, speedup %6.2fx\n", len(mIDs), mRes.Speedup)
	fmt.Printf("Kremlin plan: %2d regions, speedup %6.2fx  (%.2fx relative)\n",
		len(kIDs), kRes.Speedup, kRes.Speedup/mRes.Speedup)

	fmt.Println("\n-- marginal benefit of applying the plan in order (Figure 7) --")
	series := exec.MarginalSeries(c.Summary, kIDs, machine)
	for i, v := range series {
		fmt.Printf("  after %2d region(s): %5.1f%% time reduction  (%s)\n",
			i+1, v, plan.Recs[i].Label())
	}
}
