// Quickstart: compile a small serial Kr program, profile it with
// hierarchical critical path analysis, and print the OpenMP parallelism
// plan — the full Kremlin workflow in one file.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"

	"kremlin"
	"kremlin/internal/planner"
)

// The Kr source lives in its own file so tests (golden plans, fuzz-target
// corpus) can load the identical program from disk.
//
//go:embed quickstart.kr
var src string

func main() {
	// 1. Compile (the library form of `make CC=kremlin-cc`).
	prog, err := kremlin.Compile("quickstart.kr", src)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run the instrumented program: normal output plus a parallelism
	// profile recorded by hierarchical critical path analysis.
	fmt.Println("-- program output --")
	prof, res, err := prog.Profile(&kremlin.RunConfig{Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- profiled %d work units; %d dynamic regions -> %d dictionary entries --\n\n",
		res.Work, prof.Dict.RawCount, len(prof.Dict.Entries))

	// 3. Inspect per-region self-parallelism: the loop in scale() should be
	// massively parallel, smooth() serial, sum() parallel (reduction broken).
	sum := prog.Summarize(prof)
	fmt.Println("-- region metrics --")
	for _, st := range sum.Executed {
		fmt.Printf("%-34s self-P %8.1f   coverage %5.1f%%\n",
			st.Region.Label(), st.SelfP, 100*st.Coverage)
	}

	// 4. Plan: which regions to parallelize first, per the OpenMP
	// personality (Figure 3's output).
	fmt.Println("\n-- parallelism plan (openmp personality) --")
	plan := prog.Plan(prof, planner.OpenMP())
	fmt.Print(plan.Render())
}
