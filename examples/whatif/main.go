// Whatif demonstrates the planner workflow features beyond the basic plan:
// planner personalities (OpenMP vs Cilk++ vs the Figure-9 baselines) on
// the same profile, and the exclusion-list replanning loop for regions the
// user is unable or unwilling to parallelize.
package main

import (
	"fmt"
	"log"

	"kremlin/internal/bench"
	"kremlin/internal/planner"
)

func main() {
	c, err := bench.Load(bench.ByName("cg"))
	if err != nil {
		log.Fatal(err)
	}
	sum := c.Summary

	fmt.Println("-- the same profile under four planner personalities --")
	for _, p := range []planner.Personality{
		planner.OpenMP(), planner.Cilk(), planner.WorkOnly(), planner.WorkSP(),
	} {
		plan := planner.Make(sum, p)
		fmt.Printf("%-10s %2d of %2d regions, ideal program speedup %6.2fx\n",
			p.Name, len(plan.Recs), plan.Considered, plan.EstProgramSpeedup)
	}

	// Exclusion-list replanning: suppose the top recommendation turns out
	// to be too hard to parallelize (the paper's §3 workflow). Excluding it
	// and replanning re-optimizes the rest of the plan.
	base := planner.Make(sum, planner.OpenMP())
	fmt.Println("\n-- openmp plan --")
	fmt.Print(base.Render())

	top := base.Recs[0].Label()
	fmt.Printf("\n-- user can't parallelize %q; replanning with it excluded --\n", top)
	replanned := planner.Make(sum, planner.OpenMP(), planner.Exclude(top))
	fmt.Print(replanned.Render())

	if replanned.Has(top) {
		log.Fatalf("exclusion failed: %s still planned", top)
	}
}
