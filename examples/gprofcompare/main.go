// Gprofcompare dramatizes the paper's motivation (§2.1): the serial
// hotspot list a gprof-style profiler produces ranks regions by time —
// but the hottest region may be unparallelizable, and the real
// opportunity may sit further down. The example program's #1 hotspot is a
// serial recurrence; Kremlin's plan skips it and leads with the truly
// parallel region.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"kremlin"
	"kremlin/internal/planner"
)

// The Kr source lives in its own file so tests (golden plans, fuzz-target
// corpus) can load the identical program from disk.
//
//go:embed compare.kr
var src string

func main() {
	prog, err := kremlin.Compile("compare.kr", src)
	if err != nil {
		log.Fatal(err)
	}

	// The old workflow: a gprof flat profile. simulate() leads.
	res, err := prog.RunGprof(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- the gprof workflow: serial hotspot list (which is #1? simulate — a dead end) --")
	fmt.Print(kremlin.RenderHotspots(prog.Hotspots(res)))

	// The Kremlin workflow: profile parallelism, plan.
	prof, _, err := prog.Profile(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- the Kremlin workflow: parallelism plan (simulate is correctly absent) --")
	plan := prog.Plan(prof, planner.OpenMP())
	fmt.Print(plan.Render())

	for _, r := range plan.Recs {
		if r.Stats.Region.Func.Name == "simulate" {
			log.Fatal("BUG: the serial recurrence was recommended")
		}
	}
	fmt.Println("\nThe top gprof hotspot (simulate) is serial: self-parallelism ≈ 1.")
	fmt.Println("Kremlin spends the programmer's effort on relax/fold instead.")
}
