// Gprofcompare dramatizes the paper's motivation (§2.1): the serial
// hotspot list a gprof-style profiler produces ranks regions by time —
// but the hottest region may be unparallelizable, and the real
// opportunity may sit further down. The example program's #1 hotspot is a
// serial recurrence; Kremlin's plan skips it and leads with the truly
// parallel region.
package main

import (
	"fmt"
	"log"

	"kremlin"
	"kremlin/internal/planner"
)

const src = `
float state[6000];
float field[3000];
float checksum;

// Hotspot #1 by time: a serial recurrence. gprof ranks it first;
// parallelizing it is wasted effort.
void simulate(int steps) {
	for (int t = 1; t < steps; t++) {
		state[t] = state[t-1] * 0.9995 + sin(float(t) * 0.001);
	}
}

// Hotspot #2 by time: fully parallel. This is where the speedup is.
void relax(int n) {
	for (int i = 0; i < n; i++) {
		field[i] = sqrt(fabs(field[i])) + float(i % 17) * 0.25;
	}
}

// A small reduction tail.
void fold(int n) {
	for (int i = 0; i < n; i++) {
		checksum = checksum + field[i] + state[i % 6000];
	}
}

int main() {
	state[0] = 1.0;
	simulate(6000);
	relax(3000);
	fold(3000);
	print("checksum", checksum);
	return 0;
}
`

func main() {
	prog, err := kremlin.Compile("compare.kr", src)
	if err != nil {
		log.Fatal(err)
	}

	// The old workflow: a gprof flat profile. simulate() leads.
	res, err := prog.RunGprof(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- the gprof workflow: serial hotspot list (which is #1? simulate — a dead end) --")
	fmt.Print(kremlin.RenderHotspots(prog.Hotspots(res)))

	// The Kremlin workflow: profile parallelism, plan.
	prof, _, err := prog.Profile(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- the Kremlin workflow: parallelism plan (simulate is correctly absent) --")
	plan := prog.Plan(prof, planner.OpenMP())
	fmt.Print(plan.Render())

	for _, r := range plan.Recs {
		if r.Stats.Region.Func.Name == "simulate" {
			log.Fatal("BUG: the serial recurrence was recommended")
		}
	}
	fmt.Println("\nThe top gprof hotspot (simulate) is serial: self-parallelism ≈ 1.")
	fmt.Println("Kremlin spends the programmer's effort on relax/fold instead.")
}
