// Tracking reproduces the paper's running example (Figures 2 and 3): the
// SD-VBS feature-tracking benchmark. It shows how traditional critical
// path analysis misattributes parallelism in the fillFeatures nest —
// reporting all three loops as parallel — while self-parallelism
// localizes it to the innermost loop, and then prints the Figure-3 plan.
package main

import (
	"fmt"
	"log"

	"kremlin/internal/bench"
	"kremlin/internal/planner"
	"kremlin/internal/regions"
)

func main() {
	c, err := bench.Load(bench.Tracking())
	if err != nil {
		log.Fatal(err)
	}

	// Figure 2: the fillFeatures nest. Total-parallelism (classic CPA)
	// reports parallelism in every level because the innermost loop is
	// parallel; self-parallelism factors children out and pins it down.
	fmt.Println("-- Figure 2: localizing parallelism in fillFeatures --")
	fmt.Printf("%-44s %10s %10s\n", "region", "total-P", "self-P")
	for _, st := range c.Summary.Executed {
		if st.Region.Func.Name != "fillFeatures" || st.Region.Kind != regions.LoopRegion {
			continue
		}
		fmt.Printf("%-44s %10.1f %10.1f\n", st.Region.Label(), st.TotalP, st.SelfP)
	}
	fmt.Println("(total-P is high for the outer loops only because they contain the inner one;")
	fmt.Println(" self-P shows the outer loops are serial and the innermost k-loop is parallel)")

	// Figure 3: the planner UI.
	fmt.Println("\n-- Figure 3: Kremlin's plan for tracking --")
	fmt.Println("$> make CC=kremlin-cc")
	fmt.Println("$> ./tracking data")
	fmt.Println("$> kremlin tracking --personality=openmp")
	plan := c.Program.Plan(c.Profile, planner.OpenMP())
	fmt.Print(plan.Render())
}
