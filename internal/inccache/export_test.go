package inccache

import (
	"encoding/binary"
	"hash/fnv"
)

// ReversionForTest rewrites a valid cache file's format version to a future
// value and fixes up the trailing checksum, so version-skew handling can be
// exercised without also tripping the corruption check.
func ReversionForTest(data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) < len(diskMagic)+9 {
		return out
	}
	out[len(diskMagic)] = diskVersion + 1
	h := fnv.New64a()
	_, _ = h.Write(out[:len(out)-8])
	binary.LittleEndian.PutUint64(out[len(out)-8:], h.Sum64())
	return out
}
