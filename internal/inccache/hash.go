// Canonical-IR content hashing for the incremental profile cache.
//
// Every function gets a transitive content key H(f): a truncated SHA-256 of
// its own canonical IR combined with the keys of everything it can call, so
// editing a callee changes the key of every (transitive) caller — the same
// bottom-up invalidation order the depcheck summaries use. Hashing works on
// the IR after all analysis passes (mem2reg, induction/reduction marking),
// so two sources that lower to identical annotated IR share a key; source
// positions and the function's own name are deliberately excluded, making
// whitespace edits, comment edits, and renames cache hits.
package inccache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"kremlin/internal/ir"
)

// Key is a truncated SHA-256 content hash. 128 bits keeps collision
// probability negligible at any plausible cache size while halving the
// filename and key-compare cost.
type Key [16]byte

func (k Key) String() string { return hex.EncodeToString(k[:]) }

// parseKey inverts Key.String, rejecting anything that is not exactly 32
// lower-case hex digits.
func parseKey(s string) (Key, bool) {
	var k Key
	if len(s) != 2*len(k) {
		return k, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, false
	}
	copy(k[:], b)
	return k, true
}

// funcFact is the per-function verdict of the content analysis: the
// transitive key plus whether the function is sealed — a deterministic pure
// sub-computation whose dynamic extent the cache may record and replay.
type funcFact struct {
	key Key
	// sealed: no global reads or writes, no RNG or output builtins anywhere
	// in the function or its transitive callees, and all parameters scalar.
	// A sealed call's extent is a pure function of its argument values, so
	// an extent recorded once replays for any later call with the same
	// arguments (subject to the timeliness check at the call site).
	sealed bool
}

// impureBuiltins are the builtins that couple a function to state outside
// its frame: the runtime RNG chain and the observable-output chain.
var impureBuiltins = map[string]bool{
	"rand": true, "frand": true, "srand": true,
	"print": true, "printval": true, "printstr": true, "printnl": true,
}

type canon struct{ buf []byte }

func (c *canon) u(v uint64) { c.buf = binary.AppendUvarint(c.buf, v) }
func (c *canon) i(v int64)  { c.buf = binary.AppendVarint(c.buf, v) }
func (c *canon) s(s string) { c.u(uint64(len(s))); c.buf = append(c.buf, s...) }

func (c *canon) b(v bool) {
	if v {
		c.buf = append(c.buf, 1)
	} else {
		c.buf = append(c.buf, 0)
	}
}

func (c *canon) value(v ir.Value) {
	switch a := v.(type) {
	case *ir.Instr:
		c.u(0)
		c.u(uint64(a.ID))
	case *ir.ConstInt:
		c.u(1)
		c.i(a.V)
	case *ir.ConstFloat:
		c.u(2)
		c.u(math.Float64bits(a.V))
	case *ir.ConstBool:
		c.u(3)
		c.b(a.V)
	default:
		c.u(4)
	}
}

// localSum hashes one function's own canonical IR: signature, CFG shape,
// and every instruction including the analysis annotations the runtime
// consumes (induction/reduction/BreakArg — they change profiling behavior,
// so they must change the key). Pos/EndPos and the function's own name are
// excluded; callees appear as name literals (their content is folded in
// transitively by analyze). Returns the hash and whether the body is free
// of globals and impure builtins.
func localSum(f *ir.Func) (sum [32]byte, pure bool) {
	c := &canon{buf: make([]byte, 0, 1024)}
	pure = true
	c.u(uint64(f.Ret))
	c.u(uint64(len(f.Params)))
	for _, p := range f.Params {
		c.u(uint64(p.Typ.Elem))
		c.u(uint64(p.Typ.Dims))
	}
	c.u(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		c.u(uint64(b.ID))
		c.u(uint64(len(b.Preds)))
		for _, p := range b.Preds {
			c.u(uint64(p.ID))
		}
		c.u(uint64(len(b.Instrs)))
		for _, ins := range b.Instrs {
			c.u(uint64(ins.Op))
			c.u(uint64(ins.Bin))
			c.u(uint64(ins.Typ.Elem))
			c.u(uint64(ins.Typ.Dims))
			c.u(uint64(len(ins.Args)))
			for _, a := range ins.Args {
				c.value(a)
			}
			c.i(int64(ins.Slot))
			if g := ins.Global; g != nil {
				pure = false
				c.u(1)
				c.s(g.Name)
				c.u(uint64(g.Elem))
				c.u(uint64(len(g.Dims)))
				for _, d := range g.Dims {
					c.i(d)
				}
				if g.Init != nil {
					c.value(g.Init)
				} else {
					c.u(5)
				}
			} else {
				c.u(0)
			}
			if ins.Callee != nil {
				c.u(1)
				c.s(ins.Callee.Name)
			} else {
				c.u(0)
			}
			c.s(ins.Builtin)
			if impureBuiltins[ins.Builtin] {
				pure = false
			}
			c.s(ins.Aux)
			c.u(uint64(len(ins.Targets)))
			for _, t := range ins.Targets {
				c.u(uint64(t.ID))
			}
			c.b(ins.Induction)
			c.b(ins.Reduction)
			c.i(int64(ins.BreakArg))
			c.u(uint64(ins.ID))
		}
	}
	return sha256.Sum256(c.buf), pure
}

// analyze computes the transitive key and sealed verdict for every function
// in the module. Strongly connected components of the call graph (mutual
// recursion) are condensed with Tarjan's algorithm and processed callees
// first, so each key folds in the keys of everything reachable from it; all
// members of an SCC share the SCC signature, mixed with their own local sum
// so distinct members still get distinct keys.
func analyze(mod *ir.Module) map[*ir.Func]*funcFact {
	n := len(mod.Funcs)
	local := make(map[*ir.Func][32]byte, n)
	pure := make(map[*ir.Func]bool, n)
	callees := make(map[*ir.Func][]*ir.Func, n)
	for _, f := range mod.Funcs {
		sum, p := localSum(f)
		local[f], pure[f] = sum, p
		var seen map[*ir.Func]bool
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpCall && ins.Callee != nil {
					if seen == nil {
						seen = make(map[*ir.Func]bool)
					}
					if !seen[ins.Callee] {
						seen[ins.Callee] = true
						callees[f] = append(callees[f], ins.Callee)
					}
				}
			}
		}
	}

	// Tarjan SCC; emission order is callees-first in the condensation.
	index := make(map[*ir.Func]int, n)
	low := make(map[*ir.Func]int, n)
	onStack := make(map[*ir.Func]bool, n)
	sccOf := make(map[*ir.Func]int, n)
	var stack []*ir.Func
	var sccs [][]*ir.Func
	next := 0
	var strongconnect func(f *ir.Func)
	strongconnect = func(f *ir.Func) {
		index[f] = next
		low[f] = next
		next++
		stack = append(stack, f)
		onStack[f] = true
		for _, g := range callees[f] {
			if _, ok := index[g]; !ok {
				strongconnect(g)
				if low[g] < low[f] {
					low[f] = low[g]
				}
			} else if onStack[g] && index[g] < low[f] {
				low[f] = index[g]
			}
		}
		if low[f] == index[f] {
			var comp []*ir.Func
			for {
				g := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[g] = false
				sccOf[g] = len(sccs)
				comp = append(comp, g)
				if g == f {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, f := range mod.Funcs {
		if _, ok := index[f]; !ok {
			strongconnect(f)
		}
	}

	facts := make(map[*ir.Func]*funcFact, n)
	contained := make([]bool, len(sccs))
	for si, comp := range sccs {
		ok := true
		var memberSums [][32]byte
		extKeys := make(map[Key]bool)
		for _, f := range comp {
			if !pure[f] {
				ok = false
			}
			memberSums = append(memberSums, local[f])
			for _, g := range callees[f] {
				if sccOf[g] != si {
					extKeys[facts[g].key] = true
					if !contained[sccOf[g]] {
						ok = false
					}
				}
			}
		}
		contained[si] = ok

		sort.Slice(memberSums, func(i, j int) bool {
			return string(memberSums[i][:]) < string(memberSums[j][:])
		})
		var extSorted []Key
		for k := range extKeys {
			extSorted = append(extSorted, k)
		}
		sort.Slice(extSorted, func(i, j int) bool {
			return string(extSorted[i][:]) < string(extSorted[j][:])
		})
		sig := canon{buf: make([]byte, 0, 64)}
		sig.u(uint64(len(memberSums)))
		for _, s := range memberSums {
			sig.buf = append(sig.buf, s[:]...)
		}
		sig.u(uint64(len(extSorted)))
		for _, k := range extSorted {
			sig.buf = append(sig.buf, k[:]...)
		}
		sccSig := sha256.Sum256(sig.buf)

		for _, f := range comp {
			mix := make([]byte, 0, 64)
			ls := local[f]
			mix = append(mix, ls[:]...)
			mix = append(mix, sccSig[:]...)
			full := sha256.Sum256(mix)
			var k Key
			copy(k[:], full[:16])
			sealed := ok
			for _, p := range f.Params {
				if !p.Typ.IsScalar() {
					sealed = false
				}
			}
			facts[f] = &funcFact{key: k, sealed: sealed}
		}
	}
	return facts
}
