package inccache_test

// Cache-robustness tier: a damaged cache must never panic, never poison a
// profile, and must self-repair. Every corruption here is detected at Open
// (checksum + format version + structural validation), the bad file is
// deleted, the affected contexts degrade to misses, and the subsequent run
// still produces the byte-identical profile and rewrites a good file.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/inccache"
)

// seedCache runs a cold profile into dir and returns the cache file paths.
func seedCache(t *testing.T, dir string) []string {
	t.Helper()
	st := openStore(t, dir)
	_, _, _, stats := runProfile(t, srcBase, st, kremlin.EngineVM)
	if stats.Recorded == 0 {
		t.Fatalf("seed run recorded nothing")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.kric"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files written: %v", err)
	}
	return files
}

// checkRepairedRun asserts that opening the damaged cache detects
// wantCorrupt bad files, that a warm run still matches the uncached
// profile byte for byte, and that the damage was repaired on disk.
func checkRepairedRun(t *testing.T, dir string, wantCorrupt int) {
	t.Helper()
	base, baseSteps, _ := coldProfile(t, srcBase, kremlin.EngineVM)
	st := openStore(t, dir)
	if got := st.CorruptCount(); got != wantCorrupt {
		t.Fatalf("corrupt count = %d, want %d", got, wantCorrupt)
	}
	warm, warmSteps, _, stats := runProfile(t, srcBase, st, kremlin.EngineVM)
	if !bytes.Equal(warm, base) {
		t.Fatalf("profile over damaged cache differs from uncached profile")
	}
	if warmSteps != baseSteps {
		t.Fatalf("steps diverge over damaged cache: %d vs %d", warmSteps, baseSteps)
	}
	if stats.Corrupt != wantCorrupt {
		t.Fatalf("session stats corrupt = %d, want %d", stats.Corrupt, wantCorrupt)
	}
	// The run re-recorded the lost extents and saved: reopening must see a
	// clean cache again.
	st2 := openStore(t, dir)
	if got := st2.CorruptCount(); got != 0 {
		t.Fatalf("cache not repaired: %d files still corrupt after re-run", got)
	}
	if st2.Records() == 0 {
		t.Fatalf("cache empty after repair run")
	}
}

func TestTruncatedEntryIsMissAndRepaired(t *testing.T) {
	dir := t.TempDir()
	files := seedCache(t, dir)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	checkRepairedRun(t, dir, 1)
}

func TestBitFlippedEntryIsMissAndRepaired(t *testing.T) {
	dir := t.TempDir()
	files := seedCache(t, dir)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	checkRepairedRun(t, dir, len(files))
}

func TestVersionSkewIsMissAndRepaired(t *testing.T) {
	dir := t.TempDir()
	files := seedCache(t, dir)
	// A future format version with a valid checksum must still be rejected.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	future := inccache.ReversionForTest(data)
	if err := os.WriteFile(files[0], future, 0o644); err != nil {
		t.Fatal(err)
	}
	checkRepairedRun(t, dir, 1)
}

func TestBadMagicAndGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	seedCache(t, dir)
	bad := []struct {
		name string
		data []byte
	}{
		{"deadbeefdeadbeefdeadbeefdeadbeef.kric", []byte("not a cache file")},
		{"nothex.kric", []byte("KRIC1\n")},
		{strings.Repeat("a", 32) + ".kric", nil}, // empty file, valid name
	}
	for _, b := range bad {
		if err := os.WriteFile(filepath.Join(dir, b.name), b.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	checkRepairedRun(t, dir, len(bad))
}

func TestEmptyAndMissingDirectory(t *testing.T) {
	// Opening a directory that does not exist yet must create it.
	dir := filepath.Join(t.TempDir(), "sub", "cache")
	st, err := inccache.Open(dir)
	if err != nil {
		t.Fatalf("open fresh nested dir: %v", err)
	}
	if st.Records() != 0 {
		t.Fatalf("fresh cache not empty")
	}
}
