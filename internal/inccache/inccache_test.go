package inccache_test

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/inccache"
	"kremlin/internal/profile"
)

// srcBase is a program with a mix of sealed and unsealed functions: triple
// and mix are sealed (pure, scalar); touchy reads a global; noisy uses the
// RNG; arrfn takes an array; main prints.
const srcBase = `
int shared;

int triple(int x) {
	int acc = 0;
	for (int i = 0; i < 40; i++) {
		acc = acc + x * 3 + i;
	}
	return acc;
}

int mix(int a, int b) {
	int s = triple(a);
	for (int i = 0; i < 10; i++) {
		s = s + b * i;
	}
	return s;
}

int touchy(int x) {
	return x + shared;
}

int noisy(int x) {
	return x + rand() % 7;
}

int arrfn(int v[]) {
	return v[0];
}

int main() {
	int data[4];
	data[0] = 9;
	int t = 0;
	for (int i = 0; i < 20; i++) {
		t = t + mix(i % 3, i % 5);
	}
	t = t + touchy(1) + noisy(2) + arrfn(data) + triple(7);
	print("t", t);
	return 0;
}
`

func compile(t *testing.T, src string) *kremlin.Program {
	t.Helper()
	p, err := kremlin.Compile("test.kr", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func openStore(t *testing.T, dir string) *inccache.Store {
	t.Helper()
	st, err := inccache.Open(dir)
	if err != nil {
		t.Fatalf("open cache: %v", err)
	}
	return st
}

func profileBytes(t *testing.T, prof *profile.Profile) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := prof.WriteTo(&b); err != nil {
		t.Fatalf("profile write: %v", err)
	}
	return b.Bytes()
}

func TestSealedClassification(t *testing.T) {
	p := compile(t, srcBase)
	st := openStore(t, t.TempDir())
	sealed := st.SealedFuncs(p.Regions)
	want := []string{"mix", "triple"}
	if fmt.Sprint(sealed) != fmt.Sprint(want) {
		t.Fatalf("sealed = %v, want %v", sealed, want)
	}
}

func TestKeyStability(t *testing.T) {
	p1 := compile(t, srcBase)
	p2 := compile(t, srcBase)
	st := openStore(t, t.TempDir())
	k1, k2 := st.Keys(p1.Regions), st.Keys(p2.Regions)
	for name, k := range k1 {
		if k2[name] != k {
			t.Errorf("key of %s differs across identical compiles", name)
		}
	}

	// Comment and whitespace edits change nothing.
	commented := strings.Replace(srcBase, "int triple(int x) {",
		"// a comment\nint triple(int x)   {", 1)
	k3 := st.Keys(compile(t, commented).Regions)
	for name, k := range k1 {
		if k3[name] != k {
			t.Errorf("key of %s changed on a comment/whitespace edit", name)
		}
	}

	// A body edit of triple changes triple and its (transitive) callers
	// mix and main, and nothing else.
	edited := strings.Replace(srcBase, "acc = acc + x * 3 + i;", "acc = acc + x * 4 + i;", 1)
	k4 := st.Keys(compile(t, edited).Regions)
	for _, name := range []string{"triple", "mix", "main"} {
		if k4[name] == k1[name] {
			t.Errorf("key of %s did not change after editing triple's body", name)
		}
	}
	for _, name := range []string{"touchy", "noisy", "arrfn"} {
		if k4[name] != k1[name] {
			t.Errorf("key of %s changed after an unrelated edit", name)
		}
	}

	// Renaming a leaf function keeps its own key (the name is excluded from
	// its hash) but changes its callers (the call site names it).
	renamed := strings.ReplaceAll(srcBase, "triple", "treble")
	k5 := st.Keys(compile(t, renamed).Regions)
	if k5["treble"] != k1["triple"] {
		t.Errorf("renaming triple changed its own content key")
	}
	if k5["mix"] == k1["mix"] {
		t.Errorf("renaming triple did not change mix's key")
	}
}

// runProfile profiles src against the store and returns the profile bytes
// plus the run stats.
func runProfile(t *testing.T, src string, st *inccache.Store, engine kremlin.Engine) ([]byte, uint64, uint64, inccache.Stats) {
	t.Helper()
	p := compile(t, src)
	var stats inccache.Stats
	var out bytes.Buffer
	prof, res, err := p.Profile(&kremlin.RunConfig{Out: &out, Engine: engine, Cache: st, CacheStats: &stats})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return profileBytes(t, prof), res.Steps, res.Work, stats
}

// coldProfile profiles src without any cache.
func coldProfile(t *testing.T, src string, engine kremlin.Engine) ([]byte, uint64, uint64) {
	t.Helper()
	p := compile(t, src)
	var out bytes.Buffer
	prof, res, err := p.Profile(&kremlin.RunConfig{Out: &out, Engine: engine})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return profileBytes(t, prof), res.Steps, res.Work
}

func TestWarmRunByteIdentical(t *testing.T) {
	for _, eng := range []kremlin.Engine{kremlin.EngineVM, kremlin.EngineTree} {
		t.Run(eng.String(), func(t *testing.T) {
			dir := t.TempDir()
			base, baseSteps, baseWork := coldProfile(t, srcBase, eng)

			st := openStore(t, dir)
			cold, coldSteps, coldWork, coldStats := runProfile(t, srcBase, st, eng)
			if !bytes.Equal(cold, base) {
				t.Fatalf("cold cached profile differs from uncached profile")
			}
			if coldSteps != baseSteps || coldWork != baseWork {
				t.Fatalf("cold cached run counters diverge: steps %d vs %d, work %d vs %d",
					coldSteps, baseSteps, coldWork, baseWork)
			}
			if coldStats.Recorded == 0 {
				t.Fatalf("cold run recorded nothing")
			}

			// Fresh store over the same directory: everything sealed should hit.
			st2 := openStore(t, dir)
			warm, warmSteps, warmWork, warmStats := runProfile(t, srcBase, st2, eng)
			if !bytes.Equal(warm, base) {
				t.Fatalf("warm profile differs from uncached profile")
			}
			if warmSteps != baseSteps || warmWork != baseWork {
				t.Fatalf("warm run counters diverge")
			}
			if warmStats.Hits == 0 {
				t.Fatalf("warm run had no cache hits: %+v", warmStats)
			}
			if warmStats.SkippedSteps == 0 {
				t.Fatalf("warm run skipped no steps")
			}
		})
	}
}

func TestCrossEngineCacheReuse(t *testing.T) {
	// Records written by the tree engine must replay on the VM and vice
	// versa, still byte-identical.
	dir := t.TempDir()
	base, baseSteps, _ := coldProfile(t, srcBase, kremlin.EngineVM)

	st := openStore(t, dir)
	_, _, _, _ = runProfile(t, srcBase, st, kremlin.EngineTree)

	st2 := openStore(t, dir)
	warm, warmSteps, _, stats := runProfile(t, srcBase, st2, kremlin.EngineVM)
	if !bytes.Equal(warm, base) {
		t.Fatalf("VM warm profile over tree-recorded cache differs")
	}
	if warmSteps != baseSteps {
		t.Fatalf("steps diverge: %d vs %d", warmSteps, baseSteps)
	}
	if stats.Hits == 0 {
		t.Fatalf("no hits replaying tree-recorded cache on the VM")
	}
}

func TestEditInvalidation(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	_, _, _, _ = runProfile(t, srcBase, st, kremlin.EngineVM)

	// Edit triple's body: warm run of the edited program must match a cold
	// run of the edited program, and must still hit for untouched contexts.
	edited := strings.Replace(srcBase, "acc = acc + x * 3 + i;", "acc = acc + x * 4 + i;", 1)
	base, baseSteps, _ := coldProfile(t, edited, kremlin.EngineVM)

	st2 := openStore(t, dir)
	warm, warmSteps, _, stats := runProfile(t, edited, st2, kremlin.EngineVM)
	if !bytes.Equal(warm, base) {
		t.Fatalf("post-edit warm profile differs from cold profile")
	}
	if warmSteps != baseSteps {
		t.Fatalf("post-edit steps diverge: %d vs %d", warmSteps, baseSteps)
	}
	// triple and mix changed key, so their cached extents are unreachable;
	// the edited run re-records them.
	if stats.Recorded == 0 {
		t.Fatalf("edited run re-recorded nothing")
	}
}

func TestWarmRepeatDeterminism(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	_, _, _, _ = runProfile(t, srcBase, st, kremlin.EngineVM)

	var first []byte
	for i := 0; i < 3; i++ {
		st2 := openStore(t, dir)
		warm, _, _, _ := runProfile(t, srcBase, st2, kremlin.EngineVM)
		if first == nil {
			first = warm
		} else if !bytes.Equal(warm, first) {
			t.Fatalf("warm run %d not byte-identical to warm run 0", i)
		}
	}
}

func TestBudgetFailureReproduces(t *testing.T) {
	// With a step budget that fails mid-way, the cached run must fail with
	// the identical error at the identical step — the cache refuses skips
	// that would jump the failure point.
	dir := t.TempDir()
	st := openStore(t, dir)
	_, fullSteps, _, _ := runProfile(t, srcBase, st, kremlin.EngineVM)
	budget := fullSteps / 2

	run := func(cache *inccache.Store) (string, uint64) {
		p := compile(t, srcBase)
		var out bytes.Buffer
		_, _, err := p.Profile(&kremlin.RunConfig{Out: &out, MaxSteps: budget, Cache: cache})
		if err == nil {
			return "", 0
		}
		return err.Error(), budget
	}
	coldMsg, _ := run(nil)
	st2 := openStore(t, dir)
	warmMsg, _ := run(st2)
	if coldMsg == "" || coldMsg != warmMsg {
		t.Fatalf("budget failure diverges:\ncold: %s\nwarm: %s", coldMsg, warmMsg)
	}
}

// runScoped profiles srcBase against st under a tenant scope.
func runScoped(t *testing.T, st *inccache.Store, scope string) ([]byte, inccache.Stats) {
	t.Helper()
	p := compile(t, srcBase)
	var stats inccache.Stats
	var out bytes.Buffer
	prof, _, err := p.Profile(&kremlin.RunConfig{Out: &out, Cache: st, CacheScope: scope, CacheStats: &stats})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return profileBytes(t, prof), stats
}

// TestScopedKeyspaceIsolation pins the tenant-isolation contract: records
// written under one scope never hit under another scope (or unscoped), yet
// repeat traffic within a scope hits normally, and every combination stays
// byte-identical to the uncached run.
func TestScopedKeyspaceIsolation(t *testing.T) {
	base, _, _ := coldProfile(t, srcBase, kremlin.EngineVM)
	st := openStore(t, t.TempDir())

	profA, statsA := runScoped(t, st, "tenant-a")
	if !bytes.Equal(profA, base) {
		t.Fatalf("scoped cold profile differs from uncached")
	}
	if statsA.Recorded == 0 {
		t.Fatalf("scoped cold run recorded nothing")
	}

	// Same scope: warm.
	profA2, statsA2 := runScoped(t, st, "tenant-a")
	if !bytes.Equal(profA2, base) {
		t.Fatalf("scoped warm profile differs from uncached")
	}
	if statsA2.Hits == 0 {
		t.Fatalf("repeat run in the same scope had no hits: %+v", statsA2)
	}

	// Different scope: tenant-a's records must be invisible.
	profB, statsB := runScoped(t, st, "tenant-b")
	if !bytes.Equal(profB, base) {
		t.Fatalf("cross-scope profile differs from uncached")
	}
	if statsB.Hits != 0 {
		t.Fatalf("tenant-b replayed tenant-a's records: %+v", statsB)
	}
	if statsB.Recorded == 0 {
		t.Fatalf("tenant-b's cold run recorded nothing")
	}

	// Unscoped sessions live in their own (global) keyspace too.
	_, _, _, statsGlobal := runProfile(t, srcBase, st, kremlin.EngineVM)
	if statsGlobal.Hits != 0 {
		t.Fatalf("unscoped run replayed scoped records: %+v", statsGlobal)
	}

	// tenant-a is still warm after all the neighbours' traffic.
	_, statsA3 := runScoped(t, st, "tenant-a")
	if statsA3.Hits == 0 {
		t.Fatalf("tenant-a's records lost: %+v", statsA3)
	}
}

func kricFiles(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".kric") {
			n++
		}
	}
	return n
}

// TestRecordBoundEviction pins the size-bound contract: the store never
// holds more records than the bound (modulo the one key being inserted),
// evicted keys lose their disk files, the eviction counter reports the
// displacement, and a shrinking SetMaxRecords evicts retroactively.
func TestRecordBoundEviction(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	_, _, _, stats := runProfile(t, srcBase, st, kremlin.EngineVM)
	full := st.Records()
	if full < 4 {
		t.Skipf("fixture produced only %d records", full)
	}
	filesFull := kricFiles(t, dir)

	// Retroactive shrink: the store must drop to the bound and remove the
	// evicted keys' files.
	bound := 2
	st.SetMaxRecords(bound)
	if got := st.Records(); got > bound {
		t.Fatalf("after SetMaxRecords(%d): %d records held", bound, got)
	}
	if st.EvictedCount() == 0 {
		t.Fatalf("shrink evicted nothing (had %d records)", full)
	}
	if got := kricFiles(t, dir); got >= filesFull {
		t.Fatalf("eviction removed no cache files (%d before, %d after)", filesFull, got)
	}

	// Inserts against a bounded store stay bounded, and the stats surface
	// the eviction count.
	dir2 := t.TempDir()
	st2 := openStore(t, dir2)
	st2.SetMaxRecords(1)
	_, _, _, stats2 := runProfile(t, srcBase, st2, kremlin.EngineVM)
	if got := st2.Records(); got > 1 {
		t.Fatalf("bounded store holds %d records, want <= 1", got)
	}
	if stats2.Evicted == 0 {
		t.Fatalf("session stats did not surface evictions: %+v", stats2)
	}
	if stats2.Recorded < stats.Recorded {
		t.Fatalf("bound suppressed recording: %d vs %d", stats2.Recorded, stats.Recorded)
	}

	// The warm path still works under a generous bound: a bound wider than
	// the working set must not evict and must still hit.
	dir3 := t.TempDir()
	st3 := openStore(t, dir3)
	st3.SetMaxRecords(full * 2)
	_, _, _, _ = runProfile(t, srcBase, st3, kremlin.EngineVM)
	st3b := openStore(t, dir3)
	st3b.SetMaxRecords(full * 2)
	_, _, _, warm := runProfile(t, srcBase, st3b, kremlin.EngineVM)
	if warm.Hits == 0 {
		t.Fatalf("generous bound broke the warm path: %+v", warm)
	}
	if warm.Evicted != 0 {
		t.Fatalf("generous bound evicted: %+v", warm)
	}
}

func TestSessionStatsHitRate(t *testing.T) {
	s := inccache.Stats{Lookups: 10, Hits: 9}
	if got := s.HitRate(); got != 0.9 {
		t.Fatalf("HitRate = %v, want 0.9", got)
	}
	if (inccache.Stats{}).HitRate() != 0 {
		t.Fatalf("empty HitRate should be 0")
	}
}
