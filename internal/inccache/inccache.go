// Package inccache is the incremental re-profiling cache: a
// content-addressed store of recorded call extents that lets a profiling
// run skip the execution of functions whose IR (transitively) has not
// changed since a previous run, splicing their cached HCPA sub-profiles
// into the live dictionary instead. The output is byte-identical to a full
// re-run — the cache is a pure execution shortcut, never an approximation.
//
// Soundness rests on three pillars:
//
//  1. Only *sealed* functions are cached (see funcFact): no global state,
//     no RNG, no output, scalar arguments. Their extent is a pure function
//     of the argument values.
//  2. A recorded extent is keyed by the function's transitive canonical-IR
//     hash, the region-stack depth at entry, and the exact argument bit
//     patterns. Recording is always sound: at levels at or above the entry
//     depth every external vector reads zero, so the recorded dictionary
//     subtree never depends on when the arguments became available.
//  3. *Replaying* a record additionally requires the arguments to be timely
//     at the call site (kremlib.ArgsTimely): then every time the extent
//     would have produced at a caller level is exactly the control time
//     plus a recorded constant, and kremlib.ApplySkippedCall reproduces the
//     caller-visible effects without executing a single callee instruction.
//
// What a record stores is a dictionary *slice*: the entries the extent
// interned, in first-touch order, with children remapped to slice-local
// indices and static regions named by (function, local region index) so the
// slice survives region-ID renumbering when unrelated code is edited.
// Replaying interns the slice in order — a valid topological order, since
// any entry touched in the extent had its children interned earlier in the
// same extent — which reproduces the exact dictionary the full run would
// have built, including intern order and raw-record counts.
package inccache

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"kremlin/internal/ir"
	"kremlin/internal/kremlib"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
	"kremlin/internal/shadow"
)

const (
	// maxRecordsPerKey bounds the distinct (depth, args) contexts kept per
	// function hash, so one polymorphic hot function cannot grow a cache
	// file without bound.
	maxRecordsPerKey = 64
	// maxRecorderDepth bounds concurrently open recordings (nested sealed
	// calls record independently; deeper nesting is recorded on later runs).
	maxRecorderDepth = 8
	// maxSliceEntries aborts recording of extents whose dictionary footprint
	// is too large to be worth caching.
	maxSliceEntries = 1 << 16
	// maxArgs bounds the argument vector of cacheable calls.
	maxArgs = 64
)

// SliceEntry is one dictionary entry of a recorded extent. Children
// reference earlier slice entries by index, and the static region is named
// portably as (function, local region index): the i-th region, in static
// region-tree ID order, belonging to that function.
type SliceEntry struct {
	FuncIdx  int32 // index into Record.Funcs; 0 names the function being replayed
	Local    int32
	Work, CP uint64
	Children []profile.Child // Child.Char is a slice-local index
}

// Record is one cached call extent.
type Record struct {
	EntryDepth int
	ArgBits    []uint64
	RetBits    uint64
	Work       uint64 // total work of the extent
	Steps      uint64 // interpreter steps of the extent
	RawDelta   uint64 // dynamic region summaries interned during the extent
	PeakHeap   uint64 // peak heap growth above the heap mark at entry
	RetDelta   uint64 // return availability above control time
	MaxDelta   uint64 // extent span above control time (root region CP)
	Funcs      []string
	Slice      []SliceEntry
	RootIdx    int32 // slice index of the extent's root (function-region) entry
}

// Stats counts one session's cache traffic.
type Stats struct {
	Lookups      uint64 `json:"lookups"`
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Untimely     uint64 `json:"untimely"`    // key matched but arguments not timely
	Budget       uint64 `json:"budget"`      // key matched but step/heap budget forbids skipping
	Unsplicable  uint64 `json:"unsplicable"` // record does not resolve against this program
	Recorded     uint64 `json:"recorded"`    // new records captured this run
	SkippedSteps uint64 `json:"skipped_steps"`
	SkippedWork  uint64 `json:"skipped_work"`
	StoreRecords int    `json:"store_records"`
	Corrupt      int    `json:"corrupt_entries"` // cache files rejected and repaired at open
	Evicted      int    `json:"evicted_records"` // records displaced by the size bound
}

// HitRate returns Hits/Lookups, or 0 with no lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// regionLoc names a static region portably: the local-th region, in ID
// order, of function fn.
type regionLoc struct {
	fn    *ir.Func
	local int32
}

// modInfo is the per-module analysis the store memoizes: content facts per
// function plus the two region-ID translation tables.
type modInfo struct {
	facts map[*ir.Func]*funcFact
	// regionOf maps a global static region ID to its portable name.
	regionOf []regionLoc
	// funcRegions maps a function name to its global region IDs in ID order.
	funcRegions map[string][]int32
}

func newModInfo(regs *regions.Program) *modInfo {
	mi := &modInfo{
		facts:       analyze(regs.Module),
		regionOf:    make([]regionLoc, len(regs.Regions)),
		funcRegions: make(map[string][]int32, len(regs.Module.Funcs)),
	}
	for _, r := range regs.Regions {
		if r == nil || r.Func == nil {
			continue
		}
		name := r.Func.Name
		mi.regionOf[r.ID] = regionLoc{fn: r.Func, local: int32(len(mi.funcRegions[name]))}
		mi.funcRegions[name] = append(mi.funcRegions[name], int32(r.ID))
	}
	return mi
}

// Store is the on-disk cache: records grouped by content key, one file per
// key under dir. A Store is safe for concurrent sessions (the serve daemon
// shares one across jobs).
type Store struct {
	dir string

	mu         sync.Mutex
	recs       map[Key][]*Record
	dirty      map[Key]bool
	mods       map[*ir.Module]*modInfo
	corrupt    int
	nRecords   int
	maxRecords int            // 0 = unbounded
	lastUse    map[Key]uint64 // LRU clock value per key
	useClock   uint64
	evicted    int // records displaced by the bound
}

// Open loads (or creates) the cache directory. Unreadable, truncated,
// corrupted, or version-skewed cache files are deleted (counted in Stats
// Corrupt) and treated as misses; Open never fails because of bad cache
// content, only on I/O errors creating the directory itself.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:     dir,
		recs:    make(map[Key][]*Record),
		dirty:   make(map[Key]bool),
		mods:    make(map[*ir.Module]*modInfo),
		lastUse: make(map[Key]uint64),
	}
	if err := s.loadAll(); err != nil {
		return nil, err
	}
	return s, nil
}

// Session prepares a profiling session for one compiled program against the
// store. The module analysis is memoized per module pointer.
func (s *Store) Session(regs *regions.Program) *Session {
	s.mu.Lock()
	mi := s.mods[regs.Module]
	if mi == nil {
		mi = newModInfo(regs)
		s.mods[regs.Module] = mi
	}
	s.mu.Unlock()
	return &Session{store: s, info: mi}
}

// SessionScoped is Session with keyspace isolation: every content key this
// session reads or writes is mixed with a salt derived from scope, so
// records recorded under one scope are invisible to every other. The empty
// scope is the unsalted global keyspace (identical to Session). The serve
// daemon passes the tenant name, giving each tenant a private keyspace
// inside one shared bounded store — one tenant's traffic can evict another's
// records (the size bound is global) but can never replay them.
func (s *Store) SessionScoped(regs *regions.Program, scope string) *Session {
	sess := s.Session(regs)
	if scope != "" {
		sum := sha256.Sum256([]byte("kremlin-inccache-scope\x00" + scope))
		copy(sess.salt[:], sum[:len(sess.salt)])
		sess.scoped = true
		sess.scopedKeys = make(map[*funcFact]Key)
	}
	return sess
}

// SetMaxRecords bounds the store to n records (0 = unbounded). When an
// insert pushes the store over the bound, whole least-recently-used keys
// are evicted — memory, dirty state, and their on-disk files — until the
// bound holds again. Eviction is counted in Stats.Evicted.
func (s *Store) SetMaxRecords(n int) {
	s.mu.Lock()
	s.maxRecords = n
	victims := s.enforceBoundLocked(Key{})
	s.mu.Unlock()
	s.removeFiles(victims)
}

// EvictedCount returns how many records the size bound has displaced.
func (s *Store) EvictedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// enforceBoundLocked evicts least-recently-used keys until the record bound
// holds, sparing protect (the key just touched). Returns the evicted keys;
// the caller removes their files outside the lock.
func (s *Store) enforceBoundLocked(protect Key) []Key {
	if s.maxRecords <= 0 || s.nRecords <= s.maxRecords {
		return nil
	}
	type cand struct {
		key Key
		use uint64
	}
	cands := make([]cand, 0, len(s.recs))
	for k := range s.recs {
		if k != protect {
			cands = append(cands, cand{k, s.lastUse[k]})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].use < cands[j].use })
	var out []Key
	for _, c := range cands {
		if s.nRecords <= s.maxRecords {
			break
		}
		n := len(s.recs[c.key])
		delete(s.recs, c.key)
		delete(s.dirty, c.key)
		delete(s.lastUse, c.key)
		s.nRecords -= n
		s.evicted += n
		out = append(out, c.key)
	}
	return out
}

func (s *Store) removeFiles(keys []Key) {
	for _, k := range keys {
		_ = os.Remove(filepath.Join(s.dir, k.String()+".kric"))
	}
}

func (s *Store) touchLocked(key Key) {
	s.useClock++
	s.lastUse[key] = s.useClock
}

func (s *Store) lookup(key Key, depth int, args []uint64) *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.recs[key] {
		if r.EntryDepth == depth && argsEqual(r.ArgBits, args) {
			s.touchLocked(key)
			return r
		}
	}
	return nil
}

// canInsert reports whether a recording for this context is worth starting:
// no record for it exists yet and the per-key cap has room.
func (s *Store) canInsert(key Key, depth int, args []uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	lst := s.recs[key]
	if len(lst) >= maxRecordsPerKey {
		return false
	}
	for _, r := range lst {
		if r.EntryDepth == depth && argsEqual(r.ArgBits, args) {
			return false
		}
	}
	return true
}

func (s *Store) insert(key Key, rec *Record) bool {
	s.mu.Lock()
	lst := s.recs[key]
	if len(lst) >= maxRecordsPerKey {
		s.mu.Unlock()
		return false
	}
	for _, r := range lst {
		if r.EntryDepth == rec.EntryDepth && argsEqual(r.ArgBits, rec.ArgBits) {
			s.mu.Unlock()
			return false
		}
	}
	s.recs[key] = append(lst, rec)
	s.dirty[key] = true
	s.nRecords++
	s.touchLocked(key)
	victims := s.enforceBoundLocked(key)
	s.mu.Unlock()
	s.removeFiles(victims)
	return true
}

func argsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Keys returns every function's transitive content key by name — the
// debug/test surface behind -cache-stats.
func (s *Store) Keys(regs *regions.Program) map[string]string {
	s.mu.Lock()
	mi := s.mods[regs.Module]
	if mi == nil {
		mi = newModInfo(regs)
		s.mods[regs.Module] = mi
	}
	s.mu.Unlock()
	out := make(map[string]string, len(mi.facts))
	for f, fact := range mi.facts {
		out[f.Name] = fact.key.String()
	}
	return out
}

// SealedFuncs returns the names of the functions whose call extents the
// cache may record and replay, sorted.
func (s *Store) SealedFuncs(regs *regions.Program) []string {
	s.mu.Lock()
	mi := s.mods[regs.Module]
	if mi == nil {
		mi = newModInfo(regs)
		s.mods[regs.Module] = mi
	}
	s.mu.Unlock()
	var out []string
	for f, fact := range mi.facts {
		if fact.sealed {
			out = append(out, f.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Records returns the total record count (test/stats surface).
func (s *Store) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nRecords
}

// CorruptCount returns how many cache files were rejected and repaired.
func (s *Store) CorruptCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// Hit is what the engine needs to account for a skipped call: the steps and
// peak heap growth the extent would have consumed, and the return value.
type Hit struct {
	Steps    uint64
	PeakHeap uint64
	RetBits  uint64
}

// Session is the per-run face of the cache: it binds to one runtime and
// profile, observes interned characters to record fresh extents, and
// replays stored extents at eligible call sites. Not safe for concurrent
// use (one engine run drives it).
type Session struct {
	store *Store
	info  *modInfo

	prof *profile.Profile
	rt   *kremlib.Runtime

	recorders []*Recording
	stats     Stats
	disabled  bool

	// Scoped sessions (SessionScoped) mix every content key with a salt
	// derived from the scope name, isolating keyspaces per tenant. Mixing
	// by XOR is sound: crafting a key that collides across scopes requires
	// a preimage of the truncated SHA-256 content hash.
	scoped     bool
	salt       Key
	scopedKeys map[*funcFact]Key

	idScratch   []int32
	charScratch []int32
	runScratch  []profile.Child
}

// keyFor returns fact's content key in this session's keyspace.
func (s *Session) keyFor(fact *funcFact) Key {
	if !s.scoped {
		return fact.key
	}
	if k, ok := s.scopedKeys[fact]; ok {
		return k
	}
	k := fact.key
	for i := range k {
		k[i] ^= s.salt[i]
	}
	s.scopedKeys[fact] = k
	return k
}

// Recording tracks one in-flight extent recording.
type Recording struct {
	fn         *ir.Func
	key        Key
	argBits    []uint64
	entryDepth int
	startWork  uint64
	startSteps uint64
	startRaw   uint64
	chars      []int32
	seen       map[int32]int32
	lastChar   int32
	aborted    bool
}

// Bind attaches the session to the run's profile and runtime and installs
// the intern hook. Call once, after the runtime is created and before
// execution starts.
func (s *Session) Bind(prof *profile.Profile, rt *kremlib.Runtime) {
	s.prof = prof
	s.rt = rt
	rt.SetInternHook(s.noteIntern)
}

// Cacheable reports whether calls to f are candidates for skip/record.
func (s *Session) Cacheable(f *ir.Func) bool {
	if s.disabled || s.rt == nil {
		return false
	}
	fact := s.info.facts[f]
	return fact != nil && fact.sealed
}

// Stats returns the session counters plus store-level totals.
func (s *Session) Stats() Stats {
	st := s.stats
	s.store.mu.Lock()
	st.StoreRecords = s.store.nRecords
	st.Corrupt = s.store.corrupt
	st.Evicted = s.store.evicted
	s.store.mu.Unlock()
	return st
}

func (s *Session) noteIntern(c int32) {
	for _, r := range s.recorders {
		r.lastChar = c
		if r.aborted {
			continue
		}
		if _, ok := r.seen[c]; !ok {
			if len(r.chars) >= maxSliceEntries {
				r.aborted = true
				continue
			}
			r.seen[c] = int32(len(r.chars))
			r.chars = append(r.chars, c)
		}
	}
}

// TrySkip attempts to replay a cached extent for a call to f at the current
// point of execution. On success the caller-visible effects have been fully
// applied (dictionary splice, region watermarks, result register, parent
// child run) and the engine must only account the returned Hit; on failure
// nothing was mutated and the call must execute normally. steps/limit and
// heapTop/heapCap are the engine budgets: a record whose replay would cross
// either budget is refused, so budget failures reproduce at the exact same
// instruction as an uncached run.
func (s *Session) TrySkip(f *ir.Func, call *ir.Instr, fs *kremlib.FrameState, argBits []uint64, argVecs []shadow.Vec, steps, limit, heapTop, heapCap uint64) (Hit, bool) {
	if s.disabled || s.rt == nil {
		return Hit{}, false
	}
	depth := s.rt.Depth()
	if depth >= kremlib.DefaultMaxDepth {
		return Hit{}, false
	}
	fact := s.info.facts[f]
	if fact == nil || !fact.sealed {
		return Hit{}, false
	}
	s.stats.Lookups++
	rec := s.store.lookup(s.keyFor(fact), depth, argBits)
	if rec == nil {
		s.stats.Misses++
		return Hit{}, false
	}
	if limit > 0 && rec.Steps > limit-steps {
		s.stats.Budget++
		s.stats.Misses++
		return Hit{}, false
	}
	if heapCap > 0 && rec.PeakHeap > heapCap-heapTop {
		s.stats.Budget++
		s.stats.Misses++
		return Hit{}, false
	}
	if !s.rt.ArgsTimely(fs, argVecs) {
		s.stats.Untimely++
		s.stats.Misses++
		return Hit{}, false
	}
	rootChar, ok := s.splice(f, rec)
	if !ok {
		s.stats.Unsplicable++
		s.stats.Misses++
		return Hit{}, false
	}
	s.rt.ApplySkippedCall(fs, call, rec.Work, rec.RetDelta, rec.MaxDelta, rootChar)
	s.stats.Hits++
	s.stats.SkippedSteps += rec.Steps
	s.stats.SkippedWork += rec.Work
	return Hit{Steps: rec.Steps, PeakHeap: rec.PeakHeap, RetBits: rec.RetBits}, true
}

// splice replays rec's dictionary slice into the live dictionary, in the
// recorded first-touch order, and returns the root character. Resolution
// happens before any mutation: if the record does not fit this program
// (renamed callee, fewer regions — a stale record surviving a hash
// collision or a half-edited module), the splice is refused and the call
// executes normally.
func (s *Session) splice(root *ir.Func, rec *Record) (int32, bool) {
	ids := s.idScratch[:0]
	for _, e := range rec.Slice {
		var name string
		if e.FuncIdx == 0 {
			name = root.Name
		} else {
			if int(e.FuncIdx) >= len(rec.Funcs) {
				return 0, false
			}
			name = rec.Funcs[e.FuncIdx]
		}
		lst := s.info.funcRegions[name]
		if int(e.Local) >= len(lst) {
			return 0, false
		}
		ids = append(ids, lst[e.Local])
	}
	s.idScratch = ids

	dict := s.prof.Dict
	chars := s.charScratch[:0]
	for i, e := range rec.Slice {
		runs := s.runScratch[:0]
		for _, c := range e.Children {
			runs = append(runs, profile.Child{Char: chars[c.Char], Count: c.Count})
		}
		s.runScratch = runs
		ch := dict.InternRuns(ids[i], e.Work, e.CP, runs)
		chars = append(chars, ch)
		s.noteIntern(ch)
	}
	s.charScratch = chars
	// Replaying interned len(Slice) summaries; the extent produced RawDelta.
	dict.RawCount += rec.RawDelta - uint64(len(rec.Slice))
	return chars[rec.RootIdx], true
}

// BeginRecord opens a recording of the imminent call's extent, or returns
// nil if the context is not worth recording (already cached, caps reached,
// outside the tracked depth window). Call after the call instruction's own
// Step and before the callee executes.
func (s *Session) BeginRecord(f *ir.Func, argBits []uint64, steps uint64) *Recording {
	if s.disabled || s.rt == nil || len(s.recorders) >= maxRecorderDepth {
		return nil
	}
	if len(argBits) > maxArgs {
		return nil
	}
	depth := s.rt.Depth()
	if depth >= kremlib.DefaultMaxDepth {
		return nil
	}
	fact := s.info.facts[f]
	if fact == nil || !fact.sealed {
		return nil
	}
	key := s.keyFor(fact)
	if !s.store.canInsert(key, depth, argBits) {
		return nil
	}
	r := &Recording{
		fn:         f,
		key:        key,
		argBits:    append([]uint64(nil), argBits...),
		entryDepth: depth,
		startWork:  s.rt.TotalWork(),
		startSteps: steps,
		startRaw:   s.prof.Dict.RawCount,
		seen:       make(map[int32]int32),
		lastChar:   -1,
	}
	s.recorders = append(s.recorders, r)
	return r
}

// EndRecord closes a recording opened by BeginRecord after the call
// returned successfully, assembling and storing the Record. retVec is the
// callee's return vector (kremlib.FrameState.RetVec), peakHeap the extent's
// peak heap growth above the entry heap mark.
func (s *Session) EndRecord(r *Recording, steps, retBits uint64, retVec shadow.Vec, peakHeap uint64) {
	n := len(s.recorders)
	if n == 0 || s.recorders[n-1] != r {
		// Engine bug: mispaired Begin/End. Disable rather than record garbage.
		s.disabled = true
		s.recorders = s.recorders[:0]
		return
	}
	s.recorders = s.recorders[:n-1]
	if r.aborted || r.lastChar < 0 {
		return
	}
	dict := s.prof.Dict
	rootIdx, ok := r.seen[r.lastChar]
	if !ok {
		return
	}
	var retDelta uint64
	if r.entryDepth < len(retVec) {
		retDelta = retVec[r.entryDepth].Time
	}
	rec := &Record{
		EntryDepth: r.entryDepth,
		ArgBits:    r.argBits,
		RetBits:    retBits,
		Work:       s.rt.TotalWork() - r.startWork,
		Steps:      steps - r.startSteps,
		RawDelta:   dict.RawCount - r.startRaw,
		PeakHeap:   peakHeap,
		RetDelta:   retDelta,
		MaxDelta:   dict.Entries[r.lastChar].CP,
		Funcs:      []string{""},
		Slice:      make([]SliceEntry, 0, len(r.chars)),
		RootIdx:    rootIdx,
	}
	fidx := map[string]int32{r.fn.Name: 0}
	for i, c := range r.chars {
		e := &dict.Entries[c]
		if int(e.StaticID) >= len(s.info.regionOf) {
			return
		}
		loc := s.info.regionOf[e.StaticID]
		if loc.fn == nil {
			return
		}
		fi, ok := fidx[loc.fn.Name]
		if !ok {
			fi = int32(len(rec.Funcs))
			rec.Funcs = append(rec.Funcs, loc.fn.Name)
			fidx[loc.fn.Name] = fi
		}
		children := make([]profile.Child, len(e.Children))
		for j, ch := range e.Children {
			si, ok := r.seen[ch.Char]
			if !ok || si >= int32(i) {
				// A child interned outside the extent: cannot happen for a
				// well-formed extent; refuse rather than store a bad slice.
				return
			}
			children[j] = profile.Child{Char: si, Count: ch.Count}
		}
		rec.Slice = append(rec.Slice, SliceEntry{FuncIdx: fi, Local: loc.local, Work: e.Work, CP: e.CP, Children: children})
	}
	if s.store.insert(r.key, rec) {
		s.stats.Recorded++
	}
}
