// On-disk layout of the incremental cache.
//
// The cache directory holds one file per content key, named
// <32 hex digits>.kric. Each file is:
//
//	"KRIC1\n"                magic
//	uvarint version          (currently 1)
//	uvarint record count
//	records                  (all integers uvarint, strings length-prefixed)
//	8 bytes LE               FNV-64a of everything before the trailer
//
// Failure semantics: any deviation — bad magic, unknown version, truncated
// payload, checksum mismatch, or a structurally invalid record (forward
// child reference, out-of-range index, absurd size) — causes the whole file
// to be deleted and counted as corrupt. Corruption is repaired, never
// propagated: a damaged entry degrades to a cache miss and the next
// successful run rewrites the file. Parsing is fully bounds-checked and
// never panics on arbitrary bytes.
package inccache

import (
	"encoding/binary"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"

	"kremlin/internal/profile"
)

const (
	diskMagic   = "KRIC1\n"
	diskVersion = 1

	maxFuncsPerRecord = 1 << 12
	maxNameLen        = 1 << 12
	maxChildrenPerEnt = 1 << 16
)

// Dir returns the cache directory path.
func (s *Store) Dir() string { return s.dir }

func (s *Store) loadAll() error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".kric") {
			continue
		}
		path := filepath.Join(s.dir, name)
		key, ok := parseKey(strings.TrimSuffix(name, ".kric"))
		if !ok {
			s.discard(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			s.discard(path)
			continue
		}
		recs, ok := unmarshalRecords(data)
		if !ok {
			s.discard(path)
			continue
		}
		s.recs[key] = recs
		s.nRecords += len(recs)
	}
	return nil
}

// discard removes a cache file that failed validation and counts it.
func (s *Store) discard(path string) {
	_ = os.Remove(path)
	s.corrupt++
}

// Save writes every dirty key's records back to disk atomically
// (temp file + rename). The first I/O error is returned, but all dirty
// keys are attempted; the cache stays best-effort.
func (s *Store) Save() error {
	s.mu.Lock()
	type pending struct {
		key  Key
		recs []*Record
	}
	var work []pending
	for k := range s.dirty {
		work = append(work, pending{key: k, recs: s.recs[k]})
	}
	s.dirty = make(map[Key]bool)
	s.mu.Unlock()

	var firstErr error
	for _, p := range work {
		data := marshalRecords(p.recs)
		path := filepath.Join(s.dir, p.key.String()+".kric")
		tmp := path + ".tmp"
		err := os.WriteFile(tmp, data, 0o644)
		if err == nil {
			err = os.Rename(tmp, path)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func marshalRecords(recs []*Record) []byte {
	c := &canon{buf: make([]byte, 0, 256)}
	c.buf = append(c.buf, diskMagic...)
	c.u(diskVersion)
	c.u(uint64(len(recs)))
	for _, r := range recs {
		c.u(uint64(r.EntryDepth))
		c.u(uint64(len(r.ArgBits)))
		for _, a := range r.ArgBits {
			c.u(a)
		}
		c.u(r.RetBits)
		c.u(r.Work)
		c.u(r.Steps)
		c.u(r.RawDelta)
		c.u(r.PeakHeap)
		c.u(r.RetDelta)
		c.u(r.MaxDelta)
		c.u(uint64(len(r.Funcs)))
		for _, f := range r.Funcs {
			c.s(f)
		}
		c.u(uint64(len(r.Slice)))
		for _, e := range r.Slice {
			c.u(uint64(e.FuncIdx))
			c.u(uint64(e.Local))
			c.u(e.Work)
			c.u(e.CP)
			c.u(uint64(len(e.Children)))
			for _, ch := range e.Children {
				c.u(uint64(ch.Char))
				c.u(uint64(ch.Count))
			}
		}
		c.u(uint64(r.RootIdx))
	}
	h := fnv.New64a()
	_, _ = h.Write(c.buf)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	return append(c.buf, sum[:]...)
}

// reader is a bounds-checked varint cursor; any overrun latches err.
type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) u() uint64 {
	if r.err {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.off += n
	return v
}

// n returns a size field, latching err beyond limit.
func (r *reader) n(limit uint64) int {
	v := r.u()
	if v > limit {
		r.err = true
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.n(maxNameLen)
	if r.err || r.off+n > len(r.b) {
		r.err = true
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func unmarshalRecords(data []byte) ([]*Record, bool) {
	if len(data) < len(diskMagic)+8 || string(data[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	_, _ = h.Write(payload)
	if binary.LittleEndian.Uint64(trailer) != h.Sum64() {
		return nil, false
	}
	r := &reader{b: payload, off: len(diskMagic)}
	if r.u() != diskVersion {
		return nil, false
	}
	nrecs := r.n(maxRecordsPerKey)
	recs := make([]*Record, 0, nrecs)
	for i := 0; i < nrecs && !r.err; i++ {
		rec := &Record{}
		rec.EntryDepth = r.n(1 << 10)
		nargs := r.n(maxArgs)
		rec.ArgBits = make([]uint64, nargs)
		for j := range rec.ArgBits {
			rec.ArgBits[j] = r.u()
		}
		rec.RetBits = r.u()
		rec.Work = r.u()
		rec.Steps = r.u()
		rec.RawDelta = r.u()
		rec.PeakHeap = r.u()
		rec.RetDelta = r.u()
		rec.MaxDelta = r.u()
		nf := r.n(maxFuncsPerRecord)
		rec.Funcs = make([]string, nf)
		for j := range rec.Funcs {
			rec.Funcs[j] = r.str()
		}
		if nf == 0 || (len(rec.Funcs) > 0 && rec.Funcs[0] != "") {
			return nil, false
		}
		ns := r.n(maxSliceEntries)
		rec.Slice = make([]SliceEntry, 0, ns)
		for j := 0; j < ns && !r.err; j++ {
			var e SliceEntry
			e.FuncIdx = int32(r.n(uint64(nf) - 1))
			e.Local = int32(r.n(1 << 30))
			e.Work = r.u()
			e.CP = r.u()
			nc := r.n(maxChildrenPerEnt)
			e.Children = make([]profile.Child, 0, nc)
			for k := 0; k < nc && !r.err; k++ {
				ch := r.u()
				cnt := r.u()
				if int(ch) >= j {
					// Forward (or self) child reference: structurally invalid.
					return nil, false
				}
				e.Children = append(e.Children, profile.Child{Char: int32(ch), Count: int64(cnt)})
			}
			rec.Slice = append(rec.Slice, e)
		}
		rec.RootIdx = int32(r.n(uint64(ns)))
		if !r.err && (ns == 0 || int(rec.RootIdx) >= ns) {
			return nil, false
		}
		recs = append(recs, rec)
	}
	if r.err || r.off != len(payload) {
		return nil, false
	}
	return recs, true
}
