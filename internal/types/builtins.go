package types

import (
	"kremlin/internal/ast"
)

// numeric1 builds a checker for a one-argument numeric builtin returning ret
// (or the argument's own type when ret is Invalid).
func numeric1(name string, ret ast.BasicKind) *Builtin {
	return &Builtin{Name: name, Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 1 {
			c.errorf(call, "%s takes 1 argument, got %d", name, len(args))
			return Scalar(ast.Float)
		}
		if !args[0].IsNumeric() {
			c.errorf(call, "%s requires a numeric argument, got %s", name, args[0])
		}
		if ret == ast.Invalid {
			return args[0]
		}
		return Scalar(ret)
	}}
}

// numeric2 builds a checker for a two-argument float builtin.
func numeric2(name string) *Builtin {
	return &Builtin{Name: name, Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 2 {
			c.errorf(call, "%s takes 2 arguments, got %d", name, len(args))
			return Scalar(ast.Float)
		}
		for _, a := range args {
			if !a.IsNumeric() {
				c.errorf(call, "%s requires numeric arguments, got %s", name, a)
			}
		}
		return Scalar(ast.Float)
	}}
}

// builtins is the table of Kr built-in functions.
var builtins = map[string]*Builtin{
	"sqrt":  numeric1("sqrt", ast.Float),
	"fabs":  numeric1("fabs", ast.Float),
	"floor": numeric1("floor", ast.Float),
	"exp":   numeric1("exp", ast.Float),
	"log":   numeric1("log", ast.Float),
	"sin":   numeric1("sin", ast.Float),
	"cos":   numeric1("cos", ast.Float),
	"pow":   numeric2("pow"),
	"abs": {Name: "abs", Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 1 || args[0] != Scalar(ast.Int) {
			c.errorf(call, "abs takes one int argument")
		}
		return Scalar(ast.Int)
	}},
	"min": minmax("min"),
	"max": minmax("max"),
	"int": {Name: "int", Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 1 || !args[0].IsNumeric() {
			c.errorf(call, "int() takes one numeric argument")
		}
		return Scalar(ast.Int)
	}},
	"float": {Name: "float", Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 1 || !args[0].IsNumeric() {
			c.errorf(call, "float() takes one numeric argument")
		}
		return Scalar(ast.Float)
	}},
	"rand": {Name: "rand", Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 0 {
			c.errorf(call, "rand takes no arguments")
		}
		return Scalar(ast.Int)
	}},
	"frand": {Name: "frand", Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 0 {
			c.errorf(call, "frand takes no arguments")
		}
		return Scalar(ast.Float)
	}},
	"srand": {Name: "srand", Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 1 || args[0] != Scalar(ast.Int) {
			c.errorf(call, "srand takes one int argument")
		}
		return Scalar(ast.Void)
	}},
	"dim": {Name: "dim", Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 2 || args[0].Dims == 0 || args[1] != Scalar(ast.Int) {
			c.errorf(call, "dim takes an array and an int dimension index")
		}
		return Scalar(ast.Int)
	}},
	"print": {Name: "print", Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		for i, a := range args {
			if a.Elem == ast.Invalid && a.Dims == 0 {
				continue // string literal marker
			}
			if !a.IsScalar() || a.Elem == ast.Void {
				c.errorf(call.Args[i], "print argument must be scalar or string")
			}
		}
		return Scalar(ast.Void)
	}},
}

func minmax(name string) *Builtin {
	return &Builtin{Name: name, Check: func(c *checker, call *ast.CallExpr, args []Type) Type {
		if len(args) != 2 {
			c.errorf(call, "%s takes 2 arguments, got %d", name, len(args))
			return Scalar(ast.Int)
		}
		for _, a := range args {
			if !a.IsNumeric() {
				c.errorf(call, "%s requires numeric arguments, got %s", name, a)
			}
		}
		if args[0].Elem == ast.Float || args[1].Elem == ast.Float {
			return Scalar(ast.Float)
		}
		return Scalar(ast.Int)
	}}
}

// IsBuiltin reports whether name refers to a Kr builtin.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}
