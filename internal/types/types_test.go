package types

import (
	"strings"
	"testing"

	"kremlin/internal/ast"
	"kremlin/internal/parser"
	"kremlin/internal/source"
)

func check(t *testing.T, src string) (*Info, *source.ErrorList) {
	t.Helper()
	errs := &source.ErrorList{}
	file := source.NewFile("t.kr", src)
	tree := parser.Parse(file, errs)
	if errs.HasErrors() {
		t.Fatalf("parse: %v", errs.Err())
	}
	info := Check(tree, file, errs)
	return info, errs
}

func checkOK(t *testing.T, src string) *Info {
	t.Helper()
	info, errs := check(t, src)
	if errs.HasErrors() {
		t.Fatalf("check: %v", errs.Err())
	}
	return info
}

func expectError(t *testing.T, src, fragment string) {
	t.Helper()
	_, errs := check(t, src)
	if !errs.HasErrors() {
		t.Fatalf("expected error containing %q, got none", fragment)
	}
	if !strings.Contains(errs.Error(), fragment) {
		t.Fatalf("errors %q do not contain %q", errs.Error(), fragment)
	}
}

func TestValidProgram(t *testing.T) {
	info := checkOK(t, `
float grid[8][8];
int counter;

float cell(int i, int j) {
	return grid[i][j] * 2.0;
}

void fill(float g[][], int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			g[i][j] = float(i * j);
		}
	}
}

int main() {
	fill(grid, 8);
	counter = counter + 1;
	float v = cell(1, 2);
	bool ok = v > 0.0 && counter != 0;
	if (ok) { print("v", v); }
	return counter;
}
`)
	if len(info.Globals) != 2 {
		t.Errorf("globals = %d", len(info.Globals))
	}
	if info.Funcs["cell"].Ret != ast.Float {
		t.Errorf("cell return type wrong")
	}
	if len(info.Funcs["fill"].Params) != 2 {
		t.Errorf("fill params wrong")
	}
}

func TestImplicitWidening(t *testing.T) {
	checkOK(t, `
int main() {
	float f = 3;     // int -> float in initializer
	f = f + 2;       // mixed arithmetic
	float g = f * 2;
	if (g > 1) { g = 0.0; }
	return 0;
}`)
}

func TestNarrowingRejected(t *testing.T) {
	expectError(t, "int main() { int i = 2.5; return i; }", "cannot use float as int")
}

func TestUndefinedSymbols(t *testing.T) {
	expectError(t, "int main() { return missing; }", "undefined: missing")
	expectError(t, "int main() { ghost(); return 0; }", `undefined function "ghost"`)
}

func TestRedeclaration(t *testing.T) {
	expectError(t, "int main() { int x = 1; int x = 2; return x; }", "redeclared")
	expectError(t, "int f() { return 0; } int f() { return 1; } int main() { return 0; }", `function "f" redeclared`)
}

func TestShadowingAllowedInNestedScope(t *testing.T) {
	checkOK(t, `int main() { int x = 1; if (x > 0) { int x = 2; print(x); } return x; }`)
}

func TestBuiltinShadowRejected(t *testing.T) {
	expectError(t, "float sqrt(float x) { return x; } int main() { return 0; }", "shadows a builtin")
}

func TestConditionMustBeBool(t *testing.T) {
	expectError(t, "int main() { if (1) { } return 0; }", "condition must be bool")
	expectError(t, "int main() { while (2.0) { } return 0; }", "condition must be bool")
}

func TestComparisonsYieldBool(t *testing.T) {
	expectError(t, "int main() { int x = 1 < 2; return x; }", "cannot use bool as int")
	checkOK(t, "int main() { bool b = 1 < 2; bool c = b == true; if (c) {} return 0; }")
}

func TestModuloIntOnly(t *testing.T) {
	checkOK(t, "int main() { int x = 3 % 2; return x; }")
	expectError(t, "int main() { int x = int(5.0 % 2.0); return x; }", "requires int operands")
}

func TestArrayRules(t *testing.T) {
	expectError(t, "int a[3]; int main() { a = 5; return 0; }", "cannot assign")
	expectError(t, "int a[3]; int main() { return a[1][2]; }", "cannot index non-array")
	expectError(t, "int x; int main() { return x[0]; }", "cannot index non-array")
	expectError(t, "int a[3]; int main() { return a[1.5]; }", "array index must be int")
	expectError(t, "int main() { float b[2.5]; return 0; }", "array dimension must be int")
	checkOK(t, "int a[3]; int main() { a[0] = 1; return a[0]; }")
}

func TestVoidRules(t *testing.T) {
	expectError(t, "void x; int main() { return 0; }", "cannot have void type")
	expectError(t, "void f() { return 1; } int main() { return 0; }", "void function f returns a value")
	expectError(t, "int f() { return; } int main() { return 0; }", "missing return value")
}

func TestBreakContinueOutsideLoop(t *testing.T) {
	expectError(t, "int main() { break; return 0; }", "break outside loop")
	expectError(t, "int main() { continue; return 0; }", "continue outside loop")
	checkOK(t, "int main() { for (int i = 0; i < 3; i++) { if (i == 1) { break; } continue; } return 0; }")
}

func TestCallArity(t *testing.T) {
	expectError(t, "int f(int a) { return a; } int main() { return f(1, 2); }", "takes 1 arguments, got 2")
	expectError(t, "int f(int a) { return a; } int main() { return f(); }", "takes 1 arguments, got 0")
}

func TestArgumentTypes(t *testing.T) {
	expectError(t, `
void g(float a[][]) { a[0][0] = 1.0; }
float b[4];
int main() { g(b); return 0; }`, "argument: cannot use float[] as float[][]")
	checkOK(t, `
void g(float x) { print(x); }
int main() { g(3); return 0; }`)
}

func TestMainRequired(t *testing.T) {
	expectError(t, "int f() { return 0; }", "no main function")
	expectError(t, "int main(int x) { return x; }", "main must take no parameters")
}

func TestExprStatementMustBeCall(t *testing.T) {
	expectError(t, "int main() { 1 + 2; return 0; }", "expression statement must be a call")
}

func TestBuiltins(t *testing.T) {
	checkOK(t, `
float a[5];
int main() {
	srand(7);
	int r = rand();
	float f = frand() + sqrt(2.0) + fabs(-1.0) + floor(1.5)
		+ exp(1.0) + log(2.0) + sin(0.5) + cos(0.5) + pow(2.0, 3.0);
	int i = abs(-3) + min(1, 2) + max(3, 4) + dim(a, 0);
	float m = min(1.0, f);
	print("vals", r, f, i, m, true);
	return 0;
}`)
	expectError(t, "int main() { float f = sqrt(1.0, 2.0); return 0; }", "sqrt takes 1 argument")
	expectError(t, "int main() { int x = abs(1.5); return x; }", "abs takes one int argument")
	expectError(t, "int main() { int d = dim(5, 0); return d; }", "dim takes an array")
	expectError(t, "int main() { srand(1.5); return 0; }", "srand takes one int")
	expectError(t, "int main() { rand(3); return 0; }", "rand takes no arguments")
}

func TestStringLiteralOnlyInPrint(t *testing.T) {
	expectError(t, `int main() { int x = "nope"; return x; }`, "string literal only allowed as print argument")
	checkOK(t, `int main() { print("fine", 1); return 0; }`)
}

func TestCompoundAssignRules(t *testing.T) {
	checkOK(t, "int main() { int i = 0; i += 2; i -= 1; i *= 3; i /= 2; return i; }")
	expectError(t, "int main() { bool b = true; b += true; return 0; }", "requires numeric operand")
	expectError(t, "int main() { int i = 4; i /= 2.0; return i; }", "cannot /= int by float")
}

func TestIncDecIntOnly(t *testing.T) {
	expectError(t, "int main() { float f = 0.0; f++; return 0; }", "requires an int lvalue")
	checkOK(t, "int main() { int i = 0; i++; i--; return i; }")
}

func TestSymbolIndices(t *testing.T) {
	info := checkOK(t, `
int g1;
float g2;
int f(int p0, float p1) {
	int l0 = p0;
	return l0;
}
int main() { return f(1, 2.0); }
`)
	if info.Globals[0].Index != 0 || info.Globals[1].Index != 1 {
		t.Error("global indices not dense")
	}
	fs := info.Funcs["f"]
	if len(fs.Locals) != 3 { // p0, p1, l0
		t.Fatalf("locals = %d, want 3", len(fs.Locals))
	}
	for i, sym := range fs.Locals {
		if sym.Index != i {
			t.Errorf("local %s index = %d, want %d", sym.Name, sym.Index, i)
		}
	}
}

func TestTypeString(t *testing.T) {
	if s := (Type{Elem: ast.Float, Dims: 2}).String(); s != "float[][]" {
		t.Errorf("type renders %q", s)
	}
	if !Scalar(ast.Int).IsNumeric() || Scalar(ast.Bool).IsNumeric() {
		t.Error("IsNumeric wrong")
	}
	if (Type{Elem: ast.Int, Dims: 1}).IsNumeric() {
		t.Error("arrays are not numeric")
	}
}

func TestForwardCallArityChecked(t *testing.T) {
	// Regression: calls to functions declared later in the file must be
	// checked against their real signature.
	expectError(t, `
int main() { return later(1, 2); }
int later(int a) { return a; }
`, "takes 1 arguments, got 2")
	checkOK(t, `
int main() { return later(1); }
int later(int a) { return a; }
`)
}
