// Package types implements symbol resolution and type checking for Kr.
package types

import (
	"kremlin/internal/ast"
	"kremlin/internal/source"
	"kremlin/internal/token"
)

// Type describes a Kr value: a scalar when Dims == 0, otherwise an array
// reference with Dims dimensions of Elem scalars.
type Type struct {
	Elem ast.BasicKind
	Dims int
}

// Scalar constructs a scalar type.
func Scalar(k ast.BasicKind) Type { return Type{Elem: k} }

// IsScalar reports whether t is a non-array type.
func (t Type) IsScalar() bool { return t.Dims == 0 }

// IsNumeric reports whether t is a scalar int or float.
func (t Type) IsNumeric() bool {
	return t.Dims == 0 && (t.Elem == ast.Int || t.Elem == ast.Float)
}

func (t Type) String() string {
	s := t.Elem.String()
	for i := 0; i < t.Dims; i++ {
		s += "[]"
	}
	return s
}

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	GlobalVar SymKind = iota
	LocalVar
	Param
)

// Symbol is a declared variable or parameter.
type Symbol struct {
	Name string
	Kind SymKind
	Type Type
	Decl ast.Node // *ast.VarDecl or *ast.ParamDecl
	// Index is the symbol's slot: global index for globals, stable per-function
	// index for locals and params.
	Index int
}

// FuncSym is a declared function.
type FuncSym struct {
	Name    string
	Ret     ast.BasicKind
	Params  []*Symbol
	Locals  []*Symbol // params first, then locals, in declaration order
	Decl    *ast.FuncDecl
	Globals bool // whether the function touches any global (informational)
}

// Builtin describes one of the language's built-in functions.
type Builtin struct {
	Name string
	// Check validates the argument types and returns the call's result type.
	Check func(c *checker, call *ast.CallExpr, args []Type) Type
}

// Info holds the results of type checking a file.
type Info struct {
	Exprs    map[ast.Expr]Type
	Uses     map[*ast.Ident]*Symbol
	Defs     map[ast.Node]*Symbol // *ast.VarDecl / *ast.ParamDecl -> symbol
	Funcs    map[string]*FuncSym
	Globals  []*Symbol
	FuncList []*FuncSym // declaration order
}

// Check resolves and type-checks file, reporting problems to errs.
func Check(file *ast.File, src *source.File, errs *source.ErrorList) *Info {
	c := &checker{
		src:  src,
		errs: errs,
		info: &Info{
			Exprs: make(map[ast.Expr]Type),
			Uses:  make(map[*ast.Ident]*Symbol),
			Defs:  make(map[ast.Node]*Symbol),
			Funcs: make(map[string]*FuncSym),
		},
	}
	c.checkFile(file)
	return c.info
}

type checker struct {
	src    *source.File
	errs   *source.ErrorList
	info   *Info
	scopes []map[string]*Symbol
	fn     *FuncSym
	loop   int // nesting depth of loops, for break/continue checking
}

func (c *checker) errorf(n ast.Node, format string, args ...interface{}) {
	c.errs.Add(c.src.Name, c.src.Pos(n.Pos()), format, args...)
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol, n ast.Node) {
	top := c.scopes[len(c.scopes)-1]
	if _, exists := top[sym.Name]; exists {
		c.errorf(n, "%s redeclared in this scope", sym.Name)
		return
	}
	top[sym.Name] = sym
	c.info.Defs[n] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkFile(file *ast.File) {
	c.push() // global scope
	defer c.pop()
	for _, g := range file.Globals {
		t := Type{Elem: g.Elem, Dims: len(g.Dims)}
		if g.Elem == ast.Void {
			c.errorf(g, "variable %q cannot have void type", g.Name)
			t.Elem = ast.Int
		}
		sym := &Symbol{Name: g.Name, Kind: GlobalVar, Type: t, Decl: g, Index: len(c.info.Globals)}
		c.declare(sym, g)
		c.info.Globals = append(c.info.Globals, sym)
		for _, d := range g.Dims {
			dt := c.expr(d)
			if !(dt.IsScalar() && dt.Elem == ast.Int) {
				c.errorf(d, "array dimension must be int, got %s", dt)
			}
		}
		if g.Init != nil {
			it := c.expr(g.Init)
			c.assignable(g.Init, t, it, "initializer")
		}
	}
	// Pre-declare all functions, signatures included, so call sites can be
	// checked regardless of declaration order.
	for _, f := range file.Funcs {
		if _, dup := c.info.Funcs[f.Name]; dup {
			c.errorf(f, "function %q redeclared", f.Name)
			continue
		}
		if _, isBuiltin := builtins[f.Name]; isBuiltin {
			c.errorf(f, "function %q shadows a builtin", f.Name)
			continue
		}
		fs := &FuncSym{Name: f.Name, Ret: f.Ret, Decl: f}
		for _, p := range f.Params {
			t := Type{Elem: p.Elem, Dims: p.NumDims}
			sym := &Symbol{Name: p.Name, Kind: Param, Type: t, Decl: p, Index: len(fs.Locals)}
			fs.Params = append(fs.Params, sym)
			fs.Locals = append(fs.Locals, sym)
		}
		c.info.Funcs[f.Name] = fs
		c.info.FuncList = append(c.info.FuncList, fs)
	}
	for _, f := range file.Funcs {
		fs := c.info.Funcs[f.Name]
		if fs == nil || fs.Decl != f {
			continue
		}
		c.checkFunc(fs)
	}
	if main, ok := c.info.Funcs["main"]; ok {
		if len(main.Params) != 0 {
			c.errorf(main.Decl, "main must take no parameters")
		}
	} else {
		c.errs.Add(c.src.Name, source.Pos{Line: 1, Col: 1}, "program has no main function")
	}
}

func (c *checker) checkFunc(fs *FuncSym) {
	c.fn = fs
	c.push()
	defer func() { c.pop(); c.fn = nil }()
	for _, sym := range fs.Params {
		c.declare(sym, sym.Decl)
	}
	c.block(fs.Decl.Body)
}

func (c *checker) block(b *ast.Block) {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.block(s)
	case *ast.DeclStmt:
		c.localDecl(s.Decl)
	case *ast.AssignStmt:
		lt := c.lvalue(s.LHS)
		rt := c.expr(s.RHS)
		if s.Op != token.ASSIGN {
			if !lt.IsNumeric() {
				c.errorf(s.LHS, "operator %s requires numeric operand, got %s", s.Op, lt)
			}
			if s.Op == token.QUOASSIGN && lt.Elem == ast.Int && rt.Elem == ast.Float {
				c.errorf(s.RHS, "cannot /= int by float")
			}
		}
		c.assignable(s.RHS, lt, rt, "assignment")
	case *ast.IncDecStmt:
		lt := c.lvalue(s.LHS)
		if !(lt.IsScalar() && lt.Elem == ast.Int) {
			c.errorf(s.LHS, "%s requires an int lvalue, got %s", s.Op, lt)
		}
	case *ast.IfStmt:
		c.condExpr(s.Cond)
		c.block(s.Then)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.ForStmt:
		c.push()
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.condExpr(s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.loop++
		c.block(s.Body)
		c.loop--
		c.pop()
	case *ast.WhileStmt:
		c.condExpr(s.Cond)
		c.loop++
		c.block(s.Body)
		c.loop--
	case *ast.BreakStmt:
		if c.loop == 0 {
			c.errorf(s, "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loop == 0 {
			c.errorf(s, "continue outside loop")
		}
	case *ast.ReturnStmt:
		if s.Result == nil {
			if c.fn.Ret != ast.Void {
				c.errorf(s, "missing return value in %s returning %s", c.fn.Name, c.fn.Ret)
			}
			return
		}
		if c.fn.Ret == ast.Void {
			c.errorf(s, "void function %s returns a value", c.fn.Name)
			c.expr(s.Result)
			return
		}
		rt := c.expr(s.Result)
		c.assignable(s.Result, Scalar(c.fn.Ret), rt, "return")
	case *ast.ExprStmt:
		t := c.expr(s.X)
		if call, ok := s.X.(*ast.CallExpr); !ok {
			c.errorf(s.X, "expression statement must be a call")
		} else {
			_ = call
			_ = t
		}
	default:
		// Unreachable with a well-formed AST; degrade to a diagnostic so a
		// malformed tree (a parser bug, a hand-built AST) fails compilation
		// instead of killing the process.
		c.errorf(s, "internal: unknown statement %T", s)
	}
}

func (c *checker) localDecl(d *ast.VarDecl) {
	t := Type{Elem: d.Elem, Dims: len(d.Dims)}
	for _, dim := range d.Dims {
		dt := c.expr(dim)
		if !(dt.IsScalar() && dt.Elem == ast.Int) {
			c.errorf(dim, "array dimension must be int, got %s", dt)
		}
	}
	if d.Init != nil {
		it := c.expr(d.Init)
		c.assignable(d.Init, t, it, "initializer")
	}
	sym := &Symbol{Name: d.Name, Kind: LocalVar, Type: t, Decl: d, Index: len(c.fn.Locals)}
	c.declare(sym, d)
	c.fn.Locals = append(c.fn.Locals, sym)
}

// assignable checks that a value of type rt can be assigned to lt,
// permitting implicit int→float widening.
func (c *checker) assignable(n ast.Node, lt, rt Type, what string) {
	if lt == rt {
		return
	}
	if lt.IsScalar() && rt.IsScalar() && lt.Elem == ast.Float && rt.Elem == ast.Int {
		return // implicit widening
	}
	c.errorf(n, "%s: cannot use %s as %s", what, rt, lt)
}

func (c *checker) condExpr(e ast.Expr) {
	t := c.expr(e)
	if !(t.IsScalar() && t.Elem == ast.Bool) {
		c.errorf(e, "condition must be bool, got %s", t)
	}
}

func (c *checker) lvalue(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.Ident, *ast.IndexExpr:
		t := c.expr(e)
		if !t.IsScalar() {
			c.errorf(e, "cannot assign to array %s", t)
		}
		return t
	}
	c.errorf(e, "cannot assign to this expression")
	return c.expr(e)
}

func (c *checker) expr(e ast.Expr) Type {
	t := c.exprInner(e)
	c.info.Exprs[e] = t
	return t
}

func (c *checker) exprInner(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return Scalar(ast.Int)
	case *ast.FloatLit:
		return Scalar(ast.Float)
	case *ast.BoolLit:
		return Scalar(ast.Bool)
	case *ast.StringLit:
		c.errorf(e, "string literal only allowed as print argument")
		return Scalar(ast.Int)
	case *ast.Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errorf(e, "undefined: %s", e.Name)
			return Scalar(ast.Int)
		}
		c.info.Uses[e] = sym
		return sym.Type
	case *ast.IndexExpr:
		xt := c.expr(e.X)
		it := c.expr(e.Index)
		if !(it.IsScalar() && it.Elem == ast.Int) {
			c.errorf(e.Index, "array index must be int, got %s", it)
		}
		if xt.Dims == 0 {
			c.errorf(e, "cannot index non-array %s", xt)
			return Scalar(xt.Elem)
		}
		return Type{Elem: xt.Elem, Dims: xt.Dims - 1}
	case *ast.CallExpr:
		return c.call(e)
	case *ast.BinaryExpr:
		return c.binary(e)
	case *ast.UnaryExpr:
		xt := c.expr(e.X)
		switch e.Op {
		case token.SUB:
			if !xt.IsNumeric() {
				c.errorf(e, "unary - requires numeric operand, got %s", xt)
				return Scalar(ast.Int)
			}
			return xt
		case token.NOT:
			if !(xt.IsScalar() && xt.Elem == ast.Bool) {
				c.errorf(e, "! requires bool operand, got %s", xt)
			}
			return Scalar(ast.Bool)
		}
	}
	// See the unknown-statement case: diagnose, don't die.
	c.errorf(e, "internal: unknown expression %T", e)
	return Scalar(ast.Int)
}

func (c *checker) binary(e *ast.BinaryExpr) Type {
	xt := c.expr(e.X)
	yt := c.expr(e.Y)
	switch e.Op {
	case token.LAND, token.LOR:
		for _, p := range []struct {
			t Type
			n ast.Expr
		}{{xt, e.X}, {yt, e.Y}} {
			if !(p.t.IsScalar() && p.t.Elem == ast.Bool) {
				c.errorf(p.n, "%s requires bool operands, got %s", e.Op, p.t)
			}
		}
		return Scalar(ast.Bool)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		if !xt.IsNumeric() || !yt.IsNumeric() {
			// Allow bool == bool.
			if (e.Op == token.EQL || e.Op == token.NEQ) && xt == Scalar(ast.Bool) && yt == Scalar(ast.Bool) {
				return Scalar(ast.Bool)
			}
			c.errorf(e, "cannot compare %s and %s", xt, yt)
		}
		return Scalar(ast.Bool)
	case token.ADD, token.SUB, token.MUL, token.QUO:
		if !xt.IsNumeric() || !yt.IsNumeric() {
			c.errorf(e, "operator %s requires numeric operands, got %s and %s", e.Op, xt, yt)
			return Scalar(ast.Int)
		}
		if xt.Elem == ast.Float || yt.Elem == ast.Float {
			return Scalar(ast.Float)
		}
		return Scalar(ast.Int)
	case token.REM:
		if xt != Scalar(ast.Int) || yt != Scalar(ast.Int) {
			c.errorf(e, "operator %% requires int operands, got %s and %s", xt, yt)
		}
		return Scalar(ast.Int)
	}
	c.errorf(e, "internal: unknown binary operator %s", e.Op)
	return Scalar(ast.Int)
}

func (c *checker) call(e *ast.CallExpr) Type {
	if b, ok := builtins[e.Name]; ok {
		args := make([]Type, len(e.Args))
		for i, a := range e.Args {
			if _, isStr := a.(*ast.StringLit); isStr && e.Name == "print" {
				args[i] = Type{Elem: ast.Invalid} // marker: string
				continue
			}
			args[i] = c.expr(a)
		}
		return b.Check(c, e, args)
	}
	fs, ok := c.info.Funcs[e.Name]
	if !ok {
		c.errorf(e, "undefined function %q", e.Name)
		for _, a := range e.Args {
			c.expr(a)
		}
		return Scalar(ast.Int)
	}
	if len(e.Args) != len(fs.Params) {
		c.errorf(e, "%s takes %d arguments, got %d", e.Name, len(fs.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.expr(a)
		if i < len(fs.Params) {
			c.assignable(a, fs.Params[i].Type, at, "argument")
		}
	}
	return Scalar(fs.Ret)
}
