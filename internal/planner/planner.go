// Package planner implements Kremlin's parallelism planner (§5): it
// combines the HCPA profile (self-parallelism, work coverage) with
// Amdahl's law and target-system constraints — a planner "personality" —
// to produce an ordered list of regions worth parallelizing.
//
// The OpenMP personality uses the paper's bottom-up dynamic-programming
// algorithm: a region is selected only if its own expected benefit exceeds
// the combined benefit of the best plans of its descendants, which
// enforces OpenMP's no-nested-parallelism constraint (at most one selected
// region on any root-to-leaf path) while avoiding the greedy trap observed
// on ft and lu.
package planner

import (
	"fmt"
	"sort"
	"strings"

	"kremlin/internal/hcpa"
	"kremlin/internal/regions"
)

// Mode selects the planning algorithm.
type Mode int

// Planner modes. ModeCoverage and ModeCoverageSP are the Figure-9
// baselines ("work" and "work+self-parallelism" planners).
const (
	ModeDP Mode = iota
	ModeNested
	ModeCoverage
	ModeCoverageSP
)

// Personality captures the target-system constraints of a planner (§5.3):
// synchronization cost, loop type, and region granularity, expressed as
// architecture-independent thresholds.
type Personality struct {
	Name string
	Mode Mode
	// MinSelfP is the minimum self-parallelism worth exploiting; it
	// indirectly accounts for scheduler overhead and migration cost.
	MinSelfP float64
	// MinSpeedupDOALL / MinSpeedupDOACROSS are the minimum ideal
	// whole-program speedups (as fractions: 0.001 = 0.1%) a region must
	// promise. DOACROSS regions are synchronization-intense and need more.
	MinSpeedupDOALL    float64
	MinSpeedupDOACROSS float64
	// MinReductionWork is the minimum per-instance work for a region
	// containing a reduction (OpenMP reductions have significant overhead).
	MinReductionWork uint64
	// MinCoverage is the work-coverage floor used by the baseline modes.
	MinCoverage float64
	// MaxCores caps the exploitable self-parallelism. The paper found the
	// cap hurt plan quality (high SP correlates with real speedup even
	// beyond the core count), so the shipped personalities leave it 0.
	MaxCores int
}

// OpenMP returns the paper's OpenMP planner personality with its published
// thresholds: self-parallelism cutoff 5.0, 0.1% minimum program speedup
// for DOALL regions, 3% for DOACROSS.
func OpenMP() Personality {
	return Personality{
		Name:               "openmp",
		Mode:               ModeDP,
		MinSelfP:           5.0,
		MinSpeedupDOALL:    0.001,
		MinSpeedupDOACROSS: 0.03,
		MinReductionWork:   4000,
	}
}

// Cilk returns the Cilk++ personality (§5.2): nesting-aware, with lower
// self-parallelism and speedup thresholds reflecting Cilk's cheaper
// work-stealing runtime.
func Cilk() Personality {
	return Personality{
		Name:               "cilk",
		Mode:               ModeNested,
		MinSelfP:           2.0,
		MinSpeedupDOALL:    0.0005,
		MinSpeedupDOACROSS: 0.005,
		MinReductionWork:   5000,
	}
}

// WorkOnly returns the gprof-style baseline: plan = every region whose
// work coverage clears a floor (Figure 9, "work").
func WorkOnly() Personality {
	return Personality{Name: "work-only", Mode: ModeCoverage, MinCoverage: 0.005}
}

// WorkSP returns the second Figure-9 baseline: coverage floor plus the
// self-parallelism cutoff ("self parallelism").
func WorkSP() Personality {
	return Personality{Name: "work+sp", Mode: ModeCoverageSP, MinCoverage: 0.005, MinSelfP: 5.0}
}

// Recommendation is one planned region.
type Recommendation struct {
	Stats *hcpa.RegionStats
	// SavedFrac is the fraction of whole-program serial time this region's
	// parallelization saves (Amdahl numerator).
	SavedFrac float64
	// EstSpeedup is the whole-program speedup if only this region is
	// parallelized: 1 / (1 - SavedFrac).
	EstSpeedup float64
	DOALL      bool
	// Safety is the static dependence verdict for the region:
	// "proven" (no loop-carried flow dependence can exist), "refuted"
	// (one definitely exists — the dynamic SP evidence is input-specific),
	// or "unproven" (static analysis could not decide).
	Safety string
}

// Label returns the region's stable label.
func (r Recommendation) Label() string { return r.Stats.Region.Label() }

// Hint names the kind of parallelism found and the transformation it
// implies (§6.2: DOALL pragmas, reduction clauses, DOACROSS
// restructuring), guiding the Enabling Transforms the user must perform.
func (r Recommendation) Hint() string {
	st := r.Stats
	switch {
	case st.Region.Kind == regions.FuncRegion:
		if st.HasReduction {
			return "task/reduction"
		}
		return "task"
	case st.DOALL && st.HasReduction:
		return "DOALL+reduction"
	case st.DOALL:
		return "DOALL"
	case st.HasReduction:
		return "reduction"
	default:
		// Parallel but below the iteration count: cross-iteration overlap
		// only — DOACROSS/pipeline/wavefront restructuring required.
		return "DOACROSS"
	}
}

// Plan is an ordered parallelism plan.
type Plan struct {
	Personality Personality
	Recs        []Recommendation
	// EstProgramSpeedup is the ideal speedup with the whole plan applied.
	EstProgramSpeedup float64
	// Considered is the number of executed loop/function regions examined.
	Considered int
}

// LinesOfCode sums the source-line extents of the planned regions — the
// alternative programmer-effort proxy the paper's footnote 2 discusses
// (region count remained their preferred, if imperfect, metric).
func (p *Plan) LinesOfCode() int {
	n := 0
	for _, r := range p.Recs {
		reg := r.Stats.Region
		n += reg.EndLine - reg.StartLine + 1
	}
	return n
}

// Labels returns the plan's region labels in order.
func (p *Plan) Labels() []string {
	out := make([]string, len(p.Recs))
	for i, r := range p.Recs {
		out[i] = r.Label()
	}
	return out
}

// Has reports whether the plan contains the region with the given label.
func (p *Plan) Has(label string) bool {
	for _, r := range p.Recs {
		if r.Label() == label {
			return true
		}
	}
	return false
}

// config carries Make options.
type config struct {
	exclude     map[string]bool
	requireSafe bool
}

// Option customizes planning.
type Option func(*config)

// Exclude removes regions (by label) from consideration — the paper's
// replanning loop for regions the user is unable or unwilling to
// parallelize.
func Exclude(labels ...string) Option {
	return func(c *config) {
		if c.exclude == nil {
			c.exclude = make(map[string]bool)
		}
		for _, l := range labels {
			c.exclude[l] = true
		}
	}
}

// RequireSafe demotes statically refuted regions out of the plan: a region
// the dependence analyzer proved to carry a loop-carried flow dependence is
// never recommended, however parallel it looked on the profiled input.
func RequireSafe() Option {
	return func(c *config) { c.requireSafe = true }
}

// Make produces a plan for the profile summary under the personality.
func Make(sum *hcpa.Summary, pers Personality, opts ...Option) *Plan {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	pl := &planning{sum: sum, pers: pers, cfg: cfg}
	return pl.run()
}

type planning struct {
	sum  *hcpa.Summary
	pers Personality
	cfg  config

	memo    map[int]float64
	visit   map[int]bool
	callers map[int]int // function region ID -> distinct caller count
}

func (pl *planning) run() *Plan {
	plan := &Plan{Personality: pl.pers}
	for _, st := range pl.sum.Executed {
		if selectableKind(st.Region) {
			plan.Considered++
		}
	}

	var chosen []*hcpa.RegionStats
	switch pl.pers.Mode {
	case ModeCoverage:
		for _, st := range pl.sum.Executed {
			if selectableKind(st.Region) && st.Coverage >= pl.pers.MinCoverage && !pl.excluded(st) {
				chosen = append(chosen, st)
			}
		}
	case ModeCoverageSP:
		for _, st := range pl.sum.Executed {
			if selectableKind(st.Region) && st.Coverage >= pl.pers.MinCoverage &&
				st.SelfP >= pl.pers.MinSelfP && !pl.excluded(st) {
				chosen = append(chosen, st)
			}
		}
	case ModeNested:
		for _, st := range pl.sum.Executed {
			if pl.eligible(st) {
				chosen = append(chosen, st)
			}
		}
	default: // ModeDP
		chosen = pl.dynamicProgram()
	}

	seen := map[int]bool{}
	for _, st := range chosen {
		if seen[st.Region.ID] {
			continue
		}
		seen[st.Region.ID] = true
		saved := pl.savedFrac(st)
		plan.Recs = append(plan.Recs, Recommendation{
			Stats:      st,
			SavedFrac:  saved,
			EstSpeedup: speedupFrom(saved),
			DOALL:      st.DOALL,
			Safety:     st.Region.Safety.String(),
		})
	}
	// Order by benefit; break exact ties by region ID so the emitted plan is
	// byte-identical across runs regardless of selection order upstream.
	sort.SliceStable(plan.Recs, func(i, j int) bool {
		if plan.Recs[i].SavedFrac != plan.Recs[j].SavedFrac {
			return plan.Recs[i].SavedFrac > plan.Recs[j].SavedFrac
		}
		return plan.Recs[i].Stats.Region.ID < plan.Recs[j].Stats.Region.ID
	})
	var total float64
	for _, r := range plan.Recs {
		total += r.SavedFrac
	}
	// Saved fractions are additive only for disjoint regions; overlapping
	// baseline plans can push past 1. Clamp to a sane ideal bound.
	if total > 0.99 {
		total = 0.99
	}
	plan.EstProgramSpeedup = speedupFrom(total)
	return plan
}

func selectableKind(r *regions.Region) bool {
	return r.Kind == regions.LoopRegion || r.Kind == regions.FuncRegion
}

func (pl *planning) excluded(st *hcpa.RegionStats) bool {
	if pl.cfg.exclude[st.Region.Label()] {
		return true
	}
	return pl.cfg.requireSafe && st.Region.Safety == regions.SafetyRefuted
}

// savedFrac estimates the whole-program time fraction saved by
// parallelizing st: coverage·(1 − 1/SP).
func (pl *planning) savedFrac(st *hcpa.RegionStats) float64 {
	sp := st.SelfP
	if pl.pers.MaxCores > 0 && sp > float64(pl.pers.MaxCores) {
		sp = float64(pl.pers.MaxCores)
	}
	return st.Coverage * (1 - 1/sp)
}

func speedupFrom(saved float64) float64 {
	if saved >= 1 {
		saved = 0.999999
	}
	return 1 / (1 - saved)
}

// eligible applies the personality's threshold constraints.
func (pl *planning) eligible(st *hcpa.RegionStats) bool {
	if !selectableKind(st.Region) || pl.excluded(st) {
		return false
	}
	if st.SelfP < pl.pers.MinSelfP {
		return false
	}
	if st.HasReduction && pl.pers.MinReductionWork > 0 && st.Instances > 0 {
		if st.TotalWork/uint64(st.Instances) < pl.pers.MinReductionWork {
			return false
		}
	}
	// Reduction regions are gated by the work threshold above, not the
	// DOACROSS one: with the reduction clause they need no per-iteration
	// synchronization.
	min := pl.pers.MinSpeedupDOACROSS
	if st.DOALL || st.HasReduction {
		min = pl.pers.MinSpeedupDOALL
	}
	return speedupFrom(pl.savedFrac(st)) >= 1+min
}

// dynamicProgram runs the bottom-up DP over the region graph and collects
// the selected set.
func (pl *planning) dynamicProgram() []*hcpa.RegionStats {
	pl.memo = make(map[int]float64)
	pl.visit = make(map[int]bool)
	pl.countCallers()

	var chosen []*hcpa.RegionStats
	for _, f := range pl.sum.Prog.Module.Funcs {
		if f.Name != "main" {
			continue
		}
		root := pl.sum.Prog.PerFunc[f].Root
		pl.best(root)
		pl.collect(root, &chosen, map[int]bool{})
	}
	return chosen
}

// countCallers counts distinct call sites per function region so a shared
// callee's benefit is split among callers rather than double-counted.
func (pl *planning) countCallers() {
	pl.callers = make(map[int]int)
	for _, r := range pl.sum.Prog.Regions {
		for _, callee := range r.Callees {
			id := pl.sum.Prog.PerFunc[callee].Root.ID
			pl.callers[id]++
		}
	}
}

func (pl *planning) shareFactor(funcRegionID int) float64 {
	if n := pl.callers[funcRegionID]; n > 1 {
		return 1 / float64(n)
	}
	return 1
}

// childRegions returns the region-graph children of r: static subregions
// plus the function regions of direct callees.
func (pl *planning) childRegions(r *regions.Region) []*regions.Region {
	out := append([]*regions.Region(nil), r.Children...)
	for _, callee := range r.Callees {
		out = append(out, pl.sum.Prog.PerFunc[callee].Root)
	}
	return out
}

// best computes the maximum saved fraction achievable within r's subtree
// subject to the no-nesting constraint.
func (pl *planning) best(r *regions.Region) float64 {
	if v, ok := pl.memo[r.ID]; ok {
		return v
	}
	if pl.visit[r.ID] {
		return 0 // recursion cycle: stop
	}
	pl.visit[r.ID] = true
	defer func() { pl.visit[r.ID] = false }()

	var childSum float64
	for _, c := range pl.childRegions(r) {
		v := pl.best(c)
		if c.Kind == regions.FuncRegion {
			v *= pl.shareFactor(c.ID)
		}
		childSum += v
	}
	v := childSum
	if st := pl.sum.ByID(r.ID); st != nil && pl.eligible(st) {
		if own := pl.savedFrac(st); own > childSum {
			v = own
		}
	}
	pl.memo[r.ID] = v
	return v
}

// collect gathers the regions realizing best(r).
func (pl *planning) collect(r *regions.Region, out *[]*hcpa.RegionStats, onPath map[int]bool) {
	if onPath[r.ID] {
		return
	}
	onPath[r.ID] = true
	defer delete(onPath, r.ID)

	st := pl.sum.ByID(r.ID)
	var childSum float64
	for _, c := range pl.childRegions(r) {
		v := pl.memo[c.ID]
		if c.Kind == regions.FuncRegion {
			v *= pl.shareFactor(c.ID)
		}
		childSum += v
	}
	if st != nil && pl.eligible(st) && pl.savedFrac(st) > childSum && pl.savedFrac(st) > 0 {
		*out = append(*out, st)
		return
	}
	for _, c := range pl.childRegions(r) {
		pl.collect(c, out, onPath)
	}
}

// Render formats the plan as the paper's Figure-3 user interface: rank,
// location, self-parallelism, and coverage, ordered by estimated speedup.
func (p *Plan) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%4s  %-38s %10s %8s %10s  %-16s %s\n", "#", "Region (lines)", "Self-P", "Cov(%)", "Est.Spd", "Kind", "Safety")
	for i, r := range p.Recs {
		reg := r.Stats.Region
		loc := fmt.Sprintf("%s (%d-%d) %s %s", reg.File, reg.StartLine, reg.EndLine, reg.Kind, reg.Func.Name)
		fmt.Fprintf(&sb, "%4d  %-38s %10.1f %8.2f %10.3f  %-16s %s\n",
			i+1, loc, r.Stats.SelfP, r.Stats.Coverage*100, r.EstSpeedup, r.Hint(), r.Safety)
	}
	fmt.Fprintf(&sb, "plan: %d of %d regions; ideal whole-program speedup %.2fx (personality=%s)\n",
		len(p.Recs), p.Considered, p.EstProgramSpeedup, p.Personality.Name)
	return sb.String()
}
