package planner_test

import (
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/hcpa"
	. "kremlin/internal/planner"
	"kremlin/internal/regions"
)

func summarize(t *testing.T, src string) (*kremlin.Program, *hcpa.Summary) {
	t.Helper()
	prog, err := kremlin.Compile("t.kr", src)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	return prog, prog.Summarize(prof)
}

const twoLevelSrc = `
float a[40][40];
float b[40][40];

// A nest where the outer loop is parallel: the DP planner must pick the
// outer loop, not both levels.
void stencil() {
	for (int i = 1; i < 39; i++) {
		for (int j = 1; j < 39; j++) {
			b[i][j] = 0.25 * (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]);
		}
	}
}

int main() {
	for (int i = 0; i < 40; i++) {
		for (int j = 0; j < 40; j++) {
			a[i][j] = float((i * j) % 11);
		}
	}
	stencil();
	print(b[20][20]);
	return 0;
}
`

func planFor(t *testing.T, src string, p Personality) (*hcpa.Summary, *Plan) {
	t.Helper()
	_, sum := summarize(t, src)
	return sum, Make(sum, p)
}

func TestOpenMPPlanNonNested(t *testing.T) {
	sum, plan := planFor(t, twoLevelSrc, OpenMP())
	if len(plan.Recs) == 0 {
		t.Fatal("empty plan")
	}
	// No recommendation may be an ancestor of another (per-path exclusivity)
	inPlan := map[*regions.Region]bool{}
	for _, r := range plan.Recs {
		inPlan[r.Stats.Region] = true
	}
	for _, r := range plan.Recs {
		for p := r.Stats.Region.Parent; p != nil; p = p.Parent {
			if inPlan[p] {
				t.Errorf("nested selection: %s inside %s", r.Label(), p.Label())
			}
		}
	}
	_ = sum
}

func TestPlanOrderedBySavedTime(t *testing.T) {
	_, plan := planFor(t, twoLevelSrc, OpenMP())
	for i := 1; i < len(plan.Recs); i++ {
		if plan.Recs[i].SavedFrac > plan.Recs[i-1].SavedFrac+1e-12 {
			t.Errorf("plan not sorted at %d", i)
		}
	}
	for _, r := range plan.Recs {
		if r.EstSpeedup < 1 {
			t.Errorf("est speedup %f < 1", r.EstSpeedup)
		}
	}
}

func TestThresholdFiltersLowSP(t *testing.T) {
	// A serial chain: nothing is parallelizable, the plan must be empty.
	src := `
float b[500];
int main() {
	b[0] = 1.0;
	for (int i = 1; i < 500; i++) {
		b[i] = b[i-1] * 0.999 + 0.001;
	}
	print(b[499]);
	return 0;
}`
	_, plan := planFor(t, src, OpenMP())
	if len(plan.Recs) != 0 {
		t.Errorf("serial program produced a %d-entry plan: %v", len(plan.Recs), plan.Labels())
	}
}

func TestSmallReductionRejectedLargeAccepted(t *testing.T) {
	src := `
float small[40];
float big[40][400];
float s1;
float s2;
void tiny() {
	for (int i = 0; i < 40; i++) {
		s1 = s1 + small[i];
	}
}
void ample() {
	for (int i = 0; i < 40; i++) {
		for (int j = 0; j < 400; j++) {
			s2 = s2 + big[i][j];
		}
	}
}
int main() {
	for (int r = 0; r < 20; r++) { tiny(); }
	ample();
	print(s1, s2);
	return 0;
}`
	_, plan := planFor(t, src, OpenMP())
	var hasTiny, hasAmple bool
	for _, r := range plan.Recs {
		switch r.Stats.Region.Func.Name {
		case "tiny":
			hasTiny = true
		case "ample":
			hasAmple = true
		}
	}
	if hasTiny {
		t.Error("tiny reduction should fail the reduction-work threshold")
	}
	if !hasAmple {
		t.Error("ample reduction should be planned (the paper's ep case)")
	}
}

func TestDPPrefersChildrenWhenBetter(t *testing.T) {
	// Parent loop has modest SP; its two child loops are fully parallel —
	// their combined saving beats the parent (the paper's ft/lu case).
	src := `
float a[30][60];
float b[30][60];
float c[500];
int main() {
	// Parent: iterations partly serialized through c.
	for (int t = 0; t < 30; t++) {
		c[t+1] = c[t] + 1.0;            // serial spine
		for (int j = 0; j < 60; j++) {  // child 1: parallel
			a[t][j] = float(j) * 2.0;
		}
		for (int j = 0; j < 60; j++) {  // child 2: parallel
			b[t][j] = a[t][j] + 1.0;
		}
	}
	print(a[0][0], b[29][59], c[30]);
	return 0;
}`
	_, plan := planFor(t, src, OpenMP())
	pickedParent := false
	pickedChildren := 0
	for _, r := range plan.Recs {
		reg := r.Stats.Region
		if reg.Kind != regions.LoopRegion {
			continue
		}
		if reg.Parent.Kind == regions.FuncRegion {
			pickedParent = true
		} else {
			pickedChildren++
		}
	}
	if pickedParent {
		t.Errorf("DP picked the partly-serial parent over its parallel children: %v", plan.Labels())
	}
	if pickedChildren != 2 {
		t.Errorf("picked %d child loops, want 2: %v", pickedChildren, plan.Labels())
	}
}

func TestExclusionReplans(t *testing.T) {
	_, sum := summarize(t, twoLevelSrc)
	base := Make(sum, OpenMP())
	if len(base.Recs) == 0 {
		t.Fatal("empty base plan")
	}
	top := base.Recs[0].Label()
	re := Make(sum, OpenMP(), Exclude(top))
	if re.Has(top) {
		t.Fatalf("excluded region %s still planned", top)
	}
	// The stencil work is still coverable at another level: the replan
	// should find a replacement rather than go empty.
	if len(re.Recs) == 0 {
		t.Error("replan found no alternative")
	}
}

func TestCilkNestingAllowed(t *testing.T) {
	_, sum := summarize(t, twoLevelSrc)
	cilk := Make(sum, Cilk())
	omp := Make(sum, OpenMP())
	if len(cilk.Recs) < len(omp.Recs) {
		t.Errorf("cilk plan (%d) smaller than openmp (%d); nesting should admit more regions",
			len(cilk.Recs), len(omp.Recs))
	}
}

func TestBaselineModesAreSupersets(t *testing.T) {
	_, sum := summarize(t, twoLevelSrc)
	w := Make(sum, WorkOnly())
	ws := Make(sum, WorkSP())
	full := Make(sum, OpenMP())
	if len(w.Recs) < len(ws.Recs) {
		t.Errorf("work-only (%d) should not be smaller than work+sp (%d)", len(w.Recs), len(ws.Recs))
	}
	if len(ws.Recs) < len(full.Recs) {
		t.Errorf("work+sp (%d) should not be smaller than the full planner (%d)", len(ws.Recs), len(full.Recs))
	}
}

func TestRenderContainsColumns(t *testing.T) {
	_, plan := planFor(t, twoLevelSrc, OpenMP())
	out := plan.Render()
	for _, frag := range []string{"Self-P", "Cov(%)", "personality=openmp"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestMaxCoresCapsEstimates(t *testing.T) {
	_, sum := summarize(t, twoLevelSrc)
	p := OpenMP()
	p.MaxCores = 4
	capped := Make(sum, p)
	free := Make(sum, OpenMP())
	if len(capped.Recs) == 0 || len(free.Recs) == 0 {
		t.Fatal("plans empty")
	}
	if capped.Recs[0].SavedFrac > free.Recs[0].SavedFrac+1e-12 {
		t.Error("capping cores increased the saving estimate")
	}
}

func TestRecommendationHints(t *testing.T) {
	src := `
float a[300];
float b[300];
float total;
void doall() {
	for (int i = 0; i < 300; i++) { b[i] = a[i] * 2.0; }
}
void reduce() {
	for (int i = 0; i < 300; i++) {
		for (int k = 0; k < 20; k++) {
			total = total + a[i] * float(k);
		}
	}
}
void wavefront() {
	for (int i = 1; i < 300; i++) {
		for (int j = 1; j < 40; j++) {
			b[i] = b[i] + b[i-1] * 0.001 + a[(i + j) % 300];
		}
	}
}
int main() {
	doall();
	reduce();
	wavefront();
	print(total, b[299]);
	return 0;
}`
	_, sum := summarize(t, src)
	plan := Make(sum, OpenMP())
	hints := map[string]string{}
	for _, r := range plan.Recs {
		hints[r.Stats.Region.Func.Name] = r.Hint()
	}
	if h := hints["doall"]; h != "DOALL" {
		t.Errorf("doall hint = %q", h)
	}
	if h, ok := hints["reduce"]; ok && h != "DOALL+reduction" && h != "reduction" {
		t.Errorf("reduce hint = %q", h)
	}
	out := plan.Render()
	if !strings.Contains(out, "Kind") || !strings.Contains(out, "DOALL") {
		t.Errorf("render missing hints:\n%s", out)
	}
}

func TestLinesOfCodeProxy(t *testing.T) {
	_, sum := summarize(t, twoLevelSrc)
	plan := Make(sum, OpenMP())
	if plan.LinesOfCode() <= 0 {
		t.Fatal("plan has no line extent")
	}
	// Each region contributes at least one line; the proxy is bounded below
	// by the region count.
	if plan.LinesOfCode() < len(plan.Recs) {
		t.Errorf("LOC %d < regions %d", plan.LinesOfCode(), len(plan.Recs))
	}
}
