package irbuild

import (
	"testing"

	"kremlin/internal/cfg"
	"kremlin/internal/ir"
	"kremlin/internal/parser"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

func build(t *testing.T, src string) *ir.Module {
	t.Helper()
	errs := &source.ErrorList{}
	file := source.NewFile("t.kr", src)
	tree := parser.Parse(file, errs)
	if errs.HasErrors() {
		t.Fatalf("parse: %v", errs.Err())
	}
	info := types.Check(tree, file, errs)
	if errs.HasErrors() {
		t.Fatalf("check: %v", errs.Err())
	}
	mod := Build(tree, info, file, errs)
	if errs.HasErrors() {
		t.Fatalf("build: %v", errs.Err())
	}
	return mod
}

const ssaSample = `
float data[64];
int hits;

float work(int n, float seed) {
	float acc = seed;
	for (int i = 0; i < n; i++) {
		if (data[i] > acc) {
			acc = data[i];
			hits = hits + 1;
		} else {
			acc = acc * 0.5 + data[i];
		}
	}
	while (acc > 100.0) {
		acc /= 2.0;
	}
	return acc;
}

int main() {
	for (int i = 0; i < 64; i++) {
		data[i] = float(i % 7);
	}
	float r = work(64, 1.0);
	bool b = r > 0.0 && hits < 100;
	if (b) { print(r); }
	return hits;
}
`

// TestSSAPromotionComplete: mem2reg must remove every slot access.
func TestSSAPromotionComplete(t *testing.T) {
	mod := build(t, ssaSample)
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpLoadSlot || ins.Op == ir.OpStoreSlot {
					t.Errorf("%s: residual slot access %s in %s", f.Name, ins.Op, b)
				}
			}
		}
	}
}

// TestSSADefsDominateUses: the defining block of every operand must
// dominate the use (for phis: the corresponding predecessor).
func TestSSADefsDominateUses(t *testing.T) {
	mod := build(t, ssaSample)
	for _, f := range mod.Funcs {
		g := cfg.New(f)
		idom := g.Dominators()
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				for ai, a := range ins.Args {
					def, ok := a.(*ir.Instr)
					if !ok || def == nil {
						continue
					}
					useBlock := b
					if ins.Op == ir.OpPhi {
						useBlock = b.Preds[ai]
					}
					if def.Block == nil {
						t.Fatalf("%s: operand %s of %s has no block", f.Name, def.Name(), ins.Name())
					}
					if !cfg.Dominates(idom, g.Index(def.Block), g.Index(useBlock)) {
						t.Errorf("%s: def %s (in %s) does not dominate use %s (in %s)",
							f.Name, def.Name(), def.Block, ins.Name(), useBlock)
					}
				}
			}
		}
	}
}

// TestPhiShape: phi arg counts match predecessor counts and phis lead
// their blocks.
func TestPhiShape(t *testing.T) {
	mod := build(t, ssaSample)
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			seenNonPhi := false
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpPhi {
					if seenNonPhi {
						t.Errorf("%s: phi after non-phi in %s", f.Name, b)
					}
					if len(ins.Args) != len(b.Preds) {
						t.Errorf("%s: phi arity %d != preds %d in %s", f.Name, len(ins.Args), len(b.Preds), b)
					}
					for _, a := range ins.Args {
						if a == nil {
							t.Errorf("%s: nil phi operand in %s", f.Name, b)
						}
					}
				} else {
					seenNonPhi = true
				}
			}
		}
	}
}

// TestBlockTermination: every block ends with exactly one terminator, and
// edges match terminator targets.
func TestBlockTermination(t *testing.T) {
	mod := build(t, ssaSample)
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			term := b.Terminator()
			if term == nil {
				t.Fatalf("%s: block %s lacks a terminator", f.Name, b)
			}
			for i, ins := range b.Instrs {
				if ins.IsTerminator() && i != len(b.Instrs)-1 {
					t.Errorf("%s: terminator mid-block in %s", f.Name, b)
				}
			}
			if len(term.Targets) != len(b.Succs) {
				t.Errorf("%s: %s has %d targets but %d successors", f.Name, term.Op, len(term.Targets), len(b.Succs))
			}
		}
	}
}

// TestStructuredLoopsHeaderDominated: CFGs built from Kr control flow are
// reducible — every natural loop's header dominates its whole body.
func TestStructuredLoopsHeaderDominated(t *testing.T) {
	mod := build(t, ssaSample)
	for _, f := range mod.Funcs {
		g := cfg.New(f)
		idom := g.Dominators()
		for _, l := range g.Loops(idom) {
			for _, b := range l.Blocks {
				if !cfg.Dominates(idom, g.Index(l.Header), g.Index(b)) {
					t.Errorf("%s: loop header %s does not dominate body block %s", f.Name, l.Header, b)
				}
			}
		}
	}
}

// TestUnreachableRemoved: code after return generates no reachable blocks.
func TestUnreachableRemoved(t *testing.T) {
	mod := build(t, `
int main() {
	for (int i = 0; i < 3; i++) {
		if (i == 1) {
			break;
		}
		continue;
	}
	return 1;
}
`)
	f := mod.Main()
	reach := map[*ir.Block]bool{f.Entry(): true}
	work := []*ir.Block{f.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	for _, b := range f.Blocks {
		if !reach[b] {
			t.Errorf("unreachable block %s retained", b)
		}
	}
	// Block IDs are re-densified.
	for i, b := range f.Blocks {
		if b.ID != i {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
	}
}

// TestGlobalConstantFolding: global array dims and initializers fold.
func TestGlobalConstantFolding(t *testing.T) {
	mod := build(t, `
float m[4*4][2+1];
int k = -(3 - 8);
int main() { return k + int(m[0][0]); }
`)
	g := mod.Globals[0]
	if len(g.Dims) != 2 || g.Dims[0] != 16 || g.Dims[1] != 3 {
		t.Errorf("dims = %v", g.Dims)
	}
	init, ok := mod.Globals[1].Init.(*ir.ConstInt)
	if !ok || init.V != 5 {
		t.Errorf("init = %v", mod.Globals[1].Init)
	}
}

func TestNonConstantGlobalRejected(t *testing.T) {
	errs := &source.ErrorList{}
	file := source.NewFile("t.kr", `
int n = 4;
float a[5];
int main() { float b[n]; b[0] = a[0]; return 0; }
`)
	tree := parser.Parse(file, errs)
	info := types.Check(tree, file, errs)
	Build(tree, info, file, errs)
	if errs.HasErrors() {
		t.Fatalf("local dynamic arrays must be allowed: %v", errs.Err())
	}

	errs2 := &source.ErrorList{}
	file2 := source.NewFile("t.kr", `
int n = 4;
float a[n];
int main() { return 0; }
`)
	tree2 := parser.Parse(file2, errs2)
	info2 := types.Check(tree2, file2, errs2)
	Build(tree2, info2, file2, errs2)
	if !errs2.HasErrors() {
		t.Fatal("global array with non-constant dimension must be rejected")
	}
}

// TestShortCircuitLowering: && lowers to control flow plus a phi.
func TestShortCircuitLowering(t *testing.T) {
	mod := build(t, `
int f() { return 1; }
int main() {
	bool b = f() > 0 && f() < 2;
	if (b) { return 1; }
	return 0;
}
`)
	f := mod.Main()
	calls := 0
	branches := 0
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpCall {
				calls++
			}
			if ins.Op == ir.OpBr {
				branches++
			}
		}
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
	if branches < 2 { // one for &&, one for if
		t.Errorf("branches = %d, want >= 2", branches)
	}
}

// TestImplicitReturnValue: a non-void function falling off the end returns
// a zero value.
func TestImplicitReturn(t *testing.T) {
	mod := build(t, `
float f(int x) {
	if (x > 0) {
		return 1.0;
	}
}
int main() { print(f(0)); return 0; }
`)
	f := mod.ByName["f"]
	rets := 0
	for _, b := range f.Blocks {
		if term := b.Terminator(); term != nil && term.Op == ir.OpRet {
			rets++
			if len(term.Args) != 1 {
				t.Error("float function return without value")
			}
		}
	}
	if rets != 2 {
		t.Errorf("returns = %d, want 2 (explicit + implicit)", rets)
	}
}

// TestValueIDsAreDense: IDs are unique and within NumValues.
func TestValueIDsUnique(t *testing.T) {
	mod := build(t, ssaSample)
	for _, f := range mod.Funcs {
		seen := map[int]bool{}
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.ID < 0 || ins.ID >= f.NumValues() {
					t.Fatalf("%s: ID %d out of range", f.Name, ins.ID)
				}
				if seen[ins.ID] {
					t.Fatalf("%s: duplicate ID %d", f.Name, ins.ID)
				}
				seen[ins.ID] = true
			}
		}
	}
}

// TestModuleStringSmoke: the IR printer runs and mentions key constructs.
func TestModuleString(t *testing.T) {
	mod := build(t, ssaSample)
	s := mod.String()
	for _, frag := range []string{"func work", "phi", "br", "global @hits", "view"} {
		if !containsStr(s, frag) {
			t.Errorf("IR dump missing %q", frag)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
