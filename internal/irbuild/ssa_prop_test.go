package irbuild

// SSA invariants checked over the full space of generator-produced
// programs — the compiler-level complement to krgen's behavioral
// differential tests.

import (
	"testing"

	"kremlin/internal/cfg"
	"kremlin/internal/ir"
	"kremlin/internal/krgen"
	"kremlin/internal/parser"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

func buildGenerated(t *testing.T, seed int64) *ir.Module {
	t.Helper()
	src := krgen.Generate(seed, krgen.Default())
	errs := &source.ErrorList{}
	file := source.NewFile("gen.kr", src)
	tree := parser.Parse(file, errs)
	info := types.Check(tree, file, errs)
	if errs.HasErrors() {
		t.Fatalf("seed %d: frontend: %v", seed, errs.Err())
	}
	mod := Build(tree, info, file, errs)
	if errs.HasErrors() {
		t.Fatalf("seed %d: build: %v", seed, errs.Err())
	}
	return mod
}

func TestSSAInvariantsOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		mod := buildGenerated(t, seed)
		for _, f := range mod.Funcs {
			g := cfg.New(f)
			idom := g.Dominators()
			defined := map[*ir.Instr]bool{}
			for _, b := range f.Blocks {
				for _, ins := range b.Instrs {
					defined[ins] = true
				}
			}
			for _, b := range f.Blocks {
				term := b.Terminator()
				if term == nil {
					t.Fatalf("seed %d/%s: block %s unterminated", seed, f.Name, b)
				}
				sawNonPhi := false
				for _, ins := range b.Instrs {
					if ins.Op == ir.OpLoadSlot || ins.Op == ir.OpStoreSlot {
						t.Fatalf("seed %d/%s: residual slot op", seed, f.Name)
					}
					if ins.Op == ir.OpPhi {
						if sawNonPhi {
							t.Fatalf("seed %d/%s: phi after non-phi", seed, f.Name)
						}
						if len(ins.Args) != len(b.Preds) {
							t.Fatalf("seed %d/%s: phi arity mismatch", seed, f.Name)
						}
					} else {
						sawNonPhi = true
					}
					for ai, a := range ins.Args {
						def, ok := a.(*ir.Instr)
						if !ok {
							continue
						}
						if !defined[def] {
							t.Fatalf("seed %d/%s: operand %s of %s not defined in function",
								seed, f.Name, def.Name(), ins.Name())
						}
						use := b
						if ins.Op == ir.OpPhi {
							use = b.Preds[ai]
						}
						if !cfg.Dominates(idom, g.Index(def.Block), g.Index(use)) {
							t.Fatalf("seed %d/%s: def %s does not dominate use %s",
								seed, f.Name, def.Name(), ins.Name())
						}
					}
				}
			}
		}
	}
}
