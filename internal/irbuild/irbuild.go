// Package irbuild lowers a type-checked Kr AST to IR and promotes scalar
// locals to SSA form (the mem2reg pass), mirroring the role LLVM plays in
// the paper's pipeline.
package irbuild

import (
	"kremlin/internal/ast"
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
	"kremlin/internal/source"
	"kremlin/internal/token"
	"kremlin/internal/types"
)

// Build lowers file to an IR module. The file must have type-checked cleanly.
func Build(file *ast.File, info *types.Info, src *source.File, errs *source.ErrorList) *ir.Module {
	m := &ir.Module{Name: file.Name, ByName: make(map[string]*ir.Func)}
	b := &builder{m: m, info: info, src: src, errs: errs}

	for _, g := range file.Globals {
		sym := info.Defs[g]
		irg := &ir.Global{Name: g.Name, Elem: g.Elem, Index: sym.Index}
		for _, d := range g.Dims {
			v, ok := constFoldInt(d, info)
			if !ok || v <= 0 {
				errs.Add(src.Name, src.Pos(d.Pos()), "global array dimension must be a positive constant")
				v = 1
			}
			irg.Dims = append(irg.Dims, v)
		}
		if g.Init != nil {
			irg.Init = constFoldValue(g.Init, info)
			if irg.Init == nil {
				errs.Add(src.Name, src.Pos(g.Init.Pos()), "global initializer must be constant")
			}
		}
		m.Globals = append(m.Globals, irg)
		b.globals = append(b.globals, irg)
	}

	// Create all function shells first so calls can reference them.
	for _, fd := range file.Funcs {
		fs := info.Funcs[fd.Name]
		if fs == nil || fs.Decl != fd {
			continue
		}
		f := &ir.Func{Name: fd.Name, Ret: fd.Ret, Module: m, Pos: fd.Pos(), EndPos: fd.End()}
		m.Funcs = append(m.Funcs, f)
		m.ByName[f.Name] = f
	}
	for _, fd := range file.Funcs {
		fs := info.Funcs[fd.Name]
		if fs == nil || fs.Decl != fd {
			continue
		}
		b.buildFunc(m.ByName[fd.Name], fs)
	}
	return m
}

// constFoldInt evaluates an int constant expression.
func constFoldInt(e ast.Expr, info *types.Info) (int64, bool) {
	v := constFoldValue(e, info)
	if ci, ok := v.(*ir.ConstInt); ok {
		return ci.V, true
	}
	return 0, false
}

// constFoldValue folds literal arithmetic; returns nil if not constant.
func constFoldValue(e ast.Expr, info *types.Info) ir.Value {
	switch e := e.(type) {
	case *ast.IntLit:
		return &ir.ConstInt{V: e.Value}
	case *ast.FloatLit:
		return &ir.ConstFloat{V: e.Value}
	case *ast.BoolLit:
		return &ir.ConstBool{V: e.Value}
	case *ast.UnaryExpr:
		x := constFoldValue(e.X, info)
		switch x := x.(type) {
		case *ir.ConstInt:
			if e.Op == token.SUB {
				return &ir.ConstInt{V: -x.V}
			}
		case *ir.ConstFloat:
			if e.Op == token.SUB {
				return &ir.ConstFloat{V: -x.V}
			}
		case *ir.ConstBool:
			if e.Op == token.NOT {
				return &ir.ConstBool{V: !x.V}
			}
		}
	case *ast.BinaryExpr:
		x := constFoldValue(e.X, info)
		y := constFoldValue(e.Y, info)
		xi, xok := x.(*ir.ConstInt)
		yi, yok := y.(*ir.ConstInt)
		if xok && yok {
			switch e.Op {
			case token.ADD:
				return &ir.ConstInt{V: xi.V + yi.V}
			case token.SUB:
				return &ir.ConstInt{V: xi.V - yi.V}
			case token.MUL:
				return &ir.ConstInt{V: xi.V * yi.V}
			case token.QUO:
				if yi.V != 0 {
					return &ir.ConstInt{V: xi.V / yi.V}
				}
			case token.REM:
				if yi.V != 0 {
					return &ir.ConstInt{V: xi.V % yi.V}
				}
			}
		}
	}
	return nil
}

type loopFrame struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type builder struct {
	m       *ir.Module
	info    *types.Info
	src     *source.File
	errs    *source.ErrorList
	globals []*ir.Global

	f     *ir.Func
	fs    *types.FuncSym
	cur   *ir.Block
	loops []loopFrame
	// slotOf maps a symbol to its local slot.
	slotOf map[*types.Symbol]int
}

func (b *builder) emit(i *ir.Instr) *ir.Instr {
	i.Block = b.cur
	i.ID = b.f.NewValueID()
	b.cur.Instrs = append(b.cur.Instrs, i)
	return i
}

func (b *builder) jump(to *ir.Block, pos int) {
	b.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{to}, Pos: pos})
	ir.AddEdge(b.cur, to)
}

func (b *builder) br(cond ir.Value, then, els *ir.Block, pos int) {
	b.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Value{cond}, Targets: []*ir.Block{then, els}, Pos: pos})
	ir.AddEdge(b.cur, then)
	ir.AddEdge(b.cur, els)
}

func (b *builder) buildFunc(f *ir.Func, fs *types.FuncSym) {
	b.f = f
	b.fs = fs
	b.slotOf = make(map[*types.Symbol]int)
	f.SlotTypes = nil
	entry := f.NewBlock("entry")
	b.cur = entry

	for i, p := range fs.Params {
		pi := b.emit(&ir.Instr{Op: ir.OpParam, Slot: i, Typ: p.Type, Pos: p.Decl.Pos()})
		f.Params = append(f.Params, pi)
		slot := b.newSlot(p)
		b.emit(&ir.Instr{Op: ir.OpStoreSlot, Slot: slot, Args: []ir.Value{pi}, Pos: p.Decl.Pos()})
	}
	b.block(fs.Decl.Body)
	// Implicit return if control falls off the end.
	if t := b.cur.Terminator(); t == nil {
		switch f.Ret {
		case ast.Void:
			b.emit(&ir.Instr{Op: ir.OpRet, Pos: fs.Decl.End()})
		case ast.Float:
			b.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{&ir.ConstFloat{}}, Pos: fs.Decl.End()})
		case ast.Bool:
			b.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{&ir.ConstBool{}}, Pos: fs.Decl.End()})
		default:
			b.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{&ir.ConstInt{}}, Pos: fs.Decl.End()})
		}
	}
	f.NumSlots = len(f.SlotTypes)
	RemoveUnreachable(f)
	Mem2Reg(f)
}

func (b *builder) newSlot(sym *types.Symbol) int {
	slot := len(b.f.SlotTypes)
	b.f.SlotTypes = append(b.f.SlotTypes, sym.Type)
	b.slotOf[sym] = slot
	return slot
}

func (b *builder) block(blk *ast.Block) {
	for _, s := range blk.Stmts {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		b.block(s)
	case *ast.DeclStmt:
		b.declStmt(s.Decl)
	case *ast.AssignStmt:
		b.assign(s)
	case *ast.IncDecStmt:
		op := token.ADDASSIGN
		if s.Op == token.DEC {
			op = token.SUBASSIGN
		}
		b.assign(&ast.AssignStmt{LHS: s.LHS, Op: op, RHS: &ast.IntLit{LitPos: s.LHS.Pos(), Value: 1, Text: "1"}})
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.WhileStmt:
		b.forStmt(&ast.ForStmt{ForPos: s.WhilePos, Cond: s.Cond, Body: s.Body})
	case *ast.BreakStmt:
		if len(b.loops) > 0 {
			b.jump(b.loops[len(b.loops)-1].breakTo, s.Pos())
			b.cur = b.f.NewBlock("dead")
		}
	case *ast.ContinueStmt:
		if len(b.loops) > 0 {
			b.jump(b.loops[len(b.loops)-1].continueTo, s.Pos())
			b.cur = b.f.NewBlock("dead")
		}
	case *ast.ReturnStmt:
		ret := &ir.Instr{Op: ir.OpRet, Pos: s.Pos()}
		if s.Result != nil {
			v := b.expr(s.Result)
			v = b.convertTo(v, types.Scalar(b.f.Ret), s.Pos())
			ret.Args = []ir.Value{v}
		}
		b.emit(ret)
		b.cur = b.f.NewBlock("dead")
	case *ast.ExprStmt:
		b.expr(s.X)
	default:
		// Unreachable with a type-checked AST; report instead of panicking
		// so a malformed tree fails the compilation, not the process. The
		// module is discarded once the error list is non-empty.
		b.errs.Add(b.src.Name, b.src.Pos(s.Pos()), "internal: irbuild: unknown statement %T", s)
	}
}

func (b *builder) declStmt(d *ast.VarDecl) {
	sym := b.info.Defs[d]
	slot := b.newSlot(sym)
	if len(d.Dims) > 0 {
		alloc := &ir.Instr{Op: ir.OpAllocArray, Typ: sym.Type, Pos: d.Pos()}
		for _, dim := range d.Dims {
			alloc.Args = append(alloc.Args, b.expr(dim))
		}
		b.emit(alloc)
		b.emit(&ir.Instr{Op: ir.OpStoreSlot, Slot: slot, Args: []ir.Value{alloc}, Pos: d.Pos()})
		return
	}
	var init ir.Value
	if d.Init != nil {
		init = b.convertTo(b.expr(d.Init), sym.Type, d.Pos())
	} else {
		init = zeroValue(sym.Type)
	}
	b.emit(&ir.Instr{Op: ir.OpStoreSlot, Slot: slot, Args: []ir.Value{init}, Pos: d.Pos()})
}

func zeroValue(t types.Type) ir.Value {
	switch t.Elem {
	case ast.Float:
		return &ir.ConstFloat{}
	case ast.Bool:
		return &ir.ConstBool{}
	default:
		return &ir.ConstInt{}
	}
}

// lvalueCell lowers an assignable expression. For a local/global scalar it
// returns (slot or global, nil cell); for array elements it returns the
// 0-dim view cell.
type lvalue struct {
	slot   int // >= 0 when a local slot
	global *ir.Global
	cell   ir.Value // 0-dim view for element accesses
	typ    types.Type
}

func (b *builder) lvalue(e ast.Expr) lvalue {
	switch e := e.(type) {
	case *ast.Ident:
		sym := b.info.Uses[e]
		if sym.Kind == types.GlobalVar {
			return lvalue{slot: -1, global: b.globals[sym.Index], typ: sym.Type}
		}
		return lvalue{slot: b.slotOf[sym], typ: sym.Type}
	case *ast.IndexExpr:
		arr := b.expr(e.X)
		idx := b.expr(e.Index)
		view := b.emit(&ir.Instr{
			Op:   ir.OpView,
			Typ:  types.Type{Elem: arr.Type().Elem, Dims: arr.Type().Dims - 1},
			Args: []ir.Value{arr, idx},
			Pos:  e.Pos(),
		})
		return lvalue{slot: -1, cell: view, typ: view.Typ}
	}
	// Type checking already rejected this program; emit into a throwaway
	// slot so the builder finishes without crashing.
	b.errs.Add(b.src.Name, b.src.Pos(e.Pos()), "internal: irbuild: invalid lvalue %T", e)
	t := b.info.Exprs[e]
	slot := len(b.f.SlotTypes)
	b.f.SlotTypes = append(b.f.SlotTypes, t)
	return lvalue{slot: slot, typ: t}
}

func (b *builder) loadLValue(lv lvalue, pos int) ir.Value {
	switch {
	case lv.cell != nil:
		return b.emit(&ir.Instr{Op: ir.OpLoad, Typ: lv.typ, Args: []ir.Value{lv.cell}, Pos: pos})
	case lv.global != nil:
		g := b.emit(&ir.Instr{Op: ir.OpGlobal, Global: lv.global, Typ: lv.typ, Pos: pos})
		return b.emit(&ir.Instr{Op: ir.OpLoad, Typ: lv.typ, Args: []ir.Value{g}, Pos: pos})
	default:
		return b.emit(&ir.Instr{Op: ir.OpLoadSlot, Slot: lv.slot, Typ: lv.typ, Pos: pos})
	}
}

func (b *builder) storeLValue(lv lvalue, v ir.Value, pos int, reduction bool) {
	switch {
	case lv.cell != nil:
		st := &ir.Instr{Op: ir.OpStore, Args: []ir.Value{lv.cell, v}, Pos: pos}
		st.Reduction = reduction
		b.emit(st)
	case lv.global != nil:
		g := b.emit(&ir.Instr{Op: ir.OpGlobal, Global: lv.global, Typ: lv.typ, Pos: pos})
		st := &ir.Instr{Op: ir.OpStore, Args: []ir.Value{g, v}, Pos: pos}
		st.Reduction = reduction
		b.emit(st)
	default:
		b.emit(&ir.Instr{Op: ir.OpStoreSlot, Slot: lv.slot, Args: []ir.Value{v}, Pos: pos})
	}
}

func (b *builder) assign(s *ast.AssignStmt) {
	lv := b.lvalue(s.LHS)
	rhs := b.expr(s.RHS)
	if s.Op == token.ASSIGN {
		b.storeLValue(lv, b.convertTo(rhs, lv.typ, s.LHS.Pos()), s.LHS.Pos(), false)
		return
	}
	// Compound assignment: load, op, store. The cell view (if any) is reused
	// so the subscript evaluates once, matching C semantics.
	old := b.loadLValue(lv, s.LHS.Pos())
	var kind ir.BinKind
	switch s.Op {
	case token.ADDASSIGN:
		kind = ir.BinAdd
	case token.SUBASSIGN:
		kind = ir.BinSub
	case token.MULASSIGN:
		kind = ir.BinMul
	case token.QUOASSIGN:
		kind = ir.BinDiv
	}
	l, r := b.usualArith(old, rhs, s.LHS.Pos())
	res := b.emit(&ir.Instr{Op: ir.OpBin, Bin: kind, Typ: l.Type(), Args: []ir.Value{l, r}, Pos: s.LHS.Pos()})
	b.storeLValue(lv, b.convertTo(res, lv.typ, s.LHS.Pos()), s.LHS.Pos(), false)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	then := b.f.NewBlock("then")
	join := b.f.NewBlock("endif")
	els := join
	if s.Else != nil {
		els = b.f.NewBlock("else")
	}
	cond := b.expr(s.Cond)
	b.br(cond, then, els, s.Pos())
	b.cur = then
	b.block(s.Then)
	if b.cur.Terminator() == nil {
		b.jump(join, s.Then.End())
	}
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		if b.cur.Terminator() == nil {
			b.jump(join, s.Else.End())
		}
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.f.NewBlock("loop")
	body := b.f.NewBlock("body")
	latch := b.f.NewBlock("latch")
	exit := b.f.NewBlock("exit")
	b.jump(header, s.Pos())

	b.cur = header
	header.Instrs = nil // loop position marker: first instruction pos is the loop stmt
	if s.Cond != nil {
		cond := b.expr(s.Cond)
		b.br(cond, body, exit, s.Pos())
	} else {
		b.jump(body, s.Pos())
	}

	b.loops = append(b.loops, loopFrame{breakTo: exit, continueTo: latch})
	b.cur = body
	b.block(s.Body)
	if b.cur.Terminator() == nil {
		b.jump(latch, s.Body.End())
	}
	b.loops = b.loops[:len(b.loops)-1]

	b.cur = latch
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.jump(header, s.Pos())
	b.cur = exit
}

// usualArith applies the usual arithmetic conversions to a pair of numeric
// operands, inserting int→float conversions where needed.
func (b *builder) usualArith(x, y ir.Value, pos int) (ir.Value, ir.Value) {
	xt, yt := x.Type(), y.Type()
	if xt.Elem == ast.Float && yt.Elem == ast.Int {
		y = b.convertTo(y, types.Scalar(ast.Float), pos)
	} else if xt.Elem == ast.Int && yt.Elem == ast.Float {
		x = b.convertTo(x, types.Scalar(ast.Float), pos)
	}
	return x, y
}

func (b *builder) convertTo(v ir.Value, t types.Type, pos int) ir.Value {
	if v.Type() == t || !t.IsScalar() {
		return v
	}
	if v.Type().Elem == ast.Int && t.Elem == ast.Float {
		if ci, ok := v.(*ir.ConstInt); ok {
			return &ir.ConstFloat{V: float64(ci.V)}
		}
		return b.emit(&ir.Instr{Op: ir.OpConvert, Typ: t, Args: []ir.Value{v}, Pos: pos})
	}
	if v.Type().Elem == ast.Float && t.Elem == ast.Int {
		return b.emit(&ir.Instr{Op: ir.OpConvert, Typ: t, Args: []ir.Value{v}, Pos: pos})
	}
	return v
}

func (b *builder) expr(e ast.Expr) ir.Value {
	switch e := e.(type) {
	case *ast.IntLit:
		return &ir.ConstInt{V: e.Value}
	case *ast.FloatLit:
		return &ir.ConstFloat{V: e.Value}
	case *ast.BoolLit:
		return &ir.ConstBool{V: e.Value}
	case *ast.Ident:
		sym := b.info.Uses[e]
		if sym == nil {
			return &ir.ConstInt{}
		}
		if sym.Kind == types.GlobalVar {
			g := b.emit(&ir.Instr{Op: ir.OpGlobal, Global: b.globals[sym.Index], Typ: sym.Type, Pos: e.Pos()})
			if sym.Type.IsScalar() {
				return b.emit(&ir.Instr{Op: ir.OpLoad, Typ: sym.Type, Args: []ir.Value{g}, Pos: e.Pos()})
			}
			return g
		}
		return b.emit(&ir.Instr{Op: ir.OpLoadSlot, Slot: b.slotOf[sym], Typ: sym.Type, Pos: e.Pos()})
	case *ast.IndexExpr:
		arr := b.expr(e.X)
		idx := b.expr(e.Index)
		vt := types.Type{Elem: arr.Type().Elem, Dims: arr.Type().Dims - 1}
		view := b.emit(&ir.Instr{Op: ir.OpView, Typ: vt, Args: []ir.Value{arr, idx}, Pos: e.Pos()})
		if vt.Dims == 0 {
			return b.emit(&ir.Instr{Op: ir.OpLoad, Typ: vt, Args: []ir.Value{view}, Pos: e.Pos()})
		}
		return view
	case *ast.BinaryExpr:
		return b.binary(e)
	case *ast.UnaryExpr:
		x := b.expr(e.X)
		if e.Op == token.SUB {
			return b.emit(&ir.Instr{Op: ir.OpNeg, Typ: x.Type(), Args: []ir.Value{x}, Pos: e.Pos()})
		}
		return b.emit(&ir.Instr{Op: ir.OpNot, Typ: types.Scalar(ast.Bool), Args: []ir.Value{x}, Pos: e.Pos()})
	case *ast.CallExpr:
		return b.call(e)
	case *ast.StringLit:
		return &ir.ConstInt{} // only reachable after a type error
	}
	b.errs.Add(b.src.Name, b.src.Pos(e.Pos()), "internal: irbuild: unknown expression %T", e)
	return zeroValue(b.info.Exprs[e])
}

func (b *builder) binary(e *ast.BinaryExpr) ir.Value {
	if e.Op == token.LAND || e.Op == token.LOR {
		return b.shortCircuit(e)
	}
	x := b.expr(e.X)
	y := b.expr(e.Y)
	x, y = b.usualArith(x, y, e.Pos())
	var kind ir.BinKind
	switch e.Op {
	case token.ADD:
		kind = ir.BinAdd
	case token.SUB:
		kind = ir.BinSub
	case token.MUL:
		kind = ir.BinMul
	case token.QUO:
		kind = ir.BinDiv
	case token.REM:
		kind = ir.BinRem
	case token.EQL:
		kind = ir.BinEq
	case token.NEQ:
		kind = ir.BinNe
	case token.LSS:
		kind = ir.BinLt
	case token.LEQ:
		kind = ir.BinLe
	case token.GTR:
		kind = ir.BinGt
	case token.GEQ:
		kind = ir.BinGe
	default:
		b.errs.Add(b.src.Name, b.src.Pos(e.Pos()), "internal: irbuild: bad binary op %s", e.Op)
		return &ir.ConstInt{}
	}
	typ := x.Type()
	if kind.IsComparison() {
		typ = types.Scalar(ast.Bool)
	}
	return b.emit(&ir.Instr{Op: ir.OpBin, Bin: kind, Typ: typ, Args: []ir.Value{x, y}, Pos: e.Pos()})
}

// shortCircuit lowers && and || to control flow through a temporary slot;
// mem2reg then turns the slot into a phi.
func (b *builder) shortCircuit(e *ast.BinaryExpr) ir.Value {
	slot := len(b.f.SlotTypes)
	b.f.SlotTypes = append(b.f.SlotTypes, types.Scalar(ast.Bool))
	evalY := b.f.NewBlock("sc.rhs")
	join := b.f.NewBlock("sc.join")

	x := b.expr(e.X)
	b.emit(&ir.Instr{Op: ir.OpStoreSlot, Slot: slot, Args: []ir.Value{x}, Pos: e.Pos()})
	if e.Op == token.LAND {
		b.br(x, evalY, join, e.Pos())
	} else {
		b.br(x, join, evalY, e.Pos())
	}
	b.cur = evalY
	y := b.expr(e.Y)
	b.emit(&ir.Instr{Op: ir.OpStoreSlot, Slot: slot, Args: []ir.Value{y}, Pos: e.Y.Pos()})
	b.jump(join, e.Y.Pos())
	b.cur = join
	return b.emit(&ir.Instr{Op: ir.OpLoadSlot, Slot: slot, Typ: types.Scalar(ast.Bool), Pos: e.Pos()})
}

func (b *builder) call(e *ast.CallExpr) ir.Value {
	if types.IsBuiltin(e.Name) {
		return b.builtinCall(e)
	}
	callee := b.m.ByName[e.Name]
	fs := b.info.Funcs[e.Name]
	call := &ir.Instr{Op: ir.OpCall, Callee: callee, Typ: types.Scalar(fs.Ret), Pos: e.Pos()}
	for i, a := range e.Args {
		v := b.expr(a)
		if i < len(fs.Params) {
			v = b.convertTo(v, fs.Params[i].Type, a.Pos())
		}
		call.Args = append(call.Args, v)
	}
	return b.emit(call)
}

func (b *builder) builtinCall(e *ast.CallExpr) ir.Value {
	switch e.Name {
	case "int":
		return b.convertTo(b.expr(e.Args[0]), types.Scalar(ast.Int), e.Pos())
	case "float":
		return b.convertTo(b.expr(e.Args[0]), types.Scalar(ast.Float), e.Pos())
	case "print":
		for _, a := range e.Args {
			if s, ok := a.(*ast.StringLit); ok {
				b.emit(&ir.Instr{Op: ir.OpBuiltin, Builtin: "printstr", Aux: s.Value, Typ: types.Scalar(ast.Void), Pos: a.Pos()})
				continue
			}
			v := b.expr(a)
			b.emit(&ir.Instr{Op: ir.OpBuiltin, Builtin: "printval", Args: []ir.Value{v}, Typ: types.Scalar(ast.Void), Pos: a.Pos()})
		}
		b.emit(&ir.Instr{Op: ir.OpBuiltin, Builtin: "printnl", Typ: types.Scalar(ast.Void), Pos: e.Pos()})
		return &ir.ConstInt{}
	}
	call := &ir.Instr{Op: ir.OpBuiltin, Builtin: e.Name, Pos: e.Pos()}
	for _, a := range e.Args {
		call.Args = append(call.Args, b.expr(a))
	}
	// Result typing.
	switch e.Name {
	case "sqrt", "fabs", "floor", "exp", "log", "sin", "cos", "pow", "frand":
		call.Typ = types.Scalar(ast.Float)
		for i, a := range call.Args {
			call.Args[i] = b.convertTo(a, types.Scalar(ast.Float), e.Pos())
		}
	case "abs", "rand", "dim":
		call.Typ = types.Scalar(ast.Int)
	case "srand":
		call.Typ = types.Scalar(ast.Void)
	case "min", "max":
		if call.Args[0].Type().Elem == ast.Float || call.Args[1].Type().Elem == ast.Float {
			call.Typ = types.Scalar(ast.Float)
			call.Args[0] = b.convertTo(call.Args[0], types.Scalar(ast.Float), e.Pos())
			call.Args[1] = b.convertTo(call.Args[1], types.Scalar(ast.Float), e.Pos())
		} else {
			call.Typ = types.Scalar(ast.Int)
		}
	}
	return b.emit(call)
}

// RemoveUnreachable prunes blocks not reachable from the entry, repairing
// predecessor lists.
func RemoveUnreachable(f *ir.Func) {
	reach := map[*ir.Block]bool{}
	var stack []*ir.Block
	stack = append(stack, f.Entry())
	reach[f.Entry()] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*ir.Block
	for _, blk := range f.Blocks {
		if reach[blk] {
			kept = append(kept, blk)
		}
	}
	for _, blk := range kept {
		var preds []*ir.Block
		for _, p := range blk.Preds {
			if reach[p] {
				preds = append(preds, p)
			}
		}
		blk.Preds = preds
	}
	f.Blocks = kept
	for i, blk := range f.Blocks {
		blk.ID = i
	}
}

// Mem2Reg promotes local slots to SSA values, inserting phi nodes at
// iterated dominance frontiers and renaming along the dominator tree.
func Mem2Reg(f *ir.Func) {
	g := cfg.New(f)
	idom := g.Dominators()
	df := g.DominanceFrontiers(idom)
	domChildren := cfg.DomTree(idom)
	nslots := len(f.SlotTypes)

	// Collect defining blocks per slot.
	defBlocks := make([][]int, nslots)
	for bi, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			if ins.Op == ir.OpStoreSlot {
				defBlocks[ins.Slot] = append(defBlocks[ins.Slot], bi)
			}
		}
	}

	// Insert phis at iterated dominance frontiers.
	phis := make([]map[int]*ir.Instr, len(f.Blocks)) // block -> slot -> phi
	for i := range phis {
		phis[i] = make(map[int]*ir.Instr)
	}
	for slot := 0; slot < nslots; slot++ {
		work := append([]int(nil), defBlocks[slot]...)
		inWork := make(map[int]bool)
		hasPhi := make(map[int]bool)
		for _, w := range work {
			inWork[w] = true
		}
		for len(work) > 0 {
			u := work[len(work)-1]
			work = work[:len(work)-1]
			for _, v := range df[u] {
				if hasPhi[v] {
					continue
				}
				hasPhi[v] = true
				blk := f.Blocks[v]
				phi := &ir.Instr{
					Op:   ir.OpPhi,
					Slot: slot,
					Typ:  f.SlotTypes[slot],
					Args: make([]ir.Value, len(blk.Preds)),
				}
				phi.Block = blk
				phi.ID = f.NewValueID()
				phis[v][slot] = phi
				if !inWork[v] {
					inWork[v] = true
					work = append(work, v)
				}
			}
		}
	}

	// Rename along the dominator tree.
	replace := make(map[*ir.Instr]ir.Value)
	var resolve func(v ir.Value) ir.Value
	resolve = func(v ir.Value) ir.Value {
		for {
			ins, ok := v.(*ir.Instr)
			if !ok {
				return v
			}
			r, ok := replace[ins]
			if !ok {
				return v
			}
			v = r
		}
	}

	stacks := make([][]ir.Value, nslots)
	var rename func(bi int)
	rename = func(bi int) {
		blk := f.Blocks[bi]
		pushed := make([]int, 0, 4)

		for slot, phi := range phis[bi] {
			stacks[slot] = append(stacks[slot], phi)
			pushed = append(pushed, slot)
		}
		var keep []*ir.Instr
		for _, ins := range blk.Instrs {
			// Resolve operands first (defs dominate uses).
			for i, a := range ins.Args {
				ins.Args[i] = resolve(a)
			}
			switch ins.Op {
			case ir.OpLoadSlot:
				var cur ir.Value
				if s := stacks[ins.Slot]; len(s) > 0 {
					cur = s[len(s)-1]
				} else {
					cur = zeroValue(f.SlotTypes[ins.Slot])
				}
				replace[ins] = cur
				continue // drop the load
			case ir.OpStoreSlot:
				stacks[ins.Slot] = append(stacks[ins.Slot], ins.Args[0])
				pushed = append(pushed, ins.Slot)
				continue // drop the store
			}
			keep = append(keep, ins)
		}
		blk.Instrs = keep

		// Fill successor phi operands.
		for _, succ := range blk.Succs {
			si := g.Index(succ)
			// This block's position among succ's preds.
			for pi, p := range succ.Preds {
				if p != blk {
					continue
				}
				for slot, phi := range phis[si] {
					var cur ir.Value
					if s := stacks[slot]; len(s) > 0 {
						cur = s[len(s)-1]
					} else {
						cur = zeroValue(f.SlotTypes[slot])
					}
					phi.Args[pi] = cur
				}
			}
		}
		for _, c := range domChildren[bi] {
			rename(c)
		}
		// Pop in reverse.
		for i := len(pushed) - 1; i >= 0; i-- {
			s := stacks[pushed[i]]
			stacks[pushed[i]] = s[:len(s)-1]
		}
	}
	rename(0)

	// Splice phis at block starts and resolve any remaining operand
	// references (phi args pointing at dropped loads).
	for bi, blk := range f.Blocks {
		if len(phis[bi]) == 0 {
			continue
		}
		var ordered []*ir.Instr
		// Deterministic order: by slot.
		for slot := 0; slot < nslots; slot++ {
			if phi, ok := phis[bi][slot]; ok {
				ordered = append(ordered, phi)
			}
		}
		blk.Instrs = append(ordered, blk.Instrs...)
	}
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			for i, a := range ins.Args {
				ins.Args[i] = resolve(a)
			}
		}
	}
	PrunePhis(f)
}

// PrunePhis removes phi nodes whose values are used only by other dead phis
// (or by nothing), turning the non-pruned SSA that iterated-dominance-
// frontier insertion produces into pruned SSA. Dead phis carry no program
// value, but they would still execute: a dead header phi for a loop-body
// local reads the previous iteration's value through the shadow memory,
// manufacturing a loop-carried dependence that neither the program nor the
// static dependence analysis (internal/depcheck) has any use for.
func PrunePhis(f *ir.Func) {
	// live = phis referenced (transitively) by a non-phi instruction.
	live := make(map[*ir.Instr]bool)
	var work []*ir.Instr
	markLive := func(v ir.Value) {
		if phi, ok := v.(*ir.Instr); ok && phi.Op == ir.OpPhi && !live[phi] {
			live[phi] = true
			work = append(work, phi)
		}
	}
	for _, blk := range f.Blocks {
		for _, ins := range blk.Instrs {
			if ins.Op == ir.OpPhi {
				continue
			}
			for _, a := range ins.Args {
				markLive(a)
			}
		}
	}
	for len(work) > 0 {
		phi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range phi.Args {
			markLive(a)
		}
	}
	for _, blk := range f.Blocks {
		keep := blk.Instrs[:0]
		for _, ins := range blk.Instrs {
			if ins.Op == ir.OpPhi && !live[ins] {
				continue
			}
			keep = append(keep, ins)
		}
		blk.Instrs = keep
	}
}
