// Package analysis detects induction and reduction variables, the
// "easy-to-break" dependencies of the paper (§4.1). Kremlin breaks these
// statically-identified dependencies with a special shadow-memory update
// rule that ignores the dependency on the variable's old value; this
// package computes the annotations that rule consumes.
package analysis

import (
	"kremlin/internal/ast"
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
)

// Stats summarizes what the pass found, for reporting and tests.
type Stats struct {
	InductionPhis    int
	ReductionPhis    int
	MemoryReductions int
}

// Run annotates every function in m. It must run after mem2reg.
func Run(m *ir.Module) Stats {
	var st Stats
	for _, f := range m.Funcs {
		st.add(runFunc(f))
	}
	return st
}

func (s *Stats) add(o Stats) {
	s.InductionPhis += o.InductionPhis
	s.ReductionPhis += o.ReductionPhis
	s.MemoryReductions += o.MemoryReductions
}

// Init resets the dependence-breaking annotations of every instruction
// without performing detection — profiling an Init-only module measures
// CPA with induction/reduction dependencies left intact (the paper's §2.4
// ablation of what breaks without this analysis).
func Init(m *ir.Module) {
	for _, f := range m.Funcs {
		initFunc(f)
	}
}

func initFunc(f *ir.Func) {
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			ins.BreakArg = -1
			ins.Induction = false
			ins.Reduction = false
		}
	}
}

func runFunc(f *ir.Func) Stats {
	var st Stats
	initFunc(f)
	g := cfg.New(f)
	idom := g.Dominators()
	loops := g.Loops(idom)
	if len(loops) == 0 {
		return st
	}

	// Uses index: for each instruction, where is it used?
	uses := make(map[*ir.Instr][]*ir.Instr)
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			for _, a := range ins.Args {
				if ai, ok := a.(*ir.Instr); ok {
					uses[ai] = append(uses[ai], ins)
				}
			}
		}
	}

	for _, l := range loops {
		for _, ins := range l.Header.Instrs {
			if ins.Op != ir.OpPhi {
				continue
			}
			st.add(classifyPhi(f, l, ins, uses))
		}
		st.MemoryReductions += memoryReductions(l, uses)
	}
	return st
}

// classifyPhi decides whether a header phi is an induction or reduction
// variable of loop l and annotates the update instruction.
func classifyPhi(f *ir.Func, l *cfg.Loop, phi *ir.Instr, uses map[*ir.Instr][]*ir.Instr) Stats {
	var st Stats
	// Find the value flowing in along back edges.
	var backVal ir.Value
	nBack := 0
	for i, pred := range phi.Block.Preds {
		if l.Contains(pred) {
			backVal = phi.Args[i]
			nBack++
		}
	}
	if nBack != 1 {
		return st
	}
	upd, ok := backVal.(*ir.Instr)
	if !ok || upd.Op != ir.OpBin || !l.Contains(upd.Block) {
		return st
	}
	// Which operand is the carried value? Accept a direct phi operand.
	carried := -1
	for i, a := range upd.Args {
		if a == phi {
			carried = i
		}
	}

	if carried >= 0 {
		switch upd.Bin {
		case ir.BinAdd, ir.BinSub:
			if phi.Typ.Elem == ast.Int && isLoopInvariant(l, upd.Args[1-carried]) {
				// Basic induction variable: i = i + c.
				phi.Induction = true
				upd.Induction = true
				upd.BreakArg = carried
				st.InductionPhis++
				return st
			}
		}
	}

	// Reduction: acc = acc ⊕ x₁ ⊕ x₂ ... — the carried value may sit at
	// the bottom of an associative chain of same-family ops
	// ((acc + a) + b). Chase the chain for the op that consumes the phi.
	holder, hArg := chaseCarried(l, upd, phi, uses)
	if holder == nil {
		return st
	}
	// The accumulator must have no other in-loop use (partial sums escaping
	// would make order observable).
	for _, u := range uses[phi] {
		if u != holder && l.Contains(u.Block) {
			return st
		}
	}
	for _, u := range uses[upd] {
		if u != phi && l.Contains(u.Block) {
			return st
		}
	}
	phi.Reduction = true
	holder.Reduction = true
	holder.BreakArg = hArg
	st.ReductionPhis++
	return st
}

// reductionFamily returns whether chains of this operator may be broken
// (+ and - form one associative family; * another; mixing them is not
// order-safe, nor is mixing with anything else).
func reductionFamily(b ir.BinKind) int {
	switch b {
	case ir.BinAdd, ir.BinSub:
		return 1
	case ir.BinMul:
		return 2
	}
	return 0
}

// chaseCarried walks an associative chain of single-use ops of one family
// from top down and returns the op (and operand index) that directly
// consumes carried. Returns nil if carried is not reachable that way.
func chaseCarried(l *cfg.Loop, top *ir.Instr, carried ir.Value, uses map[*ir.Instr][]*ir.Instr) (*ir.Instr, int) {
	fam := reductionFamily(top.Bin)
	if fam == 0 {
		return nil, -1
	}
	cur := top
	for depth := 0; depth < 8; depth++ {
		for i, a := range cur.Args {
			if a == carried {
				if cur.Bin == ir.BinSub && i != 0 {
					return nil, -1 // x - acc: order matters
				}
				return cur, i
			}
		}
		// Descend into a same-family, single-use operand computed in-loop.
		var next *ir.Instr
		for _, a := range cur.Args {
			ai, ok := a.(*ir.Instr)
			if !ok || ai.Op != ir.OpBin || reductionFamily(ai.Bin) != fam || !l.Contains(ai.Block) {
				continue
			}
			if len(uses[ai]) != 1 {
				continue
			}
			if next != nil {
				return nil, -1 // ambiguous: both operands are chains
			}
			next = ai
		}
		if next == nil {
			return nil, -1
		}
		// Subtraction only breaks safely when the accumulator sits on the
		// left spine (a - acc is not a reduction of acc).
		if fam == 1 && cur.Bin == ir.BinSub && cur.Args[0] != ir.Value(next) {
			return nil, -1
		}
		cur = next
	}
	return nil, -1
}

// isLoopInvariant reports whether v is constant or defined outside l.
func isLoopInvariant(l *cfg.Loop, v ir.Value) bool {
	ins, ok := v.(*ir.Instr)
	if !ok {
		return true // constants
	}
	return !l.Contains(ins.Block)
}

// memoryReductions finds memory reduction patterns inside l:
//
//	store cell, (load cell') op x
//
// where cell and cell' are provably the same location — either the same
// scalar global, or literally the same cell-view instruction, which is
// what compound assignments (`a[i] += x`, including histogram updates with
// a computed index) lower to. The op's dependency on the load is broken.
func memoryReductions(l *cfg.Loop, uses map[*ir.Instr][]*ir.Instr) int {
	n := 0
	for _, b := range l.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op != ir.OpStore || ins.Reduction {
				continue
			}
			cell, ok := ins.Args[0].(*ir.Instr)
			if !ok {
				continue
			}
			op, ok := ins.Args[1].(*ir.Instr)
			if !ok || op.Op != ir.OpBin || reductionFamily(op.Bin) == 0 {
				continue
			}
			sameCell := func(ld *ir.Instr) bool {
				src, ok := ld.Args[0].(*ir.Instr)
				if !ok {
					return false
				}
				if src == cell { // compound assignment: shared cell view
					return true
				}
				return src.Op == ir.OpGlobal && cell.Op == ir.OpGlobal &&
					src.Global == cell.Global && !src.Global.IsArray()
			}
			if holder, i := chaseLoad(l, op, sameCell, uses); holder != nil {
				holder.Reduction = true
				holder.BreakArg = i
				ins.Reduction = true
				// Mark the accumulator load too: its read of the cell is the
				// broken old-value dependence, which the dependence tracer
				// (kremlib) and the static checker (depcheck) must both skip.
				if ld, ok := holder.Args[i].(*ir.Instr); ok && ld.Op == ir.OpLoad && l.Contains(ld.Block) {
					ld.Reduction = true
				}
				n++
			}
		}
	}
	return n
}

// chaseLoad walks an associative single-use chain from top down and
// returns the op (and operand index) whose operand is a load matching the
// predicate.
func chaseLoad(l *cfg.Loop, top *ir.Instr, match func(*ir.Instr) bool, uses map[*ir.Instr][]*ir.Instr) (*ir.Instr, int) {
	fam := reductionFamily(top.Bin)
	if fam == 0 {
		return nil, -1
	}
	cur := top
	for depth := 0; depth < 8; depth++ {
		for i, a := range cur.Args {
			if ld, ok := a.(*ir.Instr); ok && ld.Op == ir.OpLoad && match(ld) {
				if cur.Bin == ir.BinSub && i != 0 {
					return nil, -1 // x - acc: order matters
				}
				return cur, i
			}
		}
		var next *ir.Instr
		for _, a := range cur.Args {
			ai, ok := a.(*ir.Instr)
			if !ok || ai.Op != ir.OpBin || reductionFamily(ai.Bin) != fam || !l.Contains(ai.Block) {
				continue
			}
			if len(uses[ai]) != 1 {
				continue
			}
			if next != nil {
				return nil, -1
			}
			next = ai
		}
		if next == nil {
			return nil, -1
		}
		if fam == 1 && cur.Bin == ir.BinSub && cur.Args[0] != ir.Value(next) {
			return nil, -1
		}
		cur = next
	}
	return nil, -1
}
