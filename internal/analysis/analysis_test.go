package analysis

import (
	"testing"

	"kremlin/internal/ir"
	"kremlin/internal/irbuild"
	"kremlin/internal/parser"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

func analyze(t *testing.T, src string) (*ir.Module, Stats) {
	t.Helper()
	errs := &source.ErrorList{}
	file := source.NewFile("t.kr", src)
	tree := parser.Parse(file, errs)
	info := types.Check(tree, file, errs)
	if errs.HasErrors() {
		t.Fatalf("frontend: %v", errs.Err())
	}
	mod := irbuild.Build(tree, info, file, errs)
	if errs.HasErrors() {
		t.Fatalf("build: %v", errs.Err())
	}
	return mod, Run(mod)
}

func TestBasicInduction(t *testing.T) {
	_, st := analyze(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		s += i;
	}
	return s;
}`)
	if st.InductionPhis != 1 {
		t.Errorf("induction phis = %d, want 1", st.InductionPhis)
	}
	if st.ReductionPhis != 1 { // s += i is an SSA reduction
		t.Errorf("reduction phis = %d, want 1", st.ReductionPhis)
	}
}

func TestStrideAndDownwardInduction(t *testing.T) {
	_, st := analyze(t, `
int main() {
	int a = 0;
	for (int i = 20; i > 0; i -= 3) { a++; }
	for (int j = 0; j < 30; j += 5) { a++; }
	return a;
}`)
	// i and j are inductions; `a++` in each loop is also a basic induction
	// variable (int accumulator with an invariant step), so 4 total.
	if st.InductionPhis != 4 {
		t.Errorf("induction phis = %d, want 4", st.InductionPhis)
	}
}

func TestNonInvariantStepNotInduction(t *testing.T) {
	mod, st := analyze(t, `
int main() {
	int x = 1;
	for (int i = 0; i < 100; i = i + x) {
		x = x + 1;
	}
	return x;
}`)
	_ = mod
	// x (step 1) is an induction variable; i (step x, loop-variant) is not.
	if st.InductionPhis != 1 {
		t.Errorf("induction phis = %d, want 1 (only x; i's step is loop-variant)", st.InductionPhis)
	}
}

func TestFloatAccumulatorIsReductionNotInduction(t *testing.T) {
	_, st := analyze(t, `
float a[10];
int main() {
	float s = 0.0;
	for (int i = 0; i < 10; i++) {
		s = s + a[i];
	}
	print(s);
	return 0;
}`)
	if st.ReductionPhis != 1 {
		t.Errorf("reduction phis = %d, want 1", st.ReductionPhis)
	}
}

func TestProductReduction(t *testing.T) {
	_, st := analyze(t, `
int main() {
	float p = 1.0;
	for (int i = 1; i < 10; i++) {
		p = p * 1.5;
	}
	print(p);
	return 0;
}`)
	if st.ReductionPhis != 1 {
		t.Errorf("product reduction not detected: %+v", st)
	}
}

func TestAccumulatorWithOtherUseNotReduction(t *testing.T) {
	_, st := analyze(t, `
float a[10];
int main() {
	float s = 0.0;
	for (int i = 0; i < 10; i++) {
		a[i] = s;     // partial sums consumed: order matters
		s = s + 1.5;
	}
	print(s);
	return 0;
}`)
	if st.ReductionPhis != 0 {
		t.Errorf("reduction phis = %d, want 0 (partial sums escape)", st.ReductionPhis)
	}
}

func TestGlobalScalarMemoryReduction(t *testing.T) {
	_, st := analyze(t, `
float total;
float a[10];
int main() {
	for (int i = 0; i < 10; i++) {
		total = total + a[i];
	}
	print(total);
	return 0;
}`)
	if st.MemoryReductions != 1 {
		t.Errorf("memory reductions = %d, want 1", st.MemoryReductions)
	}
}

func TestCompoundArrayElementReduction(t *testing.T) {
	mod, st := analyze(t, `
float hist[16];
int keys[100];
int main() {
	for (int i = 0; i < 100; i++) {
		hist[keys[i] % 16] += 1.0;
	}
	print(hist[0]);
	return 0;
}`)
	if st.MemoryReductions != 1 {
		t.Errorf("memory reductions = %d, want 1 (histogram)", st.MemoryReductions)
	}
	// The annotated op must break exactly its load operand.
	found := false
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpBin && ins.Reduction {
					found = true
					if ins.BreakArg < 0 || ins.BreakArg >= len(ins.Args) {
						t.Errorf("BreakArg = %d", ins.BreakArg)
					}
					ld, ok := ins.Args[ins.BreakArg].(*ir.Instr)
					if !ok || ld.Op != ir.OpLoad {
						t.Errorf("broken operand is %v, want load", ins.Args[ins.BreakArg])
					}
				}
			}
		}
	}
	if !found {
		t.Error("no annotated reduction op")
	}
}

func TestRecurrenceNotBroken(t *testing.T) {
	// b[i] = b[i-1] * x is a true loop-carried dependence: the load and
	// store cells differ, so nothing may be broken.
	_, st := analyze(t, `
float b[100];
int main() {
	for (int i = 1; i < 100; i++) {
		b[i] = b[i-1] * 0.5;
	}
	print(b[99]);
	return 0;
}`)
	if st.MemoryReductions != 0 {
		t.Errorf("memory reductions = %d, want 0 (recurrence)", st.MemoryReductions)
	}
}

func TestDigestChainNotReduction(t *testing.T) {
	// cur = (cur*13 + k) % m is order-dependent through the indirect phi
	// chain; the conservative detector must leave it alone.
	_, st := analyze(t, `
int keys[50];
int main() {
	int cur = 0;
	for (int i = 0; i < 50; i++) {
		cur = (cur * 13 + keys[i]) % 65536;
	}
	return cur;
}`)
	if st.ReductionPhis != 0 {
		t.Errorf("reduction phis = %d, want 0 (digest chain)", st.ReductionPhis)
	}
}

func TestBreakArgInitialized(t *testing.T) {
	mod, _ := analyze(t, `
int main() {
	int x = 1;
	if (x > 0) { x = 2; }
	return x;
}`)
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if !ins.Reduction && !ins.Induction && ins.BreakArg != -1 {
					t.Errorf("unannotated %s has BreakArg %d", ins.Op, ins.BreakArg)
				}
			}
		}
	}
}

func TestMultiTermReductionChain(t *testing.T) {
	// acc = acc + a[i] + b[i]: the accumulator sits below an associative
	// chain; the chase must still find and break it.
	_, st := analyze(t, `
float a[10];
float b[10];
int main() {
	float s = 0.0;
	for (int i = 0; i < 10; i++) {
		s = s + a[i] + b[i];
	}
	print(s);
	return 0;
}`)
	if st.ReductionPhis != 1 {
		t.Errorf("reduction phis = %d, want 1 (chain chase)", st.ReductionPhis)
	}
}

func TestMultiTermMemoryReduction(t *testing.T) {
	_, st := analyze(t, `
float total;
float a[10];
float b[10];
int main() {
	for (int i = 0; i < 10; i++) {
		total = total + a[i] + b[i] + 1.0;
	}
	print(total);
	return 0;
}`)
	if st.MemoryReductions != 1 {
		t.Errorf("memory reductions = %d, want 1 (chain chase)", st.MemoryReductions)
	}
}

func TestMixedFamilyChainNotBroken(t *testing.T) {
	// s = s * 2.0 + a[i] mixes * and +: order-dependent, must not break.
	_, st := analyze(t, `
float a[10];
int main() {
	float s = 1.0;
	for (int i = 0; i < 10; i++) {
		s = s * 2.0 + a[i];
	}
	print(s);
	return 0;
}`)
	if st.ReductionPhis != 0 {
		t.Errorf("reduction phis = %d, want 0 (mixed * and +)", st.ReductionPhis)
	}
}

func TestRightSubtractionNotBroken(t *testing.T) {
	// s = a[i] - s is not a reduction of s (order matters).
	_, st := analyze(t, `
float a[10];
int main() {
	float s = 0.0;
	for (int i = 0; i < 10; i++) {
		s = a[i] - s;
	}
	print(s);
	return 0;
}`)
	if st.ReductionPhis != 0 {
		t.Errorf("reduction phis = %d, want 0 (right-hand subtraction)", st.ReductionPhis)
	}
}

func TestNegativeStepInduction(t *testing.T) {
	// A downward i-- counter is a basic induction variable (step -1); the
	// phi and its update op must both be annotated, with the update
	// breaking exactly its carried operand.
	mod, st := analyze(t, `
int a[32];
int main() {
	for (int i = 31; i >= 0; i--) {
		a[i] = i;
	}
	return a[0];
}`)
	if st.InductionPhis != 1 {
		t.Errorf("induction phis = %d, want 1", st.InductionPhis)
	}
	phis, updates := 0, 0
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if !ins.Induction {
					continue
				}
				if ins.Op == ir.OpPhi {
					phis++
				} else {
					updates++
					if ins.BreakArg < 0 || ins.BreakArg >= len(ins.Args) {
						t.Errorf("induction update BreakArg = %d", ins.BreakArg)
					} else if carried, ok := ins.Args[ins.BreakArg].(*ir.Instr); !ok || carried.Op != ir.OpPhi {
						t.Errorf("broken operand of induction update is %v, want the phi", ins.Args[ins.BreakArg])
					}
				}
			}
		}
	}
	if phis != 1 || updates != 1 {
		t.Errorf("annotated %d phis and %d updates, want 1 and 1", phis, updates)
	}
}

func TestNestedReductions(t *testing.T) {
	// A row sum feeding an outer total: both accumulators are independent
	// reductions at their own loop level, on top of the two loop counters.
	_, st := analyze(t, `
float m[64];
int main() {
	float total = 0.0;
	for (int i = 0; i < 8; i++) {
		float row = 0.0;
		for (int j = 0; j < 8; j++) {
			row = row + m[i*8+j];
		}
		total = total + row;
	}
	print(total);
	return 0;
}`)
	if st.ReductionPhis != 2 {
		t.Errorf("reduction phis = %d, want 2 (row and total)", st.ReductionPhis)
	}
	if st.InductionPhis != 2 {
		t.Errorf("induction phis = %d, want 2 (i and j)", st.InductionPhis)
	}
}

func TestBranchGuardedReductionNotBroken(t *testing.T) {
	// s is only updated when the guard holds, so the back edge carries a
	// merge phi, not the update op; the conservative detector must keep
	// the dependence (breaking it would mis-handle partial updates).
	_, st := analyze(t, `
float a[32];
int main() {
	float s = 0.0;
	for (int i = 0; i < 32; i++) {
		if (a[i] > 0.0) {
			s = s + a[i];
		}
	}
	print(s);
	return 0;
}`)
	if st.ReductionPhis != 0 {
		t.Errorf("reduction phis = %d, want 0 (update is branch-guarded)", st.ReductionPhis)
	}
}

func TestInductionReadAfterLoop(t *testing.T) {
	// The counter escapes the loop: breaking the carried dependence only
	// affects critical-path accounting, never values, so i stays an
	// induction variable and the exit value remains readable.
	_, st := analyze(t, `
int main() {
	int i;
	int n = 0;
	for (i = 0; i < 10; i++) {
		n = n + 2;
	}
	return i + n;
}`)
	if st.InductionPhis < 1 {
		t.Errorf("induction phis = %d, want >= 1 (i escapes but is still induction)", st.InductionPhis)
	}
}
