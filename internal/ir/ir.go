// Package ir defines the typed three-address intermediate representation the
// Kr compiler lowers to, analyzes, instruments, and interprets. After the
// mem2reg pass (package irbuild) all scalar locals are in SSA form, which —
// exactly as in the paper's LLVM-based pipeline — removes false (anti and
// output) register dependencies from critical path analysis for free.
package ir

import (
	"fmt"
	"strings"

	"kremlin/internal/ast"
	"kremlin/internal/types"
)

// Op enumerates IR instruction opcodes.
type Op int

// The instruction opcodes.
const (
	OpInvalid Op = iota

	OpParam   // function parameter (pseudo-instruction in the entry block)
	OpBin     // binary arithmetic/comparison/logic
	OpNeg     // arithmetic negation
	OpNot     // logical not
	OpConvert // int<->float conversion
	OpPhi     // SSA phi; Args align with Block.Preds

	OpLoadSlot  // read scalar local slot (pre-SSA only; removed by mem2reg)
	OpStoreSlot // write scalar local slot (pre-SSA only; removed by mem2reg)

	OpAllocArray // allocate a local array; Args are the dimension extents
	OpGlobal     // reference a global (scalar cell or array descriptor)
	OpView       // index an array: Args[0] array, Args[1] index -> sub-view
	OpLoad       // load scalar from a 0-dim view / global scalar cell
	OpStore      // store Args[1] into cell Args[0]

	OpCall    // call a user function
	OpBuiltin // call a builtin (sqrt, rand, print, dim, ...)

	OpBr   // conditional branch: Args[0] cond; Targets[0] then, Targets[1] else
	OpJump // unconditional branch: Targets[0]
	OpRet  // return, optional Args[0]
)

var opNames = [...]string{
	OpInvalid: "invalid", OpParam: "param", OpBin: "bin", OpNeg: "neg", OpNot: "not",
	OpConvert: "convert", OpPhi: "phi", OpLoadSlot: "loadslot", OpStoreSlot: "storeslot",
	OpAllocArray: "allocarray", OpGlobal: "global", OpView: "view", OpLoad: "load",
	OpStore: "store", OpCall: "call", OpBuiltin: "builtin", OpBr: "br", OpJump: "jump", OpRet: "ret",
}

func (o Op) String() string { return opNames[o] }

// BinKind enumerates the binary operators of OpBin.
type BinKind int

// Binary operator kinds.
const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinAnd // non-short-circuit bool and (short-circuit is lowered to control flow)
	BinOr
)

var binNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func (b BinKind) String() string { return binNames[b] }

// IsComparison reports whether b yields a bool from numeric operands.
func (b BinKind) IsComparison() bool { return b >= BinEq && b <= BinGe }

// Value is an IR operand: an instruction result or a constant.
type Value interface {
	Type() types.Type
	Name() string
}

// ConstInt is an integer constant operand.
type ConstInt struct{ V int64 }

// ConstFloat is a floating-point constant operand.
type ConstFloat struct{ V float64 }

// ConstBool is a boolean constant operand.
type ConstBool struct{ V bool }

// Type returns int.
func (c *ConstInt) Type() types.Type { return types.Scalar(ast.Int) }

// Type returns float.
func (c *ConstFloat) Type() types.Type { return types.Scalar(ast.Float) }

// Type returns bool.
func (c *ConstBool) Type() types.Type { return types.Scalar(ast.Bool) }

func (c *ConstInt) Name() string   { return fmt.Sprintf("%d", c.V) }
func (c *ConstFloat) Name() string { return fmt.Sprintf("%g", c.V) }
func (c *ConstBool) Name() string  { return fmt.Sprintf("%t", c.V) }

// Instr is a single IR instruction. A uniform struct (rather than one type
// per opcode) keeps the interpreter dispatch loop simple and fast.
type Instr struct {
	Op      Op
	Bin     BinKind // for OpBin
	Typ     types.Type
	Args    []Value
	Slot    int      // OpLoadSlot/OpStoreSlot: local slot index; OpParam: param index
	Global  *Global  // OpGlobal
	Callee  *Func    // OpCall
	Builtin string   // OpBuiltin
	Targets []*Block // OpBr/OpJump successors
	Aux     string   // OpBuiltin printstr: the literal text
	Block   *Block   // parent block
	ID      int      // dense per-function value numbering
	Pos     int      // source byte offset

	// Analysis annotations consumed by the instrumentation pass/runtime.
	Induction bool // phi of a detected induction variable (dependence broken)
	Reduction bool // arithmetic op of a detected reduction chain (dependence broken)
	// BreakArg is the operand index whose dependency the critical-path
	// runtime must ignore (the induction/reduction "old value"), or -1.
	// The zero value means "no annotation yet"; the analysis pass
	// initializes it for every instruction.
	BreakArg int
}

// Type returns the instruction's result type.
func (i *Instr) Type() types.Type { return i.Typ }

// Name returns the SSA name of the instruction's result, e.g. "%12".
func (i *Instr) Name() string { return fmt.Sprintf("%%%d", i.ID) }

// IsTerminator reports whether the instruction ends a basic block.
func (i *Instr) IsTerminator() bool { return i.Op == OpBr || i.Op == OpJump || i.Op == OpRet }

// HasResult reports whether the instruction produces a value.
func (i *Instr) HasResult() bool {
	switch i.Op {
	case OpStoreSlot, OpStore, OpBr, OpJump, OpRet:
		return false
	case OpBuiltin:
		return i.Builtin != "print" && i.Builtin != "srand"
	case OpCall:
		return i.Callee.Ret != ast.Void
	}
	return true
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	ID     int
	Name   string
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block
	Func   *Func

	// LoopID is the ID of the innermost loop region whose body contains this
	// block, or -1. Filled in by the regions package.
	LoopID int
}

func (b *Block) String() string { return fmt.Sprintf("b%d.%s", b.ID, b.Name) }

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Global is a module-level variable. Scalars occupy one cell; arrays have
// constant extents fixed at compile time.
type Global struct {
	Name  string
	Elem  ast.BasicKind
	Dims  []int64 // nil for scalars
	Init  Value   // optional scalar initializer (constant)
	Index int
}

// IsArray reports whether g is an array global.
func (g *Global) IsArray() bool { return len(g.Dims) > 0 }

// Func is an IR function.
type Func struct {
	Name      string
	Ret       ast.BasicKind
	Params    []*Instr // OpParam instructions, also present in Entry
	Blocks    []*Block
	NumSlots  int          // scalar+array local slot count before mem2reg
	SlotTypes []types.Type // type of each local slot
	Module    *Module
	Pos       int // source offset of the declaration
	EndPos    int
	nextID    int
	nextBlk   int
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a fresh block named name to f.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: f.nextBlk, Name: name, Func: f, LoopID: -1}
	f.nextBlk++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewValueID hands out the next dense instruction ID.
func (f *Func) NewValueID() int {
	id := f.nextID
	f.nextID++
	return id
}

// NumValues returns the number of value IDs allocated so far.
func (f *Func) NumValues() int { return f.nextID }

// SetIDBounds restores the fresh-ID counters after deserialization (the
// irbundle decoder assembles Funcs field-by-field), so any later NewBlock
// or NewValueID can never reuse an existing ID.
func (f *Func) SetIDBounds(numValues, numBlocks int) {
	f.nextID = numValues
	f.nextBlk = numBlocks
}

// Module is a compiled Kr program.
type Module struct {
	Name    string
	Funcs   []*Func
	ByName  map[string]*Func
	Globals []*Global
}

// Main returns the program entry function.
func (m *Module) Main() *Func { return m.ByName["main"] }

// AddEdge records a CFG edge from a to b.
func AddEdge(a, b *Block) {
	a.Succs = append(a.Succs, b)
	b.Preds = append(b.Preds, a)
}

// String renders the module as readable IR text, used by tests and debugging.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s %s %v\n", g.Name, g.Elem, g.Dims)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function as readable IR text.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", p.Name(), p.Typ)
	}
	fmt.Fprintf(&sb, ") %s {\n", f.Ret)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		if len(b.Preds) > 0 {
			sb.WriteString(" ; preds=")
			for i, p := range b.Preds {
				if i > 0 {
					sb.WriteString(",")
				}
				sb.WriteString(p.String())
			}
		}
		sb.WriteString("\n")
		for _, ins := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(ins.text())
			sb.WriteString("\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func (i *Instr) text() string {
	var sb strings.Builder
	if i.HasResult() {
		fmt.Fprintf(&sb, "%s = ", i.Name())
	}
	sb.WriteString(i.Op.String())
	if i.Op == OpBin {
		fmt.Fprintf(&sb, "(%s)", i.Bin)
	}
	if i.Op == OpGlobal {
		fmt.Fprintf(&sb, " @%s", i.Global.Name)
	}
	if i.Op == OpCall {
		fmt.Fprintf(&sb, " %s", i.Callee.Name)
	}
	if i.Op == OpBuiltin {
		fmt.Fprintf(&sb, " %s", i.Builtin)
	}
	if i.Op == OpLoadSlot || i.Op == OpStoreSlot || i.Op == OpParam {
		fmt.Fprintf(&sb, " slot%d", i.Slot)
	}
	for _, a := range i.Args {
		fmt.Fprintf(&sb, " %s", a.Name())
	}
	for _, t := range i.Targets {
		fmt.Fprintf(&sb, " ->%s", t)
	}
	if i.Induction {
		sb.WriteString(" !induction")
	}
	if i.Reduction {
		sb.WriteString(" !reduction")
	}
	return sb.String()
}

// Latency returns the abstract cost of executing i, in "work units". This is
// the paper's notion of per-operation latency used for both the work counter
// and availability-time updates in critical path analysis.
func (i *Instr) Latency() uint64 {
	switch i.Op {
	case OpParam, OpPhi, OpGlobal, OpJump:
		return 0
	case OpBin:
		switch i.Bin {
		case BinMul:
			if i.Typ.Elem == ast.Float {
				return 3
			}
			return 2
		case BinDiv, BinRem:
			return 8
		default:
			return 1
		}
	case OpNeg, OpNot, OpConvert:
		return 1
	case OpView:
		return 1 // address arithmetic
	case OpLoad, OpLoadSlot:
		return 2
	case OpStore, OpStoreSlot:
		return 1
	case OpAllocArray:
		return 1
	case OpCall:
		return 1
	case OpBuiltin:
		switch i.Builtin {
		case "sqrt", "exp", "log", "sin", "cos", "pow":
			return 12
		case "rand", "frand":
			return 4
		case "print", "srand", "dim":
			return 1
		default:
			return 1
		}
	case OpBr:
		return 1
	case OpRet:
		return 1
	}
	return 1
}
