package ir

import (
	"strings"
	"testing"

	"kremlin/internal/ast"
	"kremlin/internal/types"
)

func TestConstValues(t *testing.T) {
	ci := &ConstInt{V: -7}
	cf := &ConstFloat{V: 2.5}
	cb := &ConstBool{V: true}
	if ci.Type() != types.Scalar(ast.Int) || ci.Name() != "-7" {
		t.Errorf("ConstInt: %v %q", ci.Type(), ci.Name())
	}
	if cf.Type() != types.Scalar(ast.Float) || cf.Name() != "2.5" {
		t.Errorf("ConstFloat: %v %q", cf.Type(), cf.Name())
	}
	if cb.Type() != types.Scalar(ast.Bool) || cb.Name() != "true" {
		t.Errorf("ConstBool: %v %q", cb.Type(), cb.Name())
	}
}

func TestHasResult(t *testing.T) {
	cases := []struct {
		ins  *Instr
		want bool
	}{
		{&Instr{Op: OpBin}, true},
		{&Instr{Op: OpLoad}, true},
		{&Instr{Op: OpStore}, false},
		{&Instr{Op: OpBr}, false},
		{&Instr{Op: OpJump}, false},
		{&Instr{Op: OpRet}, false},
		{&Instr{Op: OpBuiltin, Builtin: "sqrt"}, true},
		{&Instr{Op: OpBuiltin, Builtin: "print"}, false},
		{&Instr{Op: OpBuiltin, Builtin: "srand"}, false},
		{&Instr{Op: OpCall, Callee: &Func{Ret: ast.Void}}, false},
		{&Instr{Op: OpCall, Callee: &Func{Ret: ast.Int}}, true},
	}
	for _, c := range cases {
		if got := c.ins.HasResult(); got != c.want {
			t.Errorf("%v.HasResult() = %t, want %t", c.ins.Op, got, c.want)
		}
	}
}

func TestIsTerminator(t *testing.T) {
	for _, op := range []Op{OpBr, OpJump, OpRet} {
		if !(&Instr{Op: op}).IsTerminator() {
			t.Errorf("%v should be a terminator", op)
		}
	}
	for _, op := range []Op{OpBin, OpLoad, OpStore, OpPhi, OpCall} {
		if (&Instr{Op: op}).IsTerminator() {
			t.Errorf("%v should not be a terminator", op)
		}
	}
}

func TestLatencies(t *testing.T) {
	// Zero-latency pseudo-ops: their execution does not represent machine
	// work.
	for _, op := range []Op{OpParam, OpPhi, OpGlobal, OpJump} {
		if l := (&Instr{Op: op}).Latency(); l != 0 {
			t.Errorf("%v latency = %d, want 0", op, l)
		}
	}
	// Relative costs: transcendentals > division > multiplication > add.
	sqrt := (&Instr{Op: OpBuiltin, Builtin: "sqrt"}).Latency()
	div := (&Instr{Op: OpBin, Bin: BinDiv}).Latency()
	mul := (&Instr{Op: OpBin, Bin: BinMul, Typ: types.Scalar(ast.Int)}).Latency()
	add := (&Instr{Op: OpBin, Bin: BinAdd}).Latency()
	if !(sqrt > div && div > mul && mul > add && add >= 1) {
		t.Errorf("latency ordering broken: sqrt=%d div=%d mul=%d add=%d", sqrt, div, mul, add)
	}
	fmul := (&Instr{Op: OpBin, Bin: BinMul, Typ: types.Scalar(ast.Float)}).Latency()
	if fmul < mul {
		t.Errorf("float mul (%d) should cost at least int mul (%d)", fmul, mul)
	}
}

func TestBinKindComparison(t *testing.T) {
	for _, b := range []BinKind{BinEq, BinNe, BinLt, BinLe, BinGt, BinGe} {
		if !b.IsComparison() {
			t.Errorf("%v should be a comparison", b)
		}
	}
	for _, b := range []BinKind{BinAdd, BinMul, BinRem, BinAnd} {
		if b.IsComparison() {
			t.Errorf("%v should not be a comparison", b)
		}
	}
}

func TestFuncBlocksAndIDs(t *testing.T) {
	f := &Func{Name: "t"}
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("next")
	if b0.ID != 0 || b1.ID != 1 {
		t.Errorf("block IDs %d,%d", b0.ID, b1.ID)
	}
	if f.Entry() != b0 {
		t.Error("Entry() wrong")
	}
	if f.NewValueID() != 0 || f.NewValueID() != 1 || f.NumValues() != 2 {
		t.Error("value ID allocation broken")
	}
	AddEdge(b0, b1)
	if len(b0.Succs) != 1 || b0.Succs[0] != b1 || len(b1.Preds) != 1 || b1.Preds[0] != b0 {
		t.Error("AddEdge wiring wrong")
	}
}

func TestTerminatorDetection(t *testing.T) {
	f := &Func{Name: "t"}
	b := f.NewBlock("b")
	if b.Terminator() != nil {
		t.Error("empty block has no terminator")
	}
	b.Instrs = append(b.Instrs, &Instr{Op: OpBin})
	if b.Terminator() != nil {
		t.Error("non-terminator tail must return nil")
	}
	ret := &Instr{Op: OpRet}
	b.Instrs = append(b.Instrs, ret)
	if b.Terminator() != ret {
		t.Error("terminator not found")
	}
}

func TestGlobalIsArray(t *testing.T) {
	if (&Global{Name: "s"}).IsArray() {
		t.Error("scalar global misreported as array")
	}
	if !(&Global{Name: "a", Dims: []int64{4}}).IsArray() {
		t.Error("array global misreported as scalar")
	}
}

func TestInstrText(t *testing.T) {
	f := &Func{Name: "t"}
	b := f.NewBlock("entry")
	g := &Global{Name: "acc"}
	ins := &Instr{Op: OpBin, Bin: BinAdd, ID: 3, Typ: types.Scalar(ast.Int),
		Args: []Value{&ConstInt{V: 1}, &ConstInt{V: 2}}, Block: b}
	b.Instrs = append(b.Instrs, ins,
		&Instr{Op: OpGlobal, Global: g, ID: 4, Block: b},
		&Instr{Op: OpRet, Block: b})
	f.Ret = ast.Void
	s := f.String()
	for _, frag := range []string{"%3 = bin(+) 1 2", "@acc", "ret"} {
		if !strings.Contains(s, frag) {
			t.Errorf("dump missing %q in:\n%s", frag, s)
		}
	}
}
