package parallel

import (
	"testing"

	"kremlin/internal/profile"
)

func TestLevelCosts(t *testing.T) {
	// depthWork[d] = work run under d active regions; an instruction at
	// depth d updates levels [0, d).
	costs := LevelCosts([]uint64{5, 10, 20, 30}, 3)
	want := []uint64{60, 50, 30}
	for l, w := range want {
		if costs[l] != w {
			t.Errorf("cost[%d] = %d, want %d", l, costs[l], w)
		}
	}
}

func checkPartition(t *testing.T, wins []Window, levels int) {
	t.Helper()
	if wins[0].Lo != 0 || wins[len(wins)-1].Hi != levels {
		t.Fatalf("windows %v do not cover [0,%d)", wins, levels)
	}
	for i := 1; i < len(wins); i++ {
		if wins[i].Lo != wins[i-1].Hi {
			t.Fatalf("windows %v are not contiguous", wins)
		}
	}
	for _, w := range wins {
		if w.Lo >= w.Hi {
			t.Fatalf("empty window in %v", wins)
		}
	}
}

func TestBalancedWindowsUniform(t *testing.T) {
	costs := []uint64{10, 10, 10, 10, 10, 10, 10, 10}
	wins := BalancedWindows(costs, 4)
	checkPartition(t, wins, len(costs))
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4: %v", len(wins), wins)
	}
	for _, w := range wins {
		if w.Hi-w.Lo != 2 {
			t.Errorf("uniform costs should split evenly, got %v", wins)
		}
	}
}

func TestBalancedWindowsSkewed(t *testing.T) {
	// Nearly all tracking cost sits at level 0 (shallow programs under a
	// deep default cap): the first window must stay narrow.
	costs := []uint64{1000, 10, 5, 3, 2, 1}
	wins := BalancedWindows(costs, 3)
	checkPartition(t, wins, len(costs))
	if wins[0].Hi != 1 {
		t.Errorf("skewed costs: first window %v should be [0,1)", wins[0])
	}
}

func TestBalancedWindowsMoreShardsThanLevels(t *testing.T) {
	wins := BalancedWindows([]uint64{7, 7}, 8)
	checkPartition(t, wins, 2)
	if len(wins) != 2 {
		t.Fatalf("expected 2 windows for 2 levels, got %v", wins)
	}
}

// buildShardProfiles hand-builds the two windowed views of one execution:
//
//	root (static 1, work 100)
//	├── loopA ×2 (static 2, work 30 each)
//	└── loopB ×1 (static 3, work 40)
//
// Shard 0 owns level 0 (root CP real, children fall back cp = work);
// shard 1 owns level 1 (children CP real, root falls back cp = work).
func buildShardProfiles() ([]*profile.Profile, []Window, *profile.Profile) {
	shard0 := profile.New()
	a0 := shard0.Dict.Intern(2, 30, 30, nil) // out of window: cp = work
	b0 := shard0.Dict.Intern(3, 40, 40, nil)
	r0 := shard0.Dict.Intern(1, 100, 55, map[int32]int64{a0: 2, b0: 1})
	shard0.AddRoot(r0)
	shard0.Dict.RawCount = 4

	shard1 := profile.New()
	b1 := shard1.Dict.Intern(3, 40, 8, nil) // in window: real CP
	a1 := shard1.Dict.Intern(2, 30, 5, nil)
	// Children are an execution-ordered sequence and must list the same
	// instance order in every shard: loopA ×2 then loopB.
	r1 := shard1.Dict.InternRuns(1, 100, 100, []profile.Child{{Char: a1, Count: 2}, {Char: b1, Count: 1}})
	shard1.AddRoot(r1)
	shard1.Dict.RawCount = 4

	want := profile.New()
	aw := want.Dict.Intern(2, 30, 5, nil)
	bw := want.Dict.Intern(3, 40, 8, nil)
	rw := want.Dict.Intern(1, 100, 55, map[int32]int64{aw: 2, bw: 1})
	want.AddRoot(rw)
	want.Dict.RawCount = 4

	return []*profile.Profile{shard0, shard1}, []Window{{0, 1}, {1, 2}}, want
}

func TestStitchTakesCPFromOwningShard(t *testing.T) {
	profs, wins, want := buildShardProfiles()
	got, err := Stitch(profs, wins)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dict.RawCount != want.Dict.RawCount {
		t.Errorf("RawCount = %d, want %d", got.Dict.RawCount, want.Dict.RawCount)
	}
	if len(got.Roots) != 1 {
		t.Fatalf("roots = %v", got.Roots)
	}
	root := got.Dict.Entries[got.Roots[0]]
	if root.StaticID != 1 || root.Work != 100 || root.CP != 55 {
		t.Errorf("root = %+v, want static 1 work 100 cp 55 (owner shard 0)", root)
	}
	cps := map[int32]uint64{}
	for _, k := range root.Children {
		e := got.Dict.Entries[k.Char]
		cps[e.StaticID] = e.CP
		if e.StaticID == 2 && k.Count != 2 {
			t.Errorf("loopA count = %d, want 2", k.Count)
		}
	}
	if cps[2] != 5 || cps[3] != 8 {
		t.Errorf("child CPs = %v, want loopA 5, loopB 8 (owner shard 1)", cps)
	}
}

func TestStitchSingleShardPassthrough(t *testing.T) {
	p := profile.New()
	p.AddRoot(p.Dict.Intern(1, 10, 3, nil))
	got, err := Stitch([]*profile.Profile{p}, []Window{{0, 48}})
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Error("single-shard stitch should pass the profile through")
	}
}

func TestStitchDetectsDivergence(t *testing.T) {
	profs, wins, _ := buildShardProfiles()
	// Corrupt shard 1's root work: the shards no longer describe the same
	// execution.
	bad := profile.New()
	b := bad.Dict.Intern(3, 40, 8, nil)
	a := bad.Dict.Intern(2, 30, 5, nil)
	r := bad.Dict.Intern(1, 999, 999, map[int32]int64{a: 2, b: 1})
	bad.AddRoot(r)
	profs[1] = bad
	if _, err := Stitch(profs, wins); err == nil {
		t.Fatal("stitch accepted diverged shards")
	}
}
