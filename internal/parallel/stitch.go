// Stitching complementary depth-window profiles back into one full-depth
// profile. A naive Profile.Merge of the K shard profiles would keep K
// separate roots, each carrying the serial cp = work fallback for its
// out-of-window levels, which pollutes every work-weighted metric the
// planner computes. Instead the K region trees — structurally identical,
// because every shard replays the same deterministic execution — are
// co-walked, and each node's critical path is taken from the one shard
// whose window owns that node's depth. The result has exactly the full
// run's per-region work and critical-path values.
//
// The co-walk leans on the dictionary storing each entry's children as a
// run-length-encoded sequence in execution order (see profile.InternRuns).
// Every shard observed the same execution, so at every tree node the K
// child sequences are projections of one underlying instance sequence;
// zipping the runs position-by-position aligns the shards' child classes
// exactly. A char-sorted multiset would not: when one shard distinguishes
// two sibling classes by shallow critical path and another by deep
// structure, non-contiguous interleavings (e.g. cps A B A over three
// structurally identical siblings) are unrecoverable from counts alone,
// and a misalignment attaches a critical path to the wrong subtree.
package parallel

import (
	"encoding/binary"
	"fmt"

	"kremlin/internal/profile"
)

// Stitch merges profiles collected over the complementary depth windows
// wins (profs[i] collected over wins[i]) into a single full-depth profile.
// Every shard must come from the same deterministic execution; divergence
// is reported as an error.
func Stitch(profs []*profile.Profile, wins []Window) (*profile.Profile, error) {
	if len(profs) == 0 || len(profs) != len(wins) {
		return nil, fmt.Errorf("parallel: %d profiles for %d windows", len(profs), len(wins))
	}
	if len(profs) == 1 {
		return profs[0], nil
	}
	for s := 1; s < len(profs); s++ {
		if len(profs[s].Roots) != len(profs[0].Roots) {
			return nil, fmt.Errorf("parallel: shard %d has %d roots, shard 0 has %d",
				s, len(profs[s].Roots), len(profs[0].Roots))
		}
	}
	st := &stitcher{
		profs: profs,
		wins:  wins,
		out:   profile.New(),
		memo:  make(map[string]int32),
		cap:   wins[len(wins)-1].Hi,
	}
	tuple := make([]int32, len(profs))
	for i := range profs[0].Roots {
		for s, p := range profs {
			tuple[s] = p.Roots[i]
		}
		c, err := st.node(0, tuple)
		if err != nil {
			return nil, err
		}
		st.out.AddRoot(c)
	}
	// Interning during the co-walk counted each unique region shape once;
	// restore the true dynamic-instance count (identical in every shard).
	st.out.Dict.RawCount = profs[0].Dict.RawCount
	return st.out, nil
}

type stitcher struct {
	profs []*profile.Profile
	wins  []Window
	out   *profile.Profile
	memo  map[string]int32
	cap   int // levels ≥ cap are untracked in every shard (cp = work)
}

// owner returns the shard whose window contains depth level idx.
func (st *stitcher) owner(idx int) int {
	for s, w := range st.wins {
		if idx >= w.Lo && idx < w.Hi {
			return s
		}
	}
	// Beyond the cap every shard recorded the cp = work fallback; any
	// shard's value is the right one.
	return len(st.wins) - 1
}

func (st *stitcher) memoKey(idx int, chars []int32) string {
	// Nodes deeper than the cap are depth-independent (no shard tracked
	// them), so clamping idx lets deep recursions share memo entries.
	if idx > st.cap {
		idx = st.cap
	}
	buf := make([]byte, 0, 4+5*len(chars))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(idx))
	buf = append(buf, tmp[:n]...)
	for _, c := range chars {
		n = binary.PutUvarint(tmp[:], uint64(c))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// node stitches the region-tree node at depth level idx whose per-shard
// dictionary characters are chars, returning its character in the output
// dictionary. The K shards' child sequences describe the same dynamic
// instance sequence, so they are zipped positionally: each maximal segment
// where every shard's current run is constant becomes one child class of
// the stitched node, recursively stitched from the per-shard characters.
func (st *stitcher) node(idx int, chars []int32) (int32, error) {
	key := st.memoKey(idx, chars)
	if c, ok := st.memo[key]; ok {
		return c, nil
	}
	k := len(chars)
	e0 := st.profs[0].Dict.Entries[chars[0]]
	var total int64
	for _, c := range e0.Children {
		total += c.Count
	}
	for s := 1; s < k; s++ {
		es := st.profs[s].Dict.Entries[chars[s]]
		if es.StaticID != e0.StaticID || es.Work != e0.Work {
			return 0, fmt.Errorf("parallel: shards 0 and %d diverged at depth %d (region %d/%d, work %d/%d)",
				s, idx, e0.StaticID, es.StaticID, e0.Work, es.Work)
		}
		var tot int64
		for _, c := range es.Children {
			tot += c.Count
		}
		if tot != total {
			return 0, fmt.Errorf("parallel: shard %d diverged at depth %d: %d child instances, shard 0 has %d",
				s, idx+1, tot, total)
		}
	}
	own := st.owner(idx)
	cp := st.profs[own].Dict.Entries[chars[own]].CP

	var kids []profile.Child
	tuple := make([]int32, k)
	pos := make([]int, k)
	rem := make([]int64, k)
	for s := 0; s < k; s++ {
		if total > 0 {
			rem[s] = st.profs[s].Dict.Entries[chars[s]].Children[0].Count
		}
	}
	for n := total; n > 0; {
		seg := n
		for s := 0; s < k; s++ {
			runs := st.profs[s].Dict.Entries[chars[s]].Children
			if rem[s] < seg {
				seg = rem[s]
			}
			tuple[s] = runs[pos[s]].Char
		}
		cc, err := st.node(idx+1, tuple)
		if err != nil {
			return 0, err
		}
		if m := len(kids); m > 0 && kids[m-1].Char == cc {
			kids[m-1].Count += seg
		} else {
			kids = append(kids, profile.Child{Char: cc, Count: seg})
		}
		n -= seg
		for s := 0; s < k; s++ {
			if rem[s] -= seg; rem[s] == 0 && n > 0 {
				pos[s]++
				rem[s] = st.profs[s].Dict.Entries[chars[s]].Children[pos[s]].Count
			}
		}
	}

	c := st.out.Dict.InternRuns(e0.StaticID, e0.Work, cp, kids)
	st.memo[key] = c
	return c, nil
}
