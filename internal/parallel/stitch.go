// Stitching complementary depth-window profiles back into one full-depth
// profile. A naive Profile.Merge of the K shard profiles would keep K
// separate roots, each carrying the serial cp = work fallback for its
// out-of-window levels, which pollutes every work-weighted metric the
// planner computes. Instead the K region trees — structurally identical,
// because every shard replays the same deterministic execution — are
// co-walked, and each node's critical path is taken from the one shard
// whose window owns that node's depth. The result has exactly the full
// run's per-region work and critical-path values.
package parallel

import (
	"encoding/binary"
	"fmt"
	"sort"

	"kremlin/internal/profile"
)

// Stitch merges profiles collected over the complementary depth windows
// wins (profs[i] collected over wins[i]) into a single full-depth profile.
// Every shard must come from the same deterministic execution; divergence
// is reported as an error.
func Stitch(profs []*profile.Profile, wins []Window) (*profile.Profile, error) {
	if len(profs) == 0 || len(profs) != len(wins) {
		return nil, fmt.Errorf("parallel: %d profiles for %d windows", len(profs), len(wins))
	}
	if len(profs) == 1 {
		return profs[0], nil
	}
	for s := 1; s < len(profs); s++ {
		if len(profs[s].Roots) != len(profs[0].Roots) {
			return nil, fmt.Errorf("parallel: shard %d has %d roots, shard 0 has %d",
				s, len(profs[s].Roots), len(profs[0].Roots))
		}
	}
	st := &stitcher{
		profs:  profs,
		wins:   wins,
		hashes: make([][]uint64, len(profs)),
		out:    profile.New(),
		memo:   make(map[string]int32),
		cap:    wins[len(wins)-1].Hi,
	}
	for s, p := range profs {
		st.hashes[s] = structHashes(p.Dict)
	}
	tuple := make([]int32, len(profs))
	for i := range profs[0].Roots {
		for s, p := range profs {
			tuple[s] = p.Roots[i]
		}
		c, err := st.node(0, tuple)
		if err != nil {
			return nil, err
		}
		st.out.AddRoot(c)
	}
	// Interning during the co-walk counted each unique region shape once;
	// restore the true dynamic-instance count (identical in every shard).
	st.out.Dict.RawCount = profs[0].Dict.RawCount
	return st.out, nil
}

type stitcher struct {
	profs  []*profile.Profile
	wins   []Window
	hashes [][]uint64 // per shard: window-invariant structural hash per char
	out    *profile.Profile
	memo   map[string]int32
	cap    int // levels ≥ cap are untracked in every shard (cp = work)
}

// owner returns the shard whose window contains depth level idx.
func (st *stitcher) owner(idx int) int {
	for s, w := range st.wins {
		if idx >= w.Lo && idx < w.Hi {
			return s
		}
	}
	// Beyond the cap every shard recorded the cp = work fallback; any
	// shard's value is the right one.
	return len(st.wins) - 1
}

func (st *stitcher) memoKey(idx int, chars []int32) string {
	// Nodes deeper than the cap are depth-independent (no shard tracked
	// them), so clamping idx lets deep recursions share memo entries.
	if idx > st.cap {
		idx = st.cap
	}
	buf := make([]byte, 0, 4+5*len(chars))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(idx))
	buf = append(buf, tmp[:n]...)
	for _, c := range chars {
		n = binary.PutUvarint(tmp[:], uint64(c))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// node stitches the region-tree node at depth level idx whose per-shard
// dictionary characters are chars, returning its character in the output
// dictionary. Children are aligned across shards by window-invariant
// structural hash; within a hash group, each shard's char classes are
// zipped in char order, which is exact whenever structurally identical
// siblings have identical critical paths (always true for deterministic
// replays of the same execution point).
func (st *stitcher) node(idx int, chars []int32) (int32, error) {
	key := st.memoKey(idx, chars)
	if c, ok := st.memo[key]; ok {
		return c, nil
	}
	k := len(chars)
	e0 := st.profs[0].Dict.Entries[chars[0]]
	for s := 1; s < k; s++ {
		es := st.profs[s].Dict.Entries[chars[s]]
		if es.StaticID != e0.StaticID || es.Work != e0.Work {
			return 0, fmt.Errorf("parallel: shards 0 and %d diverged at depth %d (region %d/%d, work %d/%d)",
				s, idx, e0.StaticID, es.StaticID, e0.Work, es.Work)
		}
	}
	own := st.owner(idx)
	cp := st.profs[own].Dict.Entries[chars[own]].CP

	// Group each shard's compressed child classes by the structural hash of
	// the dynamic children they stand for.
	type group struct {
		total int64
		per   [][]profile.Child // per shard, char-ascending
	}
	groups := make(map[uint64]*group)
	var order []uint64
	for s := 0; s < k; s++ {
		for _, ch := range st.profs[s].Dict.Entries[chars[s]].Children {
			h := st.hashes[s][ch.Char]
			g := groups[h]
			if g == nil {
				if s != 0 {
					return 0, fmt.Errorf("parallel: shard %d has child structure at depth %d absent from shard 0", s, idx+1)
				}
				g = &group{per: make([][]profile.Child, k)}
				groups[h] = g
				order = append(order, h)
			}
			g.per[s] = append(g.per[s], ch)
			if s == 0 {
				g.total += ch.Count
			}
		}
	}

	kids := make(map[int32]int64, len(order))
	tuple := make([]int32, k)
	pos := make([]int, k)
	rem := make([]int64, k)
	for _, h := range order {
		g := groups[h]
		for s := 0; s < k; s++ {
			var tot int64
			for _, c := range g.per[s] {
				tot += c.Count
			}
			if tot != g.total {
				return 0, fmt.Errorf("parallel: shard %d diverged at depth %d: child group has %d instances, shard 0 has %d",
					s, idx+1, tot, g.total)
			}
			pos[s] = 0
			rem[s] = g.per[s][0].Count
		}
		// Zip the per-shard class runs: each segment where every shard's
		// class is constant becomes one stitched child class.
		for n := g.total; n > 0; {
			seg := n
			for s := 0; s < k; s++ {
				if rem[s] < seg {
					seg = rem[s]
				}
				tuple[s] = g.per[s][pos[s]].Char
			}
			cc, err := st.node(idx+1, tuple)
			if err != nil {
				return 0, err
			}
			kids[cc] += seg
			n -= seg
			for s := 0; s < k; s++ {
				if rem[s] -= seg; rem[s] == 0 && n > 0 {
					pos[s]++
					rem[s] = g.per[s][pos[s]].Count
				}
			}
		}
	}

	c := st.out.Dict.Intern(e0.StaticID, e0.Work, cp, kids)
	st.memo[key] = c
	return c, nil
}

// structHashes computes a window-invariant structural hash for every
// character of a shard dictionary: it folds the static region, the work,
// and the multiset of child hashes — but never the critical path, which is
// the one field that differs between depth windows. Identical dynamic
// subtrees therefore hash identically in every shard.
func structHashes(d *profile.Dict) []uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hs := make([]uint64, len(d.Entries))
	type hc struct {
		h uint64
		n int64
	}
	var pairs []hc
	for c, e := range d.Entries { // children intern before parents
		pairs = pairs[:0]
		for _, k := range e.Children {
			pairs = append(pairs, hc{hs[k.Char], k.Count})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].h < pairs[j].h })
		// Merge classes sharing a structural hash (CP-divergent twins in
		// this shard's view) so the multiset matches shards that view them
		// as one class.
		merged := pairs[:0]
		for _, p := range pairs {
			if m := len(merged); m > 0 && merged[m-1].h == p.h {
				merged[m-1].n += p.n
			} else {
				merged = append(merged, p)
			}
		}
		h := uint64(offset64)
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= (v >> (8 * i)) & 0xFF
				h *= prime64
			}
		}
		mix(uint64(e.StaticID))
		mix(e.Work)
		for _, p := range merged {
			mix(p.h)
			mix(uint64(p.n))
		}
		hs[c] = h
	}
	return hs
}
