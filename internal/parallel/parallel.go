// Package parallel runs HCPA data collection sharded across complementary
// region-depth windows — the paper's answer to "who profiles the profiler":
// because the per-level critical-path updates are independent, the depth
// dimension can be partitioned into K windows, each collected by an
// independent instrumented run with its own Runtime and shadow memory, and
// the windowed profiles merged afterwards. On a multicore host the K runs
// execute concurrently, so the profiler itself exploits the parallelism it
// is hunting for.
//
// A cheap pre-pass (interp.Probe) measures how much work executes at each
// nesting depth; windows are then sized so each shard pays a near-equal
// share of the tracking cost, rather than uniformly (real programs nest a
// handful of levels deep, so uniform windows over [0, 48) would leave every
// shard but the first idle).
package parallel

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"

	"kremlin/internal/bytecode"
	"kremlin/internal/instrument"
	"kremlin/internal/interp"
	"kremlin/internal/ir"
	"kremlin/internal/kremlib"
	"kremlin/internal/limits"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
)

// Window is a half-open interval [Lo, Hi) of region-depth levels collected
// by one shard.
type Window struct {
	Lo, Hi int
}

// LevelCosts converts a per-depth work histogram (DepthWork[d] = work
// executed while d regions were active) into per-level tracking costs: an
// instruction running under d active regions updates levels [0, d), so
// the cost of tracking level l is Σ_{d > l} DepthWork[d].
func LevelCosts(depthWork []uint64, levels int) []uint64 {
	costs := make([]uint64, levels)
	var suffix uint64
	for d := len(depthWork) - 1; d >= 1; d-- {
		suffix += depthWork[d]
		if d-1 < levels {
			costs[d-1] = suffix
		}
	}
	return costs
}

// BalancedWindows partitions levels [0, len(costs)) into at most k
// contiguous windows with near-equal summed cost. Fewer than k windows are
// returned when there are fewer levels than shards.
func BalancedWindows(costs []uint64, k int) []Window {
	l := len(costs)
	if l == 0 {
		return []Window{{0, 0}}
	}
	if k > l {
		k = l
	}
	if k <= 1 {
		return []Window{{0, l}}
	}
	prefix := make([]uint64, l+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	total := prefix[l]
	wins := make([]Window, 0, k)
	lo := 0
	for i := 1; i < k; i++ {
		target := total / uint64(k) * uint64(i)
		hi := lo + 1
		maxHi := l - (k - i) // leave ≥1 level for each remaining window
		for hi < maxHi && prefix[hi] < target {
			hi++
		}
		wins = append(wins, Window{lo, hi})
		lo = hi
	}
	return append(wins, Window{lo, l})
}

// Config configures a sharded profiling run.
type Config struct {
	// Shards is the number of depth windows (and concurrent runs); values
	// ≤ 1 fall back to one sequential full-window run.
	Shards int
	// Out receives the program's print output (written exactly once, by
	// the probe pre-pass, or by the single run when Shards ≤ 1).
	Out      io.Writer
	MaxSteps uint64
	// MaxDepth caps the collection window (0 = kremlib.DefaultMaxDepth).
	MaxDepth int
	// Ctx, when non-nil, cancels the probe pre-pass and every shard run;
	// when any shard fails, the siblings are cancelled through a derived
	// context so the job returns promptly instead of racing to the end.
	Ctx context.Context
	// MaxShadowPages caps each shard's shadow-memory pages; MaxHeapWords
	// caps each run's simulated heap (0 = unlimited). See interp.Config.
	MaxShadowPages int
	MaxHeapWords   uint64
	// Code, when non-nil, runs every execution (the probe pre-pass and all
	// shard runs) on the bytecode engine instead of the tree-walking
	// interpreter. The compiled program is shared read-only across shard
	// goroutines; each run still owns its Runtime and shadow memory.
	Code *bytecode.Program
	// ShardHook, when non-nil, runs at the start of every shard goroutine
	// (with the shard index) before its interpreter run. It exists for
	// fault injection: chaos tests use it to panic or stall inside a shard
	// and prove the stitcher fails the job instead of deadlocking.
	ShardHook func(shard int)
}

// PanicError reports a shard goroutine that panicked. The recover
// boundary inside each shard goroutine converts the panic into this error
// so a poisoned run fails the one job instead of killing the process (a
// panic in a bare goroutine is fatal to the whole program — no outer
// recover can catch it).
type PanicError struct {
	Shard int
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: shard %d panicked: %v", e.Shard, e.Value)
}

// Result is the outcome of a sharded profiling run.
type Result struct {
	// Profile is the stitched full-depth profile.
	Profile *profile.Profile
	// Windows are the depth windows actually used, one per shard run.
	Windows []Window
	// Probe is the depth pre-pass result (nil when Shards ≤ 1).
	Probe *interp.Result
	// Runs are the per-shard interpreter results, parallel to Windows.
	Runs []*interp.Result
}

// Work returns the instrumented work measure (identical in every shard).
func (r *Result) Work() uint64 {
	if len(r.Runs) == 0 {
		return 0
	}
	return r.Runs[0].Work
}

// Run executes cfg.Shards depth-window shard runs of the instrumented
// program concurrently and stitches their profiles. mod, prog, and instr
// are shared read-only across the shard goroutines; each run owns its
// Runtime and shadow memory.
func Run(mod *ir.Module, prog *regions.Program, instr *instrument.Module, cfg Config) (*Result, error) {
	execute := func(ic interp.Config) (*interp.Result, error) {
		if cfg.Code != nil {
			return bytecode.Run(cfg.Code, ic)
		}
		return interp.Run(mod, ic)
	}
	maxDepth := cfg.MaxDepth
	if maxDepth <= 0 {
		maxDepth = kremlib.DefaultMaxDepth
	}
	if cfg.Shards <= 1 {
		res, err := execute(interp.Config{
			Mode: interp.HCPA, Out: cfg.Out, MaxSteps: cfg.MaxSteps,
			Ctx: cfg.Ctx, MaxHeapWords: cfg.MaxHeapWords,
			Opts: kremlib.Options{MaxDepth: maxDepth, MaxShadowPages: cfg.MaxShadowPages},
			Prog: prog, Instr: instr,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Profile: res.Profile,
			Windows: []Window{{0, maxDepth}},
			Runs:    []*interp.Result{res},
		}, nil
	}

	probe, err := execute(interp.Config{
		Mode: interp.Probe, Out: cfg.Out, MaxSteps: cfg.MaxSteps,
		Ctx: cfg.Ctx, MaxHeapWords: cfg.MaxHeapWords,
		Prog: prog, Instr: instr,
	})
	if err != nil {
		return nil, err
	}
	levels := probe.MaxRegionDepth
	if levels > maxDepth {
		levels = maxDepth
	}
	if levels < 1 {
		levels = 1
	}
	wins := BalancedWindows(LevelCosts(probe.DepthWork, levels), cfg.Shards)
	// The deepest window absorbs the rest of the configured cap so the
	// windows are complementary over the full [0, maxDepth) range.
	if wins[len(wins)-1].Hi < maxDepth {
		wins[len(wins)-1].Hi = maxDepth
	}

	// Shard runs share a derived context: the first failing shard cancels
	// its siblings so the job fails promptly, and a caller cancellation
	// reaches every shard the same way.
	base := cfg.Ctx
	if base == nil {
		base = context.Background()
	}
	shardCtx, cancelShards := context.WithCancel(base)
	defer cancelShards()

	runs := make([]*interp.Result, len(wins))
	errs := make([]error, len(wins))
	var wg sync.WaitGroup
	for s, w := range wins {
		wg.Add(1)
		go func(s int, w Window) {
			defer wg.Done()
			// A panic anywhere in this goroutine (including an injected
			// fault from ShardHook) must become a job error, not a process
			// death: recover here, fail the shard, cancel the siblings.
			defer func() {
				if r := recover(); r != nil {
					errs[s] = &PanicError{Shard: s, Value: r, Stack: debug.Stack()}
					cancelShards()
				}
			}()
			if cfg.ShardHook != nil {
				cfg.ShardHook(s)
			}
			runs[s], errs[s] = execute(interp.Config{
				Mode: interp.HCPA, MaxSteps: cfg.MaxSteps,
				Ctx: shardCtx, MaxHeapWords: cfg.MaxHeapWords,
				Opts: kremlib.Options{MinDepth: w.Lo, MaxDepth: w.Hi, MaxShadowPages: cfg.MaxShadowPages},
				Prog: prog, Instr: instr,
			})
			if errs[s] != nil {
				cancelShards()
			}
		}(s, w)
	}
	wg.Wait()
	// Report the most informative failure: a panic or runtime error beats
	// a budget/cap error, which beats the cascade of ErrCancelled the
	// sibling cancellation induced.
	rank := func(err error) int {
		switch {
		case err == nil:
			return 0
		case errors.Is(err, limits.ErrCancelled):
			return 1
		case limits.IsLimit(err):
			return 2
		default:
			return 3
		}
	}
	var firstErr error
	firstShard := -1
	for s, err := range errs {
		if rank(err) > rank(firstErr) {
			firstErr, firstShard = err, s
		}
	}
	if firstErr != nil {
		if pe, ok := firstErr.(*PanicError); ok {
			return nil, pe
		}
		return nil, fmt.Errorf("parallel: shard %d [%d,%d): %w",
			firstShard, wins[firstShard].Lo, wins[firstShard].Hi, firstErr)
	}

	profs := make([]*profile.Profile, len(runs))
	for s, r := range runs {
		profs[s] = r.Profile
	}
	stitched, err := Stitch(profs, wins)
	if err != nil {
		return nil, err
	}
	return &Result{Profile: stitched, Windows: wins, Probe: probe, Runs: runs}, nil
}
