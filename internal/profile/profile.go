// Package profile holds the parallelism profile produced by an instrumented
// run: per-dynamic-region summaries (work, critical path length, children),
// compressed on line with the paper's dictionary scheme (§4.4).
//
// When a dynamic region exits, its tuple (static region, work, critical
// path, child sequence) is looked up in an alphabet of unique regions; a hit
// reuses the existing character, a miss extends the alphabet. Children are
// described in terms of already-interned characters, so the alphabet builds
// from the leaves up and the planner can compute self-parallelism directly
// on the dictionary without ever decompressing the trace.
//
// Children are kept as a run-length-encoded sequence in execution order,
// not a character-sorted multiset. For the dominant pattern — a loop whose
// iterations summarize identically — this is one run, so compression is
// unaffected; for irregular interleavings it preserves exactly the
// information the depth-window stitcher (internal/parallel) needs to align
// shard dictionaries instance-by-instance. All HCPA metrics are sums over
// the runs and do not depend on the order.
package profile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Child is one run of a parent's compressed child sequence: an alphabet
// character and how many consecutive dynamic instances of it occurred.
type Child struct {
	Char  int32
	Count int64
}

// Entry is one alphabet character: a unique dynamic-region summary.
type Entry struct {
	StaticID int32  // region ID in the static region tree
	Work     uint64 // total work executed between entry and exit
	CP       uint64 // critical path length at this region's nesting level
	// Children is the run-length-encoded child sequence in execution
	// order. The same character may appear in more than one run when other
	// children interleave; consumers must accumulate, not index by char.
	Children []Child
}

// RawRecordBytes is the size of one uncompressed dynamic-region trace
// record (static ID, work, CP, child instance link), used to report the
// log size an uncompressed tracer would have written.
const RawRecordBytes = 28

// Dict is the compression dictionary (the "alphabet").
type Dict struct {
	Entries []Entry
	index   map[string]int32

	// RawCount is the number of dynamic region summaries interned,
	// i.e. the record count of the equivalent uncompressed trace.
	RawCount uint64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{index: make(map[string]int32)}
}

// Intern is InternRuns for callers holding an unordered character → count
// map (hand-built profiles in tests, multi-run aggregation): the runs are
// ordered by character, which is deterministic but carries no execution
// order. The instrumented runtime uses InternRuns directly.
func (d *Dict) Intern(staticID int32, work, cp uint64, children map[int32]int64) int32 {
	kids := make([]Child, 0, len(children))
	for c, n := range children {
		kids = append(kids, Child{Char: c, Count: n})
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].Char < kids[j].Char })
	return d.InternRuns(staticID, work, cp, kids)
}

// InternRuns returns the character for the dynamic region summary whose
// child sequence is the given run-length encoding (execution order,
// normalized here by merging adjacent equal-character runs and dropping
// empty ones). The key is sequence-sensitive: the same children multiset
// with a different interleaving is a different entry. runs is not retained.
func (d *Dict) InternRuns(staticID int32, work, cp uint64, runs []Child) int32 {
	d.RawCount++
	kids := make([]Child, 0, len(runs))
	for _, r := range runs {
		if r.Count == 0 {
			continue
		}
		if n := len(kids); n > 0 && kids[n-1].Char == r.Char {
			kids[n-1].Count += r.Count
		} else {
			kids = append(kids, r)
		}
	}

	key := makeKey(staticID, work, cp, kids)
	if c, ok := d.index[key]; ok {
		return c
	}
	c := int32(len(d.Entries))
	d.Entries = append(d.Entries, Entry{StaticID: staticID, Work: work, CP: cp, Children: kids})
	d.index[key] = c
	return c
}

func makeKey(staticID int32, work, cp uint64, kids []Child) string {
	buf := make([]byte, 0, 20+len(kids)*12)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(staticID))
	put(work)
	put(cp)
	for _, k := range kids {
		put(uint64(k.Char))
		put(uint64(k.Count))
	}
	return string(buf)
}

// Profile is a complete parallelism profile: the dictionary plus one root
// character per profiled run (Kremlin supports aggregating multiple runs).
type Profile struct {
	Dict  *Dict
	Roots []int32
	// Safety is the static loop-dependence verdict per static region ID
	// (the numeric values of regions.Safety: 0 unproven, 1 proven,
	// 2 refuted), recorded by the compiler so profile consumers can annotate
	// plans without re-running the static analysis. Empty for profiles
	// written before the KRPF2 format or by tools without the verdicts.
	Safety []uint8
}

// New returns an empty profile.
func New() *Profile { return &Profile{Dict: NewDict()} }

// AddRoot records the root (main) character of one completed run.
func (p *Profile) AddRoot(c int32) { p.Roots = append(p.Roots, c) }

// InstanceCounts computes, for every character, how many dynamic region
// instances it stands for, by propagating multiplicities down from the
// roots. Because children are always interned before their parents, a
// single descending sweep suffices.
func (p *Profile) InstanceCounts() []int64 {
	counts := make([]int64, len(p.Dict.Entries))
	for _, r := range p.Roots {
		counts[r]++
	}
	for c := len(p.Dict.Entries) - 1; c >= 0; c-- {
		n := counts[c]
		if n == 0 {
			continue
		}
		for _, k := range p.Dict.Entries[c].Children {
			counts[k.Char] += n * k.Count
		}
	}
	return counts
}

// TotalWork returns the summed work of the root runs.
func (p *Profile) TotalWork() uint64 {
	var w uint64
	for _, r := range p.Roots {
		w += p.Dict.Entries[r].Work
	}
	return w
}

// RawBytes reports the size of the uncompressed trace an instance-per-record
// tracer would have produced.
func (p *Profile) RawBytes() uint64 { return p.Dict.RawCount * RawRecordBytes }

// Merge folds other into p, re-interning other's alphabet. Used for
// multi-run aggregation: run the instrumented binary on several inputs and
// plan over the union.
func (p *Profile) Merge(other *Profile) {
	remap := make([]int32, len(other.Dict.Entries))
	for c, e := range other.Dict.Entries {
		runs := make([]Child, len(e.Children))
		for i, k := range e.Children {
			runs[i] = Child{Char: remap[k.Char], Count: k.Count}
		}
		remap[c] = p.Dict.InternRuns(e.StaticID, e.Work, e.CP, runs)
	}
	// Interning during a merge double-counts raw records; correct to the
	// true dynamic-instance count.
	p.Dict.RawCount += other.Dict.RawCount - uint64(len(other.Dict.Entries))
	for _, r := range other.Roots {
		p.Roots = append(p.Roots, remap[r])
	}
	// Safety is a compile-time property of the static region tree, identical
	// across runs of the same program; adopt other's if p has none.
	if len(p.Safety) == 0 {
		p.Safety = append([]uint8(nil), other.Safety...)
	}
}

// The serialized formats. KRPF2 appends a safety-verdict section after the
// roots; KRPF1 files (without it) still read back.
const (
	magic   = "KRPF2\n"
	magicV1 = "KRPF1\n"
)

// WriteTo serializes the profile in a compact varint format.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	buf = append(buf, magic...)
	put(uint64(len(p.Dict.Entries)))
	for _, e := range p.Dict.Entries {
		put(uint64(e.StaticID))
		put(e.Work)
		put(e.CP)
		put(uint64(len(e.Children)))
		for _, k := range e.Children {
			put(uint64(k.Char))
			put(uint64(k.Count))
		}
	}
	put(p.Dict.RawCount)
	put(uint64(len(p.Roots)))
	for _, r := range p.Roots {
		put(uint64(r))
	}
	put(uint64(len(p.Safety)))
	for _, s := range p.Safety {
		put(uint64(s))
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// MarshalSize returns the serialized size in bytes (the paper's
// "compressed log size").
func (p *Profile) MarshalSize() uint64 {
	var cw countWriter
	_, _ = p.WriteTo(&cw)
	return cw.n
}

type countWriter struct{ n uint64 }

func (c *countWriter) Write(b []byte) (int, error) {
	c.n += uint64(len(b))
	return len(b), nil
}

// ReadFrom deserializes a profile written by WriteTo.
func ReadFrom(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic) {
		return nil, errors.New("profile: bad magic")
	}
	version := 0
	switch string(data[:len(magic)]) {
	case magic:
		version = 2
	case magicV1:
		version = 1
	default:
		return nil, errors.New("profile: bad magic")
	}
	data = data[len(magic):]
	pos := 0
	get := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("profile: truncated at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	p := New()
	nEntries, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nEntries; i++ {
		var e Entry
		sid, err := get()
		if err != nil {
			return nil, err
		}
		e.StaticID = int32(sid)
		if e.Work, err = get(); err != nil {
			return nil, err
		}
		if e.CP, err = get(); err != nil {
			return nil, err
		}
		nk, err := get()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nk; j++ {
			ch, err := get()
			if err != nil {
				return nil, err
			}
			cnt, err := get()
			if err != nil {
				return nil, err
			}
			if int32(ch) >= int32(i) {
				return nil, fmt.Errorf("profile: entry %d references forward child %d", i, ch)
			}
			e.Children = append(e.Children, Child{Char: int32(ch), Count: int64(cnt)})
		}
		p.Dict.InternRuns(e.StaticID, e.Work, e.CP, e.Children)
	}
	raw, err := get()
	if err != nil {
		return nil, err
	}
	p.Dict.RawCount = raw
	nRoots, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nRoots; i++ {
		r, err := get()
		if err != nil {
			return nil, err
		}
		if r >= nEntries {
			return nil, fmt.Errorf("profile: root %d out of range", r)
		}
		p.AddRoot(int32(r))
	}
	if version >= 2 {
		nSafety, err := get()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nSafety; i++ {
			v, err := get()
			if err != nil {
				return nil, err
			}
			if v > 2 {
				return nil, fmt.Errorf("profile: bad safety verdict %d for region %d", v, i)
			}
			p.Safety = append(p.Safety, uint8(v))
		}
	}
	return p, nil
}
