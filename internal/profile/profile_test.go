package profile

import (
	"bytes"
	"testing"
	"testing/quick"
)

// buildSample builds a small profile: root -> 3x loop -> (2x body each).
func buildSample() *Profile {
	p := New()
	body := p.Dict.Intern(5, 10, 4, nil)
	loop := p.Dict.Intern(3, 25, 6, map[int32]int64{body: 2})
	root := p.Dict.Intern(0, 100, 30, map[int32]int64{loop: 3})
	p.AddRoot(root)
	return p
}

func TestInternDeduplicates(t *testing.T) {
	d := NewDict()
	a := d.Intern(1, 10, 5, nil)
	b := d.Intern(1, 10, 5, nil)
	c := d.Intern(1, 10, 6, nil)
	if a != b {
		t.Errorf("identical summaries got chars %d and %d", a, b)
	}
	if a == c {
		t.Error("different cp should get a new char")
	}
	if d.RawCount != 3 {
		t.Errorf("RawCount = %d, want 3", d.RawCount)
	}
	if len(d.Entries) != 2 {
		t.Errorf("alphabet = %d, want 2", len(d.Entries))
	}
}

func TestInternChildOrderIrrelevant(t *testing.T) {
	d := NewDict()
	c1 := d.Intern(1, 1, 1, nil)
	c2 := d.Intern(2, 2, 2, nil)
	// Maps have no order; interning the same multiset twice must hit.
	a := d.Intern(3, 10, 5, map[int32]int64{c1: 1, c2: 2})
	b := d.Intern(3, 10, 5, map[int32]int64{c2: 2, c1: 1})
	if a != b {
		t.Error("child order changed the character")
	}
}

func TestInstanceCounts(t *testing.T) {
	p := buildSample()
	counts := p.InstanceCounts()
	if counts[2] != 1 { // root
		t.Errorf("root count = %d", counts[2])
	}
	if counts[1] != 3 { // loops
		t.Errorf("loop count = %d", counts[1])
	}
	if counts[0] != 6 { // bodies: 3 loops x 2
		t.Errorf("body count = %d", counts[0])
	}
}

func TestTotalWorkAndRawBytes(t *testing.T) {
	p := buildSample()
	if p.TotalWork() != 100 {
		t.Errorf("TotalWork = %d", p.TotalWork())
	}
	if p.RawBytes() != 3*RawRecordBytes {
		t.Errorf("RawBytes = %d", p.RawBytes())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	p := buildSample()
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if uint64(buf.Len()) != p.MarshalSize() {
		t.Errorf("MarshalSize = %d, wrote %d", p.MarshalSize(), buf.Len())
	}
	q, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Dict.Entries) != len(p.Dict.Entries) {
		t.Fatalf("entries = %d, want %d", len(q.Dict.Entries), len(p.Dict.Entries))
	}
	for i := range p.Dict.Entries {
		a, b := p.Dict.Entries[i], q.Dict.Entries[i]
		if a.StaticID != b.StaticID || a.Work != b.Work || a.CP != b.CP || len(a.Children) != len(b.Children) {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if len(q.Roots) != 1 || q.Roots[0] != p.Roots[0] {
		t.Errorf("roots = %v", q.Roots)
	}
	if q.Dict.RawCount != p.Dict.RawCount {
		t.Errorf("RawCount = %d, want %d", q.Dict.RawCount, p.Dict.RawCount)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a profile"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte(magic))); err == nil {
		t.Error("truncated profile accepted")
	}
	// Forward-referencing child.
	var buf bytes.Buffer
	p := buildSample()
	_, _ = p.WriteTo(&buf)
	data := buf.Bytes()
	data = data[:len(data)-3] // chop the roots
	if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
		t.Error("truncated tail accepted")
	}
}

func TestMerge(t *testing.T) {
	p := buildSample()
	q := buildSample()
	rawBefore := p.Dict.RawCount
	p.Merge(q)
	if len(p.Roots) != 2 {
		t.Fatalf("roots after merge = %d", len(p.Roots))
	}
	// Identical structure: alphabet must not grow.
	if len(p.Dict.Entries) != 3 {
		t.Errorf("alphabet after merge = %d, want 3", len(p.Dict.Entries))
	}
	if p.TotalWork() != 200 {
		t.Errorf("merged work = %d", p.TotalWork())
	}
	if p.Dict.RawCount != rawBefore+q.Dict.RawCount {
		t.Errorf("raw count = %d, want %d", p.Dict.RawCount, rawBefore+q.Dict.RawCount)
	}
	// Counts double.
	counts := p.InstanceCounts()
	if counts[0] != 12 || counts[1] != 6 || counts[2] != 2 {
		t.Errorf("merged counts = %v", counts)
	}
}

func TestMergeDisjoint(t *testing.T) {
	p := buildSample()
	q := New()
	leaf := q.Dict.Intern(9, 7, 7, nil)
	root := q.Dict.Intern(0, 50, 50, map[int32]int64{leaf: 1})
	q.AddRoot(root)
	p.Merge(q)
	if len(p.Dict.Entries) != 5 {
		t.Errorf("alphabet = %d, want 5", len(p.Dict.Entries))
	}
	if p.TotalWork() != 150 {
		t.Errorf("work = %d", p.TotalWork())
	}
}

// TestRoundTripProperty: random well-formed profiles survive
// serialization.
func TestRoundTripProperty(t *testing.T) {
	check := func(works []uint16, seed uint8) bool {
		if len(works) == 0 {
			return true
		}
		if len(works) > 24 {
			works = works[:24]
		}
		p := New()
		var chars []int32
		for i, w := range works {
			kids := map[int32]int64{}
			// Reference up to two earlier chars (keeps leaves-first shape).
			if len(chars) > 0 {
				kids[chars[int(seed)%len(chars)]] = int64(w%3) + 1
			}
			if len(chars) > 1 && w%2 == 0 {
				kids[chars[(int(seed)+1)%len(chars)]] += int64(w%5) + 1
			}
			c := p.Dict.Intern(int32(i%7), uint64(w)+1, uint64(w)/2+1, kids)
			chars = append(chars, c)
		}
		p.AddRoot(chars[len(chars)-1])
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			return false
		}
		q, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		if len(q.Dict.Entries) != len(p.Dict.Entries) || len(q.Roots) != len(p.Roots) {
			return false
		}
		pc, qc := p.InstanceCounts(), q.InstanceCounts()
		for i := range pc {
			if pc[i] != qc[i] {
				return false
			}
		}
		return q.TotalWork() == p.TotalWork()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
