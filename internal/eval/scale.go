package eval

// Scale experiment: incremental re-profiling on very large generated
// programs. For each program size, a base program is profiled cold into a
// content-hash cache, one function is edited, and the edited program is
// profiled twice — from scratch (cold) and through the cache (warm). The
// rows record the wall-clock speedup, cache hit rate, skipped interpreter
// steps, and heap growth of each run, plus the byte-equality evidence that
// the warm profile is exactly the from-scratch one.

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"kremlin"
	"kremlin/internal/inccache"
	"kremlin/internal/krgen"
	"kremlin/internal/profile"
)

// ScaleRow is the incremental-profiling measurement for one program size.
type ScaleRow struct {
	Lines int `json:"lines"` // requested source lines
	Funcs int `json:"funcs"` // sealed helpers generated

	ColdNS time.Duration `json:"cold_ns"` // from-scratch profile of the edited program
	WarmNS time.Duration `json:"warm_ns"` // same program through the populated cache
	// Speedup is the headline: cold wall-clock over warm wall-clock for
	// the identical edited program.
	Speedup float64 `json:"speedup"`

	Hits    uint64  `json:"hits"`
	Lookups uint64  `json:"lookups"`
	HitRate float64 `json:"hit_rate"`
	// StepSpeedup is total steps over steps actually executed warm — the
	// machine-independent version of Speedup.
	SkippedSteps uint64  `json:"skipped_steps"`
	StepSpeedup  float64 `json:"step_speedup"`

	// Heap growth (runtime.ReadMemStats HeapAlloc delta) of each timed
	// run, the in-process stand-in for peak RSS.
	ColdHeapMB float64 `json:"cold_heap_mb"`
	WarmHeapMB float64 `json:"warm_heap_mb"`

	// ProfileEqual is the correctness evidence: the warm profile
	// serializes byte-identically to the from-scratch one.
	ProfileEqual bool `json:"profile_equal"`
}

// ScaleSummary is the whole experiment plus its headline geomean.
type ScaleSummary struct {
	Seed           int64      `json:"seed"`
	Iters          int        `json:"iters"`
	Rows           []ScaleRow `json:"rows"`
	GeomeanSpeedup float64    `json:"geomean_speedup"`
	AllEqual       bool       `json:"all_equal"`
}

// timedRun times f from a GC-settled heap and reports its wall-clock and
// the live-heap growth it caused. The pre-run GC is outside the timed
// region so one run's garbage never bills the next.
func timedRun(f func() error) (time.Duration, float64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	d := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return d, 0, nil
	}
	return d, float64(after.HeapAlloc-before.HeapAlloc) / (1 << 20), nil
}

// Scale runs the incremental re-profiling experiment over the given
// program sizes (source lines). Each size uses its own cache directory,
// removed before returning.
func Scale(sizes []int, seed int64, iters int) (*ScaleSummary, error) {
	if iters <= 0 {
		iters = 60
	}
	sum := &ScaleSummary{Seed: seed, Iters: iters, AllEqual: true}
	logSpeed := 0.0
	for _, lines := range sizes {
		cfg := krgen.ScaleForLines(lines, iters)
		baseSrc := krgen.GenerateScale(seed, cfg, nil)
		editSrc := krgen.ScaleEdit(seed, cfg, cfg.Funcs/2)
		row := ScaleRow{Lines: lines, Funcs: cfg.Funcs}

		dir, err := os.MkdirTemp("", "kremlin-scale")
		if err != nil {
			return nil, err
		}

		// Populate: profile the base program cold through the cache.
		base, err := kremlin.Compile("scale.kr", baseSrc)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("eval: scale %d compile base: %w", lines, err)
		}
		st, err := inccache.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		if _, _, err := base.Profile(&kremlin.RunConfig{Cache: st}); err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("eval: scale %d record run: %w", lines, err)
		}

		edited, err := kremlin.Compile("scale.kr", editSrc)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("eval: scale %d compile edit: %w", lines, err)
		}

		// Cold: the edited program from scratch.
		var coldProf *profile.Profile
		row.ColdNS, row.ColdHeapMB, err = timedRun(func() error {
			p, _, err := edited.Profile(nil)
			coldProf = p
			return err
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("eval: scale %d cold run: %w", lines, err)
		}

		// Warm: the same program through the populated cache.
		st2, err := inccache.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		var warmProf *profile.Profile
		var stats inccache.Stats
		var warmSteps uint64
		row.WarmNS, row.WarmHeapMB, err = timedRun(func() error {
			p, res, err := edited.Profile(&kremlin.RunConfig{Cache: st2, CacheStats: &stats})
			warmProf = p
			if res != nil {
				warmSteps = res.Steps
			}
			return err
		})
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("eval: scale %d warm run: %w", lines, err)
		}

		row.Hits, row.Lookups = stats.Hits, stats.Lookups
		row.HitRate = stats.HitRate()
		row.SkippedSteps = stats.SkippedSteps
		if executed := warmSteps - stats.SkippedSteps; executed > 0 {
			row.StepSpeedup = float64(warmSteps) / float64(executed)
		}
		row.Speedup = float64(row.ColdNS) / float64(row.WarmNS)

		var cb, wb bytes.Buffer
		if _, err := coldProf.WriteTo(&cb); err != nil {
			return nil, err
		}
		if _, err := warmProf.WriteTo(&wb); err != nil {
			return nil, err
		}
		row.ProfileEqual = bytes.Equal(cb.Bytes(), wb.Bytes())
		if !row.ProfileEqual {
			sum.AllEqual = false
		}
		logSpeed += math.Log(row.Speedup)
		sum.Rows = append(sum.Rows, row)
	}
	if n := len(sum.Rows); n > 0 {
		sum.GeomeanSpeedup = math.Exp(logSpeed / float64(n))
	}
	return sum, nil
}
