package eval

import (
	"time"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/exec"
	"kremlin/internal/hcpa"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
)

// Ablations for the design choices DESIGN.md calls out: the
// induction/reduction dependence breaking of §2.4/§4.1, the
// post-instrumentation optimization of §3, the planner personalities of
// §5, and the operate-on-compressed-data planning of §4.4.

// BreakingRow compares a benchmark's reduction-bearing loops with and
// without the dependence-breaking analysis.
type BreakingRow struct {
	Name string
	// LoopsCollapsed counts loops whose SP drops below the planner's 5.0
	// cutoff when breaking is disabled.
	LoopsCollapsed int
	// PlanWith / PlanWithout are the OpenMP plan sizes.
	PlanWith, PlanWithout int
	// MaxSPDrop is the largest SP ratio (with / without) observed.
	MaxSPDrop float64
}

// DependenceBreakingAblation recompiles each benchmark with detection
// disabled and reports how the profile and plan degrade.
func DependenceBreakingAblation() ([]BreakingRow, error) {
	var rows []BreakingRow
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		raw, err := kremlin.CompileWith(b.Name+".kr", b.Source,
			kremlin.CompileOptions{DisableDependenceBreaking: true})
		if err != nil {
			return nil, err
		}
		rprof, _, err := raw.Profile(nil)
		if err != nil {
			return nil, err
		}
		rsum := raw.Summarize(rprof)

		row := BreakingRow{Name: b.Name}
		// Region IDs are identical across the two compiles (same source,
		// same pipeline shape).
		for _, st := range c.Summary.Executed {
			if st.Region.Kind != regions.LoopRegion {
				continue
			}
			rst := rsum.ByID(st.Region.ID)
			if rst == nil {
				continue
			}
			if st.SelfP >= 5.0 && rst.SelfP < 5.0 {
				row.LoopsCollapsed++
			}
			if rst.SelfP > 0 {
				if drop := st.SelfP / rst.SelfP; drop > row.MaxSPDrop {
					row.MaxSPDrop = drop
				}
			}
		}
		row.PlanWith = len(planner.Make(c.Summary, planner.OpenMP()).Recs)
		row.PlanWithout = len(planner.Make(rsum, planner.OpenMP()).Recs)
		rows = append(rows, row)
	}
	return rows, nil
}

// OptRow reports the effect of the post-instrumentation optimizer.
type OptRow struct {
	Name          string
	PlainWork     uint64
	OptWork       uint64
	WorkReduction float64 // plain/opt
	Folded        int
	RemovedDead   int
	// PlanAgrees reports whether the optimized profile yields the same core
	// plan: identical top recommendation and no region the base plan did
	// not contain. (Shrinking work can drop tail regions that sat exactly
	// on the 0.1%-speedup threshold; that is the threshold working, not an
	// analysis change.)
	PlanAgrees bool
}

// OptimizationAblation recompiles each benchmark with the optimizer on and
// verifies the plan is stable while the instrumented work shrinks.
func OptimizationAblation() ([]OptRow, error) {
	var rows []OptRow
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		op, err := kremlin.CompileWith(b.Name+".kr", b.Source, kremlin.CompileOptions{Optimize: true})
		if err != nil {
			return nil, err
		}
		oprof, _, err := op.Profile(nil)
		if err != nil {
			return nil, err
		}
		row := OptRow{
			Name:        b.Name,
			PlainWork:   c.Profile.TotalWork(),
			OptWork:     oprof.TotalWork(),
			Folded:      op.Opt.Folded,
			RemovedDead: op.Opt.RemovedDead,
		}
		if row.OptWork > 0 {
			row.WorkReduction = float64(row.PlainWork) / float64(row.OptWork)
		}
		basePlan := planner.Make(c.Summary, planner.OpenMP())
		optPlan := planner.Make(op.Summarize(oprof), planner.OpenMP())
		row.PlanAgrees = sameLabels(basePlan, optPlan)
		rows = append(rows, row)
	}
	return rows, nil
}

func sameLabels(base, opt *planner.Plan) bool {
	if len(base.Recs) == 0 || len(opt.Recs) == 0 {
		return len(base.Recs) == len(opt.Recs)
	}
	// The leader must stay among the base plan's top recommendations
	// (symmetric regions — e.g. bt's x/y/z solver sweeps — can swap ranks
	// when CSE shifts their nearly-identical work totals).
	topOK := false
	for i := 0; i < len(base.Recs) && i < 3; i++ {
		if base.Recs[i].Label() == opt.Recs[0].Label() {
			topOK = true
		}
	}
	if !topOK {
		return false
	}
	set := map[string]bool{}
	for _, r := range base.Recs {
		set[r.Label()] = true
	}
	for _, r := range opt.Recs {
		if !set[r.Label()] {
			return false
		}
	}
	return true
}

// CompressedPlanningRow compares aggregating HCPA metrics directly on the
// dictionary against replaying the equivalent uncompressed trace (§4.4's
// "planning time from minutes to small fractions of a second").
type CompressedPlanningRow struct {
	Name           string
	DictEntries    int
	DynamicRegions uint64
	CompressedTime time.Duration
	ExpandedTime   time.Duration
	Speedup        float64
}

// CompressedPlanningAblation measures both aggregation paths.
func CompressedPlanningAblation() ([]CompressedPlanningRow, error) {
	var rows []CompressedPlanningRow
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		row := CompressedPlanningRow{
			Name:           b.Name,
			DictEntries:    len(c.Profile.Dict.Entries),
			DynamicRegions: c.Profile.Dict.RawCount,
		}
		start := time.Now()
		hcpa.Summarize(c.Profile, c.Program.Regions)
		row.CompressedTime = time.Since(start)

		start = time.Now()
		expandedSummarize(c.Profile, c.Program.Regions)
		row.ExpandedTime = time.Since(start)

		if row.CompressedTime > 0 {
			row.Speedup = float64(row.ExpandedTime) / float64(row.CompressedTime)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// expandedSummarize aggregates per-region work/cp the way a planner
// reading an uncompressed trace would: one record at a time, once per
// dynamic region instance. The result matches Summarize's aggregate work
// (checked by tests); only the cost differs.
func expandedSummarize(prof *profile.Profile, prog *regions.Program) []uint64 {
	counts := prof.InstanceCounts()
	work := make([]uint64, len(prog.Regions))
	for c, e := range prof.Dict.Entries {
		// Replay each instance as if it were a separate trace record.
		for i := int64(0); i < counts[c]; i++ {
			work[e.StaticID] += e.Work
		}
	}
	return work
}

// PersonalityRow compares the OpenMP and Cilk++ planners on one benchmark.
type PersonalityRow struct {
	Name        string
	OpenMPSize  int
	CilkSize    int
	OpenMPSpeed float64
	CilkSpeed   float64
}

// PersonalityComparison plans each benchmark under both shipped
// personalities and simulates both plans. The Cilk++ machine model uses
// cheaper fork/sync costs, reflecting its work-stealing runtime.
func PersonalityComparison() ([]PersonalityRow, error) {
	cilkMachine := exec.Machine{
		Cores:           32,
		ForkCost:        30,
		SchedCost:       1.0,
		ReductionCost:   12,
		SyncCost:        4,
		MigrationFactor: 0.2,
		NestedParallel:  true,
	}
	var rows []PersonalityRow
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		omp := planner.Make(c.Summary, planner.OpenMP())
		cilk := planner.Make(c.Summary, planner.Cilk())
		or := exec.BestConfig(c.Summary, toSet(PlanIDs(omp)), Machine())
		cr := exec.BestConfig(c.Summary, toSet(PlanIDs(cilk)), cilkMachine)
		rows = append(rows, PersonalityRow{
			Name:        b.Name,
			OpenMPSize:  len(omp.Recs),
			CilkSize:    len(cilk.Recs),
			OpenMPSpeed: or.Speedup,
			CilkSpeed:   cr.Speedup,
		})
	}
	return rows, nil
}

// PortabilityCell is one (plan personality, machine) pairing of the §5.3
// portability-accuracy matrix.
type PortabilityCell struct {
	Plan    string
	Machine string
	Geomean float64
}

// fineGrained models a research machine with cheap fine-grained
// parallelism (the paper's "100-core Tilera" contrast to the NUMA box).
func fineGrained() exec.Machine {
	return exec.Machine{
		Cores:           32,
		ForkCost:        15,
		SchedCost:       0.5,
		ReductionCost:   6,
		SyncCost:        2,
		MigrationFactor: 0.05,
		NestedParallel:  true,
	}
}

// PortabilityMatrix evaluates both planner personalities on both machine
// models (§5.3): a personality tuned to a machine should win there, and
// the mismatch penalty is the accuracy given up for portability.
func PortabilityMatrix() ([]PortabilityCell, error) {
	machines := []struct {
		name string
		m    exec.Machine
	}{
		{"numa32", Machine()},
		{"finegrained", fineGrained()},
	}
	plans := []struct {
		name string
		p    planner.Personality
	}{
		{"openmp", planner.OpenMP()},
		{"cilk", planner.Cilk()},
	}
	var cells []PortabilityCell
	for _, pl := range plans {
		for _, mc := range machines {
			prod, n := 1.0, 0
			for _, b := range bench.All() {
				c, err := bench.Load(b)
				if err != nil {
					return nil, err
				}
				ids := toSet(PlanIDs(planner.Make(c.Summary, pl.p)))
				r := exec.BestConfig(c.Summary, ids, mc.m)
				if r.Speedup > 0 {
					prod *= r.Speedup
					n++
				}
			}
			cells = append(cells, PortabilityCell{
				Plan:    pl.name,
				Machine: mc.name,
				Geomean: pow(prod, 1/float64(n)),
			})
		}
	}
	return cells, nil
}
