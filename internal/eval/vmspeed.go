package eval

// VM-speed experiment: wall-clock of the block-batched bytecode VM
// against the tree-walking reference interpreter over the benchmark
// suite, in plain (uninstrumented) and HCPA (full profiling) modes,
// together with the equivalence evidence — identical program output and
// counters, byte-identical KRPF2 profiles, identical rendered plans.
// This is the repo's record that the VM is a pure speed upgrade.

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/interp"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
)

// VMSpeedRow is the engine comparison for one benchmark.
type VMSpeedRow struct {
	Name  string `json:"name"`
	Steps uint64 `json:"steps"` // interpreter steps per run (both engines agree)

	PlainVM      time.Duration `json:"plain_vm_ns"`
	PlainTree    time.Duration `json:"plain_tree_ns"`
	PlainSpeedup float64       `json:"plain_speedup"`

	HCPAVM      time.Duration `json:"hcpa_vm_ns"`
	HCPATree    time.Duration `json:"hcpa_tree_ns"`
	HCPASpeedup float64       `json:"hcpa_speedup"`

	// Bounds-check elimination: the same VM with absint facts withheld
	// (-absint=off), so every check stays explicit. The unchecked build
	// must never lose to its own checked baseline.
	PlainChecked  time.Duration `json:"plain_checked_ns"`
	AbsintSpeedup float64       `json:"absint_speedup"`

	// Equivalence evidence, checked on this very measurement run.
	OutputEqual   bool `json:"output_equal"`   // plain output bytes identical
	CountersEqual bool `json:"counters_equal"` // work + steps identical, both modes
	ProfileEqual  bool `json:"profile_equal"`  // KRPF2 profile bytes identical
	PlanEqual     bool `json:"plan_equal"`     // rendered OpenMP plans identical
}

// VMSpeedSummary is the whole experiment: per-benchmark rows plus the
// headline geomeans.
type VMSpeedSummary struct {
	Rows []VMSpeedRow `json:"rows"`
	// PlainGeomean is the headline: geomean wall-clock speedup of the VM
	// over the tree-walker with no instrumentation (pure dispatch cost).
	PlainGeomean float64 `json:"plain_geomean_speedup"`
	// HCPAGeomean is the instrumented speedup (shadow-memory work, which
	// both engines share, bounds it below the plain number).
	HCPAGeomean float64 `json:"hcpa_geomean_speedup"`
	// AbsintGeomean is the bounds-check-elimination payoff: geomean
	// plain wall-clock speedup of the default (unchecked-ops) build over
	// the same VM compiled with -absint=off (every check explicit).
	AbsintGeomean float64 `json:"absint_geomean_speedup"`
	// AllEqual is true when every row's equivalence flags all hold.
	AllEqual bool `json:"all_equal"`
}

// timeBest runs f repeats times and returns the fastest wall-clock (the
// usual best-of-N noise filter for single-process benchmarking).
func timeBest(repeats int, f func() error) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// VMSpeed measures the engine comparison over the named benchmarks (nil =
// the whole suite), timing each engine/mode best-of-repeats (repeats ≤ 0
// defaults to 3).
func VMSpeed(names []string, repeats int) (*VMSpeedSummary, error) {
	if repeats <= 0 {
		repeats = 3
	}
	benches := bench.All()
	if len(names) > 0 {
		benches = benches[:0:0]
		for _, n := range names {
			b := bench.ByName(n)
			if b == nil {
				return nil, fmt.Errorf("eval: unknown benchmark %q", n)
			}
			benches = append(benches, b)
		}
	}
	sum := &VMSpeedSummary{AllEqual: true}
	plainLog, hcpaLog, absintLog := 0.0, 0.0, 0.0
	for _, b := range benches {
		prog, err := kremlin.Compile(b.Name+".kr", b.Source)
		if err != nil {
			return nil, err
		}
		prog.Bytecode() // compile outside the timed region
		checked, err := kremlin.CompileWith(b.Name+".kr", b.Source,
			kremlin.CompileOptions{DisableAbsint: true})
		if err != nil {
			return nil, err
		}
		checked.Bytecode()
		row := VMSpeedRow{Name: b.Name}

		// One untimed warm-up of each build: the first-ever execution
		// pays one-off costs (heap growth, page faults) that would bias
		// whichever build is timed first.
		if _, err := prog.Run(&kremlin.RunConfig{Out: io.Discard}); err != nil {
			return nil, fmt.Errorf("eval: %s warm-up: %w", b.Name, err)
		}
		if _, err := checked.Run(&kremlin.RunConfig{Out: io.Discard}); err != nil {
			return nil, fmt.Errorf("eval: %s warm-up checked: %w", b.Name, err)
		}

		// Plain mode: output + counters must match across engines.
		var vmOut, treeOut strings.Builder
		var vmRes, treeRes *interp.Result
		row.PlainVM, err = timeBest(repeats, func() error {
			vmOut.Reset()
			r, err := prog.Run(&kremlin.RunConfig{Out: &vmOut})
			vmRes = r
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("eval: %s plain vm: %w", b.Name, err)
		}
		row.PlainTree, err = timeBest(repeats, func() error {
			treeOut.Reset()
			r, err := prog.Run(&kremlin.RunConfig{Out: &treeOut, Engine: kremlin.EngineTree})
			treeRes = r
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("eval: %s plain tree: %w", b.Name, err)
		}
		row.Steps = vmRes.Steps
		row.OutputEqual = vmOut.String() == treeOut.String()
		row.CountersEqual = vmRes.Work == treeRes.Work && vmRes.Steps == treeRes.Steps

		// Checked baseline: identical semantics, every check explicit.
		var chkOut strings.Builder
		var chkRes *interp.Result
		row.PlainChecked, err = timeBest(repeats, func() error {
			chkOut.Reset()
			r, err := checked.Run(&kremlin.RunConfig{Out: &chkOut})
			chkRes = r
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("eval: %s plain checked: %w", b.Name, err)
		}
		if chkOut.String() != vmOut.String() {
			row.OutputEqual = false
		}
		if chkRes.Work != vmRes.Work || chkRes.Steps != vmRes.Steps {
			row.CountersEqual = false
		}

		// HCPA mode: profiles must serialize byte-identically and plan
		// identically.
		var vmProf, treeProf *profile.Profile
		row.HCPAVM, err = timeBest(repeats, func() error {
			p, _, err := prog.Profile(nil)
			vmProf = p
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("eval: %s hcpa vm: %w", b.Name, err)
		}
		row.HCPATree, err = timeBest(repeats, func() error {
			p, r, err := prog.Profile(&kremlin.RunConfig{Engine: kremlin.EngineTree})
			treeProf = p
			if err == nil && (r.Work != vmRes.Work || r.Steps != vmRes.Steps) {
				row.CountersEqual = false
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("eval: %s hcpa tree: %w", b.Name, err)
		}
		var vb, tb bytes.Buffer
		if _, err := vmProf.WriteTo(&vb); err != nil {
			return nil, err
		}
		if _, err := treeProf.WriteTo(&tb); err != nil {
			return nil, err
		}
		row.ProfileEqual = bytes.Equal(vb.Bytes(), tb.Bytes())
		// The checked build's profile must also serialize byte-identically
		// — bounds-check elimination may change nothing observable.
		chkProf, _, err := checked.Profile(nil)
		if err != nil {
			return nil, fmt.Errorf("eval: %s hcpa checked: %w", b.Name, err)
		}
		var cb bytes.Buffer
		if _, err := chkProf.WriteTo(&cb); err != nil {
			return nil, err
		}
		if !bytes.Equal(cb.Bytes(), vb.Bytes()) {
			row.ProfileEqual = false
		}
		row.PlanEqual = prog.Plan(vmProf, planner.OpenMP()).Render() ==
			prog.Plan(treeProf, planner.OpenMP()).Render()

		row.PlainSpeedup = float64(row.PlainTree) / float64(row.PlainVM)
		row.HCPASpeedup = float64(row.HCPATree) / float64(row.HCPAVM)
		row.AbsintSpeedup = float64(row.PlainChecked) / float64(row.PlainVM)
		plainLog += math.Log(row.PlainSpeedup)
		hcpaLog += math.Log(row.HCPASpeedup)
		absintLog += math.Log(row.AbsintSpeedup)
		if !row.OutputEqual || !row.CountersEqual || !row.ProfileEqual || !row.PlanEqual {
			sum.AllEqual = false
		}
		sum.Rows = append(sum.Rows, row)
	}
	if n := len(sum.Rows); n > 0 {
		sum.PlainGeomean = math.Exp(plainLog / float64(n))
		sum.HCPAGeomean = math.Exp(hcpaLog / float64(n))
		sum.AbsintGeomean = math.Exp(absintLog / float64(n))
	}
	return sum, nil
}
