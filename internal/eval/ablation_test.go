package eval

import "testing"

func TestDependenceBreakingAblationShape(t *testing.T) {
	rows, err := DependenceBreakingAblation()
	if err != nil {
		t.Fatal(err)
	}
	collapsed := 0
	for _, r := range rows {
		collapsed += r.LoopsCollapsed
		if r.PlanWithout > r.PlanWith+1 {
			t.Errorf("%s: plan grew without breaking: %d vs %d", r.Name, r.PlanWithout, r.PlanWith)
		}
	}
	// ep's reduction main loop (and others) must collapse without the
	// analysis — that's the paper's motivation for breaking them.
	if collapsed < 3 {
		t.Errorf("only %d loops collapsed; dependence breaking appears inert", collapsed)
	}
	for _, r := range rows {
		if r.Name == "ep" && r.LoopsCollapsed == 0 {
			t.Error("ep: the reduction main loop should collapse without breaking")
		}
	}
}

func TestOptimizationAblationShape(t *testing.T) {
	rows, err := OptimizationAblation()
	if err != nil {
		t.Fatal(err)
	}
	agrees := 0
	for _, r := range rows {
		if r.WorkReduction < 1.0 {
			t.Errorf("%s: optimizer increased work (%.3fx)", r.Name, r.WorkReduction)
		}
		if r.PlanAgrees {
			agrees++
		}
	}
	if agrees != len(rows) {
		t.Errorf("optimizer changed the core plan on %d of %d benchmarks", len(rows)-agrees, len(rows))
	}
}

func TestCompressedPlanningAblationShape(t *testing.T) {
	rows, err := CompressedPlanningAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DictEntries <= 0 || r.DynamicRegions < uint64(r.DictEntries) {
			t.Errorf("%s: degenerate sizes %d/%d", r.Name, r.DictEntries, r.DynamicRegions)
		}
	}
}

func TestPersonalityComparisonShape(t *testing.T) {
	rows, err := PersonalityComparison()
	if err != nil {
		t.Fatal(err)
	}
	widerSomewhere := false
	for _, r := range rows {
		if r.CilkSize > r.OpenMPSize {
			widerSomewhere = true
		}
		if r.CilkSize < r.OpenMPSize {
			t.Errorf("%s: cilk plan (%d) smaller than openmp (%d)", r.Name, r.CilkSize, r.OpenMPSize)
		}
	}
	if !widerSomewhere {
		t.Error("cilk personality never admitted extra regions")
	}
}

func TestPortabilityMatrixShape(t *testing.T) {
	cells, err := PortabilityMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(plan, machine string) float64 {
		for _, c := range cells {
			if c.Plan == plan && c.Machine == machine {
				return c.Geomean
			}
		}
		t.Fatalf("missing cell %s/%s", plan, machine)
		return 0
	}
	// The nesting-happy cilk plan must benefit more from the cheap
	// fine-grained machine than the conservative openmp plan does
	// (relative uplift), and every cell must beat serial.
	for _, c := range cells {
		if c.Geomean < 1 {
			t.Errorf("%s on %s: geomean %f < 1", c.Plan, c.Machine, c.Geomean)
		}
	}
	cilkUplift := get("cilk", "finegrained") / get("cilk", "numa32")
	openmpUplift := get("openmp", "finegrained") / get("openmp", "numa32")
	if cilkUplift < openmpUplift {
		t.Errorf("cilk uplift %.2f < openmp uplift %.2f; the fine-grained machine should reward the nesting plan more",
			cilkUplift, openmpUplift)
	}
}
