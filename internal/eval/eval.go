// Package eval regenerates the paper's evaluation: every figure and table
// of §6 plus the compression and overhead numbers of §4.4. Each experiment
// returns plain data; cmd/kremlin-bench and the top-level benchmarks format
// it.
package eval

import (
	"math"
	"sort"
	"strings"
	"time"

	"kremlin/internal/bench"
	"kremlin/internal/exec"
	"kremlin/internal/hcpa"
	"kremlin/internal/planner"
)

// Machine returns the simulated target used by all experiments.
func Machine() exec.Machine { return exec.Default32() }

// PlanIDs extracts the region IDs of a plan.
func PlanIDs(p *planner.Plan) []int {
	ids := make([]int, len(p.Recs))
	for i, r := range p.Recs {
		ids[i] = r.Stats.Region.ID
	}
	return ids
}

func toSet(ids []int) map[int]bool {
	s := make(map[int]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Fig6Row is one row of the paper's Figure 6: plan sizes and performance
// of Kremlin-planned vs MANUAL parallelization.
type Fig6Row struct {
	Name           string
	ManualSize     int
	KremlinSize    int
	Overlap        int
	SizeReduction  float64 // ManualSize / KremlinSize
	ManualSpeedup  float64
	KremlinSpeedup float64
	Relative       float64 // Kremlin / Manual
}

// Fig6 computes plan-size and speedup comparisons for every benchmark.
func Fig6() ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		plan := c.Program.Plan(c.Profile, planner.OpenMP())
		kIDs := PlanIDs(plan)
		mIDs := bench.ManualPlan(b, c.Summary)

		kSet, mSet := toSet(kIDs), toSet(mIDs)
		overlap := 0
		for id := range kSet {
			if mSet[id] {
				overlap++
			}
		}
		m := Machine()
		kRes := exec.BestConfig(c.Summary, kSet, m)
		mRes := exec.BestConfig(c.Summary, mSet, m)

		row := Fig6Row{
			Name:           b.Name,
			ManualSize:     len(mIDs),
			KremlinSize:    len(kIDs),
			Overlap:        overlap,
			ManualSpeedup:  mRes.Speedup,
			KremlinSpeedup: kRes.Speedup,
		}
		if row.KremlinSize > 0 {
			row.SizeReduction = float64(row.ManualSize) / float64(row.KremlinSize)
		}
		if mRes.Speedup > 0 {
			row.Relative = kRes.Speedup / mRes.Speedup
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Totals aggregates Figure 6(a)'s bottom row.
func Fig6Totals(rows []Fig6Row) (manual, kremlin, overlap int, reduction, geomeanRel float64) {
	prod := 1.0
	n := 0
	for _, r := range rows {
		manual += r.ManualSize
		kremlin += r.KremlinSize
		overlap += r.Overlap
		if r.Relative > 0 {
			prod *= r.Relative
			n++
		}
	}
	if kremlin > 0 {
		reduction = float64(manual) / float64(kremlin)
	}
	if n > 0 {
		geomeanRel = pow(prod, 1/float64(n))
	}
	return
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// Fig7Series is the marginal-benefit curve of one benchmark: cumulative
// time reduction (%) as plan entries are applied in order; entries past
// CutIndex are MANUAL-only regions (right of the paper's dotted line).
type Fig7Series struct {
	Name      string
	Reduction []float64
	CutIndex  int // number of Kremlin-recommended entries
}

// Fig7 computes the marginal-benefit curves.
func Fig7() ([]Fig7Series, error) {
	var out []Fig7Series
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		plan := c.Program.Plan(c.Profile, planner.OpenMP())
		kIDs := PlanIDs(plan)
		kSet := toSet(kIDs)

		// MANUAL-only regions, largest coverage first.
		mIDs := bench.ManualPlan(b, c.Summary)
		var extra []int
		for _, id := range mIDs {
			if !kSet[id] {
				extra = append(extra, id)
			}
		}
		sort.Slice(extra, func(i, j int) bool {
			return cov(c.Summary, extra[i]) > cov(c.Summary, extra[j])
		})
		order := append(append([]int{}, kIDs...), extra...)
		out = append(out, Fig7Series{
			Name:      b.Name,
			Reduction: exec.MarginalSeries(c.Summary, order, Machine()),
			CutIndex:  len(kIDs),
		})
	}
	return out, nil
}

func cov(sum *hcpa.Summary, id int) float64 {
	if st := sum.ByID(id); st != nil {
		return st.Coverage
	}
	return 0
}

// Fig8Row is one benchmark's share of total realized benefit at 25%
// increments of its plan.
type Fig8Row struct {
	Name     string
	Fraction [4]float64 // benefit share after 25/50/75/100% of the plan
}

// Fig8 computes region-prioritization effectiveness.
func Fig8() ([]Fig8Row, [4]float64, [4]float64, error) {
	var rows []Fig8Row
	var avg [4]float64
	counted := 0
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, avg, avg, err
		}
		plan := c.Program.Plan(c.Profile, planner.OpenMP())
		ids := PlanIDs(plan)
		if len(ids) == 0 {
			continue
		}
		series := exec.MarginalSeries(c.Summary, ids, Machine())
		final := series[len(series)-1]
		var row Fig8Row
		row.Name = b.Name
		for q := 0; q < 4; q++ {
			idx := (len(ids)*(q+1) + 3) / 4 // ceil of quarter boundary
			if idx > len(ids) {
				idx = len(ids)
			}
			v := series[idx-1]
			if final > 0 {
				row.Fraction[q] = 100 * v / final
			}
		}
		rows = append(rows, row)
		for q := 0; q < 4; q++ {
			avg[q] += row.Fraction[q]
		}
		counted++
	}
	var marginal [4]float64
	if counted > 0 {
		for q := 0; q < 4; q++ {
			avg[q] /= float64(counted)
		}
		marginal[0] = avg[0]
		for q := 1; q < 4; q++ {
			marginal[q] = avg[q] - avg[q-1]
		}
	}
	return rows, avg, marginal, nil
}

// Fig9Row is one benchmark's plan size under the three planner
// configurations, as a percentage of its considered regions.
type Fig9Row struct {
	Name                        string
	Total                       int // executed loop+func regions
	Work                        int
	WorkSP                      int
	Full                        int
	WorkPct, WorkSPPct, FullPct float64
}

// Fig9 evaluates plan-size reduction due to each planning component.
func Fig9() ([]Fig9Row, [3]float64, error) {
	var rows []Fig9Row
	var avg [3]float64
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, avg, err
		}
		w := c.Program.Plan(c.Profile, planner.WorkOnly())
		ws := c.Program.Plan(c.Profile, planner.WorkSP())
		full := c.Program.Plan(c.Profile, planner.OpenMP())
		row := Fig9Row{
			Name:   b.Name,
			Total:  full.Considered,
			Work:   len(w.Recs),
			WorkSP: len(ws.Recs),
			Full:   len(full.Recs),
		}
		if row.Total > 0 {
			row.WorkPct = 100 * float64(row.Work) / float64(row.Total)
			row.WorkSPPct = 100 * float64(row.WorkSP) / float64(row.Total)
			row.FullPct = 100 * float64(row.Full) / float64(row.Total)
		}
		rows = append(rows, row)
		avg[0] += row.WorkPct
		avg[1] += row.WorkSPPct
		avg[2] += row.FullPct
	}
	for i := range avg {
		avg[i] /= float64(len(rows))
	}
	return rows, avg, nil
}

// CompressionRow reports trace compression for one benchmark (§4.4).
type CompressionRow struct {
	Name       string
	RawRecords uint64
	RawBytes   uint64
	Compressed uint64
	Ratio      float64
}

// Compression measures raw-vs-compressed parallelism-profile sizes.
func Compression() ([]CompressionRow, float64, error) {
	var rows []CompressionRow
	var totalRatio float64
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, 0, err
		}
		raw := c.Profile.RawBytes()
		comp := c.Profile.MarshalSize()
		row := CompressionRow{
			Name:       b.Name,
			RawRecords: c.Profile.Dict.RawCount,
			RawBytes:   raw,
			Compressed: comp,
		}
		if comp > 0 {
			row.Ratio = float64(raw) / float64(comp)
		}
		rows = append(rows, row)
		totalRatio += row.Ratio
	}
	return rows, totalRatio / float64(len(rows)), nil
}

// OverheadRow reports instrumentation slowdown for one benchmark (§4.4:
// HCPA instrumentation ≈ 50x over gprof-style instrumentation).
type OverheadRow struct {
	Name               string
	Plain, Gprof, HCPA time.Duration
	GprofSlowdown      float64 // gprof / plain
	HCPASlowdown       float64 // hcpa / plain
	VsGprof            float64 // hcpa / gprof
}

// Overhead times the three execution modes.
func Overhead() ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		timeMode := func(run func() error) (time.Duration, error) {
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}
		plain, err := timeMode(func() error { _, err := c.Program.Run(nil); return err })
		if err != nil {
			return nil, err
		}
		gp, err := timeMode(func() error { _, err := c.Program.RunGprof(nil); return err })
		if err != nil {
			return nil, err
		}
		hc, err := timeMode(func() error { _, _, err := c.Program.Profile(nil); return err })
		if err != nil {
			return nil, err
		}
		row := OverheadRow{Name: b.Name, Plain: plain, Gprof: gp, HCPA: hc}
		if plain > 0 {
			row.GprofSlowdown = float64(gp) / float64(plain)
			row.HCPASlowdown = float64(hc) / float64(plain)
		}
		if gp > 0 {
			row.VsGprof = float64(hc) / float64(gp)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SPClassification reproduces §6.2's false-positive comparison: the share
// of regions classified low-parallelism by self-P vs total-P at the given
// threshold, pooled over all benchmarks.
func SPClassification(threshold float64) (selfLow, totalLow float64, regions int, err error) {
	var sl, tl, n float64
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return 0, 0, 0, err
		}
		s, t, k := c.Summary.LowParallelismShare(threshold)
		sl += s * float64(k)
		tl += t * float64(k)
		n += float64(k)
	}
	if n == 0 {
		return 0, 0, 0, nil
	}
	return sl / n, tl / n, int(n), nil
}

// SensitivityRow compares a train-input plan applied to the ref input.
type SensitivityRow struct {
	Name         string
	TrainSpeedup float64
	RefSpeedup   float64
	PlanSize     int
}

// InputSensitivity reuses each SPEC benchmark's train-input plan on its
// ref input (§6.1).
func InputSensitivity() ([]SensitivityRow, error) {
	var rows []SensitivityRow
	for _, b := range bench.All() {
		if b.RefSource == "" {
			continue
		}
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		plan := c.Program.Plan(c.Profile, planner.OpenMP())
		ids := toSet(PlanIDs(plan))

		refBench := &bench.Benchmark{Name: b.Name + "-ref", Suite: b.Suite, Source: b.RefSource, Style: b.Style, Input: "ref"}
		rc, err := bench.Load(refBench)
		if err != nil {
			return nil, err
		}
		m := Machine()
		trainRes := exec.BestConfig(c.Summary, ids, m)
		refRes := exec.BestConfig(rc.Summary, ids, m)
		rows = append(rows, SensitivityRow{
			Name:         b.Name,
			TrainSpeedup: trainRes.Speedup,
			RefSpeedup:   refRes.Speedup,
			PlanSize:     len(plan.Recs),
		})
	}
	return rows, nil
}

// Fig3 renders the tracking benchmark's plan in the paper's UI format.
func Fig3() (string, error) {
	c, err := bench.Load(bench.Tracking())
	if err != nil {
		return "", err
	}
	plan := c.Program.Plan(c.Profile, planner.OpenMP())
	var sb strings.Builder
	sb.WriteString("$> make CC=kremlin-cc\n$> ./tracking data\n$> kremlin tracking --personality=openmp\n\n")
	sb.WriteString(plan.Render())
	return sb.String(), nil
}

// ScalingRow is one benchmark's simulated speedup at each core count under
// its Kremlin plan — the absolute-speedup data annotated on the paper's
// Figure 6(b) bars (their programs ranged 1.5x–25.89x at the best
// configuration).
type ScalingRow struct {
	Name     string
	Speedups []float64 // cores 1,2,4,8,16,32
	Best     float64
}

// Scaling sweeps core counts for every benchmark.
func Scaling() ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, b := range bench.All() {
		c, err := bench.Load(b)
		if err != nil {
			return nil, err
		}
		plan := toSet(PlanIDs(c.Program.Plan(c.Profile, planner.OpenMP())))
		row := ScalingRow{Name: b.Name}
		m := Machine()
		for p := 1; p <= 32; p *= 2 {
			r := exec.Simulate(c.Summary, plan, m.WithCores(p))
			row.Speedups = append(row.Speedups, r.Speedup)
			if r.Speedup > row.Best {
				row.Best = r.Speedup
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
