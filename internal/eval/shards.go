package eval

// Shard-scaling experiment: wall-clock and allocation behaviour of the
// parallel depth-window sharded profiler at increasing shard counts, plus
// the equivalence check that every shard count plans identically to the
// full-depth run. This is the repo's evidence for the "profile the
// profiler on multicore" claim.

import (
	"fmt"
	"runtime"
	"time"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/planner"
)

// ShardPoint is one (shard count, cost) measurement.
type ShardPoint struct {
	Shards  int           `json:"shards"`
	Time    time.Duration `json:"time_ns"`
	Allocs  uint64        `json:"allocs"`
	Windows int           `json:"windows"` // windows actually used (≤ Shards)
}

// ShardRow is the shard-scaling measurement for one benchmark.
type ShardRow struct {
	Name string `json:"name"`
	// Points are ordered by shard count; Points[0] is the sequential
	// (K=1) baseline.
	Points []ShardPoint `json:"points"`
	// BestSpeedup is baseline time / best sharded time.
	BestSpeedup float64 `json:"best_speedup"`
	// PlanEqual reports whether every shard count produced a plan
	// identical to the sequential run's.
	PlanEqual bool `json:"plan_equal"`
}

// ShardScaling measures sharded profiling at the given shard counts over
// the named benchmarks (nil names = the whole suite; counts defaults to
// 1, 2, 4, 8).
func ShardScaling(names []string, counts []int) ([]ShardRow, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	benches := bench.All()
	if len(names) > 0 {
		benches = benches[:0:0]
		for _, n := range names {
			b := bench.ByName(n)
			if b == nil {
				return nil, fmt.Errorf("eval: unknown benchmark %q", n)
			}
			benches = append(benches, b)
		}
	}
	var rows []ShardRow
	for _, b := range benches {
		prog, err := kremlin.Compile(b.Name+".kr", b.Source)
		if err != nil {
			return nil, err
		}
		row := ShardRow{Name: b.Name, PlanEqual: true}
		var basePlan string
		var baseTime time.Duration
		best := time.Duration(0)
		for i, k := range counts {
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			prof, res, err := prog.ProfileSharded(nil, k)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if err != nil {
				return nil, fmt.Errorf("eval: %s shards=%d: %w", b.Name, k, err)
			}
			plan := prog.Plan(prof, planner.OpenMP()).Render()
			if i == 0 {
				basePlan, baseTime, best = plan, elapsed, elapsed
			} else {
				if plan != basePlan {
					row.PlanEqual = false
				}
				if elapsed < best {
					best = elapsed
				}
			}
			row.Points = append(row.Points, ShardPoint{
				Shards:  k,
				Time:    elapsed,
				Allocs:  ms1.Mallocs - ms0.Mallocs,
				Windows: len(res.Windows),
			})
		}
		if best > 0 {
			row.BestSpeedup = float64(baseTime) / float64(best)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
