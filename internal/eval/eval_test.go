package eval

import (
	"strings"
	"testing"
)

// These tests assert the *shape* of every reproduced experiment — who
// wins, what decreases, roughly by how much — per the reproduction goals
// in DESIGN.md. Exact values are recorded in EXPERIMENTS.md.

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("benchmarks = %d, want 11", len(rows))
	}
	manual, kremlin, overlap, reduction, geo := Fig6Totals(rows)
	if kremlin > manual {
		t.Errorf("Kremlin plans overall (%d) must not exceed MANUAL (%d)", kremlin, manual)
	}
	if reduction < 1.0 {
		t.Errorf("plan-size reduction %.2f < 1", reduction)
	}
	if float64(overlap) < 0.6*float64(kremlin) {
		t.Errorf("overlap %d too small for %d Kremlin regions", overlap, kremlin)
	}
	if geo < 0.9 {
		t.Errorf("geomean relative speedup %.2f; Kremlin should be comparable to MANUAL", geo)
	}

	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.KremlinSize == 0 {
			t.Errorf("%s: empty Kremlin plan", r.Name)
		}
		if r.Relative < 0.75 {
			t.Errorf("%s: Kremlin plan %.2fx of MANUAL; paper's worst case is ~0.88x", r.Name, r.Relative)
		}
	}
	// The paper's two big wins: sp (1.85x) and is (1.46x).
	if byName["sp"].Relative < 1.3 {
		t.Errorf("sp: relative %.2fx, want a substantial Kremlin win", byName["sp"].Relative)
	}
	if byName["is"].Relative < 1.2 {
		t.Errorf("is: relative %.2fx, want a substantial Kremlin win", byName["is"].Relative)
	}
	// ep: single-region plans on both sides, identical performance.
	if byName["ep"].KremlinSize != 1 {
		t.Errorf("ep: Kremlin plan size %d, want 1 (the reduction main loop)", byName["ep"].KremlinSize)
	}
}

func TestFig7Shape(t *testing.T) {
	series, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Reduction) == 0 {
			t.Errorf("%s: empty series", s.Name)
			continue
		}
		// Cumulative reduction is monotone and bounded.
		for i, v := range s.Reduction {
			if v < -1e-9 || v > 100 {
				t.Errorf("%s: reduction[%d] = %f", s.Name, i, v)
			}
			if i > 0 && v < s.Reduction[i-1]-1e-9 {
				t.Errorf("%s: cumulative reduction decreased at %d", s.Name, i)
			}
		}
		// MANUAL-only tail regions contribute little: the paper's headline.
		if s.CutIndex > 0 && s.CutIndex < len(s.Reduction) {
			atCut := s.Reduction[s.CutIndex-1]
			final := s.Reduction[len(s.Reduction)-1]
			if final-atCut > 12 {
				t.Errorf("%s: MANUAL-only regions added %.1f%%, want negligible", s.Name, final-atCut)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, avg, marginal, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Benefit shares increase to 100%.
	for _, r := range rows {
		for q := 1; q < 4; q++ {
			if r.Fraction[q] < r.Fraction[q-1]-1e-9 {
				t.Errorf("%s: fraction decreased at quarter %d: %v", r.Name, q, r.Fraction)
			}
		}
		if r.Fraction[3] < 99.9 {
			t.Errorf("%s: full plan delivers %.1f%%, want 100", r.Name, r.Fraction[3])
		}
	}
	// The paper's prioritization claim: a majority of benefit in the first
	// quarter and decreasing marginal contributions.
	if avg[0] < 50 {
		t.Errorf("first quarter delivers %.1f%%, want majority (paper: 56.2%%)", avg[0])
	}
	for q := 1; q < 4; q++ {
		if marginal[q] > marginal[0] {
			t.Errorf("marginal benefit grew at quarter %d: %v", q, marginal)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rows, avg, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Work < r.WorkSP || r.WorkSP < r.Full {
			t.Errorf("%s: plan sizes must shrink: work %d >= work+sp %d >= full %d",
				r.Name, r.Work, r.WorkSP, r.Full)
		}
	}
	// Paper: 58.9% -> 25.4% -> 3.0%. Our scaled-down programs have far
	// fewer regions so the percentages sit higher, but each stage must
	// still cut the plan hard.
	if avg[1] > 0.75*avg[0] {
		t.Errorf("self-parallelism stage only reduced %.1f%% -> %.1f%%", avg[0], avg[1])
	}
	if avg[2] > 0.6*avg[1] {
		t.Errorf("full planner only reduced %.1f%% -> %.1f%%", avg[1], avg[2])
	}
}

func TestCompressionShape(t *testing.T) {
	rows, avgRatio, err := Compression()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ratio < 100 {
			t.Errorf("%s: compression ratio %.0fx, want >= 100x", r.Name, r.Ratio)
		}
		if r.Compressed == 0 || r.RawBytes == 0 {
			t.Errorf("%s: degenerate sizes %d/%d", r.Name, r.RawBytes, r.Compressed)
		}
	}
	if avgRatio < 1000 {
		t.Errorf("average ratio %.0fx, want >= 1000x", avgRatio)
	}
}

func TestSPClassificationShape(t *testing.T) {
	selfLow, totalLow, n, err := SPClassification(5.0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Fatalf("region population %d too small", n)
	}
	// Self-parallelism must flag strictly more regions as low-parallelism
	// than total-parallelism (the paper's 2.28x false-positive reduction).
	if selfLow <= totalLow {
		t.Errorf("selfLow %.3f <= totalLow %.3f", selfLow, totalLow)
	}
	if selfLow/totalLow < 1.5 {
		t.Errorf("reduction factor %.2fx, want >= 1.5x (paper: 2.28x)", selfLow/totalLow)
	}
}

func TestInputSensitivityShape(t *testing.T) {
	rows, err := InputSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("SPEC rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.RefSpeedup < 0.7*r.TrainSpeedup {
			t.Errorf("%s: train plan degrades on ref input: %.2fx vs %.2fx",
				r.Name, r.RefSpeedup, r.TrainSpeedup)
		}
	}
}

func TestFig3Render(t *testing.T) {
	s, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"kremlin tracking --personality=openmp", "Self-P", "calcLambda"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Fig3 output missing %q", frag)
		}
	}
	// The serial fillFeatures outer loops must not lead the plan; the blur
	// and lambda kernels dominate.
	if strings.Contains(strings.SplitN(s, "\n", 8)[6], "fillFeatures") {
		t.Log("note: fillFeatures appears early in the plan")
	}
}

func TestScalingShape(t *testing.T) {
	rows, err := Scaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Speedups) != 6 {
			t.Fatalf("%s: %d core points", r.Name, len(r.Speedups))
		}
		if r.Speedups[0] < 0.999 || r.Speedups[0] > 1.001 {
			t.Errorf("%s: 1-core speedup %f", r.Name, r.Speedups[0])
		}
		// Speedups rise until the peak, then may roll over (the paper's
		// locality note for its NUMA machine); never exceed the core count.
		peaked := false
		for i := 1; i < len(r.Speedups); i++ {
			cores := float64(int(1) << i)
			if r.Speedups[i] > cores+1e-9 {
				t.Errorf("%s: speedup %f exceeds %0.f cores", r.Name, r.Speedups[i], cores)
			}
			if r.Speedups[i] < r.Speedups[i-1] {
				peaked = true
			} else if peaked && r.Speedups[i] > r.Speedups[i-1]*1.05 {
				t.Errorf("%s: speedup recovered after rollover: %v", r.Name, r.Speedups)
			}
		}
		// The paper's range at best configuration: 1.5x–25.89x; ours must at
		// least clear the bottom of that range.
		if r.Best < 1.5 {
			t.Errorf("%s: best speedup %f below the paper's observed floor", r.Name, r.Best)
		}
	}
}
