package eval

import (
	"sort"

	"kremlin"
	"kremlin/internal/bench"
)

// VetLoop is one loop's static dependence verdict.
type VetLoop struct {
	Label   string // region label (file:line loop func)
	Verdict string // parallel | serial | unknown
	Detail  string // first dependence/blocker, empty for parallel
}

// VetRow is the static loop-dependence classification of one program.
type VetRow struct {
	Name     string
	Loops    int
	Parallel int
	Serial   int
	Unknown  int
	Reports  []VetLoop
}

// Vet runs the static loop-dependence analyzer over the whole benchmark
// suite, the tracking example, and any extra named sources (the standalone
// example programs), returning one row per program. Only compilation is
// needed — the verdicts are a compile-time product — so this stays cheap
// even standalone.
func Vet(extra map[string]string) ([]VetRow, error) {
	srcs := make(map[string]string)
	for _, b := range bench.All() {
		srcs[b.Name] = b.Source
	}
	t := bench.Tracking()
	srcs[t.Name] = t.Source
	for name, src := range extra {
		srcs[name] = src
	}

	names := make([]string, 0, len(srcs))
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows []VetRow
	for _, name := range names {
		prog, err := kremlin.Compile(name+".kr", srcs[name])
		if err != nil {
			return nil, err
		}
		row := VetRow{Name: name, Loops: len(prog.Vet.Loops)}
		row.Parallel, row.Serial, row.Unknown = prog.Vet.Counts()
		for _, rep := range prog.Vet.Loops {
			vl := VetLoop{Label: rep.Region.Label(), Verdict: rep.Verdict.String()}
			if len(rep.Causes) > 0 {
				vl.Detail = rep.Causes[0].String()
			} else if len(rep.Blockers) > 0 {
				vl.Detail = rep.Blockers[0].String()
			}
			row.Reports = append(row.Reports, vl)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// VetTotals sums the per-program counts.
func VetTotals(rows []VetRow) (loops, parallel, serial, unknown int) {
	for _, r := range rows {
		loops += r.Loops
		parallel += r.Parallel
		serial += r.Serial
		unknown += r.Unknown
	}
	return
}

// UnknownBudget is the tracked ceiling on unknown dependence verdicts
// across the standard vet corpus (bench suite + tracking + the two
// standalone examples). The abstract-interpretation facts fed into
// depcheck are expected to keep the count strictly below this; a
// regression that pushes it back up fails the vet experiment.
const UnknownBudget = 36

// VetSummary is the tracked roll-up of a vet run, serialized alongside
// the per-program rows so dashboards can watch the unknown count over
// time without re-deriving it.
type VetSummary struct {
	Loops         int  `json:"loops"`
	Parallel      int  `json:"parallel"`
	Serial        int  `json:"serial"`
	Unknown       int  `json:"unknown"`
	UnknownBudget int  `json:"unknown_budget"`
	WithinBudget  bool `json:"within_budget"`
}

// Summarize folds per-program rows into the tracked summary.
func Summarize(rows []VetRow) VetSummary {
	loops, par, ser, unk := VetTotals(rows)
	return VetSummary{
		Loops: loops, Parallel: par, Serial: ser, Unknown: unk,
		UnknownBudget: UnknownBudget,
		WithinBudget:  unk < UnknownBudget,
	}
}
