package eval

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"kremlin/internal/inccache"
	"kremlin/internal/serve"
)

// serveBenchProg is the load-generator payload: a few thousand steps of
// profiled work per job, so a request measures daemon overhead plus a
// realistic (small) HCPA run rather than either extreme.
const serveBenchProg = `
int a[200];
int main() {
	int acc = 0;
	for (int i = 0; i < 200; i++) {
		a[i] = i * 3;
	}
	for (int i = 0; i < 200; i++) {
		acc = acc + a[i];
	}
	return acc;
}
`

// ServeBenchRow is one sustained-load measurement of the serve daemon.
type ServeBenchRow struct {
	Scenario    string  `json:"scenario"`    // "cold" (caches off) or "warm" (caches on, primed, repeat traffic)
	Transport   string  `json:"transport"`   // "tcp" (loopback HTTP) or "memory" (net.Pipe HTTP)
	Concurrency int     `json:"concurrency"` // concurrent in-flight clients
	Jobs        int     `json:"jobs"`        // total jobs pushed through
	Workers     int     `json:"workers"`     // daemon worker-pool size
	QueueDepth  int     `json:"queue_depth"`
	QPS         float64 `json:"qps"`    // completed jobs / wall-clock
	P50Ms       float64 `json:"p50_ms"` // median request latency
	P99Ms       float64 `json:"p99_ms"` // tail request latency
	MaxMs       float64 `json:"max_ms"` // worst request latency
	ElapsedMs   float64 `json:"elapsed_ms"`
	OK          int     `json:"ok"`     // 200 responses
	Errors      int     `json:"errors"` // non-200 responses (shed, limit, ...)
	GoMaxProcs  int     `json:"gomaxprocs"`
}

// memoryTransportThreshold is the concurrency beyond which the bench
// switches from loopback TCP to an in-memory net.Pipe transport: 10k
// concurrent TCP connections need ~2 file descriptors each, which
// collides with common fd limits, and the kernel connection machinery
// starts to dominate what is supposed to be a daemon measurement.
const memoryTransportThreshold = 2000

// ServeBench drives a live in-process daemon at each requested concurrency
// level and reports sustained QPS and latency percentiles, cold (every
// cache off — each job pays the full pipeline). The queue is sized at 2×
// the concurrency so admission control never sheds during the measurement —
// shedding behavior is the chaos/CLI tests' subject; here we measure the
// service rate.
func ServeBench(concurrencies []int, jobsPer int) ([]ServeBenchRow, error) {
	return serveBenchScenario(concurrencies, jobsPer, false)
}

// ServeBenchWarm measures repeat traffic with every cache layer on (the
// whole-job cache, the compile cache, and a shared inccache store), primed
// by one untimed submission: the steady state of a daemon whose tenants
// resubmit the same or near-same programs.
func ServeBenchWarm(concurrencies []int, jobsPer int) ([]ServeBenchRow, error) {
	return serveBenchScenario(concurrencies, jobsPer, true)
}

func serveBenchScenario(concurrencies []int, jobsPer int, warm bool) ([]ServeBenchRow, error) {
	rows := make([]ServeBenchRow, 0, len(concurrencies))
	for _, conc := range concurrencies {
		jobs := jobsPer
		if jobs <= 0 {
			jobs = 3 * conc
			if jobs < 300 {
				jobs = 300
			}
		}
		row, err := serveBenchOne(conc, jobs, warm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// pipeListener is an in-memory net.Listener: Dial hands the server half of
// a net.Pipe to Accept. It lets an http.Server and http.Transport speak
// real HTTP with zero kernel involvement.
type pipeListener struct {
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), closed: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *pipeListener) Addr() net.Addr {
	return &net.UnixAddr{Name: "pipe", Net: "memory"}
}

func (l *pipeListener) Dial(context.Context, string, string) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func serveBenchOne(conc, jobs int, warm bool) (ServeBenchRow, error) {
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers > conc {
		workers = conc
	}
	cfg := serve.Config{
		Workers:    workers,
		QueueDepth: 2 * conc,
		// Generous: at high concurrency most of a job's life is queue
		// wait, which must not convert healthy jobs into timeouts.
		JobTimeout: 5 * time.Minute,
	}
	scenario := "cold"
	if warm {
		scenario = "warm"
		cfg.JobCache = 64
		cfg.CompileCache = 64
		dir, err := os.MkdirTemp("", "kremlin-serve-bench-inccache-")
		if err != nil {
			return ServeBenchRow{}, err
		}
		defer os.RemoveAll(dir)
		store, err := inccache.Open(dir)
		if err != nil {
			return ServeBenchRow{}, err
		}
		cfg.IncCache = store
	}
	s := serve.New(cfg)

	var (
		baseURL   string
		client    *http.Client
		transport = "tcp"
		cleanup   func()
	)
	if conc >= memoryTransportThreshold {
		transport = "memory"
		ln := newPipeListener()
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		baseURL = "http://kremlin-serve.memory"
		client = &http.Client{
			Transport: &http.Transport{
				DialContext:         ln.Dial,
				MaxIdleConns:        conc,
				MaxIdleConnsPerHost: conc,
			},
			Timeout: 5 * time.Minute,
		}
		cleanup = func() { _ = hs.Close(); _ = ln.Close() }
	} else {
		ts := httptest.NewServer(s.Handler())
		baseURL = ts.URL
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        conc,
				MaxIdleConnsPerHost: conc,
			},
			Timeout: 5 * time.Minute,
		}
		cleanup = ts.Close
	}
	defer func() {
		cleanup()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Drain(ctx)
	}()

	if warm {
		// Prime every cache layer with one untimed submission.
		resp, err := client.Post(baseURL+"/profile?name=bench.kr", "text/plain",
			strings.NewReader(serveBenchProg))
		if err != nil {
			return ServeBenchRow{}, fmt.Errorf("priming request: %w", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ServeBenchRow{}, fmt.Errorf("priming request: status %d", resp.StatusCode)
		}
	}

	var (
		mu        sync.Mutex
		latencies = make([]time.Duration, 0, jobs)
		ok, fail  int
	)
	jobc := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobc {
				t0 := time.Now()
				resp, err := client.Post(baseURL+"/profile?name=bench.kr", "text/plain",
					strings.NewReader(serveBenchProg))
				lat := time.Since(t0)
				good := false
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					good = resp.StatusCode == http.StatusOK
				}
				mu.Lock()
				latencies = append(latencies, lat)
				if good {
					ok++
				} else {
					fail++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		jobc <- struct{}{}
	}
	close(jobc)
	wg.Wait()
	elapsed := time.Since(start)

	if len(latencies) == 0 {
		return ServeBenchRow{}, fmt.Errorf("serve bench at concurrency %d produced no samples", conc)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p int) time.Duration { return latencies[(len(latencies)-1)*p/100] }
	return ServeBenchRow{
		Scenario:    scenario,
		Transport:   transport,
		Concurrency: conc,
		Jobs:        jobs,
		Workers:     workers,
		QueueDepth:  2 * conc,
		QPS:         float64(ok+fail) / elapsed.Seconds(),
		P50Ms:       ms(pct(50)),
		P99Ms:       ms(pct(99)),
		MaxMs:       ms(latencies[len(latencies)-1]),
		ElapsedMs:   ms(elapsed),
		OK:          ok,
		Errors:      fail,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}, nil
}
