package eval

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"kremlin/internal/serve"
)

// serveBenchProg is the load-generator payload: a few thousand steps of
// profiled work per job, so a request measures daemon overhead plus a
// realistic (small) HCPA run rather than either extreme.
const serveBenchProg = `
int a[200];
int main() {
	int acc = 0;
	for (int i = 0; i < 200; i++) {
		a[i] = i * 3;
	}
	for (int i = 0; i < 200; i++) {
		acc = acc + a[i];
	}
	return acc;
}
`

// ServeBenchRow is one sustained-load measurement of the serve daemon.
type ServeBenchRow struct {
	Concurrency int     `json:"concurrency"` // concurrent in-flight clients
	Jobs        int     `json:"jobs"`        // total jobs pushed through
	Workers     int     `json:"workers"`     // daemon worker-pool size
	QueueDepth  int     `json:"queue_depth"`
	QPS         float64 `json:"qps"`    // completed jobs / wall-clock
	P50Ms       float64 `json:"p50_ms"` // median request latency
	P99Ms       float64 `json:"p99_ms"` // tail request latency
	MaxMs       float64 `json:"max_ms"` // worst request latency
	ElapsedMs   float64 `json:"elapsed_ms"`
	OK          int     `json:"ok"`     // 200 responses
	Errors      int     `json:"errors"` // non-200 responses (shed, limit, ...)
	GoMaxProcs  int     `json:"gomaxprocs"`
}

// ServeBench drives a live in-process daemon over real HTTP at each
// requested concurrency level and reports sustained QPS and latency
// percentiles. The queue is sized at 2× the concurrency so admission
// control never sheds during the measurement — shedding behavior is the
// chaos/CLI tests' subject; here we measure the service rate.
func ServeBench(concurrencies []int, jobsPer int) ([]ServeBenchRow, error) {
	rows := make([]ServeBenchRow, 0, len(concurrencies))
	for _, conc := range concurrencies {
		jobs := jobsPer
		if jobs <= 0 {
			jobs = 3 * conc
			if jobs < 300 {
				jobs = 300
			}
		}
		row, err := serveBenchOne(conc, jobs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func serveBenchOne(conc, jobs int) (ServeBenchRow, error) {
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers > conc {
		workers = conc
	}
	s := serve.New(serve.Config{
		Workers:    workers,
		QueueDepth: 2 * conc,
		// Generous: at high concurrency most of a job's life is queue
		// wait, which must not convert healthy jobs into timeouts.
		JobTimeout: 5 * time.Minute,
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Drain(ctx)
	}()

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        conc,
			MaxIdleConnsPerHost: conc,
		},
		Timeout: 5 * time.Minute,
	}

	var (
		mu        sync.Mutex
		latencies = make([]time.Duration, 0, jobs)
		ok, fail  int
	)
	jobc := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobc {
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/profile?name=bench.kr", "text/plain",
					strings.NewReader(serveBenchProg))
				lat := time.Since(t0)
				good := false
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					good = resp.StatusCode == http.StatusOK
				}
				mu.Lock()
				latencies = append(latencies, lat)
				if good {
					ok++
				} else {
					fail++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		jobc <- struct{}{}
	}
	close(jobc)
	wg.Wait()
	elapsed := time.Since(start)

	if len(latencies) == 0 {
		return ServeBenchRow{}, fmt.Errorf("serve bench at concurrency %d produced no samples", conc)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p int) time.Duration { return latencies[(len(latencies)-1)*p/100] }
	return ServeBenchRow{
		Concurrency: conc,
		Jobs:        jobs,
		Workers:     workers,
		QueueDepth:  2 * conc,
		QPS:         float64(ok+fail) / elapsed.Seconds(),
		P50Ms:       ms(pct(50)),
		P99Ms:       ms(pct(99)),
		MaxMs:       ms(latencies[len(latencies)-1]),
		ElapsedMs:   ms(elapsed),
		OK:          ok,
		Errors:      fail,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}, nil
}
