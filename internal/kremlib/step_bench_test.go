package kremlib

// Microbenchmarks for the per-instruction profiling path. Step runs once
// per executed IR instruction, so ns/op and allocs/op here bound HCPA
// instrumentation overhead end to end. Run with -benchmem; the hot-path
// rewrite targets zero steady-state allocations.

import (
	"testing"

	"kremlin/internal/ast"
	"kremlin/internal/ir"
	"kremlin/internal/profile"
	"kremlin/internal/types"
)

// benchRuntime builds a runtime nested depth regions deep, the typical
// main→func→loop→body shape.
func benchRuntime(depth int) (*Runtime, *FrameState, *ir.Func) {
	prof := profile.New()
	rt := NewRuntime(prof, Options{})
	f := synthFunc()
	fs := rt.NewFrame(f, nil)
	for _, r := range synthRegions(depth) {
		rt.EnterRegion(r)
	}
	return rt, fs, f
}

// BenchmarkStepALU measures the register-only update: a chain of dependent
// adds, no memory traffic.
func BenchmarkStepALU(b *testing.B) {
	rt, fs, f := benchRuntime(4)
	ins := addInstr(f)
	prev := addInstr(f)
	rt.Step(fs, prev, 0, -1)
	ins.Args = []ir.Value{prev, &ir.ConstInt{V: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Step(fs, ins, 0, -1)
	}
}

// BenchmarkStepStoreLoad measures the shadow-memory path: alternating
// stores and loads over a strided working set, as array kernels produce.
func BenchmarkStepStoreLoad(b *testing.B) {
	rt, fs, f := benchRuntime(4)
	st := rawInstr(ir.OpStore)
	st.Args = []ir.Value{&ir.ConstInt{V: 0}, &ir.ConstFloat{V: 1}}
	ld := rawInstr(ir.OpLoad)
	ld.Typ = types.Type{Elem: ast.Float}
	ld.Args = []ir.Value{&ir.ConstInt{V: 0}}
	_ = f
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i*8) & 0x3FFF
		rt.Step(fs, st, addr, -1)
		rt.Step(fs, ld, addr, -1)
	}
}

// BenchmarkStepBranchCtrl measures the control-dependence path: every
// iteration executes a branch, pushing (and same-branch-replacing) a
// control entry, as every profiled loop header does.
func BenchmarkStepBranchCtrl(b *testing.B) {
	rt, fs, f := benchRuntime(4)
	branch := f.NewBlock("hdr")
	popAt := f.NewBlock("join")
	cond := addInstr(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.PopSameBranch(fs, branch)
		vec := rt.Step(fs, cond, 0, -1)
		rt.PushCtrl(fs, branch, popAt, vec)
	}
}

// BenchmarkStepDeepWindow measures Step with a deep tracked window (16
// levels), the per-level loop cost the specialization targets.
func BenchmarkStepDeepWindow(b *testing.B) {
	rt, fs, f := benchRuntime(16)
	ins := addInstr(f)
	prev := addInstr(f)
	rt.Step(fs, prev, 0, -1)
	ins.Args = []ir.Value{prev, &ir.ConstInt{V: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Step(fs, ins, 0, -1)
	}
}
