package kremlib

// Aliasing contract of Runtime.Step: the returned Vec is the runtime's
// scratch buffer, overwritten by the next Step. Every sink that stores a
// step result — shadow memory, the register table, RetVec — must therefore
// copy it. These tests pin that contract so storage-layout rewrites (the
// struct-of-arrays shadow pages, the pooled frames) cannot silently turn
// the copies into aliases.

import (
	"testing"

	"kremlin/internal/ir"
)

func stepTimes(rt *Runtime, fs *FrameState, ins *ir.Instr, addr uint64) []uint64 {
	out := rt.Step(fs, ins, addr, -1)
	ts := make([]uint64, len(out))
	for i, e := range out {
		ts[i] = e.Time
	}
	return ts
}

// TestStepScratchReuse verifies the documented hazard: the Vec returned by
// Step is invalidated by the next Step.
func TestStepScratchReuse(t *testing.T) {
	rt, fs, f := benchRuntime(4)
	a := addInstr(f)
	b := addInstr(f)
	b.Args = []ir.Value{a, a} // b depends on a: strictly later time

	va := rt.Step(fs, a, 0, -1)
	t0 := va[0].Time
	vb := rt.Step(fs, b, 0, -1)
	if &va[0] != &vb[0] {
		t.Fatalf("Step returned distinct buffers; scratch reuse contract changed")
	}
	if va[0].Time == t0 {
		t.Fatalf("second Step left scratch untouched; expected overwrite")
	}
}

// TestStepStoreCopiesIntoShadowMemory: a store's written vector must
// survive the scratch being reused.
func TestStepStoreCopiesIntoShadowMemory(t *testing.T) {
	rt, fs, f := benchRuntime(4)
	const addr = 0x1234

	st := rawInstr(ir.OpStore)
	st.Args = []ir.Value{&ir.ConstInt{V: 0}, &ir.ConstInt{V: 1}}
	want := stepTimes(rt, fs, st, addr)

	// Hammer the scratch with dependent work so a retained alias would
	// show different times.
	prev := addInstr(f)
	rt.Step(fs, prev, 0, -1)
	for i := 0; i < 8; i++ {
		ins := addInstr(f)
		ins.Args = []ir.Value{prev, prev}
		rt.Step(fs, ins, 0, -1)
		prev = ins
	}

	got := rt.Mem().ReadVec(addr)
	for l, w := range want {
		if g := got.Read(l, rt.tags[l]); g != w {
			t.Fatalf("level %d: shadow memory holds %d, store wrote %d (aliased scratch?)", l, g, w)
		}
	}
}

// TestStepResultCopiesIntoRegisterTable: Regs.Set must copy the step
// result, not retain the scratch.
func TestStepResultCopiesIntoRegisterTable(t *testing.T) {
	rt, fs, f := benchRuntime(4)

	a := addInstr(f)
	want := stepTimes(rt, fs, a, 0)

	b := addInstr(f)
	b.Args = []ir.Value{a, a}
	rt.Step(fs, b, 0, -1)

	got := fs.Regs.Get(a.ID)
	for l, w := range want {
		if g := got.Read(l, rt.tags[l]); g != w {
			t.Fatalf("level %d: register table holds %d, step produced %d (aliased scratch?)", l, g, w)
		}
	}
}

// TestRetVecCopies: OpRet snapshots the scratch into RetVec.
func TestRetVecCopies(t *testing.T) {
	rt, fs, f := benchRuntime(4)

	a := addInstr(f)
	rt.Step(fs, a, 0, -1)
	ret := rawInstr(ir.OpRet)
	ret.Args = []ir.Value{a}
	want := stepTimes(rt, fs, ret, 0)

	later := addInstr(f)
	later.Args = []ir.Value{a, a}
	rt.Step(fs, later, 0, -1)

	for l, w := range want {
		if g := fs.RetVec.Read(l, rt.tags[l]); g != w {
			t.Fatalf("level %d: RetVec holds %d, ret step produced %d (aliased scratch?)", l, g, w)
		}
	}
}

// TestPooledFrameDoesNotLeakRegisters: a frame recycled through the pool
// must read zero availability for values the previous tenant wrote.
func TestPooledFrameDoesNotLeakRegisters(t *testing.T) {
	rt, _, f := benchRuntime(2)

	fs1 := rt.NewFrame(f, nil)
	a := addInstr(f)
	rt.Step(fs1, a, 0, -1)
	if fs1.Regs.Get(a.ID).Read(0, rt.tags[0]) == 0 {
		t.Fatal("setup: expected nonzero availability time")
	}
	rt.ReleaseFrame(fs1)

	fs2 := rt.NewFrame(f, nil)
	if fs1 != fs2 {
		t.Skip("frame pool did not recycle; nothing to check")
	}
	if got := fs2.Regs.Get(a.ID).Read(0, rt.tags[0]); got != 0 {
		t.Fatalf("recycled frame leaked availability time %d for stale register", got)
	}
}
