// Package kremlib_test checks the HCPA runtime end to end through the
// public pipeline: each test compiles a small Kr program whose dependence
// structure is known by construction and asserts the self-parallelism the
// runtime must measure for it.
package kremlib_test

import (
	"testing"

	"kremlin"
	"kremlin/internal/hcpa"
	"kremlin/internal/regions"
)

// loopStats profiles src and returns stats of the single loop region
// inside the named function.
func loopStats(t *testing.T, src, fn string) *hcpa.RegionStats {
	t.Helper()
	prog, err := kremlin.Compile("t.kr", src)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := prog.Summarize(prof)
	var found *hcpa.RegionStats
	for _, st := range sum.Executed {
		if st.Region.Func.Name == fn && st.Region.Kind == regions.LoopRegion &&
			st.Region.Parent.Kind == regions.FuncRegion {
			found = st
		}
	}
	if found == nil {
		t.Fatalf("no outer loop stats in %s", fn)
	}
	return found
}

func TestDOALLSelfParallelismTracksIterationCount(t *testing.T) {
	src := `
float a[300];
float b[300];
void f() {
	for (int i = 0; i < 300; i++) {
		b[i] = a[i] * 2.0 + 1.0;
	}
}
int main() { f(); return 0; }`
	st := loopStats(t, src, "f")
	if st.SelfP < 250 || st.SelfP > 310 {
		t.Errorf("DOALL SP = %.1f, want ~300", st.SelfP)
	}
	if !st.DOALL {
		t.Error("loop should be classified DOALL")
	}
}

func TestTrueDependenceSerializes(t *testing.T) {
	src := `
float b[300];
void f() {
	for (int i = 1; i < 300; i++) {
		b[i] = b[i-1] * 0.99 + 1.0;
	}
}
int main() { b[0] = 1.0; f(); return 0; }`
	st := loopStats(t, src, "f")
	if st.SelfP > 3 {
		t.Errorf("serial chain SP = %.1f, want ~1", st.SelfP)
	}
	if st.DOALL {
		t.Error("serial loop misclassified DOALL")
	}
}

func TestReductionDependenceBroken(t *testing.T) {
	src := `
float a[300];
float total;
void f() {
	for (int i = 0; i < 300; i++) {
		total = total + a[i];
	}
}
int main() { f(); print(total); return 0; }`
	st := loopStats(t, src, "f")
	if st.SelfP < 50 {
		t.Errorf("reduction SP = %.1f, want high (dependence broken)", st.SelfP)
	}
}

func TestWavefrontShowsPartialParallelism(t *testing.T) {
	// 2-D wavefront: each cell depends on its west and north neighbors.
	// Per the paper (§4.3), SP computes reasonable bounds for partial
	// overlap: well above 1, well below the iteration count.
	src := `
float g[40][40];
void f() {
	for (int i = 1; i < 40; i++) {
		for (int j = 1; j < 40; j++) {
			g[i][j] = (g[i-1][j] + g[i][j-1]) * 0.5;
		}
	}
}
int main() { g[0][0] = 1.0; f(); return 0; }`
	st := loopStats(t, src, "f")
	if st.SelfP < 3 || st.SelfP > 39 {
		t.Errorf("wavefront SP = %.1f, want partial (between ~4 and ~39)", st.SelfP)
	}
}

func TestParallelismLocalizedToInnerLoop(t *testing.T) {
	// Figure 2's structure: outer loops serial (carried dependence), inner
	// parallel. Self-parallelism must be high only for the inner loop.
	src := `
float best[64];
float vals[40];
void scan() {
	for (int v = 0; v < 40; v++) {
		float cur = vals[v];
		for (int k = 0; k < 64; k++) {
			if (best[k] < cur) {
				best[k] = cur;
			}
		}
	}
}
int main() {
	for (int i = 0; i < 40; i++) { vals[i] = float((i * 17) % 23); }
	scan();
	print(best[0]);
	return 0;
}`
	prog, err := kremlin.Compile("t.kr", src)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := prog.Summarize(prof)
	var outer, inner *hcpa.RegionStats
	for _, st := range sum.Executed {
		if st.Region.Func.Name != "scan" || st.Region.Kind != regions.LoopRegion {
			continue
		}
		if st.Region.Parent.Kind == regions.FuncRegion {
			outer = st
		} else {
			inner = st
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("loops not found")
	}
	if inner.SelfP < 20 {
		t.Errorf("inner SP = %.1f, want high", inner.SelfP)
	}
	// Total parallelism cannot localize: the outer loop inherits the
	// inner loop's parallelism.
	if outer.TotalP < inner.SelfP/4 {
		t.Errorf("outer TP = %.1f should inherit inner parallelism", outer.TotalP)
	}
	if outer.SelfP > inner.SelfP/2 {
		t.Errorf("outer SP = %.1f should be much lower than inner %.1f", outer.SelfP, inner.SelfP)
	}
}

func TestFunctionRegionLocalization(t *testing.T) {
	// A function whose only parallelism lives in its loop: the function
	// region's SP stays near 1 (gprof's self-time analogy).
	src := `
float a[200];
void f() {
	for (int i = 0; i < 200; i++) {
		a[i] = float(i) * 0.5;
	}
}
int main() { f(); return 0; }`
	prog, _ := kremlin.Compile("t.kr", src)
	prof, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := prog.Summarize(prof)
	for _, st := range sum.Executed {
		if st.Region.Kind == regions.FuncRegion && st.Region.Func.Name == "f" {
			if st.SelfP > 2 {
				t.Errorf("func region SP = %.1f, want ~1", st.SelfP)
			}
		}
	}
}

func TestControlDependenceCarriedIntoCallees(t *testing.T) {
	// A callee invoked under a data-dependent branch: its work is control
	// dependent on the branch, so the caller loop is NOT fully parallel
	// when the branch condition chains iteration to iteration.
	src := `
float acc;
float a[100];
void bump(float x) { acc = acc * 0.5 + x; }
void f() {
	for (int i = 0; i < 100; i++) {
		if (acc < 50.0) {
			bump(a[i]);
		}
	}
}
int main() { f(); print(acc); return 0; }`
	st := loopStats(t, src, "f")
	// acc feeds the branch; the chain serializes iterations.
	if st.SelfP > 10 {
		t.Errorf("control-chained loop SP = %.1f, want low", st.SelfP)
	}
}

func TestIOSerializesLoop(t *testing.T) {
	src := `
void f() {
	for (int i = 0; i < 50; i++) {
		print(i);
	}
}
int main() { f(); return 0; }`
	st := loopStats(t, src, "f")
	if st.SelfP > 6 {
		t.Errorf("printing loop SP = %.1f, want low (output order is a dependence)", st.SelfP)
	}
}

func TestDepthWindowLimitsTracking(t *testing.T) {
	// With MaxDepth 2, only the outermost two levels get real CP; deeper
	// regions fall back to SP=1 but work is still accounted.
	src := `
float a[60];
void f() {
	for (int i = 0; i < 60; i++) {
		a[i] = a[i] + 1.0;
	}
}
int main() { f(); return 0; }`
	prog, _ := kremlin.Compile("t.kr", src)
	full, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	shallow, _, err := prog.Profile(&kremlin.RunConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalWork() != shallow.TotalWork() {
		t.Errorf("work differs across depth windows: %d vs %d", full.TotalWork(), shallow.TotalWork())
	}
	sumShallow := prog.Summarize(shallow)
	sumFull := prog.Summarize(full)
	var spShallow, spFull float64
	for _, st := range sumShallow.Executed {
		if st.Region.Kind == regions.LoopRegion {
			spShallow = st.SelfP
		}
	}
	for _, st := range sumFull.Executed {
		if st.Region.Kind == regions.LoopRegion {
			spFull = st.SelfP
		}
	}
	// The loop sits at depth 2 (main=0, f=1, loop=2): outside the shallow
	// window, so its SP degrades to ~1 while the full run sees ~60.
	if spFull < 40 {
		t.Errorf("full-depth SP = %.1f, want ~60", spFull)
	}
	if spShallow > 2 {
		t.Errorf("out-of-window SP = %.1f, want ~1 (serial fallback)", spShallow)
	}
}

func TestMultiRunAggregation(t *testing.T) {
	src := `
float a[100];
void f() {
	for (int i = 0; i < 100; i++) { a[i] = float(i); }
}
int main() { f(); return 0; }`
	prog, _ := kremlin.Compile("t.kr", src)
	p1, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	w := p1.TotalWork()
	p1.Merge(p2)
	if len(p1.Roots) != 2 {
		t.Fatalf("roots = %d", len(p1.Roots))
	}
	if p1.TotalWork() != 2*w {
		t.Errorf("aggregated work = %d, want %d", p1.TotalWork(), 2*w)
	}
	sum := prog.Summarize(p1)
	for _, st := range sum.Executed {
		if st.Region.Kind == regions.LoopRegion && st.Instances != 2 {
			t.Errorf("loop instances = %d, want 2", st.Instances)
		}
	}
}
