// Block-batched HCPA updates: the bytecode VM replaces the per-instruction
// Step calls of a "pure" basic block (no memory traffic, no calls, no IO or
// RNG, no region boundaries mid-block) with a single StepBlock over a
// precompiled template. Within such a block neither the region stack, the
// tags, nor the control-dependence stack can change — region events fire
// only on CFG edges, and PushCtrl only at the terminator — so the control
// baseline can be resolved once and every instruction's availability-time
// fold replayed from compile-time-resolved register indices. The result is
// bit-identical to issuing the template's Steps one by one.
package kremlib

import "kremlin/internal/shadow"

// TplIns is one instruction of a block template: fold the availability
// vectors of Args (shadow register IDs; constants and broken dependencies
// are dropped at compile time) over the control baseline, add Lat, update
// the per-level critical path, and store the result at register Res (-1
// for terminators, which produce no value).
type TplIns struct {
	Res  int32
	Lat  uint64
	Args []int32
}

// BlockTemplate is the precompiled HCPA effect of one pure basic block.
type BlockTemplate struct {
	Ins []TplIns
	// TotalLat is the summed latency of every instruction in the block
	// (including zero-latency ones), accrued to total work in one add.
	TotalLat uint64
}

// StepBlock replays tpl — the HCPA availability-time updates of one pure
// basic block — in a single call. It is observably identical to calling
// Step for each of the block's instructions in order: the control baseline
// is resolved once (legal because nothing inside a pure block can change
// the region stack, tags, or control stack), each template instruction
// folds its argument vectors with the tag-mismatch-is-zero rule, adds its
// latency, raises the per-level critical path, and stores its vector. The
// returned vector is the last instruction's (the terminator's, for
// Br-ended blocks — the caller feeds it to PushCtrl exactly as it would
// Step's return); it is valid until the next Step/StepBlock.
func (rt *Runtime) StepBlock(fs *FrameState, tpl *BlockTemplate) shadow.Vec {
	rt.totalWork += tpl.TotalLat
	d := rt.level()
	lo := rt.lowLevel()
	tags := rt.tags

	// Resolve the per-instruction prologue (zeros below the window, control
	// time inside it) once into a baseline all template instructions copy.
	base := rt.blockBase
	if cap(base) < d {
		base = make(shadow.Vec, d, d+16)
		rt.blockBase = base
	}
	base = base[:d]
	for l := 0; l < lo; l++ {
		base[l] = shadow.Entry{}
	}
	if lo < d {
		cv := fs.ctrlVec()
		cn := len(cv)
		if cn > d {
			cn = d
		}
		for l := lo; l < cn; l++ {
			var t uint64
			if e := cv[l]; e.Tag == tags[l] {
				t = e.Time
			}
			base[l] = shadow.Entry{Time: t, Tag: tags[l]}
		}
		if cn < lo {
			cn = lo
		}
		for l := cn; l < d; l++ {
			base[l] = shadow.Entry{Tag: tags[l]}
		}
	}

	out := rt.scratch[:d]
	tracing := rt.carried != nil
	for i := range tpl.Ins {
		ti := &tpl.Ins[i]
		copy(out, base)
		for _, a := range ti.Args {
			v := fs.Regs.Get(int(a))
			maxInto(out, tags, v, lo, d)
			if tracing {
				rt.noteVec(v)
			}
		}
		lat := ti.Lat
		for l := lo; l < d; l++ {
			out[l].Time += lat
			if out[l].Time > rt.stack[l].maxTime {
				rt.stack[l].maxTime = out[l].Time
			}
		}
		if ti.Res >= 0 {
			fs.Regs.Set(int(ti.Res), out, d)
		}
	}
	return out
}
