// Package kremlib is the profiling runtime the instrumented program runs
// against — the equivalent of the paper's KremLib library. It maintains the
// dynamic region stack, the per-depth work and critical-path accounting of
// hierarchical critical path analysis, the control-dependence stack, and
// the induction/reduction dependence-breaking update rules, and it emits
// compressed dynamic-region summaries into a profile.Dict on region exit.
package kremlib

import (
	"sort"

	"kremlin/internal/ir"
	"kremlin/internal/limits"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
	"kremlin/internal/shadow"
)

// DefaultMaxDepth is the default region-depth collection window.
const DefaultMaxDepth = 48

// Options configures a profiling run.
type Options struct {
	// MinDepth/MaxDepth bound the half-open window [MinDepth, MaxDepth) of
	// region depths for which availability times are tracked — the paper's
	// command-line flag that lets HCPA data collection be split across
	// parallel runs. Regions outside the window still report work, with CP
	// falling back to work (a serial, conservative assumption).
	MinDepth int
	MaxDepth int
	// TraceDeps enables the loop-carried dependence tracer: every value read
	// is checked against the region tags to detect a flow dependence that
	// crosses iterations of an enclosing loop. Used by the fuzz oracle to
	// cross-check the static analyzer's "provably parallel" verdicts; off in
	// normal profiling (it adds a per-read scan over the active loop levels).
	TraceDeps bool
	// MaxShadowPages caps the number of live shadow-memory pages (0 =
	// unlimited). The interpreter polls CheckLimits periodically, so the
	// cap is a soft bound enforced within one poll interval — enough to
	// keep an adversarial program from running the profiling host out of
	// memory while costing nothing on the per-instruction path.
	MaxShadowPages int
}

type active struct {
	region    *regions.Region
	instance  uint64
	entryWork uint64
	maxTime   uint64
	// children is the run-length-encoded child sequence in execution
	// order: consecutive identical child summaries extend the last run.
	// The order is load-bearing — the depth-window stitcher aligns shard
	// dictionaries by it (see profile.InternRuns).
	children []profile.Child
}

// Runtime is the live profiling state of one instrumented execution.
type Runtime struct {
	opts  Options
	mem   *shadow.Memory
	prof  *profile.Profile
	stack []active

	totalWork    uint64
	nextInstance uint64
	maxDepth     int

	// ioVec serializes observable output (print) — an explicit dependence
	// chain, since output order is a true serial constraint.
	ioVec shadow.Vec
	// randVec serializes the internal RNG state the same way.
	randVec shadow.Vec

	scratch shadow.Vec
	// blockBase is StepBlock's resolved-once control baseline (a second
	// scratch vector, so the per-instruction scratch stays untouched).
	blockBase shadow.Vec
	tags      []uint64

	// vecPool recycles control-dependence vectors (popped by AtBlock /
	// PopSameBranch / same-branch replacement) so steady-state branches
	// allocate nothing.
	vecPool []shadow.Vec
	// framePool recycles FrameState records across calls.
	framePool []*FrameState

	// Loop-carried dependence tracer state (Options.TraceDeps). depLevels
	// holds the stack levels l where stack[l] is a loop region and
	// stack[l+1] its body region — the levels at which a tag signature can
	// witness a cross-iteration read. carried collects the loop regions
	// caught doing so.
	depLevels []int
	carried   map[int32]bool

	// onIntern, when set, observes every dictionary character produced by
	// ExitRegion, in intern order. The incremental profile cache uses it to
	// record which entries a call's dynamic extent touches.
	onIntern func(int32)
}

// NewRuntime returns a runtime recording into prof.
func NewRuntime(prof *profile.Profile, opts Options) *Runtime {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	rt := &Runtime{
		opts: opts,
		mem:  shadow.NewMemory(),
		prof: prof,
	}
	if opts.TraceDeps {
		rt.carried = make(map[int32]bool)
	}
	return rt
}

// Mem exposes the shadow memory (the interpreter signals frees through it).
func (rt *Runtime) Mem() *shadow.Memory { return rt.mem }

// CheckLimits reports whether the run has exceeded its shadow-memory page
// cap. It is polled periodically by the interpreter (never per
// instruction), so the hot path stays allocation- and branch-free.
func (rt *Runtime) CheckLimits(steps uint64) error {
	if pcap := rt.opts.MaxShadowPages; pcap > 0 {
		if n := rt.mem.NumPages(); n > pcap {
			return limits.MemCap(steps, n,
				"shadow-memory page cap exceeded (%d pages, cap %d)", n, pcap)
		}
	}
	return nil
}

// TotalWork returns the work executed so far.
func (rt *Runtime) TotalWork() uint64 { return rt.totalWork }

// Depth returns the current region nesting depth.
func (rt *Runtime) Depth() int { return len(rt.stack) }

// level returns the number of tracked levels right now (the exclusive
// upper bound of the window).
func (rt *Runtime) level() int {
	d := len(rt.stack)
	if d > rt.opts.MaxDepth {
		d = rt.opts.MaxDepth
	}
	return d
}

// lowLevel returns the first tracked level — the window's lower bound,
// clamped to the current depth. Levels below it accrue work only; their
// regions fall back to the serial (cp = work) assumption on exit, so two
// complementary-window runs can be collected in parallel and merged.
func (rt *Runtime) lowLevel() int {
	lo := rt.opts.MinDepth
	if d := rt.level(); lo > d {
		lo = d
	}
	return lo
}

// MaxDepthSeen returns the deepest region nesting observed so far.
func (rt *Runtime) MaxDepthSeen() int { return rt.maxDepth }

// EnterRegion pushes a new dynamic region instance.
func (rt *Runtime) EnterRegion(r *regions.Region) {
	rt.nextInstance++
	if d := len(rt.stack) + 1; d > rt.maxDepth {
		rt.maxDepth = d
	}
	rt.stack = append(rt.stack, active{
		region:    r,
		instance:  rt.nextInstance,
		entryWork: rt.totalWork,
	})
	rt.syncTags()
}

// ExitRegion pops the current region, interning its summary. It returns the
// region's dictionary character.
func (rt *Runtime) ExitRegion() int32 {
	top := rt.stack[len(rt.stack)-1]
	rt.stack = rt.stack[:len(rt.stack)-1]
	rt.syncTags()

	work := rt.totalWork - top.entryWork
	cp := top.maxTime
	if cp == 0 {
		// Region outside the tracked depth window, or empty: fall back to
		// the serial assumption.
		cp = work
	}
	if cp == 0 {
		cp = 1
	}
	char := rt.prof.Dict.InternRuns(int32(top.region.ID), work, cp, top.children)
	if rt.onIntern != nil {
		rt.onIntern(char)
	}
	if len(rt.stack) > 0 {
		parent := &rt.stack[len(rt.stack)-1]
		if n := len(parent.children); n > 0 && parent.children[n-1].Char == char {
			parent.children[n-1].Count++
		} else {
			parent.children = append(parent.children, profile.Child{Char: char, Count: 1})
		}
	} else {
		rt.prof.AddRoot(char)
	}
	return char
}

// IterateRegion ends the current dynamic instance of a loop-body region and
// begins a fresh one (a loop back edge).
func (rt *Runtime) IterateRegion(r *regions.Region) {
	rt.ExitRegion()
	rt.EnterRegion(r)
}

// Unwind exits every region at depth >= target (used on function return,
// which may leave several loops at once).
func (rt *Runtime) Unwind(target int) {
	for len(rt.stack) > target {
		rt.ExitRegion()
	}
}

func (rt *Runtime) syncTags() {
	d := rt.level()
	if cap(rt.tags) < d {
		rt.tags = make([]uint64, d, d+16)
	} else {
		rt.tags = rt.tags[:d]
	}
	for i := 0; i < d; i++ {
		rt.tags[i] = rt.stack[i].instance
	}
	if cap(rt.scratch) < d {
		rt.scratch = make(shadow.Vec, d, d+16)
	}
	if rt.carried != nil {
		rt.depLevels = rt.depLevels[:0]
		for l := 0; l+1 < d; l++ {
			if rt.stack[l].region.Kind == regions.LoopRegion && rt.stack[l+1].region.Kind == regions.BodyRegion {
				rt.depLevels = append(rt.depLevels, l)
			}
		}
	}
}

// FrameState is the per-call profiling state: the shadow register table and
// the control-dependence stack of the frame. The control baseline inherited
// from the caller propagates interprocedural control dependence.
type FrameState struct {
	Regs       *shadow.RegisterTable
	ctrl       []ctrlEntry
	base       shadow.Vec
	RetVec     shadow.Vec
	EntryDepth int // region-stack depth at frame entry (before the func region)
}

type ctrlEntry struct {
	branch *ir.Block // the branch block that pushed the entry
	popAt  *ir.Block
	vec    shadow.Vec
}

// NewFrame creates the profiling state for a call. The caller's current
// control time becomes the frame's control baseline, which propagates
// interprocedural control dependence (a function called under an if is
// control dependent on the if, at every level the caller shares). Call
// before entering the callee's function region. Frames come from a pool;
// pair with ReleaseFrame when the call returns.
func (rt *Runtime) NewFrame(f *ir.Func, caller *FrameState) *FrameState {
	var fs *FrameState
	if n := len(rt.framePool); n > 0 {
		fs = rt.framePool[n-1]
		rt.framePool = rt.framePool[:n-1]
		fs.Regs.Reset(f.NumValues())
		fs.ctrl = fs.ctrl[:0]
		fs.RetVec = fs.RetVec[:0]
	} else {
		fs = &FrameState{Regs: shadow.NewRegisterTable(f.NumValues())}
	}
	fs.EntryDepth = len(rt.stack)
	d := rt.level()
	base := fs.base
	if cap(base) < d {
		base = make(shadow.Vec, d, d+16)
	}
	base = base[:d]
	var cv shadow.Vec
	if caller != nil {
		cv = caller.ctrlVec()
	}
	for l := 0; l < d; l++ {
		base[l] = shadow.Entry{Time: cv.Read(l, rt.tags[l]), Tag: rt.tags[l]}
	}
	fs.base = base
	return fs
}

// ReleaseFrame recycles a frame after its call has returned, returning its
// unpopped control vectors to the pool. The frame's RetVec stays readable
// until the next NewFrame (FinishCall runs before any further call setup).
func (rt *Runtime) ReleaseFrame(fs *FrameState) {
	for _, e := range fs.ctrl {
		rt.recycleVec(e.vec)
	}
	fs.ctrl = fs.ctrl[:0]
	if len(rt.framePool) < 64 {
		rt.framePool = append(rt.framePool, fs)
	}
}

// ctrlVec returns the vector holding the frame's current control time: the
// top of the control stack, else the inherited baseline. A nil result
// reads as zero at every level.
func (fs *FrameState) ctrlVec() shadow.Vec {
	if n := len(fs.ctrl); n > 0 {
		return fs.ctrl[n-1].vec
	}
	return fs.base
}

// ctrlTime returns the current control-dependence time at level l.
func (rt *Runtime) ctrlTime(fs *FrameState, l int) uint64 {
	return fs.ctrlVec().Read(l, rt.tags[l])
}

// getVec returns a pooled vector of length d (contents undefined).
func (rt *Runtime) getVec(d int) shadow.Vec {
	if n := len(rt.vecPool); n > 0 {
		v := rt.vecPool[n-1]
		rt.vecPool = rt.vecPool[:n-1]
		if cap(v) >= d {
			return v[:d]
		}
	}
	return make(shadow.Vec, d, d+16)
}

func (rt *Runtime) recycleVec(v shadow.Vec) {
	if cap(v) > 0 && len(rt.vecPool) < 64 {
		rt.vecPool = append(rt.vecPool, v)
	}
}

// PushCtrl pushes a control-dependence entry whose availability is the
// branch time vec, to be popped when control reaches popAt (the branch's
// immediate postdominator). The entry folds in the control time *below*
// it so reads need only check the top of the stack. When the same branch
// re-executes before its pop point (a loop back edge), its previous entry
// is replaced rather than chained: iteration i+1's control availability is
// its own condition's time, not the accumulated history — without this,
// the loop branch would serialize DOALL iterations at the loop level.
func (rt *Runtime) PushCtrl(fs *FrameState, branch, popAt *ir.Block, brVec shadow.Vec) {
	if n := len(fs.ctrl); n > 0 && fs.ctrl[n-1].branch == branch {
		rt.recycleVec(fs.ctrl[n-1].vec)
		fs.ctrl = fs.ctrl[:n-1]
	}
	d := rt.level()
	vec := rt.getVec(d)
	cv := fs.ctrlVec()
	tags := rt.tags
	for l := 0; l < d; l++ {
		t := cv.Read(l, tags[l])
		if bt := brVec.Read(l, tags[l]); bt > t {
			t = bt
		}
		vec[l] = shadow.Entry{Time: t, Tag: tags[l]}
	}
	fs.ctrl = append(fs.ctrl, ctrlEntry{branch: branch, popAt: popAt, vec: vec})
}

// PopSameBranch removes the top control entry if it was pushed by the same
// branch block; call before re-executing a branch so neither the branch's
// own availability nor its new entry chains on its previous execution.
func (rt *Runtime) PopSameBranch(fs *FrameState, branch *ir.Block) {
	if n := len(fs.ctrl); n > 0 && fs.ctrl[n-1].branch == branch {
		rt.recycleVec(fs.ctrl[n-1].vec)
		fs.ctrl = fs.ctrl[:n-1]
	}
}

// AtBlock pops control entries whose postdominator is the block now being
// entered. Only the top of the stack ever needs checking on reads, but
// multiple entries can share a pop point (loop back edges), so pop in a loop.
func (rt *Runtime) AtBlock(fs *FrameState, blk *ir.Block) {
	for n := len(fs.ctrl); n > 0 && fs.ctrl[n-1].popAt == blk; n = len(fs.ctrl) {
		rt.recycleVec(fs.ctrl[n-1].vec)
		fs.ctrl = fs.ctrl[:n-1]
	}
}

// argVec fetches the shadow vector of an operand (nil for constants, whose
// availability is 0 at every level).
func (rt *Runtime) argVec(fs *FrameState, v ir.Value) shadow.Vec {
	if ins, ok := v.(*ir.Instr); ok {
		return fs.Regs.Get(ins.ID)
	}
	return nil
}

// maxInto folds vec's availability times into out over levels [lo, d),
// applying the tag-mismatch-is-zero rule. A free function (not a closure)
// so Step's level loops compile without a closure environment.
func maxInto(out shadow.Vec, tags []uint64, vec shadow.Vec, lo, d int) {
	if n := len(vec); n < d {
		d = n
	}
	for l := lo; l < d; l++ {
		if e := vec[l]; e.Tag == tags[l] && e.Time > out[l].Time {
			out[l].Time = e.Time
		}
	}
}

// maxIntoSlot is maxInto over a borrowed shadow-memory slot (the
// allocation-free load path).
func maxIntoSlot(out shadow.Vec, tags []uint64, s shadow.Slot, lo, d int) {
	if n := len(s.Times); n < d {
		d = n
	}
	for l := lo; l < d; l++ {
		if t := s.Times[l]; s.Tags[l] == tags[l] && t > out[l].Time {
			out[l].Time = t
		}
	}
}

// Step performs the HCPA availability-time update for one executed
// instruction. addr is the simulated address touched by OpLoad/OpStore
// (otherwise ignored); predIdx is the incoming-predecessor index for OpPhi.
// It returns the instruction's time vector (valid until the next Step) —
// callers must copy, never retain it.
func (rt *Runtime) Step(fs *FrameState, ins *ir.Instr, addr uint64, predIdx int) shadow.Vec {
	lat := ins.Latency()
	rt.totalWork += lat
	d := rt.level()
	lo := rt.lowLevel()
	out := rt.scratch[:d]
	tags := rt.tags

	for l := 0; l < lo; l++ {
		out[l] = shadow.Entry{}
	}
	if lo < d {
		// Control time: the top of the control stack (else the frame
		// baseline), resolved once instead of per level.
		cv := fs.ctrlVec()
		cn := len(cv)
		if cn > d {
			cn = d
		}
		for l := lo; l < cn; l++ {
			var t uint64
			if e := cv[l]; e.Tag == tags[l] {
				t = e.Time
			}
			out[l] = shadow.Entry{Time: t, Tag: tags[l]}
		}
		if cn < lo {
			cn = lo
		}
		for l := cn; l < d; l++ {
			out[l] = shadow.Entry{Tag: tags[l]}
		}
	}

	switch ins.Op {
	case ir.OpPhi:
		if !ins.Induction && predIdx >= 0 && predIdx < len(ins.Args) {
			maxInto(out, tags, rt.argVec(fs, ins.Args[predIdx]), lo, d)
		}
		// Induction phi: dependence on the carried value is broken; only the
		// control time remains.
	case ir.OpLoad:
		maxInto(out, tags, rt.argVec(fs, ins.Args[0]), lo, d) // address computation
		maxIntoSlot(out, tags, rt.mem.Load(addr), lo, d)
	default:
		for i, a := range ins.Args {
			if i == ins.BreakArg {
				continue // induction/reduction old-value dependence: ignored
			}
			maxInto(out, tags, rt.argVec(fs, a), lo, d)
		}
		switch ins.Builtin {
		case "rand", "frand", "srand":
			maxInto(out, tags, rt.randVec, lo, d)
		case "printval", "printstr", "printnl":
			maxInto(out, tags, rt.ioVec, lo, d)
		}
	}

	if rt.carried != nil {
		rt.traceIns(fs, ins, addr, predIdx)
	}

	for l := lo; l < d; l++ {
		out[l].Time += lat
		if out[l].Time > rt.stack[l].maxTime {
			rt.stack[l].maxTime = out[l].Time
		}
	}

	switch {
	case ins.Op == ir.OpStore:
		rt.mem.WriteVec(addr, out, d)
	case ins.Op == ir.OpRet:
		fs.RetVec = append(fs.RetVec[:0], out...)
	case ins.Builtin == "rand" || ins.Builtin == "frand" || ins.Builtin == "srand":
		rt.randVec = append(rt.randVec[:0], out...)
		if ins.HasResult() {
			fs.Regs.Set(ins.ID, out, d)
		}
	case ins.Builtin == "printval" || ins.Builtin == "printstr" || ins.Builtin == "printnl":
		rt.ioVec = append(rt.ioVec[:0], out...)
	case ins.HasResult():
		fs.Regs.Set(ins.ID, out, d)
	}
	return out
}

// traceIns is the loop-carried dependence tracer: it re-walks the values
// ins reads — mirroring Step's fold rules exactly, including every broken
// dependence Step skips — and flags any read whose producer ran in an
// earlier iteration of an enclosing loop. The tag signature is decisive:
// every shadow vector and memory slot is stamped with the region-instance
// tags current at production, so a read at loop level l crosses iterations
// iff the producer's tag matches at l (same dynamic loop instance) but
// differs at l+1 (different body instance). Values produced outside the
// loop fail the level-l match; values produced between iterations (loop
// header) have no level-l+1 entry; both are skipped, so the tracer never
// over-reports — the property the fuzz oracle's soundness check rests on.
func (rt *Runtime) traceIns(fs *FrameState, ins *ir.Instr, addr uint64, predIdx int) {
	switch ins.Op {
	case ir.OpPhi:
		// Induction phis have their carried dependence broken by Step;
		// reduction phis carry only the reorderable accumulator, broken at
		// the holder op. Neither is a dependence the runtime honors.
		if ins.Induction || ins.Reduction {
			return
		}
		if predIdx >= 0 && predIdx < len(ins.Args) {
			rt.noteVec(rt.argVec(fs, ins.Args[predIdx]))
		}
	case ir.OpLoad:
		rt.noteVec(rt.argVec(fs, ins.Args[0]))
		if !ins.Reduction {
			// A reduction-marked load is the accumulator's broken old-value
			// read (a[i] += x); any other load observing an earlier
			// iteration's store is a genuine carried flow dependence.
			rt.noteSlot(rt.mem.Load(addr))
		}
	default:
		for i, a := range ins.Args {
			if i == ins.BreakArg {
				continue
			}
			rt.noteVec(rt.argVec(fs, a))
		}
		switch ins.Builtin {
		case "rand", "frand", "srand":
			rt.noteVec(rt.randVec)
		case "printval", "printstr", "printnl":
			rt.noteVec(rt.ioVec)
		}
	}
}

func (rt *Runtime) noteVec(vec shadow.Vec) {
	for _, l := range rt.depLevels {
		if l+1 >= len(vec) {
			continue
		}
		if vec[l].Tag == rt.tags[l] && vec[l+1].Tag != rt.tags[l+1] {
			rt.carried[int32(rt.stack[l].region.ID)] = true
		}
	}
}

func (rt *Runtime) noteSlot(s shadow.Slot) {
	for _, l := range rt.depLevels {
		if l+1 >= len(s.Tags) {
			continue
		}
		if s.Tags[l] == rt.tags[l] && s.Tags[l+1] != rt.tags[l+1] {
			rt.carried[int32(rt.stack[l].region.ID)] = true
		}
	}
}

// CarriedDeps returns the static region IDs of the loop regions that
// exhibited a dynamic loop-carried flow dependence, sorted. Nil unless the
// runtime was created with Options.TraceDeps.
func (rt *Runtime) CarriedDeps() []int {
	if rt.carried == nil {
		return nil
	}
	ids := make([]int, 0, len(rt.carried))
	for id := range rt.carried {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	return ids
}

// SetInternHook registers fn to observe every dictionary character interned
// by ExitRegion, in intern order (nil disables). The incremental profile
// cache uses the stream to record which dictionary entries a call's dynamic
// extent touches; cache splices that intern entries without a region exit
// must feed the hook themselves.
func (rt *Runtime) SetInternHook(fn func(int32)) { rt.onIntern = fn }

// ArgsTimely reports whether every argument vector is available no later
// than the frame's current control time at every tracked level. When it
// holds, a call's dynamic extent is a pure base-plus-delta function of the
// control time at the call site: argument availability can never perturb the
// times accumulated inside the extent, so a recorded extent with the same
// argument values replays exactly. (At untracked levels — at or above the
// entry depth — argument vectors always read zero, so only caller levels
// need checking.)
func (rt *Runtime) ArgsTimely(fs *FrameState, vecs []shadow.Vec) bool {
	d := rt.level()
	cv := fs.ctrlVec()
	tags := rt.tags
	for l := rt.lowLevel(); l < d; l++ {
		ct := cv.Read(l, tags[l])
		for _, v := range vecs {
			if v.Read(l, tags[l]) > ct {
				return false
			}
		}
	}
	return true
}

// ApplySkippedCall applies the caller-visible shadow effects of a call whose
// dynamic extent was replayed from the incremental cache instead of being
// executed. Provided ArgsTimely held at the call site, a real execution of
// the extent would have (a) advanced total work by the extent's work, (b)
// raised every enclosing region's critical-path watermark to the control
// time plus the extent's span (maxDelta), (c) made the call's result
// available at the control time plus the return offset (retDelta), and (d)
// appended the extent's root dictionary character to the parent region's
// child-run sequence. This reproduces exactly those effects. Region
// instance counters are deliberately not advanced: instance tags never
// reach the profile, and the skipped extent can no longer be confused with
// a live one.
func (rt *Runtime) ApplySkippedCall(fs *FrameState, call *ir.Instr, work, retDelta, maxDelta uint64, rootChar int32) {
	rt.totalWork += work
	d := rt.level()
	lo := rt.lowLevel()
	tags := rt.tags
	cv := fs.ctrlVec()
	if call.HasResult() {
		cur := fs.Regs.Get(call.ID)
		out := rt.scratch[:d]
		for l := 0; l < lo; l++ {
			out[l] = shadow.Entry{}
		}
		for l := lo; l < d; l++ {
			ct := cv.Read(l, tags[l])
			if m := ct + maxDelta; m > rt.stack[l].maxTime {
				rt.stack[l].maxTime = m
			}
			t := cur.Read(l, tags[l])
			if rv := ct + retDelta; rv > t {
				t = rv
			}
			out[l] = shadow.Entry{Time: t, Tag: tags[l]}
			if t > rt.stack[l].maxTime {
				rt.stack[l].maxTime = t
			}
		}
		fs.Regs.Set(call.ID, out, d)
	} else {
		for l := lo; l < d; l++ {
			ct := cv.Read(l, tags[l])
			if m := ct + maxDelta; m > rt.stack[l].maxTime {
				rt.stack[l].maxTime = m
			}
		}
	}
	if len(rt.stack) > 0 {
		parent := &rt.stack[len(rt.stack)-1]
		if n := len(parent.children); n > 0 && parent.children[n-1].Char == rootChar {
			parent.children[n-1].Count++
		} else {
			parent.children = append(parent.children, profile.Child{Char: rootChar, Count: 1})
		}
	} else {
		rt.prof.AddRoot(rootChar)
	}
}

// FinishCall merges the callee's return-value vector into the call
// instruction's result (the call's own Step already accounted for argument
// availability).
func (rt *Runtime) FinishCall(fs *FrameState, call *ir.Instr, ret shadow.Vec) {
	if !call.HasResult() {
		return
	}
	d := rt.level()
	cur := fs.Regs.Get(call.ID)
	out := rt.scratch[:d]
	for l := 0; l < d; l++ {
		t := cur.Read(l, rt.tags[l])
		if rv := ret.Read(l, rt.tags[l]); rv > t {
			t = rv
		}
		out[l] = shadow.Entry{Time: t, Tag: rt.tags[l]}
		if t > rt.stack[l].maxTime {
			rt.stack[l].maxTime = t
		}
	}
	fs.Regs.Set(call.ID, out, d)
}
