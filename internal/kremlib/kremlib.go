// Package kremlib is the profiling runtime the instrumented program runs
// against — the equivalent of the paper's KremLib library. It maintains the
// dynamic region stack, the per-depth work and critical-path accounting of
// hierarchical critical path analysis, the control-dependence stack, and
// the induction/reduction dependence-breaking update rules, and it emits
// compressed dynamic-region summaries into a profile.Dict on region exit.
package kremlib

import (
	"kremlin/internal/ir"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
	"kremlin/internal/shadow"
)

// DefaultMaxDepth is the default region-depth collection window.
const DefaultMaxDepth = 48

// Options configures a profiling run.
type Options struct {
	// MinDepth/MaxDepth bound the half-open window [MinDepth, MaxDepth) of
	// region depths for which availability times are tracked — the paper's
	// command-line flag that lets HCPA data collection be split across
	// parallel runs. Regions outside the window still report work, with CP
	// falling back to work (a serial, conservative assumption).
	MinDepth int
	MaxDepth int
}

type active struct {
	region    *regions.Region
	instance  uint64
	entryWork uint64
	maxTime   uint64
	children  map[int32]int64
}

// Runtime is the live profiling state of one instrumented execution.
type Runtime struct {
	opts  Options
	mem   *shadow.Memory
	prof  *profile.Profile
	stack []active

	totalWork    uint64
	nextInstance uint64

	// ioVec serializes observable output (print) — an explicit dependence
	// chain, since output order is a true serial constraint.
	ioVec shadow.Vec
	// randVec serializes the internal RNG state the same way.
	randVec shadow.Vec

	scratch shadow.Vec
	tags    []uint64
}

// NewRuntime returns a runtime recording into prof.
func NewRuntime(prof *profile.Profile, opts Options) *Runtime {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	return &Runtime{
		opts: opts,
		mem:  shadow.NewMemory(),
		prof: prof,
	}
}

// Mem exposes the shadow memory (the interpreter signals frees through it).
func (rt *Runtime) Mem() *shadow.Memory { return rt.mem }

// TotalWork returns the work executed so far.
func (rt *Runtime) TotalWork() uint64 { return rt.totalWork }

// Depth returns the current region nesting depth.
func (rt *Runtime) Depth() int { return len(rt.stack) }

// level returns the number of tracked levels right now (the exclusive
// upper bound of the window).
func (rt *Runtime) level() int {
	d := len(rt.stack)
	if d > rt.opts.MaxDepth {
		d = rt.opts.MaxDepth
	}
	return d
}

// lowLevel returns the first tracked level — the window's lower bound,
// clamped to the current depth. Levels below it accrue work only; their
// regions fall back to the serial (cp = work) assumption on exit, so two
// complementary-window runs can be collected in parallel and merged.
func (rt *Runtime) lowLevel() int {
	lo := rt.opts.MinDepth
	if d := rt.level(); lo > d {
		lo = d
	}
	return lo
}

// EnterRegion pushes a new dynamic region instance.
func (rt *Runtime) EnterRegion(r *regions.Region) {
	rt.nextInstance++
	rt.stack = append(rt.stack, active{
		region:    r,
		instance:  rt.nextInstance,
		entryWork: rt.totalWork,
		children:  make(map[int32]int64, 4),
	})
	rt.syncTags()
}

// ExitRegion pops the current region, interning its summary. It returns the
// region's dictionary character.
func (rt *Runtime) ExitRegion() int32 {
	top := rt.stack[len(rt.stack)-1]
	rt.stack = rt.stack[:len(rt.stack)-1]
	rt.syncTags()

	work := rt.totalWork - top.entryWork
	cp := top.maxTime
	if cp == 0 {
		// Region outside the tracked depth window, or empty: fall back to
		// the serial assumption.
		cp = work
	}
	if cp == 0 {
		cp = 1
	}
	char := rt.prof.Dict.Intern(int32(top.region.ID), work, cp, top.children)
	if len(rt.stack) > 0 {
		rt.stack[len(rt.stack)-1].children[char]++
	} else {
		rt.prof.AddRoot(char)
	}
	return char
}

// IterateRegion ends the current dynamic instance of a loop-body region and
// begins a fresh one (a loop back edge).
func (rt *Runtime) IterateRegion(r *regions.Region) {
	rt.ExitRegion()
	rt.EnterRegion(r)
}

// Unwind exits every region at depth >= target (used on function return,
// which may leave several loops at once).
func (rt *Runtime) Unwind(target int) {
	for len(rt.stack) > target {
		rt.ExitRegion()
	}
}

func (rt *Runtime) syncTags() {
	d := rt.level()
	if cap(rt.tags) < d {
		rt.tags = make([]uint64, d, d+16)
	} else {
		rt.tags = rt.tags[:d]
	}
	for i := 0; i < d; i++ {
		rt.tags[i] = rt.stack[i].instance
	}
	if cap(rt.scratch) < d {
		rt.scratch = make(shadow.Vec, d, d+16)
	}
}

// FrameState is the per-call profiling state: the shadow register table and
// the control-dependence stack of the frame. The control baseline inherited
// from the caller propagates interprocedural control dependence.
type FrameState struct {
	Regs       *shadow.RegisterTable
	ctrl       []ctrlEntry
	base       shadow.Vec
	RetVec     shadow.Vec
	EntryDepth int // region-stack depth at frame entry (before the func region)
}

type ctrlEntry struct {
	branch *ir.Block // the branch block that pushed the entry
	popAt  *ir.Block
	vec    shadow.Vec
}

// NewFrame creates the profiling state for a call. The caller's current
// control time becomes the frame's control baseline, which propagates
// interprocedural control dependence (a function called under an if is
// control dependent on the if, at every level the caller shares). Call
// before entering the callee's function region.
func (rt *Runtime) NewFrame(f *ir.Func, caller *FrameState) *FrameState {
	fs := &FrameState{Regs: shadow.NewRegisterTable(f.NumValues()), EntryDepth: len(rt.stack)}
	d := rt.level()
	base := make(shadow.Vec, d)
	for l := 0; l < d; l++ {
		var t uint64
		if caller != nil {
			t = rt.ctrlTime(caller, l)
		}
		base[l] = shadow.Entry{Time: t, Tag: rt.tags[l]}
	}
	fs.base = base
	return fs
}

// ctrlTime returns the current control-dependence time at level l.
func (rt *Runtime) ctrlTime(fs *FrameState, l int) uint64 {
	if n := len(fs.ctrl); n > 0 {
		return fs.ctrl[n-1].vec.Read(l, rt.tags[l])
	}
	if fs.base != nil {
		return fs.base.Read(l, rt.tags[l])
	}
	return 0
}

// PushCtrl pushes a control-dependence entry whose availability is the
// branch time vec, to be popped when control reaches popAt (the branch's
// immediate postdominator). The entry folds in the control time *below*
// it so reads need only check the top of the stack. When the same branch
// re-executes before its pop point (a loop back edge), its previous entry
// is replaced rather than chained: iteration i+1's control availability is
// its own condition's time, not the accumulated history — without this,
// the loop branch would serialize DOALL iterations at the loop level.
func (rt *Runtime) PushCtrl(fs *FrameState, branch, popAt *ir.Block, brVec shadow.Vec) {
	if n := len(fs.ctrl); n > 0 && fs.ctrl[n-1].branch == branch {
		fs.ctrl = fs.ctrl[:n-1]
	}
	d := rt.level()
	vec := make(shadow.Vec, d)
	for l := 0; l < d; l++ {
		t := rt.ctrlTime(fs, l)
		if bt := brVec.Read(l, rt.tags[l]); bt > t {
			t = bt
		}
		vec[l] = shadow.Entry{Time: t, Tag: rt.tags[l]}
	}
	fs.ctrl = append(fs.ctrl, ctrlEntry{branch: branch, popAt: popAt, vec: vec})
}

// PopSameBranch removes the top control entry if it was pushed by the same
// branch block; call before re-executing a branch so neither the branch's
// own availability nor its new entry chains on its previous execution.
func (rt *Runtime) PopSameBranch(fs *FrameState, branch *ir.Block) {
	if n := len(fs.ctrl); n > 0 && fs.ctrl[n-1].branch == branch {
		fs.ctrl = fs.ctrl[:n-1]
	}
}

// AtBlock pops control entries whose postdominator is the block now being
// entered. Only the top of the stack ever needs checking on reads, but
// multiple entries can share a pop point (loop back edges), so pop in a loop.
func (rt *Runtime) AtBlock(fs *FrameState, blk *ir.Block) {
	for n := len(fs.ctrl); n > 0 && fs.ctrl[n-1].popAt == blk; n = len(fs.ctrl) {
		fs.ctrl = fs.ctrl[:n-1]
	}
}

// argVec fetches the shadow vector of an operand (nil for constants, whose
// availability is 0 at every level).
func (rt *Runtime) argVec(fs *FrameState, v ir.Value) shadow.Vec {
	if ins, ok := v.(*ir.Instr); ok {
		return fs.Regs.Get(ins.ID)
	}
	return nil
}

// Step performs the HCPA availability-time update for one executed
// instruction. addr is the simulated address touched by OpLoad/OpStore
// (otherwise ignored); predIdx is the incoming-predecessor index for OpPhi.
// It returns the instruction's time vector (valid until the next Step).
func (rt *Runtime) Step(fs *FrameState, ins *ir.Instr, addr uint64, predIdx int) shadow.Vec {
	lat := ins.Latency()
	rt.totalWork += lat
	d := rt.level()
	lo := rt.lowLevel()
	out := rt.scratch[:d]

	for l := 0; l < lo; l++ {
		out[l] = shadow.Entry{}
	}
	for l := lo; l < d; l++ {
		out[l] = shadow.Entry{Time: rt.ctrlTime(fs, l), Tag: rt.tags[l]}
	}

	maxIn := func(vec shadow.Vec) {
		for l := lo; l < d; l++ {
			if t := vec.Read(l, rt.tags[l]); t > out[l].Time {
				out[l].Time = t
			}
		}
	}

	switch ins.Op {
	case ir.OpPhi:
		if !ins.Induction && predIdx >= 0 && predIdx < len(ins.Args) {
			maxIn(rt.argVec(fs, ins.Args[predIdx]))
		}
		// Induction phi: dependence on the carried value is broken; only the
		// control time remains.
	case ir.OpLoad:
		maxIn(rt.argVec(fs, ins.Args[0])) // address computation
		maxIn(rt.mem.ReadVec(addr))
	default:
		for i, a := range ins.Args {
			if i == ins.BreakArg {
				continue // induction/reduction old-value dependence: ignored
			}
			maxIn(rt.argVec(fs, a))
		}
		switch ins.Builtin {
		case "rand", "frand", "srand":
			maxIn(rt.randVec)
		case "printval", "printstr", "printnl":
			maxIn(rt.ioVec)
		}
	}

	for l := lo; l < d; l++ {
		out[l].Time += lat
		if out[l].Time > rt.stack[l].maxTime {
			rt.stack[l].maxTime = out[l].Time
		}
	}

	switch {
	case ins.Op == ir.OpStore:
		rt.mem.WriteVec(addr, out, d)
	case ins.Op == ir.OpRet:
		fs.RetVec = append(fs.RetVec[:0], out...)
	case ins.Builtin == "rand" || ins.Builtin == "frand" || ins.Builtin == "srand":
		rt.randVec = append(rt.randVec[:0], out...)
		if ins.HasResult() {
			fs.Regs.Set(ins.ID, out, d)
		}
	case ins.Builtin == "printval" || ins.Builtin == "printstr" || ins.Builtin == "printnl":
		rt.ioVec = append(rt.ioVec[:0], out...)
	case ins.HasResult():
		fs.Regs.Set(ins.ID, out, d)
	}
	return out
}

// FinishCall merges the callee's return-value vector into the call
// instruction's result (the call's own Step already accounted for argument
// availability).
func (rt *Runtime) FinishCall(fs *FrameState, call *ir.Instr, ret shadow.Vec) {
	if !call.HasResult() {
		return
	}
	d := rt.level()
	cur := fs.Regs.Get(call.ID)
	out := rt.scratch[:d]
	for l := 0; l < d; l++ {
		t := cur.Read(l, rt.tags[l])
		if rv := ret.Read(l, rt.tags[l]); rv > t {
			t = rv
		}
		out[l] = shadow.Entry{Time: t, Tag: rt.tags[l]}
		if t > rt.stack[l].maxTime {
			rt.stack[l].maxTime = t
		}
	}
	fs.Regs.Set(call.ID, out, d)
}
