package kremlib

// White-box unit tests of the runtime's region accounting, dependence
// propagation, and depth-window behavior, driven directly (without the
// interpreter) on synthetic regions and instructions.

import (
	"testing"

	"kremlin/internal/ast"
	"kremlin/internal/ir"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
	"kremlin/internal/types"
)

func synthRegions(n int) []*regions.Region {
	f := &ir.Func{Name: "synth"}
	out := make([]*regions.Region, n)
	for i := range out {
		out[i] = &regions.Region{ID: i, Kind: regions.LoopRegion, Func: f}
		if i > 0 {
			out[i].Parent = out[i-1]
		}
	}
	return out
}

func newRT() (*Runtime, *profile.Profile) {
	prof := profile.New()
	return NewRuntime(prof, Options{}), prof
}

// synthFunc reserves value IDs up front so frames created from it can hold
// every instruction the test will fabricate.
func synthFunc() *ir.Func {
	f := &ir.Func{Name: "synth"}
	for i := 0; i < 256; i++ {
		f.NewValueID()
	}
	return f
}

var nextTestID int

func addInstr(f *ir.Func) *ir.Instr {
	ins := &ir.Instr{Op: ir.OpBin, Bin: ir.BinAdd, Typ: types.Scalar(ast.Int),
		Args: []ir.Value{&ir.ConstInt{V: 1}, &ir.ConstInt{V: 2}}, BreakArg: -1}
	ins.ID = nextTestID % 256
	nextTestID++
	return ins
}

func rawInstr(op ir.Op) *ir.Instr {
	ins := &ir.Instr{Op: op, BreakArg: -1}
	ins.ID = nextTestID % 256
	nextTestID++
	return ins
}

func TestRegionAccounting(t *testing.T) {
	rt, prof := newRT()
	rs := synthRegions(2)
	f := synthFunc()
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0])
	rt.Step(fs, addInstr(f), 0, -1) // work 1 in outer only
	rt.EnterRegion(rs[1])
	rt.Step(fs, addInstr(f), 0, -1) // work 1 in both
	rt.Step(fs, addInstr(f), 0, -1)
	rt.ExitRegion()
	rt.ExitRegion()

	if len(prof.Roots) != 1 {
		t.Fatalf("roots = %d", len(prof.Roots))
	}
	root := prof.Dict.Entries[prof.Roots[0]]
	if root.Work != 3 {
		t.Errorf("outer work = %d, want 3", root.Work)
	}
	if len(root.Children) != 1 {
		t.Fatalf("children = %v", root.Children)
	}
	inner := prof.Dict.Entries[root.Children[0].Char]
	if inner.Work != 2 {
		t.Errorf("inner work = %d, want 2", inner.Work)
	}
}

func TestSerialChainCriticalPath(t *testing.T) {
	rt, prof := newRT()
	rs := synthRegions(1)
	f := synthFunc()
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0])
	// A chain of 5 dependent adds: cp = 5, work = 5.
	var prev *ir.Instr
	for i := 0; i < 5; i++ {
		ins := addInstr(f)
		if prev != nil {
			ins.Args = []ir.Value{prev, &ir.ConstInt{V: 1}}
		}
		rt.Step(fs, ins, 0, -1)
		prev = ins
	}
	rt.ExitRegion()
	e := prof.Dict.Entries[prof.Roots[0]]
	if e.Work != 5 || e.CP != 5 {
		t.Errorf("work=%d cp=%d, want 5/5 (serial chain)", e.Work, e.CP)
	}
}

func TestIndependentOpsCriticalPath(t *testing.T) {
	rt, prof := newRT()
	rs := synthRegions(1)
	f := synthFunc()
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0])
	for i := 0; i < 5; i++ {
		rt.Step(fs, addInstr(f), 0, -1) // all constants: independent
	}
	rt.ExitRegion()
	e := prof.Dict.Entries[prof.Roots[0]]
	if e.Work != 5 || e.CP != 1 {
		t.Errorf("work=%d cp=%d, want 5/1 (independent ops)", e.Work, e.CP)
	}
}

func TestBreakArgIgnoresDependence(t *testing.T) {
	rt, prof := newRT()
	rs := synthRegions(1)
	f := synthFunc()
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0])
	var prev *ir.Instr
	for i := 0; i < 5; i++ {
		ins := addInstr(f)
		if prev != nil {
			ins.Args = []ir.Value{prev, &ir.ConstInt{V: 1}}
			ins.BreakArg = 0 // reduction: old value ignored
			ins.Reduction = true
		}
		rt.Step(fs, ins, 0, -1)
		prev = ins
	}
	rt.ExitRegion()
	e := prof.Dict.Entries[prof.Roots[0]]
	if e.CP != 1 {
		t.Errorf("cp = %d, want 1 (chain broken)", e.CP)
	}
}

func TestMemoryDependenceThroughShadow(t *testing.T) {
	rt, prof := newRT()
	rs := synthRegions(1)
	f := synthFunc()
	fs := rt.NewFrame(f, nil)
	cellType := types.Type{Elem: ast.Float}

	rt.EnterRegion(rs[0])
	// store @100 <- const; load @100; store @200 <- loaded: a 3-op chain
	// through memory.
	st1 := rawInstr(ir.OpStore)
	st1.Args = []ir.Value{&ir.ConstInt{V: 0}, &ir.ConstFloat{V: 1}}
	rt.Step(fs, st1, 100, -1)
	ld := rawInstr(ir.OpLoad)
	ld.Typ = cellType
	ld.Args = []ir.Value{&ir.ConstInt{V: 0}}
	rt.Step(fs, ld, 100, -1)
	st2 := rawInstr(ir.OpStore)
	st2.Args = []ir.Value{&ir.ConstInt{V: 0}, ld}
	rt.Step(fs, st2, 200, -1)
	rt.ExitRegion()

	e := prof.Dict.Entries[prof.Roots[0]]
	// Latencies: store 1, load 2, store 1 → chain 1+2+1 = 4 = work.
	if e.CP != e.Work {
		t.Errorf("cp=%d work=%d, want equal (fully serial memory chain)", e.CP, e.Work)
	}
}

func TestTagsIsolateSiblingRegions(t *testing.T) {
	rt, prof := newRT()
	rs := synthRegions(2)
	sibling := &regions.Region{ID: 99, Kind: regions.LoopRegion, Func: rs[0].Func, Parent: rs[0]}
	f := synthFunc()
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0])
	rt.EnterRegion(rs[1])
	st := rawInstr(ir.OpStore)
	st.Args = []ir.Value{&ir.ConstInt{V: 0}, &ir.ConstFloat{V: 1}}
	rt.Step(fs, st, 500, -1)
	rt.ExitRegion() // rs[1] exits: its level-1 times become stale

	rt.EnterRegion(sibling)
	ld := rawInstr(ir.OpLoad)
	ld.Typ = types.Type{Elem: ast.Float}
	ld.Args = []ir.Value{&ir.ConstInt{V: 0}}
	rt.Step(fs, ld, 500, -1)
	rt.ExitRegion()
	rt.ExitRegion()

	// The sibling's cp must reflect only its own load (latency 2), not the
	// writer's time: the tag mismatch read 0 at level 1.
	var sibEntry *profile.Entry
	for i, e := range prof.Dict.Entries {
		if e.StaticID == 99 {
			sibEntry = &prof.Dict.Entries[i]
		}
	}
	if sibEntry == nil {
		t.Fatal("sibling entry missing")
	}
	if sibEntry.CP != 2 {
		t.Errorf("sibling cp = %d, want 2 (tag isolation)", sibEntry.CP)
	}
}

func TestUnwindExitsEverything(t *testing.T) {
	rt, prof := newRT()
	rs := synthRegions(4)
	for _, r := range rs {
		rt.EnterRegion(r)
	}
	if rt.Depth() != 4 {
		t.Fatalf("depth = %d", rt.Depth())
	}
	rt.Unwind(1)
	if rt.Depth() != 1 {
		t.Fatalf("depth after unwind = %d", rt.Depth())
	}
	rt.Unwind(0)
	if len(prof.Roots) != 1 {
		t.Errorf("roots = %d, want 1 (only the outermost)", len(prof.Roots))
	}
}

func TestIterateRegionCreatesSiblingInstances(t *testing.T) {
	rt, prof := newRT()
	rs := synthRegions(2)
	f := synthFunc()
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0])
	rt.EnterRegion(rs[1])
	for i := 0; i < 3; i++ {
		rt.Step(fs, addInstr(f), 0, -1)
		rt.IterateRegion(rs[1])
	}
	rt.ExitRegion()
	rt.ExitRegion()

	root := prof.Dict.Entries[prof.Roots[0]]
	var n int64
	for _, k := range root.Children {
		n += k.Count
	}
	if n != 4 { // 3 iterations + the final instance
		t.Errorf("child instances = %d, want 4", n)
	}
}

func TestDepthWindowLowBound(t *testing.T) {
	prof := profile.New()
	rt := NewRuntime(prof, Options{MinDepth: 1, MaxDepth: 8})
	rs := synthRegions(2)
	f := synthFunc()
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0]) // depth 0: below the window
	rt.EnterRegion(rs[1]) // depth 1: tracked
	var prev *ir.Instr
	for i := 0; i < 4; i++ {
		ins := addInstr(f)
		if prev != nil {
			ins.Args = []ir.Value{prev, &ir.ConstInt{V: 1}}
		}
		rt.Step(fs, ins, 0, -1)
		prev = ins
	}
	rt.ExitRegion()
	rt.ExitRegion()

	var inner, outer *profile.Entry
	for i := range prof.Dict.Entries {
		e := &prof.Dict.Entries[i]
		if e.StaticID == 1 {
			inner = e
		}
		if e.StaticID == 0 {
			outer = e
		}
	}
	if inner.CP != 4 {
		t.Errorf("tracked inner cp = %d, want 4", inner.CP)
	}
	// The untracked outer region falls back to cp = work (serial).
	if outer.CP != outer.Work {
		t.Errorf("untracked outer cp = %d, want work %d", outer.CP, outer.Work)
	}
}

func TestControlStackPushPop(t *testing.T) {
	rt, _ := newRT()
	rs := synthRegions(1)
	f := synthFunc()
	branch := f.NewBlock("branch")
	popAt := f.NewBlock("join")
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0])
	// A branch whose condition took 7 time units.
	cond := addInstr(f)
	cond.Args = []ir.Value{&ir.ConstInt{V: 1}, &ir.ConstInt{V: 2}}
	vec := rt.Step(fs, cond, 0, -1)
	rt.PushCtrl(fs, branch, popAt, vec)

	// An otherwise-independent op inherits the control time.
	dep := addInstr(f)
	rt.Step(fs, dep, 0, -1)
	got := fs.Regs.Get(dep.ID).Read(0, rt.tags[0])
	if got != 2 { // cond time 1 + latency 1
		t.Errorf("control-dependent time = %d, want 2", got)
	}

	rt.AtBlock(fs, popAt) // pop
	free := addInstr(f)
	rt.Step(fs, free, 0, -1)
	if got := fs.Regs.Get(free.ID).Read(0, rt.tags[0]); got != 1 {
		t.Errorf("post-join time = %d, want 1 (control released)", got)
	}
	rt.ExitRegion()
}

func TestSameBranchReplacement(t *testing.T) {
	rt, _ := newRT()
	rs := synthRegions(1)
	f := synthFunc()
	branch := f.NewBlock("hdr")
	popAt := f.NewBlock("exit")
	fs := rt.NewFrame(f, nil)

	rt.EnterRegion(rs[0])
	for i := 0; i < 10; i++ {
		rt.PopSameBranch(fs, branch)
		cond := addInstr(f)
		vec := rt.Step(fs, cond, 0, -1)
		rt.PushCtrl(fs, branch, popAt, vec)
	}
	if n := len(fs.ctrl); n != 1 {
		t.Errorf("control stack grew to %d entries; same-branch entries must replace", n)
	}
	rt.ExitRegion()
}
