package cfg

import (
	"sort"
	"testing"
	"testing/quick"

	"kremlin/internal/ir"
)

// buildFunc constructs an IR function with the given block count and edges
// (no instructions needed for graph analyses except terminators implied by
// edges; the cfg package only reads Preds/Succs).
func buildFunc(n int, edges [][2]int) *ir.Func {
	f := &ir.Func{Name: "g"}
	blocks := make([]*ir.Block, n)
	for i := 0; i < n; i++ {
		blocks[i] = f.NewBlock("b")
	}
	for _, e := range edges {
		ir.AddEdge(blocks[e[0]], blocks[e[1]])
	}
	return f
}

// diamond: 0 -> 1,2 -> 3
func diamond() *ir.Func {
	return buildFunc(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
}

// loopCFG: 0 -> 1(header) -> 2(body) -> 1, 1 -> 3(exit)
func loopCFG() *ir.Func {
	return buildFunc(4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {1, 3}})
}

func TestRPOStartsAtEntry(t *testing.T) {
	g := New(diamond())
	rpo := g.RPO()
	if rpo[0] != 0 {
		t.Errorf("rpo[0] = %d, want entry", rpo[0])
	}
	if len(rpo) != 4 {
		t.Errorf("rpo covers %d nodes, want 4", len(rpo))
	}
	// In RPO, a node precedes its successors unless there is a back edge.
	pos := make([]int, 4)
	for i, u := range rpo {
		pos[u] = i
	}
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] {
		t.Errorf("rpo order wrong: %v", rpo)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := New(diamond())
	idom := g.Dominators()
	want := []int{0, 0, 0, 0}
	for i, w := range want {
		if idom[i] != w {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], w)
		}
	}
}

func TestDominatorsLoop(t *testing.T) {
	g := New(loopCFG())
	idom := g.Dominators()
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 1 {
		t.Errorf("idom = %v", idom)
	}
	if !Dominates(idom, 1, 2) || Dominates(idom, 2, 3) {
		t.Error("Dominates relation wrong")
	}
	if !Dominates(idom, 0, 3) {
		t.Error("entry dominates everything")
	}
}

func TestDomTreeChildren(t *testing.T) {
	g := New(loopCFG())
	children := DomTree(g.Dominators())
	sort.Ints(children[1])
	if len(children[0]) != 1 || children[0][0] != 1 {
		t.Errorf("children[0] = %v", children[0])
	}
	if len(children[1]) != 2 {
		t.Errorf("children[1] = %v", children[1])
	}
}

func TestDominanceFrontierDiamond(t *testing.T) {
	g := New(diamond())
	df := g.DominanceFrontiers(g.Dominators())
	if len(df[1]) != 1 || df[1][0] != 3 {
		t.Errorf("DF(1) = %v, want [3]", df[1])
	}
	if len(df[2]) != 1 || df[2][0] != 3 {
		t.Errorf("DF(2) = %v, want [3]", df[2])
	}
	if len(df[0]) != 0 {
		t.Errorf("DF(0) = %v, want empty", df[0])
	}
}

func TestDominanceFrontierLoopHeader(t *testing.T) {
	g := New(loopCFG())
	df := g.DominanceFrontiers(g.Dominators())
	// The header is in its own dominance frontier (back edge).
	found := false
	for _, x := range df[2] {
		if x == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(2) = %v should contain the header", df[2])
	}
}

func TestPostdominators(t *testing.T) {
	g := New(diamond())
	ipdom := g.Postdominators()
	if ipdom[1] != 3 || ipdom[2] != 3 || ipdom[0] != 3 {
		t.Errorf("ipdom = %v", ipdom)
	}
	// Node 3's postdominator is the virtual exit (index 4).
	if ipdom[3] != 4 {
		t.Errorf("ipdom[3] = %d, want virtual exit 4", ipdom[3])
	}
}

func TestControlDeps(t *testing.T) {
	g := New(diamond())
	cd := g.ControlDeps(g.Postdominators())
	if len(cd[1]) != 1 || cd[1][0] != 0 {
		t.Errorf("cd[1] = %v, want [0]", cd[1])
	}
	if len(cd[2]) != 1 || cd[2][0] != 0 {
		t.Errorf("cd[2] = %v, want [0]", cd[2])
	}
	if len(cd[3]) != 0 {
		t.Errorf("cd[3] = %v, want none (join postdominates branch)", cd[3])
	}
}

func TestControlDepsLoop(t *testing.T) {
	g := New(loopCFG())
	cd := g.ControlDeps(g.Postdominators())
	// The body (2) and the header itself (1) are control dependent on the
	// header's branch.
	has := func(deps []int, v int) bool {
		for _, d := range deps {
			if d == v {
				return true
			}
		}
		return false
	}
	if !has(cd[2], 1) {
		t.Errorf("body deps = %v, want header", cd[2])
	}
	if !has(cd[1], 1) {
		t.Errorf("header deps = %v, want itself (loop)", cd[1])
	}
}

func TestNaturalLoopDetection(t *testing.T) {
	f := loopCFG()
	g := New(f)
	loops := g.Loops(g.Dominators())
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != f.Blocks[1] {
		t.Errorf("header = %v", l.Header)
	}
	if len(l.Blocks) != 2 {
		t.Errorf("body size = %d, want 2", len(l.Blocks))
	}
	if !l.Contains(f.Blocks[2]) || l.Contains(f.Blocks[3]) {
		t.Error("Contains wrong")
	}
	if len(l.Exits) != 1 || l.Exits[0] != f.Blocks[3] {
		t.Errorf("exits = %v", l.Exits)
	}
	if l.Depth != 1 || l.Parent != nil {
		t.Errorf("depth=%d parent=%v", l.Depth, l.Parent)
	}
}

func TestNestedLoops(t *testing.T) {
	// 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner body) -> 2; 2 -> 4(latch) -> 1; 1 -> 5
	f := buildFunc(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 2}, {2, 4}, {4, 1}, {1, 5}})
	g := New(f)
	loops := g.Loops(g.Dominators())
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	var outer, inner *Loop
	for _, l := range loops {
		if l.Header == f.Blocks[1] {
			outer = l
		}
		if l.Header == f.Blocks[2] {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing loop")
	}
	if inner.Parent != outer {
		t.Errorf("inner.Parent = %v, want outer", inner.Parent)
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths = %d,%d", inner.Depth, outer.Depth)
	}
	if !outer.Contains(f.Blocks[3]) {
		t.Error("outer loop should contain inner body")
	}
}

func TestSharedHeaderLoopsMerge(t *testing.T) {
	// Two back edges to the same header merge into one loop.
	f := buildFunc(5, [][2]int{{0, 1}, {1, 2}, {2, 1}, {1, 3}, {3, 1}, {1, 4}})
	g := New(f)
	loops := g.Loops(g.Dominators())
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1 (merged)", len(loops))
	}
	if len(loops[0].Blocks) != 3 {
		t.Errorf("merged body = %d blocks, want 3", len(loops[0].Blocks))
	}
}

// randomCFG builds a connected random graph for property tests.
func randomCFG(seedEdges []uint16, n int) *ir.Func {
	f := &ir.Func{Name: "r"}
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock("b")
	}
	// Spanning chain guarantees reachability.
	for i := 1; i < n; i++ {
		ir.AddEdge(blocks[i-1], blocks[i])
	}
	for _, e := range seedEdges {
		from := int(e>>8) % n
		to := int(e&0xff) % n
		ir.AddEdge(blocks[from], blocks[to])
	}
	return f
}

// TestDominatorProperties: on random CFGs, (a) the entry dominates every
// node, (b) idom(v) strictly dominates v, (c) every DF(u) member has a
// predecessor dominated by u.
func TestDominatorProperties(t *testing.T) {
	check := func(seedEdges []uint16) bool {
		n := 8
		f := randomCFG(seedEdges, n)
		g := New(f)
		idom := g.Dominators()
		for v := 0; v < n; v++ {
			if !Dominates(idom, 0, v) {
				return false
			}
			if v != 0 && (idom[v] == v || !Dominates(idom, idom[v], v)) {
				return false
			}
		}
		df := g.DominanceFrontiers(idom)
		for u := 0; u < n; u++ {
			for _, w := range df[u] {
				ok := false
				for _, p := range g.Preds[w] {
					if Dominates(idom, u, p) {
						ok = true
					}
				}
				// u must dominate a predecessor of w but not strictly dominate w.
				if !ok || (Dominates(idom, u, w) && u != w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLoopProperties: every detected loop contains a back edge to its
// header, the header dominates every back-edge source, exits are outside
// the body, and the header is in the body. (Full header-dominates-body
// only holds for reducible CFGs; random graphs here may be irreducible,
// while CFGs built from Kr's structured control flow always are — see
// TestStructuredLoopsHeaderDominated in irbuild.)
func TestLoopProperties(t *testing.T) {
	check := func(seedEdges []uint16) bool {
		n := 8
		f := randomCFG(seedEdges, n)
		g := New(f)
		idom := g.Dominators()
		for _, l := range g.Loops(idom) {
			if !l.Contains(l.Header) {
				return false
			}
			h := g.Index(l.Header)
			backEdge := false
			for _, b := range l.Blocks {
				for _, s := range b.Succs {
					if s == l.Header && Dominates(idom, h, g.Index(b)) {
						backEdge = true
					}
				}
			}
			if !backEdge {
				return false
			}
			for _, e := range l.Exits {
				if l.Contains(e) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
