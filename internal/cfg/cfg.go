// Package cfg provides control-flow-graph analyses over IR functions:
// reverse postorder, dominators and postdominators (Cooper-Harvey-Kennedy),
// dominance frontiers, natural-loop detection, and control dependence.
package cfg

import (
	"kremlin/internal/ir"
)

// Graph is an index-based view of a function's CFG. Node i corresponds to
// Blocks[i]; the virtual exit node (for postdominance) is node N, present
// only in the reverse analyses.
type Graph struct {
	Blocks []*ir.Block
	index  map[*ir.Block]int
	Succs  [][]int
	Preds  [][]int
}

// New builds the index-based CFG of f. Blocks must all be reachable
// (run irbuild's RemoveUnreachable first).
func New(f *ir.Func) *Graph {
	g := &Graph{Blocks: f.Blocks, index: make(map[*ir.Block]int, len(f.Blocks))}
	for i, b := range f.Blocks {
		g.index[b] = i
	}
	g.Succs = make([][]int, len(f.Blocks))
	g.Preds = make([][]int, len(f.Blocks))
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			g.Succs[i] = append(g.Succs[i], g.index[s])
		}
		for _, p := range b.Preds {
			g.Preds[i] = append(g.Preds[i], g.index[p])
		}
	}
	return g
}

// Index returns the node index of block b.
func (g *Graph) Index(b *ir.Block) int { return g.index[b] }

// RPO returns the reverse postorder of nodes reachable from entry (node 0).
func (g *Graph) RPO() []int {
	return rpoFrom(len(g.Blocks), 0, g.Succs)
}

func rpoFrom(n, root int, succs [][]int) []int {
	visited := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(u int) {
		visited[u] = true
		for _, v := range succs[u] {
			if !visited[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(root)
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate-dominator array: idom[i] is the
// immediate dominator of node i (idom[entry] == entry). Unreachable nodes
// get idom -1.
func (g *Graph) Dominators() []int {
	return dominators(len(g.Blocks), 0, g.Succs, g.Preds)
}

// dominators is the Cooper-Harvey-Kennedy iterative algorithm.
func dominators(n, entry int, succs, preds [][]int) []int {
	rpo := rpoFrom(n, entry, succs)
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range rpo {
		rpoNum[u] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, u := range rpo {
			if u == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[u] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether node a dominates node b under idom.
func Dominates(idom []int, a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == idom[b] || idom[b] == -1 {
			return false
		}
		b = idom[b]
	}
}

// DomTree returns the children lists of the dominator tree given idom.
func DomTree(idom []int) [][]int {
	children := make([][]int, len(idom))
	for i, d := range idom {
		if d != -1 && d != i {
			children[d] = append(children[d], i)
		}
	}
	return children
}

// DominanceFrontiers computes DF for every node (Cytron et al.).
func (g *Graph) DominanceFrontiers(idom []int) [][]int {
	n := len(g.Blocks)
	df := make([]map[int]bool, n)
	for i := range df {
		df[i] = make(map[int]bool)
	}
	for b := 0; b < n; b++ {
		if len(g.Preds[b]) < 2 {
			continue
		}
		for _, p := range g.Preds[b] {
			runner := p
			for runner != -1 && runner != idom[b] {
				df[runner][b] = true
				if runner == idom[runner] {
					break
				}
				runner = idom[runner]
			}
		}
	}
	out := make([][]int, n)
	for i, m := range df {
		for b := range m {
			out[i] = append(out[i], b)
		}
	}
	return out
}

// Postdominators computes the immediate postdominator of every node.
// A virtual exit (node index N == len(Blocks)) is wired after every return
// block and, to handle infinite loops, after any block with no successors.
// ipdom[i] == N means the node is postdominated only by the virtual exit.
func (g *Graph) Postdominators() []int {
	n := len(g.Blocks)
	// Reverse graph with virtual exit node n.
	rsuccs := make([][]int, n+1) // successors in reverse graph = preds in forward
	rpreds := make([][]int, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Succs[u] {
			rsuccs[v] = append(rsuccs[v], u)
			rpreds[u] = append(rpreds[u], v)
		}
	}
	exits := []int{}
	for u := 0; u < n; u++ {
		if len(g.Succs[u]) == 0 {
			exits = append(exits, u)
		}
	}
	if len(exits) == 0 {
		// Infinite loop: anchor the virtual exit at the entry's last RPO node
		// so the analysis still terminates; control dependence then treats
		// everything as dependent, which is conservative and safe.
		exits = append(exits, 0)
	}
	for _, e := range exits {
		rsuccs[n] = append(rsuccs[n], e)
		rpreds[e] = append(rpreds[e], n)
	}
	return dominators(n+1, n, rsuccs, rpreds)
}

// ControlDeps computes, for every node b, the set of branch nodes that b is
// control dependent on (Ferrante et al., via the postdominance frontier).
func (g *Graph) ControlDeps(ipdom []int) [][]int {
	n := len(g.Blocks)
	cd := make([]map[int]bool, n)
	for i := range cd {
		cd[i] = make(map[int]bool)
	}
	for a := 0; a < n; a++ {
		if len(g.Succs[a]) < 2 {
			continue
		}
		for _, s := range g.Succs[a] {
			// Walk the postdominator tree from s up to (not including) ipdom(a).
			runner := s
			for runner != ipdom[a] && runner < n {
				cd[runner][a] = true
				if ipdom[runner] == runner || ipdom[runner] == -1 {
					break
				}
				runner = ipdom[runner]
			}
		}
	}
	out := make([][]int, n)
	for i, m := range cd {
		for b := range m {
			out[i] = append(out[i], b)
		}
	}
	return out
}

// Loop describes one natural loop.
type Loop struct {
	ID     int
	Header *ir.Block
	Blocks []*ir.Block // includes header
	Parent *Loop       // innermost enclosing loop, or nil
	Depth  int         // 1 for outermost
	Exits  []*ir.Block // blocks outside the loop targeted from inside
	// HeaderPos is the source offset of the loop statement, recorded by
	// irbuild on the header block's first instruction.
	inBody map[*ir.Block]bool
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *ir.Block) bool { return l.inBody[b] }

// Loops finds the natural loops of g given the dominator array, merging
// loops that share a header and computing the nesting forest. Loops are
// returned outermost-first in each nest.
func (g *Graph) Loops(idom []int) []*Loop {
	n := len(g.Blocks)
	byHeader := map[int][]int{} // header -> union of body node sets (as list w/ dedupe below)
	for u := 0; u < n; u++ {
		for _, h := range g.Succs[u] {
			if Dominates(idom, h, u) {
				// Back edge u->h: natural loop = h plus all nodes reaching u
				// without passing h.
				body := map[int]bool{h: true, u: true}
				stack := []int{u}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range g.Preds[x] {
						if !body[p] {
							body[p] = true
							stack = append(stack, p)
						}
					}
				}
				for b := range body {
					byHeader[h] = append(byHeader[h], b)
				}
			}
		}
	}
	var loops []*Loop
	// Iterate headers in block order, not map order: Loop.ID (and through it
	// the static region numbering) must be deterministic across runs.
	for h := 0; h < n; h++ {
		rawBody, ok := byHeader[h]
		if !ok {
			continue
		}
		set := map[int]bool{}
		for _, b := range rawBody {
			set[b] = true
		}
		l := &Loop{Header: g.Blocks[h], inBody: make(map[*ir.Block]bool)}
		for b := 0; b < n; b++ {
			if !set[b] {
				continue
			}
			l.Blocks = append(l.Blocks, g.Blocks[b])
			l.inBody[g.Blocks[b]] = true
		}
		// Exits: successors outside the body.
		seenExit := map[int]bool{}
		for b := 0; b < n; b++ {
			if !set[b] {
				continue
			}
			for _, s := range g.Succs[b] {
				if !set[s] && !seenExit[s] {
					seenExit[s] = true
					l.Exits = append(l.Exits, g.Blocks[s])
				}
			}
		}
		loops = append(loops, l)
	}
	// Nesting: loop A is inside loop B if B contains A's header and A != B.
	// Sort by body size descending so parents come first.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if len(loops[j].Blocks) > len(loops[i].Blocks) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	for i, l := range loops {
		l.ID = i
		// The innermost enclosing loop is the smallest loop containing the
		// header that is not l itself; since loops are sorted by size
		// descending, scan later (smaller) loops... but the parent must be
		// larger, so scan earlier loops and keep the smallest match.
		for j := i - 1; j >= 0; j-- {
			if loops[j].Contains(l.Header) && loops[j] != l {
				l.Parent = loops[j]
				break // loops are size-descending, the closest previous match is the smallest enclosing
			}
		}
		l.Depth = 1
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
	}
	return loops
}
