package lexer

import (
	"testing"
	"testing/quick"

	"kremlin/internal/source"
	"kremlin/internal/token"
)

func scan(t *testing.T, src string) ([]token.Token, *source.ErrorList) {
	t.Helper()
	errs := &source.ErrorList{}
	toks := New(source.NewFile("t.kr", src), errs).ScanAll()
	return toks, errs
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	toks, errs := scan(t, src)
	if errs.HasErrors() {
		t.Fatalf("scan %q: %v", src, errs.Err())
	}
	want = append(want, token.EOF)
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("scan %q: got %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan %q: token %d = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ - * / % = == != < <= > >= && || ! ++ -- += -= *= /=",
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.ASSIGN, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.LAND, token.LOR, token.NOT, token.INC, token.DEC,
		token.ADDASSIGN, token.SUBASSIGN, token.MULASSIGN, token.QUOASSIGN)
}

func TestDelimiters(t *testing.T) {
	expectKinds(t, "( ) [ ] { } , ;",
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK,
		token.LBRACE, token.RBRACE, token.COMMA, token.SEMICOLON)
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks, _ := scan(t, "for foo _bar x9 while9")
	want := []struct {
		kind token.Kind
		lit  string
	}{
		{token.FOR, "for"}, {token.IDENT, "foo"}, {token.IDENT, "_bar"},
		{token.IDENT, "x9"}, {token.IDENT, "while9"},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Lit != w.lit {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Lit, w.kind, w.lit)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := scan(t, "0 42 3.14 1e9 2.5e-3 7E+2 .5")
	if errs.HasErrors() {
		t.Fatal(errs.Err())
	}
	wantKinds := []token.Kind{token.INT, token.INT, token.FLOAT, token.FLOAT, token.FLOAT, token.FLOAT, token.FLOAT}
	wantLits := []string{"0", "42", "3.14", "1e9", "2.5e-3", "7E+2", ".5"}
	for i := range wantKinds {
		if toks[i].Kind != wantKinds[i] || toks[i].Lit != wantLits[i] {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Lit, wantKinds[i], wantLits[i])
		}
	}
}

func TestMalformedExponent(t *testing.T) {
	_, errs := scan(t, "1e+")
	if !errs.HasErrors() {
		t.Error("expected error for malformed exponent")
	}
}

func TestStrings(t *testing.T) {
	toks, errs := scan(t, `"hello" "a\nb" "q\"q" "t\\t"`)
	if errs.HasErrors() {
		t.Fatal(errs.Err())
	}
	want := []string{"hello", "a\nb", `q"q`, `t\t`}
	for i, w := range want {
		if toks[i].Kind != token.STRING || toks[i].Lit != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Lit, w)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := scan(t, `"oops`)
	if !errs.HasErrors() {
		t.Error("expected unterminated-string error")
	}
	_, errs = scan(t, "\"nl\nrest")
	if !errs.HasErrors() {
		t.Error("expected error for newline in string")
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\nb /* block\ncomment */ c",
		token.IDENT, token.IDENT, token.IDENT)
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := scan(t, "a /* never closed")
	if !errs.HasErrors() {
		t.Error("expected unterminated-comment error")
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, errs := scan(t, "a $ b")
	if !errs.HasErrors() {
		t.Error("expected illegal-character error")
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("token 1 = %v, want ILLEGAL", toks[1].Kind)
	}
	// Scanning continues past the bad character.
	if toks[2].Kind != token.IDENT || toks[2].Lit != "b" {
		t.Errorf("recovery failed: %v %q", toks[2].Kind, toks[2].Lit)
	}
}

func TestSingleAmpersandAndPipe(t *testing.T) {
	_, errs := scan(t, "a & b")
	if !errs.HasErrors() {
		t.Error("single & should be an error")
	}
	_, errs = scan(t, "a | b")
	if !errs.HasErrors() {
		t.Error("single | should be an error")
	}
}

func TestOffsets(t *testing.T) {
	toks, _ := scan(t, "ab  cd")
	if toks[0].Offset != 0 || toks[1].Offset != 4 {
		t.Errorf("offsets = %d,%d, want 0,4", toks[0].Offset, toks[1].Offset)
	}
}

// TestLexerTotalityProperty: the scanner must terminate with EOF and never
// panic on arbitrary input bytes.
func TestLexerTotalityProperty(t *testing.T) {
	check := func(input []byte) bool {
		errs := &source.ErrorList{}
		toks := New(source.NewFile("fuzz.kr", string(input)), errs).ScanAll()
		return len(toks) > 0 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLexerProgressProperty: token offsets are monotonically non-decreasing
// and within bounds.
func TestLexerProgressProperty(t *testing.T) {
	check := func(input []byte) bool {
		errs := &source.ErrorList{}
		toks := New(source.NewFile("fuzz.kr", string(input)), errs).ScanAll()
		last := -1
		for _, tk := range toks {
			if tk.Offset < last || tk.Offset > len(input) {
				return false
			}
			last = tk.Offset
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
