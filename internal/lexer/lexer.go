// Package lexer implements the hand-written scanner for the Kr language.
package lexer

import (
	"kremlin/internal/source"
	"kremlin/internal/token"
)

// Lexer scans a Kr source file into tokens.
type Lexer struct {
	file *source.File
	src  string
	pos  int
	errs *source.ErrorList
}

// New returns a Lexer over file, reporting problems to errs.
func New(file *source.File, errs *source.ErrorList) *Lexer {
	return &Lexer{file: file, src: file.Content, errs: errs}
}

// ScanAll scans the whole file, returning the token stream terminated by EOF.
func (l *Lexer) ScanAll() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) errorf(off int, format string, args ...interface{}) {
	l.errs.Add(l.file.Name, l.file.Pos(off), format, args...)
}

func (l *Lexer) peek() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *Lexer) peek2() byte {
	if l.pos+1 < len(l.src) {
		return l.src[l.pos+1]
	}
	return 0
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek2() == '/') {
				l.pos++
			}
			if l.pos >= len(l.src) {
				l.errorf(start, "unterminated block comment")
				return
			}
			l.pos += 2
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return token.Token{Kind: token.EOF, Offset: start}
	}
	c := l.src[l.pos]
	switch {
	case isLetter(c):
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		lit := l.src[start:l.pos]
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Offset: start}
	case isDigit(c), c == '.' && isDigit(l.peek2()):
		return l.scanNumber()
	case c == '"':
		return l.scanString()
	}
	l.pos++
	two := func(next byte, k2, k1 token.Kind) token.Token {
		if l.peek() == next {
			l.pos++
			return token.Token{Kind: k2, Offset: start}
		}
		return token.Token{Kind: k1, Offset: start}
	}
	switch c {
	case '+':
		if l.peek() == '+' {
			l.pos++
			return token.Token{Kind: token.INC, Offset: start}
		}
		return two('=', token.ADDASSIGN, token.ADD)
	case '-':
		if l.peek() == '-' {
			l.pos++
			return token.Token{Kind: token.DEC, Offset: start}
		}
		return two('=', token.SUBASSIGN, token.SUB)
	case '*':
		return two('=', token.MULASSIGN, token.MUL)
	case '/':
		return two('=', token.QUOASSIGN, token.QUO)
	case '%':
		return token.Token{Kind: token.REM, Offset: start}
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LEQ, token.LSS)
	case '>':
		return two('=', token.GEQ, token.GTR)
	case '&':
		if l.peek() == '&' {
			l.pos++
			return token.Token{Kind: token.LAND, Offset: start}
		}
	case '|':
		if l.peek() == '|' {
			l.pos++
			return token.Token{Kind: token.LOR, Offset: start}
		}
	case '(':
		return token.Token{Kind: token.LPAREN, Offset: start}
	case ')':
		return token.Token{Kind: token.RPAREN, Offset: start}
	case '[':
		return token.Token{Kind: token.LBRACK, Offset: start}
	case ']':
		return token.Token{Kind: token.RBRACK, Offset: start}
	case '{':
		return token.Token{Kind: token.LBRACE, Offset: start}
	case '}':
		return token.Token{Kind: token.RBRACE, Offset: start}
	case ',':
		return token.Token{Kind: token.COMMA, Offset: start}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Offset: start}
	}
	l.errorf(start, "illegal character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Offset: start}
}

func (l *Lexer) scanNumber() token.Token {
	start := l.pos
	kind := token.INT
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.peek() == '.' && l.peek2() != '.' {
		kind = token.FLOAT
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		kind = token.FLOAT
		l.pos++
		if c := l.peek(); c == '+' || c == '-' {
			l.pos++
		}
		if !isDigit(l.peek()) {
			l.errorf(l.pos, "malformed exponent in numeric literal")
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	return token.Token{Kind: kind, Lit: l.src[start:l.pos], Offset: start}
}

func (l *Lexer) scanString() token.Token {
	start := l.pos
	l.pos++ // opening quote
	var out []byte
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		c := l.src[l.pos]
		if c == '\n' {
			break
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case '\\':
				out = append(out, '\\')
			case '"':
				out = append(out, '"')
			default:
				l.errorf(l.pos, "unknown escape \\%s", string(l.src[l.pos]))
			}
			l.pos++
			continue
		}
		out = append(out, c)
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '"' {
		l.errorf(start, "unterminated string literal")
	} else {
		l.pos++
	}
	return token.Token{Kind: token.STRING, Lit: string(out), Offset: start}
}
