package lexer

import (
	"testing"

	"kremlin/internal/source"
	"kremlin/internal/token"
)

// FuzzScan feeds arbitrary bytes to the lexer. The contract under fuzzing:
// never panic, always terminate with an EOF token, and report at most
// source.MaxDiags stored diagnostics regardless of input size.
func FuzzScan(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add(`float x = 1.5e-3; // comment`)
	f.Add(`"unterminated`)
	f.Add("/* unterminated comment")
	f.Add("1.2.3.4 .. @#$%^&")
	f.Add("int\x00main\xff(){}")
	f.Fuzz(func(t *testing.T, src string) {
		errs := &source.ErrorList{}
		toks := New(source.NewFile("fuzz.kr", src), errs).ScanAll()
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			t.Fatalf("token stream does not end in EOF")
		}
		if len(errs.Diags) > source.MaxDiags {
			t.Fatalf("%d stored diagnostics exceed the cap %d", len(errs.Diags), source.MaxDiags)
		}
	})
}
