// Package limits defines the typed run-limit errors shared by every layer
// of the execution pipeline — the interpreter, the KremLib runtime, the
// sharded profiler, the CLIs, and the serve daemon. A run that is
// cancelled, exhausts its instruction budget, or exceeds a memory cap
// fails with one of these errors instead of wedging or killing the
// process, so callers can distinguish "the program is broken" from "the
// run hit a resource wall" and react accordingly (exit codes, HTTP
// status, retry policy).
package limits

import (
	"errors"
	"fmt"
)

// Execution-budget constants shared by every engine (the tree-walking
// interpreter and the bytecode VM). Keeping them here — rather than inline
// in one engine — guarantees both engines poll and stop at exactly the
// same instruction counts, which the differential oracle and the
// prefix-invariant tests rely on.
const (
	// LiveCheckShift sets the periodic liveness-poll interval: context
	// cancellation and the shadow-page cap are checked once every
	// 2^LiveCheckShift instructions, so the per-instruction cost is one
	// AND and one branch (or, in the batched VM, one comparison per basic
	// block).
	LiveCheckShift = 14
	// LiveCheckInterval is the poll period in instructions.
	LiveCheckInterval = 1 << LiveCheckShift
	// LiveCheckMask gates the poll: it fires when steps&LiveCheckMask == 0.
	LiveCheckMask = LiveCheckInterval - 1
	// DefaultMaxSteps is the instruction budget applied when a run does not
	// set one.
	DefaultMaxSteps = 2_000_000_000
)

// Sentinel causes, matched with errors.Is.
var (
	// ErrCancelled marks a run stopped by context cancellation — a caller
	// deadline, a client disconnect, or a sibling shard's failure.
	ErrCancelled = errors.New("run cancelled")
	// ErrBudgetExceeded marks a run that used up its instruction budget.
	ErrBudgetExceeded = errors.New("instruction budget exceeded")
	// ErrMemCap marks a run that exceeded a memory cap (simulated heap
	// words or shadow-memory pages).
	ErrMemCap = errors.New("memory cap exceeded")
)

// Error is a limit violation annotated with the run state at the point
// the limit fired. Unwrap yields the sentinel cause.
type Error struct {
	Cause error  // one of the sentinels above
	Steps uint64 // instructions executed when the limit fired
	Pages int    // live shadow pages when the limit fired (0 outside HCPA)
	Msg   string // human-readable detail
}

func (e *Error) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	return e.Cause.Error()
}

func (e *Error) Unwrap() error { return e.Cause }

// Cancelled builds an ErrCancelled error at the given step count.
func Cancelled(steps uint64) *Error {
	return &Error{Cause: ErrCancelled, Steps: steps,
		Msg: fmt.Sprintf("run cancelled after %d instructions", steps)}
}

// Budget builds an ErrBudgetExceeded error for the given budget.
func Budget(budget, steps uint64) *Error {
	return &Error{Cause: ErrBudgetExceeded, Steps: steps,
		Msg: fmt.Sprintf("step limit exceeded (%d)", budget)}
}

// MemCap builds an ErrMemCap error with a caller-supplied description.
func MemCap(steps uint64, pages int, format string, args ...interface{}) *Error {
	return &Error{Cause: ErrMemCap, Steps: steps, Pages: pages,
		Msg: fmt.Sprintf(format, args...)}
}

// IsLimit reports whether err is (or wraps) any of the limit sentinels.
func IsLimit(err error) bool {
	return errors.Is(err, ErrCancelled) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrMemCap)
}
