package absint_test

import (
	"strings"
	"testing"

	"kremlin/internal/absint"
	"kremlin/internal/analysis"
	"kremlin/internal/ir"
	"kremlin/internal/irbuild"
	"kremlin/internal/parser"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

// compile lowers src through the standard front half of the pipeline
// (parse, typecheck, lower, annotate) and runs the abstract interpreter.
func compile(t *testing.T, src string) (*ir.Module, *absint.Facts) {
	t.Helper()
	file := source.NewFile("test.kr", src)
	errs := &source.ErrorList{}
	tree := parser.Parse(file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := types.Check(tree, file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	mod := irbuild.Build(tree, info, file, errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("irbuild: %v", err)
	}
	analysis.Run(mod)
	return mod, absint.Analyze(mod)
}

// viewsIn collects the OpView instructions of the named function.
func viewsIn(mod *ir.Module, fn string) []*ir.Instr {
	var out []*ir.Instr
	f := mod.ByName[fn]
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpView {
				out = append(out, ins)
			}
		}
	}
	return out
}

func TestInBoundsSimpleLoop(t *testing.T) {
	mod, facts := compile(t, `
int main() {
	int a[10];
	int s = 0;
	for (int i = 0; i < 10; i++) {
		a[i] = i;
	}
	for (int i = 0; i < 10; i++) {
		s = s + a[i];
	}
	return s;
}
`)
	views := viewsIn(mod, "main")
	if len(views) == 0 {
		t.Fatal("no views found")
	}
	for _, v := range views {
		if !facts.InBounds(v) {
			t.Errorf("view at pos %d not proven in bounds", v.Pos)
		}
	}
	if ds := facts.Diagnostics(); len(ds) != 0 {
		t.Errorf("unexpected diagnostics on clean program: %v", ds)
	}
}

func TestInBoundsGlobalNest(t *testing.T) {
	mod, facts := compile(t, `
float g[8][16];
int main() {
	for (int i = 0; i < 8; i++) {
		for (int j = 0; j < 16; j++) {
			g[i][j] = 1.5;
		}
	}
	return 0;
}
`)
	for _, v := range viewsIn(mod, "main") {
		if !facts.InBounds(v) {
			t.Errorf("nested view at pos %d not proven in bounds", v.Pos)
		}
	}
}

func TestNegativeStepInduction(t *testing.T) {
	// Widening must converge on a down-counting induction and still prove
	// bounds from the loop condition.
	mod, facts := compile(t, `
int main() {
	int a[11];
	for (int i = 10; i > 0; i--) {
		a[i] = i;
	}
	return a[5];
}
`)
	for _, v := range viewsIn(mod, "main") {
		if !facts.InBounds(v) {
			t.Errorf("down-counted view at pos %d not proven in bounds", v.Pos)
		}
	}
}

func TestNotProvenWhenUnbounded(t *testing.T) {
	// The loop bound comes from rand(): the index range is [0, +inf), so
	// bounds elimination must NOT fire.
	mod, facts := compile(t, `
int main() {
	int a[10];
	int n = rand() % 20;
	int s = 0;
	for (int i = 0; i < n; i++) {
		s = s + a[i % 10];
	}
	return s;
}
`)
	proven := 0
	for _, v := range viewsIn(mod, "main") {
		if facts.InBounds(v) {
			proven++
		}
	}
	// a[i % 10] IS provable via the remainder range [0, 9]; the point is
	// that the analysis doesn't crash and doesn't claim anything unbounded.
	if proven == 0 {
		t.Log("note: i%10 subscript not proven (acceptable but imprecise)")
	}
}

func TestContradictoryRefinementUnreachable(t *testing.T) {
	_, facts := compile(t, `
int main() {
	int x = 3;
	if (x > 5) {
		return 1;
	}
	return 0;
}
`)
	var hit bool
	for _, d := range facts.Diagnostics() {
		if d.Kind == "unreachable" {
			hit = true
		}
	}
	if !hit {
		t.Errorf("expected unreachable diagnostic, got %v", facts.Diagnostics())
	}
}

func TestDefiniteDivZeroIsError(t *testing.T) {
	_, facts := compile(t, `
int main() {
	int z = 0;
	return 10 / z;
}
`)
	errs := facts.Errors()
	if len(errs) != 1 || errs[0].Kind != "div-zero" {
		t.Fatalf("want one div-zero error, got %v", facts.Diagnostics())
	}
}

func TestDivZeroInBranchIsWarn(t *testing.T) {
	_, facts := compile(t, `
int main() {
	int z = 0;
	if (rand() % 2 == 0) {
		return 10 % z;
	}
	return 0;
}
`)
	if len(facts.Errors()) != 0 {
		t.Fatalf("conditional fault must not be error severity: %v", facts.Errors())
	}
	var warn bool
	for _, d := range facts.Diagnostics() {
		if d.Kind == "mod-zero" && d.Severity.String() == "warn" {
			warn = true
		}
	}
	if !warn {
		t.Fatalf("want mod-zero warning, got %v", facts.Diagnostics())
	}
}

func TestDefiniteOOBIndex(t *testing.T) {
	_, facts := compile(t, `
int main() {
	int a[4];
	a[0] = 1;
	return a[7];
}
`)
	var hit bool
	for _, d := range facts.Errors() {
		if d.Kind == "oob-index" && strings.Contains(d.Msg, "[0,4)") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("want definite oob-index error, got %v", facts.Diagnostics())
	}
}

func TestNonZeroDivisorFact(t *testing.T) {
	mod, facts := compile(t, `
int main() {
	int s = 0;
	for (int i = 1; i < 100; i++) {
		s = s + 1000 / i;
	}
	return s;
}
`)
	var divs []*ir.Instr
	for _, b := range mod.ByName["main"].Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpBin && ins.Bin == ir.BinDiv {
				divs = append(divs, ins)
			}
		}
	}
	if len(divs) != 1 {
		t.Fatalf("want 1 div, got %d", len(divs))
	}
	if !facts.NonZeroDivisor(divs[0]) {
		t.Error("divisor i in [1,99] not proven nonzero")
	}
}

func TestCongruenceThroughDim(t *testing.T) {
	// dim(a, 0) on a constant-extent array is an exact value; stride-2
	// subscripts stay within an even congruence class and in bounds.
	mod, facts := compile(t, `
int main() {
	int a[16];
	int s = 0;
	for (int i = 0; i < dim(a, 0); i = i + 2) {
		a[i] = i;
	}
	for (int i = 0; i < dim(a, 0); i++) {
		s = s + a[i];
	}
	return s;
}
`)
	for _, v := range viewsIn(mod, "main") {
		if !facts.InBounds(v) {
			t.Errorf("dim-bounded view at pos %d not proven in bounds", v.Pos)
		}
	}
}

func TestIntervalOverflowAtInt64Boundary(t *testing.T) {
	// 9e18 + 9e18 wraps; the analysis must not claim a bound that the
	// wrapped runtime value violates, and must not report a definite fault.
	_, facts := compile(t, `
int main() {
	int big = 9000000000000000000;
	int x = big + big;
	if (x < 0) {
		return 1;
	}
	return 0;
}
`)
	for _, d := range facts.Errors() {
		t.Errorf("no definite fault exists, got %v", d)
	}
	// Neither branch may be proven unreachable: x's interval is ⊤ after
	// the wrapping add.
	for _, d := range facts.Diagnostics() {
		if d.Kind == "unreachable" {
			t.Errorf("wrapped add must not prove a branch dead: %v", d)
		}
	}
}

func TestInterproceduralParamRange(t *testing.T) {
	// fill is called only with n=8 on an 8-extent array: the callee's
	// views are provable through the interprocedural parameter join.
	mod, facts := compile(t, `
int fill(int a[], int n) {
	for (int i = 0; i < n; i++) {
		a[i] = i;
	}
	return 0;
}
int g[8];
int main() {
	fill(g, 8);
	return g[3];
}
`)
	for _, v := range viewsIn(mod, "fill") {
		if !facts.InBounds(v) {
			t.Errorf("callee view at pos %d not proven via param join", v.Pos)
		}
	}
}

func TestMustIterate(t *testing.T) {
	mod, facts := compile(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		for (int j = 0; j < 5; j++) {
			s = s + j;
		}
	}
	return s;
}
`)
	f := mod.ByName["main"]
	iter := 0
	for _, b := range f.Blocks {
		if facts.MustIterate(b) {
			iter++
		}
	}
	if iter != 2 {
		t.Errorf("want both loop headers must-iterate, got %d", iter)
	}
}

func TestDeadStoreGlobal(t *testing.T) {
	_, facts := compile(t, `
int sink[4];
int main() {
	sink[0] = 42;
	return 0;
}
`)
	var hit bool
	for _, d := range facts.Diagnostics() {
		if d.Kind == "dead-store" && strings.Contains(d.Msg, "sink") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("want dead-store on sink, got %v", facts.Diagnostics())
	}
}

func TestAllocNonPositiveExtent(t *testing.T) {
	_, facts := compile(t, `
int main() {
	int n = 0;
	float a[n];
	a[0] = 1.0;
	return 0;
}
`)
	var hit bool
	for _, d := range facts.Errors() {
		if d.Kind == "alloc-nonpositive" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("want alloc-nonpositive error, got %v", facts.Diagnostics())
	}
}

func TestAbsOfMinInt64Unbounded(t *testing.T) {
	// abs() of a possibly-MinInt64 value wraps back to MinInt64: the
	// result must not be claimed nonnegative (no in-bounds proof).
	mod, facts := compile(t, `
int main() {
	int a[10];
	int x = rand() + rand();
	int i = abs(x);
	if (i < 10) {
		return a[i];
	}
	return 0;
}
`)
	// rand()+rand() may wrap to any int64 including MinInt64, whose abs()
	// wraps back to MinInt64 and stays negative, so a[i] is not provable.
	// (rand()-rand() would NOT do: its true range is [-MaxInt64, MaxInt64].)
	for _, v := range viewsIn(mod, "main") {
		if facts.InBounds(v) {
			t.Errorf("abs(MinInt64) wraps negative; view must not be proven")
		}
	}
}
