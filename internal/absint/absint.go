// Package absint is a flow-sensitive interval/congruence abstract
// interpreter over the SSA Kr IR. For every integer SSA value it computes
// a sound [lo, hi] range and a congruence x ≡ r (mod m), propagated
// through a per-block environment lattice with branch-condition
// refinement on CFG edges, widening/narrowing at natural-loop headers,
// and interprocedural summaries (parameter ranges joined over all call
// sites bottom-up, return ranges flowing back to callers — the same
// callee-first order the depcheck mod/ref summaries use).
//
// Three consumers pull facts out of the fixpoint:
//
//   - the bytecode compiler asks InBounds/NonZeroDivisor to emit
//     unchecked opcode variants and widen superinstruction fusion
//     windows (internal/bytecode);
//   - the static dependence prover asks ValueOf/MustIterate to sharpen
//     subscript tests and execution guarantees (internal/depcheck);
//   - `kremlin lint` and the serve admission gate ask Diagnostics for
//     definite-fault findings (provable out-of-bounds, division by zero,
//     non-positive allocation extents) plus unreachable-code and
//     dead-store warnings.
//
// Soundness contract: every fact over-approximates the set of concrete
// executions. Integer arithmetic in the runtime wraps silently, so any
// possibly-overflowing abstract operation collapses its interval to ⊤
// (see interval.go); an InBounds or NonZeroDivisor answer of true means
// the checked fault can never occur on any input, and an error-severity
// diagnostic means the fault occurs on every terminating run of main.
package absint

import (
	"kremlin/internal/ast"
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
)

// Analysis size guards: functions beyond the per-function bounds are
// skipped, and a module beyond maxModInstrs is skipped wholesale (all
// queries answer "no fact"), bounding compile-time cost on generated
// mega-programs. Skipping is always sound: a missing fact only means a
// bounds check stays checked, a depcheck verdict stays unknown, and
// lint stays silent.
const (
	maxModInstrs = 100000 // total instructions across the module
	maxFnValues  = 60000
	maxFnBlocks  = 6000
	maxEnvCells  = 4 << 20 // blocks × values upper bound per function
	maxPasses    = 64      // fixpoint sweeps before giving up on a function
	widenDelay   = 2       // header joins before widening kicks in
	narrowPasses = 2       // decreasing sweeps after stabilization
)

// Facts is the analysis result for one module.
type Facts struct {
	mod   *ir.Module
	fns   map[*ir.Func]*fnFacts
	diags []Diag
}

// fnFacts is the per-function slice of the result.
type fnFacts struct {
	f        *ir.Func
	reached  []bool             // by block index (cfg order)
	def      []Val              // value-ID-indexed Val at the definition point
	inB      map[*ir.Instr]bool // OpView: index proven within bounds
	nz       map[*ir.Instr]bool // OpBin int Div/Rem: divisor proven nonzero
	mustIter map[*ir.Block]bool // loop header: body runs ≥1 iteration per entry
	g        *cfg.Graph
}

// Analyze runs the abstract interpretation over every function of mod.
// Modules above the maxModInstrs budget get an empty (but valid) fact
// table: generated mega-programs pay nothing for the analysis, and every
// consumer degrades to its facts-free behavior.
func Analyze(mod *ir.Module) *Facts {
	fa := &Facts{mod: mod, fns: make(map[*ir.Func]*fnFacts)}
	total := 0
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			total += len(b.Instrs)
		}
	}
	if total > maxModInstrs {
		return fa
	}
	order := callOrder(mod)

	// Pass 1, callee-first with ⊤ parameters: return summaries and
	// call-site argument values.
	sums := make(map[*ir.Func]Val)
	pass1 := make(map[*ir.Func]*fnAnalysis)
	for _, f := range order {
		an := newFnAnalysis(f, sums, nil, nil)
		if an == nil || !an.fixpoint() {
			continue
		}
		an.collectCalls()
		sums[f] = an.retVal
		pass1[f] = an
	}

	// A caller that was skipped (size guard or non-convergence) recorded no
	// call-site arguments, so its callees must keep ⊤ parameters.
	forceTop := make(map[*ir.Func]bool)
	for _, f := range order {
		if pass1[f] != nil {
			continue
		}
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpCall && ins.Callee != nil {
					forceTop[ins.Callee] = true
				}
			}
		}
	}

	// Join every reachable call site's arguments into the callee's
	// parameter facts (scalar ranges and array extents).
	paramVals := make(map[*ir.Func][]Val)
	paramArrs := make(map[*ir.Func][]arrInfo)
	for _, f := range order {
		an := pass1[f]
		if an == nil {
			continue
		}
		for call, args := range an.callArgs {
			callee := call.Callee
			pv := paramVals[callee]
			pa := paramArrs[callee]
			if pv == nil {
				pv = make([]Val, len(callee.Params))
				pa = make([]arrInfo, len(callee.Params))
				for i := range pv {
					pv[i] = BotVal()
					pa[i] = arrInfo{}
				}
				paramVals[callee] = pv
				paramArrs[callee] = pa
			}
			for i := range callee.Params {
				if i < len(args.vals) {
					pv[i] = pv[i].Join(args.vals[i])
				} else {
					pv[i] = TopVal()
				}
				if i < len(args.arrs) {
					pa[i] = pa[i].join(args.arrs[i])
				} else {
					pa[i] = arrInfo{}
				}
			}
		}
	}

	// Pass 2, callee-first again with refined parameters; summaries are
	// re-refined as we go so callers see pass-2 callee ranges. When the
	// refined parameters add nothing over the type tops and no callee
	// summary moved, the pass-2 fixpoint would reproduce pass 1's states
	// instruction for instruction — reuse them and skip straight to the
	// narrowing and fact-derivation passes.
	changedSum := make(map[*ir.Func]bool)
	for _, f := range order {
		if pass1[f] == nil {
			continue
		}
		pv, pa := paramVals[f], paramArrs[f]
		if forceTop[f] {
			pv, pa = nil, nil
		}
		uninformative := true
		if pv != nil {
			for i, p := range f.Params {
				tt := typeTop(p.Typ.Elem, p.Typ.Dims)
				if !sameVal(tt.Meet(pv[i]), tt) || pa[i].dims != nil {
					uninformative = false
					break
				}
			}
		}
		calleeMoved := false
		for call := range pass1[f].callArgs {
			if changedSum[call.Callee] {
				calleeMoved = true
				break
			}
		}
		an := pass1[f]
		if !uninformative || calleeMoved {
			an = pass1[f].reset(pv, pa)
			if !an.fixpoint() {
				continue
			}
		}
		an.narrow()
		if !sameVal(sums[f], an.retVal) {
			changedSum[f] = true
		}
		sums[f] = an.retVal
		ff := an.finalize()
		fa.fns[f] = ff
		fa.diags = append(fa.diags, an.diags...)
	}
	fa.diags = append(fa.diags, deadStoreDiags(mod)...)
	sortDiags(fa.diags)
	return fa
}

// InBounds reports whether the view's index is proven within the viewed
// dimension on every execution (the bounds check can never fire).
func (fa *Facts) InBounds(view *ir.Instr) bool {
	if fa == nil || view == nil || view.Block == nil {
		return false
	}
	ff := fa.fns[view.Block.Func]
	return ff != nil && ff.inB[view]
}

// NonZeroDivisor reports whether the int division/remainder's divisor is
// proven nonzero on every execution.
func (fa *Facts) NonZeroDivisor(bin *ir.Instr) bool {
	if fa == nil || bin == nil || bin.Block == nil {
		return false
	}
	ff := fa.fns[bin.Block.Func]
	return ff != nil && ff.nz[bin]
}

// ValueOf returns the abstract value of v at its definition point.
// Sound for any use of v (SSA values are immutable); constants are exact.
func (fa *Facts) ValueOf(v ir.Value) (Val, bool) {
	switch x := v.(type) {
	case *ir.ConstInt:
		return ConstVal(x.V), true
	case *ir.ConstBool:
		if x.V {
			return ConstVal(1), true
		}
		return ConstVal(0), true
	case *ir.Instr:
		if fa == nil || x.Block == nil {
			return TopVal(), false
		}
		ff := fa.fns[x.Block.Func]
		if ff == nil || x.ID >= len(ff.def) {
			return TopVal(), false
		}
		return ff.def[x.ID], true
	}
	return TopVal(), false
}

// MustIterate reports whether the loop headed at header executes its body
// at least once every time the loop is entered from outside.
func (fa *Facts) MustIterate(header *ir.Block) bool {
	if fa == nil || header == nil || header.Func == nil {
		return false
	}
	ff := fa.fns[header.Func]
	return ff != nil && ff.mustIter[header]
}

// Diagnostics returns every lint finding, ordered by function then
// source position.
func (fa *Facts) Diagnostics() []Diag {
	if fa == nil {
		return nil
	}
	return fa.diags
}

// Errors returns only the error-severity findings: definite faults on
// main's must-execute path — every terminating run hits them.
func (fa *Facts) Errors() []Diag {
	if fa == nil {
		return nil
	}
	var out []Diag
	for _, d := range fa.diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// callOrder is a deterministic callee-first (DFS postorder) ordering of
// every function — the same bottom-up order the mod/ref summaries use.
func callOrder(mod *ir.Module) []*ir.Func {
	var order []*ir.Func
	seen := make(map[*ir.Func]bool)
	var visit func(f *ir.Func)
	visit = func(f *ir.Func) {
		if seen[f] {
			return
		}
		seen[f] = true
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpCall && ins.Callee != nil {
					visit(ins.Callee)
				}
			}
		}
		order = append(order, f)
	}
	for _, f := range mod.Funcs {
		visit(f)
	}
	return order
}

// arrInfo is the guaranteed shape of an array value: a lower bound per
// dimension (0 = unknown), exact when the true extents are known.
type arrInfo struct {
	dims  []int64
	exact bool
}

func (a arrInfo) join(b arrInfo) arrInfo {
	if a.dims == nil {
		return b
	}
	if b.dims == nil {
		return a
	}
	if len(a.dims) != len(b.dims) {
		return arrInfo{}
	}
	out := arrInfo{dims: make([]int64, len(a.dims)), exact: a.exact && b.exact}
	for i := range a.dims {
		out.dims[i] = min64(a.dims[i], b.dims[i])
		if a.dims[i] != b.dims[i] {
			out.exact = false
		}
	}
	return out
}

// callArgs records one reachable call site's abstract arguments.
type callSiteArgs struct {
	vals []Val
	arrs []arrInfo
}

// fnAnalysis is the in-flight per-function fixpoint state.
type fnAnalysis struct {
	f        *ir.Func
	g        *cfg.Graph
	idom     []int
	loops    []*cfg.Loop
	headerOf map[*ir.Block]*cfg.Loop
	sums     map[*ir.Func]Val
	params   []Val
	paramArr []arrInfo

	nv     int
	in     [][]Val // by block index; nil = unreached
	visits []int

	// Sweep scratch, reused across every edge of every pass so the
	// fixpoint allocates only when a block's in-state actually changes.
	edgeBuf []Val
	accBuf  []Val
	phiIDs  []int
	phiVals []Val

	retVal   Val
	callArgs map[*ir.Instr]callSiteArgs
	diags    []Diag
}

func newFnAnalysis(f *ir.Func, sums map[*ir.Func]Val, params []Val, paramArr []arrInfo) *fnAnalysis {
	nv := f.NumValues()
	if nv > maxFnValues || len(f.Blocks) > maxFnBlocks || nv*len(f.Blocks) > maxEnvCells {
		return nil
	}
	g := cfg.New(f)
	an := &fnAnalysis{
		f: f, g: g, sums: sums, params: params, paramArr: paramArr,
		nv: nv, in: make([][]Val, len(f.Blocks)), visits: make([]int, len(f.Blocks)),
		headerOf: make(map[*ir.Block]*cfg.Loop),
		retVal:   BotVal(),
	}
	an.idom = g.Dominators()
	an.loops = g.Loops(an.idom)
	for _, l := range an.loops {
		an.headerOf[l.Header] = l
	}
	return an
}

// reset returns a fresh analysis over the same function, reusing the
// CFG, dominators, and loop forest (and the sweep scratch) so the
// second interprocedural pass skips their reconstruction.
func (an *fnAnalysis) reset(params []Val, paramArr []arrInfo) *fnAnalysis {
	return &fnAnalysis{
		f: an.f, g: an.g, idom: an.idom, loops: an.loops, headerOf: an.headerOf,
		sums: an.sums, params: params, paramArr: paramArr,
		nv: an.nv, in: make([][]Val, len(an.f.Blocks)), visits: make([]int, len(an.f.Blocks)),
		edgeBuf: an.edgeBuf, accBuf: an.accBuf, phiIDs: an.phiIDs, phiVals: an.phiVals,
		retVal: BotVal(),
	}
}

func (an *fnAnalysis) entryEnvInto(env []Val) {
	for i := range env {
		env[i] = TopVal()
	}
	for i, p := range an.f.Params {
		v := typeTop(p.Typ.Elem, p.Typ.Dims)
		if an.params != nil && i < len(an.params) && !an.params[i].Bot() {
			v = v.Meet(an.params[i])
		}
		env[p.ID] = v
	}
}

func cloneEnv(env []Val) []Val {
	out := make([]Val, len(env))
	copy(out, env)
	return out
}

// blockIn computes b's new in-state into the reusable accumulator:
// entry state (for the entry block) joined with every feasible incoming
// edge. It reports false when no predecessor state reaches b yet. The
// returned slice is an.accBuf — callers must copy before the next call.
func (an *fnAnalysis) blockIn(b *ir.Block, bi, entry int) ([]Val, bool) {
	if bi != entry && len(b.Preds) == 1 && an.in[an.g.Index(b.Preds[0])] != nil {
		// Single-predecessor fast path: the edge environment IS the
		// in-state, no join accumulator copy needed.
		e := an.edgeEnv(b.Preds[0], b, 0)
		return e, e != nil
	}
	if an.accBuf == nil {
		an.accBuf = make([]Val, an.nv)
	}
	acc, have := an.accBuf, false
	if bi == entry {
		an.entryEnvInto(acc)
		have = true
	}
	for pi, p := range b.Preds {
		if an.in[an.g.Index(p)] == nil {
			continue
		}
		e := an.edgeEnv(p, b, pi)
		if e == nil {
			continue // infeasible edge
		}
		if !have {
			copy(acc, e)
			have = true
			continue
		}
		for i := range acc {
			acc[i] = acc[i].Join(e[i])
		}
	}
	return acc, have
}

func sameEnv(a, b []Val) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	for i := range a {
		if !sameVal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// typeTop is the weakest value of a scalar type.
func typeTop(k ast.BasicKind, dims int) Val {
	if dims > 0 {
		return TopVal()
	}
	if k == ast.Bool {
		return Val{I: Interval{0, 1}, M: 1}
	}
	return TopVal()
}

// fixpoint runs round-robin RPO sweeps with widening at loop headers.
// It reports whether the analysis converged; on false the environments
// are not a post-fixpoint and no facts may be derived from them.
func (an *fnAnalysis) fixpoint() bool {
	rpo := an.g.RPO()
	entry := an.g.Index(an.f.Entry())
	// Dirty tracking: blockIn is a pure function of the predecessors'
	// in-states (plus, at headers, the block's own previous state via
	// widening), so a block whose inputs did not change since its last
	// recomputation would reproduce the same output — skip it. The visit
	// counter then counts recomputations that had changed inputs, which
	// can only delay widening relative to full sweeps, never lose
	// precision, and the result is still a deterministic post-fixpoint.
	dirty := make([]bool, len(an.g.Blocks))
	for i := range dirty {
		dirty[i] = true
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, bi := range rpo {
			if !dirty[bi] {
				continue
			}
			dirty[bi] = false
			b := an.g.Blocks[bi]
			newIn, have := an.blockIn(b, bi, entry)
			if !have {
				continue
			}
			// Widen only the header's own phi cells: in SSA every
			// loop-carried value is a phi at some loop header, so this is
			// enough for termination, while loop-invariant cells (e.g. an
			// outer induction variable passing through an inner header)
			// keep their refined bounds instead of being thrown to ±∞.
			if an.in[bi] != nil && an.headerOf[b] != nil {
				an.visits[bi]++
				if an.visits[bi] > widenDelay {
					for _, ins := range b.Instrs {
						if ins.Op != ir.OpPhi {
							break
						}
						newIn[ins.ID] = an.in[bi][ins.ID].widen(newIn[ins.ID])
					}
				}
			}
			if !sameEnv(an.in[bi], newIn) {
				if an.in[bi] == nil {
					an.in[bi] = cloneEnv(newIn)
				} else {
					copy(an.in[bi], newIn)
				}
				changed = true
				for _, s := range an.g.Succs[bi] {
					dirty[s] = true
				}
				if an.headerOf[b] != nil {
					dirty[bi] = true // widening reads the block's own state
				}
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// narrow runs bounded decreasing sweeps from the post-fixpoint, regaining
// the precision widening threw away (loop exit bounds, in particular).
func (an *fnAnalysis) narrow() {
	rpo := an.g.RPO()
	entry := an.g.Index(an.f.Entry())
	for pass := 0; pass < narrowPasses; pass++ {
		for _, bi := range rpo {
			b := an.g.Blocks[bi]
			newIn, have := an.blockIn(b, bi, entry)
			if have && an.in[bi] != nil {
				copy(an.in[bi], newIn)
			}
		}
	}
}

// edgeEnv computes the environment flowing along the edge p→b (where b is
// p's successor via b.Preds[predIdx]): p's out-state, refined by p's
// branch condition for this edge, with b's phis bound to their p-args.
// A nil result marks the edge as infeasible. The returned slice is the
// shared an.edgeBuf scratch — callers must consume it before the next
// edgeEnv call.
func (an *fnAnalysis) edgeEnv(p, b *ir.Block, predIdx int) []Val {
	if an.edgeBuf == nil {
		an.edgeBuf = make([]Val, an.nv)
	}
	env := an.edgeBuf
	copy(env, an.in[an.g.Index(p)])
	an.transfer(env, p, nil)
	if term := p.Terminator(); term != nil && term.Op == ir.OpBr {
		// Identify which way this edge goes. When both targets are b the
		// condition tells us nothing.
		t0, t1 := term.Targets[0], term.Targets[1]
		if t0 != t1 {
			if !an.refineCond(env, term.Args[0], t0 == b) {
				return nil
			}
		}
	}
	// Bind b's phis (parallel copy: evaluate all args first).
	ids, vals := an.phiIDs[:0], an.phiVals[:0]
	for _, ins := range b.Instrs {
		if ins.Op != ir.OpPhi {
			break
		}
		v := BotVal()
		for i, pred := range b.Preds {
			if pred == p && i == predIdx {
				v = v.Join(an.evalValue(env, ins.Args[i]))
			}
		}
		ids = append(ids, ins.ID)
		vals = append(vals, v.Meet(typeTop(ins.Typ.Elem, ins.Typ.Dims)))
	}
	an.phiIDs, an.phiVals = ids, vals
	for i, id := range ids {
		env[id] = vals[i]
	}
	return env
}

// transfer evaluates b's non-phi instructions over env in order. When
// visit is non-nil it is called with each instruction's value and
// whether the operation may wrap (for the final reporting pass).
func (an *fnAnalysis) transfer(env []Val, b *ir.Block, visit func(ins *ir.Instr, v Val, wrap bool)) {
	for _, ins := range b.Instrs {
		if ins.Op == ir.OpPhi {
			if visit != nil {
				visit(ins, env[ins.ID], false)
			}
			continue
		}
		v, wrap := an.evalIns(env, ins)
		if ins.HasResult() {
			env[ins.ID] = v
		}
		if visit != nil {
			visit(ins, v, wrap)
		}
	}
}

// evalValue reads a value's abstraction from the environment.
func (an *fnAnalysis) evalValue(env []Val, v ir.Value) Val {
	switch x := v.(type) {
	case *ir.ConstInt:
		return ConstVal(x.V)
	case *ir.ConstBool:
		if x.V {
			return ConstVal(1)
		}
		return ConstVal(0)
	case *ir.ConstFloat:
		return TopVal()
	case *ir.Instr:
		if x.ID < len(env) {
			return env[x.ID]
		}
	}
	return TopVal()
}

// evalIns is the transfer function of one instruction.
func (an *fnAnalysis) evalIns(env []Val, ins *ir.Instr) (Val, bool) {
	switch ins.Op {
	case ir.OpParam:
		return env[ins.ID], false
	case ir.OpBin:
		return an.evalBin(env, ins)
	case ir.OpNeg:
		if ins.Typ.Elem == ast.Int {
			return ConstVal(0).Sub(an.evalValue(env, ins.Args[0])), false
		}
		return TopVal(), false
	case ir.OpNot:
		x := an.evalValue(env, ins.Args[0])
		if c, ok := x.IsConst(); ok {
			return ConstVal(1 - c), false
		}
		return Val{I: Interval{0, 1}, M: 1}, false
	case ir.OpLoad:
		return typeTop(ins.Typ.Elem, ins.Typ.Dims), false
	case ir.OpCall:
		if ins.Callee != nil {
			if s, ok := an.sums[ins.Callee]; ok {
				return s.Meet(typeTop(ins.Typ.Elem, ins.Typ.Dims)), false
			}
		}
		return typeTop(ins.Typ.Elem, ins.Typ.Dims), false
	case ir.OpBuiltin:
		return an.evalBuiltin(env, ins), false
	case ir.OpRet:
		if len(ins.Args) > 0 {
			an.retVal = an.retVal.Join(an.evalValue(env, ins.Args[0]))
		} else {
			an.retVal = an.retVal.Join(TopVal())
		}
		return TopVal(), false
	}
	return typeTop(ins.Typ.Elem, ins.Typ.Dims), false
}

func intish(v ir.Value) bool {
	t := v.Type()
	return t.Dims == 0 && (t.Elem == ast.Int || t.Elem == ast.Bool)
}

func (an *fnAnalysis) evalBin(env []Val, ins *ir.Instr) (Val, bool) {
	if !intish(ins.Args[0]) || !intish(ins.Args[1]) {
		if ins.Bin.IsComparison() {
			return Val{I: Interval{0, 1}, M: 1}, false
		}
		return TopVal(), false
	}
	a := an.evalValue(env, ins.Args[0])
	b := an.evalValue(env, ins.Args[1])
	if a.Bot() || b.Bot() {
		return BotVal(), false
	}
	switch ins.Bin {
	case ir.BinAdd:
		r := a.Add(b)
		return r, fullRange(r) && !fullRange(a) && !fullRange(b)
	case ir.BinSub:
		r := a.Sub(b)
		return r, fullRange(r) && !fullRange(a) && !fullRange(b)
	case ir.BinMul:
		r := a.Mul(b)
		return r, fullRange(r) && !fullRange(a) && !fullRange(b)
	case ir.BinDiv:
		return a.Div(b), false
	case ir.BinRem:
		return a.Rem(b), false
	case ir.BinAnd:
		if ca, ok := a.IsConst(); ok && ca == 0 {
			return ConstVal(0), false
		}
		if cb, ok := b.IsConst(); ok && cb == 0 {
			return ConstVal(0), false
		}
		if ca, aok := a.IsConst(); aok {
			if cb, bok := b.IsConst(); bok {
				return ConstVal(boolToInt(ca != 0 && cb != 0)), false
			}
		}
		return Val{I: Interval{0, 1}, M: 1}, false
	case ir.BinOr:
		if ca, ok := a.IsConst(); ok && ca != 0 {
			return ConstVal(1), false
		}
		if cb, ok := b.IsConst(); ok && cb != 0 {
			return ConstVal(1), false
		}
		if ca, aok := a.IsConst(); aok {
			if cb, bok := b.IsConst(); bok {
				return ConstVal(boolToInt(ca != 0 || cb != 0)), false
			}
		}
		return Val{I: Interval{0, 1}, M: 1}, false
	default:
		if ins.Bin.IsComparison() {
			return evalCmp(ins.Bin, a, b), false
		}
	}
	return TopVal(), false
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func fullRange(v Val) bool { return v.I.Lo == negInf || v.I.Hi == posInf }

// evalCmp decides a comparison when the ranges or congruences do.
func evalCmp(kind ir.BinKind, a, b Val) Val {
	tv := func(c bool) Val { return ConstVal(boolToInt(c)) }
	unknown := Val{I: Interval{0, 1}, M: 1}
	neverEqual := func() bool {
		if a.I.Hi < b.I.Lo || b.I.Hi < a.I.Lo {
			return true
		}
		if a.M >= 2 && b.M >= 2 {
			if g := gcd64(a.M, b.M); g >= 2 && (a.R-b.R)%g != 0 {
				return true
			}
		}
		if a.M >= 2 {
			if c, ok := b.IsConst(); ok && ((c-a.R)%a.M+a.M)%a.M != 0 {
				return true
			}
		}
		if b.M >= 2 {
			if c, ok := a.IsConst(); ok && ((c-b.R)%b.M+b.M)%b.M != 0 {
				return true
			}
		}
		return false
	}
	switch kind {
	case ir.BinEq:
		if ca, ok := a.IsConst(); ok {
			if cb, ok2 := b.IsConst(); ok2 {
				return tv(ca == cb)
			}
		}
		if neverEqual() {
			return tv(false)
		}
	case ir.BinNe:
		if ca, ok := a.IsConst(); ok {
			if cb, ok2 := b.IsConst(); ok2 {
				return tv(ca != cb)
			}
		}
		if neverEqual() {
			return tv(true)
		}
	case ir.BinLt:
		if a.I.Hi < b.I.Lo {
			return tv(true)
		}
		if a.I.Lo >= b.I.Hi {
			return tv(false)
		}
	case ir.BinLe:
		if a.I.Hi <= b.I.Lo {
			return tv(true)
		}
		if a.I.Lo > b.I.Hi {
			return tv(false)
		}
	case ir.BinGt:
		if a.I.Lo > b.I.Hi {
			return tv(true)
		}
		if a.I.Hi <= b.I.Lo {
			return tv(false)
		}
	case ir.BinGe:
		if a.I.Lo >= b.I.Hi {
			return tv(true)
		}
		if a.I.Hi < b.I.Lo {
			return tv(false)
		}
	}
	return unknown
}

// refineCond narrows env under the assumption that cond evaluates to
// want. Returns false when the assumption is contradictory (the edge is
// infeasible).
func (an *fnAnalysis) refineCond(env []Val, cond ir.Value, want bool) bool {
	ins, ok := cond.(*ir.Instr)
	if !ok {
		if cb, isB := cond.(*ir.ConstBool); isB {
			return cb.V == want
		}
		return true
	}
	// The condition value itself is now known.
	if ins.ID < len(env) {
		m := env[ins.ID].Meet(ConstVal(boolToInt(want)))
		if m.Bot() {
			return false
		}
		env[ins.ID] = m
	}
	switch ins.Op {
	case ir.OpNot:
		return an.refineCond(env, ins.Args[0], !want)
	case ir.OpBin:
		switch {
		case ins.Bin == ir.BinAnd && want:
			return an.refineCond(env, ins.Args[0], true) && an.refineCond(env, ins.Args[1], true)
		case ins.Bin == ir.BinOr && !want:
			return an.refineCond(env, ins.Args[0], false) && an.refineCond(env, ins.Args[1], false)
		}
		if !ins.Bin.IsComparison() || !intish(ins.Args[0]) || !intish(ins.Args[1]) {
			return true
		}
		kind := ins.Bin
		if !want {
			kind = negateCmp(kind)
		}
		a := an.evalValue(env, ins.Args[0])
		b := an.evalValue(env, ins.Args[1])
		na, nb, feasible := refineCmp(kind, a, b)
		if !feasible {
			return false
		}
		if x, isI := ins.Args[0].(*ir.Instr); isI && x.ID < len(env) {
			env[x.ID] = na
		}
		if y, isI := ins.Args[1].(*ir.Instr); isI && y.ID < len(env) {
			env[y.ID] = nb
		}
	}
	return true
}

func negateCmp(k ir.BinKind) ir.BinKind {
	switch k {
	case ir.BinEq:
		return ir.BinNe
	case ir.BinNe:
		return ir.BinEq
	case ir.BinLt:
		return ir.BinGe
	case ir.BinLe:
		return ir.BinGt
	case ir.BinGt:
		return ir.BinLe
	case ir.BinGe:
		return ir.BinLt
	}
	return k
}

// refineCmp narrows both sides under "a kind b". The returned values are
// sound refinements; feasible is false when no concrete pair satisfies
// the relation.
func refineCmp(kind ir.BinKind, a, b Val) (Val, Val, bool) {
	switch kind {
	case ir.BinEq:
		m := a.Meet(b)
		return m, m, !m.Bot()
	case ir.BinNe:
		na, nb := a, b
		if c, ok := b.IsConst(); ok {
			na = trimPoint(a, c)
		}
		if c, ok := a.IsConst(); ok {
			nb = trimPoint(b, c)
		}
		return na, nb, !na.Bot() && !nb.Bot()
	case ir.BinLt:
		na := a.Meet(Val{I: Interval{negInf, subClamp(b.I.Hi, 1)}, M: 1})
		nb := b.Meet(Val{I: Interval{addClamp(a.I.Lo, 1), posInf}, M: 1})
		return na, nb, !na.Bot() && !nb.Bot()
	case ir.BinLe:
		na := a.Meet(Val{I: Interval{negInf, b.I.Hi}, M: 1})
		nb := b.Meet(Val{I: Interval{a.I.Lo, posInf}, M: 1})
		return na, nb, !na.Bot() && !nb.Bot()
	case ir.BinGt:
		na := a.Meet(Val{I: Interval{addClamp(b.I.Lo, 1), posInf}, M: 1})
		nb := b.Meet(Val{I: Interval{negInf, subClamp(a.I.Hi, 1)}, M: 1})
		return na, nb, !na.Bot() && !nb.Bot()
	case ir.BinGe:
		na := a.Meet(Val{I: Interval{b.I.Lo, posInf}, M: 1})
		nb := b.Meet(Val{I: Interval{negInf, a.I.Hi}, M: 1})
		return na, nb, !na.Bot() && !nb.Bot()
	}
	return a, b, true
}

// trimPoint removes c from v when c sits on an interval endpoint.
func trimPoint(v Val, c int64) Val {
	if cv, ok := v.IsConst(); ok {
		if cv == c {
			return BotVal()
		}
		return v
	}
	out := v
	if out.I.Lo == c {
		out.I.Lo = addClamp(c, 1)
	}
	if out.I.Hi == c {
		out.I.Hi = subClamp(c, 1)
	}
	return out.norm()
}

func addClamp(v, d int64) int64 {
	if v == negInf || v == posInf {
		return v
	}
	r, _ := addSat(v, d)
	return r
}

func subClamp(v, d int64) int64 {
	if v == negInf || v == posInf {
		return v
	}
	r, _ := subSat(v, d)
	return r
}

// arrDims resolves an array value to abstract per-dimension extents by
// walking its view chain. exact means the extents are precisely known.
func (an *fnAnalysis) arrDims(env []Val, v ir.Value) (dims []Val, exact bool, ok bool) {
	skip := 0
	for {
		ins, isI := v.(*ir.Instr)
		if !isI {
			return nil, false, false
		}
		switch ins.Op {
		case ir.OpView:
			skip++
			v = ins.Args[0]
		case ir.OpGlobal:
			g := ins.Global
			if !g.IsArray() || skip >= len(g.Dims) {
				return nil, false, false
			}
			for _, d := range g.Dims[skip:] {
				dims = append(dims, ConstVal(d))
			}
			return dims, true, true
		case ir.OpAllocArray:
			if skip >= len(ins.Args) {
				return nil, false, false
			}
			exact = true
			for _, a := range ins.Args[skip:] {
				dv := an.evalValue(env, a)
				// A successful allocation implies every extent ≥ 1: the
				// runtime faults before any view otherwise.
				if dv.I.Lo < 1 {
					dv = Val{I: Interval{1, dv.I.Hi}, M: 1}.norm()
				}
				if _, c := dv.IsConst(); !c {
					exact = false
				}
				dims = append(dims, dv)
			}
			return dims, exact, true
		case ir.OpParam:
			if ins.Typ.Dims == 0 || skip >= ins.Typ.Dims {
				return nil, false, false
			}
			pi := -1
			for i, p := range an.f.Params {
				if p == ins {
					pi = i
				}
			}
			if pi < 0 || an.paramArr == nil || pi >= len(an.paramArr) || an.paramArr[pi].dims == nil {
				return nil, false, false
			}
			info := an.paramArr[pi]
			if skip >= len(info.dims) {
				return nil, false, false
			}
			for _, d := range info.dims[skip:] {
				if info.exact {
					dims = append(dims, ConstVal(d))
				} else if d > 0 {
					dims = append(dims, Val{I: Interval{d, posInf}, M: 1})
				} else {
					dims = append(dims, TopVal())
				}
			}
			return dims, info.exact, true
		default:
			return nil, false, false
		}
	}
}

// evalBuiltin models the int-valued builtins.
func (an *fnAnalysis) evalBuiltin(env []Val, ins *ir.Instr) Val {
	switch ins.Builtin {
	case "rand":
		return Val{I: Interval{0, posInf}, M: 1}
	case "abs":
		x := an.evalValue(env, ins.Args[0])
		if x.Bot() {
			return BotVal()
		}
		if x.I.Lo == negInf {
			// abs(MinInt64) wraps to MinInt64 itself: no bound survives.
			return TopVal()
		}
		hi := max64(abs64(x.I.Lo), abs64(x.I.Hi))
		lo := int64(0)
		if x.I.Lo > 0 {
			lo = x.I.Lo
		} else if x.I.Hi < 0 {
			lo = -x.I.Hi
		}
		return Val{I: Interval{lo, hi}, M: 1}.norm()
	case "min", "max":
		if ins.Typ.Elem != ast.Int {
			return TopVal()
		}
		a := an.evalValue(env, ins.Args[0])
		b := an.evalValue(env, ins.Args[1])
		if a.Bot() || b.Bot() {
			return BotVal()
		}
		if ins.Builtin == "min" {
			return Val{I: Interval{min64(a.I.Lo, b.I.Lo), min64(a.I.Hi, b.I.Hi)}, M: 1}.norm()
		}
		return Val{I: Interval{max64(a.I.Lo, b.I.Lo), max64(a.I.Hi, b.I.Hi)}, M: 1}.norm()
	case "dim":
		dims, _, ok := an.arrDims(env, ins.Args[0])
		if !ok {
			return Val{I: Interval{1, posInf}, M: 1}
		}
		k := an.evalValue(env, ins.Args[1])
		if c, isC := k.IsConst(); isC {
			if c >= 0 && c < int64(len(dims)) {
				return dims[c]
			}
			return BotVal() // definitely faults; no value flows on
		}
		out := BotVal()
		for _, d := range dims {
			out = out.Join(d)
		}
		return out
	}
	return typeTop(ins.Typ.Elem, ins.Typ.Dims)
}

// collectCalls records abstract arguments of every reachable call site
// (pass 1) for the interprocedural parameter join.
func (an *fnAnalysis) collectCalls() {
	an.callArgs = make(map[*ir.Instr]callSiteArgs)
	an.retVal = BotVal() // rebuilt from the converged envs by the sweep below
	for bi, b := range an.g.Blocks {
		if an.in[bi] == nil {
			continue
		}
		env := cloneEnv(an.in[bi])
		an.transfer(env, b, func(ins *ir.Instr, _ Val, _ bool) {
			if ins.Op != ir.OpCall || ins.Callee == nil {
				return
			}
			ca := callSiteArgs{}
			for _, arg := range ins.Args {
				t := arg.Type()
				if t.Dims > 0 {
					dims, exact, ok := an.arrDims(env, arg)
					info := arrInfo{}
					if ok {
						info.exact = exact
						info.dims = make([]int64, len(dims))
						for i, d := range dims {
							if d.I.Lo > 0 {
								info.dims[i] = d.I.Lo
							}
							if _, c := d.IsConst(); !c {
								info.exact = false
							}
						}
					}
					ca.arrs = append(ca.arrs, info)
					ca.vals = append(ca.vals, TopVal())
					continue
				}
				ca.arrs = append(ca.arrs, arrInfo{})
				ca.vals = append(ca.vals, an.evalValue(env, arg).Meet(typeTop(t.Elem, t.Dims)))
			}
			an.callArgs[ins] = ca
		})
	}
}
