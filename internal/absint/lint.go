package absint

import (
	"fmt"
	"sort"

	"kremlin/internal/ast"
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
)

// Severity classifies a lint finding.
type Severity int

// The severities. SevError is reserved for definite faults on main's
// must-execute path: every run that terminates hits the fault, so the
// program can never complete successfully. Everything else is SevWarn.
const (
	SevWarn Severity = iota
	SevError
)

// String returns "warn" or "error".
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Diag is one lint finding with a source position (byte offset).
type Diag struct {
	Fn       string   `json:"fn"`
	Pos      int      `json:"-"`
	Severity Severity `json:"-"`
	Kind     string   `json:"kind"`
	Msg      string   `json:"msg"`
}

// Diagnostic kinds.
const (
	KindOOBIndex    = "oob-index"
	KindDivZero     = "div-zero"
	KindModZero     = "mod-zero"
	KindAllocExtent = "alloc-nonpositive"
	KindDimOOB      = "dim-oob"
	KindIdxOverflow = "index-overflow"
	KindUnreachable = "unreachable"
	KindDeadStore   = "dead-store"
)

func sortDiags(ds []Diag) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Pos != ds[j].Pos {
			return ds[i].Pos < ds[j].Pos
		}
		if ds[i].Kind != ds[j].Kind {
			return ds[i].Kind < ds[j].Kind
		}
		return ds[i].Msg < ds[j].Msg
	})
}

// fmtVal renders an abstract value for diagnostics.
func fmtVal(v Val) string {
	if c, ok := v.IsConst(); ok {
		return fmt.Sprintf("%d", c)
	}
	lo, hi := "-inf", "+inf"
	if v.I.Lo != negInf {
		lo = fmt.Sprintf("%d", v.I.Lo)
	}
	if v.I.Hi != posInf {
		hi = fmt.Sprintf("%d", v.I.Hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// finalize runs one reporting sweep over the converged environments:
// it fills the per-function fact tables (definition values, proven
// in-bounds views, proven nonzero divisors, must-iterate loops) and
// collects definite-fault and unreachable-code diagnostics.
func (an *fnAnalysis) finalize() *fnFacts {
	ff := &fnFacts{
		f:        an.f,
		g:        an.g,
		reached:  make([]bool, len(an.g.Blocks)),
		def:      make([]Val, an.nv),
		inB:      make(map[*ir.Instr]bool),
		nz:       make(map[*ir.Instr]bool),
		mustIter: make(map[*ir.Block]bool),
	}
	for i := range ff.def {
		ff.def[i] = TopVal()
	}
	an.retVal = BotVal() // rebuilt from converged envs by the sweep below

	ipdom := an.g.Postdominators()
	entry := an.g.Index(an.f.Entry())
	isMain := an.f.Name == "main"
	// definite marks a fault diagnostic, upgrading to error severity when
	// it sits on main's must-execute path (the block postdominates entry).
	definite := func(bi int, pos int, kind, msg string) {
		sev := SevWarn
		if isMain && cfg.Dominates(ipdom, bi, entry) {
			sev = SevError
		}
		an.diags = append(an.diags, Diag{Fn: an.f.Name, Pos: pos, Severity: sev, Kind: kind, Msg: msg})
	}
	warn := func(pos int, kind, msg string) {
		an.diags = append(an.diags, Diag{Fn: an.f.Name, Pos: pos, Severity: SevWarn, Kind: kind, Msg: msg})
	}

	for bi, b := range an.g.Blocks {
		if an.in[bi] == nil {
			for _, ins := range b.Instrs {
				if ins.Pos > 0 {
					warn(ins.Pos, KindUnreachable, "unreachable code (condition can never hold)")
					break
				}
			}
			continue
		}
		ff.reached[bi] = true
		env := cloneEnv(an.in[bi])
		wrapped := make(map[*ir.Instr]bool)
		an.transfer(env, b, func(ins *ir.Instr, v Val, wrap bool) {
			if ins.HasResult() && ins.ID < len(ff.def) {
				ff.def[ins.ID] = v
			}
			if wrap {
				wrapped[ins] = true
			}
			switch ins.Op {
			case ir.OpView:
				idx := an.evalValue(env, ins.Args[1])
				dims, exact, ok := an.arrDims(env, ins.Args[0])
				if ok && len(dims) > 0 {
					d := dims[0]
					if idx.I.Lo >= 0 && d.I.Lo != posInf && idx.I.Hi < d.I.Lo {
						ff.inB[ins] = true
					}
					if exact {
						if c, isC := d.IsConst(); isC && (idx.I.Hi < 0 || idx.I.Lo >= c) {
							definite(bi, ins.Pos, KindOOBIndex,
								fmt.Sprintf("index %s is always out of range [0,%d)", fmtVal(idx), c))
							break
						}
					}
				}
				if idx.I.Hi < 0 {
					definite(bi, ins.Pos, KindOOBIndex,
						fmt.Sprintf("index %s is always negative", fmtVal(idx)))
				}
				if x, isI := ins.Args[1].(*ir.Instr); isI && wrapped[x] {
					warn(ins.Pos, KindIdxOverflow, "index arithmetic may overflow int64")
				}
			case ir.OpBin:
				if (ins.Bin == ir.BinDiv || ins.Bin == ir.BinRem) && ins.Typ.Elem == ast.Int {
					dv := an.evalValue(env, ins.Args[1])
					if dv.NonZero() {
						ff.nz[ins] = true
					} else if c, isC := dv.IsConst(); isC && c == 0 {
						if ins.Bin == ir.BinDiv {
							definite(bi, ins.Pos, KindDivZero, "integer division by zero")
						} else {
							definite(bi, ins.Pos, KindModZero, "integer modulo by zero")
						}
					}
				}
			case ir.OpAllocArray:
				for di, a := range ins.Args {
					ev := an.evalValue(env, a)
					if ev.I.Hi < 1 {
						definite(bi, ins.Pos, KindAllocExtent,
							fmt.Sprintf("array dimension %d extent %s is never positive", di, fmtVal(ev)))
					}
				}
			case ir.OpBuiltin:
				if ins.Builtin == "dim" && len(ins.Args) == 2 {
					if dims, _, ok := an.arrDims(env, ins.Args[0]); ok {
						kv := an.evalValue(env, ins.Args[1])
						if c, isC := kv.IsConst(); isC && (c < 0 || c >= int64(len(dims))) {
							definite(bi, ins.Pos, KindDimOOB,
								fmt.Sprintf("dim index %d out of range (array has %d dimensions)", c, len(dims)))
						}
					}
				}
			}
		})
	}

	// Must-iterate: a loop whose header, entered from outside, provably
	// branches into the body on the first test.
	for _, l := range an.loops {
		h := l.Header
		var enter []Val
		for pi, p := range h.Preds {
			if l.Contains(p) || an.in[an.g.Index(p)] == nil {
				continue
			}
			e := an.edgeEnv(p, h, pi)
			if e == nil {
				continue
			}
			if enter == nil {
				enter = cloneEnv(e) // e is the shared edge scratch
			} else {
				for i := range enter {
					enter[i] = enter[i].Join(e[i])
				}
			}
		}
		if enter == nil {
			continue
		}
		an.transfer(enter, h, nil)
		term := h.Terminator()
		if term == nil {
			continue
		}
		var target *ir.Block
		switch term.Op {
		case ir.OpJump:
			target = term.Targets[0]
		case ir.OpBr:
			cv := an.evalValue(enter, term.Args[0])
			if c, ok := cv.IsConst(); ok {
				if c != 0 {
					target = term.Targets[0]
				} else {
					target = term.Targets[1]
				}
			}
		}
		if target != nil && l.Contains(target) {
			ff.mustIter[h] = true
		}
	}
	return ff
}

// deadStoreDiags finds arrays and globals that are written but never
// read anywhere in the module — stores whose values no execution can
// observe. Any non-addressing use (call/return/builtin argument) counts
// as a read, conservatively.
func deadStoreDiags(mod *ir.Module) []Diag {
	type sink struct {
		read     bool
		wrote    bool
		storePos int
		name     string
		fn       string
	}
	// One sink per global, one per local allocation.
	gsink := make(map[*ir.Global]*sink)
	asink := make(map[*ir.Instr]*sink)
	for _, g := range mod.Globals {
		gsink[g] = &sink{name: g.Name}
	}

	// root maps an array-typed value to its allocation site or global.
	type root struct {
		g *ir.Global
		a *ir.Instr
	}
	for _, f := range mod.Funcs {
		roots := make(map[*ir.Instr]root)
		resolve := func(v ir.Value) (root, bool) {
			ins, ok := v.(*ir.Instr)
			if !ok {
				return root{}, false
			}
			r, ok := roots[ins]
			return r, ok
		}
		touch := func(v ir.Value, read, wrote bool, pos int) {
			r, ok := resolve(v)
			if !ok {
				return
			}
			var s *sink
			if r.g != nil {
				s = gsink[r.g]
			} else if r.a != nil {
				s = asink[r.a]
			}
			if s == nil {
				return
			}
			if read {
				s.read = true
			}
			if wrote {
				s.wrote = true
				if s.storePos == 0 || (pos > 0 && pos < s.storePos) {
					s.storePos = pos
				}
			}
		}
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				switch ins.Op {
				case ir.OpGlobal:
					roots[ins] = root{g: ins.Global}
				case ir.OpAllocArray:
					roots[ins] = root{a: ins}
					asink[ins] = &sink{name: "local array", fn: f.Name}
				case ir.OpView:
					if r, ok := resolve(ins.Args[0]); ok {
						roots[ins] = r
					}
				case ir.OpLoad:
					touch(ins.Args[0], true, false, ins.Pos)
				case ir.OpStore:
					touch(ins.Args[0], false, true, ins.Pos)
				default:
					// Escapes: the array value used as a plain argument
					// (call, return, builtin, comparison) may be read there.
					for _, a := range ins.Args {
						touch(a, true, false, ins.Pos)
					}
				}
			}
		}
	}

	var out []Diag
	for _, g := range mod.Globals {
		s := gsink[g]
		if s.wrote && !s.read {
			out = append(out, Diag{Fn: s.fn, Pos: s.storePos, Severity: SevWarn, Kind: KindDeadStore,
				Msg: fmt.Sprintf("global %s is written but never read", s.name)})
		}
	}
	// Deterministic order over allocation sites: by function then position.
	var allocs []*ir.Instr
	for a := range asink {
		allocs = append(allocs, a)
	}
	sort.Slice(allocs, func(i, j int) bool { return allocs[i].Pos < allocs[j].Pos })
	for _, a := range allocs {
		s := asink[a]
		if s.wrote && !s.read {
			out = append(out, Diag{Fn: s.fn, Pos: s.storePos, Severity: SevWarn, Kind: KindDeadStore,
				Msg: "local array is written but never read"})
		}
	}
	return out
}
