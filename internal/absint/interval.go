// Interval and congruence lattice with saturating int64 arithmetic.
//
// An abstract value is the product of an interval [Lo, Hi] and a
// congruence x ≡ R (mod M). Bounds saturate at math.MinInt64/MaxInt64,
// which double as -∞/+∞; an empty interval (Lo > Hi) is ⊥. The runtime's
// integer arithmetic wraps silently, so whenever interval arithmetic
// saturates (a real overflow is possible) the congruence component is
// kept only when its modulus divides 2^64 — i.e. is a power of two —
// because those residues survive two's-complement wraparound.
package absint

import "math"

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// Interval is an inclusive integer range. Lo > Hi encodes ⊥ (no value).
type Interval struct{ Lo, Hi int64 }

// Top is the full int64 range.
func Top() Interval { return Interval{negInf, posInf} }

// Bottom is the empty range.
func Bottom() Interval { return Interval{1, 0} }

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Const reports whether the interval pins exactly one value.
func (iv Interval) Const() (int64, bool) {
	if iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return !iv.Empty() && iv.Lo <= v && v <= iv.Hi }

func (iv Interval) join(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{min64(iv.Lo, o.Lo), max64(iv.Hi, o.Hi)}
}

func (iv Interval) meet(o Interval) Interval {
	return Interval{max64(iv.Lo, o.Lo), min64(iv.Hi, o.Hi)}
}

// widen jumps unstable bounds to ±∞ so loops converge in one step.
func (iv Interval) widen(next Interval) Interval {
	if iv.Empty() {
		return next
	}
	if next.Empty() {
		return iv
	}
	out := iv
	if next.Lo < iv.Lo {
		out.Lo = negInf
	}
	if next.Hi > iv.Hi {
		out.Hi = posInf
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// addSat adds with saturation; ovf reports that the exact sum was
// unrepresentable (a wraparound is possible at runtime).
func addSat(a, b int64) (v int64, ovf bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return posInf, true
		}
		return negInf, true
	}
	return s, false
}

func subSat(a, b int64) (int64, bool) {
	if b == negInf {
		// -MinInt64 is unrepresentable: a - MinInt64 ≥ a + MaxInt64.
		if a >= 0 {
			return posInf, true
		}
		return addSat(a+1, posInf)
	}
	return addSat(a, -b)
}

func mulSat(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	p := a * b
	if p/b != a || (a == negInf && b == -1) || (b == negInf && a == -1) {
		if (a > 0) == (b > 0) {
			return posInf, true
		}
		return negInf, true
	}
	return p, false
}

// Val is the abstract value: interval × congruence. The congruence is
// canonical: M == 1 means no residue information (R == 0); M == 0 means
// the value is exactly R; M ≥ 2 means x ≡ R (mod M) with 0 ≤ R < M.
// ⊥ is represented by an empty interval.
type Val struct {
	I    Interval
	M, R int64
}

// TopVal carries no information.
func TopVal() Val { return Val{I: Top(), M: 1} }

// BotVal is the unreachable value.
func BotVal() Val { return Val{I: Bottom(), M: 1} }

// ConstVal is the exact abstract value of a constant.
func ConstVal(v int64) Val { return Val{I: Interval{v, v}, M: 0, R: v} }

// Bot reports whether the value is unreachable.
func (v Val) Bot() bool { return v.I.Empty() }

// IsConst reports the exact value when the abstraction pins one.
func (v Val) IsConst() (int64, bool) {
	if c, ok := v.I.Const(); ok {
		return c, true
	}
	if v.M == 0 {
		return v.R, true
	}
	return 0, false
}

// NonZero reports whether 0 is provably excluded.
func (v Val) NonZero() bool {
	if v.Bot() {
		return false
	}
	if !v.I.Contains(0) {
		return true
	}
	return v.M >= 2 && v.R != 0
}

// norm re-canonicalizes after arithmetic: a singleton interval becomes an
// exact congruence, residues are reduced into [0, M).
func (v Val) norm() Val {
	if v.I.Empty() {
		return BotVal()
	}
	if c, ok := v.I.Const(); ok {
		return Val{I: v.I, M: 0, R: c}
	}
	switch {
	case v.M < 0:
		v.M = -v.M
	}
	if v.M == 0 {
		// Exact congruence but a non-singleton interval: tighten the
		// interval to the one feasible point if it is in range, else ⊥.
		if v.I.Contains(v.R) {
			return Val{I: Interval{v.R, v.R}, M: 0, R: v.R}
		}
		return BotVal()
	}
	if v.M == 1 || v.M >= maxMod {
		v.M, v.R = 1, 0
		return v
	}
	v.R %= v.M
	if v.R < 0 {
		v.R += v.M
	}
	// A congruence can shrink a wide interval's endpoints to the nearest
	// members; enough to notice singletons and emptiness.
	if span := v.I.Hi - v.I.Lo; span >= 0 && span < v.M && v.I.Lo > negInf && v.I.Hi < posInf {
		lo := v.I.Lo
		rem := ((lo % v.M) + v.M) % v.M
		delta := v.R - rem
		if delta < 0 {
			delta += v.M
		}
		first, ovf := addSat(lo, delta)
		if ovf {
			return v
		}
		if first > v.I.Hi {
			return BotVal()
		}
		return Val{I: Interval{first, first}, M: 0, R: first}
	}
	return v
}

// maxMod bounds tracked moduli and residues so congruence arithmetic can
// never itself overflow int64 (maxMod² < 2^63).
const maxMod = 1 << 31

func congJoin(m1, r1, m2, r2 int64) (int64, int64) {
	if m1 == 1 || m2 == 1 {
		return 1, 0
	}
	if m1 == 0 && m2 == 0 && r1 == r2 {
		return 0, r1 // both exact and equal
	}
	d, ovf := subSat(r1, r2)
	if ovf {
		return 1, 0
	}
	if d < 0 {
		d = -d
	}
	g := gcd64(gcd64(m1, m2), d)
	if g <= 1 || g >= maxMod {
		return 1, 0
	}
	return g, ((r1 % g) + g) % g
}

// Join is the lattice join (least upper bound).
func (v Val) Join(o Val) Val {
	if v.Bot() {
		return o
	}
	if o.Bot() {
		return v
	}
	m, r := congJoin(v.M, v.R, o.M, o.R)
	return Val{I: v.I.join(o.I), M: m, R: r}.norm()
}

// Meet intersects the two abstractions (used by branch refinement).
func (v Val) Meet(o Val) Val {
	if v.Bot() || o.Bot() {
		return BotVal()
	}
	out := Val{I: v.I.meet(o.I)}
	switch {
	case v.M == 0 && o.M == 0:
		if v.R != o.R {
			return BotVal()
		}
		out.M, out.R = 0, v.R
	case v.M == 0:
		if o.M >= 2 {
			if d, ovf := subSat(v.R, o.R); !ovf && ((d%o.M)+o.M)%o.M != 0 {
				return BotVal()
			}
		}
		out.M, out.R = 0, v.R
	case o.M == 0:
		return o.Meet(v)
	case v.M == 1:
		out.M, out.R = o.M, o.R
	case o.M == 1:
		out.M, out.R = v.M, v.R
	default:
		// Keep the stronger modulus when one divides the other and the
		// residues are consistent; otherwise keep v's (still sound).
		if o.M%v.M == 0 {
			v, o = o, v
		}
		out.M, out.R = v.M, v.R
	}
	return out.norm()
}

// widen joins and pushes unstable interval bounds to ±∞.
func (v Val) widen(next Val) Val {
	if v.Bot() {
		return next
	}
	if next.Bot() {
		return v
	}
	m, r := congJoin(v.M, v.R, next.M, next.R)
	return Val{I: v.I.widen(next.I), M: m, R: r}.norm()
}

// sameVal reports lattice equality (for fixpoint detection).
func sameVal(a, b Val) bool {
	if a.Bot() && b.Bot() {
		return true
	}
	return a.I == b.I && a.M == b.M && a.R == b.R
}

// overflowed weakens a result whose exact math did not fit in int64: the
// runtime wraps, so the interval collapses to ⊤ and the congruence
// survives only for power-of-two moduli (residues mod 2^k are preserved
// by two's-complement wraparound).
func overflowed(v Val, ovf bool) Val {
	if !ovf {
		return v
	}
	m, r := v.M, v.R
	if m == 0 { // "exact" is a lie after a wrap
		m, r = 1, 0
	}
	if m >= 2 && m&(m-1) != 0 {
		m, r = 1, 0
	}
	return Val{I: Top(), M: m, R: r}.norm()
}

// Add returns the abstract sum.
func (v Val) Add(o Val) Val {
	if v.Bot() || o.Bot() {
		return BotVal()
	}
	lo, o1 := addSat(v.I.Lo, o.I.Lo)
	hi, o2 := addSat(v.I.Hi, o.I.Hi)
	m := gcd64(v.M, o.M)
	if v.M == 0 && o.M == 0 {
		m = 0
	}
	r, o3 := addSat(v.R, o.R)
	if o3 {
		m, r = 1, 0
	}
	out := Val{I: Interval{lo, hi}, M: m, R: r}
	return overflowed(out.norm(), o1 || o2)
}

// Sub returns the abstract difference.
func (v Val) Sub(o Val) Val { return v.Add(o.Neg()) }

// Neg returns the abstract negation.
func (v Val) Neg() Val {
	if v.Bot() {
		return BotVal()
	}
	lo, o1 := subSat(0, v.I.Hi)
	hi, o2 := subSat(0, v.I.Lo)
	out := Val{I: Interval{lo, hi}, M: v.M, R: -v.R}
	return overflowed(out.norm(), o1 || o2)
}

// Mul returns the abstract product.
func (v Val) Mul(o Val) Val {
	if v.Bot() || o.Bot() {
		return BotVal()
	}
	var lo, hi int64 = posInf, negInf
	ovf := false
	for _, a := range [2]int64{v.I.Lo, v.I.Hi} {
		for _, b := range [2]int64{o.I.Lo, o.I.Hi} {
			p, o1 := mulSat(a, b)
			ovf = ovf || o1
			lo, hi = min64(lo, p), max64(hi, p)
		}
	}
	// Congruence product: (m1,r1)·(m2,r2) ⊆ (gcd(m1·m2, m1·r2, m2·r1), r1·r2).
	m1, r1, m2, r2 := v.M, v.R, o.M, o.R
	var m, r int64
	switch {
	case m1 == 0 && m2 == 0:
		var o3 bool
		if r, o3 = mulSat(r1, r2); o3 {
			m, r = 1, 0
		}
	case m1 == 1 || m2 == 1:
		if m1 == 1 {
			m1, r1, m2, r2 = m2, r2, m1, r1
		}
		// x·y with x ≡ r1 (mod m1) and y unknown: multiples survive only
		// when r1 == 0 (then the product is a multiple of m1).
		if m1 >= 2 && r1 == 0 {
			m, r = m1, 0
		} else {
			m, r = 1, 0
		}
	default:
		if (m1 == 0 && abs64(r1) >= maxMod) || (m2 == 0 && abs64(r2) >= maxMod) {
			m, r = 1, 0 // exact factor too large for safe residue math
		} else {
			m = gcd64(gcd64(m1*m2, m1*r2), m2*r1)
			r = r1 * r2
		}
	}
	out := Val{I: Interval{lo, hi}, M: m, R: r}
	return overflowed(out.norm(), ovf)
}

// Div returns the abstract quotient (Go truncating division). A divisor
// range containing zero yields ⊤ (the fault path is reported separately).
func (v Val) Div(o Val) Val {
	if v.Bot() || o.Bot() {
		return BotVal()
	}
	if o.I.Contains(0) && !(o.M >= 2 && o.R != 0) {
		return TopVal()
	}
	var lo, hi int64 = posInf, negInf
	for _, a := range [2]int64{v.I.Lo, v.I.Hi} {
		for _, b := range [2]int64{o.I.Lo, o.I.Hi} {
			if b == 0 {
				// Zero excluded by congruence; use the nearest nonzero bound.
				if o.I.Lo == 0 {
					b = 1
				} else {
					b = -1
				}
			}
			q := quotSat(a, b)
			lo, hi = min64(lo, q), max64(hi, q)
		}
	}
	// Truncating division is monotone in the dividend for a fixed divisor
	// sign but the extreme can sit at divisor = ±1 inside the range; the
	// corners above cover it only when the divisor range has one sign.
	if o.I.Lo < 0 && o.I.Hi > 0 {
		a := max64(abs64(v.I.Lo), abs64(v.I.Hi))
		lo, hi = min64(lo, -a), max64(hi, a)
	}
	return Val{I: Interval{lo, hi}, M: 1}.norm()
}

func quotSat(a, b int64) int64 {
	if a == negInf && b == -1 {
		return posInf
	}
	return a / b
}

// Rem returns the abstract remainder (sign follows the dividend, as in Go).
func (v Val) Rem(o Val) Val {
	if v.Bot() || o.Bot() {
		return BotVal()
	}
	if o.I.Contains(0) && !(o.M >= 2 && o.R != 0) {
		return TopVal()
	}
	maxAbs := max64(abs64(o.I.Lo), abs64(o.I.Hi))
	if maxAbs <= 0 { // abs(MinInt64) saturates negative: give up
		return TopVal()
	}
	bound := maxAbs - 1
	lo, hi := -bound, bound
	if v.I.Lo >= 0 {
		lo = 0
		hi = min64(hi, v.I.Hi)
	} else if v.I.Hi <= 0 {
		hi = 0
		lo = max64(lo, v.I.Lo)
	}
	out := Val{I: Interval{lo, hi}, M: 1}
	// x % c with a constant c and x ≡ r (mod m), c | m: the residue is
	// r % c exactly when x ≥ 0 (Kr loops index with non-negative values).
	if c, ok := o.IsConst(); ok && c >= 2 && v.I.Lo >= 0 {
		if v.M >= 2 && v.M%c == 0 {
			out.M, out.R = c, v.R%c
		}
	}
	return out.norm()
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(v int64) int64 {
	if v == negInf {
		return posInf // saturate: |MinInt64| is unrepresentable
	}
	if v < 0 {
		return -v
	}
	return v
}
