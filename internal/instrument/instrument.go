// Package instrument computes the static side of Kremlin's two
// instrumentation steps (§3): critical-path instrumentation (which branch
// pushes a control dependence, and where it pops — the branch's immediate
// postdominator, per the control-dependence-stack scheme of Xin & Zhang)
// and region instrumentation (which CFG edges enter, exit, or iterate
// regions). The interpreter consults this table instead of rewriting code,
// which is the natural equivalent of static instrumentation for an IR that
// is executed in-process.
package instrument

import (
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
	"kremlin/internal/regions"
)

// FuncInstr is the per-function instrumentation table.
type FuncInstr struct {
	Fn *ir.Func
	// PopAt maps a two-successor (branch) block to the block at which its
	// control-dependence entry is popped; nil when the branch's
	// postdominator is the function exit (the entry then pops with the
	// frame).
	PopAt map[*ir.Block]*ir.Block
	// Events holds the precomputed region transitions of every CFG edge,
	// keyed by from.ID<<32|to.ID. Populated eagerly in Build so the table
	// is read-only afterwards and safe to share across concurrent shard
	// runs.
	Events map[uint64]regions.EdgeEvents
	Info   *regions.FuncInfo
}

func edgeKey(from, to *ir.Block) uint64 {
	return uint64(from.ID)<<32 | uint64(uint32(to.ID))
}

// EdgeEvents returns the region events of the edge from→to. All edges in
// the function CFG are precomputed; unknown edges (not in any block's Succs)
// are computed on the fly without mutating the table.
func (fi *FuncInstr) EdgeEvents(from, to *ir.Block) regions.EdgeEvents {
	if ev, ok := fi.Events[edgeKey(from, to)]; ok {
		return ev
	}
	return fi.Info.Edge(from, to)
}

// Module is the instrumentation table for a whole program.
type Module struct {
	Prog    *regions.Program
	PerFunc map[*ir.Func]*FuncInstr
}

// Build computes instrumentation tables for every function of prog.
func Build(prog *regions.Program) *Module {
	mi := &Module{Prog: prog, PerFunc: make(map[*ir.Func]*FuncInstr)}
	for _, f := range prog.Module.Funcs {
		fi := &FuncInstr{
			Fn:     f,
			PopAt:  make(map[*ir.Block]*ir.Block),
			Events: make(map[uint64]regions.EdgeEvents),
			Info:   prog.PerFunc[f],
		}
		g := cfg.New(f)
		ipdom := g.Postdominators()
		n := len(f.Blocks)
		for i, b := range f.Blocks {
			for _, s := range b.Succs {
				fi.Events[edgeKey(b, s)] = fi.Info.Edge(b, s)
			}
			if len(b.Succs) < 2 {
				continue
			}
			if p := ipdom[i]; p >= 0 && p < n {
				fi.PopAt[b] = g.Blocks[p]
			} else {
				fi.PopAt[b] = nil // pops with the frame
			}
		}
		mi.PerFunc[f] = fi
	}
	return mi
}
