// Package instrument computes the static side of Kremlin's two
// instrumentation steps (§3): critical-path instrumentation (which branch
// pushes a control dependence, and where it pops — the branch's immediate
// postdominator, per the control-dependence-stack scheme of Xin & Zhang)
// and region instrumentation (which CFG edges enter, exit, or iterate
// regions). The interpreter consults this table instead of rewriting code,
// which is the natural equivalent of static instrumentation for an IR that
// is executed in-process.
package instrument

import (
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
	"kremlin/internal/regions"
)

// FuncInstr is the per-function instrumentation table.
type FuncInstr struct {
	Fn *ir.Func
	// PopAt maps a two-successor (branch) block to the block at which its
	// control-dependence entry is popped; nil when the branch's
	// postdominator is the function exit (the entry then pops with the
	// frame).
	PopAt map[*ir.Block]*ir.Block
	// Events memoizes the region transitions of each CFG edge,
	// keyed by from.ID<<32|to.ID.
	Events map[uint64]regions.EdgeEvents
	Info   *regions.FuncInfo
}

// EdgeEvents returns the (memoized) region events of the edge from→to.
func (fi *FuncInstr) EdgeEvents(from, to *ir.Block) regions.EdgeEvents {
	key := uint64(from.ID)<<32 | uint64(uint32(to.ID))
	ev, ok := fi.Events[key]
	if !ok {
		ev = fi.Info.Edge(from, to)
		fi.Events[key] = ev
	}
	return ev
}

// Module is the instrumentation table for a whole program.
type Module struct {
	Prog    *regions.Program
	PerFunc map[*ir.Func]*FuncInstr
}

// Build computes instrumentation tables for every function of prog.
func Build(prog *regions.Program) *Module {
	mi := &Module{Prog: prog, PerFunc: make(map[*ir.Func]*FuncInstr)}
	for _, f := range prog.Module.Funcs {
		fi := &FuncInstr{
			Fn:     f,
			PopAt:  make(map[*ir.Block]*ir.Block),
			Events: make(map[uint64]regions.EdgeEvents),
			Info:   prog.PerFunc[f],
		}
		g := cfg.New(f)
		ipdom := g.Postdominators()
		n := len(f.Blocks)
		for i, b := range f.Blocks {
			if len(b.Succs) < 2 {
				continue
			}
			if p := ipdom[i]; p >= 0 && p < n {
				fi.PopAt[b] = g.Blocks[p]
			} else {
				fi.PopAt[b] = nil // pops with the frame
			}
		}
		mi.PerFunc[f] = fi
	}
	return mi
}
