package instrument

import (
	"testing"

	"kremlin/internal/analysis"
	"kremlin/internal/ir"
	"kremlin/internal/irbuild"
	"kremlin/internal/parser"
	"kremlin/internal/regions"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

func build(t *testing.T, src string) *Module {
	t.Helper()
	errs := &source.ErrorList{}
	file := source.NewFile("t.kr", src)
	tree := parser.Parse(file, errs)
	info := types.Check(tree, file, errs)
	if errs.HasErrors() {
		t.Fatalf("frontend: %v", errs.Err())
	}
	mod := irbuild.Build(tree, info, file, errs)
	if errs.HasErrors() {
		t.Fatalf("build: %v", errs.Err())
	}
	analysis.Run(mod)
	return Build(regions.Analyze(mod, file))
}

const src = `
int f(int x) {
	int r = 0;
	if (x > 0) {
		r = 1;
	} else {
		r = 2;
	}
	for (int i = 0; i < x; i++) {
		if (i % 2 == 0) {
			r += i;
		}
	}
	return r;
}
int main() { return f(9); }
`

// TestPopAtCoversBranches: every 2-successor block gets a pop point
// (possibly nil for branches postdominated only by the exit).
func TestPopAtCoversBranches(t *testing.T) {
	mi := build(t, src)
	for f, fi := range mi.PerFunc {
		for _, b := range f.Blocks {
			if len(b.Succs) < 2 {
				if _, ok := fi.PopAt[b]; ok {
					t.Errorf("%s: non-branch block %s has a pop point", f.Name, b)
				}
				continue
			}
			popAt, ok := fi.PopAt[b]
			if !ok {
				t.Errorf("%s: branch block %s lacks a pop entry", f.Name, b)
				continue
			}
			if popAt == b {
				t.Errorf("%s: branch %s pops at itself", f.Name, b)
			}
		}
	}
}

// TestIfPopsAtJoin: the diamond's branch pops at the join block.
func TestIfPopsAtJoin(t *testing.T) {
	mi := build(t, src)
	f := mi.Prog.Module.ByName["f"]
	fi := mi.PerFunc[f]
	found := false
	for b, popAt := range fi.PopAt {
		if popAt == nil {
			continue
		}
		// The if-diamond: both successors non-header blocks, pop point has
		// two predecessors.
		if len(b.Succs) == 2 && len(popAt.Preds) >= 2 {
			found = true
		}
	}
	if !found {
		t.Error("no diamond branch with a join pop point found")
	}
}

// TestEdgeEventsMemoized: repeated queries return consistent results and
// populate the cache.
func TestEdgeEventsMemoized(t *testing.T) {
	mi := build(t, src)
	f := mi.Prog.Module.ByName["f"]
	fi := mi.PerFunc[f]
	var from, to *ir.Block
	for _, b := range f.Blocks {
		if len(b.Succs) > 0 {
			from, to = b, b.Succs[0]
			break
		}
	}
	ev1 := fi.EdgeEvents(from, to)
	before := len(fi.Events)
	ev2 := fi.EdgeEvents(from, to)
	if len(fi.Events) != before {
		t.Error("memoization did not stick")
	}
	if len(ev1.Enter) != len(ev2.Enter) || len(ev1.Exit) != len(ev2.Exit) || ev1.Iterate != ev2.Iterate {
		t.Error("memoized result differs")
	}
}

// TestLoopBackEdgeIterates: the loop's latch->header edge is classified as
// an iteration.
func TestLoopBackEdgeIterates(t *testing.T) {
	mi := build(t, src)
	f := mi.Prog.Module.ByName["f"]
	fi := mi.PerFunc[f]
	count := 0
	for header, lr := range fi.Info.HeaderOf {
		l := fi.Info.LoopOf[lr]
		for _, pred := range header.Preds {
			if !l.Contains(pred) {
				continue
			}
			ev := fi.EdgeEvents(pred, header)
			if ev.Iterate == nil || ev.Iterate.Kind != regions.BodyRegion {
				t.Errorf("back edge %s->%s not an iteration: %+v", pred, header, ev)
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("no back edges found")
	}
}

// TestEventsBalance: over any single edge, enters and exits keep the
// region stack well formed (each Enter's parent is on the path).
func TestEventsBalance(t *testing.T) {
	mi := build(t, src)
	for f, fi := range mi.PerFunc {
		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				ev := fi.EdgeEvents(b, s)
				// Exits come innermost-first: each exited region's parent
				// is the next exit or remains on the stack.
				for i := 1; i < len(ev.Exit); i++ {
					if ev.Exit[i-1].Parent != ev.Exit[i] {
						t.Errorf("%s->%s: exits out of order", b, s)
					}
				}
				// Enters come outermost-first.
				for i := 1; i < len(ev.Enter); i++ {
					if ev.Enter[i].Parent != ev.Enter[i-1] {
						t.Errorf("%s->%s: enters out of order", b, s)
					}
				}
			}
		}
	}
}
