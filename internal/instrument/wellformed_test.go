package instrument_test

import (
	"fmt"
	"testing"

	"kremlin"
	"kremlin/internal/bench"
	"kremlin/internal/instrument"
	"kremlin/internal/krfuzz"
	"kremlin/internal/regions"
)

// checkWellFormed replays every CFG edge's precomputed EdgeEvents against
// the region nest paths and asserts the events transform the source
// block's open-region stack exactly into the destination block's:
//
//   - exits come innermost-first and each must match the current stack top
//   - an iterated body region must be the innermost open region after exits
//   - enters come outermost-first and each entered region's parent must be
//     the current stack top
//   - the resulting stack must equal NestPath[to] element for element
//
// With the entry block sitting directly in the function Root, it follows
// by induction over paths that every region Enter the interpreter performs
// has a matching Exit on all CFG paths (returns pop the remainder with the
// frame) — the invariant the HCPA runtime's region stack depends on.
func checkWellFormed(t *testing.T, name string, mi *instrument.Module) {
	t.Helper()
	for f, fi := range mi.PerFunc {
		info := fi.Info
		if len(f.Blocks) == 0 {
			continue
		}
		where := func(b fmt.Stringer, s fmt.Stringer) string {
			return fmt.Sprintf("%s: %s: edge %s->%s", name, f.Name, b, s)
		}

		entry := f.Blocks[0]
		ep := info.NestPath[entry]
		if len(ep) != 1 || ep[0] != info.Root {
			t.Errorf("%s: %s: entry block path is %d regions deep; must be exactly [Root]", name, f.Name, len(ep))
		}

		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				ev := fi.EdgeEvents(b, s)
				stack := append([]*regions.Region{}, info.NestPath[b]...)
				ok := true
				for _, r := range ev.Exit {
					if len(stack) == 0 || stack[len(stack)-1] != r {
						t.Errorf("%s: exit of region %d does not match the innermost open region", where(b, s), r.ID)
						ok = false
						break
					}
					stack = stack[:len(stack)-1]
				}
				if !ok {
					continue
				}
				if ev.Iterate != nil {
					if ev.Iterate.Kind != regions.BodyRegion {
						t.Errorf("%s: iterated region %d is not a body region", where(b, s), ev.Iterate.ID)
					}
					if len(stack) == 0 || stack[len(stack)-1] != ev.Iterate {
						t.Errorf("%s: iterated region %d is not the innermost open region after exits", where(b, s), ev.Iterate.ID)
						continue
					}
				}
				for _, r := range ev.Enter {
					if len(stack) == 0 || r.Parent != stack[len(stack)-1] {
						t.Errorf("%s: entered region %d is not a child of the innermost open region", where(b, s), r.ID)
						ok = false
						break
					}
					stack = append(stack, r)
				}
				if !ok {
					continue
				}
				want := info.NestPath[s]
				if len(stack) != len(want) {
					t.Errorf("%s: events land on a %d-deep stack, destination nests %d regions", where(b, s), len(stack), len(want))
					continue
				}
				for i := range want {
					if stack[i] != want[i] {
						t.Errorf("%s: stack[%d] is region %d, destination path has %d", where(b, s), i, stack[i].ID, want[i].ID)
						break
					}
				}
			}
		}
	}
}

// TestBenchInstrumentationWellFormed checks the invariant on every
// evaluation workload — the region structures the paper's results rest on.
func TestBenchInstrumentationWellFormed(t *testing.T) {
	suite := append(bench.All(), bench.Tracking())
	for _, b := range suite {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := kremlin.Compile(b.Name+".kr", b.Source)
			if err != nil {
				t.Fatal(err)
			}
			checkWellFormed(t, b.Name, prog.Instr)
		})
	}
}

// TestGeneratedInstrumentationWellFormed checks the invariant on 50
// generated programs, whose loop/branch/early-exit mixtures reach edge
// shapes (break out of nested loops, return from inside a body region)
// the hand-written suite may not.
func TestGeneratedInstrumentationWellFormed(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := krfuzz.Generate(seed, krfuzz.Default())
		src := p.Source()
		prog, err := kremlin.Compile("gen.kr", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n--- program ---\n%s", seed, err, src)
		}
		checkWellFormed(t, fmt.Sprintf("seed-%d", seed), prog.Instr)
	}
}
