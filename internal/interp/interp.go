// Package interp executes Kr IR. It is both the "uninstrumented binary"
// (plain mode) and, with instrumentation enabled, the vehicle that drives
// the KremLib profiling runtime: every executed instruction performs the
// hierarchical critical-path update, every region-crossing CFG edge fires
// region enter/exit/iterate events, and every branch pushes its control
// dependence. A gprof mode tracks only per-region work, for the paper's
// instrumentation-overhead comparison.
package interp

import (
	"context"
	"fmt"
	"io"
	"math"

	"kremlin/internal/ast"
	"kremlin/internal/inccache"
	"kremlin/internal/instrument"
	"kremlin/internal/ir"
	"kremlin/internal/kremlib"
	"kremlin/internal/limits"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
	"kremlin/internal/shadow"
)

// Mode selects how much instrumentation the run performs.
type Mode int

// Execution modes.
const (
	Plain Mode = iota // no profiling
	Gprof             // per-region work only (a serial time profiler)
	HCPA              // full hierarchical critical path analysis
	Probe             // per-depth work histogram (sizes sharded depth windows)
)

// Config configures a run.
type Config struct {
	Mode     Mode
	Out      io.Writer // print output; nil discards
	MaxSteps uint64    // instruction budget; 0 means the default (2e9)
	// Ctx, when non-nil, lets the run be cancelled or deadlined mid-flight;
	// the interpreter polls it every few thousand instructions and fails
	// with limits.ErrCancelled. A nil Ctx means the run cannot be stopped
	// from outside.
	Ctx context.Context
	// MaxHeapWords caps the simulated heap (in 8-byte words, 0 =
	// unlimited); an allocation pushing past it fails with
	// limits.ErrMemCap instead of growing the host process.
	MaxHeapWords uint64
	Opts         kremlib.Options
	Prog         *regions.Program   // required for Gprof and HCPA
	Instr        *instrument.Module // optional; built on demand for HCPA
	// Cache, when non-nil in HCPA mode, is the incremental re-profiling
	// session: eligible calls replay cached extents instead of executing,
	// and fresh extents are recorded for future runs. The profile produced
	// is byte-identical either way.
	Cache *inccache.Session
}

// GprofEntry is one region's serial work profile (gprof mode).
type GprofEntry struct {
	RegionID int
	Total    uint64 // work including children
	Self     uint64 // work excluding children
	Count    int64  // dynamic instances
}

// Result summarizes a completed execution.
type Result struct {
	Work    uint64
	Steps   uint64
	Profile *profile.Profile // HCPA mode
	Gprof   []GprofEntry     // Gprof mode, indexed by region ID
	// ShadowPages/ShadowWrites report shadow-memory pressure (HCPA mode).
	ShadowPages  int
	ShadowWrites uint64
	// DepthWork[d] is the work executed while d regions were active (Probe
	// mode); MaxRegionDepth is the deepest nesting observed.
	DepthWork      []uint64
	MaxRegionDepth int
	// CarriedDeps lists the loop regions (by static region ID, sorted) that
	// exhibited a dynamic loop-carried flow dependence. Only populated in
	// HCPA mode with Options.TraceDeps set.
	CarriedDeps []int
}

// RuntimeError is an execution failure annotated with a source offset.
type RuntimeError struct {
	Pos int
	Msg string
}

func (e *RuntimeError) Error() string { return e.Msg }

// Simulated-machine layout constants, exported so the bytecode engine
// (internal/bytecode) shares the exact same heap layout and array limits
// as this reference interpreter. The liveness-poll interval and default
// step budget live in package limits, shared by both engines.
const (
	// HeapBase is the first simulated heap address; addresses below it are
	// never handed out, so 0 stays an unmistakable "no address" value.
	HeapBase = uint64(1) << 16
	// MaxArrayElems caps a single array allocation.
	MaxArrayElems = int64(1) << 27
)

const (
	heapBase        = HeapBase
	defaultMaxSteps = limits.DefaultMaxSteps
	maxArrayElems   = MaxArrayElems
	liveCheckMask   = limits.LiveCheckMask
)

// array is a (possibly partial) view into the simulated heap.
type array struct {
	base uint64
	dims []int64
	elem ast.BasicKind
}

// val is a runtime value. I doubles as bool storage (0/1).
type val struct {
	i int64
	f float64
	a array
}

type machine struct {
	mod   *ir.Module
	cfg   Config
	out   io.Writer
	steps uint64
	limit uint64
	ctx   context.Context // nil when the run is not cancellable

	heap     []uint64
	heapTop  uint64
	heapCap  uint64 // max heap words; 0 = unlimited
	heapPeak uint64 // high-water mark, tracked for cache-skip budget fidelity

	rng uint64

	globalBase []uint64

	// plain-mode work counter (HCPA counts inside kremlib).
	work uint64

	// gprof mode
	gpSelf  []uint64
	gpTotal []uint64
	gpCount []int64
	gpStack []gpFrame

	// probe mode: work is attributed to the nesting depth it ran at,
	// flushed lazily at region boundaries (O(region events), not O(steps)).
	probeDepth int
	probeMax   int
	probeMark  uint64
	depthWork  []uint64

	// HCPA mode
	rt   *kremlib.Runtime
	prof *profile.Profile

	printedAny bool
}

type gpFrame struct {
	regionID  int
	entryWork uint64
	childWork uint64
}

// Run executes mod.Main() under cfg.
//
// On a limit failure (cancellation, instruction budget, memory cap — see
// package limits) the returned error wraps the matching sentinel AND the
// Result is non-nil, carrying the partial run state (Steps, Work, and in
// Gprof mode the profile of every region instance that completed before
// the limit fired). All other errors return a nil Result.
func Run(mod *ir.Module, cfg Config) (*Result, error) {
	m := &machine{mod: mod, cfg: cfg, out: cfg.Out, rng: 0x9E3779B97F4A7C15}
	m.limit = cfg.MaxSteps
	if m.limit == 0 {
		m.limit = defaultMaxSteps
	}
	m.ctx = cfg.Ctx
	m.heapCap = cfg.MaxHeapWords
	if cfg.Mode != Plain && cfg.Prog == nil {
		return nil, fmt.Errorf("interp: %v mode requires region info", cfg.Mode)
	}
	if cfg.Mode != Plain && cfg.Instr == nil {
		m.cfg.Instr = instrument.Build(cfg.Prog)
	}
	if cfg.Mode == HCPA {
		m.prof = profile.New()
		m.rt = kremlib.NewRuntime(m.prof, cfg.Opts)
		if cfg.Cache != nil {
			cfg.Cache.Bind(m.prof, m.rt)
		}
	} else {
		m.cfg.Cache = nil
	}
	if cfg.Mode == Gprof {
		n := len(cfg.Prog.Regions)
		m.gpSelf = make([]uint64, n)
		m.gpTotal = make([]uint64, n)
		m.gpCount = make([]int64, n)
	}

	if err := m.allocGlobals(); err != nil {
		return nil, err
	}

	main := mod.Main()
	if main == nil {
		return nil, fmt.Errorf("interp: no main function")
	}
	_, _, err := m.call(main, nil, nil, nil)
	if err != nil {
		if limits.IsLimit(err) {
			return m.partialResult(), err
		}
		return nil, err
	}

	res := &Result{Steps: m.steps}
	switch cfg.Mode {
	case HCPA:
		res.Work = m.rt.TotalWork()
		res.Profile = m.prof
		res.ShadowPages = m.rt.Mem().NumPages()
		res.ShadowWrites = m.rt.Mem().Writes
		res.CarriedDeps = m.rt.CarriedDeps()
	case Probe:
		m.probeFlush()
		res.Work = m.work
		res.DepthWork = m.depthWork
		res.MaxRegionDepth = m.probeMax
	case Gprof:
		res.Work = m.work
		for id := range m.gpTotal {
			if m.gpCount[id] == 0 {
				continue
			}
			res.Gprof = append(res.Gprof, GprofEntry{
				RegionID: id, Total: m.gpTotal[id], Self: m.gpSelf[id], Count: m.gpCount[id],
			})
		}
	default:
		res.Work = m.work
	}
	return res, nil
}

func (m *machine) allocGlobals() error {
	m.globalBase = make([]uint64, len(m.mod.Globals))
	for i, g := range m.mod.Globals {
		if g.IsArray() {
			total := int64(1)
			for _, d := range g.Dims {
				total *= d
			}
			base, err := m.alloc(total)
			if err != nil {
				return err
			}
			m.globalBase[i] = base
			continue
		}
		addr, err := m.alloc(1)
		if err != nil {
			return err
		}
		m.globalBase[i] = addr
		if g.Init != nil {
			switch c := g.Init.(type) {
			case *ir.ConstInt:
				m.heap[addr-heapBase] = uint64(c.V)
			case *ir.ConstFloat:
				m.heap[addr-heapBase] = math.Float64bits(c.V)
			case *ir.ConstBool:
				if c.V {
					m.heap[addr-heapBase] = 1
				}
			}
		}
	}
	return nil
}

func (m *machine) alloc(n int64) (uint64, error) {
	base := heapBase + m.heapTop
	if m.heapCap > 0 && m.heapTop+uint64(n) > m.heapCap {
		return 0, limits.MemCap(m.steps, 0,
			"simulated heap cap exceeded (%d words requested, %d in use, cap %d)",
			n, m.heapTop, m.heapCap)
	}
	m.heapTop += uint64(n)
	if m.heapTop > m.heapPeak {
		m.heapPeak = m.heapTop
	}
	need := int(m.heapTop)
	if need > len(m.heap) {
		grown := make([]uint64, need*2)
		copy(grown, m.heap)
		m.heap = grown
	} else {
		// Reused region (after a frame free): clear it.
		for i := base - heapBase; i < base-heapBase+uint64(n); i++ {
			m.heap[i] = 0
		}
	}
	return base, nil
}

// partialResult snapshots the run state for a limit failure: the caller
// gets the step/work counters plus, in Gprof mode, the profile prefix of
// every region instance that fully completed before the limit fired.
func (m *machine) partialResult() *Result {
	res := &Result{Steps: m.steps, Work: m.work}
	switch m.cfg.Mode {
	case HCPA:
		if m.rt != nil {
			res.Work = m.rt.TotalWork()
			res.ShadowPages = m.rt.Mem().NumPages()
			res.ShadowWrites = m.rt.Mem().Writes
		}
	case Gprof:
		for id := range m.gpTotal {
			if m.gpCount[id] == 0 {
				continue
			}
			res.Gprof = append(res.Gprof, GprofEntry{
				RegionID: id, Total: m.gpTotal[id], Self: m.gpSelf[id], Count: m.gpCount[id],
			})
		}
	}
	return res
}

// checkLive runs the periodic (not per-instruction) liveness checks:
// context cancellation and the shadow-memory page cap.
func (m *machine) checkLive() error {
	if m.ctx != nil {
		if m.ctx.Err() != nil {
			return limits.Cancelled(m.steps)
		}
	}
	if m.rt != nil {
		if err := m.rt.CheckLimits(m.steps); err != nil {
			return err
		}
	}
	return nil
}

// probeFlush attributes work since the last region boundary to the depth
// it ran at.
func (m *machine) probeFlush() {
	for m.probeDepth >= len(m.depthWork) {
		m.depthWork = append(m.depthWork, 0)
	}
	m.depthWork[m.probeDepth] += m.work - m.probeMark
	m.probeMark = m.work
}

// regionEnter/regionExit/regionIterate dispatch to whichever profiler is on.
func (m *machine) regionEnter(r *regions.Region) {
	switch m.cfg.Mode {
	case HCPA:
		m.rt.EnterRegion(r)
	case Gprof:
		m.gpStack = append(m.gpStack, gpFrame{regionID: r.ID, entryWork: m.work})
		m.gpCount[r.ID]++
	case Probe:
		m.probeFlush()
		m.probeDepth++
		if m.probeDepth > m.probeMax {
			m.probeMax = m.probeDepth
		}
	}
}

func (m *machine) regionExit() {
	switch m.cfg.Mode {
	case HCPA:
		m.rt.ExitRegion()
	case Gprof:
		top := m.gpStack[len(m.gpStack)-1]
		m.gpStack = m.gpStack[:len(m.gpStack)-1]
		total := m.work - top.entryWork
		m.gpTotal[top.regionID] += total
		m.gpSelf[top.regionID] += total - top.childWork
		if n := len(m.gpStack); n > 0 {
			m.gpStack[n-1].childWork += total
		}
	case Probe:
		m.probeFlush()
		m.probeDepth--
	}
}

func (m *machine) edgeEvents(fi *instrument.FuncInstr, from, to *ir.Block) {
	ev := fi.EdgeEvents(from, to)
	for range ev.Exit {
		m.regionExit()
	}
	if ev.Iterate != nil {
		m.regionExit()
		m.regionEnter(ev.Iterate)
	}
	for _, r := range ev.Enter {
		m.regionEnter(r)
	}
}

func (m *machine) errAt(pos int, format string, args ...interface{}) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// call executes f with the given arguments. argVecs carries the callers'
// shadow vectors in HCPA mode.
func (m *machine) call(f *ir.Func, args []val, argVecs []shadow.Vec, callerFS *kremlib.FrameState) (val, shadow.Vec, error) {
	regs := make([]val, f.NumValues())
	watermark := m.heapTop

	profiled := m.cfg.Mode != Plain
	var fs *kremlib.FrameState
	var fi *instrument.FuncInstr
	gpEntryDepth := len(m.gpStack)
	probeEntryDepth := m.probeDepth
	if m.cfg.Mode == HCPA {
		fs = m.rt.NewFrame(f, callerFS)
	}
	if profiled {
		fi = m.cfg.Instr.PerFunc[f]
		m.regionEnter(m.cfg.Prog.PerFunc[f].Root)
	}
	if fs != nil {
		for i, p := range f.Params {
			if i < len(argVecs) && argVecs[i] != nil {
				fs.Regs.Set(p.ID, argVecs[i], len(argVecs[i]))
			}
		}
	}
	for i, p := range f.Params {
		if i < len(args) {
			regs[p.ID] = args[i]
		}
	}

	blk := f.Entry()
	var prev *ir.Block
	var phiVals []val
	var retVal val
	var retVec shadow.Vec

	for {
		if fs != nil {
			m.rt.AtBlock(fs, blk)
			// Re-entering the block that owns the top control entry means
			// its branch is about to re-execute (a loop); the stale entry
			// must not serialize this iteration against the last.
			m.rt.PopSameBranch(fs, blk)
		}
		// Phis evaluate in parallel against the pre-state.
		nPhis := 0
		for _, ins := range blk.Instrs {
			if ins.Op != ir.OpPhi {
				break
			}
			nPhis++
		}
		predIdx := -1
		if nPhis > 0 {
			for i, p := range blk.Preds {
				if p == prev {
					predIdx = i
					break
				}
			}
			if cap(phiVals) < nPhis {
				phiVals = make([]val, nPhis)
			}
			phiVals = phiVals[:nPhis]
			for k := 0; k < nPhis; k++ {
				ins := blk.Instrs[k]
				if predIdx >= 0 && predIdx < len(ins.Args) {
					phiVals[k] = m.value(regs, ins.Args[predIdx])
				}
			}
			for k := 0; k < nPhis; k++ {
				ins := blk.Instrs[k]
				regs[ins.ID] = phiVals[k]
				if fs != nil {
					m.rt.Step(fs, ins, 0, predIdx)
				}
				m.steps++
			}
		}

		var next *ir.Block
		returned := false
		for _, ins := range blk.Instrs[nPhis:] {
			m.steps++
			if m.steps > m.limit {
				return val{}, nil, limits.Budget(m.limit, m.steps)
			}
			if m.steps&liveCheckMask == 0 {
				if err := m.checkLive(); err != nil {
					return val{}, nil, err
				}
			}
			if m.cfg.Mode != HCPA {
				m.work += ins.Latency()
			}

			switch ins.Op {
			case ir.OpParam:
				// Value seeded at call; shadow vec seeded at frame setup.
				continue
			case ir.OpBin:
				v, err := m.binop(regs, ins)
				if err != nil {
					return val{}, nil, err
				}
				regs[ins.ID] = v
			case ir.OpNeg:
				x := m.value(regs, ins.Args[0])
				if ins.Typ.Elem == ast.Float {
					regs[ins.ID] = val{f: -x.f}
				} else {
					regs[ins.ID] = val{i: -x.i}
				}
			case ir.OpNot:
				x := m.value(regs, ins.Args[0])
				regs[ins.ID] = val{i: 1 - x.i}
			case ir.OpConvert:
				x := m.value(regs, ins.Args[0])
				if ins.Typ.Elem == ast.Float {
					regs[ins.ID] = val{f: float64(x.i)}
				} else {
					regs[ins.ID] = val{i: int64(x.f)}
				}
			case ir.OpAllocArray:
				v, err := m.allocArray(regs, ins)
				if err != nil {
					return val{}, nil, err
				}
				regs[ins.ID] = v
			case ir.OpGlobal:
				g := ins.Global
				regs[ins.ID] = val{a: array{base: m.globalBase[g.Index], dims: g.Dims, elem: g.Elem}}
			case ir.OpView:
				arr := m.value(regs, ins.Args[0]).a
				idx := m.value(regs, ins.Args[1]).i
				if len(arr.dims) == 0 {
					return val{}, nil, m.errAt(ins.Pos, "index of non-array value")
				}
				if idx < 0 || idx >= arr.dims[0] {
					return val{}, nil, m.errAt(ins.Pos, "index %d out of range [0,%d)", idx, arr.dims[0])
				}
				stride := int64(1)
				for _, d := range arr.dims[1:] {
					stride *= d
				}
				regs[ins.ID] = val{a: array{base: arr.base + uint64(idx*stride), dims: arr.dims[1:], elem: arr.elem}}
			case ir.OpLoad:
				cell := m.value(regs, ins.Args[0]).a
				bits := m.heap[cell.base-heapBase]
				if ins.Typ.Elem == ast.Float {
					regs[ins.ID] = val{f: math.Float64frombits(bits)}
				} else {
					regs[ins.ID] = val{i: int64(bits)}
				}
				if fs != nil {
					m.rt.Step(fs, ins, cell.base, -1)
				}
				continue
			case ir.OpStore:
				cell := m.value(regs, ins.Args[0]).a
				v := m.value(regs, ins.Args[1])
				var bits uint64
				if cell.elem == ast.Float {
					bits = math.Float64bits(v.f)
				} else {
					bits = uint64(v.i)
				}
				m.heap[cell.base-heapBase] = bits
				if fs != nil {
					m.rt.Step(fs, ins, cell.base, -1)
				}
				continue
			case ir.OpCall:
				if err := m.doCall(regs, ins, fs); err != nil {
					return val{}, nil, err
				}
				continue
			case ir.OpBuiltin:
				if err := m.builtin(regs, ins); err != nil {
					return val{}, nil, err
				}
			case ir.OpBr:
				cond := m.value(regs, ins.Args[0])
				if cond.i != 0 {
					next = ins.Targets[0]
				} else {
					next = ins.Targets[1]
				}
				if fs != nil {
					vec := m.rt.Step(fs, ins, 0, -1)
					if popAt, ok := fi.PopAt[blk]; ok && popAt != nil {
						m.rt.PushCtrl(fs, blk, popAt, vec)
					}
				}
				continue
			case ir.OpJump:
				next = ins.Targets[0]
				if fs != nil {
					m.rt.Step(fs, ins, 0, -1)
				}
				continue
			case ir.OpRet:
				if len(ins.Args) > 0 {
					retVal = m.value(regs, ins.Args[0])
				}
				returned = true
				if fs != nil {
					m.rt.Step(fs, ins, 0, -1)
					retVec = fs.RetVec
				}
			default:
				return val{}, nil, m.errAt(ins.Pos, "unknown opcode %v", ins.Op)
			}
			if fs != nil && ins.Op != ir.OpRet {
				m.rt.Step(fs, ins, 0, -1)
			}
			if returned {
				break
			}
		}

		if returned || next == nil {
			break
		}
		if profiled {
			m.edgeEvents(fi, blk, next)
		}
		prev = blk
		blk = next
	}

	if profiled {
		// Exit any loops left open plus the function region.
		switch m.cfg.Mode {
		case HCPA:
			m.rt.Unwind(fs.EntryDepth)
		case Probe:
			for m.probeDepth > probeEntryDepth {
				m.regionExit()
			}
		default:
			for len(m.gpStack) > gpEntryDepth {
				m.regionExit()
			}
		}
	}
	// Release frame-local heap (and its shadow state).
	if m.heapTop != watermark {
		if m.rt != nil {
			m.rt.Mem().Free(heapBase+watermark, m.heapTop-watermark)
		}
		m.heapTop = watermark
	}
	if fs != nil {
		// RetVec stays readable until the caller's FinishCall, which runs
		// before any further NewFrame.
		m.rt.ReleaseFrame(fs)
	}
	return retVal, retVec, nil
}

func (m *machine) doCall(regs []val, ins *ir.Instr, fs *kremlib.FrameState) error {
	args := make([]val, len(ins.Args))
	for i, a := range ins.Args {
		args[i] = m.value(regs, a)
	}
	var argVecs []shadow.Vec
	if fs != nil {
		m.rt.Step(fs, ins, 0, -1)
		// The callee's Regs.Set copies before anything can mutate the
		// caller's register table, so the live vectors can be passed
		// without a defensive copy.
		argVecs = make([]shadow.Vec, len(ins.Args))
		for i, a := range ins.Args {
			if ai, ok := a.(*ir.Instr); ok {
				argVecs[i] = fs.Regs.Get(ai.ID)
			}
		}
	}
	var rec *inccache.Recording
	sess := m.cfg.Cache
	if sess != nil && fs != nil && sess.Cacheable(ins.Callee) {
		bits := callArgBits(ins.Callee, args)
		if hit, ok := sess.TrySkip(ins.Callee, ins, fs, bits, argVecs, m.steps, m.limit, m.heapTop, m.heapCap); ok {
			m.steps += hit.Steps
			if p := m.heapTop + hit.PeakHeap; p > m.heapPeak {
				m.heapPeak = p
			}
			regs[ins.ID] = valFromBits(ins.Callee.Ret, hit.RetBits)
			return nil
		}
		rec = sess.BeginRecord(ins.Callee, bits, m.steps)
	}
	savedPeak := m.heapPeak
	if rec != nil {
		// Track the extent's own heap high-water mark so the record can
		// reproduce heap-cap failures exactly on replay.
		m.heapPeak = m.heapTop
	}
	ret, retVec, err := m.call(ins.Callee, args, argVecs, fs)
	if err != nil {
		return err
	}
	if rec != nil {
		sess.EndRecord(rec, m.steps, retBitsOf(ins.Callee.Ret, ret), retVec, m.heapPeak-m.heapTop)
		if savedPeak > m.heapPeak {
			m.heapPeak = savedPeak
		}
	}
	regs[ins.ID] = ret
	if fs != nil {
		m.rt.FinishCall(fs, ins, retVec)
	}
	return nil
}

// callArgBits canonicalizes scalar call arguments for cache keying: the
// exact bit pattern, float args as their IEEE-754 image.
func callArgBits(f *ir.Func, args []val) []uint64 {
	bits := make([]uint64, len(f.Params))
	for i, p := range f.Params {
		if i >= len(args) {
			break
		}
		if p.Typ.Elem == ast.Float {
			bits[i] = math.Float64bits(args[i].f)
		} else {
			bits[i] = uint64(args[i].i)
		}
	}
	return bits
}

func valFromBits(ret ast.BasicKind, bits uint64) val {
	if ret == ast.Float {
		return val{f: math.Float64frombits(bits)}
	}
	return val{i: int64(bits)}
}

func retBitsOf(ret ast.BasicKind, v val) uint64 {
	if ret == ast.Float {
		return math.Float64bits(v.f)
	}
	return uint64(v.i)
}

func (m *machine) value(regs []val, v ir.Value) val {
	switch v := v.(type) {
	case *ir.Instr:
		return regs[v.ID]
	case *ir.ConstInt:
		return val{i: v.V}
	case *ir.ConstFloat:
		return val{f: v.V}
	case *ir.ConstBool:
		if v.V {
			return val{i: 1}
		}
		return val{}
	}
	return val{}
}

func (m *machine) binop(regs []val, ins *ir.Instr) (val, error) {
	x := m.value(regs, ins.Args[0])
	y := m.value(regs, ins.Args[1])
	isFloat := ins.Args[0].Type().Elem == ast.Float
	switch ins.Bin {
	case ir.BinAdd:
		if isFloat {
			return val{f: x.f + y.f}, nil
		}
		return val{i: x.i + y.i}, nil
	case ir.BinSub:
		if isFloat {
			return val{f: x.f - y.f}, nil
		}
		return val{i: x.i - y.i}, nil
	case ir.BinMul:
		if isFloat {
			return val{f: x.f * y.f}, nil
		}
		return val{i: x.i * y.i}, nil
	case ir.BinDiv:
		if isFloat {
			return val{f: x.f / y.f}, nil
		}
		if y.i == 0 {
			return val{}, m.errAt(ins.Pos, "integer division by zero")
		}
		return val{i: x.i / y.i}, nil
	case ir.BinRem:
		if y.i == 0 {
			return val{}, m.errAt(ins.Pos, "integer modulo by zero")
		}
		return val{i: x.i % y.i}, nil
	case ir.BinAnd:
		return val{i: x.i & y.i}, nil
	case ir.BinOr:
		return val{i: x.i | y.i}, nil
	}
	// Comparisons.
	var lt, eq bool
	if isFloat {
		lt, eq = x.f < y.f, x.f == y.f
	} else {
		lt, eq = x.i < y.i, x.i == y.i
	}
	var r bool
	switch ins.Bin {
	case ir.BinEq:
		r = eq
	case ir.BinNe:
		r = !eq
	case ir.BinLt:
		r = lt
	case ir.BinLe:
		r = lt || eq
	case ir.BinGt:
		r = !lt && !eq
	case ir.BinGe:
		r = !lt
	}
	if r {
		return val{i: 1}, nil
	}
	return val{}, nil
}

func (m *machine) allocArray(regs []val, ins *ir.Instr) (val, error) {
	dims := make([]int64, len(ins.Args))
	total := int64(1)
	for i, a := range ins.Args {
		d := m.value(regs, a).i
		if d <= 0 {
			return val{}, m.errAt(ins.Pos, "array dimension %d must be positive, got %d", i, d)
		}
		dims[i] = d
		total *= d
		if total > maxArrayElems {
			return val{}, m.errAt(ins.Pos, "array too large (%d elements)", total)
		}
	}
	base, err := m.alloc(total)
	if err != nil {
		return val{}, err
	}
	return val{a: array{base: base, dims: dims, elem: ins.Typ.Elem}}, nil
}

func (m *machine) builtin(regs []val, ins *ir.Instr) error {
	arg := func(i int) val { return m.value(regs, ins.Args[i]) }
	switch ins.Builtin {
	case "sqrt":
		regs[ins.ID] = val{f: math.Sqrt(arg(0).f)}
	case "fabs":
		regs[ins.ID] = val{f: math.Abs(arg(0).f)}
	case "floor":
		regs[ins.ID] = val{f: math.Floor(arg(0).f)}
	case "exp":
		regs[ins.ID] = val{f: math.Exp(arg(0).f)}
	case "log":
		regs[ins.ID] = val{f: math.Log(arg(0).f)}
	case "sin":
		regs[ins.ID] = val{f: math.Sin(arg(0).f)}
	case "cos":
		regs[ins.ID] = val{f: math.Cos(arg(0).f)}
	case "pow":
		regs[ins.ID] = val{f: math.Pow(arg(0).f, arg(1).f)}
	case "abs":
		x := arg(0).i
		if x < 0 {
			x = -x
		}
		regs[ins.ID] = val{i: x}
	case "min", "max":
		x, y := arg(0), arg(1)
		if ins.Typ.Elem == ast.Float {
			if (ins.Builtin == "min") == (x.f < y.f) {
				regs[ins.ID] = x
			} else {
				regs[ins.ID] = y
			}
		} else {
			if (ins.Builtin == "min") == (x.i < y.i) {
				regs[ins.ID] = x
			} else {
				regs[ins.ID] = y
			}
		}
	case "rand":
		regs[ins.ID] = val{i: int64(m.nextRand() >> 1)}
	case "frand":
		regs[ins.ID] = val{f: float64(m.nextRand()>>11) / float64(1<<53)}
	case "srand":
		m.rng = uint64(arg(0).i)*2862933555777941757 + 3037000493
	case "dim":
		a := arg(0).a
		k := arg(1).i
		if k < 0 || int(k) >= len(a.dims) {
			return m.errAt(ins.Pos, "dim index %d out of range", k)
		}
		regs[ins.ID] = val{i: a.dims[k]}
	case "printstr":
		m.printPiece(ins.Aux)
	case "printval":
		v := arg(0)
		switch ins.Args[0].Type().Elem {
		case ast.Float:
			m.printPiece(fmt.Sprintf("%g", v.f))
		case ast.Bool:
			m.printPiece(fmt.Sprintf("%t", v.i != 0))
		default:
			m.printPiece(fmt.Sprintf("%d", v.i))
		}
	case "printnl":
		if m.out != nil {
			fmt.Fprintln(m.out)
		}
		m.printedAny = false
	default:
		return m.errAt(ins.Pos, "unknown builtin %q", ins.Builtin)
	}
	return nil
}

func (m *machine) printPiece(s string) {
	if m.out == nil {
		return
	}
	if m.printedAny {
		fmt.Fprint(m.out, " ")
	}
	fmt.Fprint(m.out, s)
	m.printedAny = true
}

func (m *machine) nextRand() uint64 {
	x := m.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.rng = x
	return x
}
