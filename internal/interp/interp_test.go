package interp

import (
	"bytes"
	"strings"
	"testing"

	"kremlin/internal/analysis"
	"kremlin/internal/instrument"
	"kremlin/internal/ir"
	"kremlin/internal/irbuild"
	"kremlin/internal/parser"
	"kremlin/internal/regions"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

type compiled struct {
	mod  *ir.Module
	prog *regions.Program
	mi   *instrument.Module
}

func compile(t *testing.T, src string) compiled {
	t.Helper()
	errs := &source.ErrorList{}
	file := source.NewFile("t.kr", src)
	tree := parser.Parse(file, errs)
	if errs.HasErrors() {
		t.Fatalf("parse: %v", errs.Err())
	}
	info := types.Check(tree, file, errs)
	if errs.HasErrors() {
		t.Fatalf("check: %v", errs.Err())
	}
	mod := irbuild.Build(tree, info, file, errs)
	if errs.HasErrors() {
		t.Fatalf("build: %v", errs.Err())
	}
	analysis.Run(mod)
	prog := regions.Analyze(mod, file)
	return compiled{mod: mod, prog: prog, mi: instrument.Build(prog)}
}

// runOut executes src in plain mode and returns its printed output.
func runOut(t *testing.T, src string) string {
	t.Helper()
	c := compile(t, src)
	var out bytes.Buffer
	if _, err := Run(c.mod, Config{Out: &out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

func expectOut(t *testing.T, src, want string) {
	t.Helper()
	if got := runOut(t, src); got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func wrap(body string) string {
	return "int main() {\n" + body + "\nreturn 0;\n}\n"
}

func TestArithmetic(t *testing.T) {
	expectOut(t, wrap(`print(2+3*4, 10/3, 10%3, 7-10, -(2+3));`), "14 3 1 -3 -5\n")
	expectOut(t, wrap(`print(1.5*4.0, 7.0/2.0, -2.5);`), "6 3.5 -2.5\n")
	expectOut(t, wrap(`print(1.0/0.0);`), "+Inf\n") // float division: IEEE semantics
}

func TestMixedArithmeticWidens(t *testing.T) {
	expectOut(t, wrap(`print(1 + 0.5, 3 * 0.5, float(7)/2);`), "1.5 1.5 3.5\n")
}

func TestComparisonsAndLogic(t *testing.T) {
	expectOut(t, wrap(`print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4, 1 == 2, 1 != 2);`),
		"true true false true false true\n")
	expectOut(t, wrap(`print(true && false, true || false, !true);`), "false true false\n")
	expectOut(t, wrap(`print(1.5 < 2.5, 2.5 == 2.5);`), "true true\n")
}

func TestShortCircuitSideEffects(t *testing.T) {
	src := `
int calls;
bool bump(bool r) { calls = calls + 1; return r; }
int main() {
	bool a = bump(false) && bump(true); // rhs skipped
	bool b = bump(true) || bump(true);  // rhs skipped
	print(a, b, calls);
	return 0;
}`
	expectOut(t, src, "false true 2\n")
}

func TestConversions(t *testing.T) {
	expectOut(t, wrap(`print(int(2.9), int(-2.9), float(3));`), "2 -2 3\n")
}

func TestControlFlow(t *testing.T) {
	expectOut(t, wrap(`
int s = 0;
for (int i = 0; i < 10; i++) {
	if (i == 3) { continue; }
	if (i == 7) { break; }
	s += i;
}
int w = 0;
while (w < 5) { w++; }
print(s, w);`), "18 5\n")
}

func TestNestedLoopsAndElseIf(t *testing.T) {
	expectOut(t, wrap(`
int c = 0;
for (int i = 0; i < 4; i++) {
	for (int j = 0; j < 4; j++) {
		if (i == j) { c += 10; }
		else if (i < j) { c += 1; }
		else { c -= 1; }
	}
}
print(c);`), "40\n")
}

func TestArrays(t *testing.T) {
	expectOut(t, `
int g[3][4];
int main() {
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 4; j++) {
			g[i][j] = i * 10 + j;
		}
	}
	int local[5];
	local[0] = g[2][3];
	local[4] = local[0] + 1;
	print(g[0][0], g[2][3], local[4], dim(g, 0), dim(g, 1), dim(local, 0));
	return 0;
}`, "0 23 24 3 4 5\n")
}

func TestArrayParamsShareStorage(t *testing.T) {
	expectOut(t, `
float m[2][2];
void set(float a[][], int i, int j, float v) { a[i][j] = v; }
float get(float a[][], int i, int j) { return a[i][j]; }
int main() {
	set(m, 1, 1, 42.0);
	print(get(m, 1, 1), m[1][1]);
	return 0;
}`, "42 42\n")
}

func TestLocalArrayLifetime(t *testing.T) {
	// Each call's local array starts zeroed even though the heap region is
	// reused after the frame pops.
	expectOut(t, `
int probe(int fill) {
	int buf[8];
	int old = buf[3];
	buf[3] = fill;
	return old;
}
int main() {
	int a = probe(99);
	int b = probe(5);
	print(a, b);
	return 0;
}`, "0 0\n")
}

func TestRecursion(t *testing.T) {
	expectOut(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
int main() { print(fib(12)); return 0; }`, "144\n")
}

func TestGlobalInitializers(t *testing.T) {
	expectOut(t, `
int a = 2 + 3;
float b = -1.5;
bool c = true;
int main() { print(a, b, c); return 0; }`, "5 -1.5 true\n")
}

func TestBuiltinsMath(t *testing.T) {
	expectOut(t, wrap(`print(sqrt(16.0), fabs(-2.0), floor(2.9), pow(2.0, 10.0));`), "4 2 2 1024\n")
	expectOut(t, wrap(`print(abs(-7), min(3, 1), max(3, 1), min(1.5, 0.5), max(1.5, 0.5));`), "7 1 3 0.5 1.5\n")
	out := runOut(t, wrap(`print(exp(0.0), log(1.0), sin(0.0), cos(0.0));`))
	if out != "1 0 0 1\n" {
		t.Errorf("math builtins: %q", out)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := wrap(`
srand(42);
int a = rand();
float f = frand();
srand(42);
int b = rand();
print(a == b, f >= 0.0 && f < 1.0, a >= 0);`)
	expectOut(t, src, "true true true\n")
}

func TestPrintFormats(t *testing.T) {
	expectOut(t, wrap(`print("mix", 1, 2.5, true, false);`), "mix 1 2.5 true false\n")
	expectOut(t, wrap(`print();`), "\n")
	expectOut(t, wrap(`print(1); print(2);`), "1\n2\n")
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	c := compile(t, src)
	_, err := Run(c.mod, Config{})
	return err
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{wrap(`int x = 1 / (1 - 1); print(x);`), "division by zero"},
		{wrap(`int x = 5 % (2 - 2); print(x);`), "modulo by zero"},
		{`int a[3]; int main() { int i = 5; a[i] = 1; return 0; }`, "out of range"},
		{`int a[3]; int main() { int i = -1; print(a[i]); return 0; }`, "out of range"},
		{wrap(`int n = -2; float b[n]; print(b[0]);`), "must be positive"},
		{`float a[4]; int main() { print(dim(a, 3)); return 0; }`, "dim index"},
	}
	for _, c := range cases {
		err := runErr(t, c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q missing %q", err, c.frag)
		}
	}
}

func TestStepLimit(t *testing.T) {
	c := compile(t, wrap(`while (true) { }`))
	_, err := Run(c.mod, Config{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit", err)
	}
}

const workSample = `
float v[200];
float total;
void fill(int n) {
	for (int i = 0; i < n; i++) {
		v[i] = float(i) * 0.25;
	}
}
void reduce(int n) {
	for (int i = 0; i < n; i++) {
		total = total + v[i];
	}
}
int main() {
	fill(200);
	reduce(200);
	print(total);
	return 0;
}
`

// TestWorkConsistentAcrossModes: plain, gprof, and HCPA runs execute the
// same instructions, so their work counters must agree.
func TestWorkConsistentAcrossModes(t *testing.T) {
	c := compile(t, workSample)
	plain, err := Run(c.mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := Run(c.mod, Config{Mode: Gprof, Prog: c.prog, Instr: c.mi})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := Run(c.mod, Config{Mode: HCPA, Prog: c.prog, Instr: c.mi})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Work != gp.Work || plain.Work != hc.Work {
		t.Errorf("work: plain=%d gprof=%d hcpa=%d", plain.Work, gp.Work, hc.Work)
	}
	if plain.Steps != gp.Steps || plain.Steps != hc.Steps {
		t.Errorf("steps: plain=%d gprof=%d hcpa=%d", plain.Steps, gp.Steps, hc.Steps)
	}
}

// TestGprofProfileShape: gprof mode reports self/total work per region
// with sane invariants.
func TestGprofProfileShape(t *testing.T) {
	c := compile(t, workSample)
	res, err := Run(c.mod, Config{Mode: Gprof, Prog: c.prog, Instr: c.mi})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gprof) == 0 {
		t.Fatal("no gprof entries")
	}
	var mainTotal uint64
	for _, e := range res.Gprof {
		if e.Self > e.Total {
			t.Errorf("region %d: self %d > total %d", e.RegionID, e.Self, e.Total)
		}
		if e.Count <= 0 {
			t.Errorf("region %d: count %d", e.RegionID, e.Count)
		}
		r := c.prog.Regions[e.RegionID]
		if r.Kind == regions.FuncRegion && r.Name == "main" {
			mainTotal = e.Total
		}
	}
	if mainTotal != res.Work {
		t.Errorf("main total %d != work %d", mainTotal, res.Work)
	}
}

// TestHCPAProfileAccounts: the profile's root work equals the measured
// work, and every dictionary entry's children were interned earlier.
func TestHCPAProfileAccounts(t *testing.T) {
	c := compile(t, workSample)
	res, err := Run(c.mod, Config{Mode: HCPA, Prog: c.prog, Instr: c.mi})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if len(p.Roots) != 1 {
		t.Fatalf("roots = %d", len(p.Roots))
	}
	if p.TotalWork() != res.Work {
		t.Errorf("profile work %d != run work %d", p.TotalWork(), res.Work)
	}
	for i, e := range p.Dict.Entries {
		for _, k := range e.Children {
			if int(k.Char) >= i {
				t.Errorf("entry %d references forward child %d", i, k.Char)
			}
			if k.Count <= 0 {
				t.Errorf("entry %d child count %d", i, k.Count)
			}
		}
		if e.CP == 0 || e.CP > e.Work+1 {
			t.Errorf("entry %d: cp=%d work=%d", i, e.CP, e.Work)
		}
	}
	if res.ShadowPages == 0 || res.ShadowWrites == 0 {
		t.Error("shadow memory was never touched")
	}
}

// TestOutputIdenticalWhenInstrumented: instrumentation must not change
// program semantics.
func TestOutputIdenticalWhenInstrumented(t *testing.T) {
	c := compile(t, workSample)
	var plain, instr bytes.Buffer
	if _, err := Run(c.mod, Config{Out: &plain}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c.mod, Config{Mode: HCPA, Prog: c.prog, Instr: c.mi, Out: &instr}); err != nil {
		t.Fatal(err)
	}
	if plain.String() != instr.String() {
		t.Errorf("instrumented output %q != plain %q", instr.String(), plain.String())
	}
}

func TestModeRequiresRegions(t *testing.T) {
	c := compile(t, wrap("print(1);"))
	if _, err := Run(c.mod, Config{Mode: HCPA}); err == nil {
		t.Error("HCPA without region info should fail")
	}
	if _, err := Run(c.mod, Config{Mode: Gprof}); err == nil {
		t.Error("Gprof without region info should fail")
	}
}

// TestPhiSwapSemantics: a swap through a temporary creates mutually
// referencing phis after mem2reg; they must evaluate against the
// pre-state, not sequentially.
func TestPhiSwapSemantics(t *testing.T) {
	expectOut(t, wrap(`
int a = 1;
int b = 100;
for (int i = 0; i < 5; i++) {
	int tmp = a;
	a = b;
	b = tmp;
}
print(a, b);`), "100 1\n") // 5 swaps = odd, so exchanged once net
}

// TestFibonacciPairPhis: the classic simultaneous recurrence.
func TestFibonacciPairPhis(t *testing.T) {
	expectOut(t, wrap(`
int a = 0;
int b = 1;
for (int i = 0; i < 10; i++) {
	int next = a + b;
	a = b;
	b = next;
}
print(a, b);`), "55 89\n")
}

// TestIntOverflowWraps: int arithmetic wraps like two's complement.
func TestIntOverflowWraps(t *testing.T) {
	expectOut(t, wrap(`
int big = 9223372036854775807;
print(big + 1 < 0);`), "true\n")
}

// TestNegativeModulo: Kr follows Go/C99 truncated semantics.
func TestNegativeModulo(t *testing.T) {
	expectOut(t, wrap(`print(-7 % 3, 7 % -3, -7 / 2);`), "-1 1 -3\n")
}

// TestSpecialFloatPrinting: IEEE specials print deterministically.
func TestSpecialFloatPrinting(t *testing.T) {
	expectOut(t, wrap(`
float inf = 1.0 / 0.0;
float nan = inf - inf;
print(inf, -inf, nan == nan);`), "+Inf -Inf false\n")
}

// TestWhileLoopRegionEvents: while lowers to the same region structure as
// for, so profiling it must balance enter/exit events.
func TestWhileLoopRegions(t *testing.T) {
	c := compile(t, wrap(`
int w = 0;
int s = 0;
while (w < 50) {
	s += w;
	w++;
}
print(s);`))
	res, err := Run(c.mod, Config{Mode: HCPA, Prog: c.prog, Instr: c.mi})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.TotalWork() != res.Work {
		t.Errorf("unbalanced region accounting: %d vs %d", res.Profile.TotalWork(), res.Work)
	}
}

// TestDeepRecursionRegions: recursion deepens the region stack past the
// depth window without corrupting accounting.
func TestDeepRecursionRegions(t *testing.T) {
	c := compile(t, `
int down(int n) {
	if (n <= 0) { return 0; }
	return down(n - 1) + 1;
}
int main() { print(down(200)); return 0; }`)
	res, err := Run(c.mod, Config{Mode: HCPA, Prog: c.prog, Instr: c.mi})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.TotalWork() != res.Work {
		t.Errorf("deep recursion broke accounting: %d vs %d", res.Profile.TotalWork(), res.Work)
	}
	var out bytes.Buffer
	if _, err := Run(c.mod, Config{Out: &out}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "200\n" {
		t.Errorf("output %q", out.String())
	}
}
