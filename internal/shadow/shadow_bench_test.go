package shadow

import "testing"

// The shadow write/read path runs once per executed load/store, so its
// per-operation allocation behaviour dominates HCPA overhead. These
// benchmarks pin the steady-state costs the hot-path rewrite targets:
// run with -benchmem and compare allocs/op against the seed numbers in
// EXPERIMENTS.md / CI artifacts.

const benchDepth = 8

func benchVec() Vec {
	v := make(Vec, benchDepth)
	for i := range v {
		v[i] = Entry{Time: uint64(i + 1), Tag: uint64(i + 100)}
	}
	return v
}

// BenchmarkWriteVecSteadyState models a loop body rewriting the same small
// working set over and over — the common case, where the rewrite must not
// allocate at all.
func BenchmarkWriteVecSteadyState(b *testing.B) {
	m := NewMemory()
	src := benchVec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteVec(uint64(i&1023), src, benchDepth)
	}
}

// BenchmarkWriteVecColdPages models a streaming workload touching fresh
// pages (array initialization): page allocation is amortized but the
// per-address cost must stay flat.
func BenchmarkWriteVecColdPages(b *testing.B) {
	src := benchVec()
	b.ReportAllocs()
	b.ResetTimer()
	var m *Memory
	for i := 0; i < b.N; i++ {
		if i&0xFFFF == 0 {
			m = NewMemory() // bound live pages; cost amortizes out
		}
		m.WriteVec(uint64(i&0xFFFF), src, benchDepth)
	}
}

// BenchmarkReadAfterWrite interleaves stores and loads over a small strided
// working set, the load/store mix Step drives.
func BenchmarkReadAfterWrite(b *testing.B) {
	m := NewMemory()
	src := benchVec()
	for a := uint64(0); a < 4096; a += 8 {
		m.WriteVec(a, src, benchDepth)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		a := uint64(i*8) & 4095
		s := m.Load(a)
		sink += s.Read(benchDepth-1, uint64(benchDepth-1+100))
		m.WriteVec(a, src, benchDepth)
	}
	_ = sink
}

// BenchmarkFreeReuse models the per-call frame free the interpreter issues:
// allocate a span, shadow it, free it, repeat. Freed page storage should be
// recycled, not re-allocated.
func BenchmarkFreeReuse(b *testing.B) {
	m := NewMemory()
	src := benchVec()
	const span = 2 * pageSize
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(1 << 16)
		for a := base; a < base+span; a += 512 {
			m.WriteVec(a, src, benchDepth)
		}
		m.Free(base, span)
	}
}
