package shadow

import "testing"

// Edge cases of Memory.Free: ranges straddling page boundaries, sub-page
// frees, double frees, and the page accounting after whole pages are
// released (they move to the pool and must come back clean).

func fillRange(m *Memory, lo, hi, stride uint64) {
	for a := lo; a < hi; a += stride {
		m.WriteVec(a, Vec{{Time: a + 1, Tag: 7}}, 1)
	}
}

func TestFreeStraddlesPageBoundary(t *testing.T) {
	m := NewMemory()
	fillRange(m, 0, 2*pageSize, 64)
	// Free the back half of page 0 and the front half of page 1: both
	// pages survive (partially live), only the range is cleared.
	m.Free(pageSize/2, pageSize)
	if m.NumPages() != 2 {
		t.Fatalf("partial frees released pages: NumPages = %d, want 2", m.NumPages())
	}
	for _, a := range []uint64{0, pageSize/2 - 64} {
		if m.ReadVec(a) == nil {
			t.Errorf("addr %#x below the range lost its shadow", a)
		}
	}
	for _, a := range []uint64{pageSize / 2, pageSize, 3*pageSize/2 - 64} {
		if m.ReadVec(a) != nil {
			t.Errorf("addr %#x inside the freed range still shadowed", a)
		}
	}
	for a := uint64(3 * pageSize / 2); a < 2*pageSize; a += 64 {
		if m.ReadVec(a) == nil {
			t.Fatalf("addr %#x above the range lost its shadow", a)
		}
	}
}

func TestFreeSubPageRange(t *testing.T) {
	m := NewMemory()
	fillRange(m, 0, pageSize, 1)
	m.Free(10, 5) // clears [10, 15) only
	for a := uint64(0); a < pageSize; a++ {
		got := m.ReadVec(a)
		if a >= 10 && a < 15 {
			if got != nil {
				t.Fatalf("addr %d inside sub-page free still shadowed", a)
			}
		} else if got == nil {
			t.Fatalf("addr %d outside sub-page free lost its shadow", a)
		}
	}
	if m.NumPages() != 1 {
		t.Fatalf("sub-page free changed page count: %d", m.NumPages())
	}
}

func TestFreeDouble(t *testing.T) {
	m := NewMemory()
	fillRange(m, 0, 2*pageSize, 128)
	m.Free(0, 2*pageSize)
	if m.NumPages() != 0 {
		t.Fatalf("NumPages after full free = %d, want 0", m.NumPages())
	}
	// Freeing again — whole range, then a sub-range — must be a no-op.
	m.Free(0, 2*pageSize)
	m.Free(100, 10)
	if m.NumPages() != 0 {
		t.Fatalf("double free resurrected pages: %d", m.NumPages())
	}
	if m.ReadVec(128) != nil {
		t.Fatal("double free resurrected shadow state")
	}
}

// TestFreeInvalidatesPageCache: the one-entry page cache must not serve a
// page that Free released.
func TestFreeInvalidatesPageCache(t *testing.T) {
	m := NewMemory()
	m.WriteVec(100, Vec{{1, 1}}, 1) // page 0 is now the cached page
	m.Free(0, pageSize)
	if got := m.ReadVec(100); got != nil {
		t.Fatalf("read through stale page cache returned %v", got)
	}
	if m.NumPages() != 0 {
		t.Fatalf("NumPages = %d, want 0", m.NumPages())
	}
}

// TestFreedPageComesBackClean: pages recycled through the pool must not
// leak the previous tenant's vectors.
func TestFreedPageComesBackClean(t *testing.T) {
	m := NewMemory()
	fillRange(m, 0, pageSize, 1)
	m.Free(0, pageSize)
	// Next page allocation draws from the pool (different page index so
	// the slot offsets line up with the old contents).
	m.WriteVec(5*pageSize+3, Vec{{9, 9}}, 1)
	if m.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", m.NumPages())
	}
	for a := uint64(5 * pageSize); a < 6*pageSize; a++ {
		if a == 5*pageSize+3 {
			continue
		}
		if got := m.ReadVec(a); got != nil {
			t.Fatalf("recycled page leaked stale vector at %#x: %v", a, got)
		}
	}
	if got := m.ReadVec(5*pageSize + 3); got == nil || got[0].Time != 9 {
		t.Fatalf("write to recycled page lost: %v", got)
	}
}
