package shadow

import (
	"testing"
	"testing/quick"
)

func TestVecReadTagRule(t *testing.T) {
	v := Vec{{Time: 10, Tag: 1}, {Time: 20, Tag: 2}}
	if got := v.Read(0, 1); got != 10 {
		t.Errorf("Read(0,1) = %d", got)
	}
	if got := v.Read(0, 99); got != 0 {
		t.Errorf("tag mismatch should read 0, got %d", got)
	}
	if got := v.Read(5, 1); got != 0 {
		t.Errorf("beyond-length read should be 0, got %d", got)
	}
	if got := Vec(nil).Read(0, 1); got != 0 {
		t.Errorf("nil vec read should be 0, got %d", got)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	src := Vec{{Time: 5, Tag: 7}, {Time: 6, Tag: 8}, {Time: 7, Tag: 9}}
	m.WriteVec(0x1234, src, 2) // only first 2 levels
	got := m.ReadVec(0x1234)
	if len(got) != 2 || got[0] != src[0] || got[1] != src[1] {
		t.Errorf("roundtrip = %v", got)
	}
	if m.ReadVec(0x9999) != nil {
		t.Error("unwritten address should read nil")
	}
}

func TestMemoryOverwriteShrinks(t *testing.T) {
	m := NewMemory()
	m.WriteVec(1, Vec{{1, 1}, {2, 2}, {3, 3}}, 3)
	m.WriteVec(1, Vec{{9, 9}}, 1)
	got := m.ReadVec(1)
	if len(got) != 1 || got[0].Time != 9 {
		t.Errorf("overwrite = %v", got)
	}
}

func TestMemoryPagesAllocatedOnDemand(t *testing.T) {
	m := NewMemory()
	if m.NumPages() != 0 {
		t.Error("fresh memory should have no pages")
	}
	m.WriteVec(0, Vec{{1, 1}}, 1)
	m.WriteVec(pageSize-1, Vec{{1, 1}}, 1) // same page
	if m.NumPages() != 1 {
		t.Errorf("pages = %d, want 1", m.NumPages())
	}
	m.WriteVec(pageSize, Vec{{1, 1}}, 1) // next page
	if m.NumPages() != 2 {
		t.Errorf("pages = %d, want 2", m.NumPages())
	}
	if m.PagesAllocated != 2 {
		t.Errorf("PagesAllocated = %d", m.PagesAllocated)
	}
}

func TestFreeWholePages(t *testing.T) {
	m := NewMemory()
	for a := uint64(0); a < 3*pageSize; a += 64 {
		m.WriteVec(a, Vec{{Time: a, Tag: 1}}, 1)
	}
	m.Free(0, 2*pageSize)
	if got := m.ReadVec(10); got != nil {
		t.Errorf("freed address still shadowed: %v", got)
	}
	if got := m.ReadVec(2*pageSize + 64); got == nil {
		t.Error("unfreed address lost its shadow")
	}
	if m.NumPages() != 1 {
		t.Errorf("pages after free = %d, want 1", m.NumPages())
	}
}

func TestFreePartialPage(t *testing.T) {
	m := NewMemory()
	m.WriteVec(100, Vec{{1, 1}}, 1)
	m.WriteVec(200, Vec{{2, 2}}, 1)
	m.Free(150, 100) // clears [150,250)
	if m.ReadVec(100) == nil {
		t.Error("address below the freed range lost")
	}
	if m.ReadVec(200) != nil {
		t.Error("freed address still shadowed")
	}
	m.Free(0, 0) // no-op
}

func TestRegisterTable(t *testing.T) {
	rt := NewRegisterTable(4)
	if rt.Get(2) != nil {
		t.Error("fresh register should be nil")
	}
	rt.Set(2, Vec{{5, 5}, {6, 6}}, 2)
	got := rt.Get(2)
	if len(got) != 2 || got[1].Time != 6 {
		t.Errorf("register roundtrip = %v", got)
	}
	// Set copies: mutating the source must not alias.
	src := Vec{{9, 9}}
	rt.Set(0, src, 1)
	src[0].Time = 100
	if rt.Get(0)[0].Time != 9 {
		t.Error("Set aliased the source slice")
	}
}

// TestMemoryWriteReadProperty: any (addr, vec) write is read back exactly,
// and reads at other addresses within other pages are unaffected.
func TestMemoryWriteReadProperty(t *testing.T) {
	m := NewMemory()
	check := func(addr uint32, times []uint64, tag uint64) bool {
		if len(times) == 0 {
			return true
		}
		if len(times) > 16 {
			times = times[:16]
		}
		v := make(Vec, len(times))
		for i, tm := range times {
			v[i] = Entry{Time: tm, Tag: tag + uint64(i)}
		}
		a := uint64(addr)
		m.WriteVec(a, v, len(v))
		got := m.ReadVec(a)
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
			if got.Read(i, v[i].Tag) != v[i].Time {
				return false
			}
			if got.Read(i, v[i].Tag+12345) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
