// Package shadow implements Kremlin's hierarchical shadow memory (§4.2).
//
// Every shadowed location (a simulated heap address or an SSA register)
// carries a vector of availability times, one per active region-nesting
// depth, because HCPA runs an independent critical path analysis at every
// level of the dynamic region tree. Each time is tagged with the instance
// ID of the region that was active at that depth when the value was
// written; on a read, a tag mismatch means the value was produced before
// the current region began, so for the purposes of that region's analysis
// the value is available at time 0 — this is exactly the paper's mechanism
// for restarting time at region entry without copying the whole table.
//
// Heap shadow state lives in a two-level table (page directory → page),
// dynamically allocated as the simulated address space is touched and
// released again when the program frees the underlying memory.
package shadow

// Entry is one (availability time, region-instance tag) pair.
type Entry struct {
	Time uint64
	Tag  uint64
}

// Vec is a per-depth vector of entries; index i is region-nesting depth i.
type Vec []Entry

// Read returns the availability time of the vector at depth level for the
// region instance tag, applying the tag-mismatch-is-zero rule.
func (v Vec) Read(level int, tag uint64) uint64 {
	if level >= len(v) {
		return 0
	}
	if v[level].Tag != tag {
		return 0
	}
	return v[level].Time
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page struct {
	vecs [pageSize]Vec
}

// Memory is the two-level shadow table over the simulated address space.
type Memory struct {
	pages map[uint64]*page

	// Stats for the compression/overhead experiments.
	PagesAllocated uint64
	Writes         uint64
	Reads          uint64
}

// NewMemory returns an empty shadow memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// ReadVec returns the vector stored at addr, or nil.
func (m *Memory) ReadVec(addr uint64) Vec {
	m.Reads++
	p := m.pages[addr>>pageShift]
	if p == nil {
		return nil
	}
	return p.vecs[addr&pageMask]
}

// WriteVec stores the first n entries of src at addr, reusing the existing
// vector's storage when possible (the common case in loops).
func (m *Memory) WriteVec(addr uint64, src Vec, n int) {
	m.Writes++
	idx := addr >> pageShift
	p := m.pages[idx]
	if p == nil {
		p = &page{}
		m.pages[idx] = p
		m.PagesAllocated++
	}
	dst := p.vecs[addr&pageMask]
	if cap(dst) < n {
		dst = make(Vec, n)
	} else {
		dst = dst[:n]
	}
	copy(dst, src[:n])
	p.vecs[addr&pageMask] = dst
}

// Free clears the shadow state for the address range [base, base+size),
// mirroring the paper's use of free() as a deallocation signal. Pages that
// become fully contained in the range are released to the allocator.
func (m *Memory) Free(base, size uint64) {
	if size == 0 {
		return
	}
	end := base + size
	firstPage := base >> pageShift
	lastPage := (end - 1) >> pageShift
	for pg := firstPage; pg <= lastPage; pg++ {
		p := m.pages[pg]
		if p == nil {
			continue
		}
		pgStart := pg << pageShift
		pgEnd := pgStart + pageSize
		if base <= pgStart && end >= pgEnd {
			delete(m.pages, pg)
			continue
		}
		lo := base
		if lo < pgStart {
			lo = pgStart
		}
		hi := end
		if hi > pgEnd {
			hi = pgEnd
		}
		for a := lo; a < hi; a++ {
			p.vecs[a&pageMask] = nil
		}
	}
}

// NumPages reports the number of live shadow pages.
func (m *Memory) NumPages() int { return len(m.pages) }

// RegisterTable is the directly-addressed shadow table for a function
// frame's SSA values — the paper's "shadow register table for local
// variables", which avoids the two-level lookup on the common local-access
// path.
type RegisterTable struct {
	vecs []Vec
}

// NewRegisterTable sizes a table for n values.
func NewRegisterTable(n int) *RegisterTable {
	return &RegisterTable{vecs: make([]Vec, n)}
}

// Get returns the vector of value id.
func (t *RegisterTable) Get(id int) Vec { return t.vecs[id] }

// Set stores the first n entries of src as the vector of value id,
// reusing storage.
func (t *RegisterTable) Set(id int, src Vec, n int) {
	dst := t.vecs[id]
	if cap(dst) < n {
		dst = make(Vec, n)
	} else {
		dst = dst[:n]
	}
	copy(dst, src[:n])
	t.vecs[id] = dst
}
