// Package shadow implements Kremlin's hierarchical shadow memory (§4.2).
//
// Every shadowed location (a simulated heap address or an SSA register)
// carries a vector of availability times, one per active region-nesting
// depth, because HCPA runs an independent critical path analysis at every
// level of the dynamic region tree. Each time is tagged with the instance
// ID of the region that was active at that depth when the value was
// written; on a read, a tag mismatch means the value was produced before
// the current region began, so for the purposes of that region's analysis
// the value is available at time 0 — this is exactly the paper's mechanism
// for restarting time at region entry without copying the whole table.
//
// Heap shadow state lives in a two-level table (page directory → page),
// dynamically allocated as the simulated address space is touched and
// released again when the program frees the underlying memory. Pages use
// struct-of-arrays fixed-stride storage — one times array and one tags
// array per page instead of one heap-allocated vector per address — so the
// per-instruction write path is a strided copy with no allocation and the
// per-level read walks contiguous memory. A one-entry page cache in front
// of the page directory captures the spatial locality of array kernels,
// and pages released by Free are pooled for the next allocation (the
// interpreter frees every frame's locals on return, so page churn is
// constant in steady state).
package shadow

// Entry is one (availability time, region-instance tag) pair.
type Entry struct {
	Time uint64
	Tag  uint64
}

// Vec is a per-depth vector of entries; index i is region-nesting depth i.
type Vec []Entry

// Read returns the availability time of the vector at depth level for the
// region instance tag, applying the tag-mismatch-is-zero rule.
func (v Vec) Read(level int, tag uint64) uint64 {
	if level >= len(v) {
		return 0
	}
	if v[level].Tag != tag {
		return 0
	}
	return v[level].Time
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1

	// strideQuantum rounds slot strides so small depth fluctuations do not
	// force page regrowth.
	strideQuantum = 4
	// pagePoolCap bounds the number of freed pages kept for reuse.
	pagePoolCap = 32
)

// page is the shadow state of one 4096-address span in struct-of-arrays
// form: slot a's vector lives at times[a*stride : a*stride+nlen[a]] (tags
// parallel). stride grows on demand when a write outgrows it.
type page struct {
	stride int
	nlen   []uint16 // per-slot stored vector length
	times  []uint64
	tags   []uint64
}

func newPage(stride int) *page {
	return &page{
		stride: stride,
		nlen:   make([]uint16, pageSize),
		times:  make([]uint64, pageSize*stride),
		tags:   make([]uint64, pageSize*stride),
	}
}

func roundStride(n int) int {
	if n < strideQuantum {
		n = strideQuantum
	}
	return (n + strideQuantum - 1) &^ (strideQuantum - 1)
}

// grow re-strides the page so every slot can hold n entries.
func (p *page) grow(n int) {
	ns := p.stride * 2
	if ns < n {
		ns = n
	}
	ns = roundStride(ns)
	times := make([]uint64, pageSize*ns)
	tags := make([]uint64, pageSize*ns)
	for slot := 0; slot < pageSize; slot++ {
		l := int(p.nlen[slot])
		if l == 0 {
			continue
		}
		copy(times[slot*ns:], p.times[slot*p.stride:slot*p.stride+l])
		copy(tags[slot*ns:], p.tags[slot*p.stride:slot*p.stride+l])
	}
	p.stride, p.times, p.tags = ns, times, tags
}

// reset clears every slot (storage is kept for reuse).
func (p *page) reset() {
	for i := range p.nlen {
		p.nlen[i] = 0
	}
}

// Memory is the two-level shadow table over the simulated address space.
type Memory struct {
	pages map[uint64]*page

	// One-entry cache of the last page touched; valid while lastPg != nil.
	lastIdx uint64
	lastPg  *page

	pool []*page

	// Stats for the compression/overhead experiments.
	PagesAllocated uint64
	Writes         uint64
	Reads          uint64
}

// NewMemory returns an empty shadow memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// lookup returns the page holding addr, or nil, through the one-entry cache.
func (m *Memory) lookup(idx uint64) *page {
	if m.lastPg != nil && m.lastIdx == idx {
		return m.lastPg
	}
	p := m.pages[idx]
	if p != nil {
		m.lastIdx, m.lastPg = idx, p
	}
	return p
}

// Slot is a borrowed, read-only view of the vector stored at one address.
// It is valid only until the next write or free on the Memory.
type Slot struct {
	Times []uint64
	Tags  []uint64
}

// Len returns the number of stored levels.
func (s Slot) Len() int { return len(s.Times) }

// Read returns the availability time at depth level for the region
// instance tag, applying the tag-mismatch-is-zero rule.
func (s Slot) Read(level int, tag uint64) uint64 {
	if level >= len(s.Times) || s.Tags[level] != tag {
		return 0
	}
	return s.Times[level]
}

// Load returns a borrowed view of the vector at addr (zero-length if the
// address was never written). This is the allocation-free read path.
func (m *Memory) Load(addr uint64) Slot {
	m.Reads++
	p := m.lookup(addr >> pageShift)
	if p == nil {
		return Slot{}
	}
	slot := int(addr & pageMask)
	n := int(p.nlen[slot])
	if n == 0 {
		return Slot{}
	}
	base := slot * p.stride
	return Slot{Times: p.times[base : base+n], Tags: p.tags[base : base+n]}
}

// ReadVec returns a copy of the vector stored at addr, or nil. Convenience
// form of Load for tests and non-hot callers.
func (m *Memory) ReadVec(addr uint64) Vec {
	s := m.Load(addr)
	if s.Len() == 0 {
		return nil
	}
	v := make(Vec, s.Len())
	for i := range v {
		v[i] = Entry{Time: s.Times[i], Tag: s.Tags[i]}
	}
	return v
}

// WriteVec stores the first n entries of src at addr. The entries are
// copied into the page's strided storage; src is never retained.
func (m *Memory) WriteVec(addr uint64, src Vec, n int) {
	m.Writes++
	idx := addr >> pageShift
	p := m.lookup(idx)
	if p == nil {
		p = m.newPageFor(n)
		m.pages[idx] = p
		m.lastIdx, m.lastPg = idx, p
		m.PagesAllocated++
	}
	if n > p.stride {
		p.grow(n)
	}
	slot := int(addr & pageMask)
	base := slot * p.stride
	times := p.times[base : base+n]
	tags := p.tags[base : base+n]
	for i := 0; i < n; i++ {
		times[i] = src[i].Time
		tags[i] = src[i].Tag
	}
	p.nlen[slot] = uint16(n)
}

// newPageFor returns a cleared page able to hold n-entry vectors, reusing
// a pooled page when one is available.
func (m *Memory) newPageFor(n int) *page {
	if l := len(m.pool); l > 0 {
		p := m.pool[l-1]
		m.pool = m.pool[:l-1]
		if n > p.stride {
			p.grow(n)
		}
		return p
	}
	return newPage(roundStride(n))
}

// release returns a page to the pool (cleared) or drops it.
func (m *Memory) release(p *page) {
	if len(m.pool) < pagePoolCap {
		p.reset()
		m.pool = append(m.pool, p)
	}
}

// Free clears the shadow state for the address range [base, base+size),
// mirroring the paper's use of free() as a deallocation signal. Pages that
// become fully contained in the range are released to the page pool.
func (m *Memory) Free(base, size uint64) {
	if size == 0 {
		return
	}
	end := base + size
	firstPage := base >> pageShift
	lastPage := (end - 1) >> pageShift
	for pg := firstPage; pg <= lastPage; pg++ {
		p := m.pages[pg]
		if p == nil {
			continue
		}
		pgStart := pg << pageShift
		pgEnd := pgStart + pageSize
		if base <= pgStart && end >= pgEnd {
			delete(m.pages, pg)
			if m.lastPg == p {
				m.lastPg = nil
			}
			m.release(p)
			continue
		}
		lo := base
		if lo < pgStart {
			lo = pgStart
		}
		hi := end
		if hi > pgEnd {
			hi = pgEnd
		}
		for a := lo; a < hi; a++ {
			p.nlen[a&pageMask] = 0
		}
	}
}

// NumPages reports the number of live shadow pages.
func (m *Memory) NumPages() int { return len(m.pages) }

// RegisterTable is the directly-addressed shadow table for a function
// frame's SSA values — the paper's "shadow register table for local
// variables", which avoids the two-level lookup on the common local-access
// path.
type RegisterTable struct {
	vecs []Vec
}

// NewRegisterTable sizes a table for n values.
func NewRegisterTable(n int) *RegisterTable {
	return &RegisterTable{vecs: make([]Vec, n)}
}

// Get returns the vector of value id.
func (t *RegisterTable) Get(id int) Vec { return t.vecs[id] }

// Set stores the first n entries of src as the vector of value id,
// reusing storage.
func (t *RegisterTable) Set(id int, src Vec, n int) {
	dst := t.vecs[id]
	if cap(dst) < n {
		dst = make(Vec, n)
	} else {
		dst = dst[:n]
	}
	copy(dst, src[:n])
	t.vecs[id] = dst
}

// Reset empties the table and resizes it for n values, keeping each slot's
// storage for reuse (a zero-length vector reads as all-zero times). Used
// by the frame pool: a recycled frame must not read the previous frame's
// availability times.
func (t *RegisterTable) Reset(n int) {
	if cap(t.vecs) < n {
		t.vecs = make([]Vec, n)
		return
	}
	t.vecs = t.vecs[:n]
	for i, v := range t.vecs {
		if v != nil {
			t.vecs[i] = v[:0]
		}
	}
}
