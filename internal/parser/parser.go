// Package parser implements the recursive-descent parser for Kr.
package parser

import (
	"strconv"

	"kremlin/internal/ast"
	"kremlin/internal/lexer"
	"kremlin/internal/source"
	"kremlin/internal/token"
)

// Parse scans and parses a Kr file, reporting problems to errs.
func Parse(file *source.File, errs *source.ErrorList) *ast.File {
	p := &parser{file: file, errs: errs, toks: lexer.New(file, errs).ScanAll()}
	return p.parseFile()
}

// Nesting limits. The parser is recursive-descent, so unbounded nesting
// (a few megabytes of "(" or "{") would exhaust the goroutine stack —
// found by fuzzing. Past these limits the parser reports a diagnostic and
// recovers instead of recursing further. The limits are far above anything
// a real program uses but low enough that every later recursive stage
// (printer, type checker, IR builder) stays within an ordinary stack.
const (
	maxExprDepth = 4096
	maxStmtDepth = 1024
)

type parser struct {
	file *source.File
	errs *source.ErrorList
	toks []token.Token
	i    int

	exprDepth     int
	stmtDepth     int
	depthReported bool
}

func (p *parser) tok() token.Token { return p.toks[p.i] }
func (p *parser) kind() token.Kind { return p.toks[p.i].Kind }
func (p *parser) peek() token.Kind {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1].Kind
	}
	return token.EOF
}

func (p *parser) next() token.Token {
	t := p.toks[p.i]
	if t.Kind != token.EOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(off int, format string, args ...interface{}) {
	p.errs.Add(p.file.Name, p.file.Pos(off), format, args...)
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok()
	if t.Kind != k {
		p.errorf(t.Offset, "expected %q, found %q", k.String(), t.Kind.String())
		return token.Token{Kind: k, Offset: t.Offset}
	}
	return p.next()
}

// depthExceeded reports one "nested too deeply" diagnostic per file.
func (p *parser) depthExceeded(off int, what string, limit int) {
	if p.depthReported {
		return
	}
	p.depthReported = true
	p.errorf(off, "%s nested too deeply (limit %d)", what, limit)
}

// skipBalanced consumes tokens up to and including the brace matching an
// already-consumed LBRACE, returning the closing brace's offset. Used to
// recover from over-deep blocks without recursing.
func (p *parser) skipBalanced() int {
	depth := 1
	for {
		switch p.kind() {
		case token.EOF:
			return p.tok().Offset
		case token.LBRACE:
			depth++
		case token.RBRACE:
			depth--
			if depth == 0 {
				return p.next().Offset
			}
		}
		p.next()
	}
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *parser) sync() {
	for {
		switch p.kind() {
		case token.EOF, token.RBRACE:
			return
		case token.SEMICOLON:
			p.next()
			return
		}
		p.next()
	}
}

func basicKind(k token.Kind) ast.BasicKind {
	switch k {
	case token.INT_KW:
		return ast.Int
	case token.FLOAT_KW:
		return ast.Float
	case token.BOOL_KW:
		return ast.Bool
	case token.VOID:
		return ast.Void
	}
	return ast.Invalid
}

func (p *parser) parseFile() *ast.File {
	f := &ast.File{Name: p.file.Name}
	for p.kind() != token.EOF {
		if !p.kind().IsTypeKeyword() {
			p.errorf(p.tok().Offset, "expected declaration, found %q", p.kind().String())
			before := p.i
			p.sync()
			if p.i == before { // e.g. a stray '}' at top level: force progress
				p.next()
			}
			continue
		}
		elem := basicKind(p.next().Kind)
		name := p.expect(token.IDENT)
		if p.kind() == token.LPAREN {
			f.Funcs = append(f.Funcs, p.parseFuncRest(elem, name))
		} else {
			f.Globals = append(f.Globals, p.parseVarRest(elem, name))
		}
	}
	return f
}

// parseVarRest parses a variable declaration after "type name".
func (p *parser) parseVarRest(elem ast.BasicKind, name token.Token) *ast.VarDecl {
	d := &ast.VarDecl{NamePos: name.Offset, Name: name.Lit, Elem: elem}
	for p.kind() == token.LBRACK {
		p.next()
		d.Dims = append(d.Dims, p.parseExpr())
		p.expect(token.RBRACK)
	}
	if p.kind() == token.ASSIGN {
		if len(d.Dims) > 0 {
			p.errorf(p.tok().Offset, "array %q cannot have an initializer", d.Name)
		}
		p.next()
		d.Init = p.parseExpr()
	}
	semi := p.expect(token.SEMICOLON)
	d.EndOff = semi.Offset + 1
	return d
}

func (p *parser) parseFuncRest(ret ast.BasicKind, name token.Token) *ast.FuncDecl {
	d := &ast.FuncDecl{NamePos: name.Offset, Name: name.Lit, Ret: ret}
	p.expect(token.LPAREN)
	for p.kind() != token.RPAREN && p.kind() != token.EOF {
		if len(d.Params) > 0 {
			p.expect(token.COMMA)
		}
		if !p.kind().IsTypeKeyword() || p.kind() == token.VOID {
			p.errorf(p.tok().Offset, "expected parameter type")
			p.sync()
			break
		}
		elem := basicKind(p.next().Kind)
		pn := p.expect(token.IDENT)
		param := &ast.ParamDecl{NamePos: pn.Offset, Name: pn.Lit, Elem: elem}
		for p.kind() == token.LBRACK {
			p.next()
			p.expect(token.RBRACK)
			param.NumDims++
		}
		d.Params = append(d.Params, param)
	}
	p.expect(token.RPAREN)
	d.Body = p.parseBlock()
	return d
}

func (p *parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBRACE)
	b := &ast.Block{LbracePos: lb.Offset}
	if p.stmtDepth >= maxStmtDepth {
		p.depthExceeded(lb.Offset, "statement", maxStmtDepth)
		b.RbracePos = p.skipBalanced()
		return b
	}
	p.stmtDepth++
	defer func() { p.stmtDepth-- }()
	for p.kind() != token.RBRACE && p.kind() != token.EOF {
		before := p.i
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.i == before { // no progress: skip the offending token
			p.next()
		}
	}
	rb := p.expect(token.RBRACE)
	b.RbracePos = rb.Offset
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.kind() {
	case token.LBRACE:
		return p.parseBlock()
	case token.INT_KW, token.FLOAT_KW, token.BOOL_KW:
		elem := basicKind(p.next().Kind)
		name := p.expect(token.IDENT)
		return &ast.DeclStmt{Decl: p.parseVarRest(elem, name)}
	case token.IF:
		return p.parseIf()
	case token.FOR:
		return p.parseFor()
	case token.WHILE:
		return p.parseWhile()
	case token.BREAK:
		t := p.next()
		p.expect(token.SEMICOLON)
		return &ast.BreakStmt{KwPos: t.Offset}
	case token.CONTINUE:
		t := p.next()
		p.expect(token.SEMICOLON)
		return &ast.ContinueStmt{KwPos: t.Offset}
	case token.RETURN:
		t := p.next()
		s := &ast.ReturnStmt{KwPos: t.Offset}
		if p.kind() != token.SEMICOLON {
			s.Result = p.parseExpr()
		}
		semi := p.expect(token.SEMICOLON)
		s.EndOff = semi.Offset + 1
		return s
	}
	s := p.parseSimpleStmt()
	p.expect(token.SEMICOLON)
	return s
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// (without the trailing semicolon, so for-headers can reuse it).
func (p *parser) parseSimpleStmt() ast.Stmt {
	x := p.parseExpr()
	switch p.kind() {
	case token.ASSIGN, token.ADDASSIGN, token.SUBASSIGN, token.MULASSIGN, token.QUOASSIGN:
		op := p.next().Kind
		rhs := p.parseExpr()
		return &ast.AssignStmt{LHS: x, Op: op, RHS: rhs}
	case token.INC, token.DEC:
		op := p.next().Kind
		return &ast.IncDecStmt{LHS: x, Op: op}
	}
	return &ast.ExprStmt{X: x}
}

func (p *parser) parseIf() ast.Stmt {
	// else-if chains recurse without entering a new block, so they need
	// their own depth guard.
	if p.stmtDepth >= maxStmtDepth {
		t := p.expect(token.IF)
		p.depthExceeded(t.Offset, "statement", maxStmtDepth)
		p.sync()
		return &ast.Block{LbracePos: t.Offset, RbracePos: t.Offset}
	}
	p.stmtDepth++
	defer func() { p.stmtDepth-- }()
	t := p.expect(token.IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	s := &ast.IfStmt{IfPos: t.Offset, Cond: cond, Then: p.parseBlock()}
	if p.kind() == token.ELSE {
		p.next()
		if p.kind() == token.IF {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *parser) parseFor() ast.Stmt {
	t := p.expect(token.FOR)
	p.expect(token.LPAREN)
	s := &ast.ForStmt{ForPos: t.Offset}
	if p.kind() != token.SEMICOLON {
		if p.kind().IsTypeKeyword() {
			elem := basicKind(p.next().Kind)
			name := p.expect(token.IDENT)
			d := &ast.VarDecl{NamePos: name.Offset, Name: name.Lit, Elem: elem}
			if p.kind() == token.ASSIGN {
				p.next()
				d.Init = p.parseExpr()
			}
			d.EndOff = p.tok().Offset
			s.Init = &ast.DeclStmt{Decl: d}
		} else {
			s.Init = p.parseSimpleStmt()
		}
	}
	p.expect(token.SEMICOLON)
	if p.kind() != token.SEMICOLON {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	if p.kind() != token.RPAREN {
		s.Post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	s.Body = p.parseBlock()
	return s
}

func (p *parser) parseWhile() ast.Stmt {
	t := p.expect(token.WHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	return &ast.WhileStmt{WhilePos: t.Offset, Cond: cond, Body: p.parseBlock()}
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	if p.exprDepth >= maxExprDepth {
		p.depthExceeded(p.tok().Offset, "expression", maxExprDepth)
		t := p.next() // consume: callers' loops must see progress
		return &ast.IntLit{LitPos: t.Offset, Text: "0"}
	}
	p.exprDepth++
	defer func() { p.exprDepth-- }()
	x := p.parseUnary()
	for {
		op := p.kind()
		prec := op.Precedence()
		if prec < minPrec {
			return x
		}
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	// Unary chains ("----x") recurse without passing through parseBinary.
	if p.exprDepth >= maxExprDepth {
		p.depthExceeded(p.tok().Offset, "expression", maxExprDepth)
		t := p.next()
		return &ast.IntLit{LitPos: t.Offset, Text: "0"}
	}
	p.exprDepth++
	defer func() { p.exprDepth-- }()
	switch p.kind() {
	case token.SUB:
		t := p.next()
		return &ast.UnaryExpr{OpPos: t.Offset, Op: token.SUB, X: p.parseUnary()}
	case token.NOT:
		t := p.next()
		return &ast.UnaryExpr{OpPos: t.Offset, Op: token.NOT, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.tok()
	var x ast.Expr
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Offset, "invalid integer literal %q", t.Lit)
		}
		x = &ast.IntLit{LitPos: t.Offset, Value: v, Text: t.Lit}
	case token.FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(t.Offset, "invalid float literal %q", t.Lit)
		}
		x = &ast.FloatLit{LitPos: t.Offset, Value: v, Text: t.Lit}
	case token.TRUE:
		p.next()
		x = &ast.BoolLit{LitPos: t.Offset, Value: true}
	case token.FALSE:
		p.next()
		x = &ast.BoolLit{LitPos: t.Offset, Value: false}
	case token.STRING:
		p.next()
		x = &ast.StringLit{LitPos: t.Offset, Value: t.Lit, EndOff: t.Offset + len(t.Lit) + 2}
	case token.LPAREN:
		p.next()
		x = p.parseExpr()
		p.expect(token.RPAREN)
	case token.IDENT, token.INT_KW, token.FLOAT_KW:
		// int(...) / float(...) conversions parse as calls.
		name := t.Lit
		if t.Kind != token.IDENT {
			name = t.Kind.String()
		}
		p.next()
		if p.kind() == token.LPAREN {
			x = p.parseCallRest(t.Offset, name)
		} else if t.Kind != token.IDENT {
			p.errorf(t.Offset, "type keyword %q used as value", name)
			x = &ast.IntLit{LitPos: t.Offset, Text: "0"}
		} else {
			x = &ast.Ident{NamePos: t.Offset, Name: name}
		}
	default:
		p.errorf(t.Offset, "expected expression, found %q", t.Kind.String())
		p.next()
		return &ast.IntLit{LitPos: t.Offset, Text: "0"}
	}
	for p.kind() == token.LBRACK {
		p.next()
		idx := p.parseExpr()
		rb := p.expect(token.RBRACK)
		x = &ast.IndexExpr{X: x, Index: idx, EndOff: rb.Offset + 1}
	}
	return x
}

func (p *parser) parseCallRest(namePos int, name string) ast.Expr {
	p.expect(token.LPAREN)
	call := &ast.CallExpr{NamePos: namePos, Name: name}
	for p.kind() != token.RPAREN && p.kind() != token.EOF {
		if len(call.Args) > 0 {
			p.expect(token.COMMA)
		}
		before := p.i
		call.Args = append(call.Args, p.parseExpr())
		if p.i == before { // no progress: skip the offending token
			p.next()
		}
	}
	rp := p.expect(token.RPAREN)
	call.EndOff = rp.Offset + 1
	return call
}
