package parser

import (
	"strings"
	"testing"

	"kremlin/internal/ast"
	"kremlin/internal/source"
)

// FuzzParse feeds arbitrary text to the parser. The contract under
// fuzzing: never panic, never loop, bound diagnostic storage, and — when
// the input parses cleanly — produce a tree whose canonical rendering
// re-parses to the same rendering (the printer fixpoint).
func FuzzParse(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add(`int g[10];
int main() {
	for (int i = 0; i < 10; i++) { g[i] = i * 2; }
	if (g[3] > 4) { print("hi", g[3]); } else { g[0]++; }
	while (g[0] < 5) { g[0] += 1; break; }
	return g[0];
}`)
	f.Add("float f(float x[], int n) { return x[n % dim(x, 0)]; }")
	f.Add("int main() { return (1 + 2) * -3 / 4 % 5; }")
	f.Add("void broken( { if while } )")
	f.Add(strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64))
	f.Add(strings.Repeat("{", 64) + strings.Repeat("}", 64))
	f.Fuzz(func(t *testing.T, src string) {
		errs := &source.ErrorList{}
		tree := Parse(source.NewFile("fuzz.kr", src), errs)
		if len(errs.Diags) > source.MaxDiags {
			t.Fatalf("%d stored diagnostics exceed the cap %d", len(errs.Diags), source.MaxDiags)
		}
		if errs.HasErrors() {
			return
		}
		printed := ast.Print(tree)
		errs2 := &source.ErrorList{}
		tree2 := Parse(source.NewFile("printed.kr", printed), errs2)
		if errs2.HasErrors() {
			t.Fatalf("canonical rendering does not re-parse: %v\n--- rendering ---\n%s", errs2, printed)
		}
		if again := ast.Print(tree2); again != printed {
			t.Fatalf("printer not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
	})
}
