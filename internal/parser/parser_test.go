package parser

import (
	"testing"
	"testing/quick"

	"kremlin/internal/ast"
	"kremlin/internal/source"
	"kremlin/internal/token"
)

func parse(t *testing.T, src string) (*ast.File, *source.ErrorList) {
	t.Helper()
	errs := &source.ErrorList{}
	f := Parse(source.NewFile("t.kr", src), errs)
	return f, errs
}

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	f, errs := parse(t, src)
	if errs.HasErrors() {
		t.Fatalf("parse failed: %v", errs.Err())
	}
	return f
}

func mainBody(t *testing.T, stmts string) *ast.FuncDecl {
	t.Helper()
	f := parseOK(t, "int main() {\n"+stmts+"\nreturn 0;\n}")
	if len(f.Funcs) != 1 {
		t.Fatalf("expected 1 func, got %d", len(f.Funcs))
	}
	return f.Funcs[0]
}

func TestGlobals(t *testing.T) {
	f := parseOK(t, `
int n = 5;
float grid[10][20];
bool flag;
int main() { return 0; }
`)
	if len(f.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(f.Globals))
	}
	if f.Globals[0].Name != "n" || f.Globals[0].Init == nil {
		t.Errorf("global n malformed: %+v", f.Globals[0])
	}
	if g := f.Globals[1]; g.Elem != ast.Float || len(g.Dims) != 2 {
		t.Errorf("grid: elem=%v dims=%d", g.Elem, len(g.Dims))
	}
	if f.Globals[2].Elem != ast.Bool {
		t.Errorf("flag elem = %v", f.Globals[2].Elem)
	}
}

func TestFunctionParams(t *testing.T) {
	f := parseOK(t, `void f(int a, float b[][], bool c) {} int main() { return 0; }`)
	fn := f.Funcs[0]
	if fn.Ret != ast.Void || len(fn.Params) != 3 {
		t.Fatalf("func f: ret=%v params=%d", fn.Ret, len(fn.Params))
	}
	if fn.Params[1].NumDims != 2 || fn.Params[1].Elem != ast.Float {
		t.Errorf("param b: %+v", fn.Params[1])
	}
	if fn.Params[0].NumDims != 0 {
		t.Errorf("param a should be scalar")
	}
}

func TestPrecedence(t *testing.T) {
	fn := mainBody(t, "int x = 1 + 2 * 3;")
	decl := fn.Body.Stmts[0].(*ast.DeclStmt)
	add, ok := decl.Decl.Init.(*ast.BinaryExpr)
	if !ok || add.Op != token.ADD {
		t.Fatalf("top op = %+v, want +", decl.Decl.Init)
	}
	mul, ok := add.Y.(*ast.BinaryExpr)
	if !ok || mul.Op != token.MUL {
		t.Fatalf("rhs = %+v, want *", add.Y)
	}
}

func TestLogicalPrecedence(t *testing.T) {
	fn := mainBody(t, "bool b = 1 < 2 && 3 < 4 || false;")
	decl := fn.Body.Stmts[0].(*ast.DeclStmt)
	or, ok := decl.Decl.Init.(*ast.BinaryExpr)
	if !ok || or.Op != token.LOR {
		t.Fatalf("top op should be ||, got %+v", decl.Decl.Init)
	}
	and, ok := or.X.(*ast.BinaryExpr)
	if !ok || and.Op != token.LAND {
		t.Fatalf("lhs should be &&")
	}
}

func TestUnaryAndParens(t *testing.T) {
	fn := mainBody(t, "int x = -(1 + 2);")
	decl := fn.Body.Stmts[0].(*ast.DeclStmt)
	neg, ok := decl.Decl.Init.(*ast.UnaryExpr)
	if !ok || neg.Op != token.SUB {
		t.Fatalf("want unary minus, got %+v", decl.Decl.Init)
	}
	if _, ok := neg.X.(*ast.BinaryExpr); !ok {
		t.Fatalf("parenthesized sum lost: %+v", neg.X)
	}
}

func TestIndexingNests(t *testing.T) {
	fn := mainBody(t, "int x = a[i][j+1];")
	decl := fn.Body.Stmts[0].(*ast.DeclStmt)
	outer, ok := decl.Decl.Init.(*ast.IndexExpr)
	if !ok {
		t.Fatalf("want index expr, got %T", decl.Decl.Init)
	}
	inner, ok := outer.X.(*ast.IndexExpr)
	if !ok {
		t.Fatalf("want nested index, got %T", outer.X)
	}
	if id, ok := inner.X.(*ast.Ident); !ok || id.Name != "a" {
		t.Fatalf("base = %+v", inner.X)
	}
}

func TestCallsAndConversions(t *testing.T) {
	fn := mainBody(t, "float y = sqrt(float(3) + pow(2.0, 3.0));")
	decl := fn.Body.Stmts[0].(*ast.DeclStmt)
	call, ok := decl.Decl.Init.(*ast.CallExpr)
	if !ok || call.Name != "sqrt" || len(call.Args) != 1 {
		t.Fatalf("call = %+v", decl.Decl.Init)
	}
}

func TestStatements(t *testing.T) {
	fn := mainBody(t, `
int i = 0;
i = i + 1;
i += 2;
i++;
i--;
if (i > 0) { i = 1; } else if (i < 0) { i = 2; } else { i = 3; }
while (i < 10) { i++; }
for (int j = 0; j < 5; j++) { if (j == 2) { continue; } if (j == 4) { break; } }
for (;;) { break; }
print("x", i);
`)
	if len(fn.Body.Stmts) != 11 { // 10 + return
		t.Fatalf("stmts = %d, want 11", len(fn.Body.Stmts))
	}
	ifStmt := fn.Body.Stmts[5].(*ast.IfStmt)
	if _, ok := ifStmt.Else.(*ast.IfStmt); !ok {
		t.Errorf("else-if not chained: %T", ifStmt.Else)
	}
	forStmt := fn.Body.Stmts[7].(*ast.ForStmt)
	if forStmt.Init == nil || forStmt.Cond == nil || forStmt.Post == nil {
		t.Errorf("for header incomplete: %+v", forStmt)
	}
	inf := fn.Body.Stmts[8].(*ast.ForStmt)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Errorf("for(;;) should have empty header")
	}
}

func TestLocalArrayDecl(t *testing.T) {
	fn := mainBody(t, "float buf[n][m];")
	decl := fn.Body.Stmts[0].(*ast.DeclStmt)
	if len(decl.Decl.Dims) != 2 {
		t.Fatalf("dims = %d, want 2", len(decl.Decl.Dims))
	}
}

func TestArrayInitializerRejected(t *testing.T) {
	_, errs := parse(t, "int main() { int a[3] = 5; return 0; }")
	if !errs.HasErrors() {
		t.Error("array initializer should be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main() { return 0 }",                      // missing semicolon
		"int main() { if i > 0 {} }",                   // missing parens
		"int main() { int = 5; }",                      // missing name
		"int main() { x = ; }",                         // missing expression
		"garbage at top level",                         // bad decl
		"int main() { for (int i = 0 i < 3; i++) {} }", // bad for header
	}
	for _, src := range cases {
		_, errs := parse(t, src)
		if !errs.HasErrors() {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestErrorRecovery(t *testing.T) {
	// After a bad statement the parser must still see later declarations.
	f, errs := parse(t, `
int main() { ???; return 0; }
void after() { }
`)
	if !errs.HasErrors() {
		t.Fatal("expected errors")
	}
	found := false
	for _, fn := range f.Funcs {
		if fn.Name == "after" {
			found = true
		}
	}
	if !found {
		t.Error("recovery lost the following declaration")
	}
}

func TestNodeExtents(t *testing.T) {
	src := "int main() { return 42; }"
	f := parseOK(t, src)
	fn := f.Funcs[0]
	if fn.Pos() != 4 { // offset of "main"
		t.Errorf("func pos = %d", fn.Pos())
	}
	if fn.End() != len(src) {
		t.Errorf("func end = %d, want %d", fn.End(), len(src))
	}
	ret := fn.Body.Stmts[0].(*ast.ReturnStmt)
	if src[ret.Pos():ret.Pos()+6] != "return" {
		t.Errorf("return pos = %d", ret.Pos())
	}
}

// TestParserTotalityProperty: the parser never panics and always
// terminates, whatever the input.
func TestParserTotalityProperty(t *testing.T) {
	check := func(input []byte) bool {
		errs := &source.ErrorList{}
		f := Parse(source.NewFile("fuzz.kr", string(input)), errs)
		return f != nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParserStructuredFuzzProperty throws token-shaped noise at the parser.
func TestParserStructuredFuzzProperty(t *testing.T) {
	pieces := []string{
		"int", "float", "void", "main", "x", "(", ")", "{", "}", "[", "]",
		";", ",", "=", "+", "for", "if", "else", "while", "return", "1", "2.5",
		"&&", "||", "==", "<", "print", `"s"`, "break", "continue",
	}
	check := func(idxs []uint8) bool {
		src := ""
		for _, i := range idxs {
			src += pieces[int(i)%len(pieces)] + " "
		}
		errs := &source.ErrorList{}
		return Parse(source.NewFile("fuzz.kr", src), errs) != nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
