package krgen_test

// Differential tests over randomly generated programs: the strongest
// correctness evidence in the repository. Every seed must compile, run,
// and behave identically across execution modes, and every profile must
// satisfy the HCPA invariants.

import (
	"bytes"
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/krgen"
)

const seeds = 120

func generate(t *testing.T, seed int64) string {
	t.Helper()
	return krgen.Generate(seed, krgen.Default())
}

func compileSeed(t *testing.T, seed int64, o kremlin.CompileOptions) *kremlin.Program {
	t.Helper()
	src := generate(t, seed)
	prog, err := kremlin.CompileWith("gen.kr", src, o)
	if err != nil {
		t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
	}
	return prog
}

func runOut(t *testing.T, seed int64, prog *kremlin.Program) (string, uint64) {
	t.Helper()
	var buf bytes.Buffer
	res, err := prog.Run(&kremlin.RunConfig{Out: &buf, MaxSteps: 50_000_000})
	if err != nil {
		t.Fatalf("seed %d: run: %v\nsource:\n%s", seed, err, generate(t, seed))
	}
	return buf.String(), res.Work
}

// TestGeneratedProgramsCompileAndRun: every seed yields a valid,
// terminating program that prints its digest.
func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		prog := compileSeed(t, seed, kremlin.CompileOptions{})
		out, work := runOut(t, seed, prog)
		if !strings.HasPrefix(out, "digest ") {
			t.Fatalf("seed %d: output %q", seed, out)
		}
		if work == 0 {
			t.Fatalf("seed %d: no work", seed)
		}
	}
}

// TestInstrumentationPreservesSemantics: plain, gprof, and HCPA executions
// print identical output and count identical work.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		prog := compileSeed(t, seed, kremlin.CompileOptions{})
		plainOut, plainWork := runOut(t, seed, prog)

		var gpBuf bytes.Buffer
		gpRes, err := prog.RunGprof(&kremlin.RunConfig{Out: &gpBuf, MaxSteps: 50_000_000})
		if err != nil {
			t.Fatalf("seed %d: gprof: %v", seed, err)
		}
		if gpBuf.String() != plainOut || gpRes.Work != plainWork {
			t.Fatalf("seed %d: gprof diverged (out %q vs %q, work %d vs %d)",
				seed, gpBuf.String(), plainOut, gpRes.Work, plainWork)
		}

		var hcBuf bytes.Buffer
		prof, hcRes, err := prog.Profile(&kremlin.RunConfig{Out: &hcBuf, MaxSteps: 50_000_000})
		if err != nil {
			t.Fatalf("seed %d: hcpa: %v", seed, err)
		}
		if hcBuf.String() != plainOut || hcRes.Work != plainWork {
			t.Fatalf("seed %d: hcpa diverged (out %q vs %q, work %d vs %d)",
				seed, hcBuf.String(), plainOut, hcRes.Work, plainWork)
		}
		if prof.TotalWork() != plainWork {
			t.Fatalf("seed %d: profile work %d != %d", seed, prof.TotalWork(), plainWork)
		}
	}
}

// TestOptimizerPreservesSemantics: the optimizer never changes output and
// never increases work.
func TestOptimizerPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		plain := compileSeed(t, seed, kremlin.CompileOptions{})
		optd := compileSeed(t, seed, kremlin.CompileOptions{Optimize: true})
		po, pw := runOut(t, seed, plain)
		oo, ow := runOut(t, seed, optd)
		if po != oo {
			t.Fatalf("seed %d: optimizer changed output %q -> %q\nsource:\n%s",
				seed, po, oo, generate(t, seed))
		}
		if ow > pw {
			t.Fatalf("seed %d: optimizer increased work %d -> %d", seed, pw, ow)
		}
	}
}

// TestProfileInvariantsOnGeneratedPrograms: SP/TP bounds, child ordering,
// and serialization round-trips hold for arbitrary region structures.
func TestProfileInvariantsOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < seeds; seed += 3 {
		prog := compileSeed(t, seed, kremlin.CompileOptions{})
		prof, _, err := prog.Profile(&kremlin.RunConfig{MaxSteps: 50_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sum := prog.Summarize(prof)
		for c, em := range sum.Entries {
			if em.SelfP < 1 || em.TotalP < 1 || em.SelfP > em.TotalP+1e-9 {
				t.Fatalf("seed %d: entry %d: SP=%f TP=%f", seed, c, em.SelfP, em.TotalP)
			}
		}
		for _, st := range sum.Executed {
			if st.Coverage < 0 || st.Coverage > 1.0001 {
				t.Fatalf("seed %d: coverage %f", seed, st.Coverage)
			}
			if st.SelfP > st.TotalP+1e-9 {
				t.Fatalf("seed %d: region %s SP %f > TP %f", seed, st.Region.Label(), st.SelfP, st.TotalP)
			}
		}
		var buf bytes.Buffer
		if _, err := prof.WriteTo(&buf); err != nil {
			t.Fatalf("seed %d: serialize: %v", seed, err)
		}
	}
}

// TestDeterministicGeneration: the same seed gives the same program, and
// the same program gives the same profile.
func TestDeterministicGeneration(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if generate(t, seed) != generate(t, seed) {
			t.Fatalf("seed %d: generator nondeterministic", seed)
		}
	}
	prog := compileSeed(t, 7, kremlin.CompileOptions{})
	p1, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := prog.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalWork() != p2.TotalWork() || len(p1.Dict.Entries) != len(p2.Dict.Entries) {
		t.Error("profiling nondeterministic")
	}
}

// TestSeedsAreDiverse: different seeds give different programs (sanity of
// the generator itself).
func TestSeedsAreDiverse(t *testing.T) {
	seen := map[string]int64{}
	for seed := int64(0); seed < 20; seed++ {
		src := generate(t, seed)
		if prev, dup := seen[src]; dup {
			t.Fatalf("seeds %d and %d generated identical programs", prev, seed)
		}
		seen[src] = seed
	}
}

// TestStressConfig runs a deeper, wider generator configuration through
// the full differential check (fewer seeds: each program is bigger).
func TestStressConfig(t *testing.T) {
	cfg := krgen.Config{Funcs: 6, Globals: 9, MaxStmts: 7, MaxDepth: 4, MaxExpr: 4, LoopIters: 8}
	for seed := int64(1000); seed < 1020; seed++ {
		src := krgen.Generate(seed, cfg)
		prog, err := kremlin.CompileWith("stress.kr", src, kremlin.CompileOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
		var plain bytes.Buffer
		pres, err := prog.Run(&kremlin.RunConfig{Out: &plain, MaxSteps: 100_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		var instr bytes.Buffer
		prof, hres, err := prog.Profile(&kremlin.RunConfig{Out: &instr, MaxSteps: 100_000_000})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		if plain.String() != instr.String() || pres.Work != hres.Work || prof.TotalWork() != pres.Work {
			t.Fatalf("seed %d: instrumentation diverged", seed)
		}
		optd, err := kremlin.CompileWith("stress.kr", src, kremlin.CompileOptions{Optimize: true})
		if err != nil {
			t.Fatalf("seed %d: opt compile: %v", seed, err)
		}
		var oout bytes.Buffer
		if _, err := optd.Run(&kremlin.RunConfig{Out: &oout, MaxSteps: 100_000_000}); err != nil {
			t.Fatalf("seed %d: opt run: %v", seed, err)
		}
		if oout.String() != plain.String() {
			t.Fatalf("seed %d: optimizer diverged:\n%q\n%q", seed, oout.String(), plain.String())
		}
	}
}
