package krgen

// Scale-stress generator: synthesizes very large Kr programs (tens of
// thousands of lines) whose helper functions are all sealed — pure, scalar
// parameters, no globals, no RNG — so the incremental profile cache can
// memoize every one of them. main calls each helper once with constant
// arguments and folds the results into a printed digest, keeping the whole
// program observable.
//
// Unlike Generate, this generator is closed-form deterministic: the source
// is a pure function of (seed, config, edits), so an "edit" is just a
// regeneration with one function's body variant bumped. That gives the
// incremental-profiling tests a realistic single-function edit whose blast
// radius is exactly one content key (plus its transitive callers).

import (
	"fmt"
	"strings"
)

// ScaleConfig bounds a generated scale program.
type ScaleConfig struct {
	Funcs int // sealed helper functions, each called once from main
	Iters int // loop trip count inside each helper body
}

// scaleLinesPerFunc is the approximate source-line cost of one helper plus
// its call site in main.
const scaleLinesPerFunc = 9

// scaleVariants is the number of distinct body shapes; edits cycle through
// them.
const scaleVariants = 4

// ScaleForLines returns a config whose generated program has roughly the
// requested number of source lines.
func ScaleForLines(lines, iters int) ScaleConfig {
	f := lines / scaleLinesPerFunc
	if f < 1 {
		f = 1
	}
	return ScaleConfig{Funcs: f, Iters: iters}
}

// ScaleFuncName returns the name of helper i, for tests that inspect keys.
func ScaleFuncName(i int) string { return fmt.Sprintf("s%d", i) }

// scaleMix is a splitmix64-style hash so per-function constants are
// deterministic in (seed, i) without carrying RNG state.
func scaleMix(seed int64, i int) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 0x2545f4914f6cdd1d
	z ^= z >> 31
	z *= 0x94d049bb133111eb
	z ^= z >> 29
	return z
}

// GenerateScale emits the scale program for (seed, cfg). edits maps a
// helper index to a variant bump; passing nil yields the pristine program,
// and {i: 1} yields the same program with helper i's body rewritten — the
// canonical "developer edited one function" input. Signatures and call
// sites never change, so the edit invalidates exactly that helper's
// content key.
func GenerateScale(seed int64, cfg ScaleConfig, edits map[int]int) string {
	var sb strings.Builder
	sb.Grow(cfg.Funcs * 192)
	for i := 0; i < cfg.Funcs; i++ {
		h := scaleMix(seed, i)
		variant := (int(h%scaleVariants) + edits[i]) % scaleVariants
		a := int(h>>8%9) + 2
		m := int(h>>16%13) + 3
		var body string
		switch variant {
		case 0:
			body = fmt.Sprintf("acc + x * %d + j %% %d", a, m)
		case 1:
			body = fmt.Sprintf("acc + x * %d + y + j %% %d", a, m)
		case 2:
			body = fmt.Sprintf("acc + x * %d - y + j %% %d", a, m)
		default:
			body = fmt.Sprintf("acc + x * %d + y * 2 + j %% %d", a, m)
		}
		// The initializer embeds i so every helper has a unique content
		// key even when variants and constants coincide.
		fmt.Fprintf(&sb, "int %s(int x, int y) {\n", ScaleFuncName(i))
		fmt.Fprintf(&sb, "\tint acc = %d;\n", i)
		fmt.Fprintf(&sb, "\tfor (int j = 0; j < %d; j++) {\n", cfg.Iters)
		fmt.Fprintf(&sb, "\t\tacc = %s;\n", body)
		sb.WriteString("\t}\n")
		sb.WriteString("\treturn acc;\n")
		sb.WriteString("}\n\n")
	}
	sb.WriteString("int main() {\n\tint t = 0;\n")
	for i := 0; i < cfg.Funcs; i++ {
		fmt.Fprintf(&sb, "\tt = t + %s(%d, %d);\n", ScaleFuncName(i), i%7+1, i%5+1)
	}
	sb.WriteString("\tprint(\"t\", t % 1000000);\n\treturn 0;\n}\n")
	return sb.String()
}

// ScaleEdit returns the scale program with helper editIdx's body changed to
// the next variant — a signature-preserving single-function edit.
func ScaleEdit(seed int64, cfg ScaleConfig, editIdx int) string {
	return GenerateScale(seed, cfg, map[int]int{editIdx: 1})
}
