package krgen

import (
	"strings"
	"testing"
)

func TestScaleDeterministic(t *testing.T) {
	cfg := ScaleForLines(2000, 16)
	a := GenerateScale(7, cfg, nil)
	b := GenerateScale(7, cfg, nil)
	if a != b {
		t.Fatalf("GenerateScale not deterministic")
	}
	if GenerateScale(8, cfg, nil) == a {
		t.Fatalf("different seeds produced identical programs")
	}
}

func TestScaleLineBudget(t *testing.T) {
	for _, lines := range []int{1000, 10000} {
		cfg := ScaleForLines(lines, 16)
		got := strings.Count(GenerateScale(1, cfg, nil), "\n")
		if got < lines*8/10 || got > lines*12/10 {
			t.Fatalf("asked for ~%d lines, got %d", lines, got)
		}
	}
}

func TestScaleEditLocality(t *testing.T) {
	cfg := ScaleForLines(1000, 16)
	base := GenerateScale(3, cfg, nil)
	edit := ScaleEdit(3, cfg, cfg.Funcs/2)
	if base == edit {
		t.Fatalf("edit produced identical source")
	}
	// The edit must change exactly one line (the edited helper's loop body)
	// and leave every signature and call site alone.
	bl, el := strings.Split(base, "\n"), strings.Split(edit, "\n")
	if len(bl) != len(el) {
		t.Fatalf("edit changed line count: %d vs %d", len(bl), len(el))
	}
	diff := 0
	for i := range bl {
		if bl[i] != el[i] {
			diff++
			if !strings.Contains(bl[i], "acc = ") {
				t.Fatalf("edit touched a non-body line: %q -> %q", bl[i], el[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("edit changed %d lines, want 1", diff)
	}
}
