// Package krgen generates random, well-typed, deterministic, terminating
// Kr programs for differential testing: every generated program must
// compile, run identically under plain / gprof / HCPA / optimized
// execution, and satisfy the profiler's invariants. The generator is the
// repository's fuzzing harness for the whole pipeline.
//
// Generated programs are safe by construction:
//   - all loops are bounded counted loops whose induction variable is
//     never reassigned in the body;
//   - array subscripts are loop variables (optionally offset) reduced
//     modulo the array extent, and loop variables are non-negative;
//   - integer division and modulo use nonzero constant divisors;
//   - the call graph is acyclic (function i only calls functions > i);
//   - a final print of a digest over all globals makes behavioral
//     differences observable.
package krgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	Funcs     int // helper functions in addition to main
	Globals   int // global scalars + arrays
	MaxStmts  int // statements per block
	MaxDepth  int // statement nesting depth
	MaxExpr   int // expression tree depth
	LoopIters int // maximum loop trip count
}

// Default returns a configuration that exercises most constructs while
// keeping runs fast.
func Default() Config {
	return Config{Funcs: 3, Globals: 5, MaxStmts: 5, MaxDepth: 3, MaxExpr: 3, LoopIters: 6}
}

type gvar struct {
	name  string
	isArr bool
	dim   int
	float bool
}

type local struct {
	name  string
	float bool
	// loopVar marks loop counters: usable in subscripts, never assigned.
	loopVar bool
	// arr marks a 1-D array parameter (extent known only via dim()).
	arr bool
}

type fn struct {
	name     string
	retFloat bool
	params   []local
}

type generator struct {
	rng     *rand.Rand
	cfg     Config
	globals []gvar
	funcs   []fn
	sb      strings.Builder
	tmp     int
}

// Generate produces the source of one random program.
func Generate(seed int64, cfg Config) string {
	g := &generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	g.emitGlobals()
	g.planFuncs()
	for i := range g.funcs {
		g.emitFunc(i)
	}
	g.emitMain()
	return g.sb.String()
}

func (g *generator) pf(format string, args ...interface{}) {
	fmt.Fprintf(&g.sb, format, args...)
}

func (g *generator) emitGlobals() {
	dims := []int{8, 12, 16}
	for i := 0; i < g.cfg.Globals; i++ {
		v := gvar{name: fmt.Sprintf("g%d", i), float: g.rng.Intn(2) == 0}
		typ := "int"
		if v.float {
			typ = "float"
		}
		if g.rng.Intn(3) > 0 {
			v.isArr = true
			v.dim = dims[g.rng.Intn(len(dims))]
			g.pf("%s %s[%d];\n", typ, v.name, v.dim)
		} else {
			g.pf("%s %s;\n", typ, v.name)
		}
		g.globals = append(g.globals, v)
	}
	// Guarantee one array of each element type so array arguments always
	// have a candidate.
	for _, fl := range []bool{false, true} {
		v := gvar{name: fmt.Sprintf("g%d", len(g.globals)), isArr: true, dim: 10, float: fl}
		typ := "int"
		if fl {
			typ = "float"
		}
		g.pf("%s %s[%d];\n", typ, v.name, v.dim)
		g.globals = append(g.globals, v)
	}
	g.pf("\n")
}

func (g *generator) planFuncs() {
	for i := 0; i < g.cfg.Funcs; i++ {
		f := fn{name: fmt.Sprintf("f%d", i), retFloat: g.rng.Intn(2) == 0}
		nparams := g.rng.Intn(3)
		for p := 0; p < nparams; p++ {
			f.params = append(f.params, local{
				name:  fmt.Sprintf("p%d", p),
				float: g.rng.Intn(2) == 0,
				arr:   g.rng.Intn(4) == 0,
			})
		}
		g.funcs = append(g.funcs, f)
	}
}

// scope tracks visible locals during statement generation.
type scope struct {
	locals []local
	// fnIndex is the generating function's index; callable functions have
	// strictly greater indexes (acyclicity). len(funcs) for main.
	fnIndex int
	// loopDepth > 0 permits break/continue.
	loopDepth int
}

func (g *generator) emitFunc(i int) {
	f := g.funcs[i]
	ret := "int"
	if f.retFloat {
		ret = "float"
	}
	g.pf("%s %s(", ret, f.name)
	for pi, p := range f.params {
		if pi > 0 {
			g.pf(", ")
		}
		pt := "int"
		if p.float {
			pt = "float"
		}
		if p.arr {
			g.pf("%s %s[]", pt, p.name)
		} else {
			g.pf("%s %s", pt, p.name)
		}
	}
	g.pf(") {\n")
	sc := &scope{locals: append([]local{}, f.params...), fnIndex: i}
	g.block(sc, 1, g.cfg.MaxDepth)
	g.pf("\treturn %s;\n}\n\n", g.expr(sc, f.retFloat, g.cfg.MaxExpr))
}

func (g *generator) emitMain() {
	g.pf("int main() {\n")
	sc := &scope{fnIndex: len(g.funcs)}
	g.block(sc, 1, g.cfg.MaxDepth)
	// Digest: make every global observable.
	g.pf("\tfloat digest = 0.0;\n")
	for _, v := range g.globals {
		if v.isArr {
			lv := fmt.Sprintf("d%s", v.name)
			g.pf("\tfor (int %s = 0; %s < %d; %s++) {\n", lv, lv, v.dim, lv)
			if v.float {
				g.pf("\t\tdigest = digest + %s[%s];\n", v.name, lv)
			} else {
				g.pf("\t\tdigest = digest + float(%s[%s] %% 1000);\n", v.name, lv)
			}
			g.pf("\t}\n")
		} else if v.float {
			g.pf("\tdigest = digest + %s;\n", v.name)
		} else {
			g.pf("\tdigest = digest + float(%s %% 1000);\n", v.name)
		}
	}
	g.pf("\tprint(\"digest\", digest);\n")
	g.pf("\treturn 0;\n}\n")
}

func (g *generator) indent(depth int) string { return strings.Repeat("\t", depth) }

func (g *generator) block(sc *scope, depth, budget int) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	base := len(sc.locals)
	for s := 0; s < n; s++ {
		g.stmt(sc, depth, budget)
	}
	sc.locals = sc.locals[:base] // leave scope
}

func (g *generator) stmt(sc *scope, depth, budget int) {
	choices := []func(*scope, int, int){
		g.declStmt, g.assignStmt, g.assignStmt, g.arrayStmt, g.arrayStmt,
	}
	if budget > 0 {
		choices = append(choices, g.ifStmt, g.forStmt, g.forStmt, g.whileStmt)
	}
	if sc.loopDepth > 0 {
		choices = append(choices, g.breakContinueStmt)
	}
	if sc.fnIndex < len(g.funcs)+1 && g.callableCount(sc) > 0 {
		choices = append(choices, g.callStmt)
	}
	choices[g.rng.Intn(len(choices))](sc, depth, budget)
}

func (g *generator) callableCount(sc *scope) int { return len(g.funcs) - sc.fnIndex }

func (g *generator) declStmt(sc *scope, depth, budget int) {
	v := local{name: fmt.Sprintf("v%d_%d", depth, g.tmp), float: g.rng.Intn(2) == 0}
	g.tmp++
	typ := "int"
	if v.float {
		typ = "float"
	}
	g.pf("%s%s %s = %s;\n", g.indent(depth), typ, v.name, g.expr(sc, v.float, g.cfg.MaxExpr))
	sc.locals = append(sc.locals, v)
}

// assignable returns a random assignable scalar (local non-loop var or
// scalar global), or empty.
func (g *generator) assignable(sc *scope) (string, bool, bool) {
	var cands []struct {
		name  string
		float bool
	}
	for _, l := range sc.locals {
		if !l.loopVar && !l.arr {
			cands = append(cands, struct {
				name  string
				float bool
			}{l.name, l.float})
		}
	}
	for _, v := range g.globals {
		if !v.isArr {
			cands = append(cands, struct {
				name  string
				float bool
			}{v.name, v.float})
		}
	}
	if len(cands) == 0 {
		return "", false, false
	}
	c := cands[g.rng.Intn(len(cands))]
	return c.name, c.float, true
}

func (g *generator) assignStmt(sc *scope, depth, budget int) {
	name, isFloat, ok := g.assignable(sc)
	if !ok {
		g.declStmt(sc, depth, budget)
		return
	}
	switch g.rng.Intn(4) {
	case 0:
		g.pf("%s%s += %s;\n", g.indent(depth), name, g.expr(sc, isFloat, g.cfg.MaxExpr-1))
	case 1:
		g.pf("%s%s *= %s;\n", g.indent(depth), name, g.smallFactor(isFloat))
	default:
		g.pf("%s%s = %s;\n", g.indent(depth), name, g.expr(sc, isFloat, g.cfg.MaxExpr))
	}
}

// smallFactor keeps *= from overflowing/exploding.
func (g *generator) smallFactor(isFloat bool) string {
	if isFloat {
		return []string{"0.5", "1.25", "0.75"}[g.rng.Intn(3)]
	}
	return []string{"1", "2", "3"}[g.rng.Intn(3)]
}

func (g *generator) arrayStmt(sc *scope, depth, budget int) {
	arrs := g.arrayGlobals()
	if len(arrs) == 0 {
		g.assignStmt(sc, depth, budget)
		return
	}
	v := arrs[g.rng.Intn(len(arrs))]
	idx := g.subscript(sc, v.dim)
	if g.rng.Intn(3) == 0 {
		g.pf("%s%s[%s] += %s;\n", g.indent(depth), v.name, idx, g.expr(sc, v.float, g.cfg.MaxExpr-1))
	} else {
		g.pf("%s%s[%s] = %s;\n", g.indent(depth), v.name, idx, g.expr(sc, v.float, g.cfg.MaxExpr))
	}
}

func (g *generator) arrayGlobals() []gvar {
	var out []gvar
	for _, v := range g.globals {
		if v.isArr {
			out = append(out, v)
		}
	}
	return out
}

// subscript builds an in-bounds index: a loop variable (mod dim), an
// offset loop variable, or a constant.
func (g *generator) subscript(sc *scope, dim int) string {
	var loops []string
	for _, l := range sc.locals {
		if l.loopVar {
			loops = append(loops, l.name)
		}
	}
	if len(loops) > 0 && g.rng.Intn(4) != 0 {
		lv := loops[g.rng.Intn(len(loops))]
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%s %% %d", lv, dim)
		}
		return fmt.Sprintf("(%s + %d) %% %d", lv, g.rng.Intn(5), dim)
	}
	return fmt.Sprintf("%d", g.rng.Intn(dim))
}

func (g *generator) ifStmt(sc *scope, depth, budget int) {
	g.pf("%sif (%s) {\n", g.indent(depth), g.cond(sc))
	g.block(sc, depth+1, budget-1)
	if g.rng.Intn(2) == 0 {
		g.pf("%s} else {\n", g.indent(depth))
		g.block(sc, depth+1, budget-1)
	}
	g.pf("%s}\n", g.indent(depth))
}

func (g *generator) forStmt(sc *scope, depth, budget int) {
	lv := fmt.Sprintf("i%d_%d", depth, g.tmp)
	g.tmp++
	iters := 2 + g.rng.Intn(g.cfg.LoopIters-1)
	g.pf("%sfor (int %s = 0; %s < %d; %s++) {\n", g.indent(depth), lv, lv, iters, lv)
	sc.locals = append(sc.locals, local{name: lv, loopVar: true})
	sc.loopDepth++
	g.block(sc, depth+1, budget-1)
	sc.loopDepth--
	sc.locals = sc.locals[:len(sc.locals)-1]
	g.pf("%s}\n", g.indent(depth))
}

// whileStmt emits a while loop bounded by an explicit counter, the shape
// real codes use for convergence loops. The counter increments first so a
// generated `continue` cannot skip it.
func (g *generator) whileStmt(sc *scope, depth, budget int) {
	wv := fmt.Sprintf("w%d_%d", depth, g.tmp)
	g.tmp++
	iters := 2 + g.rng.Intn(g.cfg.LoopIters-1)
	g.pf("%sint %s = 0;\n", g.indent(depth), wv)
	g.pf("%swhile (%s < %d) {\n", g.indent(depth), wv, iters)
	g.pf("%s%s = %s + 1;\n", g.indent(depth+1), wv, wv)
	sc.locals = append(sc.locals, local{name: wv, loopVar: true})
	sc.loopDepth++
	g.block(sc, depth+1, budget-1)
	sc.loopDepth--
	sc.locals = sc.locals[:len(sc.locals)-1]
	g.pf("%s}\n", g.indent(depth))
}

// breakContinueStmt emits a guarded break or continue.
func (g *generator) breakContinueStmt(sc *scope, depth, budget int) {
	kw := "break"
	if g.rng.Intn(2) == 0 {
		kw = "continue"
	}
	g.pf("%sif (%s) { %s; }\n", g.indent(depth), g.cond0(sc), kw)
}

func (g *generator) callStmt(sc *scope, depth, budget int) {
	callee := g.funcs[sc.fnIndex+g.rng.Intn(g.callableCount(sc))]
	var args []string
	for _, p := range callee.params {
		if p.arr {
			args = append(args, g.arrayArg(p.float))
			continue
		}
		args = append(args, g.expr(sc, p.float, g.cfg.MaxExpr-1))
	}
	call := fmt.Sprintf("%s(%s)", callee.name, strings.Join(args, ", "))
	if name, isFloat, ok := g.assignable(sc); ok && g.rng.Intn(2) == 0 {
		if isFloat == callee.retFloat || (isFloat && !callee.retFloat) {
			g.pf("%s%s = %s;\n", g.indent(depth), name, call)
			return
		}
		g.pf("%s%s = int(%s);\n", g.indent(depth), name, call)
		return
	}
	// Kr requires expression statements to be calls; discard via a decl.
	typ, cast := "int", ""
	if callee.retFloat {
		typ = "float"
	}
	v := local{name: fmt.Sprintf("c%d_%d", depth, g.tmp), float: callee.retFloat}
	g.tmp++
	g.pf("%s%s %s = %s%s;\n", g.indent(depth), typ, v.name, cast, call)
	sc.locals = append(sc.locals, v)
}

// cond builds a boolean expression.
func (g *generator) cond(sc *scope) string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	isFloat := g.rng.Intn(2) == 0
	c := fmt.Sprintf("%s %s %s",
		g.expr(sc, isFloat, g.cfg.MaxExpr-1), ops[g.rng.Intn(len(ops))], g.expr(sc, isFloat, g.cfg.MaxExpr-1))
	if g.rng.Intn(4) == 0 {
		join := "&&"
		if g.rng.Intn(2) == 0 {
			join = "||"
		}
		c = fmt.Sprintf("(%s) %s (%s)", c, join, g.cond0(sc))
	}
	return c
}

func (g *generator) cond0(sc *scope) string {
	return fmt.Sprintf("%s < %s", g.expr(sc, false, 1), g.expr(sc, false, 1))
}

// expr builds a well-typed expression of the requested scalar type.
func (g *generator) expr(sc *scope, isFloat bool, depth int) string {
	if depth <= 0 {
		return g.leaf(sc, isFloat)
	}
	switch g.rng.Intn(7) {
	case 0, 1:
		return g.leaf(sc, isFloat)
	case 2:
		op := []string{"+", "-", "*"}[g.rng.Intn(3)]
		return fmt.Sprintf("(%s %s %s)", g.expr(sc, isFloat, depth-1), op, g.expr(sc, isFloat, depth-1))
	case 3:
		if isFloat {
			// Division by a safely nonzero expression.
			return fmt.Sprintf("(%s / (fabs(%s) + 1.0))", g.expr(sc, true, depth-1), g.expr(sc, true, depth-1))
		}
		return fmt.Sprintf("(%s / %d)", g.expr(sc, false, depth-1), 1+g.rng.Intn(7))
	case 4:
		if isFloat {
			f := []string{"sqrt(fabs(%s))", "fabs(%s)", "floor(%s)", "sin(%s)", "cos(%s)"}[g.rng.Intn(5)]
			return fmt.Sprintf(f, g.expr(sc, true, depth-1))
		}
		return fmt.Sprintf("abs(%s)", g.expr(sc, false, depth-1))
	case 5:
		if isFloat {
			return fmt.Sprintf("float(%s)", g.expr(sc, false, depth-1))
		}
		return fmt.Sprintf("(%s %% %d)", g.expr(sc, false, depth-1), 2+g.rng.Intn(9))
	default:
		if isFloat {
			return fmt.Sprintf("min(%s, %s)", g.expr(sc, true, depth-1), g.expr(sc, true, depth-1))
		}
		return fmt.Sprintf("max(%s, %s)", g.expr(sc, false, depth-1), g.expr(sc, false, depth-1))
	}
}

// leaf yields a variable, array element, or literal of the right type.
func (g *generator) leaf(sc *scope, isFloat bool) string {
	var opts []string
	for _, l := range sc.locals {
		if l.arr {
			if l.float == isFloat {
				opts = append(opts, fmt.Sprintf("%s[%s %% dim(%s, 0)]", l.name, g.intIndex(sc), l.name))
			}
			continue
		}
		if l.float == isFloat {
			opts = append(opts, l.name)
		}
		if !isFloat && l.loopVar {
			opts = append(opts, l.name)
		}
	}
	for _, v := range g.globals {
		if v.float != isFloat {
			continue
		}
		if v.isArr {
			opts = append(opts, fmt.Sprintf("%s[%s]", v.name, g.subscript(sc, v.dim)))
		} else {
			opts = append(opts, v.name)
		}
	}
	if len(opts) > 0 && g.rng.Intn(3) != 0 {
		return opts[g.rng.Intn(len(opts))]
	}
	if isFloat {
		return fmt.Sprintf("%d.%d", g.rng.Intn(20), g.rng.Intn(100))
	}
	return fmt.Sprintf("%d", g.rng.Intn(50))
}

// arrayArg picks a global array of the right element type to pass as an
// array argument (one always exists: ensureArrays adds them).
func (g *generator) arrayArg(isFloat bool) string {
	for _, v := range g.globals {
		if v.isArr && v.float == isFloat {
			return v.name
		}
	}
	return "" // unreachable: ensureArrays guarantees both kinds
}

// intIndex returns a non-negative int expression for subscripting.
func (g *generator) intIndex(sc *scope) string {
	for _, l := range sc.locals {
		if l.loopVar && g.rng.Intn(2) == 0 {
			return l.name
		}
	}
	return fmt.Sprintf("%d", g.rng.Intn(32))
}
