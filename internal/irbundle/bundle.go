// Package irbundle serializes a compiled, analyzed Kr module to a portable
// byte bundle (format KRIB1) and reconstructs it — the wire format behind
// `kremlin-cc -emit-ir` and the daemon's precompiled-IR submission path
// (`POST /v1/jobs` with Content-Type application/x-kremlin-ir).
//
// A bundle carries exactly what the back half of the pipeline needs and
// nothing the front half can fabricate: the program name, the source file's
// line structure (offsets of the newline bytes, so region labels resolve to
// the same file:line without shipping the source text), the global table,
// and every function's CFG and instruction stream — including the dense
// value/block IDs and the analysis annotations (Induction/Reduction/
// BreakArg). IDs and annotations are preserved verbatim rather than
// recomputed so that a decoded module is bit-identical to the encoder's:
// region numbering, instrumentation events, bytecode, profiles, and the
// incremental cache's canonical-IR content hashes all come out the same.
//
// Layout (all integers varint/uvarint, strings length-prefixed):
//
//	"KRIB1\n"            magic
//	uvarint version      (currently 1)
//	program name, source size, newline offsets (delta-coded)
//	global table         (name, elem, dims, optional const initializer)
//	function headers     (name, ret, pos, value/block ID bounds, param count)
//	function bodies      (blocks: id, name, preds; instrs: full field set,
//	                      operands as value-ID refs or inline constants)
//	8 bytes LE           FNV-64a of everything before the trailer
//
// Decoding is fully bounds-checked and never panics on arbitrary bytes, and
// every decoded module passes a structural/type/SSA validator (see
// validate.go) before it is returned: bundles are an untrusted input surface
// for the daemon, so anything the compiler could not have produced — bad
// opcodes, type-confused operands, uses that don't dominate, irreducible
// control flow, phi/pred mismatches — is rejected with a diagnostic error,
// not discovered as an interpreter panic.
package irbundle

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"kremlin/internal/ast"
	"kremlin/internal/ir"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

// Magic is the KRIB1 file prefix, doubling as the sniffable header for
// servers that accept both source and bundle submissions.
const Magic = "KRIB1\n"

const version = 1

// Decode-side structural limits. They bound decoder allocations against
// hostile headers; all are far above anything the Kr front end emits.
const (
	maxSourceBytes = 1 << 26 // 64 MiB of (synthetic) source
	maxLineStarts  = 1 << 21
	maxStrLen      = 1 << 16
	maxGlobals     = 1 << 16
	maxArrayDims   = 16
	maxArrayWords  = 1 << 40 // static extent product cap (runtime heap cap still applies)
	maxFuncs       = 1 << 14
	maxBlocksPer   = 1 << 16
	maxInstrsPer   = 1 << 20
	maxValuesPer   = 1 << 20 // register-file bound per function
	maxArgsPer     = 1 << 12
)

// Encode serializes a compiled module plus its source line structure.
func Encode(file *source.File, mod *ir.Module) []byte {
	w := &writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, Magic...)
	w.u(version)
	w.s(file.Name)

	// Line structure: total size plus delta-coded newline offsets.
	w.u(uint64(len(file.Content)))
	nls := newlineOffsets(file.Content)
	w.u(uint64(len(nls)))
	prev := 0
	for _, off := range nls {
		w.u(uint64(off - prev))
		prev = off
	}

	// Globals.
	w.u(uint64(len(mod.Globals)))
	for _, g := range mod.Globals {
		w.s(g.Name)
		w.u(uint64(g.Elem))
		w.u(uint64(len(g.Dims)))
		for _, d := range g.Dims {
			w.i(d)
		}
		w.constant(g.Init)
	}

	// Function headers first, so call operands can refer to any function by
	// index while bodies decode.
	fnIdx := make(map[*ir.Func]int, len(mod.Funcs))
	w.u(uint64(len(mod.Funcs)))
	for i, f := range mod.Funcs {
		fnIdx[f] = i
		w.s(f.Name)
		w.u(uint64(f.Ret))
		w.i(int64(f.Pos))
		w.i(int64(f.EndPos))
		w.u(uint64(f.NumValues()))
		w.u(uint64(len(f.Params)))
		w.u(uint64(len(f.Blocks)))
	}

	// Bodies.
	for _, f := range mod.Funcs {
		blkIdx := make(map[*ir.Block]int, len(f.Blocks))
		for i, b := range f.Blocks {
			blkIdx[b] = i
		}
		for _, b := range f.Blocks {
			w.u(uint64(b.ID))
			w.s(b.Name)
			w.u(uint64(len(b.Preds)))
			for _, p := range b.Preds {
				w.u(uint64(blkIdx[p]))
			}
			w.u(uint64(len(b.Instrs)))
			for _, ins := range b.Instrs {
				w.instr(ins, fnIdx, blkIdx)
			}
		}
		for _, p := range f.Params {
			w.u(uint64(p.ID))
		}
	}

	h := fnv.New64a()
	_, _ = h.Write(w.buf)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	return append(w.buf, sum[:]...)
}

func newlineOffsets(s string) []int {
	var out []int
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, i)
		}
	}
	return out
}

type writer struct{ buf []byte }

func (w *writer) u(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) i(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) s(s string) {
	w.u(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// constant tags: 0 none, 1 int, 2 float (IEEE bits), 3 bool.
func (w *writer) constant(v ir.Value) {
	switch c := v.(type) {
	case nil:
		w.u(0)
	case *ir.ConstInt:
		w.u(1)
		w.i(c.V)
	case *ir.ConstFloat:
		w.u(2)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.V))
		w.buf = append(w.buf, b[:]...)
	case *ir.ConstBool:
		w.u(3)
		if c.V {
			w.u(1)
		} else {
			w.u(0)
		}
	default:
		// Instruction-valued initializers do not exist in compiled modules.
		w.u(0)
	}
}

func (w *writer) instr(ins *ir.Instr, fnIdx map[*ir.Func]int, blkIdx map[*ir.Block]int) {
	w.u(uint64(ins.Op))
	w.u(uint64(ins.Bin))
	w.u(uint64(ins.Typ.Elem))
	w.u(uint64(ins.Typ.Dims))
	w.u(uint64(len(ins.Args)))
	for _, a := range ins.Args {
		if ai, ok := a.(*ir.Instr); ok {
			w.u(4) // value-ID reference
			w.u(uint64(ai.ID))
			continue
		}
		w.constant(a)
	}
	w.i(int64(ins.Slot))
	if ins.Global != nil {
		w.u(uint64(ins.Global.Index) + 1)
	} else {
		w.u(0)
	}
	if ins.Callee != nil {
		w.u(uint64(fnIdx[ins.Callee]) + 1)
	} else {
		w.u(0)
	}
	w.s(ins.Builtin)
	w.s(ins.Aux)
	w.u(uint64(len(ins.Targets)))
	for _, t := range ins.Targets {
		w.u(uint64(blkIdx[t]))
	}
	w.i(int64(ins.Pos))
	w.u(uint64(ins.ID))
	flags := uint64(0)
	if ins.Induction {
		flags |= 1
	}
	if ins.Reduction {
		flags |= 2
	}
	w.u(flags)
	w.i(int64(ins.BreakArg))
}

// Decoded is a reconstructed bundle: everything the back half of the
// pipeline (regions → instrument → depcheck → bytecode) needs.
type Decoded struct {
	File   *source.File
	Module *ir.Module
}

// Decode parses and validates a KRIB1 bundle. The returned module has
// passed the full structural/type/SSA validator; any deviation comes back
// as a descriptive error and never as a panic.
func Decode(data []byte) (*Decoded, error) {
	if len(data) < len(Magic)+8 || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("not a KRIB1 bundle (bad magic)")
	}
	payload, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	_, _ = h.Write(payload)
	if binary.LittleEndian.Uint64(trailer) != h.Sum64() {
		return nil, fmt.Errorf("bundle checksum mismatch")
	}
	r := &reader{b: payload, off: len(Magic)}
	if v := r.u(); r.err == nil && v != version {
		return nil, fmt.Errorf("unsupported bundle version %d", v)
	}

	name := r.str()
	file := r.file(name)

	mod := &ir.Module{Name: name, ByName: map[string]*ir.Func{}}
	nGlobals := r.n(maxGlobals, "global count")
	for i := 0; i < nGlobals && r.err == nil; i++ {
		mod.Globals = append(mod.Globals, r.global(i))
	}

	nFuncs := r.n(maxFuncs, "function count")
	hdrs := make([]funcHeader, 0, nFuncs)
	for i := 0; i < nFuncs && r.err == nil; i++ {
		hd := r.funcHeader()
		if r.err == nil {
			if _, dup := mod.ByName[hd.f.Name]; dup {
				r.fail("duplicate function %q", hd.f.Name)
				break
			}
			hd.f.Module = mod
			mod.Funcs = append(mod.Funcs, hd.f)
			mod.ByName[hd.f.Name] = hd.f
		}
		hdrs = append(hdrs, hd)
	}
	for _, hd := range hdrs {
		if r.err != nil {
			break
		}
		r.funcBody(hd, mod)
	}
	if r.err == nil && r.off != len(payload) {
		r.fail("%d trailing bytes after last function", len(payload)-r.off)
	}
	if r.err != nil {
		return nil, fmt.Errorf("malformed bundle: %w", r.err)
	}
	if err := validate(mod); err != nil {
		return nil, fmt.Errorf("invalid bundle: %w", err)
	}
	return &Decoded{File: file, Module: mod}, nil
}

// reader is a bounds-checked varint cursor; the first failure latches err
// and turns every subsequent read into a no-op.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// n reads a size field, failing beyond limit.
func (r *reader) n(limit uint64, what string) int {
	v := r.u()
	if r.err == nil && v > limit {
		r.fail("%s %d exceeds limit %d", what, v, limit)
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.n(maxStrLen, "string length")
	if r.err != nil {
		return ""
	}
	if r.off+n > len(r.b) {
		r.fail("truncated string at offset %d", r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) f8() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// file reconstructs the source line structure: a synthetic Content of the
// recorded size with newlines at the recorded offsets, so every Pos lookup
// (region labels, diagnostics) resolves to the original file:line:col.
func (r *reader) file(name string) *source.File {
	size := r.n(maxSourceBytes, "source size")
	nNl := r.n(maxLineStarts, "newline count")
	if r.err != nil || nNl > size {
		r.fail("newline count %d exceeds source size %d", nNl, size)
		return source.NewFile(name, "")
	}
	offs := make([]int, 0, nNl)
	at := -1
	for i := 0; i < nNl && r.err == nil; i++ {
		d := r.n(uint64(size), "newline delta")
		if i > 0 && d == 0 {
			r.fail("newline offsets not strictly increasing")
			break
		}
		at += d
		if i == 0 {
			at++ // first delta is the absolute offset
		}
		if at >= size {
			r.fail("newline offset %d beyond source size %d", at, size)
			break
		}
		offs = append(offs, at)
	}
	if r.err != nil {
		return source.NewFile(name, "")
	}
	content := []byte(strings.Repeat(" ", size))
	for _, off := range offs {
		content[off] = '\n'
	}
	return source.NewFile(name, string(content))
}

func (r *reader) global(idx int) *ir.Global {
	g := &ir.Global{Name: r.str(), Elem: ast.BasicKind(r.u()), Index: idx}
	if r.err == nil && !scalarKind(g.Elem) {
		r.fail("global %q: bad element kind %d", g.Name, g.Elem)
	}
	nd := r.n(maxArrayDims, "global dims")
	words := int64(1)
	for i := 0; i < nd && r.err == nil; i++ {
		d := r.i()
		if d < 1 || d > maxArrayWords {
			r.fail("global %q: bad extent %d", g.Name, d)
			break
		}
		g.Dims = append(g.Dims, d)
		if words > maxArrayWords/d {
			r.fail("global %q: extent product too large", g.Name)
			break
		}
		words *= d
	}
	g.Init = r.constant()
	if r.err == nil && g.Init != nil {
		if g.IsArray() {
			r.fail("global %q: array with initializer", g.Name)
		} else if g.Init.Type().Elem != g.Elem {
			r.fail("global %q: initializer kind mismatch", g.Name)
		}
	}
	return g
}

func (r *reader) constant() ir.Value { return r.constantTag(r.u()) }

func (r *reader) constantTag(tag uint64) ir.Value {
	switch tag {
	case 0:
		return nil
	case 1:
		return &ir.ConstInt{V: r.i()}
	case 2:
		return &ir.ConstFloat{V: r.f8()}
	case 3:
		return &ir.ConstBool{V: r.u() != 0}
	default:
		r.fail("bad constant tag %d", tag)
		return nil
	}
}

// argRef marks an operand encoded as a value-ID reference, resolved after
// the whole function body has been read.
type argRef struct {
	ins *ir.Instr
	idx int
	id  int
}

type funcHeader struct {
	f         *ir.Func
	numValues int
	numParams int
	numBlocks int
}

func (r *reader) funcHeader() funcHeader {
	f := &ir.Func{Name: r.str(), Ret: ast.BasicKind(r.u())}
	if r.err == nil && f.Ret > ast.Void {
		r.fail("func %q: bad return kind", f.Name)
	}
	f.Pos = int(r.i())
	f.EndPos = int(r.i())
	return funcHeader{
		f:         f,
		numValues: r.n(maxValuesPer, "value count"),
		numParams: r.n(maxArgsPer, "param count"),
		numBlocks: r.n(maxBlocksPer, "block count"),
	}
}

func (r *reader) funcBody(hd funcHeader, mod *ir.Module) {
	f := hd.f
	// Allocate every block shell up front: preds and branch targets refer
	// to blocks by position, including forward references.
	f.Blocks = make([]*ir.Block, hd.numBlocks)
	for i := range f.Blocks {
		f.Blocks[i] = &ir.Block{Func: f, LoopID: -1}
	}
	if hd.numBlocks == 0 {
		r.fail("func %q: no blocks", f.Name)
		return
	}

	byID := make(map[int]*ir.Instr, hd.numValues)
	var refs []argRef
	seenBlkID := make(map[int]bool, hd.numBlocks)
	maxBlkID := 0
	nInstrs := 0
	for _, b := range f.Blocks {
		if r.err != nil {
			return
		}
		b.ID = r.n(maxBlocksPer, "block ID")
		if r.err == nil && seenBlkID[b.ID] {
			r.fail("func %q: duplicate block ID %d", f.Name, b.ID)
			return
		}
		seenBlkID[b.ID] = true
		if b.ID > maxBlkID {
			maxBlkID = b.ID
		}
		b.Name = r.str()
		nPreds := r.n(uint64(hd.numBlocks), "pred count")
		for i := 0; i < nPreds && r.err == nil; i++ {
			pi := r.n(uint64(hd.numBlocks)-1, "pred index")
			if r.err == nil {
				b.Preds = append(b.Preds, f.Blocks[pi])
			}
		}
		nIns := r.n(maxInstrsPer, "instr count")
		nInstrs += nIns
		if nInstrs > maxInstrsPer {
			r.fail("func %q: instruction count exceeds limit", f.Name)
			return
		}
		b.Instrs = make([]*ir.Instr, 0, nIns)
		for i := 0; i < nIns && r.err == nil; i++ {
			ins := r.instr(f, mod, hd, byID, &refs)
			if r.err == nil {
				ins.Block = b
				b.Instrs = append(b.Instrs, ins)
			}
		}
	}
	if r.err != nil {
		return
	}

	// Resolve operand references now that every instruction exists.
	for _, ref := range refs {
		def, ok := byID[ref.id]
		if !ok {
			r.fail("func %q: operand %%%d is never defined", f.Name, ref.id)
			return
		}
		ref.ins.Args[ref.idx] = def
	}

	// Params resolve to OpParam instructions by value ID.
	for i := 0; i < hd.numParams && r.err == nil; i++ {
		id := r.n(maxValuesPer, "param ID")
		if r.err != nil {
			return
		}
		p, ok := byID[id]
		if !ok || p.Op != ir.OpParam || p.Slot != i {
			r.fail("func %q: param %d does not resolve to its OpParam", f.Name, i)
			return
		}
		f.Params = append(f.Params, p)
	}

	// Succs derive from terminator targets; validate() checks they mirror
	// the encoded preds.
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil {
			b.Succs = append(b.Succs, t.Targets...)
		}
	}
	f.SetIDBounds(hd.numValues, maxBlkID+1)
}

func (r *reader) instr(f *ir.Func, mod *ir.Module, hd funcHeader, byID map[int]*ir.Instr, refs *[]argRef) *ir.Instr {
	ins := &ir.Instr{
		Op:  ir.Op(r.u()),
		Bin: ir.BinKind(r.u()),
		Typ: types.Type{Elem: ast.BasicKind(r.u()), Dims: int(r.n(maxArrayDims, "type dims"))},
	}
	if r.err == nil && (ins.Op <= ir.OpInvalid || ins.Op > ir.OpRet ||
		ins.Op == ir.OpLoadSlot || ins.Op == ir.OpStoreSlot) {
		r.fail("func %q: bad opcode %d", f.Name, ins.Op)
		return ins
	}
	if r.err == nil && (ins.Bin < ir.BinAdd || ins.Bin > ir.BinOr) {
		r.fail("func %q: bad binary kind %d", f.Name, ins.Bin)
		return ins
	}
	if r.err == nil && ins.Typ.Elem > ast.Void {
		r.fail("func %q: bad element kind %d", f.Name, ins.Typ.Elem)
		return ins
	}
	nArgs := r.n(maxArgsPer, "arg count")
	ins.Args = make([]ir.Value, nArgs)
	for i := 0; i < nArgs && r.err == nil; i++ {
		if tag := r.u(); tag == 4 {
			id := r.n(maxValuesPer, "operand ID")
			*refs = append(*refs, argRef{ins: ins, idx: i, id: id})
		} else if r.err == nil {
			ins.Args[i] = r.constantTag(tag)
			if r.err == nil && ins.Args[i] == nil {
				r.fail("func %q: nil operand", f.Name)
			}
		}
	}
	ins.Slot = int(r.i())
	if gi := r.n(uint64(len(mod.Globals)), "global index"); r.err == nil && gi > 0 {
		ins.Global = mod.Globals[gi-1]
	}
	if fi := r.n(uint64(len(mod.Funcs)), "callee index"); r.err == nil && fi > 0 {
		ins.Callee = mod.Funcs[fi-1]
	}
	ins.Builtin = r.str()
	ins.Aux = r.str()
	nTargets := r.n(2, "target count")
	for i := 0; i < nTargets && r.err == nil; i++ {
		ti := r.n(uint64(hd.numBlocks)-1, "target index")
		if r.err == nil {
			ins.Targets = append(ins.Targets, f.Blocks[ti])
		}
	}
	ins.Pos = int(r.i())
	ins.ID = r.n(maxValuesPer, "value ID")
	if r.err == nil && ins.ID >= hd.numValues {
		r.fail("func %q: value ID %d outside declared bound %d", f.Name, ins.ID, hd.numValues)
	}
	if r.err != nil {
		return ins
	}
	if byID[ins.ID] != nil {
		r.fail("func %q: duplicate value ID %d", f.Name, ins.ID)
		return ins
	}
	byID[ins.ID] = ins
	flags := r.u()
	ins.Induction = flags&1 != 0
	ins.Reduction = flags&2 != 0
	ins.BreakArg = int(r.i())
	if r.err == nil && (ins.BreakArg < -1 || ins.BreakArg >= len(ins.Args)) {
		r.fail("func %q: BreakArg %d out of range", f.Name, ins.BreakArg)
	}
	return ins
}

func scalarKind(k ast.BasicKind) bool {
	return k == ast.Int || k == ast.Float || k == ast.Bool
}
