package irbundle

import (
	"fmt"

	"kremlin/internal/ast"
	"kremlin/internal/cfg"
	"kremlin/internal/ir"
	"kremlin/internal/types"
)

// validate checks that a decoded module is something the Kr compiler could
// have produced: well-typed instructions, structurally sound blocks
// (non-empty, exactly one terminator, last), CFG edges whose pred lists
// mirror the branch targets, every block reachable, reducible control flow
// (regions' loop forest assumes it), SSA uses dominated by their
// definitions, and a zero-parameter main. Anything else would surface as an
// engine panic or a garbage profile instead of an error — bundles are
// untrusted input, so it surfaces here.
func validate(mod *ir.Module) error {
	main := mod.Main()
	if main == nil {
		return fmt.Errorf("no main function")
	}
	if len(main.Params) != 0 {
		return fmt.Errorf("main takes %d parameters, want 0", len(main.Params))
	}
	for _, f := range mod.Funcs {
		if err := validateFunc(f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func validateFunc(f *ir.Func) error {
	entry := f.Blocks[0]
	if len(entry.Preds) != 0 {
		return fmt.Errorf("entry block has predecessors")
	}
	for _, p := range f.Params {
		if p.Block != entry {
			return fmt.Errorf("param %s defined outside the entry block", p.Name())
		}
	}

	// Block shape: non-empty, one terminator, last; phis form a prefix.
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			return fmt.Errorf("block %s does not end in a terminator", b)
		}
		phiPrefix := true
		for i, ins := range b.Instrs {
			if ins.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("block %s: terminator %s mid-block", b, ins.Op)
			}
			if ins.Op == ir.OpPhi {
				if !phiPrefix {
					return fmt.Errorf("block %s: phi after non-phi", b)
				}
			} else {
				phiPrefix = false
			}
		}
	}

	// Preds mirror branch targets, edge for edge (with multiplicity).
	in := make(map[*ir.Block]map[*ir.Block]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, t := range b.Terminator().Targets {
			m := in[t]
			if m == nil {
				m = map[*ir.Block]int{}
				in[t] = m
			}
			m[b]++
		}
	}
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			if in[b][p] == 0 {
				return fmt.Errorf("block %s lists pred %s without a matching edge", b, p)
			}
			in[b][p]--
		}
		for p, n := range in[b] {
			if n != 0 {
				return fmt.Errorf("edge %s->%s missing from pred list", p, b)
			}
		}
	}

	// Reachability: the regions/cfg passes assume RemoveUnreachable ran.
	reached := map[*ir.Block]bool{entry: true}
	stack := []*ir.Block{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(reached) != len(f.Blocks) {
		return fmt.Errorf("%d unreachable blocks", len(f.Blocks)-len(reached))
	}

	g := cfg.New(f)
	idom := g.Dominators()
	dom := newDomIntervals(idom)

	// Reducibility: every retreating edge (RPO-later to RPO-earlier) must be
	// a back edge (target dominates source). The loop forest the regions
	// pass builds is only meaningful on reducible CFGs.
	rpoNum := make([]int, len(f.Blocks))
	for i, u := range g.RPO() {
		rpoNum[u] = i
	}
	for u, succs := range g.Succs {
		for _, v := range succs {
			if rpoNum[v] <= rpoNum[u] && !dom.dominates(v, u) {
				return fmt.Errorf("irreducible control flow: edge %s->%s", f.Blocks[u], f.Blocks[v])
			}
		}
	}

	// Instruction-level checks.
	type point struct{ blk, idx int }
	at := make(map[*ir.Instr]point, 16)
	for bi, b := range f.Blocks {
		for ii, ins := range b.Instrs {
			at[ins] = point{bi, ii}
		}
	}
	// defDominatesUse: the def must execute before the use point can.
	defDominatesUse := func(def *ir.Instr, useBlk, useIdx int) bool {
		d, ok := at[def]
		if !ok {
			return false
		}
		if d.blk == useBlk {
			return d.idx < useIdx
		}
		return dom.dominates(d.blk, useBlk)
	}
	for bi, b := range f.Blocks {
		for ii, ins := range b.Instrs {
			if err := checkInstr(f, ins); err != nil {
				return fmt.Errorf("block %s: %s: %w", b, ins.Op, err)
			}
			for ai, a := range ins.Args {
				def, ok := a.(*ir.Instr)
				if !ok {
					continue
				}
				ub, ui := bi, ii
				if ins.Op == ir.OpPhi {
					// A phi's i-th operand is read at the end of the i-th
					// predecessor.
					ub, ui = g.Index(b.Preds[ai]), len(b.Preds[ai].Instrs)
				}
				if !defDominatesUse(def, ub, ui) {
					return fmt.Errorf("block %s: %s operand %d (%s) does not dominate its use", b, ins.Op, ai, def.Name())
				}
			}
		}
	}
	return nil
}

// domIntervals answers dominance queries in O(1) via pre/post numbering of
// the dominator tree.
type domIntervals struct{ tin, tout []int }

func newDomIntervals(idom []int) *domIntervals {
	n := len(idom)
	kids := make([][]int, n)
	for v, d := range idom {
		if v != d && d >= 0 {
			kids[d] = append(kids[d], v)
		}
	}
	d := &domIntervals{tin: make([]int, n), tout: make([]int, n)}
	clock := 0
	// Iterative DFS from the entry (node 0, its own idom).
	type frame struct{ node, next int }
	stack := []frame{{0, 0}}
	d.tin[0] = clock
	clock++
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(kids[fr.node]) {
			c := kids[fr.node][fr.next]
			fr.next++
			d.tin[c] = clock
			clock++
			stack = append(stack, frame{c, 0})
			continue
		}
		d.tout[fr.node] = clock
		clock++
		stack = stack[:len(stack)-1]
	}
	return d
}

func (d *domIntervals) dominates(a, b int) bool {
	return d.tin[a] <= d.tin[b] && d.tout[b] <= d.tout[a]
}

func scalar(k ast.BasicKind) types.Type { return types.Scalar(k) }

// isArraySource reports whether v is a value the engines can treat as an
// array descriptor: only these four opcodes materialize one.
func isArraySource(v ir.Value) bool {
	ins, ok := v.(*ir.Instr)
	if !ok || ins.Typ.Dims < 1 {
		return false
	}
	switch ins.Op {
	case ir.OpParam, ir.OpGlobal, ir.OpAllocArray, ir.OpView:
		return true
	}
	return false
}

// cellElem returns the element kind of a scalar memory cell (a rank-0 view
// or a scalar global), or Invalid if v is not one. OpLoad/OpStore operands
// must be cells: anything else would make the engines index the simulated
// heap through a zero descriptor.
func cellElem(v ir.Value) ast.BasicKind {
	ins, ok := v.(*ir.Instr)
	if !ok {
		return ast.Invalid
	}
	switch ins.Op {
	case ir.OpView:
		if ins.Typ.Dims == 0 {
			return ins.Typ.Elem
		}
	case ir.OpGlobal:
		if ins.Global != nil && !ins.Global.IsArray() {
			return ins.Global.Elem
		}
	}
	return ast.Invalid
}

func wantArg(ins *ir.Instr, i int, t types.Type) error {
	if ins.Args[i].Type() != t {
		return fmt.Errorf("operand %d is %s, want %s", i, ins.Args[i].Type(), t)
	}
	return nil
}

func wantArity(ins *ir.Instr, n int) error {
	if len(ins.Args) != n {
		return fmt.Errorf("%d operands, want %d", len(ins.Args), n)
	}
	return nil
}

func wantResult(ins *ir.Instr, t types.Type) error {
	if ins.Typ != t {
		return fmt.Errorf("result type %s, want %s", ins.Typ, t)
	}
	return nil
}

func wantTargets(ins *ir.Instr, n int) error {
	if len(ins.Targets) != n {
		return fmt.Errorf("%d branch targets, want %d", len(ins.Targets), n)
	}
	return nil
}

func numericScalar(t types.Type) bool {
	return t.Dims == 0 && (t.Elem == ast.Int || t.Elem == ast.Float)
}

func checkInstr(f *ir.Func, ins *ir.Instr) error {
	if !ins.IsTerminator() {
		if err := wantTargets(ins, 0); err != nil {
			return err
		}
	}
	switch ins.Op {
	case ir.OpParam:
		if err := wantArity(ins, 0); err != nil {
			return err
		}
		if ins.Slot >= len(f.Params) || f.Params[ins.Slot] != ins {
			return fmt.Errorf("stray OpParam (slot %d not in the param list)", ins.Slot)
		}
		if !scalarKind(ins.Typ.Elem) {
			return fmt.Errorf("bad param type %s", ins.Typ)
		}

	case ir.OpBin:
		if err := wantArity(ins, 2); err != nil {
			return err
		}
		switch {
		case ins.Bin >= ir.BinAdd && ins.Bin <= ir.BinRem:
			if !numericScalar(ins.Typ) {
				return fmt.Errorf("arithmetic result %s", ins.Typ)
			}
			for i := range ins.Args {
				if err := wantArg(ins, i, ins.Typ); err != nil {
					return err
				}
			}
		case ins.Bin == ir.BinAnd || ins.Bin == ir.BinOr:
			if err := wantResult(ins, scalar(ast.Bool)); err != nil {
				return err
			}
			for i := range ins.Args {
				if err := wantArg(ins, i, scalar(ast.Bool)); err != nil {
					return err
				}
			}
		default: // comparisons
			if err := wantResult(ins, scalar(ast.Bool)); err != nil {
				return err
			}
			at := ins.Args[0].Type()
			if at.Dims != 0 || !scalarKind(at.Elem) {
				return fmt.Errorf("comparison of %s", at)
			}
			if err := wantArg(ins, 1, at); err != nil {
				return err
			}
		}

	case ir.OpNeg:
		if err := wantArity(ins, 1); err != nil {
			return err
		}
		if !numericScalar(ins.Typ) {
			return fmt.Errorf("negation of %s", ins.Typ)
		}
		return wantArg(ins, 0, ins.Typ)

	case ir.OpNot:
		if err := wantArity(ins, 1); err != nil {
			return err
		}
		if err := wantResult(ins, scalar(ast.Bool)); err != nil {
			return err
		}
		return wantArg(ins, 0, scalar(ast.Bool))

	case ir.OpConvert:
		if err := wantArity(ins, 1); err != nil {
			return err
		}
		if !numericScalar(ins.Typ) || !numericScalar(ins.Args[0].Type()) {
			return fmt.Errorf("convert %s to %s", ins.Args[0].Type(), ins.Typ)
		}

	case ir.OpPhi:
		if len(ins.Args) != len(ins.Block.Preds) || len(ins.Args) == 0 {
			return fmt.Errorf("%d phi operands for %d preds", len(ins.Args), len(ins.Block.Preds))
		}
		if ins.Typ.Dims != 0 || !scalarKind(ins.Typ.Elem) {
			return fmt.Errorf("phi of %s", ins.Typ)
		}
		for i := range ins.Args {
			if err := wantArg(ins, i, ins.Typ); err != nil {
				return err
			}
		}

	case ir.OpAllocArray:
		if ins.Typ.Dims < 1 || ins.Typ.Dims > maxArrayDims || !scalarKind(ins.Typ.Elem) {
			return fmt.Errorf("alloc of %s", ins.Typ)
		}
		if err := wantArity(ins, ins.Typ.Dims); err != nil {
			return err
		}
		for i := range ins.Args {
			if err := wantArg(ins, i, scalar(ast.Int)); err != nil {
				return err
			}
		}

	case ir.OpGlobal:
		if ins.Global == nil {
			return fmt.Errorf("nil global")
		}
		if err := wantArity(ins, 0); err != nil {
			return err
		}
		want := types.Type{Elem: ins.Global.Elem, Dims: len(ins.Global.Dims)}
		return wantResult(ins, want)

	case ir.OpView:
		if err := wantArity(ins, 2); err != nil {
			return err
		}
		if !isArraySource(ins.Args[0]) {
			return fmt.Errorf("view of non-array %s", ins.Args[0].Type())
		}
		base := ins.Args[0].Type()
		if err := wantResult(ins, types.Type{Elem: base.Elem, Dims: base.Dims - 1}); err != nil {
			return err
		}
		return wantArg(ins, 1, scalar(ast.Int))

	case ir.OpLoad:
		if err := wantArity(ins, 1); err != nil {
			return err
		}
		k := cellElem(ins.Args[0])
		if k == ast.Invalid {
			return fmt.Errorf("load from non-cell")
		}
		return wantResult(ins, scalar(k))

	case ir.OpStore:
		if err := wantArity(ins, 2); err != nil {
			return err
		}
		k := cellElem(ins.Args[0])
		if k == ast.Invalid {
			return fmt.Errorf("store to non-cell")
		}
		return wantArg(ins, 1, scalar(k))

	case ir.OpCall:
		if ins.Callee == nil {
			return fmt.Errorf("nil callee")
		}
		if err := wantResult(ins, scalar(ins.Callee.Ret)); err != nil {
			return err
		}
		if err := wantArity(ins, len(ins.Callee.Params)); err != nil {
			return err
		}
		for i, p := range ins.Callee.Params {
			if err := wantArg(ins, i, p.Typ); err != nil {
				return err
			}
			if p.Typ.Dims > 0 && !isArraySource(ins.Args[i]) {
				return fmt.Errorf("operand %d: array argument from non-array source", i)
			}
		}

	case ir.OpBuiltin:
		return checkBuiltin(ins)

	case ir.OpBr:
		if err := wantTargets(ins, 2); err != nil {
			return err
		}
		if err := wantArity(ins, 1); err != nil {
			return err
		}
		return wantArg(ins, 0, scalar(ast.Bool))

	case ir.OpJump:
		if err := wantTargets(ins, 1); err != nil {
			return err
		}
		return wantArity(ins, 0)

	case ir.OpRet:
		if err := wantTargets(ins, 0); err != nil {
			return err
		}
		if f.Ret == ast.Void {
			return wantArity(ins, 0)
		}
		if err := wantArity(ins, 1); err != nil {
			return err
		}
		return wantArg(ins, 0, scalar(f.Ret))

	default:
		return fmt.Errorf("unsupported opcode")
	}
	return nil
}

func checkBuiltin(ins *ir.Instr) error {
	unary := func(arg, ret ast.BasicKind) error {
		if err := wantArity(ins, 1); err != nil {
			return err
		}
		if err := wantArg(ins, 0, scalar(arg)); err != nil {
			return err
		}
		return wantResult(ins, scalar(ret))
	}
	switch ins.Builtin {
	case "sqrt", "fabs", "floor", "exp", "log", "sin", "cos":
		return unary(ast.Float, ast.Float)
	case "abs":
		return unary(ast.Int, ast.Int)
	case "srand":
		return unary(ast.Int, ast.Void)
	case "pow":
		if err := wantArity(ins, 2); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if err := wantArg(ins, i, scalar(ast.Float)); err != nil {
				return err
			}
		}
		return wantResult(ins, scalar(ast.Float))
	case "min", "max":
		if err := wantArity(ins, 2); err != nil {
			return err
		}
		if !numericScalar(ins.Typ) {
			return fmt.Errorf("%s of %s", ins.Builtin, ins.Typ)
		}
		for i := 0; i < 2; i++ {
			if err := wantArg(ins, i, ins.Typ); err != nil {
				return err
			}
		}
	case "rand":
		if err := wantArity(ins, 0); err != nil {
			return err
		}
		return wantResult(ins, scalar(ast.Int))
	case "frand":
		if err := wantArity(ins, 0); err != nil {
			return err
		}
		return wantResult(ins, scalar(ast.Float))
	case "dim":
		if err := wantArity(ins, 2); err != nil {
			return err
		}
		if !isArraySource(ins.Args[0]) {
			return fmt.Errorf("dim of non-array")
		}
		if err := wantArg(ins, 1, scalar(ast.Int)); err != nil {
			return err
		}
		return wantResult(ins, scalar(ast.Int))
	case "printval":
		if err := wantArity(ins, 1); err != nil {
			return err
		}
		t := ins.Args[0].Type()
		if t.Dims != 0 || !scalarKind(t.Elem) {
			return fmt.Errorf("printval of %s", t)
		}
		return wantResult(ins, scalar(ast.Void))
	case "printstr", "printnl":
		if err := wantArity(ins, 0); err != nil {
			return err
		}
		return wantResult(ins, scalar(ast.Void))
	default:
		return fmt.Errorf("unknown builtin %q", ins.Builtin)
	}
	return nil
}
