package irbundle

import (
	"strings"
	"testing"

	"kremlin/internal/ast"
	"kremlin/internal/ir"
	"kremlin/internal/source"
	"kremlin/internal/types"
)

// newFunc builds an empty function registered in a fresh single-function
// module, for hand-assembling hostile IR the compiler would never emit.
func newFunc(name string, ret ast.BasicKind) (*ir.Func, *ir.Module) {
	f := &ir.Func{Name: name, Ret: ret}
	mod := &ir.Module{Name: "t.kr", Funcs: []*ir.Func{f}, ByName: map[string]*ir.Func{name: f}}
	f.Module = mod
	return f, mod
}

func emit(b *ir.Block, ins *ir.Instr) *ir.Instr {
	ins.Block = b
	ins.ID = b.Func.NewValueID()
	ins.BreakArg = -1
	b.Instrs = append(b.Instrs, ins)
	return ins
}

func ret(b *ir.Block) { emit(b, &ir.Instr{Op: ir.OpRet}) }

func jump(b, to *ir.Block) {
	emit(b, &ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{to}})
	ir.AddEdge(b, to)
}

func br(b *ir.Block, cond ir.Value, then, els *ir.Block) {
	emit(b, &ir.Instr{Op: ir.OpBr, Args: []ir.Value{cond}, Targets: []*ir.Block{then, els}})
	ir.AddEdge(b, then)
	ir.AddEdge(b, els)
}

func file() *source.File { return source.NewFile("t.kr", "void main() {}\n") }

// roundtrip encodes mod and decodes the bytes, returning the decode error.
func roundtrip(mod *ir.Module) error {
	_, err := Decode(Encode(file(), mod))
	return err
}

func TestDecodeAcceptsMinimalModule(t *testing.T) {
	f, mod := newFunc("main", ast.Void)
	ret(f.NewBlock("entry"))
	dec, err := Decode(Encode(file(), mod))
	if err != nil {
		t.Fatalf("minimal module rejected: %v", err)
	}
	if dec.Module.Main() == nil || len(dec.Module.Main().Blocks) != 1 {
		t.Fatalf("decoded module malformed: %s", dec.Module)
	}
}

// TestDecodeRestoresIDBounds pins the SetIDBounds contract: IDs handed out
// after decoding never collide with decoded ones, even when the encoded
// numbering had gaps (as after dead-value elimination).
func TestDecodeRestoresIDBounds(t *testing.T) {
	f, mod := newFunc("main", ast.Void)
	b := f.NewBlock("entry")
	f.NewValueID() // burn an ID: decoded numbering must keep the gap
	ret(b)
	dec, err := Decode(Encode(file(), mod))
	if err != nil {
		t.Fatal(err)
	}
	df := dec.Module.Main()
	if got, want := df.NumValues(), f.NumValues(); got != want {
		t.Fatalf("NumValues = %d, want %d", got, want)
	}
	seen := map[int]bool{}
	for _, blk := range df.Blocks {
		for _, ins := range blk.Instrs {
			seen[ins.ID] = true
		}
	}
	if id := df.NewValueID(); seen[id] {
		t.Fatalf("fresh ID %d collides with a decoded instruction", id)
	}
	if nb := df.NewBlock("x"); nb.ID <= df.Blocks[0].ID {
		t.Fatalf("fresh block ID %d not beyond decoded blocks", nb.ID)
	}
}

// TestValidatorRejections feeds the decoder modules that are structurally
// encodable but that the compiler could never produce; every one must be
// rejected with a diagnostic (and none may panic).
func TestValidatorRejections(t *testing.T) {
	cases := []struct {
		name string
		want string // substring of the expected error
		mod  func() *ir.Module
	}{
		{"no-main", "no main function", func() *ir.Module {
			f, mod := newFunc("notmain", ast.Void)
			ret(f.NewBlock("entry"))
			return mod
		}},
		{"main-with-params", "parameters", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			b := f.NewBlock("entry")
			p := emit(b, &ir.Instr{Op: ir.OpParam, Typ: types.Scalar(ast.Int)})
			f.Params = []*ir.Instr{p}
			ret(b)
			return mod
		}},
		{"no-terminator", "terminator", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			b := f.NewBlock("entry")
			emit(b, &ir.Instr{Op: ir.OpBuiltin, Builtin: "printnl", Typ: types.Scalar(ast.Void)})
			return mod
		}},
		{"terminator-mid-block", "mid-block", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			b := f.NewBlock("entry")
			ret(b)
			ret(b)
			return mod
		}},
		{"phi-after-non-phi", "phi after non-phi", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			entry := f.NewBlock("entry")
			loop := f.NewBlock("loop")
			jump(entry, loop)
			c := emit(loop, &ir.Instr{Op: ir.OpNot, Typ: types.Scalar(ast.Bool), Args: []ir.Value{&ir.ConstBool{}}})
			emit(loop, &ir.Instr{Op: ir.OpPhi, Typ: types.Scalar(ast.Bool), Args: []ir.Value{&ir.ConstBool{}, c}})
			jump(loop, loop)
			return mod
		}},
		{"pred-without-edge", "without a matching edge", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			entry := f.NewBlock("entry")
			other := f.NewBlock("other")
			jump(entry, other)
			ret(other)
			other.Preds = append(other.Preds, other) // claims a self-edge that no branch makes
			return mod
		}},
		{"unreachable-block", "unreachable", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			ret(f.NewBlock("entry"))
			ret(f.NewBlock("island"))
			return mod
		}},
		{"irreducible-cfg", "irreducible", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			entry := f.NewBlock("entry")
			a := f.NewBlock("a")
			b := f.NewBlock("b")
			br(entry, &ir.ConstBool{V: true}, a, b)
			jump(a, b)
			jump(b, a) // two-headed loop: neither head dominates the other
			return mod
		}},
		{"type-confused-add", "operand", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			b := f.NewBlock("entry")
			emit(b, &ir.Instr{Op: ir.OpBin, Bin: ir.BinAdd, Typ: types.Scalar(ast.Int),
				Args: []ir.Value{&ir.ConstInt{V: 1}, &ir.ConstFloat{V: 2}}})
			ret(b)
			return mod
		}},
		{"load-from-scalar", "non-cell", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			b := f.NewBlock("entry")
			emit(b, &ir.Instr{Op: ir.OpLoad, Typ: types.Scalar(ast.Int), Args: []ir.Value{&ir.ConstInt{V: 7}}})
			ret(b)
			return mod
		}},
		{"view-of-scalar", "non-array", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			b := f.NewBlock("entry")
			emit(b, &ir.Instr{Op: ir.OpView, Typ: types.Scalar(ast.Int),
				Args: []ir.Value{&ir.ConstInt{V: 0}, &ir.ConstInt{V: 0}}})
			ret(b)
			return mod
		}},
		{"use-not-dominated", "dominate", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			entry := f.NewBlock("entry")
			l := f.NewBlock("l")
			r := f.NewBlock("r")
			m := f.NewBlock("m")
			br(entry, &ir.ConstBool{V: true}, l, r)
			x := emit(l, &ir.Instr{Op: ir.OpNeg, Typ: types.Scalar(ast.Int), Args: []ir.Value{&ir.ConstInt{V: 1}}})
			jump(l, m)
			jump(r, m)
			emit(m, &ir.Instr{Op: ir.OpNeg, Typ: types.Scalar(ast.Int), Args: []ir.Value{x}})
			ret(m)
			return mod
		}},
		{"phi-pred-mismatch", "phi operands", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			entry := f.NewBlock("entry")
			next := f.NewBlock("next")
			jump(entry, next)
			phi := &ir.Instr{Op: ir.OpPhi, Typ: types.Scalar(ast.Int),
				Args: []ir.Value{&ir.ConstInt{}, &ir.ConstInt{}}}
			phi.Block = next
			phi.ID = f.NewValueID()
			phi.BreakArg = -1
			next.Instrs = append(next.Instrs, phi)
			ret(next)
			return mod
		}},
		{"stray-param", "stray OpParam", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			b := f.NewBlock("entry")
			emit(b, &ir.Instr{Op: ir.OpParam, Typ: types.Scalar(ast.Int), Slot: 3})
			ret(b)
			return mod
		}},
		{"unknown-builtin", "unknown builtin", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			b := f.NewBlock("entry")
			emit(b, &ir.Instr{Op: ir.OpBuiltin, Builtin: "system", Typ: types.Scalar(ast.Int)})
			ret(b)
			return mod
		}},
		{"br-on-int", "operand 0", func() *ir.Module {
			f, mod := newFunc("main", ast.Void)
			entry := f.NewBlock("entry")
			out := f.NewBlock("out")
			emit(entry, &ir.Instr{Op: ir.OpBr, Args: []ir.Value{&ir.ConstInt{V: 1}},
				Targets: []*ir.Block{out, out}})
			ir.AddEdge(entry, out)
			ir.AddEdge(entry, out)
			ret(out)
			return mod
		}},
		{"ret-kind-mismatch", "operand 0", func() *ir.Module {
			f, mod := newFunc("main", ast.Int)
			b := f.NewBlock("entry")
			emit(b, &ir.Instr{Op: ir.OpRet, Args: []ir.Value{&ir.ConstFloat{V: 1}}})
			return mod
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := roundtrip(tc.mod())
			if err == nil {
				t.Fatalf("hostile module accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeNeverPanics drives the decoder over systematically damaged
// bundles — truncations at every length and bit flips at every offset —
// asserting it always returns (possibly an error) instead of panicking.
func TestDecodeNeverPanics(t *testing.T) {
	f, mod := newFunc("main", ast.Void)
	b := f.NewBlock("entry")
	g := &ir.Global{Name: "g", Elem: ast.Int, Dims: []int64{4}, Index: 0}
	mod.Globals = []*ir.Global{g}
	gi := emit(b, &ir.Instr{Op: ir.OpGlobal, Global: g, Typ: types.Type{Elem: ast.Int, Dims: 1}})
	v := emit(b, &ir.Instr{Op: ir.OpView, Typ: types.Scalar(ast.Int), Args: []ir.Value{gi, &ir.ConstInt{V: 1}}})
	emit(b, &ir.Instr{Op: ir.OpStore, Args: []ir.Value{v, &ir.ConstInt{V: 9}}})
	ret(b)
	data := Encode(file(), mod)
	if _, err := Decode(data); err != nil {
		t.Fatalf("baseline bundle rejected: %v", err)
	}
	for n := 0; n <= len(data); n++ {
		_, _ = Decode(data[:n])
	}
	for off := range data {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[off] ^= bit
			_, _ = Decode(mut)
		}
	}
}
