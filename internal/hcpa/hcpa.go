// Package hcpa turns a compressed parallelism profile into the paper's
// per-region metrics. Self-parallelism (§4.3) factors the parallelism of a
// region's children out of the region's own parallelism:
//
//	SP(R) = (Σₖ cp(child(R,k)) + SW(R)) / cp(R)
//	SW(R) = work(R) − Σₖ work(child(R,k))
//
// Both are computed directly on the dictionary alphabet — each character
// summarizes many dynamic regions, so one pass over the alphabet covers
// the whole trace without decompression (§4.4).
package hcpa

import (
	"kremlin/internal/ir"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
)

// EntryMetrics are the per-alphabet-character metrics.
type EntryMetrics struct {
	SelfP     float64 // self-parallelism of this dynamic region shape
	TotalP    float64 // work / cp (classic CPA parallelism)
	SelfWork  uint64
	ChildCP   uint64 // Σ count·cp(child)
	NumChild  int64
	IdealTime float64 // work / SP: the planner's lower bound on parallel ET
}

// RegionStats aggregates all dynamic instances of one static region.
type RegionStats struct {
	Region    *regions.Region
	Instances int64
	TotalWork uint64  // Σ work over instances
	TotalCP   uint64  // Σ cp over instances
	IdealTime float64 // Σ work/SP over instances
	Coverage  float64 // TotalWork / program work
	SelfP     float64 // work-weighted effective self-parallelism
	TotalP    float64 // work-weighted total-parallelism
	AvgIters  float64 // average child count (loop: iterations)
	DOALL     bool    // loop whose SP tracks its iteration count
	// HasReduction marks regions containing a statically-detected reduction
	// (the OpenMP personality requires extra work to amortize them).
	HasReduction bool
}

// Summary is the profile-wide aggregation.
type Summary struct {
	Prog      *regions.Program
	Prof      *profile.Profile
	Entries   []EntryMetrics // parallel to Prof.Dict.Entries
	Counts    []int64        // instance count per character
	Stats     []*RegionStats // indexed by region ID; nil if never executed
	Executed  []*RegionStats // non-nil entries of Stats
	TotalWork uint64
}

// DOALLRatio is how close a loop's self-parallelism must be to its
// iteration count to be classified DOALL.
const DOALLRatio = 0.9

// Summarize computes metrics for every alphabet character and aggregates
// them per static region.
func Summarize(prof *profile.Profile, prog *regions.Program) *Summary {
	dict := prof.Dict
	s := &Summary{
		Prog:    prog,
		Prof:    prof,
		Entries: make([]EntryMetrics, len(dict.Entries)),
		Counts:  prof.InstanceCounts(),
		Stats:   make([]*RegionStats, len(prog.Regions)),
	}

	// Children are interned before parents, so one ascending pass works.
	for c, e := range dict.Entries {
		var childCP, childWork uint64
		var nchild int64
		for _, k := range e.Children {
			ce := dict.Entries[k.Char]
			childCP += uint64(k.Count) * ce.CP
			childWork += uint64(k.Count) * ce.Work
			nchild += k.Count
		}
		sw := uint64(0)
		if e.Work > childWork {
			sw = e.Work - childWork
		}
		cp := e.CP
		if cp == 0 {
			cp = 1
		}
		sp := float64(childCP+sw) / float64(cp)
		if sp < 1 {
			sp = 1
		}
		tp := float64(e.Work) / float64(cp)
		if tp < 1 {
			tp = 1
		}
		s.Entries[c] = EntryMetrics{
			SelfP:     sp,
			TotalP:    tp,
			SelfWork:  sw,
			ChildCP:   childCP,
			NumChild:  nchild,
			IdealTime: float64(e.Work) / sp,
		}
	}

	// Aggregate per static region.
	for c, e := range dict.Entries {
		n := s.Counts[c]
		if n == 0 {
			continue
		}
		r := prog.Regions[e.StaticID]
		st := s.Stats[r.ID]
		if st == nil {
			st = &RegionStats{Region: r}
			s.Stats[r.ID] = st
		}
		st.Instances += n
		st.TotalWork += uint64(n) * e.Work
		st.TotalCP += uint64(n) * e.CP
		st.IdealTime += float64(n) * s.Entries[c].IdealTime
		st.AvgIters += float64(n * s.Entries[c].NumChild)
	}
	s.TotalWork = prof.TotalWork()

	for _, st := range s.Stats {
		if st == nil {
			continue
		}
		if st.IdealTime > 0 {
			st.SelfP = float64(st.TotalWork) / st.IdealTime
		} else {
			st.SelfP = 1
		}
		if st.SelfP < 1 {
			st.SelfP = 1
		}
		if st.TotalCP > 0 {
			st.TotalP = float64(st.TotalWork) / float64(st.TotalCP)
		} else {
			st.TotalP = 1
		}
		if st.TotalP < 1 {
			st.TotalP = 1
		}
		if s.TotalWork > 0 {
			st.Coverage = float64(st.TotalWork) / float64(s.TotalWork)
		}
		if st.Instances > 0 {
			st.AvgIters /= float64(st.Instances)
		}
		if st.Region.Kind == regions.LoopRegion && st.AvgIters >= 2 {
			st.DOALL = st.SelfP >= DOALLRatio*st.AvgIters
		}
		st.HasReduction = regionHasReduction(st.Region, prog)
		s.Executed = append(s.Executed, st)
	}
	return s
}

// regionHasReduction reports whether any instruction in the region's
// source extent carries a reduction annotation.
func regionHasReduction(r *regions.Region, prog *regions.Program) bool {
	fi := prog.PerFunc[r.Func]
	if fi == nil {
		return false
	}
	for blk, path := range fi.NestPath {
		inRegion := false
		for _, pr := range path {
			if pr == r {
				inRegion = true
				break
			}
		}
		if !inRegion {
			continue
		}
		for _, ins := range blk.Instrs {
			if ins.Reduction {
				return true
			}
		}
	}
	return false
}

// ByID returns stats for a region ID, or nil.
func (s *Summary) ByID(id int) *RegionStats {
	if id < 0 || id >= len(s.Stats) {
		return nil
	}
	return s.Stats[id]
}

// LowParallelismShare classifies every executed region against the
// threshold and reports the fraction with parallelism below it — once
// using self-parallelism and once using total-parallelism. This reproduces
// the paper's §6.2 comparison (self-P flags 2.28× more regions as
// low-parallelism than total-P, eliminating false positives).
func (s *Summary) LowParallelismShare(threshold float64) (selfLow, totalLow float64, n int) {
	var sl, tl int
	for _, st := range s.Executed {
		n++
		if st.SelfP < threshold {
			sl++
		}
		if st.TotalP < threshold {
			tl++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return float64(sl) / float64(n), float64(tl) / float64(n), n
}

// SerialWork returns the summed work of instructions; exposed so callers
// can sanity-check profile work against an uninstrumented run.
func SerialWork(f *ir.Func) uint64 {
	var w uint64
	for _, b := range f.Blocks {
		for _, ins := range b.Instrs {
			w += ins.Latency()
		}
	}
	return w
}
