package hcpa

import (
	"math"
	"testing"
	"testing/quick"

	"kremlin/internal/ir"
	"kremlin/internal/profile"
	"kremlin/internal/regions"
	"kremlin/internal/source"
)

// synthProgram builds a minimal region structure: main func region (0),
// loop region (1), body region (2).
func synthProgram() *regions.Program {
	f := &ir.Func{Name: "main"}
	f.NewBlock("entry")
	m := &ir.Module{Name: "synth", Funcs: []*ir.Func{f}, ByName: map[string]*ir.Func{"main": f}}
	src := source.NewFile("synth.kr", "int main() { }\n")
	prog := regions.Analyze(m, src)
	// Hand-add loop and body regions under main.
	root := prog.PerFunc[f].Root
	loop := &regions.Region{ID: 1, Kind: regions.LoopRegion, Func: f, Parent: root, Name: "L", File: "synth.kr", StartLine: 1, EndLine: 1}
	body := &regions.Region{ID: 2, Kind: regions.BodyRegion, Func: f, Parent: loop, Name: "B", File: "synth.kr", StartLine: 1, EndLine: 1}
	root.Children = append(root.Children, loop)
	loop.Children = append(loop.Children, body)
	prog.Regions = append(prog.Regions, loop, body)
	return prog
}

// figure5Profile encodes Figure 5: a loop with n children of critical path
// cpi each; parallel=true means the loop's own cp equals cpi (children
// overlap fully), serial means cp = n*cpi.
func figure5Profile(n int, cpi uint64, parallel bool) *profile.Profile {
	p := profile.New()
	body := p.Dict.Intern(2, cpi, cpi, nil) // serial body: work == cp
	loopCP := cpi * uint64(n)
	if parallel {
		loopCP = cpi
	}
	loop := p.Dict.Intern(1, cpi*uint64(n), loopCP, map[int32]int64{body: int64(n)})
	root := p.Dict.Intern(0, cpi*uint64(n)+10, loopCP+10, map[int32]int64{loop: 1})
	p.AddRoot(root)
	return p
}

// TestFigure5Parallel: SP of a region whose n children fully overlap is n.
func TestFigure5Parallel(t *testing.T) {
	prog := synthProgram()
	for _, n := range []int{2, 8, 100} {
		sum := Summarize(figure5Profile(n, 50, true), prog)
		st := sum.ByID(1)
		if st == nil {
			t.Fatal("loop stats missing")
		}
		if math.Abs(st.SelfP-float64(n)) > 1e-9 {
			t.Errorf("n=%d: SP = %.3f, want %d", n, st.SelfP, n)
		}
		if !st.DOALL {
			t.Errorf("n=%d: parallel loop should be DOALL", n)
		}
	}
}

// TestFigure5Serial: SP of a region whose children must execute serially
// is 1.
func TestFigure5Serial(t *testing.T) {
	prog := synthProgram()
	sum := Summarize(figure5Profile(10, 50, false), prog)
	st := sum.ByID(1)
	if math.Abs(st.SelfP-1) > 1e-9 {
		t.Errorf("SP = %.3f, want 1", st.SelfP)
	}
	if st.DOALL {
		t.Error("serial loop must not be DOALL")
	}
	// Classic CPA (total parallelism) also reports 1 here.
	if math.Abs(st.TotalP-1) > 1e-9 {
		t.Errorf("TP = %.3f, want 1", st.TotalP)
	}
}

// TestSelfParallelismLocalizes: the parent of a parallel loop has SP near
// 1 even though its total-parallelism is high — the paper's core claim.
func TestSelfParallelismLocalizes(t *testing.T) {
	prog := synthProgram()
	sum := Summarize(figure5Profile(100, 50, true), prog)
	rootSt := sum.ByID(0)
	if rootSt.TotalP < 50 {
		t.Errorf("root total-parallelism = %.1f, want high (inherited)", rootSt.TotalP)
	}
	if rootSt.SelfP > 2 {
		t.Errorf("root self-parallelism = %.1f, want ~1 (localized away)", rootSt.SelfP)
	}
}

// TestSelfWorkCapture: self-work contributes parallelism at the parent.
func TestSelfWorkCapture(t *testing.T) {
	p := profile.New()
	child := p.Dict.Intern(1, 100, 100, nil) // serial child
	// Parent: child plus 300 units of its own work, cp only 100 -> its own
	// work overlaps the child: SP = (100+300)/100 = 4.
	parent := p.Dict.Intern(0, 400, 100, map[int32]int64{child: 1})
	p.AddRoot(parent)
	sum := Summarize(p, synthProgram())
	if sp := sum.Entries[parent].SelfP; math.Abs(sp-4) > 1e-9 {
		t.Errorf("SP = %.3f, want 4", sp)
	}
}

func TestLowParallelismShare(t *testing.T) {
	prog := synthProgram()
	sum := Summarize(figure5Profile(100, 50, true), prog)
	selfLow, totalLow, n := sum.LowParallelismShare(5.0)
	if n != 3 {
		t.Fatalf("regions = %d", n)
	}
	// Root and body are low by self-P; loop is not. By total-P, root and
	// loop are high (inherited), body low.
	if math.Abs(selfLow-2.0/3.0) > 1e-9 {
		t.Errorf("selfLow = %.3f", selfLow)
	}
	if math.Abs(totalLow-1.0/3.0) > 1e-9 {
		t.Errorf("totalLow = %.3f", totalLow)
	}
}

// TestInvariants: for any well-formed profile, 1 <= SP <= TP per entry,
// and coverage of the root is 1.
func TestInvariantsProperty(t *testing.T) {
	prog := synthProgram()
	check := func(works []uint16, cps []uint16) bool {
		if len(works) == 0 || len(cps) == 0 {
			return true
		}
		p := profile.New()
		var chars []int32
		var totalKids uint64
		for i, w := range works {
			cp := uint64(cps[i%len(cps)])%(uint64(w)+1) + 1
			kids := map[int32]int64{}
			if len(chars) > 0 && i%2 == 0 {
				kids[chars[len(chars)-1]] = 1
				totalKids++
			}
			work := uint64(w) + 1
			// Ensure work >= cp and >= child work for well-formedness.
			if len(kids) > 0 {
				cw := p.Dict.Entries[chars[len(chars)-1]].Work
				work += cw
				if ccp := p.Dict.Entries[chars[len(chars)-1]].CP; cp < ccp {
					cp = ccp
				}
			}
			chars = append(chars, p.Dict.Intern(int32(i%3), work, cp, kids))
		}
		p.AddRoot(chars[len(chars)-1])
		sum := Summarize(p, prog)
		for _, em := range sum.Entries {
			if em.SelfP < 1 || em.TotalP < 1 {
				return false
			}
			if em.SelfP > em.TotalP+1e-9 {
				return false // TP >= SP always: work >= sum(child cp) + self work
			}
		}
		for _, st := range sum.Executed {
			if st.Coverage < 0 || st.Coverage > 1.0001 {
				return false
			}
			if st.SelfP > st.TotalP+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestByIDBounds(t *testing.T) {
	sum := Summarize(figure5Profile(3, 10, true), synthProgram())
	if sum.ByID(-1) != nil || sum.ByID(999) != nil {
		t.Error("out-of-range ByID should be nil")
	}
}
