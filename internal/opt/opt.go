// Package opt implements the IR optimizer the paper applies to the
// instrumented program (§3: "by statically inserting instrumentation,
// Kremlin can heavily optimize the code to produce a more efficient
// instrumented binary", run in a way that does not taint the analysis).
// It performs constant folding, algebraic simplification, constant-branch
// folding, phi simplification, and dead-value elimination over the SSA IR,
// iterated to a fixed point.
//
// The passes preserve observable semantics exactly (including print output
// and evaluation order of side effects); only pure value computations are
// folded or removed, so profiling an optimized module measures the same
// dependence structure with less bookkeeping work — just like compiling
// the instrumented C with -O3 in the original toolchain.
package opt

import (
	"math"

	"kremlin/internal/ast"
	"kremlin/internal/ir"
)

// Stats reports what the optimizer did.
type Stats struct {
	Folded         int // instructions replaced by constants or operands
	RemovedDead    int // unused pure instructions deleted
	BranchesFolded int // conditional branches with constant conditions
	BlocksRemoved  int // unreachable blocks pruned
	PhisSimplified int
	CSERemoved     int // redundant computations value-numbered away
	Iterations     int
}

// Run optimizes every function of m to a fixed point.
func Run(m *ir.Module) Stats {
	var st Stats
	for _, f := range m.Funcs {
		st.add(runFunc(f))
	}
	return st
}

func (s *Stats) add(o Stats) {
	s.Folded += o.Folded
	s.RemovedDead += o.RemovedDead
	s.BranchesFolded += o.BranchesFolded
	s.BlocksRemoved += o.BlocksRemoved
	s.PhisSimplified += o.PhisSimplified
	s.CSERemoved += o.CSERemoved
	if o.Iterations > s.Iterations {
		s.Iterations = o.Iterations
	}
}

const maxPasses = 10

func runFunc(f *ir.Func) Stats {
	var st Stats
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		replace := map[*ir.Instr]ir.Value{}

		resolve := func(v ir.Value) ir.Value {
			for {
				ins, ok := v.(*ir.Instr)
				if !ok {
					return v
				}
				r, ok := replace[ins]
				if !ok {
					return v
				}
				v = r
			}
		}

		// Fold values.
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				for i, a := range ins.Args {
					ins.Args[i] = resolve(a)
				}
				if ins.Reduction || ins.Induction {
					// Keep annotated instructions intact: the runtime's
					// dependence-breaking rules hang off them.
					continue
				}
				if v, n := fold(ins); v != nil {
					replace[ins] = v
					st.Folded += n.Folded
					st.PhisSimplified += n.PhisSimplified
					changed = true
				}
			}
		}
		// Apply outstanding replacements everywhere.
		if len(replace) > 0 {
			for _, b := range f.Blocks {
				for _, ins := range b.Instrs {
					for i, a := range ins.Args {
						ins.Args[i] = resolve(a)
					}
				}
			}
			// Drop the replaced instructions themselves.
			for _, b := range f.Blocks {
				kept := b.Instrs[:0]
				for _, ins := range b.Instrs {
					if _, dead := replace[ins]; !dead {
						kept = append(kept, ins)
					}
				}
				b.Instrs = kept
			}
		}

		// Fold constant branches.
		for _, b := range f.Blocks {
			term := b.Terminator()
			if term == nil || term.Op != ir.OpBr {
				continue
			}
			c, ok := term.Args[0].(*ir.ConstBool)
			if !ok {
				continue
			}
			taken, dropped := term.Targets[0], term.Targets[1]
			if !c.V {
				taken, dropped = dropped, taken
			}
			term.Op = ir.OpJump
			term.Args = nil
			term.Targets = []*ir.Block{taken}
			removeEdge(b, dropped)
			if taken == dropped {
				// Both arms identical: the edge list shrank by one; the phi
				// fixup in removeEdge handled it.
				_ = taken
			}
			b.Succs = []*ir.Block{taken}
			st.BranchesFolded++
			changed = true
		}

		// Local value numbering (CSE).
		if n := localValueNumbering(f); n > 0 {
			st.CSERemoved += n
			changed = true
		}

		// Dead value elimination.
		uses := map[*ir.Instr]int{}
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				for _, a := range ins.Args {
					if ai, ok := a.(*ir.Instr); ok {
						uses[ai]++
					}
				}
			}
		}
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, ins := range b.Instrs {
				if uses[ins] == 0 && removable(ins) {
					st.RemovedDead++
					changed = true
					continue
				}
				kept = append(kept, ins)
			}
			b.Instrs = kept
		}

		// Prune newly unreachable blocks (with phi maintenance).
		before := len(f.Blocks)
		pruneUnreachable(f)
		st.BlocksRemoved += before - len(f.Blocks)

		st.Iterations = pass + 1
		if !changed {
			break
		}
	}
	return st
}

// removable reports whether an unused instruction can be deleted without
// changing observable behavior.
func removable(ins *ir.Instr) bool {
	switch ins.Op {
	case ir.OpBin, ir.OpNeg, ir.OpNot, ir.OpConvert, ir.OpPhi, ir.OpView,
		ir.OpGlobal, ir.OpLoad, ir.OpAllocArray:
		return true
	case ir.OpBuiltin:
		switch ins.Builtin {
		case "sqrt", "fabs", "floor", "exp", "log", "sin", "cos", "pow",
			"abs", "min", "max", "dim":
			return true
		}
	}
	return false
}

// fold tries to replace ins with a simpler value. Returns nil when nothing
// applies.
func fold(ins *ir.Instr) (ir.Value, Stats) {
	var st Stats
	switch ins.Op {
	case ir.OpPhi:
		// A phi whose (non-self) incoming values are all identical
		// collapses to that value.
		var uniq ir.Value
		for _, a := range ins.Args {
			if a == ins {
				continue
			}
			if uniq == nil {
				uniq = a
			} else if !sameValue(uniq, a) {
				return nil, st
			}
		}
		if uniq != nil {
			st.PhisSimplified++
			return uniq, st
		}
	case ir.OpNeg:
		switch c := ins.Args[0].(type) {
		case *ir.ConstInt:
			st.Folded++
			return &ir.ConstInt{V: -c.V}, st
		case *ir.ConstFloat:
			st.Folded++
			return &ir.ConstFloat{V: -c.V}, st
		}
	case ir.OpNot:
		if c, ok := ins.Args[0].(*ir.ConstBool); ok {
			st.Folded++
			return &ir.ConstBool{V: !c.V}, st
		}
	case ir.OpConvert:
		switch c := ins.Args[0].(type) {
		case *ir.ConstInt:
			if ins.Typ.Elem == ast.Float {
				st.Folded++
				return &ir.ConstFloat{V: float64(c.V)}, st
			}
		case *ir.ConstFloat:
			if ins.Typ.Elem == ast.Int {
				st.Folded++
				return &ir.ConstInt{V: int64(c.V)}, st
			}
		}
	case ir.OpBin:
		if v := foldBin(ins); v != nil {
			st.Folded++
			return v, st
		}
	}
	return nil, st
}

func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	switch av := a.(type) {
	case *ir.ConstInt:
		bv, ok := b.(*ir.ConstInt)
		return ok && av.V == bv.V
	case *ir.ConstFloat:
		bv, ok := b.(*ir.ConstFloat)
		return ok && av.V == bv.V && !math.Signbit(av.V) == !math.Signbit(bv.V)
	case *ir.ConstBool:
		bv, ok := b.(*ir.ConstBool)
		return ok && av.V == bv.V
	}
	return false
}

func foldBin(ins *ir.Instr) ir.Value {
	x, y := ins.Args[0], ins.Args[1]
	xi, xisInt := x.(*ir.ConstInt)
	yi, yisInt := y.(*ir.ConstInt)
	xf, xisF := x.(*ir.ConstFloat)
	yf, yisF := y.(*ir.ConstFloat)

	boolOf := func(v bool) ir.Value { return &ir.ConstBool{V: v} }

	// Constant-constant folding.
	if xisInt && yisInt {
		a, b := xi.V, yi.V
		switch ins.Bin {
		case ir.BinAdd:
			return &ir.ConstInt{V: a + b}
		case ir.BinSub:
			return &ir.ConstInt{V: a - b}
		case ir.BinMul:
			return &ir.ConstInt{V: a * b}
		case ir.BinDiv:
			if b != 0 {
				return &ir.ConstInt{V: a / b}
			}
		case ir.BinRem:
			if b != 0 {
				return &ir.ConstInt{V: a % b}
			}
		case ir.BinEq:
			return boolOf(a == b)
		case ir.BinNe:
			return boolOf(a != b)
		case ir.BinLt:
			return boolOf(a < b)
		case ir.BinLe:
			return boolOf(a <= b)
		case ir.BinGt:
			return boolOf(a > b)
		case ir.BinGe:
			return boolOf(a >= b)
		}
	}
	if xisF && yisF {
		a, b := xf.V, yf.V
		switch ins.Bin {
		case ir.BinAdd:
			return &ir.ConstFloat{V: a + b}
		case ir.BinSub:
			return &ir.ConstFloat{V: a - b}
		case ir.BinMul:
			return &ir.ConstFloat{V: a * b}
		case ir.BinDiv:
			return &ir.ConstFloat{V: a / b}
		case ir.BinEq:
			return boolOf(a == b)
		case ir.BinNe:
			return boolOf(a != b)
		case ir.BinLt:
			return boolOf(a < b)
		case ir.BinLe:
			return boolOf(a <= b)
		case ir.BinGt:
			return boolOf(a > b)
		case ir.BinGe:
			return boolOf(a >= b)
		}
	}

	// Integer algebraic identities (float identities are not applied:
	// x+0.0 and x*1.0 are not identities for signed zeros and NaNs).
	if ins.Typ.Elem == ast.Int {
		switch ins.Bin {
		case ir.BinAdd:
			if yisInt && yi.V == 0 {
				return x
			}
			if xisInt && xi.V == 0 {
				return y
			}
		case ir.BinSub:
			if yisInt && yi.V == 0 {
				return x
			}
		case ir.BinMul:
			if yisInt && yi.V == 1 {
				return x
			}
			if xisInt && xi.V == 1 {
				return y
			}
			if (yisInt && yi.V == 0) || (xisInt && xi.V == 0) {
				return &ir.ConstInt{V: 0}
			}
		case ir.BinDiv:
			if yisInt && yi.V == 1 {
				return x
			}
		}
	}
	return nil
}

// removeEdge removes the CFG edge b -> target, keeping target's phis
// aligned with its shrunken predecessor list.
func removeEdge(b *ir.Block, target *ir.Block) {
	idx := -1
	for i, p := range target.Preds {
		if p == b {
			idx = i
			break
		}
	}
	if idx == -1 {
		return
	}
	target.Preds = append(target.Preds[:idx], target.Preds[idx+1:]...)
	for _, ins := range target.Instrs {
		if ins.Op != ir.OpPhi {
			break
		}
		ins.Args = append(ins.Args[:idx], ins.Args[idx+1:]...)
	}
}

// pruneUnreachable removes unreachable blocks with phi maintenance (unlike
// irbuild.RemoveUnreachable, which runs pre-SSA).
func pruneUnreachable(f *ir.Func) {
	reach := map[*ir.Block]bool{f.Entry(): true}
	stack := []*ir.Block{f.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(reach) == len(f.Blocks) {
		return
	}
	// Remove edges from dead predecessors (phi-aware).
	for _, b := range f.Blocks {
		if !reach[b] {
			continue
		}
		for i := len(b.Preds) - 1; i >= 0; i-- {
			if !reach[b.Preds[i]] {
				removeEdge(b.Preds[i], b)
			}
		}
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.ID = i
	}
}
