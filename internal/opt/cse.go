package opt

import (
	"fmt"
	"strings"

	"kremlin/internal/ir"
)

// localValueNumbering eliminates redundant pure computations within each
// basic block: two instructions with the same opcode and operands compute
// the same value, so the second can reuse the first's result. Loads are
// numbered too, but any store, call, or impure builtin invalidates the
// load table (a conservative memory model — no alias analysis).
//
// Array-address computations (OpView chains) and repeated subexpressions
// in stencil kernels are the main beneficiaries; the paper's point that
// the instrumented binary can be "heavily optimized" without tainting the
// analysis applies: availability-time semantics are unchanged because the
// reused value carries exactly the same dependence set.
func localValueNumbering(f *ir.Func) int {
	removed := 0
	for _, b := range f.Blocks {
		seen := map[string]*ir.Instr{}  // value key -> defining instruction
		loads := map[string]*ir.Instr{} // load key  -> defining load
		replace := map[*ir.Instr]ir.Value{}
		resolve := func(v ir.Value) ir.Value {
			if ins, ok := v.(*ir.Instr); ok {
				if r, ok := replace[ins]; ok {
					return r
				}
			}
			return v
		}
		kept := b.Instrs[:0]
		for _, ins := range b.Instrs {
			for i, a := range ins.Args {
				ins.Args[i] = resolve(a)
			}
			switch {
			case ins.Op == ir.OpLoad:
				key := valueKey(ins)
				if prev, ok := loads[key]; ok {
					replace[ins] = prev
					removed++
					continue
				}
				loads[key] = ins
			case clobbersMemory(ins):
				loads = map[string]*ir.Instr{}
			case numerable(ins):
				key := valueKey(ins)
				if prev, ok := seen[key]; ok {
					replace[ins] = prev
					removed++
					continue
				}
				seen[key] = ins
			}
			kept = append(kept, ins)
		}
		b.Instrs = kept
		// Replacements may be referenced from later blocks.
		if len(replace) > 0 {
			for _, ob := range f.Blocks {
				for _, ins := range ob.Instrs {
					for i, a := range ins.Args {
						if ai, ok := a.(*ir.Instr); ok {
							if r, ok := replace[ai]; ok {
								ins.Args[i] = r
							}
						}
					}
				}
			}
		}
	}
	return removed
}

// numerable reports whether the instruction computes a pure value eligible
// for value numbering.
func numerable(ins *ir.Instr) bool {
	if ins.Reduction || ins.Induction {
		return false // annotated instructions must stay distinct
	}
	switch ins.Op {
	case ir.OpBin, ir.OpNeg, ir.OpNot, ir.OpConvert, ir.OpView, ir.OpGlobal:
		return true
	case ir.OpBuiltin:
		switch ins.Builtin {
		case "sqrt", "fabs", "floor", "exp", "log", "sin", "cos", "pow",
			"abs", "min", "max", "dim":
			return true
		}
	}
	return false
}

// clobbersMemory reports whether executing the instruction may change what
// subsequent loads observe.
func clobbersMemory(ins *ir.Instr) bool {
	switch ins.Op {
	case ir.OpStore, ir.OpCall:
		return true
	case ir.OpBuiltin:
		// srand mutates RNG state, print mutates the output stream; neither
		// touches data memory, but treat calls conservatively anyway.
		switch ins.Builtin {
		case "printval", "printstr", "printnl", "srand", "rand", "frand":
			return true
		}
	}
	return false
}

// valueKey canonically encodes (op, operands) for numbering; commutative
// operators sort their operand keys so a+b and b+a number identically.
func valueKey(ins *ir.Instr) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d/%s", ins.Op, ins.Bin, ins.Builtin)
	if ins.Global != nil {
		fmt.Fprintf(&sb, "/g%d", ins.Global.Index)
	}
	keys := make([]string, len(ins.Args))
	for i, a := range ins.Args {
		keys[i] = operandKey(a)
	}
	if ins.Op == ir.OpBin && commutative(ins.Bin) && len(keys) == 2 && keys[0] > keys[1] {
		keys[0], keys[1] = keys[1], keys[0]
	}
	for _, k := range keys {
		sb.WriteByte('/')
		sb.WriteString(k)
	}
	return sb.String()
}

func commutative(b ir.BinKind) bool {
	switch b {
	case ir.BinAdd, ir.BinMul, ir.BinEq, ir.BinNe, ir.BinAnd, ir.BinOr:
		return true
	}
	return false
}

func operandKey(a ir.Value) string {
	switch v := a.(type) {
	case *ir.Instr:
		return fmt.Sprintf("%%%d", v.ID)
	case *ir.ConstInt:
		return fmt.Sprintf("i%d", v.V)
	case *ir.ConstFloat:
		return fmt.Sprintf("f%x", v.V)
	case *ir.ConstBool:
		return fmt.Sprintf("b%t", v.V)
	}
	return "?"
}
