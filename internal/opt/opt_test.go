package opt_test

import (
	"bytes"
	"testing"

	"kremlin"
	"kremlin/internal/ir"
	. "kremlin/internal/opt"
)

// compilePair compiles src twice, unoptimized and optimized.
func compilePair(t *testing.T, src string) (*kremlin.Program, *kremlin.Program) {
	t.Helper()
	plain, err := kremlin.Compile("t.kr", src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := kremlin.CompileWith("t.kr", src, kremlin.CompileOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return plain, opt
}

func output(t *testing.T, p *kremlin.Program) (string, uint64) {
	t.Helper()
	var buf bytes.Buffer
	res, err := p.Run(&kremlin.RunConfig{Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), res.Work
}

func countInstrs(p *kremlin.Program) int {
	n := 0
	for _, f := range p.Module.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

func TestConstantFolding(t *testing.T) {
	src := `
int main() {
	int x = 2 * 3 + 4;           // folds to 10
	float y = (1.5 + 2.5) * 2.0; // folds to 8
	bool b = 3 < 5;              // folds to true
	print(x, y, b);
	return 0;
}`
	plain, optd := compilePair(t, src)
	po, _ := output(t, plain)
	oo, _ := output(t, optd)
	if po != oo {
		t.Fatalf("optimization changed output: %q vs %q", oo, po)
	}
	if optd.Opt.Folded == 0 {
		t.Error("nothing folded")
	}
	if countInstrs(optd) >= countInstrs(plain) {
		t.Errorf("instruction count did not shrink: %d vs %d", countInstrs(optd), countInstrs(plain))
	}
}

func TestConstantBranchFolding(t *testing.T) {
	src := `
int main() {
	int x = 0;
	if (1 < 2) {
		x = 10;
	} else {
		x = 20;
	}
	print(x);
	return 0;
}`
	plain, optd := compilePair(t, src)
	po, _ := output(t, plain)
	oo, _ := output(t, optd)
	if po != oo || po != "10\n" {
		t.Fatalf("outputs: plain %q opt %q", po, oo)
	}
	if optd.Opt.BranchesFolded == 0 {
		t.Error("constant branch not folded")
	}
	if optd.Opt.BlocksRemoved == 0 {
		t.Error("dead arm not pruned")
	}
	for _, b := range optd.Module.Main().Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpBr {
				t.Error("conditional branch survived")
			}
		}
	}
}

func TestDeadValueElimination(t *testing.T) {
	src := `
float a[10];
int main() {
	float unused = a[3] * 2.0 + sqrt(9.0); // pure, unused
	int keep = 5;
	print(keep);
	return 0;
}`
	plain, optd := compilePair(t, src)
	po, _ := output(t, plain)
	oo, _ := output(t, optd)
	if po != oo {
		t.Fatalf("output changed: %q vs %q", oo, po)
	}
	if optd.Opt.RemovedDead == 0 {
		t.Error("dead values survived")
	}
}

func TestSideEffectsNeverRemoved(t *testing.T) {
	src := `
int n;
int bump() { n = n + 1; return n; }
int main() {
	bump();         // result unused, call must stay
	int x = rand(); // result unused, RNG state must advance
	_use(x);
	print(n);
	return 0;
}
void _use(int v) { if (v < -1) { print(v); } }
`
	plain, optd := compilePair(t, src)
	po, _ := output(t, plain)
	oo, _ := output(t, optd)
	if po != oo || po != "1\n" {
		t.Fatalf("outputs: plain %q opt %q", po, oo)
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	src := `
int f(int x) { return (x + 0) * 1 + (x - 0) / 1 + x * 0; }
int main() { print(f(21)); return 0; }`
	plain, optd := compilePair(t, src)
	po, _ := output(t, plain)
	oo, _ := output(t, optd)
	if po != oo || po != "42\n" {
		t.Fatalf("outputs: plain %q opt %q", po, oo)
	}
	_, pw := output(t, plain)
	_, ow := output(t, optd)
	if ow >= pw {
		t.Errorf("optimized work %d >= plain %d", ow, pw)
	}
}

func TestFloatIdentitiesNotApplied(t *testing.T) {
	// x + 0.0 is not an identity for -0.0; the optimizer must leave float
	// arithmetic alone unless both operands are constants.
	src := `
int main() {
	float z = -0.0;
	float r = z + 0.0; // must still evaluate: result is +0.0
	print(r == 0.0);
	return 0;
}`
	plain, optd := compilePair(t, src)
	po, _ := output(t, plain)
	oo, _ := output(t, optd)
	if po != oo {
		t.Fatalf("float semantics changed: %q vs %q", oo, po)
	}
}

func TestAnnotationsSurviveOptimization(t *testing.T) {
	src := `
float a[100];
float total;
int main() {
	for (int i = 0; i < 100; i++) {
		total = total + a[i];
	}
	print(total);
	return 0;
}`
	_, optd := compilePair(t, src)
	found := false
	for _, f := range optd.Module.Funcs {
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.Reduction || ins.Induction {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("dependence-breaking annotations lost after optimization")
	}
}

func TestOptimizedProfilePreservesShape(t *testing.T) {
	src := `
float a[200];
float b[200];
void doall() {
	for (int i = 0; i < 200; i++) {
		b[i] = a[i] * (1.0 + 1.0) + (3.0 - 3.0);
	}
}
int main() { doall(); return 0; }`
	plain, optd := compilePair(t, src)
	pp, _, err := plain.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	op, _, err := optd.Profile(nil)
	if err != nil {
		t.Fatal(err)
	}
	pSum := plain.Summarize(pp)
	oSum := optd.Summarize(op)
	var pSP, oSP float64
	for _, st := range pSum.Executed {
		if st.Region.Func.Name == "doall" && st.Region.Kind == 1 { // loop
			pSP = st.SelfP
		}
	}
	for _, st := range oSum.Executed {
		if st.Region.Func.Name == "doall" && st.Region.Kind == 1 {
			oSP = st.SelfP
		}
	}
	if pSP < 150 || oSP < 150 {
		t.Errorf("DOALL SP degraded: plain %.1f, optimized %.1f", pSP, oSP)
	}
	if op.TotalWork() >= pp.TotalWork() {
		t.Errorf("optimized work %d >= plain %d", op.TotalWork(), pp.TotalWork())
	}
}

func TestFixedPointTerminates(t *testing.T) {
	src := `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		for (int j = 0; j < 10; j++) {
			s += i * j;
		}
	}
	print(s);
	return 0;
}`
	_, optd := compilePair(t, src)
	if optd.Opt.Iterations >= 10 {
		t.Errorf("optimizer did not reach a fixed point (%d passes)", optd.Opt.Iterations)
	}
}

// TestStatsAccumulate exercises Run directly on a module.
func TestRunOnModule(t *testing.T) {
	p, err := kremlin.Compile("t.kr", "int main() { print(1+1); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	st := Run(p.Module)
	if st.Folded == 0 {
		t.Error("expected folding on 1+1")
	}
}

// TestCSEEliminatesRedundantExpressions: identical pure subexpressions in
// one block compute once.
func TestCSE(t *testing.T) {
	src := `
float a[64];
int main() {
	int i = 3;
	float x = a[i] * 2.0 + a[i] * 2.0; // a[i]*2.0 computed once
	float y = sqrt(x) + sqrt(x);       // sqrt(x) computed once
	print(x, y);
	return 0;
}`
	plain, optd := compilePair(t, src)
	po, pw := output(t, plain)
	oo, ow := output(t, optd)
	if po != oo {
		t.Fatalf("CSE changed output: %q vs %q", oo, po)
	}
	if optd.Opt.CSERemoved == 0 {
		t.Error("no redundant expressions eliminated")
	}
	if ow >= pw {
		t.Errorf("optimized work %d >= plain %d", ow, pw)
	}
}

// TestCSECommutativity: a+b and b+a number identically.
func TestCSECommutative(t *testing.T) {
	src := `
int g[4];
int main() {
	int a = g[0];
	int b = g[1];
	int x = a * b;
	int y = b * a;
	print(x + y);
	return 0;
}`
	_, optd := compilePair(t, src)
	if optd.Opt.CSERemoved == 0 {
		t.Error("commutative pair not value-numbered")
	}
}

// TestCSELoadsInvalidatedByStores: a store between two identical loads
// must keep the second load.
func TestCSELoadsInvalidated(t *testing.T) {
	src := `
float a[8];
int main() {
	a[2] = 1.0;
	float before = a[2];
	a[2] = 2.0;
	float after = a[2]; // must reload: the store changed it
	print(before, after);
	return 0;
}`
	plain, optd := compilePair(t, src)
	po, _ := output(t, plain)
	oo, _ := output(t, optd)
	if po != oo || po != "1 2\n" {
		t.Fatalf("outputs: plain %q opt %q", po, oo)
	}
}

// TestCSERandNotShared: two rand() calls must stay distinct.
func TestCSERandNotShared(t *testing.T) {
	src := `
int main() {
	srand(5);
	int a = rand();
	int b = rand();
	print(a == b);
	return 0;
}`
	plain, optd := compilePair(t, src)
	po, _ := output(t, plain)
	oo, _ := output(t, optd)
	if po != oo || po != "false\n" {
		t.Fatalf("outputs: plain %q opt %q", po, oo)
	}
}

// TestOptimizerIdempotent: running Run twice changes nothing further.
func TestOptimizerIdempotent(t *testing.T) {
	p, err := kremlin.Compile("t.kr", `
float a[32];
int main() {
	float s = 0.0;
	for (int i = 0; i < 32; i++) {
		s = s + a[i] * 2.0 + a[i] * 2.0;
	}
	print(s + float(1 + 2));
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	first := Run(p.Module)
	second := Run(p.Module)
	if second.Folded != 0 || second.RemovedDead != 0 || second.CSERemoved != 0 || second.BranchesFolded != 0 {
		t.Errorf("second pass still changed things: %+v (first: %+v)", second, first)
	}
}
