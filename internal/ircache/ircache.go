// Package ircache is the serve layer's content-addressed compile cache:
// source hash → verified, ready-to-execute program. A warm submission skips
// the whole front end (lex/parse/typecheck/irbuild/analysis and the
// bytecode compile) even when the whole-job cache misses — the same program
// resubmitted with different shards or a different personality, or an
// IR bundle of a program first seen as source.
//
// The cache is a bounded LRU (entry count and held-bytes caps, either 0 =
// unbounded) with single-flight misses: concurrent submissions of the same
// never-seen program compile once, and the rest wait for that one build
// instead of burning a worker each. Cached values are immutable by
// contract — a *kremlin.Program is safe to share across concurrent jobs
// (instrumentation events are precomputed at build time and bytecode
// lowering is behind a sync.Once), which is what makes this cache sound.
// Failed builds are never cached: a compile error is cheap to reproduce
// and the submission mix shouldn't pin garbage.
package ircache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key is a truncated SHA-256 content hash, domain-separated by input kind
// so a source text and a bundle with identical bytes can never alias.
type Key [16]byte

func (k Key) String() string { return hex.EncodeToString(k[:]) }

func keyOf(domain string, parts ...[]byte) Key {
	h := sha256.New()
	h.Write([]byte(domain))
	for _, p := range parts {
		var n [8]byte
		for i, l := 0, len(p); i < 8; i, l = i+1, l>>8 {
			n[i] = byte(l)
		}
		h.Write(n[:])
		h.Write(p)
	}
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// SourceKey addresses a Kr source submission. The program name
// participates: it is baked into region labels, so the same text under two
// names compiles to observably different programs.
func SourceKey(name, src string) Key {
	return keyOf("kr-src\x00", []byte(name), []byte(src))
}

// BundleKey addresses a precompiled KRIB1 bundle submission.
func BundleKey(data []byte) Key {
	return keyOf("kr-irb\x00", data)
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits    uint64 // lookups served from the cache, including joins of an in-flight build
	Misses  uint64 // builds actually run
	Evicted uint64 // entries displaced by the entry or byte bound
	Entries int    // entries currently held
	Bytes   int64  // estimated bytes currently held
}

// Cache is the bounded single-flight LRU. The zero value is not usable;
// call New.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[Key]*list.Element
	calls      map[Key]*call
	bytes      int64
	hits       uint64
	misses     uint64
	evicted    uint64
}

type item struct {
	key  Key
	val  interface{}
	cost int64
}

type call struct {
	done chan struct{}
	val  interface{}
	err  error
}

// New builds a cache holding at most maxEntries entries and maxBytes
// estimated bytes (either 0 = unbounded in that dimension).
func New(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
		calls:      make(map[Key]*call),
	}
}

// Load returns the cached value for k, building it on a miss. build
// returns the value, its estimated byte cost, and an error; errors
// propagate to every waiter and are not cached. Concurrent Loads of the
// same absent key run build exactly once.
func (c *Cache) Load(k Key, build func() (interface{}, int64, error)) (interface{}, error) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*item).val
		c.mu.Unlock()
		return v, nil
	}
	if cl, ok := c.calls[k]; ok {
		// Someone else is already compiling this program; joining their
		// build still skips the front end, so it counts as a hit.
		c.hits++
		c.mu.Unlock()
		<-cl.done
		return cl.val, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.calls[k] = cl
	c.misses++
	c.mu.Unlock()

	var cost int64
	func() {
		// A panicking build must release its waiters (with an error) before
		// the panic propagates, or every joiner deadlocks.
		defer func() {
			if r := recover(); r != nil {
				c.abort(k, cl)
				panic(r)
			}
		}()
		cl.val, cost, cl.err = build()
	}()

	c.mu.Lock()
	delete(c.calls, k)
	if cl.err == nil {
		c.items[k] = c.ll.PushFront(&item{key: k, val: cl.val, cost: cost})
		c.bytes += cost
		c.evict()
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.val, cl.err
}

// abort releases a failed in-flight build's waiters.
func (c *Cache) abort(k Key, cl *call) {
	c.mu.Lock()
	delete(c.calls, k)
	c.mu.Unlock()
	if cl.err == nil {
		cl.err = errPanicked
	}
	close(cl.done)
}

type panicError struct{}

func (panicError) Error() string { return "ircache: build panicked" }

var errPanicked error = panicError{}

// evict drops least-recently-used entries until both bounds hold.
// Called with c.mu held.
func (c *Cache) evict() {
	for c.ll.Len() > 0 {
		over := (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1)
		if !over {
			return
		}
		el := c.ll.Back()
		it := el.Value.(*item)
		c.ll.Remove(el)
		delete(c.items, it.key)
		c.bytes -= it.cost
		c.evicted++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:    c.hits,
		Misses:  c.misses,
		Evicted: c.evicted,
		Entries: c.ll.Len(),
		Bytes:   c.bytes,
	}
}
