package ircache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func k(s string) Key { return SourceKey(s+".kr", s) }

func TestKeyDomainsAndContent(t *testing.T) {
	if SourceKey("a.kr", "body") == BundleKey([]byte("body")) {
		t.Fatal("source and bundle keys alias for identical bytes")
	}
	if SourceKey("a.kr", "body") == SourceKey("b.kr", "body") {
		t.Fatal("program name does not participate in the source key")
	}
	if SourceKey("a.kr", "xy") == SourceKey("a.krx", "y") {
		t.Fatal("length framing missing: shifted boundaries collide")
	}
}

func TestLoadHitMissAndStats(t *testing.T) {
	c := New(8, 0)
	builds := 0
	build := func() (interface{}, int64, error) { builds++; return "v", 10, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Load(k("p"), build)
		if err != nil || v != "v" {
			t.Fatalf("Load = %v, %v", v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(8, 0)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Load(k("bad"), func() (interface{}, int64, error) { calls++; return nil, 0, boom })
		if err != boom {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed build cached (ran %d times, want 2)", calls)
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionOrderAndRefresh(t *testing.T) {
	c := New(2, 0)
	load := func(name string) {
		if _, err := c.Load(k(name), func() (interface{}, int64, error) { return name, 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	load("a")
	load("b")
	load("a") // refresh: a becomes most recent
	load("c") // evicts b, not a
	st := c.Stats()
	if st.Entries != 2 || st.Evicted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	hitsBefore := c.Stats().Hits
	load("a")
	if c.Stats().Hits != hitsBefore+1 {
		t.Fatal("refreshed entry was evicted as if it were oldest")
	}
	load("b") // must rebuild: b was the eviction victim
	if c.Stats().Misses != 4 {
		t.Fatalf("misses = %d, want 4 (a, b, c, b-again)", c.Stats().Misses)
	}
}

func TestByteBound(t *testing.T) {
	c := New(0, 100)
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		if _, err := c.Load(k(name), func() (interface{}, int64, error) { return name, 40, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("holding %d bytes over the 100-byte bound", st.Bytes)
	}
	if st.Entries == 0 {
		t.Fatal("byte bound evicted everything")
	}

	// A single entry over the bound still caches (the bound degrades to
	// one-entry residency rather than thrashing).
	big := New(0, 10)
	if _, err := big.Load(k("huge"), func() (interface{}, int64, error) { return "huge", 1000, nil }); err != nil {
		t.Fatal(err)
	}
	if st := big.Stats(); st.Entries != 1 {
		t.Fatalf("oversized entry not held: %+v", st)
	}
}

// TestSingleFlight pins the stampede contract: N concurrent Loads of one
// absent key run the builder exactly once, everyone gets its value, and
// the joiners count as hits.
func TestSingleFlight(t *testing.T) {
	c := New(8, 0)
	var builds atomic.Int64
	gate := make(chan struct{})
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]interface{}, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals[i], errs[i] = c.Load(k("shared"), func() (interface{}, int64, error) {
				builds.Add(1)
				<-gate // hold the build open so every goroutine joins it
				return "built", 5, nil
			})
		}()
	}
	for c.Stats().Misses == 0 {
	}
	close(gate)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("builder ran %d times, want 1", builds.Load())
	}
	for i := range vals {
		if errs[i] != nil || vals[i] != "built" {
			t.Fatalf("waiter %d got %v, %v", i, vals[i], errs[i])
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, n-1)
	}
}

// TestPanickingBuildReleasesWaiters: a builder panic must not leave
// joiners blocked forever, and the key must stay buildable afterwards.
func TestPanickingBuildReleasesWaiters(t *testing.T) {
	c := New(8, 0)
	started := make(chan struct{})
	joined := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		_, _ = c.Load(k("p"), func() (interface{}, int64, error) {
			close(started)
			// Give the joiner a chance to attach before panicking.
			for c.Stats().Hits == 0 {
			}
			panic("compile exploded")
		})
	}()
	<-started
	go func() {
		_, err := c.Load(k("p"), func() (interface{}, int64, error) { return "fresh", 1, nil })
		joined <- err
	}()
	if err := <-joined; err == nil {
		t.Fatal("joiner of a panicked build reported success")
	}
	// The key is not poisoned: a later Load builds normally.
	v, err := c.Load(k("p"), func() (interface{}, int64, error) { return "fresh", 1, nil })
	if err != nil || v != "fresh" {
		t.Fatalf("post-panic Load = %v, %v", v, err)
	}
}
