package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"kremlin/internal/serve/chaos"
)

// campaignProg runs a few million steps — long enough that a mid-run
// cancellation always lands while the interpreter is executing, short
// enough that a clean run finishes far inside the job deadline.
const campaignProg = `
int main() {
	int acc = 0;
	for (int i = 0; i < 200000; i++) {
		acc = acc + i % 7;
	}
	return acc;
}
`

// TestChaosCampaign is the acceptance gate of the robustness work: ≥200
// deterministic faults (panic / stall / oversize / cancel-mid-run) fired
// into a live daemon under concurrent load must produce zero daemon
// crashes, zero goroutine leaks, a typed error for every faulted job, and
// a bounded p99.
func TestChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is seconds-long; skipped with -short")
	}
	// clients == workers keeps the queue empty, so every job's deadline
	// is spent executing (mid-run cancellations land mid-run, not in the
	// queue) and the fault mix maps 1:1 onto error kinds.
	const (
		jobs       = 220
		clients    = 8
		jobTimeout = 500 * time.Millisecond
	)
	baseline := runtime.NumGoroutine()

	s := New(Config{
		Workers:    8,
		QueueDepth: 64,
		JobTimeout: jobTimeout,
		// Low enough that an oversized program exhausts it in tens of
		// milliseconds — far inside the job deadline, so oversize faults
		// surface as budget_exceeded rather than timeout.
		MaxInsns: 200_000,
		Chaos: &chaos.Injector{
			Seed:        7,
			Every:       1, // every job is faulted
			Stall:       2 * jobTimeout,
			CancelAfter: time.Millisecond,
		},
	})
	ts := httptest.NewServer(s.Handler())

	okKinds := map[string]bool{
		"panic":            true, // injected panic, recovered
		"timeout":          true, // stall overran the deadline / queue wait
		"cancelled":        true, // injected mid-run cancellation
		"budget_exceeded":  true, // oversized input hit the budget
		"mem_cap_exceeded": true,
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		kinds     = map[string]int{}
		failures  []string
	)
	jobc := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobc {
				start := time.Now()
				st, evs := post(t, ts.Client(), ts.URL+"/profile", campaignProg, nil)
				lat := time.Since(start)
				mu.Lock()
				latencies = append(latencies, lat)
				if len(evs) == 0 {
					failures = append(failures, fmt.Sprintf("status %d with no events", st))
				} else {
					last := evs[len(evs)-1]
					if last.Type != "error" || !okKinds[last.Kind] {
						failures = append(failures,
							fmt.Sprintf("status %d, final event %+v — faulted job did not fail with a typed error", st, last))
					} else {
						kinds[last.Kind]++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		jobc <- i
	}
	close(jobc)
	wg.Wait()

	stats := s.Stats()
	if stats.Faulted < 200 {
		t.Errorf("campaign injected %d faults, want ≥ 200", stats.Faulted)
	}
	if stats.Panics == 0 {
		t.Error("campaign injected no panics — fault mix is broken")
	}
	for _, f := range failures {
		t.Error(f)
	}
	for _, kind := range []string{"panic", "timeout", "cancelled", "budget_exceeded"} {
		if kinds[kind] == 0 {
			t.Errorf("no job failed with kind %q — fault mix did not exercise it (got %v)", kind, kinds)
		}
	}

	// The daemon never crashed: it still serves a clean job. (A chaos
	// panic that escaped the recover boundary would have killed this
	// whole test process long before this line.)
	clean := New(Config{Workers: 1})
	func() {
		cts := httptest.NewServer(clean.Handler())
		defer cts.Close()
		if st, evs := post(t, ts.Client(), cts.URL+"/profile", quickProg, nil); st != http.StatusOK {
			t.Errorf("daemon unhealthy after campaign: status = %d (events %v)", st, evs)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := clean.Drain(ctx); err != nil {
		t.Errorf("clean drain: %v", err)
	}

	// p99 stays bounded: every job is under deadline+overhead, so the
	// tail cannot be more than a few multiples of the job timeout.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if limit := 10 * jobTimeout; p99 > limit {
		t.Errorf("p99 latency %v exceeds %v", p99, limit)
	}

	// Zero goroutine leaks: after drain + server close, the count returns
	// to (near) the baseline. Poll — netpoller and timer goroutines take
	// a moment to unwind.
	ts.Close()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosDeterminism pins the injector contract: the schedule is a pure
// function of (seed, seq), and every fault kind appears in a short prefix.
func TestChaosDeterminism(t *testing.T) {
	a := &chaos.Injector{Seed: 42, Every: 1}
	b := &chaos.Injector{Seed: 42, Every: 1}
	seen := map[chaos.Kind]bool{}
	for seq := uint64(0); seq < 256; seq++ {
		fa, fb := a.Fault(seq), b.Fault(seq)
		if fa != fb {
			t.Fatalf("seq %d: same seed gave %v vs %v", seq, fa, fb)
		}
		seen[fa.Kind] = true
	}
	for _, k := range []chaos.Kind{chaos.Panic, chaos.Stall, chaos.CancelMidRun, chaos.Oversize, chaos.CorruptCache} {
		if !seen[k] {
			t.Errorf("kind %v never injected in 256 jobs", k)
		}
	}
	other := &chaos.Injector{Seed: 43, Every: 1}
	diff := 0
	for seq := uint64(0); seq < 256; seq++ {
		if a.Fault(seq) != other.Fault(seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical schedules")
	}
}

// TestChaosEvery pins the sampling contract: Every=N faults ~1/N jobs.
func TestChaosEvery(t *testing.T) {
	in := &chaos.Injector{Seed: 1, Every: 4}
	faulted := 0
	for seq := uint64(0); seq < 1000; seq++ {
		if in.Fault(seq).Kind != chaos.None {
			faulted++
		}
	}
	if faulted < 150 || faulted > 350 {
		t.Errorf("Every=4 faulted %d of 1000 jobs, want ≈250", faulted)
	}
}
