package serve

import (
	"net/http"
	"sync"
	"testing"

	"kremlin/internal/serve/chaos"
)

// stripDone drops the "done" event (its elapsed-ms field is wall-clock
// dependent) so the remaining stream can be compared verbatim.
func stripDone(t *testing.T, evs []Event) []Event {
	t.Helper()
	if len(evs) == 0 || evs[len(evs)-1].Type != "done" {
		t.Fatalf("event stream does not end in done: %v", eventTypes(evs))
	}
	return evs[:len(evs)-1]
}

func sameEvents(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Data != b[i].Data ||
			a[i].KRPF2 != b[i].KRPF2 || a[i].Work != b[i].Work ||
			a[i].Steps != b[i].Steps || a[i].EstSpeedup != b[i].EstSpeedup ||
			len(a[i].Recs) != len(b[i].Recs) || len(a[i].Loops) != len(b[i].Loops) {
			return false
		}
	}
	return true
}

// TestServeJobCache: a repeat submission is answered from the cache with a
// byte-identical stream, and the hit/miss counters surface it.
func TestServeJobCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, JobCache: 8})

	st1, evs1 := post(t, ts.Client(), ts.URL+"/profile?name=quick.kr", quickProg, nil)
	st2, evs2 := post(t, ts.Client(), ts.URL+"/profile?name=quick.kr", quickProg, nil)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("statuses = %d, %d, want 200, 200", st1, st2)
	}
	if !sameEvents(stripDone(t, evs1), stripDone(t, evs2)) {
		t.Fatalf("cached replay differs from original run:\n%v\nvs\n%v", evs1, evs2)
	}

	// A different personality addresses a different entry.
	if st, _ := post(t, ts.Client(), ts.URL+"/profile?personality=cilk", quickProg, nil); st != http.StatusOK {
		t.Fatalf("cilk run: status = %d, want 200", st)
	}

	stats := s.Stats()
	if stats.CacheHits != 1 || stats.CacheMisses != 2 || stats.CacheCorrupt != 0 {
		t.Errorf("cache counters = hits %d misses %d corrupt %d, want 1/2/0",
			stats.CacheHits, stats.CacheMisses, stats.CacheCorrupt)
	}
	if stats.CacheEntries != 2 {
		t.Errorf("CacheEntries = %d, want 2", stats.CacheEntries)
	}
}

// TestServeJobCacheFailuresNotCached: an error outcome must never be
// served from the cache.
func TestServeJobCacheFailuresNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobCache: 8, MaxInsns: 200_000})
	for i := 0; i < 2; i++ {
		st, evs := post(t, ts.Client(), ts.URL+"/profile", slowProg, nil)
		if st != http.StatusRequestEntityTooLarge {
			t.Fatalf("run %d: status = %d, want 413 (events %v)", i, st, evs)
		}
	}
	stats := s.Stats()
	if stats.CacheHits != 0 || stats.CacheMisses != 2 || stats.CacheEntries != 0 {
		t.Errorf("counters after two failed jobs = hits %d misses %d entries %d, want 0/2/0",
			stats.CacheHits, stats.CacheMisses, stats.CacheEntries)
	}
}

// TestServeJobCacheCorruption: a chaos-corrupted entry is detected by its
// checksum, evicted, and the job re-executes — the client still gets the
// correct result, never the damaged payload.
func TestServeJobCacheCorruption(t *testing.T) {
	// Scan for a seed whose schedule corrupts job 1's cache entry and
	// leaves jobs 2 and 3 alone.
	inj := &chaos.Injector{Every: 2}
	for inj.Fault(1).Kind != chaos.CorruptCache ||
		inj.Fault(2).Kind != chaos.None || inj.Fault(3).Kind != chaos.None {
		inj.Seed++
	}
	s, ts := newTestServer(t, Config{Workers: 1, JobCache: 8, Chaos: inj})

	// Job 1 runs clean, is cached, then its entry is poisoned.
	st1, evs1 := post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	// Job 2 finds the damaged entry, falls back to re-execution, re-stores.
	st2, evs2 := post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	// Job 3 is a clean hit on the repaired entry.
	st3, evs3 := post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	for i, st := range []int{st1, st2, st3} {
		if st != http.StatusOK {
			t.Fatalf("job %d: status = %d, want 200", i+1, st)
		}
	}
	if !sameEvents(stripDone(t, evs1), stripDone(t, evs2)) ||
		!sameEvents(stripDone(t, evs2), stripDone(t, evs3)) {
		t.Fatal("event streams diverged across corruption recovery")
	}

	stats := s.Stats()
	if stats.CacheCorrupt != 1 {
		t.Errorf("CacheCorrupt = %d, want 1", stats.CacheCorrupt)
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", stats.CacheHits, stats.CacheMisses)
	}
	if stats.Faulted != 1 {
		t.Errorf("Faulted = %d, want 1", stats.Faulted)
	}
}

// TestJobCacheEviction pins the FIFO bound: the cache never holds more
// than its configured maximum.
func TestJobCacheEviction(t *testing.T) {
	c := newJobCache(2)
	evs := []Event{{Type: "vet"}}
	c.store("a", evs)
	c.store("b", evs)
	c.store("c", evs) // evicts a
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok, _ := c.lookup("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok, _ := c.lookup(k); !ok {
			t.Errorf("entry %q missing", k)
		}
	}
}

// TestJobCacheOverwriteRefreshesEviction pins the re-insertion contract:
// re-storing an existing key moves it to the back of the FIFO. Before the
// fix an overwritten key kept its original position, so the cache's most
// recently produced result could be the very next eviction victim.
func TestJobCacheOverwriteRefreshesEviction(t *testing.T) {
	c := newJobCache(2)
	evs := []Event{{Type: "vet"}}
	c.store("a", evs)
	c.store("b", evs)
	c.store("a", []Event{{Type: "vet", Parallel: 1}}) // refresh: a is now newest
	c.store("c", evs)                                 // must evict b, the oldest
	if _, ok, _ := c.lookup("b"); ok {
		t.Fatal("b survived eviction; the overwritten key kept its stale FIFO slot")
	}
	got, ok, _ := c.lookup("a")
	if !ok {
		t.Fatal("refreshed entry evicted as if it were oldest")
	}
	if len(got) != 1 || got[0].Parallel != 1 {
		t.Fatalf("refresh did not keep the newest payload: %+v", got)
	}
	if _, ok, _ := c.lookup("c"); !ok {
		t.Fatal("newest entry missing")
	}
	if len(c.order) != c.len() {
		t.Fatalf("order list (%d) out of sync with entries (%d)", len(c.order), c.len())
	}
}

// TestJobCacheConcurrentAccess hammers one cache from many goroutines —
// lookups, stores, overwrites, and chaos corruption on overlapping keys —
// under the race detector. It also pins that payload validation happens
// outside the cache lock on a defensive copy: concurrent corruptEntry
// mutating a payload mid-lookup must yield either the clean events or a
// detected corruption, never a torn decode or a data race.
func TestJobCacheConcurrentAccess(t *testing.T) {
	c := newJobCache(4)
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5"}
	evs := []Event{{Type: "profile", Work: 7, KRPF2: "cGF5bG9hZA=="}, {Type: "vet", Parallel: 2}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := keys[(g+i)%len(keys)]
				switch i % 4 {
				case 0, 1:
					got, ok, _ := c.lookup(k)
					if ok && (len(got) != 2 || got[0].Work != 7) {
						t.Errorf("lookup(%s) returned damaged events: %+v", k, got)
						return
					}
				case 2:
					c.store(k, evs)
				case 3:
					c.corruptEntry(k)
				}
			}
		}()
	}
	wg.Wait()
	if c.len() > 4 {
		t.Fatalf("cache over bound after concurrent traffic: %d entries", c.len())
	}
}

// TestJobCacheChecksum pins the unit-level corruption contract.
func TestJobCacheChecksum(t *testing.T) {
	c := newJobCache(4)
	c.store("k", []Event{{Type: "profile", Work: 42}})
	c.corruptEntry("k")
	if _, ok, corrupt := c.lookup("k"); ok || !corrupt {
		t.Fatalf("lookup after corruption: ok=%v corrupt=%v, want miss+corrupt", ok, corrupt)
	}
	// The damaged entry was evicted: the next lookup is a plain miss.
	if _, ok, corrupt := c.lookup("k"); ok || corrupt {
		t.Fatalf("second lookup: ok=%v corrupt=%v, want plain miss", ok, corrupt)
	}
}
