package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"

	"kremlin"
)

// Handler returns the daemon's HTTP API:
//
//	POST /profile?name=prog.kr&personality=openmp&shards=K
//	    Body: Kr source. Response: NDJSON event stream (see Event).
//	POST /v1/jobs?name=prog.kr&personality=openmp&shards=K
//	    Body: Kr source, or a precompiled KRIB1 IR bundle when
//	    Content-Type is application/x-kremlin-ir. Same response stream.
//	GET /healthz
//	    200 "ok" while accepting work, 503 "draining" during drain.
//	GET /statz
//	    JSON Stats snapshot.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /profile", s.handleProfile)
	mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// bundleContentType marks a request body as a precompiled KRIB1 IR bundle.
const bundleContentType = "application/x-kremlin-ir"

// statusForKind maps the error taxonomy onto HTTP statuses. Client
// mistakes are 4xx, daemon faults 5xx, resource walls 413/429/504.
func statusForKind(kind string) int {
	switch kind {
	case "parse_error", "analysis_error":
		return http.StatusBadRequest // 400
	case "runtime_error", "lint_error":
		return http.StatusUnprocessableEntity // 422
	case "budget_exceeded", "mem_cap_exceeded", "body_too_large":
		return http.StatusRequestEntityTooLarge // 413
	case "timeout", "cancelled":
		return http.StatusGatewayTimeout // 504
	case "queue_full", "rate_limited":
		return http.StatusTooManyRequests // 429
	case "draining":
		return http.StatusServiceUnavailable // 503
	default: // panic, internal_error
		return http.StatusInternalServerError // 500
	}
}

// reject refuses a request before admission with a single JSON error
// object shaped exactly like a streamed "error" event.
func (s *Server) reject(w http.ResponseWriter, kind, detail string) {
	w.Header().Set("Content-Type", "application/json")
	if st := statusForKind(kind); st == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(st)
	} else {
		w.WriteHeader(st)
	}
	_ = json.NewEncoder(w).Encode(Event{Type: "error", Kind: kind, Detail: detail})
}

// tenant identifies the caller for rate limiting: the X-Kremlin-Tenant
// header when present, else the client host.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Kremlin-Tenant"); t != "" {
		return t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleProfile is the original source-only submission endpoint.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	s.handleSubmit(w, r, false)
}

// handleJobs additionally accepts precompiled IR bundles by Content-Type.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.handleSubmit(w, r, true)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, allowBundle bool) {
	if s.limiter != nil && !s.limiter.Allow(tenant(r), s.cfg.Now()) {
		s.rateLimited.Add(1)
		s.reject(w, "rate_limited", "tenant over rate limit")
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.reject(w, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	isBundle := false
	if ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";"); strings.TrimSpace(ct) == bundleContentType {
		if !allowBundle {
			s.reject(w, "parse_error", "IR bundles are accepted only at /v1/jobs")
			return
		}
		// The full structural validation happens at compile time; the
		// magic check just gives obviously-mislabeled bodies a crisp
		// refusal before they occupy a queue slot.
		if !kremlin.IsBundle(body) {
			s.reject(w, "parse_error", "body is not a KRIB1 bundle")
			return
		}
		isBundle = true
	}

	name := r.URL.Query().Get("name")
	if name == "" {
		name = "input.kr"
	}
	pers := r.URL.Query().Get("personality")
	if _, ok := Personality(pers); !ok {
		s.reject(w, "analysis_error", fmt.Sprintf("unknown personality %q", pers))
		return
	}
	shards := s.cfg.Shards
	if v := r.URL.Query().Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 64 {
			s.reject(w, "analysis_error", "shards must be an integer in [1,64]")
			return
		}
		shards = n
	}

	// The job deadline starts at admission: queue wait spends the same
	// budget as execution, so a drowning daemon fails jobs fast instead
	// of servicing them long after the client gave up.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel() // unblocks the worker's emit if we stop reading early
	j := &job{
		seq:         s.seq.Add(1),
		name:        name,
		tenant:      tenant(r),
		personality: pers,
		shards:      shards,
		ctx:         ctx,
		cancel:      cancel,
		events:      make(chan Event, 16),
		start:       s.cfg.Now(),
	}
	if isBundle {
		j.bundle = body
	} else {
		j.src = string(body)
	}
	if err := s.submit(j); err != nil {
		if errors.Is(err, errDraining) {
			s.reject(w, "draining", "daemon is draining; retry elsewhere")
		} else {
			s.reject(w, "queue_full", "job queue full; retry later")
		}
		return
	}

	// Stream events as NDJSON. The status line is decided by the first
	// event (errors map onto 4xx/5xx), so WriteHeader is deferred until
	// the worker produces it.
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	wroteHeader := false
	for e := range j.events {
		if !wroteHeader {
			w.Header().Set("Content-Type", "application/x-ndjson")
			if e.Type == "error" {
				w.WriteHeader(statusForKind(e.Kind))
			} else {
				w.WriteHeader(http.StatusOK)
			}
			wroteHeader = true
		}
		if err := enc.Encode(e); err != nil {
			// Client went away; cancel the job and drain the channel so
			// the worker is never blocked on a dead reader.
			cancel()
			for range j.events {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if !wroteHeader {
		// The worker closed the stream without any event — only possible
		// through a bug; keep the contract of always answering.
		s.reject(w, "internal_error", "job produced no events")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Stats().Draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Stats())
}
