// Package chaos is the fault-injection harness for the serve daemon. An
// Injector deterministically decides, per job sequence number, whether the
// job is poisoned and how: a panic inside the worker, a stall that
// overruns the job deadline, a cancellation mid-run, or an oversized input
// that hits the instruction budget. Determinism (pure function of seed and
// sequence number, no clock or global RNG) makes chaos campaigns
// reproducible: the same seed replays the exact same fault schedule.
package chaos

import (
	"fmt"
	"strings"
	"time"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// None leaves the job alone.
	None Kind = iota
	// Panic panics inside the worker servicing the job; the daemon's
	// recover boundary must convert it into a job error.
	Panic
	// Stall blocks the worker for Fault.Delay, long enough to overrun the
	// job deadline; the job must fail with a timeout, not wedge a worker.
	Stall
	// CancelMidRun cancels the job's context Fault.Delay after it starts,
	// simulating a client disconnect during execution.
	CancelMidRun
	// Oversize replaces the job's program with one whose execution
	// overruns the instruction budget.
	Oversize
	// CorruptCache lets the job run clean, then flips a bit in its stored
	// job-cache entry; a later identical submission must detect the
	// checksum mismatch and fall back to re-execution, never serve the
	// damaged payload. A no-op when the daemon runs without a job cache.
	CorruptCache
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case CancelMidRun:
		return "cancel-mid-run"
	case Oversize:
		return "oversize"
	case CorruptCache:
		return "corrupt-cache"
	}
	return fmt.Sprintf("chaos.Kind(%d)", uint8(k))
}

// Fault is the injector's verdict for one job.
type Fault struct {
	Kind Kind
	// Delay is the stall duration (Stall) or the time until cancellation
	// (CancelMidRun); zero otherwise.
	Delay time.Duration
}

// Injector decides faults. The zero value injects nothing; a non-nil
// Injector with Every=1 faults every job.
type Injector struct {
	// Seed selects the (deterministic) fault schedule.
	Seed uint64
	// Every injects a fault into roughly 1 of every Every jobs (1 = every
	// job; 0 behaves as 1).
	Every uint64
	// Stall is the stall duration (default 100ms). Set it above the
	// daemon's job timeout so a stall always overruns the deadline.
	Stall time.Duration
	// CancelAfter is the delay before a mid-run cancellation fires
	// (default 1ms).
	CancelAfter time.Duration
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash that
// keeps the fault schedule a pure function of (seed, seq).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fault returns the (deterministic) fault for job number seq.
func (in *Injector) Fault(seq uint64) Fault {
	if in == nil {
		return Fault{}
	}
	every := in.Every
	if every == 0 {
		every = 1
	}
	h := splitmix64(in.Seed ^ splitmix64(seq))
	if h%every != 0 {
		return Fault{}
	}
	switch (h >> 32) % 5 {
	case 0:
		return Fault{Kind: Panic}
	case 1:
		d := in.Stall
		if d <= 0 {
			d = 100 * time.Millisecond
		}
		return Fault{Kind: Stall, Delay: d}
	case 2:
		d := in.CancelAfter
		if d <= 0 {
			d = time.Millisecond
		}
		return Fault{Kind: CancelMidRun, Delay: d}
	case 3:
		return Fault{Kind: Oversize}
	default:
		return Fault{Kind: CorruptCache}
	}
}

// OversizeProgram returns a valid Kr program whose execution performs
// far more work than any sane instruction budget allows: a triply nested
// loop over ~10^9 iterations. Compilation is cheap; the run must be
// stopped by the budget (limits.ErrBudgetExceeded).
func OversizeProgram() string {
	var sb strings.Builder
	sb.WriteString("int acc;\n")
	sb.WriteString("int main() {\n")
	sb.WriteString("\tfor (int i = 0; i < 1000; i++) {\n")
	sb.WriteString("\t\tfor (int j = 0; j < 1000; j++) {\n")
	sb.WriteString("\t\t\tfor (int k = 0; k < 1000; k++) {\n")
	sb.WriteString("\t\t\t\tacc = acc + i + j + k;\n")
	sb.WriteString("\t\t\t}\n")
	sb.WriteString("\t\t}\n")
	sb.WriteString("\t}\n")
	sb.WriteString("\treturn acc;\n")
	sb.WriteString("}\n")
	return sb.String()
}
