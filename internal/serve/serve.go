// Package serve implements kremlin-serve, the profiling daemon: a
// long-running multi-tenant HTTP service where clients POST a Kr program
// and receive, as a newline-delimited JSON stream, the program's output,
// its compressed KRPF2 parallelism profile, the ranked parallelism plan,
// and the static loop-dependence vet report.
//
// The daemon is built to survive hostile inputs and its own bugs:
//
//   - Every job runs under a context deadline, an instruction budget, a
//     simulated-heap cap, and a shadow-memory page cap; violations come
//     back as typed errors from the limits package, never as a wedged
//     worker.
//   - A bounded worker pool services a bounded queue; when the queue is
//     full the daemon sheds load with 429 instead of accepting unbounded
//     work, and a per-tenant token bucket stops one tenant from starving
//     the rest.
//   - Each job executes behind a recover boundary: a panic anywhere in
//     the profiling pipeline fails that one job with a diagnostic and the
//     process survives.
//   - SIGTERM drains gracefully: in-flight and queued jobs finish, new
//     submissions are refused with 503.
//
// The chaos subpackage injects panics, stalls, cancellations, and
// oversized inputs to prove all of the above under fault load.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"kremlin"
	"kremlin/internal/inccache"
	"kremlin/internal/ircache"
	"kremlin/internal/serve/chaos"
)

// Defaults for the zero Config.
const (
	DefaultWorkers    = 4
	DefaultQueueDepth = 64
	DefaultJobTimeout = 10 * time.Second
	DefaultMaxInsns   = 50_000_000
	DefaultMaxPages   = 1 << 16 // 64Ki shadow pages ≈ 256 MiB of tag state
	DefaultMaxHeap    = 1 << 24 // 16Mi words = 128 MiB simulated heap
	DefaultMaxBody    = 1 << 20 // 1 MiB of Kr source
	DefaultMaxOutput  = 1 << 16 // 64 KiB of captured program output
)

// Config tunes the daemon. The zero value gets the defaults above and no
// rate limiting or chaos.
type Config struct {
	// Workers is the size of the worker pool (concurrent jobs).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// shed with 429.
	QueueDepth int
	// JobTimeout is the per-job wall-clock deadline, measured from
	// admission (queue wait counts — a job that waits out its deadline in
	// the queue fails fast instead of occupying a worker).
	JobTimeout time.Duration
	// MaxInsns is the per-job instruction budget.
	MaxInsns uint64
	// MaxShadowPages caps each job's live shadow-memory pages.
	MaxShadowPages int
	// MaxHeapWords caps each job's simulated heap, in 8-byte words.
	MaxHeapWords uint64
	// MaxBodyBytes caps the POSTed Kr source size.
	MaxBodyBytes int64
	// MaxOutputBytes caps the captured program print output per job.
	MaxOutputBytes int
	// RatePerSec > 0 enables per-tenant token-bucket rate limiting
	// (RateBurst tokens of burst, default 2×rate). Tenants are identified
	// by the X-Kremlin-Tenant header, falling back to the client host.
	RatePerSec float64
	RateBurst  int
	// Shards > 1 runs each job's HCPA collection sharded across that many
	// depth windows.
	Shards int
	// Engine selects the per-job execution engine (default: bytecode VM).
	Engine kremlin.Engine
	// JobCache > 0 memoizes up to that many successful jobs, keyed by a
	// content hash of (payload, personality, shards, engine). A repeat
	// submission is answered from the cache without re-execution; entries
	// are checksummed and a damaged entry falls back to re-execution.
	// 0 disables caching.
	JobCache int
	// CompileCache > 0 memoizes up to that many compiled programs, keyed
	// by a content hash of the submitted source or IR bundle. A near-repeat
	// submission — same program, different personality or shards, or the
	// whole-job cache missed — skips the entire front end
	// (lex/parse/typecheck/irbuild/analysis and bytecode compilation) and
	// re-executes against the shared *kremlin.Program. Concurrent
	// submissions of the same never-seen program compile once
	// (single-flight). CompileCacheBytes optionally bounds the held bytes
	// (0 = unbounded). 0 entries disables the cache.
	CompileCache      int
	CompileCacheBytes int64
	// IncCache, when non-nil, is a shared incremental re-profiling store:
	// jobs replay cached HCPA extents of unchanged sealed functions instead
	// of executing them. Each tenant gets an isolated keyspace inside the
	// shared store (records never replay across tenants), and the store's
	// record bound is global. Profiles stay byte-identical to uncached runs.
	IncCache *inccache.Store
	// DisableLint turns off the lint admission gate. By default a job
	// whose program the abstract interpreter proves faults on every
	// terminating run is rejected with a typed "lint_error" before any
	// worker-pool budget is spent executing it.
	DisableLint bool
	// Chaos, when non-nil, injects deterministic faults into jobs.
	Chaos *chaos.Injector
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = DefaultJobTimeout
	}
	if c.MaxInsns == 0 {
		c.MaxInsns = DefaultMaxInsns
	}
	if c.MaxShadowPages == 0 {
		c.MaxShadowPages = DefaultMaxPages
	}
	if c.MaxHeapWords == 0 {
		c.MaxHeapWords = DefaultMaxHeap
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBody
	}
	if c.MaxOutputBytes == 0 {
		c.MaxOutputBytes = DefaultMaxOutput
	}
	if c.RatePerSec > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RatePerSec)
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a point-in-time snapshot of the daemon's counters.
type Stats struct {
	Accepted    uint64 `json:"accepted"`      // jobs admitted to the queue
	Completed   uint64 `json:"completed"`     // jobs fully serviced (any outcome)
	Shed        uint64 `json:"shed"`          // submissions refused: queue full
	RateLimited uint64 `json:"rate_limited"`  // submissions refused: tenant over rate
	Faulted     uint64 `json:"faulted"`       // jobs poisoned by the chaos injector
	Panics      uint64 `json:"panics"`        // worker panics caught by the recover boundary
	LintReject  uint64 `json:"lint_rejected"` // jobs refused: program provably faults
	InFlight    int64  `json:"in_flight"`     // jobs being serviced right now
	Queued      int    `json:"queued"`        // jobs waiting in the queue
	Draining    bool   `json:"draining"`      // daemon is refusing new work

	CacheHits    uint64 `json:"cache_hits"`    // jobs answered from the job cache
	CacheMisses  uint64 `json:"cache_misses"`  // cacheable jobs that had to execute
	CacheCorrupt uint64 `json:"cache_corrupt"` // cache entries failing their checksum
	CacheEntries int    `json:"cache_entries"` // entries resident right now

	// Compile cache (Config.CompileCache): content hash → compiled program.
	CompileHits    uint64 `json:"compile_cache_hits"`    // jobs that skipped the front end
	CompileMisses  uint64 `json:"compile_cache_misses"`  // compiles actually run
	CompileEvicted uint64 `json:"compile_cache_evicted"` // programs displaced by the bounds
	CompileEntries int    `json:"compile_cache_entries"` // programs resident right now
	CompileBytes   int64  `json:"compile_cache_bytes"`   // estimated bytes held

	// Shared incremental re-profiling store (Config.IncCache), summed over
	// every job serviced so far.
	IncLookups  uint64 `json:"inccache_lookups"`
	IncHits     uint64 `json:"inccache_hits"`     // call extents replayed instead of executed
	IncRecorded uint64 `json:"inccache_recorded"` // fresh extents captured
	IncRecords  int    `json:"inccache_records"`  // records resident in the store
	IncEvicted  int    `json:"inccache_evicted"`  // records displaced by the store bound
	IncCorrupt  int    `json:"inccache_corrupt"`  // store files rejected and repaired at open
}

// Server is the daemon. Create with New, mount Handler on an http.Server,
// stop with Drain.
type Server struct {
	cfg       Config
	limiter   *tenantLimiter
	jobCache  *jobCache      // nil when Config.JobCache == 0
	compCache *ircache.Cache // nil when Config.CompileCache == 0

	mu       sync.Mutex // guards draining and the close of jobs
	draining bool
	jobs     chan *job
	wg       sync.WaitGroup // worker goroutines

	seq         atomic.Uint64
	accepted    atomic.Uint64
	completed   atomic.Uint64
	shed        atomic.Uint64
	rateLimited atomic.Uint64
	faulted     atomic.Uint64
	panics      atomic.Uint64
	lintReject  atomic.Uint64
	inFlight    atomic.Int64

	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	cacheCorrupt atomic.Uint64

	incLookups  atomic.Uint64
	incHits     atomic.Uint64
	incRecorded atomic.Uint64
}

// New starts a daemon: the worker pool is running on return.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		jobs: make(chan *job, cfg.QueueDepth),
	}
	if cfg.RatePerSec > 0 {
		s.limiter = newTenantLimiter(cfg.RatePerSec, cfg.RateBurst)
	}
	if cfg.JobCache > 0 {
		s.jobCache = newJobCache(cfg.JobCache)
	}
	if cfg.CompileCache > 0 {
		s.compCache = ircache.New(cfg.CompileCache, cfg.CompileCacheBytes)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.jobs {
				s.runJob(j)
			}
		}()
	}
	return s
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	st := Stats{
		Accepted:     s.accepted.Load(),
		Completed:    s.completed.Load(),
		Shed:         s.shed.Load(),
		RateLimited:  s.rateLimited.Load(),
		Faulted:      s.faulted.Load(),
		Panics:       s.panics.Load(),
		LintReject:   s.lintReject.Load(),
		InFlight:     s.inFlight.Load(),
		Queued:       len(s.jobs),
		Draining:     draining,
		CacheHits:    s.cacheHits.Load(),
		CacheMisses:  s.cacheMisses.Load(),
		CacheCorrupt: s.cacheCorrupt.Load(),
	}
	if s.jobCache != nil {
		st.CacheEntries = s.jobCache.len()
	}
	if s.compCache != nil {
		cs := s.compCache.Stats()
		st.CompileHits = cs.Hits
		st.CompileMisses = cs.Misses
		st.CompileEvicted = cs.Evicted
		st.CompileEntries = cs.Entries
		st.CompileBytes = cs.Bytes
	}
	if s.cfg.IncCache != nil {
		st.IncLookups = s.incLookups.Load()
		st.IncHits = s.incHits.Load()
		st.IncRecorded = s.incRecorded.Load()
		st.IncRecords = s.cfg.IncCache.Records()
		st.IncEvicted = s.cfg.IncCache.EvictedCount()
		st.IncCorrupt = s.cfg.IncCache.CorruptCount()
	}
	return st
}

// submit enqueues j without blocking. It returns false when the queue is
// full or the daemon is draining (errDraining distinguishes the two).
func (s *Server) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.jobs <- j:
		s.accepted.Add(1)
		return nil
	default:
		s.shed.Add(1)
		return errQueueFull
	}
}

// Drain stops admission and waits for every queued and in-flight job to
// finish, or for ctx to expire. It is idempotent and safe to call
// concurrently; the error is ctx.Err() on a deadline, nil on a clean
// drain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.jobs) // workers drain the queue, then exit
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
