package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"kremlin"
	"kremlin/internal/inccache"
	"kremlin/internal/ircache"
	"kremlin/internal/limits"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
	"kremlin/internal/serve/chaos"
)

// Submission errors (pre-queue refusals).
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("daemon draining")
)

// Event is one line of the NDJSON response stream. Type is always set;
// every other field belongs to one event type and is omitted elsewhere.
//
// The stream for a successful job is: zero or one "output", then
// "profile", "plan", "vet", and "done". A failed job's stream is a single
// "error" event (possibly after an "output" prefix when the run produced
// output before failing).
type Event struct {
	Type string `json:"event"`

	// "error"
	Kind   string `json:"kind,omitempty"`   // error taxonomy: see docs/serve.md
	Detail string `json:"detail,omitempty"` // human-readable message

	// "output"
	Data      string `json:"data,omitempty"` // captured program print output
	Truncated bool   `json:"truncated,omitempty"`

	// "profile"
	Work        uint64 `json:"work,omitempty"`
	Steps       uint64 `json:"steps,omitempty"`
	DictEntries int    `json:"dict_entries,omitempty"`
	RawBytes    uint64 `json:"raw_bytes,omitempty"` // uncompressed-trace equivalent
	KRPF2       string `json:"krpf2_b64,omitempty"` // base64 KRPF2 profile bytes

	// "plan"
	Personality string    `json:"personality,omitempty"`
	EstSpeedup  float64   `json:"est_speedup,omitempty"`
	Recs        []PlanRec `json:"recommendations,omitempty"`

	// "vet"
	Parallel int       `json:"parallel,omitempty"`
	Serial   int       `json:"serial,omitempty"`
	Unknown  int       `json:"unknown,omitempty"`
	Loops    []VetLoop `json:"loops,omitempty"`

	// "done"
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// PlanRec is one planner recommendation, flattened for JSON.
type PlanRec struct {
	Label      string  `json:"label"`
	Hint       string  `json:"hint"`
	Safety     string  `json:"safety"`
	SelfP      float64 `json:"self_p"`
	Coverage   float64 `json:"coverage"`
	EstSpeedup float64 `json:"est_speedup"`
}

// VetLoop is one loop's static dependence verdict, flattened for JSON.
type VetLoop struct {
	Label   string `json:"label"`
	Verdict string `json:"verdict"`
}

// job is one admitted profiling request. Exactly one of src and bundle is
// the payload: src for Kr source, bundle for a precompiled KRIB1 IR bundle.
type job struct {
	seq         uint64
	name        string // program name for diagnostics
	src         string // Kr source ("" for bundle jobs)
	bundle      []byte // KRIB1 bundle (nil for source jobs)
	tenant      string // caller identity; scopes the shared inccache keyspace
	personality string
	shards      int

	ctx    context.Context // deadline + client-disconnect; cancel is the handler's
	cancel context.CancelFunc
	events chan Event // worker → handler; closed by the worker
	start  time.Time
}

// payload returns the job's input kind tag and bytes, the pair that
// content-addresses its result. The kind participates so a source text and
// a bundle with identical bytes can never alias a cache entry.
func (j *job) payload() (kind, payload string) {
	if j.bundle != nil {
		return "irb", string(j.bundle)
	}
	return "src", j.src
}

// compileJob turns the job's payload into a runnable program, through the
// compile cache when one is configured. Cached programs are shared across
// concurrent jobs — safe because a *kremlin.Program is immutable after
// build (instrumentation is precomputed, bytecode lowering is behind a
// sync.Once) — and concurrent first submissions compile exactly once.
func (s *Server) compileJob(j *job) (*kremlin.Program, error) {
	build := func() (interface{}, int64, error) {
		var p *kremlin.Program
		var err error
		if j.bundle != nil {
			p, err = kremlin.CompileBundle(j.bundle)
		} else {
			p, err = kremlin.Compile(j.name, j.src)
		}
		if err != nil {
			return nil, 0, err
		}
		// Held-bytes estimate: IR + regions + precomputed instrumentation
		// land within a small constant factor of the input text.
		return p, int64(len(j.src)+len(j.bundle)) * 16, nil
	}
	if s.compCache == nil {
		v, _, err := build()
		if err != nil {
			return nil, err
		}
		return v.(*kremlin.Program), nil
	}
	var key ircache.Key
	if j.bundle != nil {
		key = ircache.BundleKey(j.bundle)
	} else {
		key = ircache.SourceKey(j.name, j.src)
	}
	v, err := s.compCache.Load(key, build)
	if err != nil {
		return nil, err
	}
	return v.(*kremlin.Program), nil
}

// emit delivers e to the handler, or drops it if the handler is gone
// (context cancelled and the buffer full). The select keeps a dead
// client from wedging a worker.
func (j *job) emit(e Event) {
	select {
	case j.events <- e:
	case <-j.ctx.Done():
		// Handler may have stopped reading; try once more without
		// blocking so buffered readers still drain, then drop.
		select {
		case j.events <- e:
		default:
		}
	}
}

// limitedBuf captures program output up to a cap, then discards (the
// writer never errors — a chatty program is truncated, not failed).
type limitedBuf struct {
	buf       bytes.Buffer
	max       int
	truncated bool
}

func (b *limitedBuf) Write(p []byte) (int, error) {
	n := len(p)
	if room := b.max - b.buf.Len(); room > 0 {
		if len(p) > room {
			p = p[:room]
			b.truncated = true
		}
		b.buf.Write(p)
	} else {
		b.truncated = true
	}
	return n, nil
}

// runJob services one job end to end: chaos, compile, profile, plan, vet.
// Every exit path closes j.events; the deferred recover converts any
// panic in the pipeline (organic or injected) into an "error" event so
// the worker — and the process — survive.
func (s *Server) runJob(j *job) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	defer s.completed.Add(1)
	defer j.cancel()
	defer close(j.events)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			j.emit(Event{Type: "error", Kind: "panic",
				Detail: fmt.Sprintf("recovered worker panic: %v\n%s", r, debug.Stack())})
		}
	}()

	// Chaos: poison the job before real work starts.
	poisonCache := false
	if s.cfg.Chaos != nil {
		f := s.cfg.Chaos.Fault(j.seq)
		if f.Kind != chaos.None {
			s.faulted.Add(1)
		}
		switch f.Kind {
		case chaos.Panic:
			panic(fmt.Sprintf("chaos: injected panic (job %d)", j.seq))
		case chaos.Stall:
			// A stalled worker must still respect the job deadline.
			select {
			case <-time.After(f.Delay):
			case <-j.ctx.Done():
			}
		case chaos.CancelMidRun:
			t := time.AfterFunc(f.Delay, j.cancel)
			defer t.Stop()
		case chaos.Oversize:
			j.src, j.bundle = chaos.OversizeProgram(), nil
		case chaos.CorruptCache:
			poisonCache = true
		}
	}

	// A job that waited out its deadline in the queue fails fast.
	if err := j.ctx.Err(); err != nil {
		j.emit(s.errorEvent(j, limits.Cancelled(0)))
		return
	}

	// Job cache: a repeat submission replays the stored event stream
	// instead of re-executing. The key is computed after chaos so an
	// Oversize-swapped source addresses its own (never-stored) entry.
	var cacheKey string
	var cached []Event
	if s.jobCache != nil {
		kind, payload := j.payload()
		cacheKey = jobKey(kind, payload, j.personality, j.shards, s.cfg.Engine)
		evs, hit, corrupt := s.jobCache.lookup(cacheKey)
		if corrupt {
			s.cacheCorrupt.Add(1)
		}
		if hit {
			s.cacheHits.Add(1)
			for _, e := range evs {
				j.emit(e)
			}
			if poisonCache {
				s.jobCache.corruptEntry(cacheKey)
			}
			j.emit(Event{Type: "done", ElapsedMS: float64(s.cfg.Now().Sub(j.start)) / float64(time.Millisecond)})
			return
		}
		s.cacheMisses.Add(1)
	}
	// cacheEmit delivers e and remembers it for the cache (when enabled).
	cacheEmit := func(e Event) {
		if s.jobCache != nil {
			cached = append(cached, e)
		}
		j.emit(e)
	}

	prog, err := s.compileJob(j)
	if err != nil {
		j.emit(s.errorEvent(j, err))
		return
	}

	// Lint admission: a program the abstract interpreter proves faults on
	// every terminating run is refused before any execution budget is
	// spent on it (sources and IR bundles alike).
	if !s.cfg.DisableLint {
		if lerr := prog.LintReject(); lerr != nil {
			s.lintReject.Add(1)
			j.emit(s.errorEvent(j, lerr))
			return
		}
	}

	out := &limitedBuf{max: s.cfg.MaxOutputBytes}
	rc := &kremlin.RunConfig{
		Out:            out,
		Ctx:            j.ctx,
		MaxSteps:       s.cfg.MaxInsns,
		MaxShadowPages: s.cfg.MaxShadowPages,
		MaxHeapWords:   s.cfg.MaxHeapWords,
		Engine:         s.cfg.Engine,
	}
	var incStats inccache.Stats
	if s.cfg.IncCache != nil {
		rc.Cache = s.cfg.IncCache
		rc.CacheScope = j.tenant
		rc.CacheStats = &incStats
	}
	var (
		prof        *profile.Profile
		work, steps uint64
	)
	if j.shards > 1 {
		p, res, perr := prog.ProfileSharded(rc, j.shards)
		err = perr
		if res != nil && len(res.Runs) > 0 {
			work, steps = res.Work(), res.Runs[0].Steps
		}
		prof = p
	} else {
		p, res, perr := prog.Profile(rc)
		err = perr
		if res != nil {
			work, steps = res.Work, res.Steps
		}
		prof = p
	}
	if s.cfg.IncCache != nil {
		s.incLookups.Add(incStats.Lookups)
		s.incHits.Add(incStats.Hits)
		s.incRecorded.Add(incStats.Recorded)
	}
	if out.buf.Len() > 0 {
		cacheEmit(Event{Type: "output", Data: out.buf.String(), Truncated: out.truncated})
	}
	if err != nil {
		j.emit(s.errorEvent(j, err))
		return
	}

	var pb bytes.Buffer
	if _, err := prof.WriteTo(&pb); err != nil {
		j.emit(s.errorEvent(j, err))
		return
	}
	cacheEmit(Event{
		Type:        "profile",
		Work:        work,
		Steps:       steps,
		DictEntries: len(prof.Dict.Entries),
		RawBytes:    prof.RawBytes(),
		KRPF2:       base64.StdEncoding.EncodeToString(pb.Bytes()),
	})

	pers, ok := Personality(j.personality)
	if !ok {
		pers = planner.OpenMP()
	}
	plan := prog.Plan(prof, pers)
	recs := make([]PlanRec, len(plan.Recs))
	for i, r := range plan.Recs {
		recs[i] = PlanRec{
			Label:      r.Label(),
			Hint:       r.Hint(),
			Safety:     r.Safety,
			SelfP:      r.Stats.SelfP,
			Coverage:   r.Stats.Coverage,
			EstSpeedup: r.EstSpeedup,
		}
	}
	cacheEmit(Event{
		Type:        "plan",
		Personality: pers.Name,
		EstSpeedup:  plan.EstProgramSpeedup,
		Recs:        recs,
	})

	loops := make([]VetLoop, len(prog.Vet.Loops))
	for i, rep := range prog.Vet.Loops {
		loops[i] = VetLoop{Label: rep.Region.Label(), Verdict: rep.Verdict.String()}
	}
	par, ser, unk := prog.Vet.Counts()
	cacheEmit(Event{Type: "vet", Parallel: par, Serial: ser, Unknown: unk, Loops: loops})

	// Only a fully successful job is cached; error outcomes are not
	// content-determined (timeouts, cancellations, config-dependent
	// refusals) and must re-execute.
	if s.jobCache != nil {
		s.jobCache.store(cacheKey, cached)
		if poisonCache {
			s.jobCache.corruptEntry(cacheKey)
		}
	}

	j.emit(Event{Type: "done", ElapsedMS: float64(s.cfg.Now().Sub(j.start)) / float64(time.Millisecond)})
}

// Personality resolves a personality name ("" = openmp). The boolean is
// false for unknown names.
func Personality(name string) (planner.Personality, bool) {
	switch name {
	case "", "openmp":
		return planner.OpenMP(), true
	case "cilk":
		return planner.Cilk(), true
	case "work-only":
		return planner.WorkOnly(), true
	case "work+sp":
		return planner.WorkSP(), true
	}
	return planner.Personality{}, false
}

// errorEvent maps a pipeline error onto the serve error taxonomy. The
// kinds (and the HTTP statuses statusForKind assigns them) are the
// daemon's public error contract, documented in docs/serve.md.
func (s *Server) errorEvent(j *job, err error) Event {
	return Event{Type: "error", Kind: errorKind(j, err), Detail: err.Error()}
}

func errorKind(j *job, err error) string {
	switch kremlin.Classify(err) {
	case kremlin.KindParse:
		return "parse_error"
	case kremlin.KindAnalysis:
		return "analysis_error"
	case kremlin.KindRuntime:
		return "runtime_error"
	case kremlin.KindLint:
		return "lint_error"
	case kremlin.KindLimit:
		switch {
		case errors.Is(err, limits.ErrBudgetExceeded):
			return "budget_exceeded"
		case errors.Is(err, limits.ErrMemCap):
			return "mem_cap_exceeded"
		default: // cancelled: deadline vs client disconnect / injected cancel
			if j != nil && errors.Is(j.ctx.Err(), context.DeadlineExceeded) {
				return "timeout"
			}
			return "cancelled"
		}
	}
	return "internal_error"
}
