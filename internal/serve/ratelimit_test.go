package serve

import (
	"math/rand"
	"testing"
	"time"
)

// TestTenantLimiterClockRegression pins the admission-path fix: a clock
// that steps backwards (NTP correction, VM migration) must never drive a
// tenant's token balance negative. Before the clamp, one regressed
// observation subtracted (regression × rate) tokens and locked the tenant
// out until the clock had climbed all the way back.
func TestTenantLimiterClockRegression(t *testing.T) {
	l := newTenantLimiter(10, 2) // 10 tokens/sec, burst 2
	base := time.Unix(1000, 0)

	// Burn the burst, then observe a clock an hour in the past.
	if !l.Allow("a", base) || !l.Allow("a", base) {
		t.Fatal("burst refused")
	}
	l.Allow("a", base.Add(-time.Hour))

	// One refill interval of forward progress from the regressed point must
	// re-admit the tenant — the regression cost at most the pending refill,
	// never a negative balance.
	if !l.Allow("a", base.Add(-time.Hour).Add(150*time.Millisecond)) {
		t.Fatal("tenant locked out after a clock regression")
	}
}

// TestTenantLimiterRegressionProperty drives the limiter with random
// interleavings of forward progress, clock regressions, and admission
// attempts, and asserts the no-lockout invariant: from any state, one
// token's worth of forward progress re-admits the tenant.
func TestTenantLimiterRegressionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		rate := 1 + rng.Float64()*99 // tokens/sec in [1, 100)
		burst := 1 + rng.Intn(8)
		l := newTenantLimiter(rate, burst)
		now := time.Unix(10_000, 0)
		for step := 0; step < 100; step++ {
			switch rng.Intn(3) {
			case 0: // forward progress
				now = now.Add(time.Duration(rng.Int63n(int64(2 * time.Second))))
			case 1: // regression: up to 10 minutes backwards
				now = now.Add(-time.Duration(rng.Int63n(int64(10 * time.Minute))))
			case 2:
				l.Allow("x", now)
			}
		}
		// Recovery: synchronize the bucket to the current (possibly
		// regressed) clock, then advance one full token's worth. Whatever
		// the walk did, the balance is never below zero, so one token of
		// forward progress must re-admit the tenant.
		l.Allow("x", now)
		now = now.Add(time.Duration(float64(time.Second)*1.05/rate) + time.Millisecond)
		if !l.Allow("x", now) {
			t.Fatalf("trial %d: tenant locked out after regressions (rate %.1f burst %d)",
				trial, rate, burst)
		}
	}
}

// TestTenantLimiterStillLimits proves the clamp did not neuter the
// limiter: steady over-rate traffic with a well-behaved clock is still
// refused at the configured rate.
func TestTenantLimiterStillLimits(t *testing.T) {
	l := newTenantLimiter(10, 2)
	now := time.Unix(2000, 0)
	allowed := 0
	for i := 0; i < 1000; i++ { // 1000 tries over ~1s: budget is burst+rate
		if l.Allow("a", now) {
			allowed++
		}
		now = now.Add(time.Millisecond)
	}
	if allowed > 13 {
		t.Fatalf("admitted %d jobs in 1s at rate 10 burst 2", allowed)
	}
	if allowed < 11 {
		t.Fatalf("admitted only %d jobs in 1s at rate 10 burst 2", allowed)
	}
}
