package serve

// jobCache memoizes whole successful jobs, content-addressed by the exact
// inputs that determine the result: the Kr source plus the personality,
// shard count, and engine the daemon would run it with. Profiling is
// deterministic for a fixed (source, shards, engine), so a cached event
// stream is byte-identical to what re-execution would produce — the cache
// trades memory for skipping the entire compile/profile/plan/vet pipeline
// on repeat submissions.
//
// Entries carry a checksum taken at insert time, verified on every
// lookup. A damaged entry (chaos-injected or otherwise) is detected,
// evicted, and counted; the job then re-executes as a miss. A corrupt
// cache can cost a recompute, never a wrong answer.
//
// Failed jobs are never cached: their outcomes (timeout, cancellation,
// budget refusal under a since-changed config) are not content-determined.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"kremlin"
)

type jobCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*jobCacheEntry
	order   []string // insertion order, for FIFO eviction
}

type jobCacheEntry struct {
	payload []byte // JSON-encoded []Event (every event but "done")
	sum     uint64 // FNV-64a of payload at insert time
}

func newJobCache(max int) *jobCache {
	return &jobCache{max: max, entries: map[string]*jobCacheEntry{}}
}

// jobKey addresses a result by everything that can change it.
func jobKey(src, personality string, shards int, engine kremlin.Engine) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d\x00%d\x00%s\x00", engine, shards, personality)
	h.Write([]byte(src))
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func jobChecksum(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// lookup returns the cached event stream for key. corrupt reports that an
// entry existed but failed validation; it has already been evicted.
func (c *jobCache) lookup(key string) (evs []Event, ok, corrupt bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[key]
	if !found {
		return nil, false, false
	}
	if jobChecksum(e.payload) != e.sum {
		c.evictLocked(key)
		return nil, false, true
	}
	if err := json.Unmarshal(e.payload, &evs); err != nil {
		// A payload that checksums clean but no longer parses means the
		// entry was damaged before insert; same remedy.
		c.evictLocked(key)
		return nil, false, true
	}
	return evs, true, false
}

// store inserts the event stream under key, evicting the oldest entry
// when the cache is full. Unencodable streams are silently not cached.
func (c *jobCache) store(key string, evs []Event) {
	payload, err := json.Marshal(evs)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists {
		for len(c.entries) >= c.max && len(c.order) > 0 {
			c.evictLocked(c.order[0])
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = &jobCacheEntry{payload: payload, sum: jobChecksum(payload)}
}

// corruptEntry flips a bit in the stored payload for key (chaos
// injection); the next lookup must detect the mismatch.
func (c *jobCache) corruptEntry(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && len(e.payload) > 0 {
		e.payload[len(e.payload)/2] ^= 0x40
	}
}

func (c *jobCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *jobCache) evictLocked(key string) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}
