package serve

// jobCache memoizes whole successful jobs, content-addressed by the exact
// inputs that determine the result: the Kr source plus the personality,
// shard count, and engine the daemon would run it with. Profiling is
// deterministic for a fixed (source, shards, engine), so a cached event
// stream is byte-identical to what re-execution would produce — the cache
// trades memory for skipping the entire compile/profile/plan/vet pipeline
// on repeat submissions.
//
// Entries carry a checksum taken at insert time, verified on every
// lookup. A damaged entry (chaos-injected or otherwise) is detected,
// evicted, and counted; the job then re-executes as a miss. A corrupt
// cache can cost a recompute, never a wrong answer.
//
// Failed jobs are never cached: their outcomes (timeout, cancellation,
// budget refusal under a since-changed config) are not content-determined.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"kremlin"
)

type jobCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*jobCacheEntry
	order   []string // insertion order, for FIFO eviction
}

type jobCacheEntry struct {
	payload []byte // JSON-encoded []Event (every event but "done")
	sum     uint64 // FNV-64a of payload at insert time
}

func newJobCache(max int) *jobCache {
	return &jobCache{max: max, entries: map[string]*jobCacheEntry{}}
}

// jobKey addresses a result by everything that can change it, including
// the payload kind ("src" or "irb") — a source text and an IR bundle with
// identical bytes are different programs.
func jobKey(kind, payload, personality string, shards int, engine kremlin.Engine) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%d\x00%s\x00", kind, engine, shards, personality)
	h.Write([]byte(payload))
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func jobChecksum(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// lookup returns the cached event stream for key. corrupt reports that an
// entry existed but failed validation; it has been evicted.
//
// Only the map read holds the lock: checksumming and decoding a large
// payload are O(payload) work that would otherwise serialize every
// concurrent lookup (and store) behind one hot entry. The payload slice is
// copied out first because corruptEntry mutates it in place under the lock.
func (c *jobCache) lookup(key string) (evs []Event, ok, corrupt bool) {
	c.mu.Lock()
	e, found := c.entries[key]
	var payload []byte
	var sum uint64
	if found {
		payload = append([]byte(nil), e.payload...)
		sum = e.sum
	}
	c.mu.Unlock()
	if !found {
		return nil, false, false
	}
	if jobChecksum(payload) != sum {
		c.evictIf(key, e)
		return nil, false, true
	}
	if err := json.Unmarshal(payload, &evs); err != nil {
		// A payload that checksums clean but no longer parses means the
		// entry was damaged before insert; same remedy.
		c.evictIf(key, e)
		return nil, false, true
	}
	return evs, true, false
}

// evictIf removes key only if it still holds the entry we validated —
// a concurrent store may have replaced it with a fresh one since we
// dropped the lock, and that one deserves its own validation.
func (c *jobCache) evictIf(key string, e *jobCacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] == e {
		c.evictLocked(key)
	}
}

// store inserts the event stream under key, evicting the oldest entry
// when the cache is full. Re-storing an existing key counts as a fresh
// insertion: its eviction position moves to the back of the FIFO, so a
// key that keeps being re-produced is not evicted as if it were the
// oldest resident. Unencodable streams are silently not cached.
func (c *jobCache) store(key string, evs []Event) {
	payload, err := json.Marshal(evs)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	} else {
		for len(c.entries) >= c.max && len(c.order) > 0 {
			c.evictLocked(c.order[0])
		}
	}
	c.order = append(c.order, key)
	c.entries[key] = &jobCacheEntry{payload: payload, sum: jobChecksum(payload)}
}

// corruptEntry flips a bit in the stored payload for key (chaos
// injection); the next lookup must detect the mismatch.
func (c *jobCache) corruptEntry(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && len(e.payload) > 0 {
		e.payload[len(e.payload)/2] ^= 0x40
	}
}

func (c *jobCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *jobCache) evictLocked(key string) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}
