package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"kremlin"
	"kremlin/internal/inccache"
)

// sealedProg calls pure scalar functions in a loop — the shape the
// incremental re-profiling cache accelerates. The constant-argument
// triple(7) call is the replayable one (its argument is timely at every
// call site); the loop-fed mix calls exercise the record path.
const sealedProg = `
int triple(int x) {
	int acc = 0;
	for (int i = 0; i < 40; i++) {
		acc = acc + x * 3 + i;
	}
	return acc;
}

int mix(int a, int b) {
	int s = triple(a);
	for (int i = 0; i < 10; i++) {
		s = s + b * i;
	}
	return s;
}

int main() {
	int t = 0;
	for (int i = 0; i < 20; i++) {
		t = t + mix(i % 3, i % 5) + triple(7);
	}
	print("t", t);
	return 0;
}
`

// rawPost posts a body and returns the status plus the raw response bytes,
// for byte-level stream comparisons.
func rawPost(t *testing.T, client *http.Client, url, body string, hdr map[string]string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// fixedClock pins Config.Now so the "done" event's elapsed-ms field is
// deterministic and whole streams can be compared byte for byte.
func fixedClock() func() time.Time {
	at := time.Unix(1_700_000_000, 0)
	return func() time.Time { return at }
}

func openServeStore(t *testing.T) *inccache.Store {
	t.Helper()
	st, err := inccache.Open(t.TempDir() + "/inccache")
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeCompileCache: resubmitting the same program under a different
// personality misses the whole-job cache (the plan differs) but hits the
// compile cache — the front end runs once for both jobs.
func TestServeCompileCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, JobCache: 8, CompileCache: 8})
	if st, _ := post(t, ts.Client(), ts.URL+"/profile?name=q.kr", quickProg, nil); st != http.StatusOK {
		t.Fatalf("first submission: status = %d", st)
	}
	if st, _ := post(t, ts.Client(), ts.URL+"/profile?name=q.kr&personality=cilk", quickProg, nil); st != http.StatusOK {
		t.Fatalf("cilk submission: status = %d", st)
	}
	stats := s.Stats()
	if stats.CacheHits != 0 || stats.CacheMisses != 2 {
		t.Errorf("job cache hits/misses = %d/%d, want 0/2 (personality changes the job key)",
			stats.CacheHits, stats.CacheMisses)
	}
	if stats.CompileMisses != 1 || stats.CompileHits != 1 {
		t.Errorf("compile cache hits/misses = %d/%d, want 1/1",
			stats.CompileHits, stats.CompileMisses)
	}
	if stats.CompileEntries != 1 || stats.CompileBytes == 0 {
		t.Errorf("compile cache residency = %d entries / %d bytes, want 1 entry with nonzero cost",
			stats.CompileEntries, stats.CompileBytes)
	}

	// A compile error is not cached: every submission of a broken program
	// recompiles (and fails) afresh.
	for i := 0; i < 2; i++ {
		if st, _ := post(t, ts.Client(), ts.URL+"/profile", "int main( {", nil); st != http.StatusBadRequest {
			t.Fatalf("broken submission %d: status = %d, want 400", i, st)
		}
	}
	stats = s.Stats()
	if stats.CompileMisses != 3 || stats.CompileEntries != 1 {
		t.Errorf("after two failed compiles: misses = %d entries = %d, want 3 misses and still 1 entry",
			stats.CompileMisses, stats.CompileEntries)
	}

	// The new counters are part of the /statz wire format.
	resp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"compile_cache_hits", "compile_cache_misses",
		"compile_cache_evicted", "compile_cache_entries", "compile_cache_bytes",
		"inccache_lookups", "inccache_hits", "inccache_recorded",
		"inccache_records", "inccache_evicted", "inccache_corrupt"} {
		if _, ok := wire[field]; !ok {
			t.Errorf("/statz missing field %q", field)
		}
	}
}

// TestServeWarmStreamsByteIdentical pins the acceptance contract for warm
// traffic: with every cache layer on and a pinned clock, a warm submission's
// NDJSON response is byte-identical to the cold one — through the whole-job
// replay path and through the compile-cache + inccache re-execution path.
func TestServeWarmStreamsByteIdentical(t *testing.T) {
	t.Run("job-cache-replay", func(t *testing.T) {
		s, ts := newTestServer(t, Config{
			Workers: 1, JobCache: 8, CompileCache: 8,
			IncCache: openServeStore(t), Now: fixedClock(),
		})
		st1, cold := rawPost(t, ts.Client(), ts.URL+"/v1/jobs?name=s.kr", sealedProg, nil)
		st2, warm := rawPost(t, ts.Client(), ts.URL+"/v1/jobs?name=s.kr", sealedProg, nil)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("statuses = %d, %d", st1, st2)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("warm stream differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
		}
		if stats := s.Stats(); stats.CacheHits != 1 {
			t.Errorf("job cache hits = %d, want 1", stats.CacheHits)
		}
	})

	t.Run("reexecution-via-caches", func(t *testing.T) {
		// No job cache: the warm submission actually re-executes, through
		// the shared compiled program and the inccache's replayed extents.
		s, ts := newTestServer(t, Config{
			Workers: 1, CompileCache: 8,
			IncCache: openServeStore(t), Now: fixedClock(),
		})
		st1, cold := rawPost(t, ts.Client(), ts.URL+"/v1/jobs?name=s.kr", sealedProg, nil)
		afterCold := s.Stats()
		st2, warm := rawPost(t, ts.Client(), ts.URL+"/v1/jobs?name=s.kr", sealedProg, nil)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("statuses = %d, %d", st1, st2)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("re-executed warm stream differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
		}
		stats := s.Stats()
		if stats.CompileHits != 1 || stats.CompileMisses != 1 {
			t.Errorf("compile cache hits/misses = %d/%d, want 1/1", stats.CompileHits, stats.CompileMisses)
		}
		if afterCold.IncRecorded == 0 {
			t.Errorf("cold run recorded no extents")
		}
		// The warm run replays extents the cold run recorded, so it hits
		// strictly more than the cold run's own within-run hits.
		if warmHits := stats.IncHits - afterCold.IncHits; warmHits <= afterCold.IncHits {
			t.Errorf("warm run hit %d extents, cold run hit %d — no cross-run replay", warmHits, afterCold.IncHits)
		}
		if stats.IncRecorded != afterCold.IncRecorded {
			t.Errorf("warm run re-recorded extents: %d -> %d", afterCold.IncRecorded, stats.IncRecorded)
		}
	})
}

// TestServeBundleSubmission pins the precompiled-IR path: a KRIB1 bundle
// POSTed to /v1/jobs produces the same result stream as its source, damaged
// bundles are refused with the parse taxonomy, and /profile stays
// source-only.
func TestServeBundleSubmission(t *testing.T) {
	prog, err := kremlin.Compile("q.kr", quickProg)
	if err != nil {
		t.Fatal(err)
	}
	bundle := string(prog.EncodeBundle())
	hdr := map[string]string{"Content-Type": bundleContentType}

	_, ts := newTestServer(t, Config{Workers: 2})
	stSrc, evsSrc := post(t, ts.Client(), ts.URL+"/v1/jobs?name=q.kr", quickProg, nil)
	stIR, evsIR := post(t, ts.Client(), ts.URL+"/v1/jobs", bundle, hdr)
	if stSrc != http.StatusOK || stIR != http.StatusOK {
		t.Fatalf("statuses = %d (src), %d (bundle), want 200/200 (bundle events %v)", stSrc, stIR, evsIR)
	}
	if !sameEvents(stripDone(t, evsSrc), stripDone(t, evsIR)) {
		t.Fatalf("bundle stream differs from source stream:\n%v\nvs\n%v", evsSrc, evsIR)
	}

	// A mislabeled body is refused before admission.
	st, evs := post(t, ts.Client(), ts.URL+"/v1/jobs", "not a bundle", hdr)
	if st != http.StatusBadRequest || evs[0].Kind != "parse_error" {
		t.Fatalf("garbage bundle: status = %d kind = %q, want 400/parse_error", st, evs[0].Kind)
	}

	// A corrupted bundle passes the magic check but fails validation.
	mut := []byte(bundle)
	mut[len(mut)/2] ^= 0x40
	st, evs = post(t, ts.Client(), ts.URL+"/v1/jobs", string(mut), hdr)
	if st != http.StatusBadRequest || evs[len(evs)-1].Kind != "parse_error" {
		t.Fatalf("corrupt bundle: status = %d events = %v, want 400/parse_error", st, evs)
	}

	// The legacy endpoint does not accept bundles.
	st, evs = post(t, ts.Client(), ts.URL+"/profile", bundle, hdr)
	if st != http.StatusBadRequest || evs[0].Kind != "parse_error" {
		t.Fatalf("bundle at /profile: status = %d kind = %q, want 400/parse_error", st, evs[0].Kind)
	}
}

// TestServeInccacheTenantIsolation pins the shared-store contract: repeat
// traffic within a tenant replays extents, a different tenant's identical
// program does not — tenants share the store's budget, never its records.
func TestServeInccacheTenantIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, IncCache: openServeStore(t)})
	hdrA := map[string]string{"X-Kremlin-Tenant": "alice"}
	hdrB := map[string]string{"X-Kremlin-Tenant": "bob"}

	if st, _ := post(t, ts.Client(), ts.URL+"/profile?name=s.kr", sealedProg, hdrA); st != http.StatusOK {
		t.Fatalf("alice cold: status = %d", st)
	}
	afterColdA := s.Stats()
	if afterColdA.IncRecorded == 0 {
		t.Fatalf("alice's cold run recorded nothing: %+v", afterColdA)
	}
	// A cold run's within-run hits (later iterations replaying extents the
	// earlier ones recorded) are the baseline every fresh tenant reproduces.
	coldHits := afterColdA.IncHits

	if st, _ := post(t, ts.Client(), ts.URL+"/profile?name=s.kr", sealedProg, hdrA); st != http.StatusOK {
		t.Fatalf("alice warm: status = %d", st)
	}
	afterWarmA := s.Stats()
	if warmHits := afterWarmA.IncHits - coldHits; warmHits <= coldHits {
		t.Fatalf("alice's repeat run did not replay across runs: warm %d vs cold %d", warmHits, coldHits)
	}
	if afterWarmA.IncRecorded != afterColdA.IncRecorded {
		t.Fatalf("alice's warm run re-recorded: %+v", afterWarmA)
	}

	if st, _ := post(t, ts.Client(), ts.URL+"/profile?name=s.kr", sealedProg, hdrB); st != http.StatusOK {
		t.Fatalf("bob: status = %d", st)
	}
	afterB := s.Stats()
	// Bob's run behaves exactly like a cold tenant: only within-run hits,
	// never replays of alice's records.
	if bobHits := afterB.IncHits - afterWarmA.IncHits; bobHits != coldHits {
		t.Fatalf("bob hit %d extents, a cold tenant hits %d — cross-tenant replay", bobHits, coldHits)
	}
	if afterB.IncRecorded <= afterWarmA.IncRecorded {
		t.Fatalf("bob's cold run recorded nothing new: %+v", afterB)
	}
	if afterB.IncRecords <= afterColdA.IncRecords {
		t.Fatalf("store did not grow across tenants: %d -> %d", afterColdA.IncRecords, afterB.IncRecords)
	}
}
