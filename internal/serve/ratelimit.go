package serve

import (
	"sync"
	"time"
)

// maxTenants bounds the limiter's bucket map so an attacker churning
// tenant names cannot grow daemon memory without bound. On overflow the
// map is reset — a momentary amnesty beats an OOM.
const maxTenants = 16384

// tenantLimiter is a classic token bucket per tenant: rate tokens/sec,
// burst tokens of capacity, one token per admitted job.
type tenantLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	return &tenantLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

// Allow reports whether tenant may submit a job at time now, consuming a
// token when it may.
func (l *tenantLimiter) Allow(tenant string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buckets) >= maxTenants {
		l.buckets = make(map[string]*bucket)
	}
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		// Clamp against clock regression (NTP step, VM migration): a
		// backwards now must not mint negative tokens — unclamped, one
		// regressed observation drives the balance arbitrarily negative and
		// locks the tenant out until the clock climbs all the way back.
		if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
			b.tokens += elapsed * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
		if b.tokens < 0 {
			b.tokens = 0
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
