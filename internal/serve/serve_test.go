package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kremlin"
	"kremlin/internal/irbundle"
	"kremlin/internal/profile"
	"kremlin/internal/serve/chaos"
)

// quickProg finishes in well under a million steps.
const quickProg = `
int a[500];
int main() {
	int acc = 0;
	for (int i = 0; i < 500; i++) {
		a[i] = i * 3;
	}
	for (int i = 0; i < 500; i++) {
		acc = acc + a[i];
	}
	print("acc", acc);
	return 0;
}
`

// slowProg runs long enough (hundreds of millions of steps) that any
// sane deadline or budget fires first.
const slowProg = `
int main() {
	int acc = 0;
	for (int i = 0; i < 100000000; i++) {
		acc = acc + i;
	}
	return acc;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// post POSTs a program and decodes the NDJSON event stream.
func post(t *testing.T, client *http.Client, url, src string, hdr map[string]string) (int, []Event) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, evs
}

func eventTypes(evs []Event) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Type
	}
	return out
}

func TestServeHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, evs := post(t, ts.Client(), ts.URL+"/profile?name=quick.kr", quickProg, nil)
	if st != http.StatusOK {
		t.Fatalf("status = %d, want 200 (events %v)", st, evs)
	}
	want := []string{"output", "profile", "plan", "vet", "done"}
	got := eventTypes(evs)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("event sequence = %v, want %v", got, want)
	}
	if !strings.Contains(evs[0].Data, "acc") {
		t.Errorf("output event %q does not contain program output", evs[0].Data)
	}
	pe := evs[1]
	if pe.Work == 0 || pe.Steps == 0 || pe.DictEntries == 0 {
		t.Errorf("profile event missing metrics: %+v", pe)
	}
	raw, err := base64.StdEncoding.DecodeString(pe.KRPF2)
	if err != nil {
		t.Fatalf("profile payload is not base64: %v", err)
	}
	prof, err := profile.ReadFrom(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("profile payload is not KRPF2: %v", err)
	}
	if len(prof.Dict.Entries) != pe.DictEntries {
		t.Errorf("decoded dict entries = %d, event said %d", len(prof.Dict.Entries), pe.DictEntries)
	}
	if evs[2].EstSpeedup < 1 || len(evs[2].Recs) == 0 {
		t.Errorf("plan event implausible: %+v", evs[2])
	}
	if evs[3].Parallel+evs[3].Serial+evs[3].Unknown != len(evs[3].Loops) {
		t.Errorf("vet counts %d+%d+%d disagree with %d loops",
			evs[3].Parallel, evs[3].Serial, evs[3].Unknown, len(evs[3].Loops))
	}
}

func TestServeSharded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, evs := post(t, ts.Client(), ts.URL+"/profile?shards=4", quickProg, nil)
	if st != http.StatusOK {
		t.Fatalf("status = %d, want 200 (events %v)", st, evs)
	}
	if got := eventTypes(evs); got[len(got)-1] != "done" {
		t.Fatalf("sharded run did not complete: %v", got)
	}
}

func TestServeErrorTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2,
		// Tight budget for the "budget" case program; the others fail
		// before execution.
		MaxInsns:   200_000,
		JobTimeout: 5 * time.Second,
	})
	cases := []struct {
		name   string
		src    string
		status int
		kind   string
	}{
		{"parse", "int main( {", http.StatusBadRequest, "parse_error"},
		{"analysis", "int main() { return undefined_var; }", http.StatusBadRequest, "analysis_error"},
		// The runtime fault flows through an array cell so the abstract
		// interpreter cannot prove it and the lint gate stays quiet.
		{"runtime", "int a[1];\nint main() { a[0] = 0; return 1 / a[0]; }", http.StatusUnprocessableEntity, "runtime_error"},
		// A provable fault never reaches a worker: lint rejects at admission.
		{"lint", "int main() { int z = 0; return 1 / z; }", http.StatusUnprocessableEntity, "lint_error"},
		{"budget", slowProg, http.StatusRequestEntityTooLarge, "budget_exceeded"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, evs := post(t, ts.Client(), ts.URL+"/profile", tc.src, nil)
			if st != tc.status {
				t.Fatalf("status = %d, want %d (events %v)", st, tc.status, evs)
			}
			last := evs[len(evs)-1]
			if last.Type != "error" || last.Kind != tc.kind {
				t.Fatalf("final event = %+v, want error/%s", last, tc.kind)
			}
		})
	}
}

func TestServeTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    2,
		JobTimeout: 80 * time.Millisecond,
		MaxInsns:   1 << 62, // only the deadline can stop slowProg
	})
	st, evs := post(t, ts.Client(), ts.URL+"/profile", slowProg, nil)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (events %v)", st, evs)
	}
	if last := evs[len(evs)-1]; last.Kind != "timeout" {
		t.Fatalf("kind = %q, want timeout", last.Kind)
	}
}

// memProg touches ~400 KiB of shadow-tracked global state across enough
// steps that the periodic liveness poll (every 2^14 instructions)
// observes the page count.
const memProg = `
int a[50000];
int main() {
	for (int i = 0; i < 50000; i++) {
		a[i] = i;
	}
	return a[49999];
}
`

func TestServeMemCap(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:        2,
		MaxShadowPages: 4, // memProg needs ~100 pages
	})
	st, evs := post(t, ts.Client(), ts.URL+"/profile", memProg, nil)
	if st != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (events %v)", st, evs)
	}
	if last := evs[len(evs)-1]; last.Kind != "mem_cap_exceeded" {
		t.Fatalf("kind = %q, want mem_cap_exceeded", last.Kind)
	}
}

func TestServeBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 64})
	st, evs := post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	if st != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (events %v)", st, evs)
	}
	if evs[0].Kind != "body_too_large" {
		t.Fatalf("kind = %q, want body_too_large", evs[0].Kind)
	}
}

func TestServeBadParams(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if st, _ := post(t, ts.Client(), ts.URL+"/profile?personality=gpu", quickProg, nil); st != http.StatusBadRequest {
		t.Errorf("unknown personality: status = %d, want 400", st)
	}
	if st, _ := post(t, ts.Client(), ts.URL+"/profile?shards=0", quickProg, nil); st != http.StatusBadRequest {
		t.Errorf("bad shards: status = %d, want 400", st)
	}
}

// TestServeQueueShedding fills the single worker and the one queue slot
// with slow jobs, then submits a third and expects a 429 shed.
func TestServeQueueShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		JobTimeout: 2 * time.Second,
		MaxInsns:   1 << 62,
	})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts.Client(), ts.URL+"/profile", slowProg, nil)
		}()
	}
	// Wait until one job occupies the worker and one sits in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.InFlight == 1 && st.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never saturated: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, evs := post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	if st != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (events %v)", st, evs)
	}
	if evs[0].Kind != "queue_full" {
		t.Fatalf("kind = %q, want queue_full", evs[0].Kind)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Errorf("Stats.Shed = %d, want 1", got)
	}
	wg.Wait()
}

func TestServeRateLimit(t *testing.T) {
	clock := time.Now()
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	s, ts := newTestServer(t, Config{Workers: 2, RatePerSec: 1, RateBurst: 1, Now: now})
	hdrA := map[string]string{"X-Kremlin-Tenant": "alice"}
	hdrB := map[string]string{"X-Kremlin-Tenant": "bob"}
	if st, _ := post(t, ts.Client(), ts.URL+"/profile", quickProg, hdrA); st != http.StatusOK {
		t.Fatalf("first job: status = %d, want 200", st)
	}
	st, evs := post(t, ts.Client(), ts.URL+"/profile", quickProg, hdrA)
	if st != http.StatusTooManyRequests || evs[0].Kind != "rate_limited" {
		t.Fatalf("tenant over budget: status = %d kind = %q, want 429/rate_limited", st, evs[0].Kind)
	}
	// Another tenant has its own bucket.
	if st, _ := post(t, ts.Client(), ts.URL+"/profile", quickProg, hdrB); st != http.StatusOK {
		t.Fatalf("other tenant: status = %d, want 200", st)
	}
	// Tokens refill with time.
	advance(1100 * time.Millisecond)
	if st, _ := post(t, ts.Client(), ts.URL+"/profile", quickProg, hdrA); st != http.StatusOK {
		t.Fatalf("after refill: status = %d, want 200", st)
	}
	if got := s.Stats().RateLimited; got != 1 {
		t.Errorf("Stats.RateLimited = %d, want 1", got)
	}
}

func TestServeDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A queued job admitted before the drain must still be serviced.
	type result struct {
		st  int
		evs []Event
	}
	resc := make(chan result, 1)
	go func() {
		st, evs := post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
		resc <- result{st, evs}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Accepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil { // idempotent
		t.Fatalf("second drain: %v", err)
	}
	res := <-resc
	if res.st != http.StatusOK {
		t.Fatalf("pre-drain job: status = %d, want 200 (events %v)", res.st, res.evs)
	}

	// After the drain: health reports draining, new jobs are refused.
	hst, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hst.Body)
	hst.Body.Close()
	if hst.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status = %d, want 503", hst.StatusCode)
	}
	st, evs := post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	if st != http.StatusServiceUnavailable || evs[0].Kind != "draining" {
		t.Fatalf("post-drain job: status = %d kind = %q, want 503/draining", st, evs[0].Kind)
	}
}

// TestServePanicIsolation injects a panic into the first job and proves
// the daemon answers it with a 500 diagnostic and keeps serving.
func TestServePanicIsolation(t *testing.T) {
	// Scan for a seed that panics job 1 and leaves job 2 alone — the
	// schedule is a pure function of (seed, seq), so this is cheap and
	// keeps the test deterministic without a special injector mode.
	inj := &chaos.Injector{Every: 2}
	for inj.Fault(1).Kind != chaos.Panic || inj.Fault(2).Kind != chaos.None {
		inj.Seed++
	}
	s, ts := newTestServer(t, Config{Workers: 1, Chaos: inj})
	st, evs := post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	if st != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (events %v)", st, evs)
	}
	last := evs[len(evs)-1]
	if last.Kind != "panic" || !strings.Contains(last.Detail, "injected panic") {
		t.Fatalf("final event = %+v, want panic diagnostic", last)
	}
	if got := s.Stats().Panics; got != 1 {
		t.Errorf("Stats.Panics = %d, want 1", got)
	}

	// The worker survived the panic: the next (unfaulted) job runs clean
	// on the same daemon.
	st, evs = post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	if st != http.StatusOK {
		t.Fatalf("post-panic job: status = %d, want 200 (events %v)", st, evs)
	}
	if got := s.Stats().Completed; got != 2 {
		t.Errorf("Stats.Completed = %d, want 2", got)
	}
}

func TestStatzEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	post(t, ts.Client(), ts.URL+"/profile", quickProg, nil)
	resp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 1 || st.Completed != 1 {
		t.Errorf("statz = %+v, want accepted=1 completed=1", st)
	}
}

// faultingProg provably faults on every terminating run: the abstract
// interpreter pins the out-of-bounds index exactly.
const faultingProg = `
int a[10];
int main() {
	int i = 12;
	a[i] = 3;
	return a[0];
}
`

func TestServeLintAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	st, evs := post(t, ts.Client(), ts.URL+"/v1/jobs", faultingProg, nil)
	if st != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (events %v)", st, evs)
	}
	last := evs[len(evs)-1]
	if last.Type != "error" || last.Kind != "lint_error" {
		t.Fatalf("final event = %+v, want error/lint_error", last)
	}
	if !strings.Contains(last.Detail, "out of range") {
		t.Errorf("detail %q does not name the fault", last.Detail)
	}
	if got := s.Stats().LintReject; got != 1 {
		t.Errorf("stats lint_rejected = %d, want 1", got)
	}

	// A clean program on the same server is unaffected.
	st, evs = post(t, ts.Client(), ts.URL+"/v1/jobs", quickProg, nil)
	if st != http.StatusOK {
		t.Fatalf("clean program status = %d, want 200 (events %v)", st, evs)
	}
}

func TestServeLintDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DisableLint: true})
	st, evs := post(t, ts.Client(), ts.URL+"/v1/jobs", faultingProg, nil)
	if st != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (events %v)", st, evs)
	}
	last := evs[len(evs)-1]
	if last.Type != "error" || last.Kind != "runtime_error" {
		t.Fatalf("final event = %+v, want error/runtime_error (gate disabled)", last)
	}
	if got := s.Stats().LintReject; got != 0 {
		t.Errorf("stats lint_rejected = %d, want 0", got)
	}
}

// TestServeLintBundle proves the gate also covers precompiled IR bundles.
func TestServeLintBundle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	prog, err := kremlin.Compile("fault.kr", faultingProg)
	if err != nil {
		t.Fatal(err)
	}
	bundle := irbundle.Encode(prog.File, prog.Module)
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", bundleContentType)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bundle status = %d, want 422 (%s)", resp.StatusCode, body)
	}
	var e Event
	if err := json.Unmarshal(bytes.TrimSpace(body), &e); err != nil {
		t.Fatalf("bad response %q: %v", body, err)
	}
	if e.Kind != "lint_error" {
		t.Fatalf("bundle event = %+v, want lint_error", e)
	}
	if got := s.Stats().LintReject; got != 1 {
		t.Errorf("stats lint_rejected = %d, want 1", got)
	}
}

func TestTenantLimiter(t *testing.T) {
	l := newTenantLimiter(10, 2) // 10/sec, burst 2
	now := time.Now()
	if !l.Allow("a", now) || !l.Allow("a", now) {
		t.Fatal("burst of 2 refused")
	}
	if l.Allow("a", now) {
		t.Fatal("third immediate request allowed")
	}
	if !l.Allow("b", now) {
		t.Fatal("independent tenant refused")
	}
	if !l.Allow("a", now.Add(100*time.Millisecond)) {
		t.Fatal("refilled token refused")
	}
}
