// Package token defines the lexical tokens of the Kr language, the C-like
// mini-language that this repository's Kremlin toolchain compiles, profiles,
// and plans parallelizations for.
package token

import "strconv"

// Kind identifies a lexical token class.
type Kind int

// The token kinds. Literal and identifier kinds carry the scanned text.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // imageBlur
	INT    // 12345
	FLOAT  // 12.34e-5
	STRING // "hello" (only for print)

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	ASSIGN     // =
	ADDASSIGN  // +=
	SUBASSIGN  // -=
	MULASSIGN  // *=
	QUOASSIGN  // /=
	INC        // ++
	DEC        // --
	EQL        // ==
	NEQ        // !=
	LSS        // <
	LEQ        // <=
	GTR        // >
	GEQ        // >=
	LAND       // &&
	LOR        // ||
	NOT        // !
	LPAREN     // (
	RPAREN     // )
	LBRACK     // [
	RBRACK     // ]
	LBRACE     // {
	RBRACE     // }
	COMMA      // ,
	SEMICOLON  // ;
	keywordBeg // keywords below

	INT_KW   // int
	FLOAT_KW // float
	BOOL_KW  // bool
	VOID     // void
	IF       // if
	ELSE     // else
	FOR      // for
	WHILE    // while
	BREAK    // break
	CONTINUE // continue
	RETURN   // return
	TRUE     // true
	FALSE    // false

	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT", STRING: "STRING",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	ASSIGN: "=", ADDASSIGN: "+=", SUBASSIGN: "-=", MULASSIGN: "*=", QUOASSIGN: "/=",
	INC: "++", DEC: "--",
	EQL: "==", NEQ: "!=", LSS: "<", LEQ: "<=", GTR: ">", GEQ: ">=",
	LAND: "&&", LOR: "||", NOT: "!",
	LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]", LBRACE: "{", RBRACE: "}",
	COMMA: ",", SEMICOLON: ";",
	INT_KW: "int", FLOAT_KW: "float", BOOL_KW: "bool", VOID: "void",
	IF: "if", ELSE: "else", FOR: "for", WHILE: "while",
	BREAK: "break", CONTINUE: "continue", RETURN: "return", TRUE: "true", FALSE: "false",
}

func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "token(" + strconv.Itoa(int(k)) + ")"
}

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier to its keyword kind, or IDENT if not a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

// IsTypeKeyword reports whether k names a type (int, float, bool, void).
func (k Kind) IsTypeKeyword() bool {
	return k == INT_KW || k == FLOAT_KW || k == BOOL_KW || k == VOID
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ:
		return 3
	case LSS, LEQ, GTR, GEQ:
		return 4
	case ADD, SUB:
		return 5
	case MUL, QUO, REM:
		return 6
	}
	return 0
}

// Token is a single scanned token: its kind, literal text, and offset.
type Token struct {
	Kind   Kind
	Lit    string // literal text for IDENT, INT, FLOAT, STRING
	Offset int    // byte offset of the first character
}
