package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"int": INT_KW, "float": FLOAT_KW, "bool": BOOL_KW, "void": VOID,
		"if": IF, "else": ELSE, "for": FOR, "while": WHILE,
		"break": BREAK, "continue": CONTINUE, "return": RETURN,
		"true": TRUE, "false": FALSE,
		"foo": IDENT, "If": IDENT, "INT": IDENT, "": IDENT,
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	for _, k := range []Kind{INT_KW, IF, RETURN, FALSE} {
		if !k.IsKeyword() {
			t.Errorf("%v should be a keyword", k)
		}
	}
	for _, k := range []Kind{IDENT, ADD, EOF, LBRACE} {
		if k.IsKeyword() {
			t.Errorf("%v should not be a keyword", k)
		}
	}
}

func TestIsTypeKeyword(t *testing.T) {
	for _, k := range []Kind{INT_KW, FLOAT_KW, BOOL_KW, VOID} {
		if !k.IsTypeKeyword() {
			t.Errorf("%v should be a type keyword", k)
		}
	}
	if IF.IsTypeKeyword() {
		t.Error("if is not a type keyword")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// Tighter binding must have strictly higher precedence.
	chains := [][]Kind{
		{LOR, LAND, EQL, LSS, ADD, MUL},
		{LOR, LAND, NEQ, GEQ, SUB, REM},
	}
	for _, chain := range chains {
		for i := 1; i < len(chain); i++ {
			if chain[i].Precedence() <= chain[i-1].Precedence() {
				t.Errorf("%v (%d) should bind tighter than %v (%d)",
					chain[i], chain[i].Precedence(), chain[i-1], chain[i-1].Precedence())
			}
		}
	}
	for _, k := range []Kind{ASSIGN, NOT, LPAREN, IDENT, EOF} {
		if k.Precedence() != 0 {
			t.Errorf("%v is not a binary operator, precedence should be 0", k)
		}
	}
}

func TestKindString(t *testing.T) {
	if ADD.String() != "+" || LEQ.String() != "<=" || INT_KW.String() != "int" {
		t.Error("operator rendering broken")
	}
	if s := Kind(9999).String(); s != "token(9999)" {
		t.Errorf("unknown kind renders %q", s)
	}
}
