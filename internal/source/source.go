// Package source provides source positions, spans, and diagnostics shared by
// every stage of the Kr compiler pipeline.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position within a source file, expressed as a byte offset plus the
// human-readable line/column derived from it. The zero Pos is "no position".
type Pos struct {
	Offset int // byte offset, 0-based
	Line   int // 1-based
	Col    int // 1-based, in bytes
}

// IsValid reports whether p refers to an actual location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Span is a half-open region [Start, End) of a file.
type Span struct {
	Start, End Pos
}

func (s Span) String() string {
	if s.Start.Line == s.End.Line {
		return s.Start.String()
	}
	return s.Start.String() + "-" + s.End.String()
}

// File associates a name with source text and answers offset→Pos queries.
type File struct {
	Name    string
	Content string
	lines   []int // byte offset of each line start
}

// NewFile builds a File, indexing line starts for position lookup.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// Pos converts a byte offset into a full position.
func (f *File) Pos(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	// Find the last line start <= offset.
	i := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > offset }) - 1
	return Pos{Offset: offset, Line: i + 1, Col: offset - f.lines[i] + 1}
}

// NumLines reports the number of lines in the file.
func (f *File) NumLines() int { return len(f.lines) }

// Line returns the text of the 1-based line n, without the trailing newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lines) {
		return ""
	}
	start := f.lines[n-1]
	end := len(f.Content)
	if n < len(f.lines) {
		end = f.lines[n] - 1
	}
	return f.Content[start:end]
}

// Severity classifies a diagnostic.
type Severity int

const (
	// Error marks diagnostics that prevent successful compilation.
	Error Severity = iota
	// Warning marks diagnostics that do not stop compilation.
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is a single compiler message anchored at a source location.
type Diagnostic struct {
	File     string
	Pos      Pos
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%s: %s: %s", d.File, d.Pos, d.Severity, d.Message)
}

// MaxDiags bounds the number of diagnostics an ErrorList stores.
// Pathological inputs (a megabyte of stray tokens) would otherwise make
// the error list itself the memory and time hog; diagnostics past the cap
// are counted in Dropped but not stored.
const MaxDiags = 100

// ErrorList collects diagnostics and satisfies the error interface when
// non-empty, so a compilation stage can return it directly.
type ErrorList struct {
	Diags []Diagnostic
	// Dropped counts diagnostics discarded once MaxDiags were stored.
	Dropped int

	numErrors int // error-severity count, including dropped ones
}

func (e *ErrorList) add(d Diagnostic) {
	if d.Severity == Error {
		e.numErrors++
	}
	if len(e.Diags) >= MaxDiags {
		e.Dropped++
		return
	}
	e.Diags = append(e.Diags, d)
}

// Add appends an error-severity diagnostic.
func (e *ErrorList) Add(file string, pos Pos, format string, args ...interface{}) {
	e.add(Diagnostic{File: file, Pos: pos, Severity: Error, Message: fmt.Sprintf(format, args...)})
}

// Warn appends a warning-severity diagnostic.
func (e *ErrorList) Warn(file string, pos Pos, format string, args ...interface{}) {
	e.add(Diagnostic{File: file, Pos: pos, Severity: Warning, Message: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any error-severity diagnostics are present.
func (e *ErrorList) HasErrors() bool {
	if e.numErrors > 0 {
		return true
	}
	// Tolerate lists assembled by hand (tests build Diags directly).
	for _, d := range e.Diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Err returns e if it holds errors, nil otherwise.
func (e *ErrorList) Err() error {
	if e.HasErrors() {
		return e
	}
	return nil
}

func (e *ErrorList) Error() string {
	var b strings.Builder
	for i, d := range e.Diags {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.String())
	}
	if e.Dropped > 0 {
		fmt.Fprintf(&b, "\n... and %d more diagnostics", e.Dropped)
	}
	return b.String()
}
