package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPosConversion(t *testing.T) {
	f := NewFile("t.kr", "abc\ndef\n\nx")
	cases := []struct {
		off  int
		line int
		col  int
	}{
		{0, 1, 1}, {2, 1, 3}, {3, 1, 4}, // newline itself is on line 1
		{4, 2, 1}, {7, 2, 4},
		{8, 3, 1},
		{9, 4, 1},
	}
	for _, c := range cases {
		p := f.Pos(c.off)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("Pos(%d) = %d:%d, want %d:%d", c.off, p.Line, p.Col, c.line, c.col)
		}
		if p.Offset != c.off {
			t.Errorf("Pos(%d).Offset = %d", c.off, p.Offset)
		}
	}
}

func TestPosClamping(t *testing.T) {
	f := NewFile("t.kr", "ab")
	if p := f.Pos(-5); p.Offset != 0 {
		t.Errorf("negative offset should clamp to 0, got %+v", p)
	}
	if p := f.Pos(100); p.Offset != 2 {
		t.Errorf("overlong offset should clamp to len, got %+v", p)
	}
}

func TestLineText(t *testing.T) {
	f := NewFile("t.kr", "first\nsecond\nthird")
	if got := f.Line(2); got != "second" {
		t.Errorf("Line(2) = %q", got)
	}
	if got := f.Line(3); got != "third" {
		t.Errorf("Line(3) = %q", got)
	}
	if got := f.Line(0); got != "" {
		t.Errorf("Line(0) = %q, want empty", got)
	}
	if got := f.Line(99); got != "" {
		t.Errorf("Line(99) = %q, want empty", got)
	}
	if f.NumLines() != 3 {
		t.Errorf("NumLines = %d, want 3", f.NumLines())
	}
}

func TestPosRoundTripProperty(t *testing.T) {
	content := "alpha\nbeta gamma\n\n\ndelta\nepsilon"
	f := NewFile("t.kr", content)
	check := func(off uint8) bool {
		o := int(off) % (len(content) + 1)
		p := f.Pos(o)
		if p.Line < 1 || p.Col < 1 {
			return false
		}
		// The line's start offset plus col-1 must reproduce the offset.
		lineStart := 0
		for i := 1; i < p.Line; i++ {
			lineStart += len(f.Line(i)) + 1
		}
		return lineStart+p.Col-1 == o
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidPos(t *testing.T) {
	var p Pos
	if p.IsValid() {
		t.Error("zero Pos should be invalid")
	}
	if p.String() != "-" {
		t.Errorf("invalid Pos renders %q", p.String())
	}
	q := Pos{Line: 3, Col: 7}
	if q.String() != "3:7" {
		t.Errorf("Pos renders %q", q.String())
	}
}

func TestSpanString(t *testing.T) {
	s := Span{Start: Pos{Line: 1, Col: 2}, End: Pos{Line: 1, Col: 9}}
	if s.String() != "1:2" {
		t.Errorf("same-line span = %q", s.String())
	}
	s.End.Line = 4
	if s.String() != "1:2-4:9" {
		t.Errorf("multi-line span = %q", s.String())
	}
}

func TestErrorList(t *testing.T) {
	var e ErrorList
	if e.Err() != nil {
		t.Error("empty list should not be an error")
	}
	e.Warn("f.kr", Pos{Line: 1, Col: 1}, "heads up %d", 1)
	if e.HasErrors() {
		t.Error("warnings are not errors")
	}
	if e.Err() != nil {
		t.Error("warnings alone should not produce an error")
	}
	e.Add("f.kr", Pos{Line: 2, Col: 5}, "bad %s", "thing")
	if !e.HasErrors() {
		t.Error("expected errors")
	}
	msg := e.Err().Error()
	if !strings.Contains(msg, "f.kr:2:5: error: bad thing") {
		t.Errorf("message %q missing formatted diagnostic", msg)
	}
	if !strings.Contains(msg, "warning: heads up 1") {
		t.Errorf("message %q missing warning", msg)
	}
}
