package krfuzz

// Incremental-vs-full oracle: profile a base program cold into a content-
// hash cache, then profile an edited variant through that cache and demand
// the result be indistinguishable from profiling the edited program from
// scratch — on both execution engines, plus a cross-engine pairing where
// the tree interpreter records and the bytecode VM replays.
//
// Deliberately NOT compared: shadow-memory statistics (ShadowPages,
// ShadowWrites). Replaying a cached extent skips the shadow writes the
// recorded execution performed, so those counters legitimately shrink on a
// warm run; they are diagnostics, not outputs. Everything user-visible —
// program output, profile bytes, gprof counters, step/work totals, and the
// rendered parallelization plan — must be byte-identical.

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"kremlin"
	"kremlin/internal/inccache"
	"kremlin/internal/planner"
)

// CheckIncremental runs the incremental-reprofiling oracle on one
// (base, edited) pair. A nil return means the incremental path is
// indistinguishable from from-scratch profiling.
func CheckIncremental(name, baseSrc, editSrc string, cfg OracleConfig) error {
	fail := func(check, format string, args ...interface{}) error {
		return &Failure{Source: editSrc, Check: check, Detail: fmt.Sprintf(format, args...)}
	}

	type pairing struct {
		label        string
		record, play kremlin.Engine
	}
	pairings := []pairing{
		{"vm", kremlin.EngineVM, kremlin.EngineVM},
		{"tree", kremlin.EngineTree, kremlin.EngineTree},
		{"tree-to-vm", kremlin.EngineTree, kremlin.EngineVM},
	}
	for _, pr := range pairings {
		if err := checkIncrementalPair(name, baseSrc, editSrc, cfg, pr.label, pr.record, pr.play, fail); err != nil {
			return err
		}
	}
	return nil
}

func checkIncrementalPair(name, baseSrc, editSrc string, cfg OracleConfig,
	label string, record, replay kremlin.Engine,
	fail func(string, string, ...interface{}) error) error {

	dir, err := os.MkdirTemp("", "krfuzz-inc")
	if err != nil {
		return fail("inc-tmpdir", "%v", err)
	}
	defer os.RemoveAll(dir)

	base, err := kremlin.Compile(name, baseSrc)
	if err != nil {
		return fail("inc-base-compile", "[%s] %v", label, err)
	}
	edited, err := kremlin.Compile(name, editSrc)
	if err != nil {
		return fail("inc-edit-compile", "[%s] %v", label, err)
	}

	// Cold run of the base program populates the cache.
	st, err := inccache.Open(dir)
	if err != nil {
		return fail("inc-open", "[%s] %v", label, err)
	}
	var coldOut strings.Builder
	if _, _, err := base.Profile(&kremlin.RunConfig{
		Out: &coldOut, MaxSteps: cfg.maxSteps(), Engine: record, Cache: st,
	}); err != nil {
		return fail("inc-cold-run", "[%s] %v", label, err)
	}

	// From-scratch ground truth for the edited program.
	var truthOut strings.Builder
	truthProf, truthRes, err := edited.Profile(&kremlin.RunConfig{
		Out: &truthOut, MaxSteps: cfg.maxSteps(), Engine: replay,
	})
	if err != nil {
		return fail("inc-truth-run", "[%s] %v", label, err)
	}
	var truthGprofOut strings.Builder
	truthGprof, err := edited.RunGprof(&kremlin.RunConfig{
		Out: &truthGprofOut, MaxSteps: cfg.maxSteps(), Engine: replay,
	})
	if err != nil {
		return fail("inc-truth-gprof", "[%s] %v", label, err)
	}
	truthPlan := edited.Plan(truthProf, planner.OpenMP()).Render()

	// Warm incremental run of the edited program through the cache.
	st2, err := inccache.Open(dir)
	if err != nil {
		return fail("inc-reopen", "[%s] %v", label, err)
	}
	var warmOut strings.Builder
	var stats inccache.Stats
	warmProf, warmRes, err := edited.Profile(&kremlin.RunConfig{
		Out: &warmOut, MaxSteps: cfg.maxSteps(), Engine: replay,
		Cache: st2, CacheStats: &stats,
	})
	if err != nil {
		return fail("inc-warm-run", "[%s] %v", label, err)
	}

	if warmOut.String() != truthOut.String() {
		return fail("inc-output", "[%s] incremental output differs from from-scratch:\n--- scratch ---\n%s--- incremental ---\n%s",
			label, truthOut.String(), warmOut.String())
	}
	if warmRes.Steps != truthRes.Steps || warmRes.Work != truthRes.Work {
		return fail("inc-counters", "[%s] incremental steps/work %d/%d, from-scratch %d/%d",
			label, warmRes.Steps, warmRes.Work, truthRes.Steps, truthRes.Work)
	}
	if wb, tb := profileBytes(warmProf), profileBytes(truthProf); !bytes.Equal(wb, tb) {
		return fail("inc-profile", "[%s] incremental profile serialized differently (%d vs %d bytes, %d hits)",
			label, len(wb), len(tb), stats.Hits)
	}
	if plan := edited.Plan(warmProf, planner.OpenMP()).Render(); plan != truthPlan {
		return fail("inc-plan", "[%s] incremental plan diverged\n--- scratch ---\n%s\n--- incremental ---\n%s",
			label, truthPlan, plan)
	}

	// Gprof mode never consults the cache; its counters pin that the cache
	// plumbing has no side channel into non-HCPA runs.
	var gprofOut strings.Builder
	gprof, err := edited.RunGprof(&kremlin.RunConfig{
		Out: &gprofOut, MaxSteps: cfg.maxSteps(), Engine: replay,
	})
	if err != nil {
		return fail("inc-gprof-run", "[%s] %v", label, err)
	}
	if gprofOut.String() != truthGprofOut.String() {
		return fail("inc-gprof-output", "[%s] gprof output diverged", label)
	}
	if gprof.Work != truthGprof.Work || gprof.Steps != truthGprof.Steps {
		return fail("inc-gprof-counters", "[%s] gprof work/steps %d/%d vs %d/%d",
			label, gprof.Work, gprof.Steps, truthGprof.Work, truthGprof.Steps)
	}
	return nil
}

// IncrementalFailure records one incremental-oracle violation found by a
// campaign, with both sides of the edit pair.
type IncrementalFailure struct {
	Seed   int64  `json:"seed"`
	Kind   string `json:"kind"`   // edit pattern (body-edit, callee-edit, dead-edit)
	Target string `json:"target"` // edited function
	Check  string `json:"check"`
	Detail string `json:"detail"`
	Base   string `json:"base"`   // pre-edit source
	Edited string `json:"edited"` // post-edit source
	Path   string `json:"repro_path"`
}

// IncrementalCampaignResult summarizes an incremental-oracle campaign.
type IncrementalCampaignResult struct {
	N        int                   `json:"n"`
	Seed     int64                 `json:"seed"`
	Passed   int                   `json:"passed"`
	Failed   int                   `json:"failed"`
	Kinds    map[string]int        `json:"edit_kinds"` // edit pattern → occurrences
	Failures []*IncrementalFailure `json:"failures,omitempty"`
}

// RunIncrementalCampaign runs the incremental oracle over N seeded
// (program, single-function-edit) pairs. Reproducer pairs are written to
// OutDir as self-contained .kr files (base program, separator, edited
// program). Like RunCampaign it never stops early.
func RunIncrementalCampaign(cfg CampaignConfig) (*IncrementalCampaignResult, error) {
	gen := cfg.Gen
	if gen == (Config{}) {
		gen = Default()
	}
	res := &IncrementalCampaignResult{N: cfg.N, Seed: cfg.Seed, Kinds: map[string]int{}}
	for i := 0; i < cfg.N; i++ {
		seed := cfg.Seed + int64(i)
		p := Generate(seed, gen)
		mut, kind, target := Mutate(p, seed+1)
		if mut == nil {
			continue
		}
		res.Kinds[kind.String()]++
		baseSrc, editSrc := p.Source(), mut.Source()
		err := CheckIncremental(fmt.Sprintf("krinc-%d.kr", seed), baseSrc, editSrc, cfg.Oracle)
		if err == nil {
			res.Passed++
			if cfg.Progress != nil {
				cfg.Progress(i+1, res.Failed)
			}
			continue
		}
		res.Failed++
		f, ok := err.(*Failure)
		if !ok {
			f = &Failure{Source: editSrc, Check: "internal", Detail: err.Error()}
		}
		cf := &IncrementalFailure{
			Seed: seed, Kind: kind.String(), Target: target,
			Check: f.Check, Detail: f.Detail, Base: baseSrc, Edited: editSrc,
		}
		cf.Path = fmt.Sprintf("%s/krinc-repro-%d.kr", outDirOrDot(cfg.OutDir), seed)
		body := fmt.Sprintf("// krinc reproducer: seed %d, edit %s of %s, check %q\n// %s\n// --- base program ---\n%s\n// --- edited program (profile base cold, then this through the cache) ---\n%s",
			seed, kind, target, f.Check, f.Detail, commentOut(baseSrc), editSrc)
		if werr := os.WriteFile(cf.Path, []byte(body), 0o644); werr != nil {
			return res, fmt.Errorf("writing reproducer: %w", werr)
		}
		res.Failures = append(res.Failures, cf)
		if cfg.Progress != nil {
			cfg.Progress(i+1, res.Failed)
		}
	}
	return res, nil
}

func outDirOrDot(dir string) string {
	if dir == "" {
		return "."
	}
	return dir
}

// commentOut prefixes every line so the base program rides along in the
// reproducer file without confusing the compiler.
func commentOut(src string) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "// " + l
	}
	return strings.Join(lines, "\n")
}
