package krfuzz

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"

	"kremlin"
	"kremlin/internal/ast"
	"kremlin/internal/bytecode"
	"kremlin/internal/depcheck"
	"kremlin/internal/parser"
	"kremlin/internal/planner"
	"kremlin/internal/profile"
	"kremlin/internal/source"
)

// Failure describes one oracle violation: which check failed and on what
// program. It satisfies error so oracle results flow through normal error
// plumbing.
type Failure struct {
	Seed   int64  // generating seed, if known (0 for external sources)
	Source string // full Kr source of the failing program
	Check  string // the oracle check that failed, e.g. "sharded-equivalence"
	Detail string // what differed
}

func (f *Failure) Error() string {
	return fmt.Sprintf("krfuzz oracle: check %q failed: %s", f.Check, f.Detail)
}

// OracleConfig tunes the differential/metamorphic oracle.
type OracleConfig struct {
	// MaxSteps bounds each interpreter execution (0 = 50M). Generated
	// programs are tiny; the bound exists to turn a hypothetical
	// non-termination bug into a reported failure instead of a hang.
	MaxSteps uint64
	// ShardCounts are the K values checked against the sequential K=1
	// profile (nil = {2, 3, 4}).
	ShardCounts []int
	// SkipSharded drops the sharded-equivalence checks (the most expensive
	// part) — used by the fuzz-target quick path.
	SkipSharded bool
}

func (c OracleConfig) maxSteps() uint64 {
	if c.MaxSteps == 0 {
		return 50_000_000
	}
	return c.MaxSteps
}

func (c OracleConfig) shardCounts() []int {
	if c.ShardCounts == nil {
		return []int{2, 3, 4}
	}
	return c.ShardCounts
}

// Check runs the full oracle on one Kr program. A nil return means every
// differential, metamorphic, and invariant check passed; otherwise the
// error is a *Failure naming the first violated check.
//
// The pipeline configurations compared:
//
//	plain interpretation  — ground truth for output and work
//	gprof mode            — instrumented control flow, work-only counters
//	HCPA mode (K=1)       — full shadow-memory profiling
//	sharded HCPA K=2,3,4  — concurrent depth-window collection + stitch
//	optimizer on          — semantics preserved, work never increased
//	dependence breaking off — profile changes, observable behavior must not
func Check(name, src string, cfg OracleConfig) error {
	fail := func(check, format string, args ...interface{}) error {
		return &Failure{Source: src, Check: check, Detail: fmt.Sprintf(format, args...)}
	}

	prog, err := kremlin.Compile(name, src)
	if err != nil {
		return fail("compile", "%v", err)
	}

	// Ground truth: uninstrumented run.
	var plainOut strings.Builder
	run := func(out *strings.Builder) *kremlin.RunConfig {
		return &kremlin.RunConfig{Out: out, MaxSteps: cfg.maxSteps()}
	}
	plain, err := prog.Run(run(&plainOut))
	if err != nil {
		return fail("plain-run", "%v", err)
	}

	// Lint must be silent on clean seeds: an error-severity finding claims
	// every terminating run of main faults, and the plain run just
	// terminated cleanly — any such finding is a soundness bug in the
	// abstract interpreter.
	if errs := prog.Absint.Errors(); len(errs) > 0 {
		return fail("lint-false-positive",
			"program ran cleanly but lint claims a definite fault: %s (%s)", errs[0].Msg, errs[0].Kind)
	}

	// Differential: gprof instrumentation must not change behavior.
	var gprofOut strings.Builder
	gprof, err := prog.RunGprof(run(&gprofOut))
	if err != nil {
		return fail("gprof-run", "%v", err)
	}
	if gprofOut.String() != plainOut.String() {
		return fail("gprof-output", "gprof output differs from plain:\n--- plain ---\n%s--- gprof ---\n%s", plainOut.String(), gprofOut.String())
	}
	if gprof.Work != plain.Work {
		return fail("gprof-work", "gprof work %d, plain %d", gprof.Work, plain.Work)
	}

	// Differential: HCPA instrumentation must not change behavior, and the
	// profile's total work must equal the executed work.
	var hcpaOut strings.Builder
	prof, hres, err := prog.Profile(run(&hcpaOut))
	if err != nil {
		return fail("hcpa-run", "%v", err)
	}
	if hcpaOut.String() != plainOut.String() {
		return fail("hcpa-output", "HCPA output differs from plain:\n--- plain ---\n%s--- hcpa ---\n%s", plainOut.String(), hcpaOut.String())
	}
	if hres.Work != plain.Work {
		return fail("hcpa-work", "HCPA work %d, plain %d", hres.Work, plain.Work)
	}
	if tw := prof.TotalWork(); tw != plain.Work {
		return fail("profile-total-work", "profile TotalWork %d, executed work %d", tw, plain.Work)
	}

	// Differential: the two execution engines must be observably identical.
	// The runs above used the default engine (the bytecode VM); replay
	// plain, gprof, and HCPA on the tree-walking reference interpreter and
	// demand bit-identical output, counters, and profile bytes. The
	// compiled bytecode must also pass structural verification.
	if err := bytecode.Verify(prog.Bytecode()); err != nil {
		return fail("bytecode-verify", "%v", err)
	}
	tree := func(out *strings.Builder) *kremlin.RunConfig {
		c := run(out)
		c.Engine = kremlin.EngineTree
		return c
	}
	var treeOut strings.Builder
	treePlain, err := prog.Run(tree(&treeOut))
	if err != nil {
		return fail("tree-plain-run", "%v", err)
	}
	if treeOut.String() != plainOut.String() {
		return fail("engine-output", "VM output differs from tree:\n--- tree ---\n%s--- vm ---\n%s", treeOut.String(), plainOut.String())
	}
	if treePlain.Work != plain.Work || treePlain.Steps != plain.Steps {
		return fail("engine-counters", "tree work/steps %d/%d, vm %d/%d", treePlain.Work, treePlain.Steps, plain.Work, plain.Steps)
	}
	treeGprof, err := prog.RunGprof(tree(&strings.Builder{}))
	if err != nil {
		return fail("tree-gprof-run", "%v", err)
	}
	if treeGprof.Work != gprof.Work || treeGprof.Steps != gprof.Steps {
		return fail("engine-gprof-counters", "tree work/steps %d/%d, vm %d/%d", treeGprof.Work, treeGprof.Steps, gprof.Work, gprof.Steps)
	}
	if !reflect.DeepEqual(treeGprof.Gprof, gprof.Gprof) {
		return fail("engine-gprof-entries", "gprof region profiles diverged between engines")
	}
	eprof, eres, err := prog.Profile(tree(&strings.Builder{}))
	if err != nil {
		return fail("tree-hcpa-run", "%v", err)
	}
	if eres.Work != hres.Work || eres.Steps != hres.Steps {
		return fail("engine-hcpa-counters", "tree work/steps %d/%d, vm %d/%d", eres.Work, eres.Steps, hres.Work, hres.Steps)
	}
	if eres.ShadowPages != hres.ShadowPages || eres.ShadowWrites != hres.ShadowWrites {
		return fail("engine-hcpa-shadow", "tree pages/writes %d/%d, vm %d/%d", eres.ShadowPages, eres.ShadowWrites, hres.ShadowPages, hres.ShadowWrites)
	}
	if tb, vb := profileBytes(eprof), profileBytes(prof); !bytes.Equal(tb, vb) {
		return fail("engine-profile", "HCPA profiles serialized differently between engines (%d vs %d bytes)", len(tb), len(vb))
	}

	// Differential: the checked and unchecked bytecode builds must be
	// observably identical. The default build consumes the abstract
	// interpretation (unchecked opcode variants, wider fusion); with
	// -absint=off every bounds and divisor check stays explicit. Output,
	// counters, and profile bytes must not move.
	aprog, err := kremlin.CompileWith(name, src, kremlin.CompileOptions{DisableAbsint: true})
	if err != nil {
		return fail("absint-off-compile", "%v", err)
	}
	if err := bytecode.Verify(aprog.Bytecode()); err != nil {
		return fail("absint-off-verify", "%v", err)
	}
	var aOut strings.Builder
	aprof, ares, err := aprog.Profile(run(&aOut))
	if err != nil {
		return fail("absint-off-run", "%v", err)
	}
	if aOut.String() != plainOut.String() {
		return fail("absint-off-output", "output differs with absint off:\n--- on ---\n%s--- off ---\n%s", plainOut.String(), aOut.String())
	}
	if ares.Work != hres.Work || ares.Steps != hres.Steps {
		return fail("absint-off-counters", "absint-off work/steps %d/%d, default %d/%d", ares.Work, ares.Steps, hres.Work, hres.Steps)
	}
	if ab, db := profileBytes(aprof), profileBytes(prof); !bytes.Equal(ab, db) {
		return fail("absint-off-profile", "profiles serialized differently with absint off (%d vs %d bytes)", len(ab), len(db))
	}

	if err := checkProfileInvariants(src, prog, prof); err != nil {
		return err
	}
	if err := checkPlannerBounds(src, prog, prof); err != nil {
		return err
	}

	// Soundness: a loop the static dependence analyzer proved parallel must
	// never exhibit a dynamic loop-carried flow dependence. The runtime
	// tracer flags exactly the cross-iteration reads HCPA would serialize
	// (broken induction/reduction dependences excluded on both sides), so
	// any overlap is a bug in the static proof.
	tcfg := run(&strings.Builder{})
	tcfg.TraceDeps = true
	_, tres, err := prog.Profile(tcfg)
	if err != nil {
		return fail("deptrace-run", "%v", err)
	}
	carried := make(map[int]bool, len(tres.CarriedDeps))
	for _, id := range tres.CarriedDeps {
		carried[id] = true
	}
	for _, rep := range prog.Vet.Loops {
		if rep.Verdict == depcheck.Parallel && carried[rep.Region.ID] {
			return fail("depcheck-soundness",
				"loop %s proved parallel statically but showed a loop-carried dependence at run time",
				rep.Region.Label())
		}
	}

	// Determinism: a second sequential profile must serialize to the same
	// bytes (dictionary construction order included).
	prof2, _, err := prog.Profile(run(&strings.Builder{}))
	if err != nil {
		return fail("determinism", "second profile run failed: %v", err)
	}
	b1, b2 := profileBytes(prof), profileBytes(prof2)
	if !bytes.Equal(b1, b2) {
		return fail("determinism", "two sequential profiles serialized differently (%d vs %d bytes)", len(b1), len(b2))
	}

	// Serialization: WriteTo → ReadFrom must round-trip exactly.
	rt, err := profile.ReadFrom(bytes.NewReader(b1))
	if err != nil {
		return fail("serialize-roundtrip", "ReadFrom: %v", err)
	}
	if !bytes.Equal(profileBytes(rt), b1) {
		return fail("serialize-roundtrip", "profile changed across WriteTo/ReadFrom")
	}

	// Metamorphic: sharded collection at every K must stitch to a profile
	// indistinguishable from the sequential one.
	if !cfg.SkipSharded {
		fullPlan := prog.Plan(prof, planner.OpenMP()).Render()
		fullSum := prog.Summarize(prof)
		for _, k := range cfg.shardCounts() {
			sprof, sres, err := prog.ProfileSharded(run(&strings.Builder{}), k)
			if err != nil {
				return fail("sharded-run", "K=%d: %v", k, err)
			}
			if got := sres.Work(); got != plain.Work {
				return fail("sharded-work", "K=%d: sharded work %d, plain %d", k, got, plain.Work)
			}
			if sprof.TotalWork() != prof.TotalWork() {
				return fail("sharded-equivalence", "K=%d: stitched TotalWork %d, sequential %d", k, sprof.TotalWork(), prof.TotalWork())
			}
			if sprof.Dict.RawCount != prof.Dict.RawCount {
				return fail("sharded-equivalence", "K=%d: stitched RawCount %d, sequential %d", k, sprof.Dict.RawCount, prof.Dict.RawCount)
			}
			if plan := prog.Plan(sprof, planner.OpenMP()).Render(); plan != fullPlan {
				return fail("sharded-plan", "K=%d: plan diverged\n--- sequential ---\n%s\n--- sharded ---\n%s", k, fullPlan, plan)
			}
			ssum := prog.Summarize(sprof)
			for id, st := range ssum.Stats {
				fst := fullSum.Stats[id]
				if (st == nil) != (fst == nil) {
					return fail("sharded-equivalence", "K=%d: region %d executed in only one profile", k, id)
				}
				if st == nil {
					continue
				}
				if st.TotalWork != fst.TotalWork || st.TotalCP != fst.TotalCP || st.Instances != fst.Instances {
					return fail("sharded-equivalence", "K=%d: region %d aggregates diverged: work %d/%d cp %d/%d n %d/%d",
						k, id, st.TotalWork, fst.TotalWork, st.TotalCP, fst.TotalCP, st.Instances, fst.Instances)
				}
				if math.Abs(st.SelfP-fst.SelfP) > 1e-9*math.Max(1, fst.SelfP) {
					return fail("sharded-equivalence", "K=%d: region %d SelfP diverged: %g vs %g", k, id, st.SelfP, fst.SelfP)
				}
			}
		}
	}

	// Metamorphic: the optimizer must preserve observable behavior and
	// never add work, and its profile must satisfy the same invariants.
	oprog, err := kremlin.CompileWith(name, src, kremlin.CompileOptions{Optimize: true})
	if err != nil {
		return fail("opt-compile", "%v", err)
	}
	var optOut strings.Builder
	oprof, ores, err := oprog.Profile(run(&optOut))
	if err != nil {
		return fail("opt-run", "%v", err)
	}
	if optOut.String() != plainOut.String() {
		return fail("opt-output", "optimized output differs from plain:\n--- plain ---\n%s--- opt ---\n%s", plainOut.String(), optOut.String())
	}
	if ores.Work > plain.Work {
		return fail("opt-work", "optimizer increased work: %d > %d", ores.Work, plain.Work)
	}
	if tw := oprof.TotalWork(); tw != ores.Work {
		return fail("opt-profile-work", "optimized profile TotalWork %d, executed %d", tw, ores.Work)
	}
	if err := checkProfileInvariants(src, oprog, oprof); err != nil {
		return err
	}

	// Metamorphic: disabling induction/reduction dependence breaking
	// changes critical paths, never observable behavior or work.
	dprog, err := kremlin.CompileWith(name, src, kremlin.CompileOptions{DisableDependenceBreaking: true})
	if err != nil {
		return fail("nodep-compile", "%v", err)
	}
	var depOut strings.Builder
	dres, err := dprog.Run(run(&depOut))
	if err != nil {
		return fail("nodep-run", "%v", err)
	}
	if depOut.String() != plainOut.String() {
		return fail("nodep-output", "output differs with dependence breaking disabled")
	}
	if dres.Work != plain.Work {
		return fail("nodep-work", "work %d with dependence breaking disabled, plain %d", dres.Work, plain.Work)
	}

	// Printer fixpoint: the canonical rendering of the parse tree must
	// itself parse, and re-render identically.
	if err := checkPrintFixpoint(src, prog.AST); err != nil {
		return err
	}
	return nil
}

// checkProfileInvariants verifies the HCPA laws on every dictionary entry
// and every aggregated region: work ≥ cp ≥ 1, children consistent with the
// parent, SP/TP ≥ 1, SelfP ≤ TotalP, coverage bounded.
func checkProfileInvariants(src string, prog *kremlin.Program, prof *profile.Profile) error {
	fail := func(check, format string, args ...interface{}) error {
		return &Failure{Source: src, Check: check, Detail: fmt.Sprintf(format, args...)}
	}
	entries := prof.Dict.Entries
	for i, e := range entries {
		if e.CP < 1 {
			return fail("invariant-cp", "entry %d (region %d): CP %d < 1", i, e.StaticID, e.CP)
		}
		if e.Work < e.CP {
			return fail("invariant-work-cp", "entry %d (region %d): work %d < cp %d", i, e.StaticID, e.Work, e.CP)
		}
		var childWork uint64
		for _, c := range e.Children {
			if c.Char < 0 || int(c.Char) >= len(entries) {
				return fail("invariant-child-ref", "entry %d: child char %d out of range", i, c.Char)
			}
			if c.Count <= 0 {
				return fail("invariant-child-count", "entry %d: child %d count %d", i, c.Char, c.Count)
			}
			child := entries[c.Char]
			if child.CP > e.CP {
				return fail("invariant-child-cp", "entry %d: child %d cp %d exceeds parent cp %d", i, c.Char, child.CP, e.CP)
			}
			childWork += uint64(c.Count) * child.Work
		}
		if childWork > e.Work {
			return fail("invariant-child-work", "entry %d: Σ child work %d exceeds own work %d", i, childWork, e.Work)
		}
	}
	for _, r := range prof.Roots {
		if r < 0 || int(r) >= len(entries) {
			return fail("invariant-root", "root char %d out of range", r)
		}
	}

	sum := prog.Summarize(prof)
	for i, em := range sum.Entries {
		if em.SelfP < 1 {
			return fail("invariant-selfp", "entry %d: SelfP %g < 1", i, em.SelfP)
		}
		if em.TotalP < 1 {
			return fail("invariant-totalp", "entry %d: TotalP %g < 1", i, em.TotalP)
		}
	}
	for _, st := range sum.Executed {
		if st.SelfP < 1 {
			return fail("invariant-region-selfp", "region %s: SelfP %g < 1", st.Region.Label(), st.SelfP)
		}
		if st.TotalP < 1 {
			return fail("invariant-region-totalp", "region %s: TotalP %g < 1", st.Region.Label(), st.TotalP)
		}
		if st.SelfP > st.TotalP+1e-9 {
			return fail("invariant-sp-le-tp", "region %s: SelfP %g > TotalP %g", st.Region.Label(), st.SelfP, st.TotalP)
		}
		if st.Coverage < 0 || st.Coverage > 1.0001 {
			return fail("invariant-coverage", "region %s: coverage %g outside [0,1]", st.Region.Label(), st.Coverage)
		}
		if st.Instances <= 0 {
			return fail("invariant-instances", "region %s: %d instances", st.Region.Label(), st.Instances)
		}
	}
	return nil
}

// checkPlannerBounds verifies every personality's plan stays inside its
// mathematical bounds: per-recommendation speedup in [1, 100] (or
// [1, cores] with a core cap), saved fractions in [0, 1), no duplicate
// regions, whole-program estimate in [1, 100].
func checkPlannerBounds(src string, prog *kremlin.Program, prof *profile.Profile) error {
	fail := func(check, format string, args ...interface{}) error {
		return &Failure{Source: src, Check: check, Detail: fmt.Sprintf(format, args...)}
	}
	capped := planner.OpenMP()
	capped.Name = "openmp-8core"
	capped.MaxCores = 8
	for _, pers := range []planner.Personality{planner.OpenMP(), planner.Cilk(), planner.WorkOnly(), planner.WorkSP(), capped} {
		plan := prog.Plan(prof, pers)
		maxSpeedup := 100.0
		if pers.MaxCores > 0 {
			maxSpeedup = float64(pers.MaxCores)
		}
		seen := map[int]bool{}
		for _, rec := range plan.Recs {
			id := rec.Stats.Region.ID
			if seen[id] {
				return fail("planner-dup", "%s: region %s recommended twice", pers.Name, rec.Label())
			}
			seen[id] = true
			if rec.SavedFrac < 0 || rec.SavedFrac >= 1 {
				return fail("planner-saved-frac", "%s: region %s SavedFrac %g outside [0,1)", pers.Name, rec.Label(), rec.SavedFrac)
			}
			if rec.EstSpeedup < 1 || rec.EstSpeedup > maxSpeedup+1e-9 {
				return fail("planner-speedup", "%s: region %s EstSpeedup %g outside [1,%g]", pers.Name, rec.Label(), rec.EstSpeedup, maxSpeedup)
			}
		}
		if plan.EstProgramSpeedup < 1 || plan.EstProgramSpeedup > 100+1e-9 {
			return fail("planner-program-speedup", "%s: EstProgramSpeedup %g outside [1,100]", pers.Name, plan.EstProgramSpeedup)
		}
		// Rendering must be deterministic.
		if a, b := plan.Render(), prog.Plan(prof, pers).Render(); a != b {
			return fail("planner-render-determinism", "%s: two renders of the same profile differ", pers.Name)
		}
	}
	return nil
}

// checkPrintFixpoint asserts Print∘Parse is a fixpoint of Print.
func checkPrintFixpoint(src string, tree *ast.File) error {
	printed := ast.Print(tree)
	errs := &source.ErrorList{}
	reparsed := parser.Parse(source.NewFile("printed.kr", printed), errs)
	if errs.HasErrors() {
		return &Failure{Source: src, Check: "print-reparse", Detail: "canonical rendering does not parse: " + errs.Error()}
	}
	if again := ast.Print(reparsed); again != printed {
		return &Failure{Source: src, Check: "print-fixpoint", Detail: "Print(Parse(Print(ast))) differs from Print(ast)"}
	}
	return nil
}

// CheckFault runs the fault-position metamorphic matrix on a program
// expected to fail at runtime. Every configuration — the default VM
// build (unchecked opcodes where proven safe), the -absint=off build
// (every check explicit), the tree-walking reference interpreter, and
// HCPA-instrumented profiling — must report the same error (message and
// source position) and produce the same output prefix. A divergence
// means an unchecked opcode skipped a check it needed, or the exact
// fallback re-executed a faulting block differently.
func CheckFault(name, src string, cfg OracleConfig) error {
	fail := func(check, format string, args ...interface{}) error {
		return &Failure{Source: src, Check: check, Detail: fmt.Sprintf(format, args...)}
	}
	prog, err := kremlin.Compile(name, src)
	if err != nil {
		return fail("fault-compile", "%v", err)
	}
	aprog, err := kremlin.CompileWith(name, src, kremlin.CompileOptions{DisableAbsint: true})
	if err != nil {
		return fail("fault-absint-off-compile", "%v", err)
	}
	run := func(out *strings.Builder) *kremlin.RunConfig {
		return &kremlin.RunConfig{Out: out, MaxSteps: cfg.maxSteps()}
	}

	var vmOut strings.Builder
	_, vmErr := prog.Run(run(&vmOut))
	if vmErr == nil {
		return fail("fault-expected", "program ran cleanly; CheckFault wants a runtime fault")
	}

	var offOut strings.Builder
	_, offErr := aprog.Run(run(&offOut))
	if offErr == nil || offErr.Error() != vmErr.Error() {
		return fail("fault-position-absint", "absint on/off report different errors:\n  on:  %v\n  off: %v", vmErr, offErr)
	}
	if offOut.String() != vmOut.String() {
		return fail("fault-output-absint", "output prefix differs with absint off:\n--- on ---\n%s--- off ---\n%s", vmOut.String(), offOut.String())
	}

	var treeOut strings.Builder
	tcfg := run(&treeOut)
	tcfg.Engine = kremlin.EngineTree
	_, treeErr := prog.Run(tcfg)
	if treeErr == nil || treeErr.Error() != vmErr.Error() {
		return fail("fault-position-engine", "VM and tree report different errors:\n  vm:   %v\n  tree: %v", vmErr, treeErr)
	}
	if treeOut.String() != vmOut.String() {
		return fail("fault-output-engine", "output prefix differs between engines:\n--- vm ---\n%s--- tree ---\n%s", vmOut.String(), treeOut.String())
	}

	var profOut strings.Builder
	_, _, profErr := prog.Profile(run(&profOut))
	if profErr == nil || profErr.Error() != vmErr.Error() {
		return fail("fault-position-hcpa", "plain and HCPA report different errors:\n  plain: %v\n  hcpa:  %v", vmErr, profErr)
	}
	if profOut.String() != vmOut.String() {
		return fail("fault-output-hcpa", "output prefix differs under HCPA instrumentation")
	}
	return nil
}

func profileBytes(p *profile.Profile) []byte {
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	return buf.Bytes()
}
