package krfuzz

import (
	"strings"
	"testing"
)

// TestIncrementalOracle is the tier-1 incremental-reprofiling property
// test: seeded (program, single-function-edit) pairs through the
// incremental-vs-full oracle on both engines plus the cross-engine
// pairing.
func TestIncrementalOracle(t *testing.T) {
	const n = 40
	kinds := map[string]int{}
	for seed := int64(0); seed < n; seed++ {
		p := Generate(seed, Default())
		mut, kind, target := Mutate(p, seed+1)
		if mut == nil {
			t.Fatalf("seed %d: no mutation candidate", seed)
		}
		kinds[kind.String()]++
		if err := CheckIncremental("krinc.kr", p.Source(), mut.Source(), OracleConfig{}); err != nil {
			t.Fatalf("seed %d (%s of %s): %v\n--- base ---\n%s\n--- edited ---\n%s",
				seed, kind, target, err, p.Source(), mut.Source())
		}
	}
	// The corpus must exercise every edit pattern.
	for k := MutationKind(0); k < NumMutationKinds; k++ {
		if kinds[k.String()] == 0 {
			t.Errorf("%d-seed corpus never produced a %s", n, k)
		}
	}
}

// TestMutateDeterministic: the same (program, mutSeed) must always yield
// the same edit — the foundation of incremental reproducers.
func TestMutateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := Generate(seed, Default())
		a, ka, ta := Mutate(p, seed*7+1)
		b, kb, tb := Mutate(p, seed*7+1)
		if a.Source() != b.Source() || ka != kb || ta != tb {
			t.Fatalf("seed %d: two mutations with the same mutSeed differ", seed)
		}
	}
}

// TestMutateSignaturePreserving: an edit rewrites exactly one function
// body; every signature line and all of main must survive byte-for-byte.
func TestMutateSignaturePreserving(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed, Default())
		mut, _, target := Mutate(p, seed+100)
		base, edit := p.Source(), mut.Source()
		if base == edit {
			continue // rare: the regenerated body matched the original
		}
		for _, src := range []string{base, edit} {
			if !strings.Contains(src, target+"(") {
				t.Fatalf("seed %d: target %s missing from source", seed, target)
			}
		}
		// Every function signature present in the base must appear
		// verbatim in the edit (signatures never change).
		for _, line := range strings.Split(base, "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "int ") || strings.HasPrefix(trimmed, "float ") {
				if strings.HasSuffix(trimmed, "{") && strings.Contains(trimmed, "(") {
					if !strings.Contains(edit, trimmed) {
						t.Fatalf("seed %d: signature %q missing after mutation", seed, trimmed)
					}
				}
			}
		}
		// The mutated program must still pass the base oracle (safety is
		// preserved by construction).
		if err := Check("krmut.kr", edit, OracleConfig{SkipSharded: true}); err != nil {
			t.Fatalf("seed %d: mutated program fails base oracle: %v\n%s", seed, err, edit)
		}
	}
}
