//go:build !race

package krfuzz

const raceEnabled = false
