package krfuzz

import "testing"

// TestFaultPositionMetamorphic drives the fault-position matrix: each
// program faults at runtime, and every engine/codegen configuration
// (default VM with unchecked opcodes, -absint=off with every check
// explicit, tree-walking reference, HCPA-instrumented) must report the
// identical error at the identical source position with the identical
// output prefix. The corpus aims the paths where bounds-check
// elimination could plausibly change fault behavior: faults adjacent to
// proven accesses, inside fused superinstruction chains, in mixed
// proven/unproven view chains, and in div/rem lowering.
func TestFaultPositionMetamorphic(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"oob-store-loop-edge", `
int a[10];
int main() {
	for (int i = 0; i <= 10; i++) {
		a[i] = i;
	}
	return 0;
}
`},
		{"oob-load-after-output", `
int a[8];
int main() {
	for (int i = 0; i < 8; i++) {
		a[i] = i * 2;
	}
	print("sum", a[3]);
	int k = 11;
	return a[k];
}
`},
		{"div-zero-through-array", `
int a[3];
int main() {
	a[0] = 7;
	a[2] = 0;
	print("start", a[0]);
	return a[0] / a[2];
}
`},
		{"mod-zero-in-loop", `
int a[6];
int main() {
	int acc = 0;
	for (int i = 0; i < 6; i++) {
		a[i] = 5 - i;
	}
	for (int i = 0; i < 6; i++) {
		acc = acc + 100 % a[i];
	}
	return acc;
}
`},
		{"negative-index", `
int a[5];
int main() {
	int base = 2;
	for (int i = 0; i < 5; i++) {
		a[i] = i;
	}
	return a[base - 4];
}
`},
		{"fused-2d-inner-oob", `
int m[4][4];
int main() {
	for (int i = 0; i < 4; i++) {
		for (int j = 0; j < 4; j++) {
			m[i][j] = i * 4 + j;
		}
	}
	int s = 0;
	for (int i = 0; i < 4; i++) {
		s = s + m[i][i + 1];
	}
	return s;
}
`},
		{"proven-then-faulting-same-block", `
int a[10];
int b[10];
int main() {
	for (int i = 0; i < 10; i++) {
		a[i] = i;
		b[i] = 0;
	}
	int k = a[9] + 5;
	b[3] = a[3] + a[k];
	return b[3];
}
`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckFault(tc.name+".kr", tc.src, OracleConfig{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
