// Package krfuzz is the repository's program fuzzer: a seeded,
// type-directed random generator of Kr programs built directly at the AST
// level, plus a differential and metamorphic oracle that cross-checks
// every pipeline configuration (uninstrumented vs instrumented
// interpretation, sharded vs sequential HCPA collection, optimizer on vs
// off) and verifies the HCPA profile invariants on every region, and a
// shrinker that reduces a failing program to a minimal reproducer.
//
// Generated programs are safe by construction — every one compiles, runs
// deterministically, and terminates:
//   - loops are counted (for) or counter-bounded (while), and the counter
//     is never reassigned in the body;
//   - array subscripts are reduced modulo the array extent and built from
//     non-negative values;
//   - integer division and modulo use positive constant divisors, float
//     division divides by fabs(x)+1;
//   - the call graph is acyclic (function i only calls functions j > i);
//   - a digest of every global is printed at exit, so any behavioral
//     difference between two pipeline configurations is observable.
//
// Unlike internal/krgen (the earlier, string-template generator kept for
// its independent coverage), krfuzz builds ast nodes and renders them with
// ast.Print, which lets the shrinker operate structurally and ties the
// generator to the grammar the parser actually accepts.
package krfuzz

import (
	"math/rand"

	"kremlin/internal/ast"
	"kremlin/internal/token"
)

// Construct enumerates the language/analysis features a generated program
// can contain. The campaign reports which constructs its corpus exercised.
type Construct int

// The generator's construct vocabulary.
const (
	ForLoop Construct = iota
	WhileLoop
	NestedLoop
	If
	IfElse
	Break
	Continue
	EarlyReturn
	Call
	ArrayRead
	ArrayWrite
	Array2D
	ArrayParam
	Reduction
	IntArith
	FloatArith
	IntDivMod
	BoolOp
	Not
	Neg
	IncDec
	Conversion
	MathBuiltin
	MinMax
	NumConstructs
)

var constructNames = [NumConstructs]string{
	"for-loop", "while-loop", "nested-loop", "if", "if-else", "break",
	"continue", "early-return", "call", "array-read", "array-write",
	"array-2d", "array-param", "reduction", "int-arith", "float-arith",
	"int-div-mod", "bool-op", "not", "neg", "inc-dec", "conversion",
	"math-builtin", "min-max",
}

func (c Construct) String() string {
	if c < 0 || c >= NumConstructs {
		return "?"
	}
	return constructNames[c]
}

// Coverage counts, per construct, how many times it was generated.
type Coverage [NumConstructs]int

// Merge adds o's counts into cv.
func (cv *Coverage) Merge(o Coverage) {
	for i := range cv {
		cv[i] += o[i]
	}
}

// Missing returns the constructs with a zero count.
func (cv Coverage) Missing() []Construct {
	var out []Construct
	for i, n := range cv {
		if n == 0 {
			out = append(out, Construct(i))
		}
	}
	return out
}

// Config bounds the generated program shape.
type Config struct {
	Funcs     int // helper functions in addition to main
	Globals   int // random global scalars/arrays (plus 3 guaranteed arrays)
	MaxStmts  int // statements per block
	MaxDepth  int // statement nesting depth
	MaxExpr   int // expression tree depth
	LoopIters int // maximum loop trip count
}

// Default returns the configuration used by the tier-1 property test:
// small enough to run hundreds of programs in seconds, rich enough that a
// modest corpus covers every construct.
func Default() Config {
	return Config{Funcs: 3, Globals: 5, MaxStmts: 5, MaxDepth: 3, MaxExpr: 3, LoopIters: 6}
}

// Stress returns a deeper, wider configuration for the fuzz campaign.
func Stress() Config {
	return Config{Funcs: 5, Globals: 8, MaxStmts: 7, MaxDepth: 4, MaxExpr: 4, LoopIters: 8}
}

// Program is one generated Kr program.
type Program struct {
	Seed     int64
	File     *ast.File
	Coverage Coverage
	// gen retains the generator tables so Mutate can reuse the generator
	// as an editor (regenerate one function body against the same
	// globals/signatures).
	gen *generator
}

// Source renders the program to canonical Kr source.
func (p *Program) Source() string { return ast.Print(p.File) }

// Generate produces the program for one seed. The same (seed, cfg) pair
// always yields the same program.
func Generate(seed int64, cfg Config) *Program {
	g := &generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	g.file = &ast.File{Name: "krfuzz.kr"}
	g.emitGlobals()
	g.planFuncs()
	// Bodies are generated highest index first so every call site can
	// consult its callee's estimated cost; the declarations are emitted in
	// index order regardless.
	for i := len(g.funcs) - 1; i >= 0; i-- {
		g.emitFunc(i)
	}
	for i := range g.funcs {
		g.file.Funcs = append(g.file.Funcs, g.funcs[i].decl)
	}
	g.emitMain()
	return &Program{Seed: seed, File: g.file, Coverage: g.cov, gen: g}
}

// gvar is a global variable's generator-side descriptor.
type gvar struct {
	name  string
	float bool
	dims  []int64 // nil: scalar; len 1/2: array
}

// lvar is a local (or parameter) descriptor.
type lvar struct {
	name    string
	float   bool
	loopVar bool // loop counter: usable in subscripts, never assigned
	arr     bool // 1-D array parameter; extent via dim(name, 0)
}

type fn struct {
	name     string
	retFloat bool
	params   []lvar
	decl     *ast.FuncDecl
	// cost is the generator's upper estimate of the steps one invocation
	// executes, calls included. Call sites consult it to keep total run
	// time bounded now that generated calls actually execute.
	cost int64
}

// scope tracks visible locals during generation of one function.
type scope struct {
	locals []lvar
	// fnIndex of the function being generated; callable helpers have
	// strictly greater indexes. len(funcs) for main.
	fnIndex   int
	loopDepth int
	// retFloat is meaningful only for helpers (early returns).
	retFloat int // -1: main (no early returns), 0: int, 1: float
	// mult is the product of the enclosing loops' trip counts inside the
	// current function: the execution multiplier of the statement being
	// generated, used for work accounting.
	mult int64
}

type generator struct {
	rng     *rand.Rand
	cfg     Config
	file    *ast.File
	globals []gvar
	funcs   []fn
	cov     Coverage
	tmp     int
	// curCost accumulates the estimated step cost of the function being
	// generated (statement cost × loop multiplier).
	curCost int64
}

// fnWorkBudget caps one function's estimated per-invocation step cost.
// Call sites stop being generated once the budget is spent, which bounds
// the whole program's runtime: main executes at most its own budget, and
// every callee's cost is already folded into the caller's accounting.
const fnWorkBudget = 250_000

func (g *generator) charge(sc *scope, n int64) { g.curCost += sc.mult * n }

func (g *generator) mark(c Construct) { g.cov[c]++ }

func (g *generator) fresh(prefix string) string {
	g.tmp++
	return prefix + itoa(g.tmp)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---- AST construction helpers (positions are zero; the oracle compiles
// the printed source, which re-derives real positions). ----

func id(name string) *ast.Ident   { return &ast.Ident{Name: name} }
func intLit(v int64) ast.Expr     { return &ast.IntLit{Value: v} }
func floatLit(v float64) ast.Expr { return &ast.FloatLit{Value: v} }
func bin(op token.Kind, x, y ast.Expr) ast.Expr {
	return &ast.BinaryExpr{Op: op, X: x, Y: y}
}
func call(name string, args ...ast.Expr) *ast.CallExpr {
	return &ast.CallExpr{Name: name, Args: args}
}
func index1(arr string, idx ast.Expr) ast.Expr {
	return &ast.IndexExpr{X: id(arr), Index: idx}
}
func index2(arr string, i, j ast.Expr) ast.Expr {
	return &ast.IndexExpr{X: &ast.IndexExpr{X: id(arr), Index: i}, Index: j}
}
func assign(lhs ast.Expr, op token.Kind, rhs ast.Expr) ast.Stmt {
	return &ast.AssignStmt{LHS: lhs, Op: op, RHS: rhs}
}
func declStmt(name string, elem ast.BasicKind, init ast.Expr) ast.Stmt {
	return &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Elem: elem, Init: init}}
}

func elemOf(float bool) ast.BasicKind {
	if float {
		return ast.Float
	}
	return ast.Int
}

// ---- globals ----

func (g *generator) emitGlobals() {
	dims := []int64{8, 12, 16}
	for i := 0; i < g.cfg.Globals; i++ {
		v := gvar{name: "g" + itoa(i), float: g.rng.Intn(2) == 0}
		if g.rng.Intn(3) > 0 {
			v.dims = []int64{dims[g.rng.Intn(len(dims))]}
		}
		g.addGlobal(v)
	}
	// Guarantee one 1-D array of each element type (array-argument
	// candidates) and one 2-D array.
	n := len(g.globals)
	g.addGlobal(gvar{name: "g" + itoa(n), dims: []int64{10}})
	g.addGlobal(gvar{name: "g" + itoa(n+1), float: true, dims: []int64{10}})
	g.addGlobal(gvar{name: "m" + itoa(n+2), float: g.rng.Intn(2) == 0, dims: []int64{6, 5}})
}

func (g *generator) addGlobal(v gvar) {
	d := &ast.VarDecl{Name: v.name, Elem: elemOf(v.float)}
	for _, dim := range v.dims {
		d.Dims = append(d.Dims, intLit(dim))
	}
	g.file.Globals = append(g.file.Globals, d)
	g.globals = append(g.globals, v)
}

func (g *generator) planFuncs() {
	for i := 0; i < g.cfg.Funcs; i++ {
		f := fn{name: "f" + itoa(i), retFloat: g.rng.Intn(2) == 0}
		nparams := g.rng.Intn(3)
		for p := 0; p < nparams; p++ {
			f.params = append(f.params, lvar{
				name:  "p" + itoa(p),
				float: g.rng.Intn(2) == 0,
				arr:   g.rng.Intn(4) == 0,
			})
		}
		g.funcs = append(g.funcs, f)
	}
}

// ---- functions ----

func (g *generator) emitFunc(i int) {
	f := &g.funcs[i]
	d := &ast.FuncDecl{Name: f.name, Ret: elemOf(f.retFloat)}
	for _, p := range f.params {
		pd := &ast.ParamDecl{Name: p.name, Elem: elemOf(p.float)}
		if p.arr {
			pd.NumDims = 1
			g.mark(ArrayParam)
		}
		d.Params = append(d.Params, pd)
	}
	ret := 0
	if f.retFloat {
		ret = 1
	}
	sc := &scope{locals: append([]lvar{}, f.params...), fnIndex: i, retFloat: ret, mult: 1}
	g.curCost = 0
	d.Body = g.block(sc, g.cfg.MaxDepth)
	d.Body.Stmts = append(d.Body.Stmts,
		&ast.ReturnStmt{Result: g.expr(sc, f.retFloat, g.cfg.MaxExpr)})
	f.decl = d
	f.cost = g.curCost + 8 // call/return overhead
}

func (g *generator) emitMain() {
	d := &ast.FuncDecl{Name: "main", Ret: ast.Int}
	sc := &scope{fnIndex: len(g.funcs), retFloat: -1, mult: 1}
	g.curCost = 0
	body := &ast.Block{}
	// Seed the first arrays with input-like data so runs do more than
	// shuffle zeros.
	for i, v := range g.globals {
		if v.dims == nil || i > 3 || len(v.dims) != 1 {
			continue
		}
		lv := g.fresh("s")
		var rhs ast.Expr
		if v.float {
			rhs = bin(token.MUL, call("float", bin(token.REM, id(lv), intLit(7))), floatLit(0.5))
		} else {
			rhs = bin(token.REM, bin(token.MUL, id(lv), intLit(3)), intLit(11))
		}
		body.Stmts = append(body.Stmts, g.countedFor(lv, v.dims[0],
			&ast.Block{Stmts: []ast.Stmt{assign(index1(v.name, id(lv)), token.ASSIGN, rhs)}}))
	}
	main := g.block(sc, g.cfg.MaxDepth)
	body.Stmts = append(body.Stmts, main.Stmts...)
	body.Stmts = append(body.Stmts, g.digest()...)
	body.Stmts = append(body.Stmts, &ast.ReturnStmt{Result: intLit(0)})
	d.Body = body
	g.file.Funcs = append(g.file.Funcs, d)
}

// digest folds every global into one printed float so all behavior is
// observable.
func (g *generator) digest() []ast.Stmt {
	stmts := []ast.Stmt{declStmt("digest", ast.Float, floatLit(0))}
	acc := func(e ast.Expr, float bool) ast.Expr {
		if !float {
			e = call("float", bin(token.REM, e, intLit(1000)))
		}
		return bin(token.ADD, id("digest"), e)
	}
	for _, v := range g.globals {
		switch len(v.dims) {
		case 0:
			stmts = append(stmts, assign(id("digest"), token.ASSIGN, acc(id(v.name), v.float)))
		case 1:
			lv := g.fresh("d")
			stmts = append(stmts, g.countedFor(lv, v.dims[0], &ast.Block{Stmts: []ast.Stmt{
				assign(id("digest"), token.ASSIGN, acc(index1(v.name, id(lv)), v.float)),
			}}))
		case 2:
			li, lj := g.fresh("d"), g.fresh("d")
			inner := g.countedFor(lj, v.dims[1], &ast.Block{Stmts: []ast.Stmt{
				assign(id("digest"), token.ASSIGN, acc(index2(v.name, id(li), id(lj)), v.float)),
			}})
			stmts = append(stmts, g.countedFor(li, v.dims[0], &ast.Block{Stmts: []ast.Stmt{inner}}))
		}
	}
	return append(stmts, &ast.ExprStmt{X: call("print", &ast.StringLit{Value: "digest"}, id("digest"))})
}

// countedFor builds `for (int lv = 0; lv < n; lv++) body`.
func (g *generator) countedFor(lv string, n int64, body *ast.Block) ast.Stmt {
	return &ast.ForStmt{
		Init: declStmt(lv, ast.Int, intLit(0)),
		Cond: bin(token.LSS, id(lv), intLit(n)),
		Post: &ast.IncDecStmt{LHS: id(lv), Op: token.INC},
		Body: body,
	}
}

// ---- statements ----

func (g *generator) block(sc *scope, budget int) *ast.Block {
	b := &ast.Block{}
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	base := len(sc.locals)
	for s := 0; s < n; s++ {
		b.Stmts = append(b.Stmts, g.stmt(sc, budget))
	}
	sc.locals = sc.locals[:base] // leave scope
	return b
}

func (g *generator) stmt(sc *scope, budget int) ast.Stmt {
	type gen func(*scope, int) ast.Stmt
	choices := []gen{g.declS, g.assignS, g.assignS, g.arrayS, g.arrayS, g.incDecS}
	if budget > 0 {
		choices = append(choices, g.ifS, g.forS, g.forS, g.whileS, g.reductionS)
	}
	if sc.loopDepth > 0 {
		choices = append(choices, g.breakContinueS)
	}
	if sc.retFloat >= 0 && g.rng.Intn(4) == 0 {
		choices = append(choices, g.earlyReturnS)
	}
	if g.callableCount(sc) > 0 {
		choices = append(choices, g.callS)
	}
	return choices[g.rng.Intn(len(choices))](sc, budget)
}

// callableBase is the lowest helper index the current function may call:
// helpers call only strictly higher indexes (acyclicity — in particular no
// self-recursion, which would not terminate), while main may call every
// helper.
func (g *generator) callableBase(sc *scope) int {
	if sc.fnIndex >= len(g.funcs) {
		return 0
	}
	return sc.fnIndex + 1
}

func (g *generator) callableCount(sc *scope) int { return len(g.funcs) - g.callableBase(sc) }

func (g *generator) declS(sc *scope, budget int) ast.Stmt {
	g.charge(sc, 8)
	v := lvar{name: g.fresh("v"), float: g.rng.Intn(2) == 0}
	s := declStmt(v.name, elemOf(v.float), g.expr(sc, v.float, g.cfg.MaxExpr))
	sc.locals = append(sc.locals, v)
	return s
}

// assignable returns a random assignable scalar (non-loop local or scalar
// global).
func (g *generator) assignable(sc *scope) (string, bool, bool) {
	type cand struct {
		name  string
		float bool
	}
	var cands []cand
	for _, l := range sc.locals {
		if !l.loopVar && !l.arr {
			cands = append(cands, cand{l.name, l.float})
		}
	}
	for _, v := range g.globals {
		if v.dims == nil {
			cands = append(cands, cand{v.name, v.float})
		}
	}
	if len(cands) == 0 {
		return "", false, false
	}
	c := cands[g.rng.Intn(len(cands))]
	return c.name, c.float, true
}

func (g *generator) assignS(sc *scope, budget int) ast.Stmt {
	name, isFloat, ok := g.assignable(sc)
	if !ok {
		return g.declS(sc, budget)
	}
	g.charge(sc, 8)
	switch g.rng.Intn(4) {
	case 0:
		return assign(id(name), token.ADDASSIGN, g.expr(sc, isFloat, g.cfg.MaxExpr-1))
	case 1:
		// Small factors keep *= from exploding.
		if isFloat {
			return assign(id(name), token.MULASSIGN, floatLit([]float64{0.5, 1.25, 0.75}[g.rng.Intn(3)]))
		}
		return assign(id(name), token.MULASSIGN, intLit(int64(1+g.rng.Intn(3))))
	default:
		return assign(id(name), token.ASSIGN, g.expr(sc, isFloat, g.cfg.MaxExpr))
	}
}

func (g *generator) incDecS(sc *scope, budget int) ast.Stmt {
	// ++/-- needs an int scalar lvalue that is not a loop counter.
	var cands []string
	for _, l := range sc.locals {
		if !l.loopVar && !l.arr && !l.float {
			cands = append(cands, l.name)
		}
	}
	for _, v := range g.globals {
		if v.dims == nil && !v.float {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return g.assignS(sc, budget)
	}
	g.charge(sc, 4)
	g.mark(IncDec)
	op := token.INC
	if g.rng.Intn(2) == 0 {
		op = token.DEC
	}
	return &ast.IncDecStmt{LHS: id(cands[g.rng.Intn(len(cands))]), Op: op}
}

func (g *generator) arrayS(sc *scope, budget int) ast.Stmt {
	g.charge(sc, 10)
	arrs := g.arrayGlobals()
	v := arrs[g.rng.Intn(len(arrs))]
	var lhs ast.Expr
	if len(v.dims) == 2 {
		g.mark(Array2D)
		lhs = index2(v.name, g.subscript(sc, v.dims[0]), g.subscript(sc, v.dims[1]))
	} else {
		lhs = index1(v.name, g.subscript(sc, v.dims[0]))
	}
	g.mark(ArrayWrite)
	if g.rng.Intn(3) == 0 {
		return assign(lhs, token.ADDASSIGN, g.expr(sc, v.float, g.cfg.MaxExpr-1))
	}
	return assign(lhs, token.ASSIGN, g.expr(sc, v.float, g.cfg.MaxExpr))
}

func (g *generator) arrayGlobals() []gvar {
	var out []gvar
	for _, v := range g.globals {
		if v.dims != nil {
			out = append(out, v)
		}
	}
	return out
}

// subscript builds an in-bounds non-negative index expression.
func (g *generator) subscript(sc *scope, dim int64) ast.Expr {
	var loops []string
	for _, l := range sc.locals {
		if l.loopVar {
			loops = append(loops, l.name)
		}
	}
	if len(loops) > 0 && g.rng.Intn(4) != 0 {
		lv := loops[g.rng.Intn(len(loops))]
		if g.rng.Intn(2) == 0 {
			return bin(token.REM, id(lv), intLit(dim))
		}
		return bin(token.REM, bin(token.ADD, id(lv), intLit(int64(g.rng.Intn(5)))), intLit(dim))
	}
	return intLit(int64(g.rng.Int63n(dim)))
}

func (g *generator) ifS(sc *scope, budget int) ast.Stmt {
	g.charge(sc, 6)
	s := &ast.IfStmt{Cond: g.cond(sc), Then: g.block(sc, budget-1)}
	if g.rng.Intn(2) == 0 {
		g.mark(IfElse)
		s.Else = g.block(sc, budget-1)
	} else {
		g.mark(If)
	}
	return s
}

func (g *generator) forS(sc *scope, budget int) ast.Stmt {
	g.mark(ForLoop)
	if sc.loopDepth > 0 {
		g.mark(NestedLoop)
	}
	lv := g.fresh("i")
	iters := int64(2 + g.rng.Intn(g.cfg.LoopIters-1))
	sc.locals = append(sc.locals, lvar{name: lv, loopVar: true})
	sc.loopDepth++
	sc.mult *= iters
	g.charge(sc, 4) // per-iteration loop overhead
	body := g.block(sc, budget-1)
	sc.mult /= iters
	sc.loopDepth--
	sc.locals = sc.locals[:len(sc.locals)-1]
	return g.countedFor(lv, iters, body)
}

// whileS emits a while loop bounded by an explicit counter. The counter
// increments first so a generated `continue` cannot skip it.
func (g *generator) whileS(sc *scope, budget int) ast.Stmt {
	g.mark(WhileLoop)
	if sc.loopDepth > 0 {
		g.mark(NestedLoop)
	}
	wv := g.fresh("w")
	iters := int64(2 + g.rng.Intn(g.cfg.LoopIters-1))
	sc.locals = append(sc.locals, lvar{name: wv, loopVar: true})
	sc.loopDepth++
	sc.mult *= iters
	g.charge(sc, 6) // per-iteration counter + condition overhead
	body := g.block(sc, budget-1)
	sc.mult /= iters
	sc.loopDepth--
	sc.locals = sc.locals[:len(sc.locals)-1]
	body.Stmts = append([]ast.Stmt{
		assign(id(wv), token.ASSIGN, bin(token.ADD, id(wv), intLit(1))),
	}, body.Stmts...)
	return &ast.Block{Stmts: []ast.Stmt{
		declStmt(wv, ast.Int, intLit(0)),
		&ast.WhileStmt{Cond: bin(token.LSS, id(wv), intLit(iters)), Body: body},
	}}
}

// reductionS emits the paper's key pattern: a counted loop accumulating
// into one scalar (acc = acc + e or acc += e), which the static analysis
// should recognize as a breakable reduction dependence.
func (g *generator) reductionS(sc *scope, budget int) ast.Stmt {
	acc, isFloat, ok := g.assignable(sc)
	if !ok {
		return g.forS(sc, budget)
	}
	g.mark(Reduction)
	g.mark(ForLoop)
	if sc.loopDepth > 0 {
		g.mark(NestedLoop)
	}
	lv := g.fresh("i")
	iters := int64(3 + g.rng.Intn(g.cfg.LoopIters))
	sc.locals = append(sc.locals, lvar{name: lv, loopVar: true})
	sc.loopDepth++
	sc.mult *= iters
	g.charge(sc, 10) // accumulate + loop overhead per iteration
	e := g.expr(sc, isFloat, g.cfg.MaxExpr-1)
	sc.mult /= iters
	sc.loopDepth--
	sc.locals = sc.locals[:len(sc.locals)-1]
	var red ast.Stmt
	if g.rng.Intn(2) == 0 {
		red = assign(id(acc), token.ADDASSIGN, e)
	} else {
		red = assign(id(acc), token.ASSIGN, bin(token.ADD, id(acc), e))
	}
	return g.countedFor(lv, iters, &ast.Block{Stmts: []ast.Stmt{red}})
}

func (g *generator) breakContinueS(sc *scope, budget int) ast.Stmt {
	g.charge(sc, 4)
	var s ast.Stmt
	if g.rng.Intn(2) == 0 {
		g.mark(Break)
		s = &ast.BreakStmt{}
	} else {
		g.mark(Continue)
		s = &ast.ContinueStmt{}
	}
	return &ast.IfStmt{Cond: g.cond0(sc), Then: &ast.Block{Stmts: []ast.Stmt{s}}}
}

// earlyReturnS emits a guarded return from a helper function.
func (g *generator) earlyReturnS(sc *scope, budget int) ast.Stmt {
	g.charge(sc, 6)
	g.mark(EarlyReturn)
	ret := &ast.ReturnStmt{Result: g.expr(sc, sc.retFloat == 1, g.cfg.MaxExpr-1)}
	return &ast.IfStmt{Cond: g.cond0(sc), Then: &ast.Block{Stmts: []ast.Stmt{ret}}}
}

func (g *generator) callS(sc *scope, budget int) ast.Stmt {
	// A call site is generated only when the callee's estimated cost,
	// multiplied by the enclosing loops, fits the per-function work budget
	// — the bound that keeps deeply nested call chains from exploding the
	// program's runtime now that helpers genuinely execute.
	base := g.callableBase(sc)
	var fit []int
	for j := base; j < len(g.funcs); j++ {
		if g.curCost+sc.mult*(g.funcs[j].cost+8) <= fnWorkBudget {
			fit = append(fit, j)
		}
	}
	if len(fit) == 0 {
		return g.assignS(sc, budget)
	}
	callee := g.funcs[fit[g.rng.Intn(len(fit))]]
	g.charge(sc, callee.cost+8)
	g.mark(Call)
	var args []ast.Expr
	for _, p := range callee.params {
		if p.arr {
			args = append(args, id(g.arrayArg(p.float)))
			continue
		}
		args = append(args, g.expr(sc, p.float, g.cfg.MaxExpr-1))
	}
	c := call(callee.name, args...)
	if name, isFloat, ok := g.assignable(sc); ok && g.rng.Intn(2) == 0 {
		if isFloat == callee.retFloat || (isFloat && !callee.retFloat) {
			return assign(id(name), token.ASSIGN, c)
		}
		g.mark(Conversion)
		return assign(id(name), token.ASSIGN, call("int", c))
	}
	// Discard the result through a declaration (Kr expression statements
	// must be void calls).
	v := lvar{name: g.fresh("c"), float: callee.retFloat}
	sc.locals = append(sc.locals, v)
	return declStmt(v.name, elemOf(v.float), c)
}

// arrayArg names a global 1-D array of the requested element type (the
// guaranteed globals ensure one exists).
func (g *generator) arrayArg(isFloat bool) string {
	for _, v := range g.globals {
		if len(v.dims) == 1 && v.float == isFloat {
			return v.name
		}
	}
	return "" // unreachable
}

// ---- expressions ----

// cond builds a bool expression.
func (g *generator) cond(sc *scope) ast.Expr {
	ops := []token.Kind{token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ}
	isFloat := g.rng.Intn(2) == 0
	c := bin(ops[g.rng.Intn(len(ops))],
		g.expr(sc, isFloat, g.cfg.MaxExpr-1), g.expr(sc, isFloat, g.cfg.MaxExpr-1))
	if g.rng.Intn(4) == 0 {
		g.mark(BoolOp)
		op := token.LAND
		if g.rng.Intn(2) == 0 {
			op = token.LOR
		}
		c = bin(op, c, g.cond0(sc))
	}
	if g.rng.Intn(6) == 0 {
		g.mark(Not)
		c = &ast.UnaryExpr{Op: token.NOT, X: c}
	}
	return c
}

func (g *generator) cond0(sc *scope) ast.Expr {
	return bin(token.LSS, g.expr(sc, false, 1), g.expr(sc, false, 1))
}

// expr builds a well-typed numeric expression.
func (g *generator) expr(sc *scope, isFloat bool, depth int) ast.Expr {
	if depth <= 0 {
		return g.leaf(sc, isFloat)
	}
	switch g.rng.Intn(8) {
	case 0, 1:
		return g.leaf(sc, isFloat)
	case 2:
		if isFloat {
			g.mark(FloatArith)
		} else {
			g.mark(IntArith)
		}
		op := []token.Kind{token.ADD, token.SUB, token.MUL}[g.rng.Intn(3)]
		return bin(op, g.expr(sc, isFloat, depth-1), g.expr(sc, isFloat, depth-1))
	case 3:
		if isFloat {
			g.mark(FloatArith)
			// Division by a safely nonzero value.
			return bin(token.QUO, g.expr(sc, true, depth-1),
				bin(token.ADD, call("fabs", g.expr(sc, true, depth-1)), floatLit(1)))
		}
		g.mark(IntDivMod)
		return bin(token.QUO, g.expr(sc, false, depth-1), intLit(int64(1+g.rng.Intn(7))))
	case 4:
		g.mark(MathBuiltin)
		if isFloat {
			switch g.rng.Intn(5) {
			case 0:
				return call("sqrt", call("fabs", g.expr(sc, true, depth-1)))
			case 1:
				return call("fabs", g.expr(sc, true, depth-1))
			case 2:
				return call("floor", g.expr(sc, true, depth-1))
			case 3:
				return call("sin", g.expr(sc, true, depth-1))
			default:
				return call("cos", g.expr(sc, true, depth-1))
			}
		}
		return call("abs", g.expr(sc, false, depth-1))
	case 5:
		g.mark(Conversion)
		if isFloat {
			return call("float", g.expr(sc, false, depth-1))
		}
		g.mark(IntDivMod)
		return bin(token.REM, g.expr(sc, false, depth-1), intLit(int64(2+g.rng.Intn(9))))
	case 6:
		g.mark(Neg)
		return &ast.UnaryExpr{Op: token.SUB, X: g.expr(sc, isFloat, depth-1)}
	default:
		g.mark(MinMax)
		name := "min"
		if g.rng.Intn(2) == 0 {
			name = "max"
		}
		return call(name, g.expr(sc, isFloat, depth-1), g.expr(sc, isFloat, depth-1))
	}
}

// leaf yields a variable, array element, or literal of the right type.
func (g *generator) leaf(sc *scope, isFloat bool) ast.Expr {
	var opts []ast.Expr
	for _, l := range sc.locals {
		if l.arr {
			if l.float == isFloat {
				g.mark(ArrayRead)
				opts = append(opts, index1(l.name,
					bin(token.REM, g.intIndex(sc), call("dim", id(l.name), intLit(0)))))
			}
			continue
		}
		if l.float == isFloat || (!isFloat && l.loopVar) {
			opts = append(opts, id(l.name))
		}
	}
	for _, v := range g.globals {
		if v.float != isFloat {
			continue
		}
		switch len(v.dims) {
		case 0:
			opts = append(opts, id(v.name))
		case 1:
			g.mark(ArrayRead)
			opts = append(opts, index1(v.name, g.subscript(sc, v.dims[0])))
		case 2:
			g.mark(ArrayRead)
			g.mark(Array2D)
			opts = append(opts, index2(v.name, g.subscript(sc, v.dims[0]), g.subscript(sc, v.dims[1])))
		}
	}
	if len(opts) > 0 && g.rng.Intn(3) != 0 {
		return opts[g.rng.Intn(len(opts))]
	}
	if isFloat {
		return floatLit(float64(g.rng.Intn(2000)) / 100)
	}
	return intLit(int64(g.rng.Intn(50)))
}

// intIndex returns a non-negative int expression for subscripting.
func (g *generator) intIndex(sc *scope) ast.Expr {
	for _, l := range sc.locals {
		if l.loopVar && g.rng.Intn(2) == 0 {
			return id(l.name)
		}
	}
	return intLit(int64(g.rng.Intn(32)))
}
