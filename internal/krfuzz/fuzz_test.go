package krfuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kremlin"
	"kremlin/internal/bench"
)

// FuzzPipeline is the native-fuzzing entry point for the whole pipeline:
// the input is a generator seed, the body is the differential/metamorphic
// oracle. `go test -fuzz=FuzzPipeline ./internal/krfuzz` explores seeds
// far beyond the deterministic 200 that run in tier-1.
//
// Sharded equivalence is restricted to K=2 here to keep per-input cost
// low; the campaign (kremlin-bench -experiment fuzz) covers K=2,3,4.
func FuzzPipeline(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	cfg := OracleConfig{ShardCounts: []int{2}}
	f.Fuzz(func(t *testing.T, seed int64) {
		p := Generate(seed, Default())
		if err := Check("fuzz.kr", p.Source(), cfg); err != nil {
			fail := err.(*Failure)
			t.Fatalf("seed %d: %v\n--- program ---\n%s", seed, err, fail.Source)
		}
	})
}

// TestSubscriptCorpusOracle replays the subscript-pattern corpus through
// the full oracle deterministically: these programs aim the dependence
// tests (ZIV, strong SIV, GCD, non-affine fallback) and the oracle's
// depcheck-soundness check cross-validates every "provably parallel"
// verdict against the runtime dependence tracer.
func TestSubscriptCorpusOracle(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "subscript-*.kr"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no subscript corpus found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := Check(filepath.Base(path), string(src), OracleConfig{ShardCounts: []int{2}}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVMCorpusOracle replays the VM-targeted corpus through the full
// oracle. These programs aim the bytecode engine's superinstructions
// (fused compare-branch, fused 1-D indexed load/store), empty and
// fallthrough-only blocks, and off-by-one-prone branch boundaries; the
// oracle's engine matrix cross-checks every run against the tree-walking
// reference interpreter.
func TestVMCorpusOracle(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "vm-*.kr"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no vm corpus found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := Check(filepath.Base(path), string(src), OracleConfig{ShardCounts: []int{2}}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzCompileAndRun feeds arbitrary text to the full front end and, when
// it compiles, to the interpreter. The corpus seeds with every benchmark
// and example program, so mutation starts from realistic Kr. The
// contract: diagnostics or clean runs, never panics or hangs. Runtime
// errors (step-budget exhaustion, out-of-range subscripts mutated in) are
// legitimate outcomes, not failures.
func FuzzCompileAndRun(f *testing.F) {
	for _, b := range bench.All() {
		f.Add(b.Source)
	}
	f.Add(bench.Tracking().Source)
	for _, kr := range []string{
		"../../examples/quickstart/quickstart.kr",
		"../../examples/gprofcompare/compare.kr",
	} {
		src, err := os.ReadFile(filepath.FromSlash(kr))
		if err != nil {
			f.Fatalf("corpus seed %s: %v", kr, err)
		}
		f.Add(string(src))
	}
	// Array-subscript shapes for the dependence analyzer: ZIV cells,
	// strong-SIV distances, coprime strides, non-affine (indirect)
	// indices, negative steps, and aliased array arguments. Mutating from
	// these keeps the fuzzer inside the subscript-test decision tree.
	subs, err := filepath.Glob(filepath.Join("testdata", "subscript-*.kr"))
	if err != nil || len(subs) == 0 {
		f.Fatalf("no subscript corpus found: %v", err)
	}
	for _, path := range subs {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("int main() { return 0; }")
	f.Add("void broken( { if while } )")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := kremlin.Compile("fuzz.kr", src)
		if err != nil {
			return // diagnostics are the expected answer for malformed input
		}
		// Keep mutated infinite loops bounded: a small step budget turns
		// them into ordinary errors.
		cfg := &kremlin.RunConfig{Out: &strings.Builder{}, MaxSteps: 2_000_000}
		if _, err := prog.Run(cfg); err != nil {
			return
		}
		// A program that runs cleanly must also profile cleanly.
		if _, _, err := prog.Profile(&kremlin.RunConfig{Out: &strings.Builder{}, MaxSteps: 2_000_000}); err != nil {
			t.Fatalf("plain run succeeded but profiling failed: %v\n--- program ---\n%s", err, src)
		}
	})
}
