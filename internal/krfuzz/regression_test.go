package krfuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kremlin"
	"kremlin/internal/parser"
	"kremlin/internal/source"
)

// TestRegressionCorpus replays the adversarial inputs that once crashed
// or hung the front end (stack overflow on deep nesting, non-terminating
// error recovery, unbounded diagnostic storage). Each must now finish
// fast with ordinary diagnostics — or, if it happens to be valid Kr,
// compile and run cleanly.
func TestRegressionCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.kr"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no regression corpus found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			prog, cerr := kremlin.Compile(filepath.Base(path), string(src))
			if d := time.Since(start); d > 5*time.Second {
				t.Errorf("front end took %v on %d bytes — error recovery is not making progress", d, len(src))
			}
			if cerr == nil {
				// The case turned out valid: it must then run without panicking.
				if _, err := prog.Run(&kremlin.RunConfig{Out: &strings.Builder{}, MaxSteps: 10_000_000}); err != nil {
					t.Logf("valid-but-failing run (acceptable): %v", err)
				}
				return
			}
			// Diagnostic storage must stay bounded no matter the input.
			if el, ok := cerr.(*source.ErrorList); ok && len(el.Diags) > source.MaxDiags {
				t.Errorf("%d stored diagnostics exceed the cap %d", len(el.Diags), source.MaxDiags)
			}
		})
	}
}

// TestParserDepthLimits pins the exact depth-limit behavior: nesting past
// the caps yields diagnostics (never a crash), while nesting comfortably
// under them still parses cleanly — the limits must not reject real code.
func TestParserDepthLimits(t *testing.T) {
	parse := func(src string) *source.ErrorList {
		errs := &source.ErrorList{}
		parser.Parse(source.NewFile("depth.kr", src), errs)
		return errs
	}
	over := []struct {
		name, src string
	}{
		{"parens-10k", "int main() { return " + strings.Repeat("(", 10_000) + "1" + strings.Repeat(")", 10_000) + "; }"},
		{"blocks-10k", "int main() { " + strings.Repeat("{", 10_000) + strings.Repeat("}", 10_000) + " return 0; }"},
		{"neg-10k", "int main() { return " + strings.Repeat("-", 10_000) + "1; }"},
		{"calls-10k", "int main() { return " + strings.Repeat("f(", 10_000) + "1" + strings.Repeat(")", 10_000) + "; }"},
		{"unclosed-parens-10k", "int main() { return " + strings.Repeat("(", 10_000)},
	}
	for _, tc := range over {
		t.Run(tc.name, func(t *testing.T) {
			errs := parse(tc.src)
			if !errs.HasErrors() {
				t.Fatal("nesting past the depth limit parsed without a diagnostic")
			}
			if len(errs.Diags) > source.MaxDiags {
				t.Fatalf("%d stored diagnostics exceed the cap %d", len(errs.Diags), source.MaxDiags)
			}
		})
	}

	under := []struct {
		name, src string
	}{
		{"parens-64", "int main() { return " + strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64) + "; }"},
		{"blocks-64", "int main() { " + strings.Repeat("{", 64) + strings.Repeat("}", 64) + " return 0; }"},
	}
	for _, tc := range under {
		t.Run(tc.name, func(t *testing.T) {
			if errs := parse(tc.src); errs.HasErrors() {
				t.Fatalf("reasonable nesting rejected: %v", errs)
			}
		})
	}
}
