package krfuzz

// Mutator: the generator reused as an editor. A mutation regenerates
// exactly one helper function's body — the signature, every other
// function, and all call sites are untouched — which is the edit shape the
// incremental profile cache is built around: the edited function's content
// key (and its transitive callers') changes, everything else stays
// cacheable.
//
// The mutator classifies each edit by its cache blast radius:
//
//	BodyEdit   — a helper main (or another helper) calls directly;
//	CalleeEdit — a helper that some *other helper* calls, so the edit
//	             invalidates the caller's key transitively;
//	DeadEdit   — a helper nothing calls: the edit must invalidate nothing
//	             that executes, and the incremental profile must match the
//	             from-scratch one trivially.

import (
	"math/rand"

	"kremlin/internal/ast"
)

// MutationKind classifies a single-function edit by blast radius.
type MutationKind int

// The edit-pattern vocabulary.
const (
	BodyEdit MutationKind = iota
	CalleeEdit
	DeadEdit
	NumMutationKinds
)

func (k MutationKind) String() string {
	switch k {
	case BodyEdit:
		return "body-edit"
	case CalleeEdit:
		return "callee-edit"
	case DeadEdit:
		return "dead-edit"
	}
	return "?"
}

// Mutate returns a copy of p with one helper's body regenerated from
// mutSeed, plus the edit's kind and the edited function's name. The same
// (p, mutSeed) pair always yields the same mutation. Returns nil if p has
// no helper functions.
func Mutate(p *Program, mutSeed int64) (*Program, MutationKind, string) {
	if p.gen == nil || len(p.gen.funcs) == 0 {
		return nil, 0, ""
	}
	rng := rand.New(rand.NewSource(mutSeed))

	// Call sites per callee, split by caller: another helper vs anywhere.
	calledByHelper := map[string]bool{}
	calledAtAll := map[string]bool{}
	for _, fd := range p.File.Funcs {
		fromHelper := fd.Name != "main"
		walkStmts(fd.Body, func(e ast.Expr) {
			c, ok := e.(*ast.CallExpr)
			if !ok {
				return
			}
			calledAtAll[c.Name] = true
			if fromHelper {
				calledByHelper[c.Name] = true
			}
		})
	}

	// Group candidates by kind, then pick a kind among the non-empty ones
	// so small corpora still cover every edit pattern.
	byKind := [NumMutationKinds][]int{}
	for i, f := range p.gen.funcs {
		switch {
		case !calledAtAll[f.name]:
			byKind[DeadEdit] = append(byKind[DeadEdit], i)
		case calledByHelper[f.name]:
			byKind[CalleeEdit] = append(byKind[CalleeEdit], i)
		default:
			byKind[BodyEdit] = append(byKind[BodyEdit], i)
		}
	}
	var kinds []MutationKind
	for k := MutationKind(0); k < NumMutationKinds; k++ {
		if len(byKind[k]) > 0 {
			kinds = append(kinds, k)
		}
	}
	kind := kinds[rng.Intn(len(kinds))]
	target := byKind[kind][rng.Intn(len(byKind[kind]))]

	// Rebuild an identical program (Generate is deterministic), then graft
	// a fresh body onto the target. The replacement generator shares the
	// globals and signature tables, so every name and type it can mention
	// is exactly what the original program declares.
	mut := Generate(p.Seed, p.gen.cfg)
	g2 := &generator{
		rng:     rng,
		cfg:     p.gen.cfg,
		globals: p.gen.globals,
		funcs:   p.gen.funcs,
	}
	mut.File.Funcs[target].Body = g2.regenBody(target)
	return mut, kind, p.gen.funcs[target].name
}

// regenBody builds a fresh, safety-preserving body for helper i: same
// parameters in scope, same return type, same acyclicity constraint
// (callable helpers all have index > i).
func (g *generator) regenBody(i int) *ast.Block {
	f := g.funcs[i]
	ret := 0
	if f.retFloat {
		ret = 1
	}
	sc := &scope{locals: append([]lvar{}, f.params...), fnIndex: i, retFloat: ret, mult: 1}
	g.curCost = 0
	b := g.block(sc, g.cfg.MaxDepth)
	b.Stmts = append(b.Stmts, &ast.ReturnStmt{Result: g.expr(sc, f.retFloat, g.cfg.MaxExpr)})
	return b
}

// walkStmts visits every expression under a statement tree. It covers the
// node vocabulary the generator emits.
func walkStmts(s ast.Stmt, visit func(ast.Expr)) {
	switch n := s.(type) {
	case *ast.Block:
		for _, st := range n.Stmts {
			walkStmts(st, visit)
		}
	case *ast.DeclStmt:
		walkExpr(n.Decl.Init, visit)
		for _, d := range n.Decl.Dims {
			walkExpr(d, visit)
		}
	case *ast.AssignStmt:
		walkExpr(n.LHS, visit)
		walkExpr(n.RHS, visit)
	case *ast.IncDecStmt:
		walkExpr(n.LHS, visit)
	case *ast.IfStmt:
		walkExpr(n.Cond, visit)
		walkStmts(n.Then, visit)
		if n.Else != nil {
			walkStmts(n.Else, visit)
		}
	case *ast.ForStmt:
		if n.Init != nil {
			walkStmts(n.Init, visit)
		}
		walkExpr(n.Cond, visit)
		if n.Post != nil {
			walkStmts(n.Post, visit)
		}
		walkStmts(n.Body, visit)
	case *ast.WhileStmt:
		walkExpr(n.Cond, visit)
		walkStmts(n.Body, visit)
	case *ast.ReturnStmt:
		walkExpr(n.Result, visit)
	case *ast.ExprStmt:
		walkExpr(n.X, visit)
	}
}

func walkExpr(e ast.Expr, visit func(ast.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *ast.IndexExpr:
		walkExpr(n.X, visit)
		walkExpr(n.Index, visit)
	case *ast.CallExpr:
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	case *ast.BinaryExpr:
		walkExpr(n.X, visit)
		walkExpr(n.Y, visit)
	case *ast.UnaryExpr:
		walkExpr(n.X, visit)
	}
}
