package krfuzz

import (
	"fmt"
	"os"
	"path/filepath"
)

// CampaignConfig configures a fuzzing campaign: N seeded programs through
// the full oracle, with failures shrunk and written to disk.
type CampaignConfig struct {
	N            int          // number of programs (seeds Seed..Seed+N-1)
	Seed         int64        // base seed
	Gen          Config       // generator shape (zero value → Default())
	Oracle       OracleConfig // oracle tuning
	ShrinkBudget int          // max oracle runs spent shrinking each failure
	OutDir       string       // where reproducers are written ("" = cwd)
	// Progress, if non-nil, is called after each program with the running
	// pass/fail counts.
	Progress func(done, failed int)
}

// CampaignFailure records one oracle violation found by a campaign.
type CampaignFailure struct {
	Seed     int64  `json:"seed"`
	Check    string `json:"check"`
	Detail   string `json:"detail"`
	Repro    string `json:"repro"`      // shrunk reproducer source
	ReproLen int    `json:"repro_len"`  // bytes, after shrinking
	OrigLen  int    `json:"orig_len"`   // bytes, before shrinking
	Path     string `json:"repro_path"` // file the reproducer was written to
}

// CampaignResult summarizes a campaign for reporting (JSON-marshalable).
type CampaignResult struct {
	N        int                `json:"n"`
	Seed     int64              `json:"seed"`
	Passed   int                `json:"passed"`
	Failed   int                `json:"failed"`
	Coverage map[string]int     `json:"construct_coverage"` // construct → occurrences
	Missing  []string           `json:"constructs_missing"` // never generated
	Failures []*CampaignFailure `json:"failures,omitempty"`
}

// RunCampaign generates and checks cfg.N programs. It never stops early:
// every seed is checked so one failure does not mask others.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	gen := cfg.Gen
	if gen == (Config{}) {
		gen = Default()
	}
	res := &CampaignResult{N: cfg.N, Seed: cfg.Seed, Coverage: map[string]int{}}
	var cov Coverage
	for i := 0; i < cfg.N; i++ {
		seed := cfg.Seed + int64(i)
		p := Generate(seed, gen)
		cov.Merge(p.Coverage)
		src := p.Source()
		err := Check(fmt.Sprintf("krfuzz-%d.kr", seed), src, cfg.Oracle)
		if err == nil {
			res.Passed++
		} else {
			res.Failed++
			f, ok := err.(*Failure)
			if !ok {
				f = &Failure{Source: src, Check: "internal", Detail: err.Error()}
			}
			f.Seed = seed
			cf := &CampaignFailure{
				Seed:    seed,
				Check:   f.Check,
				Detail:  f.Detail,
				OrigLen: len(src),
			}
			cf.Repro = Shrink(f, cfg.Oracle, cfg.ShrinkBudget)
			cf.ReproLen = len(cf.Repro)
			cf.Path = filepath.Join(cfg.OutDir, fmt.Sprintf("krfuzz-repro-%d.kr", seed))
			header := fmt.Sprintf("// krfuzz reproducer: seed %d, check %q\n// %s\n", seed, f.Check, f.Detail)
			if werr := os.WriteFile(cf.Path, []byte(header+cf.Repro), 0o644); werr != nil {
				return res, fmt.Errorf("writing reproducer: %w", werr)
			}
			res.Failures = append(res.Failures, cf)
		}
		if cfg.Progress != nil {
			cfg.Progress(i+1, res.Failed)
		}
	}
	for c := Construct(0); c < NumConstructs; c++ {
		res.Coverage[c.String()] = cov[c]
	}
	for _, c := range cov.Missing() {
		res.Missing = append(res.Missing, c.String())
	}
	return res, nil
}
