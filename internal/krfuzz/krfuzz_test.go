package krfuzz

import (
	"strings"
	"testing"
	"time"
)

// TestOracle200 is the tier-1 property test: 200 seeded programs through
// the full differential/metamorphic oracle (including sharded-equivalence
// at K=2,3,4). The acceptance budget is 60 seconds; the suite runs in a
// few seconds, so a breach signals a pipeline performance regression, not
// just flakiness.
func TestOracle200(t *testing.T) {
	start := time.Now()
	const n = 200
	var cov Coverage
	for seed := int64(0); seed < n; seed++ {
		p := Generate(seed, Default())
		cov.Merge(p.Coverage)
		if err := Check("krfuzz.kr", p.Source(), OracleConfig{}); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, p.Source())
		}
	}
	if missing := cov.Missing(); len(missing) > 0 {
		names := make([]string, len(missing))
		for i, c := range missing {
			names[i] = c.String()
		}
		t.Errorf("200-seed corpus never generated: %s", strings.Join(names, ", "))
	}
	budget := 60 * time.Second
	if raceEnabled {
		// The race detector slows the pipeline 5-10x; the budget guards
		// non-instrumented performance, so scale it rather than letting
		// every -race run trip it.
		budget = 10 * time.Minute
	}
	if el := time.Since(start); el > budget {
		t.Errorf("property test took %v, budget is %v", el, budget)
	}
}

// TestGenerateDeterministic: the same (seed, config) must yield
// byte-identical source — the foundation of reproducers.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(seed, Default())
		b := Generate(seed, Default())
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		if a.Coverage != b.Coverage {
			t.Fatalf("seed %d: coverage differs across generations", seed)
		}
	}
}

// TestGenerateDiverse: distinct seeds must yield distinct programs.
func TestGenerateDiverse(t *testing.T) {
	seen := map[string]int64{}
	for seed := int64(0); seed < 100; seed++ {
		src := Generate(seed, Default()).Source()
		if prev, dup := seen[src]; dup {
			t.Fatalf("seeds %d and %d generated identical programs", prev, seed)
		}
		seen[src] = seed
	}
}

// TestStressConfig: the deeper campaign configuration also generates
// valid programs.
func TestStressConfig(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := Generate(seed, Stress())
		if err := Check("krfuzz.kr", p.Source(), OracleConfig{SkipSharded: true}); err != nil {
			t.Fatalf("seed %d (stress): %v\nsource:\n%s", seed, err, p.Source())
		}
	}
}

// TestShrink: the shrinker must reduce a program failing an artificial
// oracle predicate while preserving the failure, and the result must be
// no larger than the input.
func TestShrink(t *testing.T) {
	// A program that fails the "compile" check because it references an
	// undeclared variable — padded with deletable statements the shrinker
	// should strip.
	src := `int g0;
int g1[10];

int main() {
	int a = 1;
	int b = 2;
	for (int i = 0; i < 5; i++) {
		g1[i % 10] = a + b;
	}
	g0 = bogus;
	return 0;
}
`
	err := Check("bad.kr", src, OracleConfig{})
	f, ok := err.(*Failure)
	if !ok || f.Check != "compile" {
		t.Fatalf("setup: expected compile failure, got %v", err)
	}
	shrunk := Shrink(f, OracleConfig{}, 100)
	if len(shrunk) >= len(src) {
		t.Fatalf("shrinker did not shrink: %d >= %d bytes", len(shrunk), len(src))
	}
	if err := Check("shrunk.kr", shrunk, OracleConfig{}); err == nil {
		t.Fatalf("shrunk program no longer fails:\n%s", shrunk)
	} else if ff, ok := err.(*Failure); !ok || ff.Check != "compile" {
		t.Fatalf("shrunk program fails a different check (%v):\n%s", err, shrunk)
	}
	// The deletable scaffolding should actually be gone.
	if strings.Contains(shrunk, "for (") {
		t.Errorf("shrinker kept an irrelevant loop:\n%s", shrunk)
	}
}

// TestCampaignClean: a campaign over healthy seeds reports zero failures
// and full construct coverage.
func TestCampaignClean(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		N:      30,
		Seed:   1000,
		Oracle: OracleConfig{ShardCounts: []int{2}},
		OutDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("campaign reported %d failures: %+v", res.Failed, res.Failures[0])
	}
	if res.Passed != 30 {
		t.Fatalf("passed %d of 30", res.Passed)
	}
}
