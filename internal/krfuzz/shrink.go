package krfuzz

import (
	"kremlin/internal/ast"
	"kremlin/internal/parser"
	"kremlin/internal/source"
)

// Shrink greedily reduces a failing program to a smaller one that fails
// the oracle with the same check. It enumerates structural mutations
// (drop a global, drop a function, delete a statement, unwrap a loop or
// branch to its body, simplify an assignment's right-hand side) in a fixed
// order, keeps any mutant that still reproduces the original failure, and
// restarts until no mutation helps or the oracle-run budget is exhausted.
//
// The result is canonical source (ast.Print) of the smallest reproducer
// found; if nothing shrinks, it returns the original failure's source
// re-rendered canonically, or verbatim if it does not parse.
func Shrink(f *Failure, cfg OracleConfig, budget int) string {
	if budget <= 0 {
		budget = 300
	}
	cur, ok := reparse(f.Source)
	if !ok {
		return f.Source
	}
	curSrc := ast.Print(cur)
	runs := 0
	for {
		improved := false
		n := countMutations(cur)
		for k := 0; k < n && runs < budget; k++ {
			cand, ok := reparse(curSrc)
			if !ok {
				return curSrc
			}
			if !applyMutation(cand, k) {
				continue
			}
			candSrc := ast.Print(cand)
			if len(candSrc) >= len(curSrc) {
				continue
			}
			runs++
			err := Check("shrink.kr", candSrc, cfg)
			ff, isFail := err.(*Failure)
			if !isFail || ff.Check != f.Check {
				continue // different (or no) bug: not our reproducer
			}
			cur, curSrc = cand, candSrc
			improved = true
			break // restart enumeration on the smaller program
		}
		if !improved || runs >= budget {
			return curSrc
		}
	}
}

// reparse round-trips source through the parser, yielding an independent
// tree (the shrinker's substitute for a deep-copy).
func reparse(src string) (*ast.File, bool) {
	errs := &source.ErrorList{}
	f := parser.Parse(source.NewFile("shrink.kr", src), errs)
	if errs.HasErrors() {
		return nil, false
	}
	return f, true
}

// mutator visits mutation sites in a fixed order. In counting mode it
// tallies sites; in apply mode it fires at site `target` and records that
// it did.
type mutator struct {
	count   int
	target  int // -1: count only
	applied bool
}

func (m *mutator) at() bool {
	hit := m.count == m.target
	m.count++
	if hit {
		m.applied = true
	}
	return hit
}

func countMutations(f *ast.File) int {
	m := &mutator{target: -1}
	m.file(f)
	return m.count
}

func applyMutation(f *ast.File, target int) bool {
	m := &mutator{target: target}
	m.file(f)
	return m.applied
}

func (m *mutator) file(f *ast.File) {
	for i := 0; i < len(f.Globals); i++ {
		if m.at() {
			f.Globals = append(f.Globals[:i], f.Globals[i+1:]...)
			return
		}
	}
	for i := 0; i < len(f.Funcs); i++ {
		if f.Funcs[i].Name == "main" {
			continue
		}
		if m.at() {
			f.Funcs = append(f.Funcs[:i], f.Funcs[i+1:]...)
			return
		}
	}
	for _, fn := range f.Funcs {
		m.block(fn.Body)
		if m.applied {
			return
		}
	}
}

func (m *mutator) block(b *ast.Block) {
	for i := 0; i < len(b.Stmts); i++ {
		if m.at() {
			b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
			return
		}
		if rep, ok := m.stmt(b.Stmts[i]); m.applied {
			if ok {
				b.Stmts[i] = rep
			}
			return
		}
	}
}

// stmt visits mutation sites inside s. It returns a replacement statement
// and true when the fired mutation replaces s itself.
func (m *mutator) stmt(s ast.Stmt) (ast.Stmt, bool) {
	switch s := s.(type) {
	case *ast.Block:
		m.block(s)
	case *ast.IfStmt:
		if m.at() {
			return s.Then, true // drop the condition, keep the then-arm
		}
		if s.Else != nil {
			if m.at() {
				return s.Else, true
			}
		}
		m.block(s.Then)
		if m.applied {
			return nil, false
		}
		if s.Else != nil {
			if rep, ok := m.stmt(s.Else); m.applied {
				if ok {
					s.Else = rep
				}
				return nil, false
			}
		}
	case *ast.ForStmt:
		if m.at() {
			return s.Body, true // unwrap: body executes once
		}
		m.block(s.Body)
	case *ast.WhileStmt:
		if m.at() {
			return s.Body, true
		}
		m.block(s.Body)
	case *ast.AssignStmt:
		if !isLiteral(s.RHS) && m.at() {
			s.RHS = &ast.IntLit{Value: 1}
			return nil, false
		}
	case *ast.DeclStmt:
		if s.Decl.Init != nil && !isLiteral(s.Decl.Init) && m.at() {
			s.Decl.Init = &ast.IntLit{Value: 1}
			return nil, false
		}
	case *ast.ReturnStmt:
		if s.Result != nil && !isLiteral(s.Result) && m.at() {
			s.Result = &ast.IntLit{Value: 1}
			return nil, false
		}
	}
	return nil, false
}

func isLiteral(e ast.Expr) bool {
	switch e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.BoolLit:
		return true
	}
	return false
}
