//go:build race

package krfuzz

// raceEnabled relaxes wall-clock budgets: the race detector slows
// execution 5-10x, which says nothing about pipeline performance.
const raceEnabled = true
